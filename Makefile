# JBS reproduction — build, test, and static-analysis gates.
#
# `make vet` and `make race` together are the CI gate (.github/workflows/ci.yml);
# see docs/STATIC_ANALYSIS.md for what jbsvet enforces.

GO ?= go

.PHONY: all build test vet vet-fast race bench fuzz-smoke chaos-hedge overload writer-matrix writer-matrix-short multiproc-smoke elastic-smoke

all: build vet test

build:
	$(GO) build ./...

# test: -shuffle=on randomizes test and subtest execution order so
# hidden inter-test state dependencies fail loudly instead of silently
# passing in source order. The seed is printed on failure; re-run with
# `go test -shuffle=<seed>` to reproduce.
test:
	$(GO) test -shuffle=on ./...

# vet: the stock toolchain vet plus jbsvet, the repo-specific pass
# (lock hygiene, goroutine lifecycle, lease ownership flow, ledger
# balance, lock ordering, unchecked Close/Write/Flush, sim-clock
# purity, package doc comments). -stale-ignores keeps the
# //jbsvet:ignore inventory honest.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/jbsvet -stale-ignores ./...

# vet-fast: jbsvet alone, with the jbsvet binary cached in GOBIN-style
# under .cache so repeat runs skip the `go run` relink. The binary is
# rebuilt only when analysis or cmd sources change (go build's own
# cache makes the rebuild itself cheap).
vet-fast:
	@mkdir -p .cache
	@$(GO) build -o .cache/jbsvet ./cmd/jbsvet
	@./.cache/jbsvet -stale-ignores -timing ./...

# race: the full suite under the race detector, with the leakcheck
# TestMain hooks active in the concurrent packages.
race:
	$(GO) test -race -shuffle=on -timeout 10m ./...

# fuzz-smoke: 30 seconds of coverage-guided fuzzing per wire-format
# decoder. Not exhaustive — a CI tripwire for decode panics, unbounded
# allocations, and encode/decode round-trip drift. Targets must be
# fuzzed one at a time (a Go toolchain restriction).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFrameUnmarshal$$' -fuzztime 30s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzShedCreditFrame$$' -fuzztime 30s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzHedgeProtocolFrames$$' -fuzztime 30s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzMOFIndexConcat$$' -fuzztime 30s ./internal/mof

# chaos-hedge: the speculative-fetch chaos suite under the race detector —
# replicated-MOF topologies where a stalled or dead primary must be
# rescued by the hedging controller (or the replica-rotation retry path)
# with byte identity, hedge-ledger conservation, and zero goroutine
# leaks. Failures print a one-command seeded reproduction line.
chaos-hedge:
	$(GO) test -race -run '^TestChaosHedgeScenarios$$' -short -v ./internal/chaos

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# writer-matrix: the map-side writer crossover measurement — seal MB/s
# for every strategy over the (partition count × record size × combiner)
# grid. The selector's default thresholds in
# internal/mapred/writerselect.go are read off this table; rerun it and
# update EXPERIMENTS.md ("Writer crossover matrix") when they drift.
writer-matrix:
	$(GO) run ./cmd/jbsbench writer-matrix

# writer-matrix-short: the CI smoke — each strategy's decisive home cell
# at small volume, asserting the selector still picks the measured
# winner there.
writer-matrix-short:
	$(GO) run ./cmd/jbsbench -short writer-matrix

# multiproc-smoke: the process-level acceptance run — build the real
# jbsregistryd/jbssupplierd/jbsmergerd binaries, spawn a registry plus
# two supplier daemons as OS processes, run a byte-verified multi-round
# jbsmergerd job, SIGKILL one supplier mid-job and restart it under the
# same identity, and require the job to complete with every segment
# verified and every surviving daemon draining to exit 0. See
# docs/DEPLOYMENT.md for the topology this exercises.
multiproc-smoke:
	$(GO) run ./cmd/jbsbench -short multiproc

# elastic-smoke: the autoscaler acceptance run — build jbsregistryd,
# jbssupplierd, and jbsautoscalerd, let the autoscaler launch its own
# supplier fleet, drive a seeded overload that must scale the fleet
# 1 -> 3 and back to 1, and require zero fetch errors, every light-tenant
# segment byte-verified, and every retirement a graceful drain (the
# drained daemon exits 0). See docs/DEPLOYMENT.md "Elastic fleets".
elastic-smoke:
	$(GO) run ./cmd/jbsbench -short elastic

# overload: the multi-tenant flow-control scenario — two concurrent jobs
# (one 10x-skewed) against one supplier, with and without internal/flow,
# including shed injection. Prints the light job's p50/p99 per scenario.
overload:
	$(GO) run ./cmd/jbsbench overload
