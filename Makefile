# JBS reproduction — build, test, and static-analysis gates.
#
# `make vet` and `make race` together are the CI gate (.github/workflows/ci.yml);
# see docs/STATIC_ANALYSIS.md for what jbsvet enforces.

GO ?= go

.PHONY: all build test vet race bench overload

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet: the stock toolchain vet plus jbsvet, the repo-specific pass
# (lock hygiene, goroutine lifecycle, unchecked Close/Write/Flush,
# sim-clock purity, package doc comments).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/jbsvet ./...

# race: the full suite under the race detector, with the leakcheck
# TestMain hooks active in the concurrent packages.
race:
	$(GO) test -race -timeout 10m ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# overload: the multi-tenant flow-control scenario — two concurrent jobs
# (one 10x-skewed) against one supplier, with and without internal/flow,
# including shed injection. Prints the light job's p50/p99 per scenario.
overload:
	$(GO) run ./cmd/jbsbench overload
