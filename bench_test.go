// Package repro ties the benchmark harness to `go test -bench`: one
// benchmark per table and figure of the paper's evaluation (printing the
// regenerated rows once), plus functional benchmarks that run the real
// engine on real sockets and files.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/mapred"
)

// printOnce prints each experiment's regenerated table a single time per
// test-binary run, however many benchmark iterations happen.
var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rep *bench.Report
	for i := 0; i < b.N; i++ {
		rep = e.Run()
	}
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Println(rep)
	}
}

func BenchmarkTableI(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkFig2a(b *testing.B)    { runExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)    { runExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B)    { runExperiment(b, "fig2c") }
func BenchmarkFig7a(b *testing.B)    { runExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)    { runExperiment(b, "fig7b") }
func BenchmarkFig8(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkFig9a(b *testing.B)    { runExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)    { runExperiment(b, "fig9b") }
func BenchmarkFig9c(b *testing.B)    { runExperiment(b, "fig9c") }
func BenchmarkFig9d(b *testing.B)    { runExperiment(b, "fig9d") }
func BenchmarkFig10a(b *testing.B)   { runExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B)   { runExperiment(b, "fig10b") }
func BenchmarkFig10c(b *testing.B)   { runExperiment(b, "fig10c") }
func BenchmarkFig11(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12a(b *testing.B)   { runExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B)   { runExperiment(b, "fig12b") }
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkSimulator256GB measures the simulator itself at the largest
// evaluation point (useful when tuning the DES kernel).
func BenchmarkSimulator256GB(b *testing.B) {
	spec := cluster.DefaultSpec(cluster.TerasortWorkload(), 256<<30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := cluster.Simulate(spec, cluster.HadoopOnIPoIB)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.ExecutionTime, "sim-sec")
		}
	}
}

// functionalBench runs one real-engine job per iteration under the named
// provider, optionally pinning the map-side writer strategy.
func functionalBench(b *testing.B, providerName string, writer mapred.WriterStrategy) {
	b.Helper()
	cfg := bench.DefaultFunctionalConfig()
	cfg.Lines = 1000
	cfg.Writer = writer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		providers, err := bench.FunctionalProviders()
		if err != nil {
			b.Fatal(err)
		}
		res, err := bench.RunFunctional(cfg, providers[providerName])
		if err != nil {
			b.Fatal(err)
		}
		if res.Counters.ShuffledBytes == 0 {
			b.Fatal("no shuffle traffic")
		}
	}
}

// BenchmarkFunctionalShuffleHTTP runs real Terasort with the stock Hadoop
// HTTP shuffle (real HTTP servlets, spill merger).
func BenchmarkFunctionalShuffleHTTP(b *testing.B) {
	functionalBench(b, "hadoop-http", mapred.WriterAuto)
}

// BenchmarkFunctionalShuffleJBSTCP runs real Terasort with JBS over real
// TCP sockets (MOFSupplier + NetMerger + network-levitated merge).
func BenchmarkFunctionalShuffleJBSTCP(b *testing.B) { functionalBench(b, "jbs-tcp", mapred.WriterAuto) }

// BenchmarkFunctionalShuffleJBSRDMA runs real Terasort with JBS over the
// emulated RDMA verbs transport.
func BenchmarkFunctionalShuffleJBSRDMA(b *testing.B) {
	functionalBench(b, "jbs-rdma", mapred.WriterAuto)
}

// BenchmarkFunctionalShuffleJBSTCPBypass pins the bypass hash writer on
// the map side: unsorted MOF segments cross real sockets and are
// normalized by the reduce-side merge, end to end.
func BenchmarkFunctionalShuffleJBSTCPBypass(b *testing.B) {
	functionalBench(b, "jbs-tcp", mapred.WriterBypass)
}
