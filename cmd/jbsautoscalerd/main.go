// Command jbsautoscalerd runs the elastic fleet controller: it polls
// the registry for supplier membership and each supplier's advertised
// /debug/jbs/flow endpoint for load signals (admission-ledger pressure,
// capacity-shed rate, DRR queue depth), sizes the fleet with a
// target-tracking policy on shed rate plus an optional step policy on
// queue depth, and launches or retires local jbssupplierd processes to
// match. Retirement always goes through the supplier's own
// SIGTERM -> drain -> handoff path, so scaling down loses no fetch.
// On SIGTERM or SIGINT the controller stops its control loop, then
// retires every supplier it launched (gracefully) and exits 0. See
// docs/DEPLOYMENT.md.
//
// Usage:
//
//	jbsautoscalerd -registry 127.0.0.1:7400 -supplier-bin ./jbssupplierd \
//	    -mof-dir /data/mofs -min 1 -max 4 -target-shed-rate 50
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/autoscale"
	"repro/internal/debug"
	"repro/internal/registry"
)

func main() {
	registryAddr := flag.String("registry", "127.0.0.1:7400", "registry address to watch and register launched suppliers with")
	supplierBin := flag.String("supplier-bin", "", "path to the jbssupplierd binary to launch (required)")
	mofDir := flag.String("mof-dir", "", "MOF directory handed to every launched supplier (required)")
	minFleet := flag.Int("min", 1, "minimum fleet size the controller steers toward")
	maxFleet := flag.Int("max", 4, "maximum fleet size the controller will launch up to")
	interval := flag.Duration("interval", 500*time.Millisecond, "collect/decide tick interval")
	idPrefix := flag.String("id-prefix", "auto", "registry identity prefix for launched suppliers (<prefix>-<n>)")
	admitBytes := flag.Int64("admit-bytes", 0, "admission-ledger budget for launched suppliers; 0 = flow off (no shed signal!)")
	heartbeat := flag.Duration("heartbeat", 0, "heartbeat interval for launched suppliers; 0 = daemon default")
	targetShed := flag.Float64("target-shed-rate", 50, "per-supplier capacity-shed rate (sheds/sec) the fleet is sized to hold")
	queueHigh := flag.Int64("queue-high", 0, "fleet-wide queued-bytes high-water mark tripping a scale-up; 0 disables the queue policy")
	quietFor := flag.Duration("quiet-for", 2*time.Second, "how long signals must stay quiet before a scale-down")
	upCooldown := flag.Duration("up-cooldown", time.Second, "minimum gap between scale-ups")
	downCooldown := flag.Duration("down-cooldown", 2*time.Second, "minimum gap between scale-downs")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on one graceful supplier retirement")
	launchGrace := flag.Duration("launch-grace", 5*time.Second, "how long a launched supplier may take to register before it is given up on")
	debugAddr := flag.String("debug", "", "serve /debug/jbs endpoints (incl. /debug/jbs/autoscale) on this address")
	quiet := flag.Bool("quiet", false, "suppress scale-event logging")
	flag.Parse()

	if *supplierBin == "" {
		fmt.Fprintln(os.Stderr, "jbsautoscalerd: -supplier-bin is required")
		os.Exit(2)
	}
	if *mofDir == "" {
		fmt.Fprintln(os.Stderr, "jbsautoscalerd: -mof-dir is required")
		os.Exit(2)
	}
	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	// Signals first: a SIGTERM racing startup must still retire whatever
	// was already launched.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	shedPolicy, err := autoscale.NewTargetTracking(autoscale.TargetTrackingConfig{
		TargetShedRate: *targetShed,
		QuietFor:       *quietFor,
		UpCooldown:     *upCooldown,
		DownCooldown:   *downCooldown,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsautoscalerd:", err)
		os.Exit(2)
	}
	policies := []autoscale.Policy{shedPolicy}
	if *queueHigh > 0 {
		queuePolicy, err := autoscale.NewQueueStep(autoscale.QueueStepConfig{
			HighBytes:    *queueHigh,
			QuietFor:     *quietFor,
			UpCooldown:   *upCooldown,
			DownCooldown: *downCooldown,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "jbsautoscalerd:", err)
			os.Exit(2)
		}
		policies = append(policies, queuePolicy)
	}

	reg := registry.NewClient(*registryAddr)
	defer reg.Close()
	a, err := autoscale.New(autoscale.Config{
		Collector: &autoscale.FleetCollector{Registry: reg},
		Policies:  policies,
		Launcher: &autoscale.ExecLauncher{
			Binary:       *supplierBin,
			RegistryAddr: *registryAddr,
			MOFDir:       *mofDir,
			AdmitBytes:   *admitBytes,
			Heartbeat:    *heartbeat,
			Log:          logf,
		},
		Min: *minFleet, Max: *maxFleet,
		IDPrefix:     *idPrefix,
		Interval:     *interval,
		DrainTimeout: *drainTimeout,
		LaunchGrace:  *launchGrace,
		Log:          logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsautoscalerd:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		lis, err := debug.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jbsautoscalerd:", err)
			os.Exit(1)
		}
		fmt.Printf("jbsautoscalerd: debug at http://%s/debug/jbs\n", lis.Addr())
	}
	a.Run()
	fmt.Printf("jbsautoscalerd: steering fleet [%d,%d] via %s\n", *minFleet, *maxFleet, *registryAddr)

	sig := <-sigs
	fmt.Printf("jbsautoscalerd: %v, retiring managed fleet\n", sig)
	// Stop the control loop before retiring: a tick racing the drain
	// would see the fleet fall below minimum (retired suppliers are
	// already deregistered) and relaunch a supplier nobody ever retires.
	if err := a.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "jbsautoscalerd:", err)
		os.Exit(1)
	}
	// Bound the whole shutdown, not one retirement: a wedged drain must
	// not leave the rest of the fleet running.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := a.RetireAll(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "jbsautoscalerd: retire:", err)
		os.Exit(1)
	}
	fmt.Println("jbsautoscalerd: fleet retired, exiting")
}
