// Command jbsbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	jbsbench -list                 # show available experiments
//	jbsbench fig7a fig11           # run selected experiments
//	jbsbench all                   # run every table and figure
//	jbsbench functional            # run the real-engine comparison
//	jbsbench overload              # run the multi-tenant flow-control scenario
//	jbsbench hedge                 # hedged fetching tail-latency comparison
//	jbsbench multiproc             # real daemon processes, SIGKILL + restart mid-job
//	jbsbench elastic               # autoscaled supplier fleet under seeded overload
//	jbsbench -dir d mof-fixture    # write a deterministic MOF grid for the daemons
//	jbsbench -csv out/ all         # also write per-experiment CSV files
//	jbsbench -metrics functional   # also dump the metrics registry after the runs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/daemon"
	"repro/internal/metrics"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	short := flag.Bool("short", false, "writer-matrix/multiproc: small smoke configuration (CI)")
	lines := flag.Int("lines", 2000, "input records for the functional run")
	fixtureDir := flag.String("dir", "", "mof-fixture: directory to write the MOF grid into")
	fixtureTasks := flag.Int("fixture-tasks", 4, "mof-fixture: map-task count")
	fixtureParts := flag.Int("fixture-parts", 4, "mof-fixture: partitions per map task")
	segBytes := flag.Int("seg-bytes", 64<<10, "mof-fixture: payload bytes per segment")
	seed := flag.Uint64("seed", 42, "mof-fixture: deterministic content seed")
	csvDir := flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	dumpMetrics := flag.Bool("metrics", false, "dump the full metrics registry (Prometheus text format) after all runs")
	flag.Parse()

	emit := func(rep *bench.Report) {
		fmt.Println(rep)
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "jbsbench:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, rep.ID+".csv")
		if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "jbsbench:", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		fmt.Printf("%-10s %s\n", "functional", "real-engine comparison on real sockets and files")
		fmt.Printf("%-10s %s\n", "overload", "multi-tenant overload: flow control vs unmanaged pipeline")
		fmt.Printf("%-10s %s\n", "hedge", "hedged fetching: tail latency and duplicate-byte cost, on vs off")
		fmt.Printf("%-10s %s\n", "multiproc", "multi-process shuffle: real daemons, SIGKILL + restart mid-job")
		fmt.Printf("%-10s %s\n", "elastic", "elastic fleet: autoscaler scales suppliers 1 -> 3 -> 1 under seeded overload")
		fmt.Printf("%-10s %s\n", "mof-fixture", "write a deterministic MOF grid for the standalone daemons (-dir)")
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: jbsbench [-list] <experiment-id ...|all|functional>")
		os.Exit(2)
	}
	for _, arg := range args {
		switch arg {
		case "all":
			for _, e := range bench.All() {
				emit(e.Run())
			}
		case "functional":
			cfg := bench.DefaultFunctionalConfig()
			cfg.Lines = *lines
			rep, err := bench.Functional(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			emit(rep)
		case "writer-matrix":
			cfg := bench.DefaultWriterMatrixConfig()
			if *short {
				cfg = bench.ShortWriterMatrixConfig()
			}
			rep, cells, err := bench.WriterMatrix(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			emit(rep)
			if *short {
				if err := bench.WriterMatrixSmoke(cells); err != nil {
					fmt.Fprintln(os.Stderr, "jbsbench:", err)
					os.Exit(1)
				}
				fmt.Println("writer-matrix smoke: selector matches the measured winner on every strategy's home cell")
			}
		case "overload":
			rep, err := bench.Overload(bench.DefaultOverloadConfig())
			if err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			emit(rep)
		case "hedge":
			rep, err := bench.HedgeTail(bench.DefaultHedgeTailConfig())
			if err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			emit(rep)
		case "multiproc":
			cfg := bench.DefaultMultiprocConfig()
			if *short {
				cfg = bench.ShortMultiprocConfig()
			}
			cfg.Log = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
			rep, err := bench.Multiproc(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			emit(rep)
		case "elastic":
			cfg := bench.DefaultElasticConfig()
			if *short {
				cfg = bench.ShortElasticConfig()
			}
			cfg.Log = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
			rep, err := bench.Elastic(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			emit(rep)
		case "mof-fixture":
			if *fixtureDir == "" {
				fmt.Fprintln(os.Stderr, "jbsbench: mof-fixture needs -dir")
				os.Exit(2)
			}
			if err := os.MkdirAll(*fixtureDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			if err := daemon.WriteFixture(*fixtureDir, *fixtureTasks, *fixtureParts, *segBytes, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			fmt.Printf("jbsbench: wrote %dx%d MOF grid (%d B segments, seed %d) to %s\n",
				*fixtureTasks, *fixtureParts, *segBytes, *seed, *fixtureDir)
		default:
			e, err := bench.ByID(arg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jbsbench:", err)
				os.Exit(1)
			}
			emit(e.Run())
		}
	}
	if *dumpMetrics {
		fmt.Println("== metrics registry ==")
		if err := metrics.Default().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "jbsbench:", err)
			os.Exit(1)
		}
	}
}
