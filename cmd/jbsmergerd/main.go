// Command jbsmergerd runs one registry-addressed shuffle job: it
// fetches every segment of a tasks×parts MOF grid from whichever
// suppliers own the shards (no addresses are configured — ownership
// comes from the registry), optionally verifying each segment byte-for-
// byte against a local reference directory. Supplier churn mid-job —
// graceful drain or a kill — is absorbed by shed/retry rerouting; the
// job fails loudly on any lost or corrupt segment. See
// docs/DEPLOYMENT.md.
//
// Usage:
//
//	jbsmergerd -registry 127.0.0.1:7400 -tasks 8 -parts 4 -verify /data/mofs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/daemon"
	"repro/internal/flow"
)

func main() {
	registryAddr := flag.String("registry", "127.0.0.1:7400", "registry address resolving shard ownership")
	tasks := flag.Int("tasks", 4, "map-task count of the fixture grid (m-00000 …)")
	parts := flag.Int("parts", 4, "partitions per map task")
	rounds := flag.Int("rounds", 1, "times to fetch the full grid (multi-round jobs give supplier churn a window)")
	verify := flag.String("verify", "", "MOF directory to verify every fetched segment against, byte for byte")
	out := flag.String("out", "", "directory to write fetched segments to (first round only)")
	retries := flag.Int("retries", 8, "fetch retries on connection failure before the job fails")
	resolverTTL := flag.Duration("resolver-ttl", 0, "ownership-map cache TTL; 0 = 200ms default")
	hedge := flag.Bool("hedge", false, "speculatively re-fetch slow segments from replica suppliers (needs a registry running -replicas > 1)")
	hedgeBaseline := flag.Duration("hedge-baseline", 0, "hedge threshold before enough RTT samples exist; 0 = wait for samples")
	flag.Parse()

	cfg := daemon.MergerJobConfig{
		RegistryAddr: *registryAddr,
		Tasks:        *tasks,
		Parts:        *parts,
		Rounds:       *rounds,
		VerifyDir:    *verify,
		OutDir:       *out,
		MaxRetries:   *retries,
		ResolverTTL:  *resolverTTL,
		Progress: func(format string, args ...any) {
			fmt.Printf("jbsmergerd: "+format+"\n", args...)
		},
	}
	if *hedge {
		cfg.Hedge = &flow.HedgeConfig{Baseline: *hedgeBaseline}
	}
	st, err := daemon.RunMergerJob(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsmergerd:", err)
		os.Exit(1)
	}
	verified := ""
	if *verify != "" {
		verified = ", all verified"
	}
	hedged := ""
	if *hedge {
		hedged = fmt.Sprintf(", %d hedges (%d wins, %d duplicate bytes)", st.Hedges, st.HedgeWins, st.DupBytes)
	}
	fmt.Printf("jbsmergerd: done: %d segments, %d bytes, %d retries, %d sheds, %d rerouted%s%s\n",
		st.Segments, st.Bytes, st.Retries, st.Sheds, st.Rerouted, hedged, verified)
}
