// Command jbsregistryd runs the JBS discovery/ownership registry: the
// process suppliers register with, heartbeat against, and mergers query
// for the shard→supplier ownership map. All state is in memory; on
// restart suppliers re-register within one heartbeat interval. See
// docs/DEPLOYMENT.md for the topology and the drain/handoff protocol.
//
// Usage:
//
//	jbsregistryd -addr :7400 -shards 16 -lease-ttl 3s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/debug"
	"repro/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "registry listen address")
	shards := flag.Int("shards", 16, "MOF shard count (a deployment constant; suppliers and mergers must agree)")
	leaseTTL := flag.Duration("lease-ttl", 3*time.Second, "supplier lease TTL; a supplier missing heartbeats this long is expired")
	sweep := flag.Duration("sweep", 0, "expired-lease sweep interval; 0 = lease-ttl/4")
	replicas := flag.Int("replicas", 1, "suppliers per shard (1 primary + N-1 backups); above 1 enables hedged fetching against replicas")
	debugAddr := flag.String("debug", "", "serve /debug/jbs endpoints on this address (e.g. localhost:6060)")
	quiet := flag.Bool("quiet", false, "suppress per-event membership logging")
	flag.Parse()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	s, err := registry.NewServer(registry.ServerConfig{
		Addr:          *addr,
		Shards:        *shards,
		LeaseTTL:      *leaseTTL,
		SweepInterval: *sweep,
		Replicas:      *replicas,
		Log:           logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsregistryd:", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		lis, err := debug.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jbsregistryd:", err)
			os.Exit(1)
		}
		fmt.Printf("jbsregistryd: debug at http://%s/debug/jbs\n", lis.Addr())
	}
	fmt.Printf("jbsregistryd: serving %d shards at %s (lease TTL %v)\n", *shards, s.Addr(), *leaseTTL)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	fmt.Printf("jbsregistryd: %v, shutting down\n", sig)
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "jbsregistryd:", err)
		os.Exit(1)
	}
}
