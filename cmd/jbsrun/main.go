// Command jbsrun executes one MapReduce benchmark on the real engine —
// real input files, a real DFS, real shuffle traffic over real sockets
// (or the emulated RDMA verbs) — under a chosen shuffle provider. All
// nodes run inside this one process; for the multi-process deployment
// of the same engine (standalone supplier/merger daemons coordinated by
// a discovery registry) see jbsregistryd, jbssupplierd, jbsmergerd, and
// docs/DEPLOYMENT.md.
//
// Usage:
//
//	jbsrun -benchmark WordCount -shuffle jbs-rdma -lines 5000
//	jbsrun -trace 10 -debug localhost:6060   # observability: see docs/OBSERVABILITY.md
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/debug"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/shuffle"
	"repro/internal/workload"
)

func main() {
	benchmark := flag.String("benchmark", "Terasort", "benchmark name (Terasort, WordCount, Grep, SelfJoin, InvertedIndex, SequenceCount, AdjacencyList)")
	shuffleName := flag.String("shuffle", "jbs-tcp", "shuffle provider: hadoop-http, jbs-tcp, jbs-rdma")
	lines := flag.Int("lines", 2000, "input records to generate")
	nodes := flag.Int("nodes", 3, "in-process node count")
	reducers := flag.Int("reducers", 4, "ReduceTask count")
	seed := flag.Int64("seed", 42, "input generator seed")
	showOutput := flag.Int("show", 5, "output lines to print")
	compress := flag.Bool("compress", false, "compress map outputs (mapred.compress.map.output)")
	sortMem := flag.Int64("sortmem", 0, "map-side sort buffer bytes; 0 = unbounded (io.sort.mb)")
	hierarchical := flag.Int("hierarchical", 0, "hierarchical merge fan-in for JBS; 0 = flat network-levitated merge")
	retries := flag.Int("retries", 0, "JBS fetch retries on connection failure")
	debugAddr := flag.String("debug", "", "serve /debug/jbs endpoints on this address and stay up after the run (e.g. localhost:6060)")
	traceN := flag.Int("trace", 0, "record per-segment fetch traces and print the N slowest")
	flag.Parse()

	if _, err := workload.ByName(*benchmark); err != nil {
		fmt.Fprintln(os.Stderr, "jbsrun:", err)
		os.Exit(2)
	}
	var provider mapred.ShuffleProvider
	var err error
	switch *shuffleName {
	case "hadoop-http":
		provider = shuffle.NewHTTPProvider(shuffle.HTTPConfig{ShuffleMemory: 4 << 10})
	case "jbs-tcp", "jbs-rdma":
		provider, err = shuffle.NewJBSProvider(shuffle.JBSConfig{
			Transport:         (*shuffleName)[len("jbs-"):],
			FetchRetries:      *retries,
			HierarchicalFanIn: *hierarchical,
		})
	default:
		fmt.Fprintf(os.Stderr, "jbsrun: unknown shuffle %q\n", *shuffleName)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsrun:", err)
		os.Exit(1)
	}

	var debugLis net.Listener
	if *debugAddr != "" {
		debugLis, err = debug.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jbsrun:", err)
			os.Exit(1)
		}
		fmt.Printf("debug: serving http://%s/debug/jbs\n", debugLis.Addr())
	}
	if *traceN > 0 {
		metrics.DefaultTracer().Enable()
	}

	res, err := bench.RunFunctional(bench.FunctionalConfig{
		Benchmark:   *benchmark,
		Lines:       *lines,
		Nodes:       *nodes,
		Reducers:    *reducers,
		Seed:        *seed,
		CompressMOF: *compress,
		SortMemory:  *sortMem,
	}, provider)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsrun:", err)
		os.Exit(1)
	}

	c := res.Counters
	fmt.Printf("%s on %s: %s\n", *benchmark, res.Provider, res.Elapsed.Round(1e6))
	fmt.Printf("  map tasks        %d (%d local, %d remote)\n", c.MapTasks, c.LocalMapTasks, c.RemoteMapTasks)
	fmt.Printf("  map records      %d in, %d out\n", c.MapInputRecords, c.MapOutputRecords)
	if c.CombineInputs > 0 {
		fmt.Printf("  combine          %d -> %d records\n", c.CombineInputs, c.CombineOutputs)
	}
	fmt.Printf("  shuffle          %d segments, %d bytes\n", c.ShuffledSegments, c.ShuffledBytes)
	fmt.Printf("  spills           %d events, %d bytes\n", c.SpillEvents, c.SpilledBytes)
	fmt.Printf("  reduce           %d tasks, %d groups, %d output records\n", c.ReduceTasks, c.ReduceGroups, c.OutputRecords)
	if !res.Phases.Zero() {
		fmt.Printf("  phase breakdown (shuffle data path):\n%s", res.Phases.Format("    "))
	}
	if *traceN > 0 {
		slowest := metrics.DefaultTracer().Slowest(*traceN)
		fmt.Printf("  slowest %d fetch traces:\n", len(slowest))
		for _, tr := range slowest {
			fmt.Printf("    %s\n", tr)
		}
	}
	if *showOutput > 0 {
		outLines := strings.Split(strings.TrimSpace(res.Output), "\n")
		n := *showOutput
		if n > len(outLines) {
			n = len(outLines)
		}
		fmt.Printf("  first %d output lines:\n", n)
		for _, l := range outLines[:n] {
			fmt.Printf("    %s\n", l)
		}
	}
	if debugLis != nil {
		fmt.Printf("debug: run complete; still serving http://%s/debug/jbs (Ctrl-C to exit)\n", debugLis.Addr())
		select {}
	}
}
