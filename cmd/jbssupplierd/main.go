// Command jbssupplierd runs one standalone MOF supplier: it serves the
// MOFs in -mof-dir over the JBS fetch protocol, registers with the
// registry under a stable identity, and heartbeats to keep its lease.
// On SIGTERM or SIGINT it exits gracefully — shard ownership is handed
// to a peer, new fetches are shed (the merger reroutes them), in-flight
// fetches complete, and only then does the process exit 0 — so rolling
// a supplier loses no data. See docs/DEPLOYMENT.md.
//
// Usage:
//
//	jbssupplierd -registry 127.0.0.1:7400 -addr :7501 -id sup-1 -mof-dir /data/mofs
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/debug"
	"repro/internal/flow"
)

func main() {
	registryAddr := flag.String("registry", "127.0.0.1:7400", "registry address to register with")
	addr := flag.String("addr", "127.0.0.1:0", "fetch listen address (:0 for ephemeral)")
	id := flag.String("id", "", "stable registry identity; reuse it across restarts (default sup-<addr>)")
	mofDir := flag.String("mof-dir", "", "directory of MOFs to serve (<task>.data/<task>.index)")
	bufferSize := flag.Int("buffer", 0, "transport buffer bytes per response chunk; 0 = transport default")
	cacheBytes := flag.Int64("cache-bytes", 0, "DataCache capacity; 0 = 64MiB default")
	admitBytes := flag.Int64("admit-bytes", 0, "enable flow control with this admission-ledger budget; 0 = flow off")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "registry heartbeat interval (keep well under the registry's lease TTL)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on waiting for in-flight fetches during graceful shutdown")
	debugAddr := flag.String("debug", "", "serve /debug/jbs endpoints on this address (e.g. localhost:6061)")
	quiet := flag.Bool("quiet", false, "suppress lifecycle logging")
	flag.Parse()

	if *mofDir == "" {
		fmt.Fprintln(os.Stderr, "jbssupplierd: -mof-dir is required")
		os.Exit(2)
	}
	var fc *flow.Config
	if *admitBytes > 0 {
		fc = &flow.Config{AdmitBytes: *admitBytes}
	}
	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	// Catch signals before startup: a SIGTERM racing the registry
	// handshake must still produce a graceful drain, not a default kill.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	// The debug listener starts before the daemon so its bound address
	// can ride the registration: the autoscaler's collector discovers
	// suppliers through the registry and polls each one's advertised
	// /debug/jbs/flow endpoint for scaling signals.
	advertiseDebug := ""
	if *debugAddr != "" {
		lis, err := debug.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jbssupplierd:", err)
			os.Exit(1)
		}
		advertiseDebug = lis.Addr().String()
		fmt.Printf("jbssupplierd: debug at http://%s/debug/jbs\n", advertiseDebug)
	}
	d, err := daemon.StartSupplier(daemon.SupplierConfig{
		ID:                *id,
		Addr:              *addr,
		RegistryAddr:      *registryAddr,
		MOFDir:            *mofDir,
		BufferSize:        *bufferSize,
		DataCacheBytes:    *cacheBytes,
		Flow:              fc,
		HeartbeatInterval: *heartbeat,
		DebugAddr:         advertiseDebug,
		Log:               logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbssupplierd:", err)
		os.Exit(1)
	}
	fmt.Printf("jbssupplierd: %s serving %s at %s\n", d.ID(), *mofDir, d.Addr())

	sig := <-sigs
	fmt.Printf("jbssupplierd: %v, draining\n", sig)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "jbssupplierd: drain:", err)
		d.Close()
		os.Exit(1)
	}
	if err := d.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "jbssupplierd:", err)
		os.Exit(1)
	}
	fmt.Println("jbssupplierd: drained, exiting")
}
