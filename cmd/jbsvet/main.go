// Command jbsvet is the repo-specific static-analysis gate for the JBS
// tree. It loads packages with go/parser + go/types (stdlib only, no
// third-party analysis framework) and enforces the concurrency and
// correctness invariants the shuffle pipeline depends on; see
// docs/STATIC_ANALYSIS.md for the check catalogue and the
// //jbsvet:ignore suppression syntax.
//
// Usage:
//
//	jbsvet [-checks lockhygiene,goroutines,...] [-list] [-v]
//	       [-json] [-stale-ignores] [-timing] [patterns]
//
// Patterns are Go-style package patterns rooted at the module
// ("./...", "./internal/...", "./internal/core"). With no patterns the
// default is "./internal/... ./cmd/...". -json emits one JSON object per
// finding (machine-readable; pairs with the GitHub Actions problem
// matcher in .github/jbsvet-problem-matcher.json). -stale-ignores audits
// //jbsvet:ignore directives and fails on ones that no longer suppress
// any finding. -timing prints per-check wall time to stderr. Exit
// status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
)

// jsonFinding is the -json wire shape of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	verbose := flag.Bool("v", false, "log each package as it is checked")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON Lines on stdout")
	staleFlag := flag.Bool("stale-ignores", false, "also fail on //jbsvet:ignore directives that suppress nothing")
	timingFlag := flag.Bool("timing", false, "print per-check wall time to stderr")
	flag.Parse()

	if *listFlag {
		for _, c := range analysis.AllChecks() {
			fmt.Printf("%-12s %s\n", c.Name(), c.Doc())
		}
		return
	}

	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsvet:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsvet:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsvet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	dirs, err := expandPatterns(loader.Root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsvet:", err)
		os.Exit(2)
	}

	runner := &analysis.Runner{
		Loader:            loader,
		Checks:            checks,
		Scopes:            analysis.DefaultScopes(),
		AuditSuppressions: *staleFlag,
	}
	if *verbose {
		runner.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	start := time.Now()
	findings, err := runner.RunDirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jbsvet:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if *jsonFlag {
			enc.Encode(jsonFinding{
				File: pos.Filename, Line: pos.Line, Column: pos.Column,
				Check: f.Check, Message: f.Message,
			})
			continue
		}
		fmt.Printf("%s: [%s] %s\n", pos, f.Check, f.Message)
	}
	if *timingFlag {
		printTimings(runner, time.Since(start))
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "jbsvet: %d finding(s) in %d package(s) scanned\n", n, len(dirs))
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "jbsvet: clean (%d packages)\n", len(dirs))
	}
}

// printTimings reports cumulative per-check wall time, slowest first.
func printTimings(r *analysis.Runner, total time.Duration) {
	type row struct {
		name string
		d    time.Duration
	}
	rows := make([]row, 0, len(r.Timings))
	for name, d := range r.Timings {
		rows = append(rows, row{name, d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	for _, rw := range rows {
		fmt.Fprintf(os.Stderr, "jbsvet: timing %-14s %8.1fms\n", rw.name, float64(rw.d.Microseconds())/1000)
	}
	fmt.Fprintf(os.Stderr, "jbsvet: timing %-14s %8.1fms\n", "total", float64(total.Microseconds())/1000)
}

// selectChecks resolves the -checks flag against the registry.
func selectChecks(spec string) ([]analysis.Check, error) {
	all := analysis.AllChecks()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]analysis.Check, len(all))
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []analysis.Check
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (use -list)", name)
		}
		out = append(out, c)
	}
	return out, nil
}

// expandPatterns turns package patterns into package directories under
// root, via analysis.GoPackageDirs for the recursive "/..." form.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		p = filepath.ToSlash(p)
		recursive := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			recursive = true
			p = rest
			if p == "." || p == "" {
				p = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(p, "./")))
		if !recursive {
			if analysis.HasGoFiles(base) {
				add(base)
				continue
			}
			return nil, fmt.Errorf("no Go files in %s", base)
		}
		sub, err := analysis.GoPackageDirs(base)
		if err != nil {
			return nil, err
		}
		for _, d := range sub {
			add(d)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
