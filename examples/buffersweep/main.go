// Command buffersweep runs the Fig. 11 experiment at both scales: it
// sweeps the JBS transport buffer size on the real engine (real sockets
// moving real segments) and on the simulated 22-node testbed.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/shuffle"
	"repro/internal/transport"
)

func main() {
	fmt.Println("Real engine: Terasort, 2000 records, JBS over TCP")
	fmt.Printf("%-12s %s\n", "buffer", "wall time")
	for _, kb := range []int{2, 8, 32, 128} {
		prov, err := shuffle.NewJBSProvider(shuffle.JBSConfig{
			Transport: "tcp",
			Net: transport.Config{
				BufferSize:     kb << 10,
				BufferCount:    64,
				MaxConnections: transport.DefaultMaxConnections,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := bench.DefaultFunctionalConfig()
		res, err := bench.RunFunctional(cfg, prov)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d KB    %s\n", kb, res.Elapsed.Round(time.Millisecond))
	}

	fmt.Println("\nSimulated testbed: 128GB Terasort on 22 nodes (paper Fig. 11)")
	fmt.Printf("%-12s %-14s %-14s %s\n", "buffer", "JBS on IPoIB", "JBS on RDMA", "JBS on RoCE")
	for _, kb := range []int{8, 16, 32, 64, 128, 256, 512} {
		spec := cluster.DefaultSpec(cluster.TerasortWorkload(), 128<<30)
		spec.BufferSize = kb << 10
		row := fmt.Sprintf("%6d KB  ", kb)
		for _, tc := range []cluster.TestCase{cluster.JBSOnIPoIB, cluster.JBSOnRDMA, cluster.JBSOnRoCE} {
			r, err := cluster.Simulate(spec, tc)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %8.1f s  ", r.ExecutionTime)
		}
		fmt.Println(row)
	}
	fmt.Println("\nThe paper selects 128KB as the default: large enough to amortize")
	fmt.Println("per-request overheads, small enough to keep the buffer pool deep.")
}
