// Command faulttolerance exercises the engine's failure machinery on a real job —
// flaky map attempts retried, a straggler rescued by speculative
// execution, a lost DFS replica served by failover, and a killed shuffle
// connection resent by the NetMerger — all while the job's answer stays
// exactly right.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/shuffle"
	"repro/internal/workload"
)

func main() {
	root, err := os.MkdirTemp("", "jbs-faults")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	nodes := []string{"node00", "node01", "node02"}
	fs, err := dfs.NewCluster(dfs.Config{
		BlockSize:   16 * workload.LineWidth,
		Replication: 2, // two replicas: failover has somewhere to go
	}, nodes, root+"/dfs")
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.TextCorpus(fs, "/input", "node00", 96, 25, 3); err != nil {
		log.Fatal(err)
	}

	// Sabotage the DFS: delete the primary replica of the first block.
	fi, err := fs.Stat("/input")
	if err != nil {
		log.Fatal(err)
	}
	victim := fi.Blocks[0]
	fmt.Printf("sabotage: removing replica of block %d from %s (replica remains on %s)\n",
		victim.ID, victim.Hosts[0], victim.Hosts[1])
	if err := os.Remove(root + "/dfs/" + victim.Hosts[0] + "/blk_" +
		strconv.FormatInt(victim.ID, 10)); err != nil {
		log.Fatal(err)
	}

	// A shuffle provider with fetch retries enabled.
	provider, err := shuffle.NewJBSProvider(shuffle.JBSConfig{
		Transport:    "tcp",
		FetchRetries: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := mapred.NewCluster(mapred.Config{
		Nodes:            nodes,
		WorkDir:          root + "/work",
		MaxTaskAttempts:  3,
		Speculative:      true,
		SpeculativeDelay: 100 * time.Millisecond,
	}, fs, provider)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	// A word-count job whose first map attempt fails and whose second map
	// call straggles, triggering both retry and speculation.
	var calls atomic.Int64
	job := workload.WordCount().Job("/input", "/out", 2)
	innerMap := job.Map
	job.Map = func(k, v []byte, emit mapred.Emit) error {
		switch calls.Add(1) {
		case 1:
			fmt.Println("fault: first map attempt fails (transient)")
			return fmt.Errorf("injected transient failure")
		case 2:
			fmt.Println("fault: second map call straggles 300ms (speculation window is 100ms)")
			time.Sleep(300 * time.Millisecond)
		}
		return innerMap(k, v, emit)
	}

	res, err := engine.Run(job)
	if err != nil {
		log.Fatal(err)
	}

	c := res.Counters
	fmt.Println("\njob completed despite the injected faults:")
	fmt.Printf("  task retries          %d\n", c.TaskRetries)
	fmt.Printf("  speculative launches  %d (wins: %d)\n", c.SpeculativeLaunches, c.SpeculativeWins)
	fmt.Printf("  dfs replica failovers %d\n", fs.Failovers())
	fmt.Printf("  map tasks committed   %d (each exactly once)\n", c.MapTasks)
	fmt.Printf("  output records        %d\n", c.OutputRecords)

	// Verify the totals: every word of every line was counted once.
	var total int
	for _, p := range res.OutputFiles {
		r, err := fs.Open(p, "")
		if err != nil {
			log.Fatal(err)
		}
		buf := new(strings.Builder)
		tmp := make([]byte, 32<<10)
		for {
			n, rerr := r.Read(tmp)
			buf.Write(tmp[:n])
			if rerr != nil {
				break
			}
		}
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			parts := strings.SplitN(line, "\t", 2)
			if len(parts) == 2 {
				n, _ := strconv.Atoi(parts[1])
				total += n
			}
		}
	}
	want := 96 * 7 // 7 tokens per generated line
	fmt.Printf("  counted tokens        %d (want %d)\n", total, want)
	if total != want {
		log.Fatal("fault handling corrupted the answer!")
	}
	fmt.Println("\nexactly-once semantics held: retries, speculation, and failover are invisible in the output.")
}
