// Command quickstart runs a WordCount job on the in-process MapReduce engine with
// JVM-Bypass Shuffling over TCP — real input files, a real DFS, real
// shuffle traffic — in under a second.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/shuffle"
	"repro/internal/workload"
)

func main() {
	root, err := os.MkdirTemp("", "jbs-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// 1. A three-node DFS with small blocks so several MapTasks spawn.
	nodes := []string{"node00", "node01", "node02"}
	fs, err := dfs.NewCluster(dfs.Config{
		BlockSize:   16 * workload.LineWidth,
		Replication: 1,
	}, nodes, root+"/dfs")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Generate a synthetic text corpus (block-aligned lines).
	if err := workload.TextCorpus(fs, "/input", "node00", 200, 30, 1); err != nil {
		log.Fatal(err)
	}

	// 3. A compute cluster wired to the JBS shuffle plugin.
	provider, err := shuffle.NewJBSProvider(shuffle.JBSConfig{Transport: "tcp"})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := mapred.NewCluster(mapred.Config{
		Nodes:   nodes,
		WorkDir: root + "/work",
	}, fs, provider)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	// 4. Run WordCount (with its combiner) across 3 reducers.
	job := workload.WordCount().Job("/input", "/out", 3)
	res, err := engine.Run(job)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job %q finished with shuffle %q\n", res.Job, res.Shuffle)
	fmt.Printf("  %d map tasks, %d reduce tasks\n", res.Counters.MapTasks, res.Counters.ReduceTasks)
	fmt.Printf("  combiner shrank %d records to %d\n", res.Counters.CombineInputs, res.Counters.CombineOutputs)
	fmt.Printf("  shuffled %d bytes in %d segments, %d spill events (JBS never spills)\n",
		res.Counters.ShuffledBytes, res.Counters.ShuffledSegments, res.Counters.SpillEvents)

	// 5. Read back the most frequent words.
	type wc struct {
		word  string
		count int
	}
	var counts []wc
	for _, p := range res.OutputFiles {
		r, err := fs.Open(p, "")
		if err != nil {
			log.Fatal(err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			parts := strings.SplitN(line, "\t", 2)
			if len(parts) != 2 {
				continue
			}
			var n int
			fmt.Sscanf(parts[1], "%d", &n)
			counts = append(counts, wc{parts[0], n})
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].count > counts[j].count })
	fmt.Println("  top words:")
	for i := 0; i < 5 && i < len(counts); i++ {
		fmt.Printf("    %-10s %d\n", counts[i].word, counts[i].count)
	}
}
