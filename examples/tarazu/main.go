// Command tarazu runs the paper's benchmark suite (Fig. 12) at laptop scale on the
// real engine, under the baseline HTTP shuffle and JBS, and report the
// shuffle-volume classes that drive the paper's Section V-F analysis.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	providers, err := bench.FunctionalProviders()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Tarazu suite on the real engine (512 records each, 2 nodes, 2 reducers)")
	fmt.Printf("\n%-15s %-7s %-12s %-12s %-14s %s\n",
		"benchmark", "class", "http time", "jbs time", "shuffle bytes", "shuffle/input")
	for _, bm := range workload.TarazuSuite() {
		cfg := bench.FunctionalConfig{
			Benchmark: bm.Name, Lines: 512, Nodes: 2, Reducers: 2, Seed: 11,
		}
		httpRes, err := bench.RunFunctional(cfg, providers["hadoop-http"])
		if err != nil {
			log.Fatalf("%s on http: %v", bm.Name, err)
		}
		jbsRes, err := bench.RunFunctional(cfg, providers["jbs-tcp"])
		if err != nil {
			log.Fatalf("%s on jbs: %v", bm.Name, err)
		}
		if httpRes.Output != jbsRes.Output {
			log.Fatalf("%s outputs differ between shuffles", bm.Name)
		}
		class := "light"
		if bm.ShuffleHeavy {
			class = "HEAVY"
		}
		inputBytes := int64(512 * workload.LineWidth)
		ratio := float64(jbsRes.Counters.ShuffledBytes) / float64(inputBytes)
		fmt.Printf("%-15s %-7s %-12s %-12s %10d     %.3f\n",
			bm.Name, class,
			httpRes.Elapsed.Round(time.Millisecond),
			jbsRes.Elapsed.Round(time.Millisecond),
			jbsRes.Counters.ShuffledBytes, ratio)
	}
	fmt.Println("\nThe four shuffle-heavy benchmarks move intermediate data comparable to")
	fmt.Println("their input, which is where JBS's bypass pays off (paper Fig. 12); the")
	fmt.Println("combiners of WordCount and Grep shrink their shuffles to almost nothing.")
}
