// Command terasort runs the paper's headline workload back-to-back under the
// stock Hadoop-style HTTP shuffle and under JBS (TCP and emulated RDMA),
// verifying identical globally-sorted output and contrasting the shuffle
// counters — the laptop-scale analogue of Fig. 7.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/shuffle"
	"repro/internal/workload"
)

const (
	records  = 3000
	nodes    = 3
	reducers = 4
)

func runOnce(name string, provider mapred.ShuffleProvider) (time.Duration, *mapred.Result, string) {
	root, err := os.MkdirTemp("", "jbs-terasort")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	var nodeNames []string
	for i := 0; i < nodes; i++ {
		nodeNames = append(nodeNames, fmt.Sprintf("node%02d", i))
	}
	fs, err := dfs.NewCluster(dfs.Config{
		BlockSize:   64 * workload.TeraRecordLen,
		Replication: 1,
	}, nodeNames, root+"/dfs")
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.Teragen(fs, "/input", "node00", records, 7); err != nil {
		log.Fatal(err)
	}
	engine, err := mapred.NewCluster(mapred.Config{Nodes: nodeNames, WorkDir: root + "/work"}, fs, provider)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	start := time.Now()
	res, err := engine.Run(workload.Terasort().Job("/input", "/sorted", reducers))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var sb strings.Builder
	for _, p := range res.OutputFiles {
		r, err := fs.Open(p, "")
		if err != nil {
			log.Fatal(err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			log.Fatal(err)
		}
		sb.Write(data)
	}
	return elapsed, res, sb.String()
}

func main() {
	httpProv := shuffle.NewHTTPProvider(shuffle.HTTPConfig{ShuffleMemory: 16 << 10})
	jbsTCP, err := shuffle.NewJBSProvider(shuffle.JBSConfig{Transport: "tcp"})
	if err != nil {
		log.Fatal(err)
	}
	jbsRDMA, err := shuffle.NewJBSProvider(shuffle.JBSConfig{Transport: "rdma"})
	if err != nil {
		log.Fatal(err)
	}

	type run struct {
		name     string
		provider mapred.ShuffleProvider
	}
	var baseline string
	fmt.Printf("Terasort, %d records x %d bytes, %d nodes, %d reducers\n\n",
		records, workload.TeraRecordLen, nodes, reducers)
	fmt.Printf("%-12s %-10s %-14s %-12s %s\n", "shuffle", "time", "shuffled", "spills", "sorted?")
	for _, r := range []run{
		{"hadoop-http", httpProv},
		{"jbs-tcp", jbsTCP},
		{"jbs-rdma", jbsRDMA},
	} {
		elapsed, res, out := runOnce(r.name, r.provider)
		if baseline == "" {
			baseline = out
		} else if out != baseline {
			log.Fatalf("%s output differs from baseline!", r.name)
		}
		lines := strings.Split(strings.TrimSpace(out), "\n")
		sorted := true
		for i := 1; i < len(lines); i++ {
			if lines[i-1][:workload.TeraKeyLen] > lines[i][:workload.TeraKeyLen] {
				sorted = false
			}
		}
		fmt.Printf("%-12s %-10s %8d bytes %4d events  %v\n",
			r.name, elapsed.Round(time.Millisecond), res.Counters.ShuffledBytes,
			res.Counters.SpillEvents, sorted && len(lines) == records)
	}
	fmt.Println("\nAll three shuffles produced byte-identical, globally sorted output.")
	fmt.Println("The JBS rows show zero spill events: the network-levitated merge keeps")
	fmt.Println("fetched segments in memory instead of writing them back to disk.")
}
