// Package analysis implements jbsvet, the repo-specific static-analysis
// pass (see docs/STATIC_ANALYSIS.md). JBS's value proposition is a
// lock-tight concurrent data path — MOFSupplier's pipelined DataCache,
// NetMerger's per-node request groups, the LRU connection cache — and the
// checks here enforce the invariants that keep that path correct:
//
//   - lockhygiene: every Lock has a matching Unlock, no return while a
//     mutex is held without a deferred unlock, and no blocking operation
//     (channel send/recv, select, net I/O, time.Sleep, WaitGroup.Wait)
//     while a state mutex is held.
//   - goroutines: every goroutine launched in the concurrent core packages
//     must be reachable from a shutdown path (a context.Context, a
//     done-channel receive, or a sync.WaitGroup).
//   - errcheck: Close/Write/Flush results in the data-integrity packages
//     must be checked or explicitly discarded with `_ =`.
//   - simclock: no direct wall-clock calls in simulation/model packages
//     outside the clock abstraction.
//   - doccomment: every package carries a godoc-convention package doc
//     comment ("Package <name>" / "Command <name>") — the entry points
//     the documentation pass (docs/ARCHITECTURE.md) builds on.
//   - gaugepair: a plain int field and its mirror *metrics.Gauge field
//     (x / xG, e.g. nodeGroup.inflight / inflightG) must move together
//     in the same function — the inflight-drift class of bug.
//   - testgoroutine: testing.T/B Fatal/Fatalf/FailNow/Skip/Skipf/SkipNow
//     must not be called from goroutines spawned by a test — they stop
//     only the calling goroutine, silently corrupting the test's control
//     flow. The one check that runs over _test.go files.
//
// On top of the syntactic checks, three path-sensitive checks run over
// per-function control-flow graphs (internal/analysis/cfg) with
// lightweight interprocedural summaries (summary.go):
//
//   - leaseflow: every bufpool/mof lease acquired must be Released or
//     ownership-transferred on every path, including early-error returns.
//   - ledgerbalance: every flow-ledger Admit charge must be drained or
//     recorded on every path (Shed charges nothing).
//   - lockorder: the repo-wide mutex acquisition graph must be acyclic
//     (whole-program; see ProgramCheck).
//
// The package uses only the standard library (go/ast, go/parser,
// go/types); go.mod stays dependency-free.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
}

// A Check inspects one type-checked package and reports violations. Run
// must not filter suppressions; the Runner applies //jbsvet:ignore
// directives so golden tests can observe raw findings.
type Check interface {
	// Name is the identifier used in -checks and in suppression comments.
	Name() string
	// Doc is a one-line description.
	Doc() string
	// Run reports every violation in pkg.
	Run(pkg *Package) []Finding
}

// AllChecks returns every jbsvet check in stable order.
func AllChecks() []Check {
	return []Check{
		&LockCheck{},
		&GoroutineCheck{},
		&ErrCheck{},
		&SimClockCheck{},
		&DocCommentCheck{},
		&GaugePairCheck{},
		&TestGoroutineCheck{},
		&LeaseFlowCheck{},
		&LedgerBalanceCheck{},
		&LockOrderCheck{},
	}
}

// ProgramCheck is implemented by checks that need the whole program at
// once rather than one package at a time (lockorder's acquisition graph
// spans packages). The Runner calls RunProgram once, after the
// per-package pass, with every loaded package the check is in scope for.
type ProgramCheck interface {
	Check
	RunProgram(pkgs []*Package) []Finding
}

// TestFileCheck is implemented by checks that analyze _test.go files.
// For these the Runner loads each directory's test units — the package
// merged with its in-package tests, and the external _test package —
// via Loader.LoadTests and runs the check over those as well.
type TestFileCheck interface {
	Check
	WantsTestFiles() bool
}

// DefaultScopes maps a check name to the module-relative directory
// prefixes it applies to. A missing entry (or nil slice) means the check
// runs on every scanned package. A trailing "*" matches any directory
// whose path begins with the stem (e.g. "internal/sim*" covers
// internal/sim, internal/simnet, internal/simdisk, internal/simcpu).
func DefaultScopes() map[string][]string {
	return map[string][]string{
		"goroutines": {"internal/core", "internal/transport", "internal/mapred",
			"internal/registry", "internal/daemon", "internal/autoscale"},
		"errcheck": {"internal/transport", "internal/mof", "internal/mapred",
			"internal/autoscale"},
		"simclock":  {"internal/sim*", "internal/shuffle"},
		"gaugepair": {"internal/core", "internal/flow"},
		// testgoroutine runs everywhere tests run; the explicit entry is
		// documentation that the breadth is deliberate.
		"testgoroutine": {"internal", "cmd"},
		// leaseflow and ledgerbalance are unscoped (they run everywhere):
		// the lease and ledger types only occur on the data path, so
		// breadth costs nothing and catches new call sites automatically.
		// lockorder is bounded to the concurrent core — the packages whose
		// mutexes can nest across call chains.
		"lockorder": {"internal/core", "internal/flow", "internal/transport",
			"internal/mof", "internal/bufpool"},
	}
}

// inScope reports whether a package at module-relative path rel matches
// one of the scope patterns.
func inScope(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if stem, ok := strings.CutSuffix(p, "*"); ok {
			if strings.HasPrefix(rel, stem) {
				return true
			}
			continue
		}
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Runner loads packages and applies the configured checks.
type Runner struct {
	Loader *Loader
	Checks []Check
	// Scopes maps check name -> directory prefixes (see DefaultScopes).
	Scopes map[string][]string
	// Verbose, when set, receives one line per package checked.
	Verbose func(format string, args ...any)
	// AuditSuppressions, when set, additionally reports stale
	// //jbsvet:ignore directives: ones whose check ran over their file
	// during this scan yet suppressed nothing.
	AuditSuppressions bool
	// Timings, after RunDirs returns, holds cumulative wall time per
	// check name (plus "load" for parsing and type-checking).
	Timings map[string]time.Duration
}

// timed accumulates the duration of f under name in r.Timings.
func (r *Runner) timed(name string, f func()) {
	start := time.Now()
	f()
	if r.Timings == nil {
		r.Timings = make(map[string]time.Duration)
	}
	r.Timings[name] += time.Since(start)
}

// RunDirs checks every package directory in dirs and returns the surviving
// findings sorted by position. Suppressed findings are dropped; malformed
// suppression directives are themselves reported as findings. Checks
// implementing ProgramCheck run once at the end over every package they
// are in scope for.
func (r *Runner) RunDirs(dirs []string) ([]Finding, error) {
	var all []Finding
	table := newSuppressionTable()
	progPkgs := make(map[string][]*Package)
	var progChecks []ProgramCheck
	for _, c := range r.Checks {
		if pc, ok := c.(ProgramCheck); ok {
			progChecks = append(progChecks, pc)
		}
	}

	for _, dir := range dirs {
		var pkg *Package
		var err error
		r.timed("load", func() { pkg, err = r.Loader.Load(dir) })
		if err != nil {
			return nil, fmt.Errorf("analysis: load %s: %w", dir, err)
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("analysis: type-check %s: %v (and %d more)",
				dir, pkg.TypeErrors[0], len(pkg.TypeErrors)-1)
		}
		if r.Verbose != nil {
			r.Verbose("jbsvet: checking %s", pkg.Rel)
		}
		var raw []Finding
		var ran []string
		var testChecks []Check
		for _, c := range r.Checks {
			if !inScope(pkg.Rel, r.Scopes[c.Name()]) {
				continue
			}
			if pc, ok := c.(ProgramCheck); ok {
				progPkgs[pc.Name()] = append(progPkgs[pc.Name()], pkg)
				ran = append(ran, c.Name())
				continue
			}
			r.timed(c.Name(), func() { raw = append(raw, c.Run(pkg)...) })
			ran = append(ran, c.Name())
			if tc, ok := c.(TestFileCheck); ok && tc.WantsTestFiles() {
				testChecks = append(testChecks, c)
			}
		}
		table.collect(pkg)
		table.markRan(pkg, ran)
		all = append(all, table.filter(raw)...)
		if len(testChecks) == 0 {
			continue
		}
		var testPkgs []*Package
		r.timed("load", func() { testPkgs, err = r.Loader.LoadTests(dir) })
		if err != nil {
			return nil, fmt.Errorf("analysis: load tests %s: %w", dir, err)
		}
		for _, tp := range testPkgs {
			if len(tp.TypeErrors) > 0 {
				return nil, fmt.Errorf("analysis: type-check %s tests: %v (and %d more)",
					dir, tp.TypeErrors[0], len(tp.TypeErrors)-1)
			}
			var raw []Finding
			var ran []string
			for _, c := range testChecks {
				r.timed(c.Name(), func() { raw = append(raw, c.Run(tp)...) })
				ran = append(ran, c.Name())
			}
			table.collect(tp)
			table.markRan(tp, ran)
			all = append(all, table.filter(raw)...)
		}
	}

	for _, pc := range progChecks {
		pkgs := progPkgs[pc.Name()]
		if len(pkgs) == 0 {
			continue
		}
		var raw []Finding
		r.timed(pc.Name(), func() { raw = pc.RunProgram(pkgs) })
		all = append(all, table.filter(raw)...)
	}

	all = append(all, table.malformed...)
	if r.AuditSuppressions {
		all = append(all, table.stale()...)
	}
	SortFindings(all)
	return all, nil
}

// SortFindings orders findings by file, line, column, then check name.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
