package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// One shared loader across all golden tests: the stdlib source importer is
// the expensive part, and memoization makes subsequent fixtures cheap.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	pkg, err := loader.Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, pkg.TypeErrors)
	}
	return pkg
}

var wantRE = regexp.MustCompile(`"([^"]*)"`)

// matchFindings compares findings against the fixture's `// want "substr"`
// comments 1:1: every finding must land on a line with an unconsumed want
// whose substring it contains, and every want must be consumed.
func matchFindings(t *testing.T, pkg *Package, findings []Finding) {
	t.Helper()
	type want struct {
		substr  string
		matched bool
	}
	wants := make(map[int][]*want) // keyed by line
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, "// want ") {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					wants[line] = append(wants[line], &want{substr: m[1]})
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants[f.Pos.Line] {
			if !w.matched && strings.Contains(f.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("line %d: expected a finding containing %q, got none", line, w.substr)
			}
		}
	}
}

func TestLockCheckGolden(t *testing.T) {
	pkg := fixturePkg(t, "lock")
	matchFindings(t, pkg, (&LockCheck{}).Run(pkg))
}

func TestGoroutineCheckGolden(t *testing.T) {
	pkg := fixturePkg(t, "goroutine")
	matchFindings(t, pkg, (&GoroutineCheck{}).Run(pkg))
}

func TestErrCheckGolden(t *testing.T) {
	pkg := fixturePkg(t, "errcheck")
	matchFindings(t, pkg, (&ErrCheck{}).Run(pkg))
}

func TestSimClockCheckGolden(t *testing.T) {
	pkg := fixturePkg(t, "simclock")
	matchFindings(t, pkg, (&SimClockCheck{}).Run(pkg))
}

func TestGaugePairCheckGolden(t *testing.T) {
	pkg := fixturePkg(t, "gaugepair")
	matchFindings(t, pkg, (&GaugePairCheck{}).Run(pkg))
}

func TestTestGoroutineCheckGolden(t *testing.T) {
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	pkgs, err := loader.LoadTests(filepath.Join("testdata", "testgoroutine"))
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("LoadTests returned %d units, want 2 (in-package merged + external _test)", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("test unit %s has type errors: %v", pkg.Name, pkg.TypeErrors)
		}
		matchFindings(t, pkg, (&TestGoroutineCheck{}).Run(pkg))
	}
}

func TestLoadTestsNoTestFiles(t *testing.T) {
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	pkgs, err := loader.LoadTests(filepath.Join("testdata", "lock"))
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	if len(pkgs) != 0 {
		t.Fatalf("LoadTests on a test-less dir returned %d units, want 0", len(pkgs))
	}
}

func TestDocCommentCheckGolden(t *testing.T) {
	for _, name := range []string{"doccomment/missing", "doccomment/badprefix", "doccomment/cmdmain"} {
		pkg := fixturePkg(t, name)
		matchFindings(t, pkg, (&DocCommentCheck{}).Run(pkg))
	}
}

// TestSuppressions runs simclock raw over the suppress fixture, then checks
// that ApplySuppressions silences exactly the directive-covered findings
// and reports the reason-less directive as malformed.
func TestSuppressions(t *testing.T) {
	pkg := fixturePkg(t, "suppress")
	raw := (&SimClockCheck{}).Run(pkg)
	if len(raw) != 5 {
		t.Fatalf("raw simclock findings = %d, want 5:\n%v", len(raw), raw)
	}
	kept, malformed := ApplySuppressions(pkg, raw)
	matchFindings(t, pkg, kept)
	if len(malformed) != 1 {
		t.Fatalf("malformed directives = %d, want 1: %v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "malformed //jbsvet:ignore") {
		t.Errorf("malformed finding message = %q", malformed[0].Message)
	}
	if malformed[0].Check != "suppress" {
		t.Errorf("malformed finding check = %q, want %q", malformed[0].Check, "suppress")
	}
}

func TestInScope(t *testing.T) {
	cases := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"internal/core", nil, true},
		{"internal/core", []string{"internal/core"}, true},
		{"internal/core/sub", []string{"internal/core"}, true},
		{"internal/coreutils", []string{"internal/core"}, false},
		{"internal/simnet", []string{"internal/sim*"}, true},
		{"internal/simdisk", []string{"internal/sim*"}, true},
		{"internal/shuffle", []string{"internal/sim*"}, false},
		{"internal/shuffle", []string{"internal/sim*", "internal/shuffle"}, true},
	}
	for _, c := range cases {
		if got := inScope(c.rel, c.patterns); got != c.want {
			t.Errorf("inScope(%q, %v) = %v, want %v", c.rel, c.patterns, got, c.want)
		}
	}
}

// TestRepoIsClean is the in-test CI gate: the full Runner over the repo's
// own internal and cmd trees must report nothing, mirroring
// `go run ./cmd/jbsvet ./...`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo scan in -short mode")
	}
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	dirs, err := GoPackageDirs(loader.Root, "internal", "cmd")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Loader: loader, Checks: AllChecks(), Scopes: DefaultScopes(), AuditSuppressions: true}
	findings, err := r.RunDirs(dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not jbsvet-clean: %s", f)
	}
}
