// Package cfg builds per-function control-flow graphs over go/ast for
// jbsvet's path-sensitive checks (leaseflow, ledgerbalance, lockorder —
// see docs/STATIC_ANALYSIS.md). The graph is deliberately small: basic
// blocks of statements, explicit edges for branches, loops, switches,
// selects, labeled break/continue/goto, and a single synthetic exit
// block that every return reaches. A panic terminates its block with no
// successor — the checks reason about ordinary exits, and Go's runtime
// unwinds deferred calls on panic anyway.
//
// The builder is pure syntax (go/ast only, no go/types): type-sensitive
// interpretation of the statements inside a block — which calls acquire
// a lease, which branch condition refines an error — is the analysis
// layer's job. Function literals are not inlined; each FuncLit body is
// its own graph, built by the caller when it wants one.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one basic block: statements that execute in order, then a
// transfer of control along one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, 0 = entry).
	Index int
	// Stmts are the statements executed in order. Control statements
	// (if/for/switch/...) never appear here — the builder splits them
	// into blocks and edges — but their init statements, conditions
	// (see Cond), and leaf statements do.
	Stmts []ast.Stmt
	// Cond, when non-nil, is the boolean expression evaluated after
	// Stmts; Succs[0] is then the true edge and Succs[1] the false edge.
	// Blocks without Cond transfer unconditionally.
	Cond ast.Expr
	// Succs are the possible next blocks. Empty for the exit block and
	// for blocks that terminate (panic, infinite transfer elsewhere).
	Succs []*Block
}

// A Graph is one function body's control-flow graph.
type Graph struct {
	// Blocks lists every block, entry first. Unreachable blocks are
	// pruned.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the single synthetic exit; every return statement's block
	// has an edge here, as does the fall-off-the-end block.
	Exit *Block
}

// Build constructs the CFG of one function body. A nil body (a function
// declared without one, e.g. assembly or external linkage) yields a
// graph with only entry and exit.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{
		labels: make(map[string]*labelBlocks),
	}
	b.exit = b.newBlock()
	entry := b.newBlock()
	b.cur = entry
	if body != nil {
		b.stmts(body.List)
	}
	b.jump(b.exit)
	b.patchGotos()

	g := &Graph{Entry: entry, Exit: b.exit}
	g.Blocks = reachable(entry, b.exit)
	for i, blk := range g.Blocks {
		blk.Index = i
	}
	return g
}

// labelBlocks tracks the targets a label can transfer to.
type labelBlocks struct {
	// target is the labeled statement's own block (goto destination).
	target *Block
	// brk and cont are set while the labeled loop/switch is being built.
	brk, cont *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	blocks []*Block
	cur    *Block // nil while the current path has terminated
	exit   *Block

	// breakTo / continueTo are the innermost enclosing targets.
	breakTo    []*Block
	continueTo []*Block

	labels map[string]*labelBlocks
	gotos  []pendingGoto

	// nextLabel holds a label whose statement is about to be built, so
	// its loop can register labeled break/continue targets.
	nextLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.blocks = append(b.blocks, blk)
	return blk
}

// startBlock begins a new block and makes it current.
func (b *builder) startBlock() *Block {
	blk := b.newBlock()
	b.cur = blk
	return blk
}

// jump adds an edge from the current block to dst and terminates the
// current path. No-op when the path already terminated.
func (b *builder) jump(dst *Block) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, dst)
	b.cur = nil
}

// edge adds an edge from the current block to dst without terminating.
func (b *builder) edge(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
}

// add appends a leaf statement to the current block, opening a fresh
// (unreachable) block if the path terminated — dead code still gets
// blocks so the graph covers every statement.
func (b *builder) add(s ast.Stmt) {
	if b.cur == nil {
		b.startBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)

	case *ast.IfStmt:
		b.ifStmt(st)

	case *ast.ForStmt:
		b.forStmt(st, b.takeLabel())

	case *ast.RangeStmt:
		b.rangeStmt(st, b.takeLabel())

	case *ast.SwitchStmt:
		b.switchStmt(st, b.takeLabel())

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(st, b.takeLabel())

	case *ast.SelectStmt:
		b.selectStmt(st, b.takeLabel())

	case *ast.LabeledStmt:
		b.labeledStmt(st)

	case *ast.ReturnStmt:
		b.add(st)
		b.jump(b.exit)

	case *ast.BranchStmt:
		b.branchStmt(st)

	case *ast.ExprStmt:
		b.add(st)
		if call, ok := st.X.(*ast.CallExpr); ok && isPanic(call) {
			b.cur = nil // panic: no ordinary successor
		}

	case *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt, *ast.AssignStmt,
		*ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		b.add(st)

	case nil:
		// nothing

	default:
		// Unknown statement kinds flow through as leaves.
		b.add(st)
	}
}

// takeLabel consumes the label registered for the statement being built.
func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *builder) labeledStmt(st *ast.LabeledStmt) {
	name := st.Label.Name
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[name] = lb
	}
	// The label's target is a fresh block so gotos land before the
	// statement itself.
	target := b.newBlock()
	b.jump(target)
	b.cur = target
	lb.target = target
	b.nextLabel = name
	b.stmt(st.Stmt)
	b.nextLabel = ""
}

func (b *builder) branchStmt(st *ast.BranchStmt) {
	b.add(st)
	switch st.Tok {
	case token.BREAK:
		if st.Label != nil {
			if lb := b.labels[st.Label.Name]; lb != nil && lb.brk != nil {
				b.jump(lb.brk)
				return
			}
		}
		if n := len(b.breakTo); n > 0 {
			b.jump(b.breakTo[n-1])
			return
		}
		b.cur = nil
	case token.CONTINUE:
		if st.Label != nil {
			if lb := b.labels[st.Label.Name]; lb != nil && lb.cont != nil {
				b.jump(lb.cont)
				return
			}
		}
		if n := len(b.continueTo); n > 0 {
			b.jump(b.continueTo[n-1])
			return
		}
		b.cur = nil
	case token.GOTO:
		if st.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Leave the path open: caseClauses sees the trailing fallthrough
		// and jumps to the next case block.
	}
}

func (b *builder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	if b.cur == nil {
		b.startBlock()
	}
	condBlk := b.cur
	condBlk.Cond = st.Cond

	thenBlk := b.newBlock()
	afterBlk := b.newBlock()
	condBlk.Succs = append(condBlk.Succs, thenBlk) // true edge

	b.cur = thenBlk
	b.stmts(st.Body.List)
	b.jump(afterBlk)

	if st.Else != nil {
		elseBlk := b.newBlock()
		condBlk.Succs = append(condBlk.Succs, elseBlk) // false edge
		b.cur = elseBlk
		b.stmt(st.Else)
		b.jump(afterBlk)
	} else {
		condBlk.Succs = append(condBlk.Succs, afterBlk) // false edge
	}
	b.cur = afterBlk
}

func (b *builder) forStmt(st *ast.ForStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	head := b.newBlock()
	b.jump(head)
	b.cur = head

	body := b.newBlock()
	after := b.newBlock()
	// post runs between the body and the head; without a post statement
	// continue targets the head directly.
	post := head
	if st.Post != nil {
		post = b.newBlock()
	}

	if st.Cond != nil {
		head.Cond = st.Cond
		head.Succs = append(head.Succs, body, after)
	} else {
		head.Succs = append(head.Succs, body)
	}

	if label != "" {
		lb := b.labels[label]
		lb.brk, lb.cont = after, post
		defer func() { lb.brk, lb.cont = nil, nil }()
	}
	b.breakTo = append(b.breakTo, after)
	b.continueTo = append(b.continueTo, post)
	b.cur = body
	b.stmts(st.Body.List)
	b.jump(post)
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]

	if st.Post != nil {
		b.cur = post
		b.stmt(st.Post)
		b.jump(head)
	}
	b.cur = after
	// A `for { }` with no cond and no break leaves after unreachable;
	// pruning drops it.
}

func (b *builder) rangeStmt(st *ast.RangeStmt, label string) {
	// The range header evaluates the operand and assigns the iteration
	// variables; model it as a head block holding the statement itself.
	head := b.newBlock()
	b.jump(head)
	head.Stmts = append(head.Stmts, st)

	body := b.newBlock()
	after := b.newBlock()
	head.Succs = append(head.Succs, body, after)

	if label != "" {
		lb := b.labels[label]
		lb.brk, lb.cont = after, head
		defer func() { lb.brk, lb.cont = nil, nil }()
	}
	b.breakTo = append(b.breakTo, after)
	b.continueTo = append(b.continueTo, head)
	b.cur = body
	b.stmts(st.Body.List)
	b.jump(head)
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]

	b.cur = after
}

func (b *builder) switchStmt(st *ast.SwitchStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	if st.Tag != nil {
		// The tag is an evaluated expression; keep it visible as a
		// synthetic statement so analyses scan it.
		b.add(&ast.ExprStmt{X: st.Tag})
	}
	b.caseClauses(st.Body, label, true)
}

func (b *builder) typeSwitchStmt(st *ast.TypeSwitchStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	b.add(st.Assign)
	b.caseClauses(st.Body, label, false)
}

// caseClauses wires a switch body: the dispatch block branches to every
// case (and to after when no default exists); fallthrough chains case
// bodies.
func (b *builder) caseClauses(body *ast.BlockStmt, label string, allowFallthrough bool) {
	if b.cur == nil {
		b.startBlock()
	}
	dispatch := b.cur
	b.cur = nil
	after := b.newBlock()

	if label != "" {
		lb := b.labels[label]
		lb.brk = after
		defer func() { lb.brk = nil }()
	}
	b.breakTo = append(b.breakTo, after)

	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		dispatch.Succs = append(dispatch.Succs, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
	}
	if !hasDefault {
		dispatch.Succs = append(dispatch.Succs, after)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		// Case expressions are evaluated at dispatch; attach them to the
		// case block so analyses scan them exactly once.
		for _, e := range cc.List {
			b.cur.Stmts = append(b.cur.Stmts, &ast.ExprStmt{X: e})
		}
		b.stmts(cc.Body)
		if allowFallthrough && b.cur != nil && endsInFallthrough(cc.Body) && i+1 < len(caseBlocks) {
			b.jump(caseBlocks[i+1])
			continue
		}
		b.jump(after)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

func (b *builder) selectStmt(st *ast.SelectStmt, label string) {
	if b.cur == nil {
		b.startBlock()
	}
	dispatch := b.cur
	b.cur = nil
	after := b.newBlock()

	if label != "" {
		lb := b.labels[label]
		lb.brk = after
		defer func() { lb.brk = nil }()
	}
	b.breakTo = append(b.breakTo, after)
	for _, cs := range st.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		dispatch.Succs = append(dispatch.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.jump(after)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	// A select with no clauses blocks forever: after has no in-edges and
	// pruning drops it, but building into it keeps trailing dead code in
	// the graph.
	b.cur = after
}

// endsInFallthrough reports whether a case body's last statement is
// fallthrough (possibly labeled).
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	s := body[len(body)-1]
	for {
		if ls, ok := s.(*ast.LabeledStmt); ok {
			s = ls.Stmt
			continue
		}
		break
	}
	bs, ok := s.(*ast.BranchStmt)
	return ok && bs.Tok == token.FALLTHROUGH
}

func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if g.from == nil {
			continue
		}
		if lb := b.labels[g.label]; lb != nil && lb.target != nil {
			g.from.Succs = append(g.from.Succs, lb.target)
		}
	}
}

// isPanic reports whether call is the builtin panic. Syntactic: a local
// function named panic would shadow it, which the repo style forbids.
func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// reachable returns entry's reachable blocks in a stable order (entry
// first, exit last when reachable), pruning everything else.
func reachable(entry, exit *Block) []*Block {
	seen := make(map[*Block]bool)
	var order []*Block
	var walk func(*Block)
	walk = func(blk *Block) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		order = append(order, blk)
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	walk(entry)
	if !seen[exit] {
		order = append(order, exit) // keep the exit addressable even if unreachable
	}
	return order
}

// Preds computes the predecessor lists of g's blocks, indexed like
// g.Blocks. Analyses that join states at block entry want this once.
func (g *Graph) Preds() [][]*Block {
	preds := make([][]*Block, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
	}
	return preds
}

// String renders the graph for debugging and golden tests: one line per
// block with its statement kinds and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		for _, s := range blk.Stmts {
			fmt.Fprintf(&sb, " %s", stmtKind(s))
		}
		if blk.Cond != nil {
			sb.WriteString(" [cond]")
		}
		if len(blk.Succs) > 0 {
			fmt.Fprintf(&sb, " ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		if blk == g.Exit {
			sb.WriteString(" (exit)")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func stmtKind(s ast.Stmt) string {
	name := fmt.Sprintf("%T", s)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimSuffix(name, "Stmt")
}
