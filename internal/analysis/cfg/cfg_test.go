package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src as a file, finds the function named name, and
// builds its CFG.
func buildFunc(t *testing.T, src, name string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return Build(fd.Body)
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// stmtCount sums the statements across all blocks.
func stmtCount(g *Graph) int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Stmts)
	}
	return n
}

// reachesExit reports whether exit is reachable from entry.
func reachesExit(g *Graph) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	x := 1
	x++
	_ = x
}`, "f")
	if !reachesExit(g) {
		t.Fatalf("straight-line function must reach exit:\n%s", g)
	}
	if stmtCount(g) != 3 {
		t.Errorf("want 3 statements in blocks, got %d:\n%s", stmtCount(g), g)
	}
}

func TestIfElse(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	} else {
		return 2
	}
}`, "f")
	entrySuccs := g.Entry.Succs
	if g.Entry.Cond == nil || len(entrySuccs) != 2 {
		t.Fatalf("if block should carry Cond with 2 succs:\n%s", g)
	}
	// Both branches return; no path falls through to a third branch.
	for _, s := range entrySuccs {
		if len(s.Succs) != 1 || s.Succs[0] != g.Exit {
			t.Errorf("branch block should go straight to exit:\n%s", g)
		}
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	if c {
		println("x")
	}
	println("y")
}`, "f")
	if g.Entry.Cond == nil || len(g.Entry.Succs) != 2 {
		t.Fatalf("if without else still has true and false edges:\n%s", g)
	}
	// False edge skips the body.
	if g.Entry.Succs[0] == g.Entry.Succs[1] {
		t.Errorf("true and false edges must differ:\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	for i := 0; i < 3; i++ {
		println(i)
	}
	println("done")
}`, "f")
	// Find the loop head: a block with a Cond and two successors.
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond != nil && len(b.Succs) == 2 {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head found:\n%s", g)
	}
	// The body (true edge) must lead back to the head via the post block.
	body := head.Succs[0]
	foundBack := false
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			if s == head {
				foundBack = true
				return
			}
			walk(s)
		}
	}
	walk(body)
	if !foundBack {
		t.Errorf("loop body must have a back edge to the head:\n%s", g)
	}
	if !reachesExit(g) {
		t.Errorf("loop with cond must reach exit:\n%s", g)
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	for {
		println("spin")
	}
}`, "f")
	if reachesExit(g) {
		t.Errorf("for{} without break must not reach exit:\n%s", g)
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	for {
		if c {
			break
		}
	}
}`, "f")
	if !reachesExit(g) {
		t.Errorf("break must restore the exit path:\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs [][]int) int {
	total := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			total += v
		}
	}
	return total
}`, "f")
	if !reachesExit(g) {
		t.Fatalf("labeled loops must reach exit:\n%s", g)
	}
}

func TestGoto(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	if c {
		goto done
	}
	println("work")
done:
	println("done")
}`, "f")
	if !reachesExit(g) {
		t.Fatalf("goto function must reach exit:\n%s", g)
	}
	// The goto block must have an edge to the labeled block. Count
	// in-edges of the block holding the final println: 2 (fallthrough +
	// goto).
	preds := g.Preds()
	maxIn := 0
	for _, ps := range preds {
		if len(ps) > maxIn {
			maxIn = len(ps)
		}
	}
	if maxIn < 2 {
		t.Errorf("label target should have 2 predecessors (goto + fall-through):\n%s", g)
	}
}

func TestReturnMidFunction(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 0
}`, "f")
	// Exit should have exactly two predecessors (the two returns).
	preds := g.Preds()
	if n := len(preds[g.Exit.Index]); n != 2 {
		t.Errorf("exit should have 2 predecessors, got %d:\n%s", n, g)
	}
}

func TestPanicTerminates(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	if c {
		panic("boom")
	}
	println("ok")
}`, "f")
	// The panic block must have no successors.
	found := false
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok && isPanic(call) {
				found = true
				if len(b.Succs) != 0 {
					t.Errorf("panic block must not have successors:\n%s", g)
				}
			}
		}
	}
	if !found {
		t.Fatalf("panic statement not found in graph:\n%s", g)
	}
}

func TestSwitchWithFallthrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		x += 2
	default:
		x = 0
	}
	return x
}`, "f")
	if !reachesExit(g) {
		t.Fatalf("switch must reach exit:\n%s", g)
	}
	// The case-1 block must have exactly one successor: the case-2 block
	// (fallthrough), not the after block.
	var case1 *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if inc, ok := s.(*ast.IncDecStmt); ok && inc.Tok == token.INC {
				case1 = b
			}
		}
	}
	if case1 == nil {
		t.Fatalf("case 1 block not found:\n%s", g)
	}
	if len(case1.Succs) != 1 {
		t.Errorf("fallthrough case should have exactly 1 successor, got %d:\n%s", len(case1.Succs), g)
	}
}

func TestSwitchNoDefaultHasSkipEdge(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
		println(1)
	}
	println("after")
}`, "f")
	// Dispatch must branch both into the case and past it.
	if !reachesExit(g) {
		t.Fatalf("must reach exit:\n%s", g)
	}
	var dispatch *Block
	for _, b := range g.Blocks {
		if len(b.Succs) == 2 {
			dispatch = b
		}
	}
	if dispatch == nil {
		t.Errorf("switch without default needs a 2-way dispatch:\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
		return 1
	}
}`, "f")
	if !reachesExit(g) {
		t.Fatalf("select clauses must reach exit:\n%s", g)
	}
	preds := g.Preds()
	if n := len(preds[g.Exit.Index]); n != 2 {
		t.Errorf("exit should have 2 predecessors (one per clause), got %d:\n%s", n, g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}`, "f")
	if !reachesExit(g) {
		t.Fatalf("range must reach exit:\n%s", g)
	}
	// The range head has two successors: body and after.
	var head *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if _, ok := s.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("range head should have body and after successors:\n%s", g)
	}
}

func TestDeferStaysInBlock(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	defer println("cleanup")
	println("work")
}`, "f")
	found := false
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if _, ok := s.(*ast.DeferStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("defer statement must appear as a block statement:\n%s", g)
	}
}

func TestNilBody(t *testing.T) {
	g := Build(nil)
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("nil body still yields entry and exit")
	}
	if !reachesExit(g) {
		t.Error("empty function reaches exit")
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	return 1
	println("dead")
	return 2
}`, "f")
	// Dead code gets blocks but is pruned as unreachable; the graph must
	// not panic building it and entry's path still reaches exit.
	if !reachesExit(g) {
		t.Fatalf("must reach exit:\n%s", g)
	}
}

func TestGenericFunction(t *testing.T) {
	g := buildFunc(t, `package p
func f[T any](xs []T, keep func(T) bool) []T {
	var out []T
	for _, x := range xs {
		if keep(x) {
			out = append(out, x)
		}
	}
	return out
}`, "f")
	if !reachesExit(g) {
		t.Fatalf("generic function must build and reach exit:\n%s", g)
	}
}

func TestMethodValueAndLiterals(t *testing.T) {
	// Method values and function literals are leaves: the literal's body
	// is NOT inlined into the outer graph.
	g := buildFunc(t, `package p
import "sync"
type s struct{ mu sync.Mutex }
func (x *s) f() {
	lock := x.mu.Lock
	lock()
	fn := func() {
		return
	}
	fn()
	x.mu.Unlock()
}`, "f")
	if !reachesExit(g) {
		t.Fatalf("must reach exit:\n%s", g)
	}
	// The literal's return must not add an exit predecessor.
	preds := g.Preds()
	if n := len(preds[g.Exit.Index]); n != 1 {
		t.Errorf("exit should have exactly 1 predecessor, got %d:\n%s", n, g)
	}
}

func TestTypeSwitch(t *testing.T) {
	g := buildFunc(t, `package p
func f(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case string:
		return len(x)
	default:
		return 0
	}
}`, "f")
	preds := g.Preds()
	if n := len(preds[g.Exit.Index]); n != 3 {
		t.Errorf("exit should have 3 predecessors, got %d:\n%s", n, g)
	}
}
