package analysis

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// GoPackageDirs walks the named subtrees of root (or root itself when none
// are given) and returns every directory directly containing a non-test Go
// file. testdata, hidden, and underscore-prefixed directories are skipped,
// matching the go tool's convention. The result is sorted and
// deduplicated.
func GoPackageDirs(root string, subtrees ...string) ([]string, error) {
	bases := []string{root}
	if len(subtrees) > 0 {
		bases = bases[:0]
		for _, s := range subtrees {
			bases = append(bases, filepath.Join(root, filepath.FromSlash(s)))
		}
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, base := range bases {
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if HasGoFiles(path) && !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// HasGoFiles reports whether dir directly contains a non-test Go file.
func HasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
