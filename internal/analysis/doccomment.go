package analysis

import (
	"fmt"
	"strings"
)

// DocCommentCheck requires every package to carry a package doc comment in
// the godoc convention: starting "Package <name>" for libraries, "Command
// <name>" for main packages. The repo's documentation pass (ARCHITECTURE,
// OBSERVABILITY) leans on package docs as the per-package entry points, so
// a missing or free-form doc is a docs regression, not a style nit.
type DocCommentCheck struct{}

// Name implements Check.
func (*DocCommentCheck) Name() string { return "doccomment" }

// Doc implements Check.
func (*DocCommentCheck) Doc() string {
	return `every package has a doc comment starting "Package <name>" ("Command <name>" for main)`
}

// Run implements Check.
func (c *DocCommentCheck) Run(pkg *Package) []Finding {
	want := "Package " + pkg.Name
	if pkg.Name == "main" {
		want = "Command "
	}
	var out []Finding
	found := false
	for _, file := range pkg.Files {
		if file.Doc == nil {
			continue
		}
		found = true
		if !strings.HasPrefix(file.Doc.Text(), want) {
			out = append(out, Finding{
				Pos:   position(pkg, file.Name.Pos()),
				Check: "doccomment",
				Message: fmt.Sprintf("package doc comment should start %q, not %q",
					want, firstLine(file.Doc.Text())),
			})
		}
	}
	if !found {
		out = append(out, Finding{
			Pos:   position(pkg, pkg.Files[0].Name.Pos()),
			Check: "doccomment",
			Message: fmt.Sprintf("package %s has no package doc comment; add one starting %q",
				pkg.Name, want),
		})
	}
	return out
}

// firstLine truncates a doc text to its first line for the finding message.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	const max = 60
	if len(s) > max {
		s = s[:max] + "..."
	}
	return s
}
