package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrCheck flags discarded error results from Close, Write, and Flush
// method calls — and from os.RemoveAll — in the data-integrity packages
// (transport, mof, mapred): a swallowed Close on a connection hides peer
// teardown races, a swallowed Flush/Close on a spill or index file
// silently truncates shuffle data, and a swallowed RemoveAll leaks spill
// directories that the next task attempt then trips over.
//
// A call statement whose callee returns an error must either consume the
// result (assignment, if-statement, return) or discard it explicitly with
// `_ = x.Close()`. Deferred calls are not flagged: the repo idiom reserves
// `defer x.Close()` for read-side resources whose close error is
// meaningless, while write paths close explicitly and check.
type ErrCheck struct{}

// Name implements Check.
func (*ErrCheck) Name() string { return "errcheck" }

// Doc implements Check.
func (*ErrCheck) Doc() string {
	return "Close/Write/Flush and os.RemoveAll errors must be checked or explicitly discarded with _ ="
}

// checkedMethods are the method names whose error results must not be
// silently dropped.
var checkedMethods = map[string]bool{"Close": true, "Write": true, "Flush": true}

// checkedFuncs are fully-qualified package functions whose error results
// must not be silently dropped. Cleanup paths that genuinely tolerate
// failure say so with `_ =`.
var checkedFuncs = map[string]bool{"os.RemoveAll": true}

// isCheckedCallee reports whether fn is a method or package function on
// the must-check list.
func isCheckedCallee(fn *types.Func) bool {
	if fn.Type().(*types.Signature).Recv() != nil {
		return checkedMethods[fn.Name()]
	}
	return fn.Pkg() != nil && checkedFuncs[fn.Pkg().Path()+"."+fn.Name()]
}

// Run implements Check.
func (c *ErrCheck) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
			if fn == nil || !isCheckedCallee(fn) {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			// bufio.Writer has a sticky error: a dropped Write result is
			// recovered by the (checked) Flush, so only Flush is enforced.
			if fn.Name() == "Write" && isBufioWriter(pkg.Info.TypeOf(sel.X)) {
				return true
			}
			out = append(out, Finding{
				Pos:   position(pkg, call.Pos()),
				Check: "errcheck",
				Message: fmt.Sprintf("result of %s.%s() is ignored; check it or discard explicitly with `_ = %s.%s()`",
					types.ExprString(sel.X), fn.Name(), types.ExprString(sel.X), fn.Name()),
			})
			return true
		})
	}
	return out
}

// isBufioWriter reports whether t is bufio.Writer or *bufio.Writer.
func isBufioWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "bufio" && obj.Name() == "Writer"
}

// returnsError reports whether fn's results include an error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
