package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLeaseFlowGolden(t *testing.T) {
	pkg := fixturePkg(t, "leaseflow")
	matchFindings(t, pkg, (&LeaseFlowCheck{}).Run(pkg))
}

func TestLedgerBalanceGolden(t *testing.T) {
	pkg := fixturePkg(t, "ledgerbalance")
	matchFindings(t, pkg, (&LedgerBalanceCheck{}).Run(pkg))
}

func TestLockOrderGolden(t *testing.T) {
	pkg := fixturePkg(t, "lockorder")
	matchFindings(t, pkg, (&LockOrderCheck{}).RunProgram([]*Package{pkg}))
}

// runFlowChecks runs all three path-sensitive checks over one package.
func runFlowChecks(pkg *Package) []Finding {
	var fs []Finding
	fs = append(fs, (&LeaseFlowCheck{}).Run(pkg)...)
	fs = append(fs, (&LedgerBalanceCheck{}).Run(pkg)...)
	fs = append(fs, (&LockOrderCheck{}).RunProgram([]*Package{pkg})...)
	return fs
}

// TestGenericsClean covers the CFG and summarizer on generics and method
// values: the fixture must load, type-check, and analyze without findings
// (and, implicitly, without panics).
func TestGenericsClean(t *testing.T) {
	pkg := fixturePkg(t, "generics")
	for _, f := range runFlowChecks(pkg) {
		t.Errorf("generics fixture not clean: %s", f)
	}
}

// TestGenericsLoadTests runs the same checks over both test units of the
// generics fixture — the merged in-package unit re-parses the base files,
// so declaration lookup must survive duplicate parse trees, and the
// external unit declares its own generic.
func TestGenericsLoadTests(t *testing.T) {
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	pkgs, err := loader.LoadTests(filepath.Join("testdata", "generics"))
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("LoadTests returned %d units, want 2 (in-package merged + external _test)", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("test unit %s has type errors: %v", pkg.Name, pkg.TypeErrors)
		}
		for _, f := range runFlowChecks(pkg) {
			t.Errorf("generics test unit %s not clean: %s", pkg.Name, f)
		}
	}
}

// injectedSrc carries one known lease leak (early-error return) and one
// known lock-order inversion (G before H in one function, H before G in
// another). The self-test asserts both seeded bugs are caught — if a
// refactor of the engine ever goes blind, this fails before the repo
// quietly stops being checked.
const injectedSrc = `package injected

import (
	"sync"

	"repro/internal/bufpool"
)

type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

func leakyRecv(p *bufpool.Pool, read func([]byte) error) (*bufpool.Lease, error) {
	l := p.Get(64)
	if err := read(l.Bytes()); err != nil {
		return nil, err
	}
	return l, nil
}

func ghPath(g *G, h *H) {
	g.mu.Lock()
	h.mu.Lock()
	h.mu.Unlock()
	g.mu.Unlock()
}

func hgPath(g *G, h *H) {
	h.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	h.mu.Unlock()
}
`

func TestSeededInjectionIsCaught(t *testing.T) {
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "injected.go"), []byte(injectedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load injected package: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("injected package has type errors: %v", pkg.TypeErrors)
	}

	leaks := (&LeaseFlowCheck{}).Run(pkg)
	if len(leaks) != 1 {
		t.Fatalf("leaseflow on injected leak = %d findings, want 1:\n%v", len(leaks), leaks)
	}
	if !strings.Contains(leaks[0].Message, "may not be released or ownership-transferred") ||
		!strings.Contains(leaks[0].Message, "leakyRecv") {
		t.Errorf("leaseflow finding = %q, want the leakyRecv path leak", leaks[0].Message)
	}

	cycles := (&LockOrderCheck{}).RunProgram([]*Package{pkg})
	if len(cycles) != 1 {
		t.Fatalf("lockorder on injected inversion = %d findings, want 1:\n%v", len(cycles), cycles)
	}
	if !strings.Contains(cycles[0].Message, "lock-order cycle among {G.mu, H.mu}") {
		t.Errorf("lockorder finding = %q, want the G.mu/H.mu cycle", cycles[0].Message)
	}
}

// TestStaleIgnoreAudit drives the Runner's AuditSuppressions path over a
// synthetic package carrying one live directive (it suppresses a real
// simclock finding) and one stale directive (its check runs but finds
// nothing on that line). Only the stale one must be reported.
func TestStaleIgnoreAudit(t *testing.T) {
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	dir := t.TempDir()
	src := `// Package stalefix exercises the stale-ignore audit.
package stalefix

import "time"

//jbsvet:ignore simclock fixture wants wall time here
func now() time.Time { return time.Now() }

//jbsvet:ignore simclock nothing to suppress on the next line
func pure(a int) int { return a + 1 }
`
	if err := os.WriteFile(filepath.Join(dir, "stalefix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Loader:            loader,
		Checks:            []Check{&SimClockCheck{}},
		AuditSuppressions: true,
	}
	findings, err := r.RunDirs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("audit findings = %d, want 1 (the stale directive):\n%v", len(findings), findings)
	}
	f := findings[0]
	if f.Check != "staleignore" {
		t.Errorf("finding check = %q, want staleignore", f.Check)
	}
	if !strings.Contains(f.Message, "suppresses nothing") {
		t.Errorf("finding message = %q, want a suppresses-nothing report", f.Message)
	}
	if f.Pos.Line != 9 {
		t.Errorf("stale directive reported at line %d, want 9", f.Pos.Line)
	}

	// Without the audit flag the same scan is silent: the live directive
	// suppresses its finding and the stale one is ignored.
	r2 := &Runner{Loader: loader, Checks: []Check{&SimClockCheck{}}}
	quiet, err := r2.RunDirs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(quiet) != 0 {
		t.Errorf("non-audit scan = %d findings, want 0:\n%v", len(quiet), quiet)
	}
}
