package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GaugePairCheck enforces the mirror-gauge convention: a struct that
// pairs a plain integer field `x` with a *metrics.Gauge field `xG`
// (NetMerger's nodeGroup.inflight/inflightG, flow.Window's size/sizeG,
// flow's drrTenant.queued/queuedG) keeps the two in lockstep. Any
// function that moves one half of the pair without moving the other —
// a counter bump without the gauge mirror, or a gauge update with no
// counter change — is flagged; the fix is routing both through the
// pair's single helper (acquire/release, setSize). This catches the
// inflight-drift class of bug, where a new code path decrements the
// plain counter and silently leaves the registry gauge stale.
//
// A plain assignment counts as an update on either side; installing the
// gauge pointer itself (`g.inflightG = gauge`) is initialization, not
// an update, and is exempt. Matching is per base expression within one
// function, so `a.inflight++` is not excused by `b.inflightG.Add(1)`.
type GaugePairCheck struct{}

// Name implements Check.
func (*GaugePairCheck) Name() string { return "gaugepair" }

// Doc implements Check.
func (*GaugePairCheck) Doc() string {
	return "a plain int field and its paired *metrics.Gauge field (xG) must move together"
}

// Run implements Check.
func (c *GaugePairCheck) Run(pkg *Package) []Finding {
	pairs := collectGaugePairs(pkg)
	if len(pairs.gaugeFor) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, scanGaugePairFunc(pkg, pairs, fn.Name.Name, fn.Body)...)
				}
			case *ast.FuncLit:
				out = append(out, scanGaugePairFunc(pkg, pairs, "func literal", fn.Body)...)
			}
			return true
		})
	}
	return out
}

// gaugePairs maps each side of every x/xG pair to its partner field.
type gaugePairs struct {
	gaugeFor map[*types.Var]*types.Var // int field -> gauge field
	intFor   map[*types.Var]*types.Var // gauge field -> int field
}

// collectGaugePairs finds every package-level struct field pair (x of
// integer kind, xG of type *metrics.Gauge).
func collectGaugePairs(pkg *Package) gaugePairs {
	pairs := gaugePairs{
		gaugeFor: make(map[*types.Var]*types.Var),
		intFor:   make(map[*types.Var]*types.Var),
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		byName := make(map[string]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			byName[st.Field(i).Name()] = st.Field(i)
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !isPlainInteger(f.Type()) {
				continue
			}
			g, ok := byName[f.Name()+"G"]
			if !ok || !isMetricsGaugePtr(g.Type()) {
				continue
			}
			pairs.gaugeFor[f] = g
			pairs.intFor[g] = f
		}
	}
	return pairs
}

func isPlainInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isMetricsGaugePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Gauge" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/metrics")
}

// gaugeUpdateMethods are the *metrics.Gauge methods that move the gauge
// (Load is a read).
var gaugeUpdateMethods = map[string]bool{"Set": true, "Add": true}

// pairSite is one half-update of a pair: the paired int field plus the
// base expression it was selected from ("g" in g.inflight++).
type pairSite struct {
	base  string
	field *types.Var // always the pair's int field
}

// scanGaugePairFunc checks one function body: for every x/xG pair and
// base expression, a mutation of x demands a gauge update of xG in the
// same function, and vice versa. Nested function literals are separate
// functions and are skipped (the outer walk visits them on their own).
func scanGaugePairFunc(pkg *Package, pairs gaugePairs, funcName string, body *ast.BlockStmt) []Finding {
	intMuts := make(map[pairSite][]token.Pos)
	gaugeUpds := make(map[pairSite][]token.Pos)

	// pairedField resolves expr as a selection of a paired field (either
	// side), returning the site keyed by the pair's int field.
	pairedField := func(expr ast.Expr) (pairSite, bool, bool) {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return pairSite{}, false, false
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return pairSite{}, false, false
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return pairSite{}, false, false
		}
		if _, isInt := pairs.gaugeFor[field]; isInt {
			return pairSite{base: types.ExprString(sel.X), field: field}, true, false
		}
		if partner, isGauge := pairs.intFor[field]; isGauge {
			return pairSite{base: types.ExprString(sel.X), field: partner}, false, true
		}
		return pairSite{}, false, false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				// Only counter writes count; assigning the gauge pointer
				// itself is initialization, not a gauge movement.
				if site, isInt, _ := pairedField(lhs); isInt {
					intMuts[site] = append(intMuts[site], st.Pos())
				}
			}
		case *ast.IncDecStmt:
			if site, isInt, _ := pairedField(st.X); isInt {
				intMuts[site] = append(intMuts[site], st.Pos())
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok || !gaugeUpdateMethods[sel.Sel.Name] {
				return true
			}
			if site, _, isGauge := pairedField(sel.X); isGauge {
				gaugeUpds[site] = append(gaugeUpds[site], st.Pos())
			}
		}
		return true
	})

	var out []Finding
	addf := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:     position(pkg, pos),
			Check:   "gaugepair",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for site, poss := range intMuts {
		if len(gaugeUpds[site]) > 0 {
			continue
		}
		for _, pos := range poss {
			addf(pos, "%s.%s changes without its mirror gauge %s.%sG in %s (move both through the pair's helper)",
				site.base, site.field.Name(), site.base, site.field.Name(), funcName)
		}
	}
	for site, poss := range gaugeUpds {
		if len(intMuts[site]) > 0 {
			continue
		}
		for _, pos := range poss {
			addf(pos, "%s.%sG moves without its paired counter %s.%s in %s (move both through the pair's helper)",
				site.base, site.field.Name(), site.base, site.field.Name(), funcName)
		}
	}
	SortFindings(out)
	return out
}
