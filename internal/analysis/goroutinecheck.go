package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineCheck flags fire-and-forget goroutines in the concurrent core
// packages. Every `go` statement must be reachable from a shutdown path,
// which we accept as any of the following in the launched function:
//
//   - a reference to a context.Context (cancellation),
//   - a sync.WaitGroup Done/Wait call (join),
//   - a channel receive — including range-over-channel and select recv
//     clauses — since a receiver observes close() from a shutdown path.
//
// A goroutine that only computes and sends (or loops forever) with none of
// these signals can outlive its owner, pin memory, and stall `go test`;
// that is exactly the class of bug the runtime leakcheck package catches
// dynamically, and this check catches statically.
//
// For `go obj.method()` the method body is resolved within the same
// package and scanned; goroutines launching functions defined in other
// packages are flagged (the lifecycle cannot be proven locally).
type GoroutineCheck struct{}

// Name implements Check.
func (*GoroutineCheck) Name() string { return "goroutines" }

// Doc implements Check.
func (*GoroutineCheck) Doc() string {
	return "every goroutine must be joinable or stoppable (context, done channel, or WaitGroup)"
}

// Run implements Check.
func (c *GoroutineCheck) Run(pkg *Package) []Finding {
	// Index this package's function/method declarations by object so
	// `go s.loop()` can be resolved to its body.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				body = fun.Body
			case *ast.Ident:
				if fd := decls[pkg.Info.Uses[fun]]; fd != nil {
					body = fd.Body
				}
			case *ast.SelectorExpr:
				if fd := decls[pkg.Info.Uses[fun.Sel]]; fd != nil {
					body = fd.Body
				}
			}
			if body == nil {
				out = append(out, Finding{
					Pos:     position(pkg, g.Pos()),
					Check:   "goroutines",
					Message: "goroutine launches a function defined outside this package; shutdown path cannot be proven — wrap it or add a suppression",
				})
				return true
			}
			if !c.hasLifecycleSignal(pkg, body) {
				out = append(out, Finding{
					Pos:     position(pkg, g.Pos()),
					Check:   "goroutines",
					Message: "fire-and-forget goroutine: no shutdown path (context.Context, done-channel receive, or sync.WaitGroup) reachable from the goroutine body",
				})
			}
			return true
		})
	}
	return out
}

// hasLifecycleSignal scans a goroutine body (including nested literals —
// a join signal anywhere below keeps the tree collectable) for evidence
// it can be stopped or joined.
func (c *GoroutineCheck) hasLifecycleSignal(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[e]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(e.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				if fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
					(fn.Name() == "Done" || fn.Name() == "Wait") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
