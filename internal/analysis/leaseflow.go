package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/cfg"
)

// LeaseFlowCheck verifies the manual-memory ownership contract
// (docs/PERF.md) statically: every lease acquired in a function — any
// call returning *bufpool.Lease or *mof.FileHandle — must, on every
// control-flow path to return, either be Released or have its ownership
// transferred (returned, stored, sent, handed to a goroutine, or passed
// to a callee whose interprocedural summary says it releases, stores, or
// returns that parameter). Early-error returns are the classic leak
// site; the nil-on-error convention is modeled, so a lease from
// `l, err := f()` carries no obligation on the `err != nil` branch.
type LeaseFlowCheck struct{}

// Name returns "leaseflow".
func (*LeaseFlowCheck) Name() string { return "leaseflow" }

// Doc describes the check.
func (*LeaseFlowCheck) Doc() string {
	return "bufpool/mof leases must be released or ownership-transferred on every path"
}

// Run reports every lease obligation that can reach a return while still
// live, plus deferred releases inside loops (which run at function exit,
// not per iteration).
func (c *LeaseFlowCheck) Run(pkg *Package) []Finding {
	var fs []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			fs = append(fs, analyzeLeaseBody(pkg, name, fd.Body)...)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					fs = append(fs, analyzeLeaseBody(pkg, name+" (func literal)", fl.Body)...)
				}
				return true
			})
		}
	}
	return fs
}

// obligation is one acquired lease that must be discharged.
type obligation struct {
	id   int
	pos  token.Pos
	what string // callee description for the finding message
	// errVar, when set, is the error result assigned alongside the lease;
	// on the errVar != nil branch the lease is nil (no obligation). The
	// refinement is valid only for conditions positioned before errValid
	// (the next reassignment of errVar), or anywhere when errValid is
	// NoPos.
	errVar   types.Object
	errValid token.Pos
}

// event is one ownership-relevant action inside a statement. Kills are
// emitted before acquires so `l = pool.Grow(l, n)` discharges the old
// obligation before binding the new one.
type event struct {
	kill    types.Object // discharge every obligation bound to this var
	acquire int          // obligation id to make live (when kill is nil)
}

// leaseAnalysis carries the per-body state.
type leaseAnalysis struct {
	pkg  *Package
	sum  *summarizer
	fn   string
	obls []*obligation
	// bound maps a variable to the obligations ever bound to it
	// (flow-insensitive binding; the dataflow tracks liveness).
	bound map[types.Object][]int
	// aliasOf maps a plain `a := l` alias to its root lease variable.
	aliasOf map[types.Object]types.Object
	// errAssigns records positions where each variable is assigned,
	// to bound the validity window of err-branch refinement.
	errAssigns map[types.Object][]token.Pos
	events     map[ast.Stmt][]event
	findings   []Finding
}

func analyzeLeaseBody(pkg *Package, fnName string, body *ast.BlockStmt) []Finding {
	var sum *summarizer
	if pkg.loader != nil {
		sum = pkg.loader.summaries()
	}
	an := &leaseAnalysis{
		pkg:        pkg,
		sum:        sum,
		fn:         fnName,
		bound:      make(map[types.Object][]int),
		aliasOf:    make(map[types.Object]types.Object),
		errAssigns: make(map[types.Object][]token.Pos),
		events:     make(map[ast.Stmt][]event),
	}
	an.deferInLoop(body)

	g := cfg.Build(body)
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			an.events[s] = an.scanStmt(s)
		}
	}
	if len(an.obls) > 0 {
		an.finalizeErrWindows()
		an.solve(g)
	}
	return an.findings
}

// finalizeErrWindows bounds each obligation's err-branch refinement at
// the first reassignment of its error variable after the acquire.
func (an *leaseAnalysis) finalizeErrWindows() {
	for _, ob := range an.obls {
		if ob.errVar == nil {
			continue
		}
		for _, p := range an.errAssigns[ob.errVar] {
			if p > ob.pos && (ob.errValid == token.NoPos || p < ob.errValid) {
				ob.errValid = p
			}
		}
	}
}

// deferInLoop reports deferred releases of leases acquired in the same
// loop body: the defer runs at function exit, so every iteration after
// the first operates on an unreleased lease.
func (an *leaseAnalysis) deferInLoop(body *ast.BlockStmt) {
	info := an.pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		// Variables bound to acquires inside this loop body.
		acquired := make(map[types.Object]bool)
		ast.Inspect(loopBody, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if ok, leaseIdx, _ := an.acquireShape(call); ok {
					if leaseIdx < len(as.Lhs) {
						if id, ok := ast.Unparen(as.Lhs[leaseIdx]).(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								acquired[obj] = true
							} else if obj := info.Uses[id]; obj != nil {
								acquired[obj] = true
							}
						}
					}
				}
			}
			return true
		})
		if len(acquired) == 0 {
			return true
		}
		ast.Inspect(loopBody, func(m ast.Node) bool {
			ds, ok := m.(*ast.DeferStmt)
			if !ok {
				return true
			}
			releasesAcquired := false
			if sel, ok := ast.Unparen(ds.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && acquired[info.Uses[id]] {
					releasesAcquired = true
				}
			}
			if fl, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(inner ast.Node) bool {
					if id, ok := inner.(*ast.Ident); ok && acquired[info.Uses[id]] {
						releasesAcquired = true
					}
					return true
				})
			}
			if releasesAcquired {
				an.report(ds.Pos(), "deferred release inside loop runs at function exit, not per iteration (in %s)", an.fn)
			}
			return true
		})
		return true
	})
}

func (an *leaseAnalysis) report(pos token.Pos, format string, args ...any) {
	an.findings = append(an.findings, Finding{
		Pos:     an.pkg.Fset.Position(pos),
		Check:   "leaseflow",
		Message: fmt.Sprintf(format, args...),
	})
}

// acquireShape classifies call: does it yield a lease the caller then
// owns? Returns the result index of the lease and of an accompanying
// error result (-1 when absent).
func (an *leaseAnalysis) acquireShape(call *ast.CallExpr) (ok bool, leaseIdx, errIdx int) {
	info := an.pkg.Info
	if tv, found := info.Types[call.Fun]; found && tv.IsType() {
		return false, -1, -1 // conversion, not a call
	}
	tv, found := info.Types[call]
	if !found {
		return false, -1, -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		leaseIdx, errIdx = -1, -1
		for i := 0; i < t.Len(); i++ {
			et := t.At(i).Type()
			if leaseIdx < 0 && isLeaseType(et) {
				leaseIdx = i
			}
			if errIdx < 0 && types.Identical(et, types.Universe.Lookup("error").Type()) {
				errIdx = i
			}
		}
		return leaseIdx >= 0, leaseIdx, errIdx
	default:
		if tv.Type != nil && isLeaseType(tv.Type) {
			return true, 0, -1
		}
	}
	return false, -1, -1
}

// calleeDescription names the call for findings: "pkg.F" or "T.M".
func calleeDescription(info *types.Info, call *ast.CallExpr) string {
	if fn := staticCallee(info, call); fn != nil {
		return fn.Name()
	}
	return "call"
}

// leaseVar resolves e to a variable currently known to bind lease
// obligations (directly or through an alias), or nil.
func (an *leaseAnalysis) leaseVar(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := an.pkg.Info.Uses[id]
	if obj == nil {
		obj = an.pkg.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	if !isLeaseType(obj.Type()) {
		return nil
	}
	return obj
}

// killSet expands a kill on v to its alias class.
func (an *leaseAnalysis) killSet(v types.Object) []int {
	root := v
	for an.aliasOf[root] != nil {
		root = an.aliasOf[root]
	}
	var ids []int
	seen := make(map[int]bool)
	add := func(obj types.Object) {
		for _, id := range an.bound[obj] {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	add(v)
	add(root)
	for a, r := range an.aliasOf {
		if r == root || r == v {
			add(a)
		}
	}
	return ids
}

// newObligation registers an acquire.
func (an *leaseAnalysis) newObligation(call *ast.CallExpr) *obligation {
	ob := &obligation{
		id:   len(an.obls),
		pos:  call.Pos(),
		what: calleeDescription(an.pkg.Info, call),
	}
	an.obls = append(an.obls, ob)
	return ob
}

// scanStmt derives the ordered ownership events of one block statement
// and reports immediately-diagnosable leaks (discarded acquire results).
func (an *leaseAnalysis) scanStmt(s ast.Stmt) []event {
	var evs []event
	switch st := s.(type) {
	case *ast.AssignStmt:
		evs = an.scanAssign(st.Lhs, st.Rhs, st.Tok)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				evs = append(evs, an.scanAssign(lhs, vs.Values, token.DEFINE)...)
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if ok, _, _ := an.acquireShape(call); ok {
				an.report(call.Pos(), "result of %s is discarded: the lease is never released (in %s)",
					calleeDescription(an.pkg.Info, call), an.fn)
				// Consumed for tracking purposes: already reported.
				evs = append(evs, an.scanExpr(call, true)...)
				return evs
			}
		}
		evs = append(evs, an.scanExpr(st.X, false)...)
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			if v := an.leaseVar(res); v != nil {
				evs = append(evs, event{kill: v})
				continue
			}
			// A lease produced by the returned expression transfers to the
			// caller; nested arguments follow callee summaries.
			evs = append(evs, an.scanExpr(res, true)...)
		}
	case *ast.DeferStmt:
		evs = append(evs, an.scanDeferredCall(st.Call)...)
	case *ast.GoStmt:
		// The goroutine takes over anything handed to it.
		for _, arg := range st.Call.Args {
			if v := an.leaseVar(arg); v != nil {
				evs = append(evs, event{kill: v})
			} else {
				evs = append(evs, an.scanExpr(arg, true)...)
			}
		}
		if fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			evs = append(evs, an.capturedKills(fl)...)
		}
	case *ast.SendStmt:
		if v := an.leaseVar(st.Value); v != nil {
			evs = append(evs, event{kill: v})
		} else {
			evs = append(evs, an.scanExpr(st.Value, true)...)
		}
		evs = append(evs, an.scanExpr(st.Chan, false)...)
	case *ast.RangeStmt:
		// Head block of a range loop: only the operand is evaluated here.
		evs = append(evs, an.scanExpr(st.X, false)...)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// no ownership effects
	default:
		// Fallback: scan any expressions reachable without a context.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				evs = append(evs, an.scanExpr(e, false)...)
				return false
			}
			return true
		})
	}
	return sortEvents(evs)
}

// sortEvents moves kills ahead of acquires so a statement that both
// consumes and produces (l = pool.Grow(l, n)) discharges first.
func sortEvents(evs []event) []event {
	var kills, acquires []event
	for _, e := range evs {
		if e.kill != nil {
			kills = append(kills, e)
		} else {
			acquires = append(acquires, e)
		}
	}
	return append(kills, acquires...)
}

// scanDeferredCall handles defer: a deferred Release (or consuming
// callee, or capturing literal) is treated as discharging immediately —
// it is guaranteed to run on every subsequent exit from the function.
func (an *leaseAnalysis) scanDeferredCall(call *ast.CallExpr) []event {
	var evs []event
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		evs = append(evs, an.capturedKills(fl)...)
		return evs
	}
	evs = append(evs, an.scanExpr(call, false)...)
	return evs
}

// capturedKills kills every lease variable referenced inside a function
// literal: the capture hands the obligation to the literal (which is
// itself analyzed as a separate body).
func (an *leaseAnalysis) capturedKills(fl *ast.FuncLit) []event {
	var evs []event
	info := an.pkg.Info
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar && isLeaseType(obj.Type()) {
					evs = append(evs, event{kill: obj})
				}
			}
		}
		return true
	})
	return evs
}

// scanAssign handles one assignment (or value-spec) statement.
func (an *leaseAnalysis) scanAssign(lhs, rhs []ast.Expr, tok token.Token) []event {
	var evs []event
	info := an.pkg.Info

	// Record every plain-variable assignment position for err-window
	// bounding.
	for _, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				an.errAssigns[obj] = append(an.errAssigns[obj], id.Pos())
			}
		}
	}

	lhsObj := func(i int) (types.Object, *ast.Ident) {
		if i >= len(lhs) {
			return nil, nil
		}
		id, ok := ast.Unparen(lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil, nil
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		return obj, id
	}
	lhsEscapes := func(i int) bool {
		if i >= len(lhs) {
			return false
		}
		switch ast.Unparen(lhs[i]).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			return true
		}
		return false
	}

	// Tuple form: l, err := f(...)
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if isAcq, leaseIdx, errIdx := an.acquireShape(call); isAcq {
				evs = append(evs, an.scanExpr(call, true)...) // consume nested acquires via callee
				if lhsEscapes(leaseIdx) {
					return evs // stored at birth: ownership transferred
				}
				obj, _ := lhsObj(leaseIdx)
				if obj == nil {
					// Blank-assigned lease: report here and track nothing —
					// there is no variable a later path could discharge.
					an.report(call.Pos(), "lease from %s is assigned to _ and never released (in %s)",
						calleeDescription(an.pkg.Info, call), an.fn)
					return evs
				}
				ob := an.newObligation(call)
				evs = append(evs, event{acquire: ob.id, kill: nil})
				evs = append(evs, killBeforeRebind(an, obj)...)
				an.bound[obj] = append(an.bound[obj], ob.id)
				delete(an.aliasOf, obj)
				if errIdx >= 0 {
					if eobj, _ := lhsObj(errIdx); eobj != nil {
						ob.errVar = eobj
					}
				}
				return evs
			}
		}
	}

	// Positional forms.
	for i, r := range rhs {
		r = ast.Unparen(r)
		li := i
		if len(lhs) != len(rhs) {
			li = -1
		}
		if call, ok := r.(*ast.CallExpr); ok {
			if isAcq, _, _ := an.acquireShape(call); isAcq {
				evs = append(evs, an.scanExpr(call, true)...)
				if li >= 0 && lhsEscapes(li) {
					continue // stored at birth
				}
				var obj types.Object
				if li >= 0 {
					obj, _ = lhsObj(li)
				}
				if obj == nil {
					an.report(call.Pos(), "lease from %s is discarded and never released (in %s)",
						calleeDescription(info, call), an.fn)
					continue
				}
				ob := an.newObligation(call)
				evs = append(evs, killBeforeRebind(an, obj)...)
				evs = append(evs, event{acquire: ob.id})
				an.bound[obj] = append(an.bound[obj], ob.id)
				delete(an.aliasOf, obj)
				continue
			}
		}
		// Alias or escape of an existing lease variable.
		if v := an.leaseVar(r); v != nil {
			if li >= 0 && lhsEscapes(li) {
				evs = append(evs, event{kill: v}) // stored: ownership transferred
				continue
			}
			if li >= 0 {
				if obj, _ := lhsObj(li); obj != nil && tok == token.DEFINE {
					an.aliasOf[obj] = v // a := l
					continue
				}
			}
			continue
		}
		// Anything else: scan generically. Composite literals and calls
		// consume lease variables per the transfer rules.
		consumed := li >= 0 && lhsEscapes(li)
		evs = append(evs, an.scanExpr(r, consumed)...)
	}
	return evs
}

// killBeforeRebind discharges obligations already bound to obj when it
// is rebound by a fresh acquire: `l = pool.Grow(l, n)` style code has
// already consumed the old lease via the callee's summary; rebinding
// without consumption is treated optimistically (the old value may have
// been released earlier on this path).
func killBeforeRebind(an *leaseAnalysis, obj types.Object) []event {
	if len(an.bound[obj]) == 0 {
		return nil
	}
	return []event{{kill: obj}}
}

// scanExpr walks one expression, emitting kills for consumed lease
// variables and reporting acquires that happen in a position where the
// result is unrecoverable. consumed says the expression's own value is
// accounted for (returned, stored, or owned by an enclosing call).
func (an *leaseAnalysis) scanExpr(e ast.Expr, consumed bool) []event {
	var evs []event
	if e == nil {
		return nil
	}
	info := an.pkg.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if isAcq, _, _ := an.acquireShape(x); isAcq && !consumed {
			an.report(x.Pos(), "lease from %s is discarded and never released (in %s)",
				calleeDescription(info, x), an.fn)
		}
		callee := staticCallee(info, x)
		var csum *funcSummary
		if an.sum != nil && callee != nil {
			csum = an.sum.summaryFor(callee, an.pkg)
		}
		// Receiver consumption: l.Release() and annotated methods.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			recvConsumes := csum != nil && csum.recv.consumes()
			if v := an.leaseVar(sel.X); v != nil && recvConsumes {
				evs = append(evs, event{kill: v})
			} else {
				evs = append(evs, an.scanExpr(sel.X, recvConsumes)...)
			}
		}
		if callee == nil {
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
				for i, arg := range x.Args {
					if i == 0 {
						evs = append(evs, an.scanExpr(arg, false)...)
						continue
					}
					if v := an.leaseVar(arg); v != nil {
						evs = append(evs, event{kill: v})
					} else {
						evs = append(evs, an.scanExpr(arg, true)...)
					}
				}
				return evs
			}
		}
		for i, arg := range x.Args {
			argConsumed := csum.effectOn(i).consumes()
			if v := an.leaseVar(arg); v != nil {
				if argConsumed {
					evs = append(evs, event{kill: v})
				}
				continue
			}
			evs = append(evs, an.scanExpr(arg, argConsumed)...)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if v := an.leaseVar(val); v != nil {
				evs = append(evs, event{kill: v}) // stored in the literal
				continue
			}
			evs = append(evs, an.scanExpr(val, true)...)
		}
	case *ast.FuncLit:
		evs = append(evs, an.capturedKills(x)...)
	case *ast.UnaryExpr:
		evs = append(evs, an.scanExpr(x.X, consumed)...)
	case *ast.StarExpr:
		evs = append(evs, an.scanExpr(x.X, false)...)
	case *ast.BinaryExpr:
		evs = append(evs, an.scanExpr(x.X, false)...)
		evs = append(evs, an.scanExpr(x.Y, false)...)
	case *ast.SelectorExpr:
		// A bare (uncalled) selector of a consuming method is a method
		// value: binding `rel := l.Release` hands the obligation to the
		// closure, which the holder is responsible for invoking.
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok && an.sum != nil {
			if s := an.sum.summaryFor(fn, an.pkg); s != nil && s.recv.consumes() {
				if v := an.leaseVar(x.X); v != nil {
					evs = append(evs, event{kill: v})
					return evs
				}
			}
		}
		evs = append(evs, an.scanExpr(x.X, false)...)
	case *ast.IndexExpr:
		evs = append(evs, an.scanExpr(x.X, false)...)
		evs = append(evs, an.scanExpr(x.Index, false)...)
	case *ast.SliceExpr:
		evs = append(evs, an.scanExpr(x.X, false)...)
	case *ast.TypeAssertExpr:
		evs = append(evs, an.scanExpr(x.X, consumed)...)
	case *ast.KeyValueExpr:
		evs = append(evs, an.scanExpr(x.Value, consumed)...)
	}
	return evs
}

// solve runs the must-discharge dataflow over the CFG and reports
// obligations still live at exit.
func (an *leaseAnalysis) solve(g *cfg.Graph) {
	n := len(g.Blocks)
	// in live sets per block; the out state is recomputed per edge so
	// cond blocks can apply err-branch refinement per successor.
	in := make([]map[int]bool, n)

	union := func(dst, src map[int]bool) bool {
		changed := false
		for id := range src {
			if !dst[id] {
				dst[id] = true
				changed = true
			}
		}
		return changed
	}

	// outFor computes the state leaving block b toward succ index si.
	outFor := func(b *cfg.Block, si int, inState map[int]bool) map[int]bool {
		out := make(map[int]bool, len(inState))
		for id := range inState {
			out[id] = true
		}
		for _, s := range b.Stmts {
			for _, ev := range an.events[s] {
				if ev.kill != nil {
					for _, id := range an.killSet(ev.kill) {
						delete(out, id)
					}
				} else {
					out[ev.acquire] = true
				}
			}
		}
		if b.Cond != nil && len(b.Succs) == 2 {
			if v, isEq := nilComparison(an.pkg.Info, b.Cond); v != nil {
				// Succs[0] is the true edge. The lease is nil exactly when
				// the error is non-nil: for "err != nil" that is the true
				// edge, for "err == nil" the false edge.
				killEdge := (si == 0) != isEq
				if killEdge {
					for _, ob := range an.obls {
						if ob.errVar == v && out[ob.id] && an.errWindowValid(ob, b.Cond.Pos()) {
							delete(out, ob.id)
						}
					}
				}
			}
		}
		return out
	}

	// Worklist fixpoint.
	for i := range in {
		in[i] = make(map[int]bool)
	}
	work := make([]*cfg.Block, 0, n)
	inWork := make([]bool, n)
	push := func(b *cfg.Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	// Seed every block, not just the entry: propagation is change-driven,
	// and a block whose first computed out-state is empty would otherwise
	// never enqueue its successors — an acquire downstream of an early
	// branch would go entirely unanalyzed.
	for i := len(g.Blocks) - 1; i >= 0; i-- {
		push(g.Blocks[i])
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.Index] = false
		for si, s := range b.Succs {
			out := outFor(b, si, in[b.Index])
			if union(in[s.Index], out) {
				push(s)
			}
		}
	}

	for id := range in[g.Exit.Index] {
		ob := an.obls[id]
		an.report(ob.pos, "lease from %s may not be released or ownership-transferred on every path (in %s)",
			ob.what, an.fn)
	}
	SortFindings(an.findings)
}

// errWindowValid reports whether the err-branch refinement of ob still
// applies at condPos (the error variable has not been reassigned in
// between).
func (an *leaseAnalysis) errWindowValid(ob *obligation, condPos token.Pos) bool {
	if ob.errValid == token.NoPos {
		return condPos > ob.pos
	}
	return condPos > ob.pos && condPos < ob.errValid
}

// nilComparison matches `x != nil` / `x == nil` conditions on a plain
// variable, returning the variable and whether the operator is ==.
func nilComparison(info *types.Info, cond ast.Expr) (v types.Object, isEq bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	isNilIdent := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var id *ast.Ident
	switch {
	case isNilIdent(y):
		id, _ = x.(*ast.Ident)
	case isNilIdent(x):
		id, _ = y.(*ast.Ident)
	}
	if id == nil {
		return nil, false
	}
	obj := info.Uses[id]
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, false
	}
	return obj, be.Op == token.EQL
}
