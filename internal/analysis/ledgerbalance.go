package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/cfg"
)

// LedgerBalanceCheck verifies flow-ledger symmetry statically: every
// (*flow.Ledger).Admit call charges bytes that must be drained on every
// path — by a (*flow.Ledger).Release, by calling a helper whose summary
// (transitively) releases a ledger, or by recording the charge into a
// field whose name contains "charge" for a later asymmetric drain (the
// supplier's resolved.charge convention). The one decision that charges
// nothing is Shed, so a `== flow.Shed` branch cancels the obligation on
// its true edge.
type LedgerBalanceCheck struct{}

// Name returns "ledgerbalance".
func (*LedgerBalanceCheck) Name() string { return "ledgerbalance" }

// Doc describes the check.
func (*LedgerBalanceCheck) Doc() string {
	return "flow-ledger Admit charges must be drained or recorded on every path"
}

// Run reports Admit charges that can reach a return undrained.
func (c *LedgerBalanceCheck) Run(pkg *Package) []Finding {
	var fs []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			fs = append(fs, analyzeLedgerBody(pkg, name, fd.Body)...)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					fs = append(fs, analyzeLedgerBody(pkg, name+" (func literal)", fl.Body)...)
				}
				return true
			})
		}
	}
	return fs
}

// charge is one live Admit obligation.
type charge struct {
	id  int
	pos token.Pos
	// decVar is the Decision-typed variable the Admit result was bound
	// to, when any; condCall is the Admit call itself when the result is
	// compared inline (`if ledger.Admit(n) == flow.Shed`).
	decVar   types.Object
	condCall *ast.CallExpr
}

// ledgerEvent mirrors leaseflow's event shape: drainAll kills every live
// charge; acquire adds one.
type ledgerEvent struct {
	drainAll bool
	acquire  int
}

type ledgerAnalysis struct {
	pkg      *Package
	sum      *summarizer
	fn       string
	charges  []*charge
	events   map[ast.Stmt][]ledgerEvent
	condAcq  map[*cfg.Block][]int // charges acquired by a block's Cond expr
	findings []Finding
}

func analyzeLedgerBody(pkg *Package, fnName string, body *ast.BlockStmt) []Finding {
	var sum *summarizer
	if pkg.loader != nil {
		sum = pkg.loader.summaries()
	}
	an := &ledgerAnalysis{
		pkg:     pkg,
		sum:     sum,
		fn:      fnName,
		events:  make(map[ast.Stmt][]ledgerEvent),
		condAcq: make(map[*cfg.Block][]int),
	}
	g := cfg.Build(body)
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			an.events[s] = an.scanLedgerStmt(s)
		}
		if b.Cond != nil {
			an.scanCond(b)
		}
	}
	if len(an.charges) > 0 {
		an.solve(g)
	}
	return an.findings
}

// isAdmitCall matches (*flow.Ledger).Admit.
func (an *ledgerAnalysis) isAdmitCall(call *ast.CallExpr) bool {
	fn := staticCallee(an.pkg.Info, call)
	if fn == nil || fn.Name() != "Admit" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isLedgerType(sig.Recv().Type())
}

// drainsHere reports whether call releases a ledger, directly or through
// a summarized helper.
func (an *ledgerAnalysis) drainsHere(call *ast.CallExpr) bool {
	fn := staticCallee(an.pkg.Info, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Release" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isLedgerType(sig.Recv().Type()) {
			return true
		}
	}
	if an.sum != nil {
		if s := an.sum.summaryFor(fn, an.pkg); s != nil && s.drainsLedger {
			return true
		}
	}
	return false
}

// scanLedgerStmt derives the charge events of one block statement.
func (an *ledgerAnalysis) scanLedgerStmt(s ast.Stmt) []ledgerEvent {
	var evs []ledgerEvent
	info := an.pkg.Info

	// Charge-field stores: any assignment to a field named *charge*
	// records the admitted amount for a later drain (documented
	// convention; see docs/STATIC_ANALYSIS.md).
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if sel, ok := ast.Unparen(l).(*ast.SelectorExpr); ok &&
				strings.Contains(strings.ToLower(sel.Sel.Name), "charge") {
				evs = append(evs, ledgerEvent{drainAll: true})
			}
		}
	}

	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are analyzed as separate bodies
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if an.drainsHere(call) {
			evs = append(evs, ledgerEvent{drainAll: true})
			return true
		}
		if an.isAdmitCall(call) {
			ch := &charge{id: len(an.charges), pos: call.Pos()}
			// Bind the decision variable when the enclosing statement is a
			// plain assignment of this single call.
			if as, ok := s.(*ast.AssignStmt); ok && len(as.Rhs) == 1 &&
				ast.Unparen(as.Rhs[0]) == call && len(as.Lhs) == 1 {
				if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						ch.decVar = obj
					} else if obj := info.Uses[id]; obj != nil {
						ch.decVar = obj
					}
				}
			}
			an.charges = append(an.charges, ch)
			evs = append(evs, ledgerEvent{acquire: ch.id})
		}
		return true
	})

	// Drains must win within one statement (e.g. a helper that both
	// drains and re-admits is beyond this model); order drains first,
	// acquires last, mirroring leaseflow.
	var drains, acquires []ledgerEvent
	for _, e := range evs {
		if e.drainAll {
			drains = append(drains, e)
		} else {
			acquires = append(acquires, e)
		}
	}
	return append(drains, acquires...)
}

// scanCond registers Admit calls inside a block's condition expression
// (`if s.ledger.Admit(n) == flow.Shed { ... }`): the charge is created
// when the condition evaluates, then refined by the comparison.
func (an *ledgerAnalysis) scanCond(b *cfg.Block) {
	ast.Inspect(b.Cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if an.isAdmitCall(call) {
			ch := &charge{id: len(an.charges), pos: call.Pos(), condCall: call}
			an.charges = append(an.charges, ch)
			an.condAcq[b] = append(an.condAcq[b], ch.id)
		}
		return true
	})
}

// shedComparison matches a condition of the form `x == flow.Shed` or
// `x != flow.Shed`, returning the compared expression and whether the
// operator is ==.
func shedComparison(info *types.Info, cond ast.Expr) (x ast.Expr, isEq bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	isShed := func(e ast.Expr) bool {
		var id *ast.Ident
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = v
		case *ast.SelectorExpr:
			id = v.Sel
		}
		if id == nil {
			return false
		}
		obj := info.Uses[id]
		return obj != nil && obj.Name() == "Shed" && obj.Pkg() != nil &&
			strings.HasSuffix(obj.Pkg().Path(), "internal/flow")
	}
	switch {
	case isShed(be.Y):
		return ast.Unparen(be.X), be.Op == token.EQL
	case isShed(be.X):
		return ast.Unparen(be.Y), be.Op == token.EQL
	}
	return nil, false
}

func (an *ledgerAnalysis) solve(g *cfg.Graph) {
	n := len(g.Blocks)
	in := make([]map[int]bool, n)
	for i := range in {
		in[i] = make(map[int]bool)
	}
	info := an.pkg.Info

	outFor := func(b *cfg.Block, si int, inState map[int]bool) map[int]bool {
		out := make(map[int]bool, len(inState))
		for id := range inState {
			out[id] = true
		}
		for _, s := range b.Stmts {
			for _, ev := range an.events[s] {
				if ev.drainAll {
					clear(out)
				} else {
					out[ev.acquire] = true
				}
			}
		}
		for _, id := range an.condAcq[b] {
			out[id] = true
		}
		if b.Cond != nil && len(b.Succs) == 2 {
			if x, isEq := shedComparison(info, b.Cond); x != nil {
				// Shed charges nothing: kill on the edge where the decision
				// is known to be Shed. For "== Shed" that is the true edge,
				// for "!= Shed" the false edge.
				if (si == 0) == isEq {
					for _, ch := range an.charges {
						if !out[ch.id] {
							continue
						}
						if ch.condCall != nil && ast.Unparen(x) == ast.Unparen(ch.condCall) {
							delete(out, ch.id)
						}
						if ch.decVar != nil {
							if id, ok := x.(*ast.Ident); ok && info.Uses[id] == ch.decVar {
								delete(out, ch.id)
							}
						}
					}
				}
			}
		}
		return out
	}

	union := func(dst, src map[int]bool) bool {
		changed := false
		for id := range src {
			if !dst[id] {
				dst[id] = true
				changed = true
			}
		}
		return changed
	}

	// Seed every block (see the matching comment in leaseflow's solve):
	// change-driven propagation alone never visits blocks past an empty
	// first frontier.
	work := make([]*cfg.Block, 0, n)
	inWork := make([]bool, n)
	for i := len(g.Blocks) - 1; i >= 0; i-- {
		work = append(work, g.Blocks[i])
		inWork[g.Blocks[i].Index] = true
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.Index] = false
		for si, s := range b.Succs {
			out := outFor(b, si, in[b.Index])
			if union(in[s.Index], out) && !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s)
			}
		}
	}

	for id := range in[g.Exit.Index] {
		ch := an.charges[id]
		an.findings = append(an.findings, Finding{
			Pos:   an.pkg.Fset.Position(ch.pos),
			Check: "ledgerbalance",
			Message: fmt.Sprintf(
				"ledger charge from Admit may not be drained (Release, drained helper, or charge-field store) on every path (in %s)",
				an.fn),
		})
	}
	SortFindings(an.findings)
}
