package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package directory.
type Package struct {
	// Name is the package clause name.
	Name string
	// Dir is the absolute directory path.
	Dir string
	// Rel is the module-root-relative path ("internal/core"), or the
	// absolute path when the directory lies outside the module.
	Rel string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package (possibly incomplete if
	// TypeErrors is non-empty).
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// TypeErrors collects type-check errors; checks still run but may be
	// unreliable when this is non-empty.
	TypeErrors []error
}

// Loader parses and type-checks package directories. Our own module's
// import paths resolve directly against the module root; standard-library
// imports resolve through the stdlib source importer. Both are memoized,
// so a whole-repo scan type-checks each dependency once.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	std  types.Importer
	pkgs map[string]*Package // keyed by cleaned absolute dir
}

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		Root:   root,
		Module: mod,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
	}, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load parses and type-checks the package in dir (memoized).
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	abs = filepath.Clean(abs)
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", abs)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	rel := abs
	if r, err := filepath.Rel(l.Root, abs); err == nil && !strings.HasPrefix(r, "..") {
		rel = filepath.ToSlash(r)
	}
	pkg := &Package{
		Name:  files[0].Name.Name,
		Dir:   abs,
		Rel:   rel,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	// Memoize before type-checking: import cycles would otherwise recurse
	// forever (valid Go has none, but a broken tree should fail cleanly).
	l.pkgs[abs] = pkg

	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.importPath(path)
		}),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(l.importPathFor(rel), l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// importPathFor derives the import path recorded for a checked package.
func (l *Loader) importPathFor(rel string) string {
	if filepath.IsAbs(rel) {
		return rel // outside the module (e.g. test fixtures)
	}
	if rel == "." {
		return l.Module
	}
	return l.Module + "/" + rel
}

// importPath resolves one import: module-local paths load from source
// under the module root, everything else goes to the stdlib importer.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.Load(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: dependency %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
