package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package directory.
type Package struct {
	// Name is the package clause name.
	Name string
	// Dir is the absolute directory path.
	Dir string
	// Rel is the module-root-relative path ("internal/core"), or the
	// absolute path when the directory lies outside the module.
	Rel string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package (possibly incomplete if
	// TypeErrors is non-empty).
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// TypeErrors collects type-check errors; checks still run but may be
	// unreliable when this is non-empty.
	TypeErrors []error

	// loader points back at the Loader that produced this package, so
	// interprocedural analyses (summaries, lockorder) can resolve callees
	// declared in other packages. Nil for hand-built test packages.
	loader *Loader
}

// Loader parses and type-checks package directories. Our own module's
// import paths resolve directly against the module root; standard-library
// imports resolve through the stdlib source importer. Both are memoized,
// so a whole-repo scan type-checks each dependency once.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	std      types.Importer
	pkgs     map[string]*Package   // keyed by cleaned absolute dir
	testPkgs map[string][]*Package // LoadTests results, same key
	sum      *summarizer           // shared interprocedural summaries
}

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		Root:     root,
		Module:   mod,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*Package),
		testPkgs: make(map[string][]*Package),
	}, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load parses and type-checks the package in dir (memoized).
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	abs = filepath.Clean(abs)
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", abs)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	rel := abs
	if r, err := filepath.Rel(l.Root, abs); err == nil && !strings.HasPrefix(r, "..") {
		rel = filepath.ToSlash(r)
	}
	pkg := &Package{
		Name:  files[0].Name.Name,
		Dir:   abs,
		Rel:   rel,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
		loader: l,
	}
	// Memoize before type-checking: import cycles would otherwise recurse
	// forever (valid Go has none, but a broken tree should fail cleanly).
	l.pkgs[abs] = pkg

	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.importPath(path)
		}),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(l.importPathFor(rel), l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// LoadTests parses and type-checks the test code of the package in dir
// (memoized) and returns up to two additional units: the package merged
// with its in-package _test.go files, and the external `<name>_test`
// package as its own unit. Directories with no test files return nil.
// These units are never registered as import targets — importing a
// package always resolves to its non-test half via Load — so test-only
// declarations cannot leak into dependents' type-checking.
func (l *Loader) LoadTests(dir string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	abs = filepath.Clean(abs)
	if pkgs, ok := l.testPkgs[abs]; ok {
		return pkgs, nil
	}

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var baseNames, testNames []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") {
			testNames = append(testNames, n)
		} else {
			baseNames = append(baseNames, n)
		}
	}
	if len(testNames) == 0 {
		l.testPkgs[abs] = nil
		return nil, nil
	}
	sort.Strings(baseNames)
	sort.Strings(testNames)

	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, n := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(abs, n), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	testFiles, err := parse(testNames)
	if err != nil {
		return nil, err
	}
	var inPkg, external []*ast.File
	for _, f := range testFiles {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}

	rel := abs
	if r, err := filepath.Rel(l.Root, abs); err == nil && !strings.HasPrefix(r, "..") {
		rel = filepath.ToSlash(r)
	}
	check := func(name string, files []*ast.File) *Package {
		path := l.importPathFor(rel)
		if strings.HasSuffix(name, "_test") {
			// The external test package imports the base package; giving it
			// the base's own path would read as a self-import.
			path += "_test"
		}
		pkg := &Package{
			Name:  name,
			Dir:   abs,
			Rel:   rel,
			Fset:  l.Fset,
			Files: files,
			Info: &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
			},
			loader: l,
		}
		conf := types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				return l.importPath(path)
			}),
			Error: func(err error) {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			},
		}
		tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
		pkg.Types = tpkg
		return pkg
	}

	var pkgs []*Package
	if len(inPkg) > 0 {
		// The in-package unit re-parses the base files rather than reusing
		// Load's ASTs: the merged unit type-checks with its own Info tables,
		// and sharing ASTs across two type-checks would interleave them.
		baseFiles, err := parse(baseNames)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, check(inPkg[0].Name.Name, append(baseFiles, inPkg...)))
	}
	if len(external) > 0 {
		pkgs = append(pkgs, check(external[0].Name.Name, external))
	}
	l.testPkgs[abs] = pkgs
	return pkgs, nil
}

// importPathFor derives the import path recorded for a checked package.
func (l *Loader) importPathFor(rel string) string {
	if filepath.IsAbs(rel) {
		return rel // outside the module (e.g. test fixtures)
	}
	if rel == "." {
		return l.Module
	}
	return l.Module + "/" + rel
}

// importPath resolves one import: module-local paths load from source
// under the module root, everything else goes to the stdlib importer.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.Load(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: dependency %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
