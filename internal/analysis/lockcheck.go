package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck enforces JBS's lock hygiene rules on every function:
//
//  1. a sync.Mutex/RWMutex Lock (or RLock) must have a matching Unlock
//     (or RUnlock) — explicit or deferred — somewhere in the same
//     function;
//  2. no return statement may execute while a lock is held unless a
//     matching deferred unlock has been registered;
//  3. no blocking operation — channel send/receive, select without a
//     default, time.Sleep, sync.WaitGroup.Wait, or I/O on an
//     interface-typed or net.* value — may run while a mutex is held.
//
// Dedicated I/O-serialization mutexes (the repo convention: a name
// containing "send", "recv", "read", "write", or "io", e.g. sendMu /
// recvMu guarding a framed connection) are exempt from rule 3 — their
// whole purpose is holding across one I/O — but still subject to 1 and 2.
//
// The held-lock tracking is branch-aware but intraprocedural and
// heuristic: a branch that terminates (return/continue/break) does not
// leak its lock state into the fall-through path, and after an
// if/else both branches must hold a lock for it to count as held.
// False negatives are possible; false positives should be rare.
type LockCheck struct{}

// Name implements Check.
func (*LockCheck) Name() string { return "lockhygiene" }

// Doc implements Check.
func (*LockCheck) Doc() string {
	return "paired Lock/Unlock on all paths; no blocking calls while a state mutex is held"
}

// Run implements Check.
func (c *LockCheck) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var name string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, name = fn.Body, fn.Name.Name
			case *ast.FuncLit:
				body, name = fn.Body, "func literal"
			default:
				return true
			}
			if body != nil {
				s := &lockScanner{pkg: pkg, funcName: name,
					use: make(map[string]*lockUse), deferred: make(map[string]bool)}
				s.scanStmts(body.List, newHeldSet())
				s.finishBalance()
				out = append(out, s.findings...)
			}
			return true
		})
	}
	return out
}

// lockUse tracks per-key balance within one function.
type lockUse struct {
	lockPos  token.Pos // first write-Lock
	rlockPos token.Pos // first RLock
	unlocks  int       // explicit or deferred Unlock
	runlocks int       // explicit or deferred RUnlock
}

// heldSet maps lock key -> state while scanning.
type heldState struct {
	read     bool // held via RLock
	deferred bool // a matching deferred unlock is registered
}

func newHeldSet() map[string]heldState { return map[string]heldState{} }

func copyHeld(h map[string]heldState) map[string]heldState {
	c := make(map[string]heldState, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersectHeld keeps keys held on both paths (deferred if on either).
func intersectHeld(a, b map[string]heldState) map[string]heldState {
	out := newHeldSet()
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = heldState{read: va.read && vb.read, deferred: va.deferred || vb.deferred}
		}
	}
	return out
}

// exemptLock reports whether key names an I/O-serialization mutex.
func exemptLock(key string) bool {
	last := key
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		last = key[i+1:]
	}
	last = strings.ToLower(last)
	for _, s := range []string{"send", "recv", "read", "write", "io"} {
		if strings.Contains(last, s) {
			return true
		}
	}
	return false
}

// blockingHeld returns a non-exempt held key, or "".
func blockingHeld(held map[string]heldState) string {
	for k := range held {
		if !exemptLock(k) {
			return k
		}
	}
	return ""
}

type lockScanner struct {
	pkg      *Package
	funcName string
	use      map[string]*lockUse
	// deferred records keys with a registered deferred unlock: once a
	// defer is on the books it also covers later re-acquisitions of the
	// same lock in this function.
	deferred map[string]bool
	findings []Finding
}

func (s *lockScanner) addf(pos token.Pos, format string, args ...any) {
	s.findings = append(s.findings, Finding{
		Pos:     position(s.pkg, pos),
		Check:   "lockhygiene",
		Message: fmt.Sprintf(format, args...),
	})
}

// lockCall classifies call as a sync lock operation. It returns the
// canonical receiver key ("c.mu") and the method name.
func (s *lockScanner) lockCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, _ := s.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// finishBalance reports locks that are never unlocked in the function.
func (s *lockScanner) finishBalance() {
	for key, u := range s.use {
		if u.lockPos.IsValid() && u.unlocks == 0 {
			s.addf(u.lockPos, "%s.Lock() in %s has no matching Unlock on any path", key, s.funcName)
		}
		if u.rlockPos.IsValid() && u.runlocks == 0 {
			s.addf(u.rlockPos, "%s.RLock() in %s has no matching RUnlock on any path", key, s.funcName)
		}
	}
}

func (s *lockScanner) useFor(key string) *lockUse {
	u, ok := s.use[key]
	if !ok {
		u = &lockUse{}
		s.use[key] = u
	}
	return u
}

// applyLockCall updates balance and held state for one lock call.
func (s *lockScanner) applyLockCall(call *ast.CallExpr, key, method string, deferred bool, held map[string]heldState) {
	u := s.useFor(key)
	switch method {
	case "Lock":
		if !u.lockPos.IsValid() {
			u.lockPos = call.Pos()
		}
		if !deferred {
			held[key] = heldState{deferred: s.deferred[key]}
		}
	case "RLock":
		if !u.rlockPos.IsValid() {
			u.rlockPos = call.Pos()
		}
		if !deferred {
			held[key] = heldState{read: true, deferred: s.deferred[key]}
		}
	case "Unlock", "RUnlock":
		if method == "Unlock" {
			u.unlocks++
		} else {
			u.runlocks++
		}
		if deferred {
			s.deferred[key] = true
			if st, ok := held[key]; ok {
				st.deferred = true
				held[key] = st
			}
		} else {
			delete(held, key)
		}
	}
}

// scanStmts walks one statement list, threading the held-lock state.
// It returns the exit state and whether the list terminates abruptly
// (return/branch/panic) rather than falling through.
func (s *lockScanner) scanStmts(stmts []ast.Stmt, held map[string]heldState) (map[string]heldState, bool) {
	for _, stmt := range stmts {
		var term bool
		held, term = s.scanStmt(stmt, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *lockScanner) scanStmt(stmt ast.Stmt, held map[string]heldState) (map[string]heldState, bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, method, ok := s.lockCall(call); ok {
				s.applyLockCall(call, key, method, false, held)
				return held, false
			}
			if isPanicCall(call) {
				return held, true
			}
		}
		s.checkBlocking(st, held)
		return held, false

	case *ast.DeferStmt:
		if key, method, ok := s.lockCall(st.Call); ok {
			s.applyLockCall(st.Call, key, method, true, held)
			return held, false
		}
		// The deferred call itself runs at return; don't treat its body
		// as executing here.
		return held, false

	case *ast.SendStmt:
		if key := blockingHeld(held); key != "" {
			s.addf(st.Pos(), "channel send while %s is held in %s", key, s.funcName)
		}
		return held, false

	case *ast.ReturnStmt:
		s.checkBlocking(st, held)
		for key, state := range held {
			if !state.deferred {
				s.addf(st.Pos(), "return while %s is locked in %s (no deferred unlock)", key, s.funcName)
			}
		}
		return held, true

	case *ast.BranchStmt: // break, continue, goto, fallthrough
		return held, st.Tok != token.FALLTHROUGH

	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)

	case *ast.BlockStmt:
		return s.scanStmts(st.List, held)

	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = s.scanStmt(st.Init, held)
		}
		s.checkBlocking(st.Cond, held)
		bodyHeld, bodyTerm := s.scanStmts(st.Body.List, copyHeld(held))
		elseHeld, elseTerm := copyHeld(held), false
		if st.Else != nil {
			elseHeld, elseTerm = s.scanStmt(st.Else, copyHeld(held))
		}
		switch {
		case bodyTerm && elseTerm:
			return held, st.Else != nil // no else: fall through remains
		case bodyTerm:
			return elseHeld, false
		case elseTerm:
			return bodyHeld, false
		default:
			return intersectHeld(bodyHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.checkBlocking(st.Cond, held)
		}
		s.scanStmts(st.Body.List, copyHeld(held))
		return held, false

	case *ast.RangeStmt:
		if t := s.pkg.Info.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				if key := blockingHeld(held); key != "" {
					s.addf(st.Pos(), "range over channel while %s is held in %s", key, s.funcName)
				}
			}
		}
		s.checkBlocking(st.X, held)
		s.scanStmts(st.Body.List, copyHeld(held))
		return held, false

	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if key := blockingHeld(held); key != "" {
				s.addf(st.Pos(), "blocking select while %s is held in %s", key, s.funcName)
			}
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				s.scanStmts(cc.Body, copyHeld(held))
			}
		}
		return held, false

	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = s.scanStmt(st.Init, held)
		}
		s.checkBlocking(st.Tag, held)
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, copyHeld(held))
			}
		}
		return held, false

	case *ast.TypeSwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, copyHeld(held))
			}
		}
		return held, false

	case *ast.GoStmt:
		// The goroutine runs concurrently and does not inherit our locks;
		// only its argument expressions evaluate here.
		for _, arg := range st.Call.Args {
			s.checkBlocking(arg, held)
		}
		return held, false

	case nil:
		return held, false

	default: // assignments, declarations, inc/dec, ...
		s.checkBlocking(stmt, held)
		return held, false
	}
}

// checkBlocking flags blocking operations inside node (not descending into
// function literals) while a non-exempt lock is held.
func (s *lockScanner) checkBlocking(node ast.Node, held map[string]heldState) {
	if node == nil {
		return
	}
	key := blockingHeld(held)
	if key == "" {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // separate goroutine/function context
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				s.addf(e.Pos(), "channel receive while %s is held in %s", key, s.funcName)
			}
		case *ast.SendStmt:
			s.addf(e.Pos(), "channel send while %s is held in %s", key, s.funcName)
		case *ast.CallExpr:
			s.checkBlockingCall(e, key)
		}
		return true
	})
}

// ioMethods are method names that block on a peer when invoked on an
// interface or net.* value.
var ioMethods = map[string]bool{
	"Read": true, "Write": true, "Send": true, "Recv": true,
	"Accept": true, "Dial": true, "ReadFrom": true, "WriteTo": true,
}

func (s *lockScanner) checkBlockingCall(call *ast.CallExpr, key string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := s.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			s.addf(call.Pos(), "time.Sleep while %s is held in %s", key, s.funcName)
		}
		return
	case "sync":
		// WaitGroup.Wait blocks on other goroutines (deadlock bait under a
		// lock); Cond.Wait releases the mutex and is fine.
		if fn.Name() == "Wait" {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil &&
				strings.Contains(recv.Type().String(), "WaitGroup") {
				s.addf(call.Pos(), "WaitGroup.Wait while %s is held in %s", key, s.funcName)
			}
		}
		return
	case "io":
		switch fn.Name() {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "ReadAtLeast":
			s.addf(call.Pos(), "io.%s while %s is held in %s", fn.Name(), key, s.funcName)
		}
		return
	}
	if !ioMethods[fn.Name()] {
		return
	}
	recvType := s.pkg.Info.TypeOf(sel.X)
	if recvType == nil {
		return
	}
	if _, isIface := recvType.Underlying().(*types.Interface); isIface || fromNetPackage(recvType) {
		s.addf(call.Pos(), "%s.%s (potential network I/O) while %s is held in %s",
			types.ExprString(sel.X), fn.Name(), key, s.funcName)
	}
}

// fromNetPackage reports whether t names a type from package net.
func fromNetPackage(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
