package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/cfg"
)

// LockOrderCheck builds a repo-wide mutex acquisition-order graph and
// fails on cycles: if one code path locks A then B while another locks B
// then A, the two paths can deadlock against each other even though each
// is locally well-formed (lockhygiene passes). Mutexes are identified at
// type granularity — the struct field object for field mutexes (shared
// by all instances of the type), the variable object for package-level
// mutexes, and the named type for embedded ones. Edges come from direct
// nested Lock calls and, interprocedurally, from calling a function
// whose transitive lockset is known while holding a lock. Goroutine
// launches do not propagate the held set (a spawned goroutine starts
// with no locks of its creator), and call-edge self-loops are skipped —
// helper recursion at type granularity would otherwise self-report.
type LockOrderCheck struct{}

// Name returns "lockorder".
func (*LockOrderCheck) Name() string { return "lockorder" }

// Doc describes the check.
func (*LockOrderCheck) Doc() string {
	return "no cycles in the repo-wide mutex acquisition-order graph"
}

// Run implements Check; lockorder is whole-program, so the per-package
// pass reports nothing.
func (*LockOrderCheck) Run(pkg *Package) []Finding { return nil }

// RunProgram implements ProgramCheck over every in-scope package.
func (c *LockOrderCheck) RunProgram(pkgs []*Package) []Finding {
	lo := &lockOrder{
		edges:    make(map[[2]types.Object]*lockEdge),
		locksets: make(map[*types.Func]map[types.Object]token.Pos),
		inLS:     make(map[*types.Func]bool),
	}
	for _, pkg := range pkgs {
		if pkg.loader != nil {
			lo.sum = pkg.loader.summaries()
			break
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lo.analyzeBody(pkg, fd.Name.Name, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						// A literal may run on any goroutine; analyze it with
						// an empty held set of its own.
						lo.analyzeBody(pkg, fd.Name.Name+" (func literal)", fl.Body)
					}
					return true
				})
			}
		}
	}
	return lo.cycles()
}

// lockEdge records the first witness of "to acquired while from held".
type lockEdge struct {
	from, to types.Object
	pos      token.Position
	fn       string
	note     string // "" for a direct Lock, else the callee path
}

type lockOrder struct {
	sum   *summarizer
	edges map[[2]types.Object]*lockEdge

	// locksets memoizes the set of mutexes a function may acquire,
	// directly or transitively, with one witness position each.
	locksets map[*types.Func]map[types.Object]token.Pos
	inLS     map[*types.Func]bool
}

// mutexIdent resolves the receiver of a sync.Mutex/RWMutex method call
// to a stable identity object, and a human-readable name.
func mutexIdent(pkg *Package, recv ast.Expr) (types.Object, string) {
	recv = ast.Unparen(recv)
	// Embedded mutex: the receiver's own type is not from package sync.
	t := pkg.Info.TypeOf(recv)
	if t != nil {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() != "sync" {
				return obj, obj.Name() + " (embedded mutex)"
			}
		}
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[r]; ok {
			// Field var: shared by every instance of the declaring struct,
			// giving type granularity for free.
			return sel.Obj(), types.ExprString(recv)
		}
		if obj := pkg.Info.Uses[r.Sel]; obj != nil {
			return obj, types.ExprString(recv) // pkg.Var
		}
	case *ast.Ident:
		if obj := pkg.Info.Uses[r]; obj != nil {
			return obj, r.Name
		}
	}
	return nil, ""
}

// syncLockCall classifies call as a Lock/RLock acquisition on a
// sync.Mutex or sync.RWMutex, returning the receiver expression.
func syncLockCall(pkg *Package, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// lockEvent is one ordered mutex action within a statement.
type lockEvent struct {
	obj     types.Object
	name    string
	pos     token.Pos
	acquire bool // false = release
	// callee, when set, contributes its transitive lockset instead.
	callee *types.Func
}

// scanLockStmts extracts ordered lock events from one statement (or a
// condition expression), skipping function literals and goroutine
// launches.
func (lo *lockOrder) scanLockNode(pkg *Package, n ast.Node, deferred bool) []lockEvent {
	var evs []lockEvent
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// Arguments evaluate here; the spawned call does not inherit
			// the held set.
			for _, arg := range x.Call.Args {
				evs = append(evs, lo.scanLockNode(pkg, arg, deferred)...)
			}
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held for edge purposes (it
			// releases only at exit); a deferred lock or locking callee is
			// not modeled.
			return false
		case *ast.CallExpr:
			if recv, method, ok := syncLockCall(pkg, x); ok {
				obj, name := mutexIdent(pkg, recv)
				if obj == nil {
					return true
				}
				switch method {
				case "Lock", "RLock":
					evs = append(evs, lockEvent{obj: obj, name: name, pos: x.Pos(), acquire: true})
				case "Unlock", "RUnlock":
					if !deferred {
						evs = append(evs, lockEvent{obj: obj, name: name, pos: x.Pos()})
					}
				}
				return true
			}
			if fn := staticCallee(pkg.Info, x); fn != nil {
				evs = append(evs, lockEvent{callee: fn, pos: x.Pos()})
			}
		}
		return true
	})
	return evs
}

// analyzeBody runs the held-set dataflow over one function body,
// recording acquisition-order edges.
func (lo *lockOrder) analyzeBody(pkg *Package, fnName string, body *ast.BlockStmt) {
	g := cfg.Build(body)
	events := make(map[*cfg.Block][]lockEvent)
	any := false
	for _, b := range g.Blocks {
		var evs []lockEvent
		for _, s := range b.Stmts {
			_, isDefer := s.(*ast.DeferStmt)
			evs = append(evs, lo.scanLockNode(pkg, s, isDefer)...)
		}
		if b.Cond != nil {
			evs = append(evs, lo.scanLockNode(pkg, b.Cond, false)...)
		}
		events[b] = evs
		if len(evs) > 0 {
			any = true
		}
	}
	if !any {
		return
	}

	n := len(g.Blocks)
	in := make([]map[types.Object]bool, n)
	for i := range in {
		in[i] = make(map[types.Object]bool)
	}
	apply := func(b *cfg.Block, state map[types.Object]bool, record bool) map[types.Object]bool {
		out := make(map[types.Object]bool, len(state))
		for o := range state {
			out[o] = true
		}
		for _, ev := range events[b] {
			switch {
			case ev.callee != nil:
				if len(out) == 0 {
					continue
				}
				for to, witness := range lo.locksetOf(ev.callee, pkg) {
					for from := range out {
						if from == to {
							continue // call-edge self-loop: helper on another instance
						}
						if record {
							lo.addEdge(pkg, from, to, ev.pos,
								fmt.Sprintf("via call to %s (locks at %s)", ev.callee.Name(), pkg.Fset.Position(witness)), fnName)
						}
					}
				}
			case ev.acquire:
				if record {
					for from := range out {
						lo.addEdge(pkg, from, ev.obj, ev.pos, "", fnName)
					}
				}
				out[ev.obj] = true
			default:
				delete(out, ev.obj)
			}
		}
		return out
	}

	// Fixpoint on may-held sets, then one recording pass. Every block is
	// seeded (see the matching comment in leaseflow's solve): held sets
	// acquired past an empty first frontier must still propagate.
	work := make([]*cfg.Block, 0, n)
	inWork := make([]bool, n)
	for i := len(g.Blocks) - 1; i >= 0; i-- {
		work = append(work, g.Blocks[i])
		inWork[g.Blocks[i].Index] = true
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.Index] = false
		out := apply(b, in[b.Index], false)
		for _, s := range b.Succs {
			changed := false
			for o := range out {
				if !in[s.Index][o] {
					in[s.Index][o] = true
					changed = true
				}
			}
			if changed && !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s)
			}
		}
	}
	for _, b := range g.Blocks {
		apply(b, in[b.Index], true)
	}
}

func (lo *lockOrder) addEdge(pkg *Package, from, to types.Object, pos token.Pos, note, fn string) {
	key := [2]types.Object{from, to}
	if _, ok := lo.edges[key]; ok {
		return
	}
	lo.edges[key] = &lockEdge{
		from: from, to: to,
		pos:  pkg.Fset.Position(pos),
		fn:   fn,
		note: note,
	}
}

// locksetOf returns the set of mutexes fn may acquire, transitively.
func (lo *lockOrder) locksetOf(fn *types.Func, ctx *Package) map[types.Object]token.Pos {
	fn = fn.Origin()
	if ls, ok := lo.locksets[fn]; ok {
		return ls
	}
	if lo.inLS[fn] || lo.sum == nil {
		return nil
	}
	decl, declPkg := lo.sum.decl(fn, ctx)
	if decl == nil || decl.Body == nil {
		lo.locksets[fn] = nil
		return nil
	}
	lo.inLS[fn] = true
	ls := make(map[types.Object]token.Pos)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if recv, method, ok := syncLockCall(declPkg, x); ok {
				if method == "Lock" || method == "RLock" {
					if obj, _ := mutexIdent(declPkg, recv); obj != nil {
						if _, seen := ls[obj]; !seen {
							ls[obj] = x.Pos()
						}
					}
				}
				return true
			}
			if callee := staticCallee(declPkg.Info, x); callee != nil {
				for obj, pos := range lo.locksetOf(callee, declPkg) {
					if _, seen := ls[obj]; !seen {
						ls[obj] = pos
					}
				}
			}
		}
		return true
	})
	delete(lo.inLS, fn)
	lo.locksets[fn] = ls
	return ls
}

// cycles finds strongly connected components of the edge graph and
// reports one finding per nontrivial SCC (and per direct self-edge).
func (lo *lockOrder) cycles() []Finding {
	// Stable node ordering for deterministic output.
	nodeSet := make(map[types.Object]bool)
	for key := range lo.edges {
		nodeSet[key[0]] = true
		nodeSet[key[1]] = true
	}
	nodes := make([]types.Object, 0, len(nodeSet))
	for o := range nodeSet {
		nodes = append(nodes, o)
	}
	sort.Slice(nodes, func(i, j int) bool { return objName(nodes[i]) < objName(nodes[j]) })
	index := make(map[types.Object]int, len(nodes))
	for i, o := range nodes {
		index[o] = i
	}
	succs := make([][]int, len(nodes))
	for key := range lo.edges {
		succs[index[key[0]]] = append(succs[index[key[0]]], index[key[1]])
	}
	for _, s := range succs {
		sort.Ints(s)
	}

	// Tarjan's SCC.
	const unvisited = -1
	idx := make([]int, len(nodes))
	low := make([]int, len(nodes))
	onStack := make([]bool, len(nodes))
	for i := range idx {
		idx[i] = unvisited
	}
	var stack []int
	var counter int
	var sccs [][]int
	var strongconnect func(v int)
	strongconnect = func(v int) {
		idx[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if idx[w] == unvisited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && idx[w] < low[v] {
				low[v] = idx[w]
			}
		}
		if low[v] == idx[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for v := range nodes {
		if idx[v] == unvisited {
			strongconnect(v)
		}
	}

	var fs []Finding
	for _, comp := range sccs {
		selfEdge := len(comp) == 1 && lo.edges[[2]types.Object{nodes[comp[0]], nodes[comp[0]]}] != nil
		if len(comp) < 2 && !selfEdge {
			continue
		}
		sort.Ints(comp)
		members := make(map[int]bool, len(comp))
		for _, v := range comp {
			members[v] = true
		}
		// Collect the component's internal edges, sorted by position for a
		// stable, readable witness list.
		var compEdges []*lockEdge
		for key, e := range lo.edges {
			if members[index[key[0]]] && members[index[key[1]]] {
				compEdges = append(compEdges, e)
			}
		}
		sort.Slice(compEdges, func(i, j int) bool {
			a, b := compEdges[i], compEdges[j]
			if a.pos.Filename != b.pos.Filename {
				return a.pos.Filename < b.pos.Filename
			}
			return a.pos.Offset < b.pos.Offset
		})
		var names []string
		for _, v := range comp {
			names = append(names, objName(nodes[v]))
		}
		var witness []string
		for _, e := range compEdges {
			w := fmt.Sprintf("%s->%s in %s at %s", objName(e.from), objName(e.to), e.fn, e.pos)
			if e.note != "" {
				w += " " + e.note
			}
			witness = append(witness, w)
		}
		first := compEdges[0]
		msg := fmt.Sprintf("lock-order cycle among {%s}: %s",
			strings.Join(names, ", "), strings.Join(witness, "; "))
		if selfEdge {
			msg = fmt.Sprintf("mutex %s acquired while an instance is already held: %s",
				objName(nodes[comp[0]]), strings.Join(witness, "; "))
		}
		fs = append(fs, Finding{Pos: first.pos, Check: "lockorder", Message: msg})
	}
	SortFindings(fs)
	return fs
}

// objName renders a mutex identity for messages: Type.field for field
// mutexes, plain name otherwise.
func objName(o types.Object) string {
	if v, ok := o.(*types.Var); ok && v.IsField() {
		// Walk the package scope for the struct type declaring this field.
		if v.Pkg() != nil {
			scope := v.Pkg().Scope()
			for _, tn := range scope.Names() {
				obj, ok := scope.Lookup(tn).(*types.TypeName)
				if !ok {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i) == v {
						return obj.Name() + "." + v.Name()
					}
				}
			}
		}
	}
	return o.Name()
}
