package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// SimClockCheck keeps the simulation and model packages wall-clock pure:
// the discrete-event simulator owns virtual time, and a stray time.Now or
// time.Sleep in a sim package silently couples simulated results to host
// scheduling (and makes tests slow and flaky). The JVM-tax model in
// internal/shuffle falls under the same rule: its delay must flow through
// an injectable sleeper so tests can run without wall-clock waits.
//
// Files implementing the clock abstraction itself — clock.go or
// *_clock.go — are exempt; anything else needs a //jbsvet:ignore with a
// reason.
type SimClockCheck struct{}

// Name implements Check.
func (*SimClockCheck) Name() string { return "simclock" }

// Doc implements Check.
func (*SimClockCheck) Doc() string {
	return "no direct wall-clock calls (time.Now/Sleep/After/...) in simulation or model packages"
}

// bannedTimeFuncs are the package-time functions that read or wait on the
// wall clock. Duration arithmetic (time.Second etc.) is fine.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"Since": true, "Until": true,
}

// Run implements Check.
func (c *SimClockCheck) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		base := filepath.Base(position(pkg, file.Pos()).Filename)
		if base == "clock.go" || strings.HasSuffix(base, "_clock.go") {
			continue
		}
		// Flag any reference to a banned function — calls and function
		// values alike — so `sleep := time.Sleep` cannot dodge the check.
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !bannedTimeFuncs[fn.Name()] {
				return true
			}
			out = append(out, Finding{
				Pos:   position(pkg, sel.Pos()),
				Check: "simclock",
				Message: fmt.Sprintf("direct time.%s in a simulation/model package; route it through the clock abstraction or an injected sleeper",
					fn.Name()),
			})
			return true
		})
	}
	return out
}
