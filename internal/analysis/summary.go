package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// This file implements the lightweight interprocedural summaries behind
// the path-sensitive checks (leaseflow, ledgerbalance): for each function
// we record what it does with lease-typed parameters — releases them,
// stores them somewhere that outlives the call (escape), or returns them
// — and whether it (transitively) drains a flow ledger. Summaries are
// existence-based, not path-sensitive: "somewhere in the body this
// parameter is released" is enough for a caller to treat the call as an
// ownership transfer. That is deliberately optimistic — the callee's own
// body is separately checked path-sensitively by leaseflow, so a callee
// that releases on only some paths is flagged at its own definition, not
// at every call site.

// paramEffect records what a function does with one lease parameter.
type paramEffect uint8

const (
	// effReleased: the parameter's Release method is called (directly or
	// via a transitively-summarized callee).
	effReleased paramEffect = 1 << iota
	// effEscaped: the parameter is stored into a field, map, slice,
	// channel, or composite literal, captured by a function literal, or
	// handed to a goroutine — somewhere that outlives the call.
	effEscaped
	// effReturned: the parameter is returned to the caller, which then
	// owns it under the docs/PERF.md contract.
	effReturned
)

// consumes reports whether the effect transfers ownership away from the
// caller: any of release, escape, or return discharges the caller's
// obligation.
func (e paramEffect) consumes() bool { return e != 0 }

// funcSummary is one function's interprocedural summary.
type funcSummary struct {
	// recv is the effect on the receiver, params[i] on the i-th
	// parameter. Only lease-typed positions carry effects.
	recv   paramEffect
	params []paramEffect
	// drainsLedger reports that the function (transitively) calls
	// (*flow.Ledger).Release — used by ledgerbalance to treat helper
	// calls like releaseCharge as a drain.
	drainsLedger bool
}

// effectOn returns the effect for argument index i of a call (not
// counting the receiver).
func (s *funcSummary) effectOn(i int) paramEffect {
	if s == nil || i < 0 || i >= len(s.params) {
		return 0
	}
	return s.params[i]
}

// summarizer memoizes function summaries across every package a Loader
// touches. It is created lazily on first use and shared by all checks
// running under one Loader, so a whole-repo scan summarizes each
// function at most once.
type summarizer struct {
	loader *Loader

	sums       map[*types.Func]*funcSummary
	inProgress map[*types.Func]bool

	// annotated records //jbsvet:owns annotations: the marked function or
	// interface method takes ownership of every lease-typed parameter.
	annotated  map[*types.Func]bool
	annScanned map[*Package]bool
}

// summaries returns the loader's shared summarizer.
func (l *Loader) summaries() *summarizer {
	if l.sum == nil {
		l.sum = &summarizer{
			loader:     l,
			sums:       make(map[*types.Func]*funcSummary),
			inProgress: make(map[*types.Func]bool),
			annotated:  make(map[*types.Func]bool),
			annScanned: make(map[*Package]bool),
		}
	}
	return l.sum
}

// isLeaseType reports whether t is one of the manually-managed lease
// types: *bufpool.Lease or *mof.FileHandle. Matching is by package-path
// suffix so golden fixtures loaded from testdata directories (whose
// import path is their absolute directory) still resolve the real types.
func isLeaseType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	switch obj.Name() {
	case "Lease":
		return strings.HasSuffix(path, "internal/bufpool")
	case "FileHandle":
		return strings.HasSuffix(path, "internal/mof")
	}
	return false
}

// isLedgerType reports whether t is *flow.Ledger.
func isLedgerType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ledger" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/flow")
}

// staticCallee resolves the *types.Func a call statically dispatches to,
// or nil for calls through function values, builtins, and conversions.
// Generic instantiations resolve to their origin.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// summaryFor computes (memoized) the summary of fn. ctx is the package
// whose Info produced fn; its own files are searched for the declaration
// before falling back to the loader's package table. Functions without a
// findable body (interface methods, stdlib, function values) summarize
// as no-effect unless annotated with //jbsvet:owns.
func (s *summarizer) summaryFor(fn *types.Func, ctx *Package) *funcSummary {
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if sum, ok := s.sums[fn]; ok {
		return sum
	}
	if s.inProgress[fn] {
		return nil // recursion: assume no effects on this path
	}

	if sum := builtinSummary(fn); sum != nil {
		s.sums[fn] = sum
		return sum
	}
	if s.isAnnotated(fn, ctx) {
		sum := annotatedSummary(fn)
		s.sums[fn] = sum
		return sum
	}

	decl, declPkg := s.decl(fn, ctx)
	if decl == nil || decl.Body == nil {
		s.sums[fn] = nil
		return nil
	}

	s.inProgress[fn] = true
	sum := s.computeSummary(fn, decl, declPkg)
	delete(s.inProgress, fn)
	s.sums[fn] = sum
	return sum
}

// builtinSummary hardcodes the ownership primitives the rest of the
// analysis is defined in terms of: the Release methods themselves.
func builtinSummary(fn *types.Func) *funcSummary {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	switch {
	case fn.Name() == "Release" && isLeaseType(recv.Type()):
		return &funcSummary{recv: effReleased}
	case fn.Name() == "Release" && isLedgerType(recv.Type()):
		return &funcSummary{drainsLedger: true}
	}
	return nil
}

// annotatedSummary builds the summary implied by //jbsvet:owns: every
// lease-typed parameter (and receiver) escapes into the callee.
func annotatedSummary(fn *types.Func) *funcSummary {
	sig := fn.Type().(*types.Signature)
	sum := &funcSummary{params: make([]paramEffect, sig.Params().Len())}
	if r := sig.Recv(); r != nil && isLeaseType(r.Type()) {
		sum.recv = effEscaped
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isLeaseType(sig.Params().At(i).Type()) {
			sum.params[i] = effEscaped
		}
	}
	return sum
}

// isAnnotated reports whether fn carries a //jbsvet:owns annotation in
// its declaring package (function doc comment or interface method
// comment).
func (s *summarizer) isAnnotated(fn *types.Func, ctx *Package) bool {
	if s.annotated[fn] {
		return true
	}
	// Scan the context package and the declaring package once each.
	s.scanAnnotations(ctx)
	if s.annotated[fn] {
		return true
	}
	if p := s.packageFor(fn); p != nil {
		s.scanAnnotations(p)
	}
	return s.annotated[fn]
}

const ownsMarker = "jbsvet:owns"

// scanAnnotations records every //jbsvet:owns-marked function and
// interface method in pkg (memoized per package).
func (s *summarizer) scanAnnotations(pkg *Package) {
	if pkg == nil || s.annScanned[pkg] {
		return
	}
	s.annScanned[pkg] = true
	hasMarker := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if strings.Contains(c.Text, ownsMarker) {
					return true
				}
			}
		}
		return false
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if hasMarker(d.Doc) {
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						s.annotated[fn.Origin()] = true
					}
				}
				return false // function bodies hold no annotations
			case *ast.InterfaceType:
				for _, field := range d.Methods.List {
					if !hasMarker(field.Doc, field.Comment) {
						continue
					}
					for _, name := range field.Names {
						if fn, ok := pkg.Info.Defs[name].(*types.Func); ok {
							s.annotated[fn.Origin()] = true
						}
					}
				}
			}
			return true
		})
	}
}

// packageFor resolves the loaded *Package declaring fn, or nil when it
// lives outside the module (stdlib).
func (s *summarizer) packageFor(fn *types.Func) *Package {
	if fn.Pkg() == nil || s.loader == nil {
		return nil
	}
	path := fn.Pkg().Path()
	l := s.loader
	var dir string
	switch {
	case path == l.Module:
		dir = l.Root
	case strings.HasPrefix(path, l.Module+"/"):
		dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
	case filepath.IsAbs(path): // fixture packages outside the module
		dir = path
	default:
		return nil
	}
	pkg, err := l.Load(dir)
	if err != nil {
		return nil
	}
	return pkg
}

// decl finds fn's declaration. The context package's own files are
// checked first: test units re-parse base files into fresh ASTs, so a
// function object from a test unit's Info only matches positions in
// that unit. The shared FileSet makes Pos comparison valid across every
// package one Loader touches.
func (s *summarizer) decl(fn *types.Func, ctx *Package) (*ast.FuncDecl, *Package) {
	find := func(p *Package) *ast.FuncDecl {
		if p == nil {
			return nil
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
					return fd
				}
			}
		}
		return nil
	}
	if fd := find(ctx); fd != nil {
		return fd, ctx
	}
	p := s.packageFor(fn)
	if fd := find(p); fd != nil {
		return fd, p
	}
	return nil, nil
}

// computeSummary walks fn's body once, recording effects on each
// lease-typed parameter and whether a ledger is drained.
func (s *summarizer) computeSummary(fn *types.Func, decl *ast.FuncDecl, pkg *Package) *funcSummary {
	sig := fn.Type().(*types.Signature)
	sum := &funcSummary{params: make([]paramEffect, sig.Params().Len())}

	// tracked maps each lease-typed parameter object to a setter for its
	// effect bits.
	tracked := make(map[types.Object]*paramEffect)
	if r := sig.Recv(); r != nil && isLeaseType(r.Type()) {
		tracked[r] = &sum.recv
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isLeaseType(p.Type()) {
			tracked[p] = &sum.params[i]
		}
	}

	info := pkg.Info
	// paramOf resolves an expression to a tracked parameter, seeing
	// through parens.
	paramOf := func(e ast.Expr) *paramEffect {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if eff, ok := tracked[info.Uses[id]]; ok {
			return eff
		}
		return nil
	}
	// mentionsParam reports whether any tracked parameter appears under e.
	mentionsParam := func(e ast.Expr) *paramEffect {
		var found *paramEffect
		ast.Inspect(e, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if eff, ok := tracked[info.Uses[id]]; ok {
					found = eff
				}
			}
			return true
		})
		return found
	}

	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.CallExpr:
			callee := staticCallee(info, nd)
			if callee != nil {
				csum := s.summaryFor(callee, pkg)
				if csum != nil && csum.drainsLedger {
					sum.drainsLedger = true
				}
				// Receiver effect: v.Release() and friends.
				if sel, ok := ast.Unparen(nd.Fun).(*ast.SelectorExpr); ok {
					if eff := paramOf(sel.X); eff != nil && csum != nil && csum.recv.consumes() {
						*eff |= csum.recv
					}
				}
				for i, arg := range nd.Args {
					if eff := paramOf(arg); eff != nil && csum.effectOn(i).consumes() {
						*eff |= csum.effectOn(i)
					}
				}
			} else if id, ok := ast.Unparen(nd.Fun).(*ast.Ident); ok && id.Name == "append" {
				// append(s, v): the element is stored into the slice.
				for _, arg := range nd.Args[1:] {
					if eff := paramOf(arg); eff != nil {
						*eff |= effEscaped
					}
				}
			}
			// Direct ledger drain without a resolvable callee summary is
			// covered by builtinSummary via staticCallee; nothing more here.
		case *ast.ReturnStmt:
			for _, res := range nd.Results {
				if eff := paramOf(res); eff != nil {
					*eff |= effReturned
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range nd.Lhs {
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					// Storing into a field, map, or slice element. Match
					// positionally when possible, else any RHS mention.
					if i < len(nd.Rhs) {
						if eff := mentionsParam(nd.Rhs[i]); eff != nil {
							*eff |= effEscaped
						}
					} else if len(nd.Rhs) == 1 {
						if eff := mentionsParam(nd.Rhs[0]); eff != nil {
							*eff |= effEscaped
						}
					}
				}
			}
		case *ast.SendStmt:
			if eff := mentionsParam(nd.Value); eff != nil {
				*eff |= effEscaped
			}
		case *ast.CompositeLit:
			for _, el := range nd.Elts {
				if eff := mentionsParam(el); eff != nil {
					*eff |= effEscaped
				}
			}
		case *ast.GoStmt:
			for _, arg := range nd.Call.Args {
				if eff := paramOf(arg); eff != nil {
					*eff |= effEscaped
				}
			}
			// The spawned callee and captured params are handled by the
			// FuncLit case below when the call target is a literal.
		case *ast.FuncLit:
			// A parameter captured by a literal escapes: the literal may
			// run later (defer, goroutine, stored callback).
			ast.Inspect(nd.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if eff, ok := tracked[info.Uses[id]]; ok {
						*eff |= effEscaped
					}
				}
				return true
			})
			return false // don't double-visit the body
		}
		return true
	}
	ast.Inspect(decl.Body, inspect)
	return sum
}
