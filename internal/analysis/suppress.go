package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//jbsvet:ignore <check> <reason>
//
// The directive silences findings of <check> ("all" silences every check)
// on its own line and on the line directly below it, so it works both as a
// trailing comment and as a comment above the flagged statement. A reason
// is mandatory; directives without one are reported as findings so
// suppressions stay auditable.
const ignorePrefix = "//jbsvet:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	check string
	file  string
	line  int
}

// ApplySuppressions filters findings through the package's
// //jbsvet:ignore directives. It returns the surviving findings and, as a
// second slice, findings for malformed directives (missing check name or
// reason).
func ApplySuppressions(pkg *Package, findings []Finding) (kept, malformed []Finding) {
	var sups []suppression
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Pos:     pos,
						Check:   "suppress",
						Message: "malformed //jbsvet:ignore: need \"//jbsvet:ignore <check> <reason>\"",
					})
					continue
				}
				sups = append(sups, suppression{check: fields[0], file: pos.Filename, line: pos.Line})
			}
		}
	}
	for _, f := range findings {
		if suppressed(f, sups) {
			continue
		}
		kept = append(kept, f)
	}
	return kept, malformed
}

func suppressed(f Finding, sups []suppression) bool {
	for _, s := range sups {
		if s.file != f.Pos.Filename {
			continue
		}
		if s.check != f.Check && s.check != "all" {
			continue
		}
		if s.line == f.Pos.Line || s.line == f.Pos.Line-1 {
			return true
		}
	}
	return false
}

// position is a small helper for checks.
func position(pkg *Package, pos token.Pos) token.Position {
	return pkg.Fset.Position(pos)
}
