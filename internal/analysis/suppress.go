package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//jbsvet:ignore <check> <reason>
//
// The directive silences findings of <check> ("all" silences every check)
// on its own line and on the line directly below it, so it works both as a
// trailing comment and as a comment above the flagged statement. A reason
// is mandatory; directives without one are reported as findings so
// suppressions stay auditable.
const ignorePrefix = "//jbsvet:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	check string
	file  string
	line  int
}

// suppressionEntry is one directive tracked by a suppressionTable, with
// enough state to audit staleness: whether the named check ever ran over
// the directive's file, and whether the directive suppressed anything.
type suppressionEntry struct {
	suppression
	pos token.Position
	// applicable: the named check (or, for "all", any check) ran over
	// this file's package during the scan, so "suppressed nothing" is
	// meaningful.
	applicable bool
	// used: at least one finding was silenced by this directive.
	used bool
}

// suppressionTable collects every directive seen during one Runner scan.
// Base source files are parsed twice when a package has in-package tests
// (once for the base unit, once merged); entries are deduplicated by
// file, line, and check so usage accumulates across both passes.
type suppressionTable struct {
	entries map[string]*suppressionEntry // "file:line:check"
	order   []*suppressionEntry
	// malformed directives, deduplicated by position.
	malformed     []Finding
	malformedSeen map[string]bool
	collected     map[*Package]bool
}

func newSuppressionTable() *suppressionTable {
	return &suppressionTable{
		entries:       make(map[string]*suppressionEntry),
		malformedSeen: make(map[string]bool),
		collected:     make(map[*Package]bool),
	}
}

// collect parses pkg's //jbsvet:ignore directives into the table.
func (t *suppressionTable) collect(pkg *Package) {
	if t.collected[pkg] {
		return
	}
	t.collected[pkg] = true
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					if !t.malformedSeen[key] {
						t.malformedSeen[key] = true
						t.malformed = append(t.malformed, Finding{
							Pos:     pos,
							Check:   "suppress",
							Message: "malformed //jbsvet:ignore: need \"//jbsvet:ignore <check> <reason>\"",
						})
					}
					continue
				}
				key := fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, fields[0])
				if _, ok := t.entries[key]; ok {
					continue
				}
				e := &suppressionEntry{
					suppression: suppression{check: fields[0], file: pos.Filename, line: pos.Line},
					pos:         pos,
				}
				t.entries[key] = e
				t.order = append(t.order, e)
			}
		}
	}
}

// markRan records that the named checks ran over pkg's files, making
// their directives auditable.
func (t *suppressionTable) markRan(pkg *Package, checks []string) {
	if len(checks) == 0 {
		return
	}
	ran := make(map[string]bool, len(checks))
	for _, c := range checks {
		ran[c] = true
	}
	files := make(map[string]bool, len(pkg.Files))
	for _, f := range pkg.Files {
		files[pkg.Fset.Position(f.Pos()).Filename] = true
	}
	for _, e := range t.order {
		if !files[e.file] {
			continue
		}
		if e.check == "all" || ran[e.check] {
			e.applicable = true
		}
	}
}

// filter drops findings silenced by a collected directive, marking the
// directives used.
func (t *suppressionTable) filter(findings []Finding) []Finding {
	var kept []Finding
	for _, f := range findings {
		if t.suppressFinding(f) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

func (t *suppressionTable) suppressFinding(f Finding) bool {
	hit := false
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, check := range []string{f.Check, "all"} {
			key := fmt.Sprintf("%s:%d:%s", f.Pos.Filename, line, check)
			if e, ok := t.entries[key]; ok {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale reports directives whose check ran over their file yet silenced
// nothing — the code they excused has moved or been fixed, and the
// suppression now only hides future regressions.
func (t *suppressionTable) stale() []Finding {
	var fs []Finding
	for _, e := range t.order {
		if e.applicable && !e.used {
			fs = append(fs, Finding{
				Pos:   e.pos,
				Check: "staleignore",
				Message: fmt.Sprintf(
					"//jbsvet:ignore %s suppresses nothing: the %s check ran over this file and found no finding here; delete the directive",
					e.check, e.check),
			})
		}
	}
	return fs
}

// ApplySuppressions filters findings through the package's
// //jbsvet:ignore directives. It returns the surviving findings and, as a
// second slice, findings for malformed directives (missing check name or
// reason). The Runner uses a shared suppressionTable across packages;
// this standalone form is for single-package use (tests, external
// tooling).
func ApplySuppressions(pkg *Package, findings []Finding) (kept, malformed []Finding) {
	t := newSuppressionTable()
	t.collect(pkg)
	kept = t.filter(findings)
	return kept, t.malformed
}

// position is a small helper for checks.
func position(pkg *Package, pos token.Pos) token.Position {
	return pkg.Fset.Position(pos)
}
