// docbad does things, but its doc comment skips the godoc convention.
package docbad // want "should start"

var A = 1
