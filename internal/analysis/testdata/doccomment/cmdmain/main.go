// Runs things; a main package's doc must start "Command <name>".
package main // want "should start"

func main() {}
