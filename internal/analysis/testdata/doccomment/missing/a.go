package docmissing // want "no package doc comment"

// A file-level comment on a declaration is not a package doc.
var A = 1
