package docmissing

// B has a doc comment of its own; the package still has none. The finding
// must anchor on the first file (a.go), not here.
var B = 2
