// Package errfix is a golden-file fixture for the errcheck check.
package errfix

import "bufio"

type closer struct{}

func (closer) Close() error                { return nil }
func (closer) Flush() error                { return nil }
func (closer) Write(p []byte) (int, error) { return len(p), nil }

// quiet's Close returns nothing, so there is no error to drop.
type quiet struct{}

func (quiet) Close() {}

func bad(c closer, p []byte) {
	c.Close()  // want "result of c.Close"
	c.Flush()  // want "result of c.Flush"
	c.Write(p) // want "result of c.Write"
}

func good(c closer, q quiet, p []byte) error {
	_ = c.Close()
	if err := c.Flush(); err != nil {
		return err
	}
	q.Close()       // no error result: nothing to check
	defer c.Close() // deferred read-side close is accepted idiom
	_, err := c.Write(p)
	return err
}

// buffered exercises the bufio.Writer exemption: Write's error is sticky
// and recovered at the (checked) Flush.
func buffered(bw *bufio.Writer, p []byte) error {
	bw.Write(p)
	return bw.Flush()
}
