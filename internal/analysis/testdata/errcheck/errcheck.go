// Package errfix is a golden-file fixture for the errcheck check.
package errfix

import (
	"bufio"
	"os"
)

type closer struct{}

func (closer) Close() error                { return nil }
func (closer) Flush() error                { return nil }
func (closer) Write(p []byte) (int, error) { return len(p), nil }

// quiet's Close returns nothing, so there is no error to drop.
type quiet struct{}

func (quiet) Close() {}

func bad(c closer, p []byte) {
	c.Close()           // want "result of c.Close"
	c.Flush()           // want "result of c.Flush"
	c.Write(p)          // want "result of c.Write"
	os.RemoveAll("dir") // want "result of os.RemoveAll"
}

func good(c closer, q quiet, p []byte) error {
	_ = c.Close()
	if err := c.Flush(); err != nil {
		return err
	}
	q.Close()                 // no error result: nothing to check
	defer c.Close()           // deferred read-side close is accepted idiom
	_ = os.RemoveAll("dir")   // explicit discard on a tolerant cleanup
	defer os.RemoveAll("dir") // deferred cleanup is accepted idiom
	if err := os.RemoveAll("dir"); err != nil {
		return err
	}
	_, err := c.Write(p)
	return err
}

// removeAller exercises the qualification guard: a method named
// RemoveAll outside package os is not on the must-check list.
type removeAller struct{}

func (removeAller) RemoveAll(string) error { return nil }

func notOS(r removeAller) {
	r.RemoveAll("dir") // methods named RemoveAll are not os.RemoveAll
}

// buffered exercises the bufio.Writer exemption: Write's error is sticky
// and recovered at the (checked) Flush.
func buffered(bw *bufio.Writer, p []byte) error {
	bw.Write(p)
	return bw.Flush()
}
