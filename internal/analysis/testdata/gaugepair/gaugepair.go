// Package gaugepair is the golden fixture for the gaugepair check: a
// plain int field and its *metrics.Gauge partner (x / xG) must move
// together within one function.
package gaugepair

import "repro/internal/metrics"

var demoGauge = metrics.Default().Gauge("fixture_gauge", "reqs", "fixture")

// group pairs inflight with inflightG, mirroring NetMerger's nodeGroup.
type group struct {
	addr      string
	inflight  int
	inflightG *metrics.Gauge
}

// acquire co-updates: the blessed single-helper shape.
func (g *group) acquire() {
	g.inflight++
	g.inflightG.Add(1)
}

// release co-updates with a plain arithmetic assignment.
func (g *group) release(n int) {
	g.inflight -= n
	g.inflightG.Add(int64(-n))
}

// reset co-updates via plain assignment and Set.
func (g *group) reset() {
	g.inflight = 0
	g.inflightG.Set(0)
}

// guarded still counts: the mirror moves in the same function even
// though the gauge is nil-checked.
func (g *group) guarded() {
	g.inflight++
	if g.inflightG != nil {
		g.inflightG.Add(1)
	}
}

// peek only reads; reads need no mirror.
func (g *group) peek(limit int) bool {
	return g.inflight >= limit && g.inflightG.Load() >= 0
}

// install assigns the gauge pointer itself — initialization, exempt.
func (g *group) install(gauge *metrics.Gauge) {
	g.inflightG = gauge
}

// leak bumps the counter and forgets the gauge.
func (g *group) leak() {
	g.inflight++ // want "g.inflight changes without its mirror gauge"
}

// drift decrements through a new code path without the mirror.
func (g *group) drift(n int) {
	g.inflight -= n // want "g.inflight changes without its mirror gauge"
}

// mirrorOnly moves the gauge and forgets the counter.
func (g *group) mirrorOnly() {
	g.inflightG.Add(1) // want "g.inflightG moves without its paired counter"
}

// crossed updates different instances: base expressions must match.
func crossed(a, b *group) {
	a.inflight++       // want "a.inflight changes without its mirror gauge"
	b.inflightG.Add(1) // want "b.inflightG moves without its paired counter"
}

// closureLeak: a nested function literal is its own scope — the
// literal's counter bump is not excused by the outer gauge update.
func (g *group) closureLeak() func() {
	g.inflight++
	g.inflightG.Add(1)
	return func() {
		g.inflight-- // want "g.inflight changes without its mirror gauge"
	}
}

// window mirrors flow.Window: size/sizeG with a clamping helper.
type window struct {
	size  int
	acc   int // unpaired: no accG partner
	sizeG *metrics.Gauge
}

// setSize is the pair's single helper.
func (w *window) setSize(n int) {
	w.size = n
	if w.sizeG != nil {
		w.sizeG.Set(int64(n))
	}
}

// grow goes through the helper and touches only unpaired fields
// directly.
func (w *window) grow() {
	w.acc++
	w.setSize(w.size + 1)
}

// unpaired has no xG partner for count, and its gauge has no plain
// partner named "depth"; neither side is checked.
type unpaired struct {
	count  int
	depthG *metrics.Gauge
}

func (u *unpaired) bump() {
	u.count++
	u.depthG.Add(1)
	demoGauge.Add(1)
}
