// Package generics exercises the CFG builder and summarizer on language
// features that historically panic naive AST analyses: generic
// functions and types (instantiated *types.Func objects must resolve to
// their Origin declaration), method values, and generic receivers with
// mutexes. Everything here must analyze clean under all three
// path-sensitive checks.
package generics

import (
	"sync"

	"repro/internal/bufpool"
)

// apply consumes its lease via defer; callers transfer ownership. The
// summarizer must resolve the instantiated apply[int] back to this
// declaration.
func apply[T any](l *bufpool.Lease, f func(*bufpool.Lease) T) T {
	defer l.Release()
	return f(l)
}

func useGenericConsumer(p *bufpool.Pool) int {
	l := p.Get(8)
	return apply(l, func(x *bufpool.Lease) int { return x.Len() })
}

// box is a generic type with a field mutex; lockorder must identify the
// field through the instantiated selection.
type box[T any] struct {
	mu sync.Mutex
	v  T
}

func (b *box[T]) get() T {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

func useBox(b *box[string]) string {
	return b.get()
}

// counter exists to take a method value: the CFG and the checks must
// treat `c.inc` (no call) without panicking.
type counter struct{ n int }

func (c *counter) inc() { c.n++ }

func methodValue() func() {
	c := &counter{}
	f := c.inc
	return f
}

// releaseVia takes the release through a method value bound to the
// lease, then calls it on every path — the checks must at least not
// crash on the SelectorExpr-without-call shape. The explicit call keeps
// the function genuinely clean.
func releaseVia(p *bufpool.Pool, cond bool) {
	l := p.Get(8)
	rel := l.Release
	if cond {
		rel()
		return
	}
	rel()
}
