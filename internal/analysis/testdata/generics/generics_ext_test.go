package generics_test

import (
	"testing"

	"repro/internal/bufpool"
)

// wrap is a generic declared inside the external test unit itself.
func wrap[T any](v T) []T { return []T{v} }

// TestMethodValueExternal binds a lease's Release as a method value —
// ownership transfers to the closure, which the defer invokes.
func TestMethodValueExternal(t *testing.T) {
	p := bufpool.New()
	l := p.Get(2)
	rel := l.Release
	defer rel()
	if got := wrap(l.Len()); len(got) != 1 {
		t.Fatal(got)
	}
}
