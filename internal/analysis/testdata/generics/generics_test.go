package generics

import (
	"testing"

	"repro/internal/bufpool"
)

// The in-package test unit re-parses the base files merged with this one;
// the checks must still resolve apply's Origin and analyze clean.
func TestGenericLease(t *testing.T) {
	p := bufpool.New()
	n := apply(p.Get(4), func(l *bufpool.Lease) int { return l.Cap() })
	if n < 4 {
		t.Fatal(n)
	}
}
