// Package gofix is a golden-file fixture for the goroutines check.
package gofix

import (
	"context"
	"sync"
)

type W struct {
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
}

func process(int) {}

// FireAndForget spins forever with no shutdown path.
func (w *W) FireAndForget() {
	go func() { // want "fire-and-forget goroutine"
		for {
			process(0)
		}
	}()
}

// Joined is collectable through the WaitGroup.
func (w *W) Joined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		process(1)
	}()
}

// Stoppable observes the done channel.
func (w *W) Stoppable() {
	go func() {
		for {
			select {
			case v := <-w.work:
				process(v)
			case <-w.done:
				return
			}
		}
	}()
}

// Cancellable observes a context.
func (w *W) Cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// RangeWorker terminates when the producer closes the feed channel.
func (w *W) RangeWorker() {
	go func() {
		for v := range w.work {
			process(v)
		}
	}()
}

// StartLoop launches a named method; the body is resolved in-package and
// its select on the done channel counts as the shutdown path.
func (w *W) StartLoop() {
	go w.loop()
}

func (w *W) loop() {
	for {
		select {
		case <-w.done:
			return
		case v := <-w.work:
			process(v)
		}
	}
}

// External launches a function value whose body is invisible here, so the
// lifecycle cannot be proven.
func (w *W) External(f func()) {
	go f() // want "shutdown path cannot be proven"
}
