// Package leaseflow is the golden fixture for the leaseflow check. Each
// `// want "substr"` comment marks a line where a finding must land;
// functions without want comments must analyze clean.
package leaseflow

import (
	"repro/internal/bufpool"
	"repro/internal/mof"
)

// holder stores a lease; assigning into it transfers ownership.
type holder struct {
	l *bufpool.Lease
}

// ---- clean cases ----

func cleanStraightLine(p *bufpool.Pool) int {
	l := p.Get(64)
	n := l.Len()
	l.Release()
	return n
}

// cleanEarlyError is the tcp.RecvBuf shape: release before the error
// return, transfer by returning on success.
func cleanEarlyError(p *bufpool.Pool, read func([]byte) error) (*bufpool.Lease, error) {
	l := p.Get(128)
	if err := read(l.Bytes()); err != nil {
		l.Release()
		return nil, err
	}
	return l, nil
}

// cleanErrConvention relies on nil-on-error: no obligation on the
// err != nil branch.
func cleanErrConvention(c *mof.FileCache) error {
	h, err := c.Acquire("seg")
	if err != nil {
		return err
	}
	defer h.Release()
	return nil
}

func cleanDefer(p *bufpool.Pool) int {
	l := p.Get(8)
	defer l.Release()
	return l.Len()
}

func cleanLoop(p *bufpool.Pool, n int) {
	for i := 0; i < n; i++ {
		l := p.Get(16)
		l.Release()
	}
}

func cleanReturnTransfer(p *bufpool.Pool) *bufpool.Lease {
	return p.Get(8)
}

func cleanStoreField(p *bufpool.Pool, h *holder) {
	h.l = p.Get(8)
}

func cleanCompositeLit(p *bufpool.Pool) holder {
	l := p.Get(8)
	return holder{l: l}
}

func cleanAppend(p *bufpool.Pool, ls []*bufpool.Lease) []*bufpool.Lease {
	l := p.Get(8)
	return append(ls, l)
}

func cleanSend(p *bufpool.Pool, ch chan *bufpool.Lease) {
	l := p.Get(8)
	ch <- l
}

func cleanGoHandoff(p *bufpool.Pool) {
	l := p.Get(8)
	go func() {
		l.Release()
	}()
}

func cleanGrowRebind(p *bufpool.Pool) {
	l := p.Get(8)
	l = p.Grow(l, 64)
	l.Release()
}

// consume releases its argument, so callers transfer ownership to it —
// discovered interprocedurally from the body, no annotation needed.
func consume(l *bufpool.Lease) {
	l.Release()
}

func cleanHelperTransfer(p *bufpool.Pool) {
	l := p.Get(8)
	consume(l)
}

// sink takes ownership by contract (the real-world analogue registers
// the lease with an external lifetime manager).
//
//jbsvet:owns
func sink(l *bufpool.Lease) {
	_ = l
}

func cleanAnnotatedTransfer(p *bufpool.Pool) {
	sink(p.Get(8))
}

// ---- violating cases ----

// peek borrows: returning l.Len() does not discharge the caller.
func peek(l *bufpool.Lease) int {
	return l.Len()
}

// leakBelowEarlyReturn acquires after a prior branch: the solver must
// propagate through blocks whose first-frontier state is empty (the
// shape of transport's RecvBuf, which begins with a header read).
func leakBelowEarlyReturn(p *bufpool.Pool, ready func() error, read func([]byte) error) (*bufpool.Lease, error) {
	if err := ready(); err != nil {
		return nil, err
	}
	l := p.Get(64) // want "may not be released or ownership-transferred on every path"
	if err := read(l.Bytes()); err != nil {
		return nil, err
	}
	return l, nil
}

// cleanBelowEarlyReturn is the same shape with the release in place.
func cleanBelowEarlyReturn(p *bufpool.Pool, ready func() error, read func([]byte) error) (*bufpool.Lease, error) {
	if err := ready(); err != nil {
		return nil, err
	}
	l := p.Get(64)
	if err := read(l.Bytes()); err != nil {
		l.Release()
		return nil, err
	}
	return l, nil
}

func leakOnEarlyReturn(p *bufpool.Pool, read func([]byte) error) (*bufpool.Lease, error) {
	l := p.Get(128) // want "may not be released or ownership-transferred on every path"
	if err := read(l.Bytes()); err != nil {
		return nil, err
	}
	return l, nil
}

func leakAfterErrCheck(c *mof.FileCache) (string, error) {
	h, err := c.Acquire("seg") // want "may not be released or ownership-transferred on every path"
	if err != nil {
		return "", err
	}
	return h.File().Name(), nil
}

func leakDiscardedResult(p *bufpool.Pool) {
	p.Get(32) // want "result of Get is discarded"
}

func leakBlankAssign(c *mof.FileCache) error {
	_, err := c.Acquire("x") // want "assigned to _ and never released"
	return err
}

func leakThroughBorrow(p *bufpool.Pool) int {
	l := p.Get(8) // want "may not be released or ownership-transferred on every path"
	return peek(l)
}

func leakAdopt(p *bufpool.Pool, buf []byte) {
	l := p.Adopt(buf) // want "may not be released or ownership-transferred on every path"
	_ = l
}

func leakDeferInLoop(p *bufpool.Pool, names []string) {
	for range names {
		l := p.Get(16)
		defer l.Release() // want "deferred release inside loop runs at function exit"
	}
}

func leakInLiteral(p *bufpool.Pool) func() {
	return func() {
		l := p.Get(8) // want "may not be released or ownership-transferred on every path"
		_ = l
	}
}
