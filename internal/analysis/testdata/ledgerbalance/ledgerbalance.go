// Package ledgerbalance is the golden fixture for the ledgerbalance
// check. Each `// want "substr"` comment marks a line where a finding
// must land; functions without want comments must analyze clean.
package ledgerbalance

import (
	"errors"

	"repro/internal/flow"
)

var errShed = errors.New("shed")

// pending records an admitted charge for a later asymmetric drain (the
// supplier's resolved.charge convention).
type pending struct {
	charge int64
}

// ---- clean cases ----

// cleanSymmetric is the canonical supplier shape: Shed charges nothing,
// every admitted path drains.
func cleanSymmetric(l *flow.Ledger, n int64, send func() error) error {
	if l.Admit(n) == flow.Shed {
		return errShed
	}
	err := send()
	l.Release(n)
	return err
}

// cleanDecisionVar binds the decision before comparing it.
func cleanDecisionVar(l *flow.Ledger, n int64) bool {
	d := l.Admit(n)
	if d == flow.Shed {
		return false
	}
	l.Release(n)
	return true
}

// cleanNeqForm drains inside the admitted branch.
func cleanNeqForm(l *flow.Ledger, n int64) {
	if l.Admit(n) != flow.Shed {
		l.Release(n)
	}
}

// cleanChargeStore records the charge into a *charge* field for a later
// drain elsewhere.
func cleanChargeStore(l *flow.Ledger, n int64, p *pending) bool {
	if l.Admit(n) == flow.Shed {
		return false
	}
	p.charge = n
	return true
}

// finish drains a ledger; callers inherit the drain through its summary.
func finish(l *flow.Ledger, n int64) {
	l.Release(n)
}

func cleanHelperDrain(l *flow.Ledger, n int64) {
	if l.Admit(n) == flow.Shed {
		return
	}
	finish(l, n)
}

// ---- violating cases ----

func leakOnErrorPath(l *flow.Ledger, n int64, send func() error) error {
	if l.Admit(n) == flow.Shed { // want "ledger charge from Admit may not be drained"
		return errShed
	}
	if err := send(); err != nil {
		return err
	}
	l.Release(n)
	return nil
}

// leakBelowEarlyReturn admits after a prior branch: charges acquired
// past an empty first frontier must still reach the exit.
func leakBelowEarlyReturn(l *flow.Ledger, n int64, ok bool) error {
	if !ok {
		return errShed
	}
	if l.Admit(n) == flow.Shed { // want "ledger charge from Admit may not be drained"
		return errShed
	}
	return nil
}

// cleanBelowEarlyReturn is the same shape with the drain in place.
func cleanBelowEarlyReturn(l *flow.Ledger, n int64, ok bool) error {
	if !ok {
		return errShed
	}
	if l.Admit(n) == flow.Shed {
		return errShed
	}
	l.Release(n)
	return nil
}

func leakIgnoredDecision(l *flow.Ledger, n int64) {
	l.Admit(n) // want "ledger charge from Admit may not be drained"
}

func leakOneBranch(l *flow.Ledger, n int64, fast bool) {
	d := l.Admit(n) // want "ledger charge from Admit may not be drained"
	if d == flow.Shed {
		return
	}
	if fast {
		l.Release(n)
	}
}
