// Package lockfix is a golden-file fixture for the lockhygiene check.
// Lines annotated `// want "substr"` must produce a finding whose message
// contains substr; unannotated lines must stay silent.
package lockfix

import (
	"net"
	"sync"
	"time"
)

type S struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	sendMu sync.Mutex
	ch     chan int
	conn   net.Conn
}

var sink int

// LeakLock acquires and never releases.
func (s *S) LeakLock() {
	s.mu.Lock() // want "no matching Unlock"
	sink++
}

// LeakRLock acquires a read lock and never releases.
func (s *S) LeakRLock() {
	s.rw.RLock() // want "no matching RUnlock"
	sink = len(s.ch)
}

// DeferPair is the canonical safe pattern.
func (s *S) DeferPair() {
	s.mu.Lock()
	defer s.mu.Unlock()
	sink++
}

// ExplicitPair releases on every path before returning.
func (s *S) ExplicitPair() int {
	s.mu.Lock()
	if s.ch == nil {
		s.mu.Unlock()
		return 0
	}
	n := len(s.ch)
	s.mu.Unlock()
	return n
}

// ReturnLocked leaks the lock out of one return path.
func (s *S) ReturnLocked() int {
	s.mu.Lock()
	if s.ch == nil {
		return 0 // want "return while s.mu is locked"
	}
	s.mu.Unlock()
	return 1
}

// BlockingWhileLocked performs channel operations and sleeps under a state
// mutex.
func (s *S) BlockingWhileLocked(v int) {
	s.mu.Lock()
	s.ch <- v                    // want "channel send while s.mu is held"
	<-s.ch                       // want "channel receive while s.mu is held"
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

// NetWhileLocked does socket I/O under a state mutex.
func (s *S) NetWhileLocked(buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(buf) // want "potential network I/O"
	return err
}

// WaitWhileLocked joins a WaitGroup under a state mutex.
func (s *S) WaitWhileLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while s.mu is held"
}

// SelectWhileLocked blocks in select under a state mutex.
func (s *S) SelectWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "blocking select while s.mu is held"
	case v := <-s.ch:
		sink = v
	}
}

// SelectDefault never blocks: a default clause makes the select a poll.
func (s *S) SelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		sink = v
	default:
	}
}

// RangeWhileLocked drains a channel under a state mutex.
func (s *S) RangeWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want "range over channel while s.mu is held"
		sink = v
	}
}

// SendSerialized holds a dedicated I/O-serialization mutex across a write —
// the repo convention (names containing send/recv/read/write/io) exempts it
// from the blocking rules, though balance is still enforced.
func (s *S) SendSerialized(buf []byte) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	_, err := s.conn.Write(buf)
	return err
}

// BranchAware releases on the terminating branch; the blocking send there
// happens after the unlock and must not be flagged.
func (s *S) BranchAware(v int) {
	s.mu.Lock()
	if v == 0 {
		s.mu.Unlock()
		s.ch <- v
		return
	}
	s.mu.Unlock()
}
