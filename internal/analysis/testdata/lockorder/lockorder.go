// Package lockorder is the golden fixture for the lockorder check: a
// three-mutex acquisition cycle split across three locally-well-formed
// functions (each passes lockhygiene), a same-type nested acquisition,
// and clean direct and interprocedural orderings.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// ---- the A -> B -> C -> A cycle ----

func abPath(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle among {A.mu, B.mu, C.mu}"
	b.mu.Unlock()
	a.mu.Unlock()
}

// bcPath guards the nesting behind an early return and a branch: the
// held set acquired past an empty first frontier must still propagate
// across blocks for the cycle to be seen.
func bcPath(b *B, c *C, ok bool) {
	if !ok {
		return
	}
	b.mu.Lock()
	if ok {
		c.mu.Lock()
		c.mu.Unlock()
	}
	b.mu.Unlock()
}

func caPath(c *C, a *A) {
	c.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	c.mu.Unlock()
}

// ---- same-type nesting: deadlocks when d1 and d2 swap roles ----

func nestedSameType(d1, d2 *D) {
	d1.mu.Lock()
	d2.mu.Lock() // want "mutex D.mu acquired while an instance is already held"
	d2.mu.Unlock()
	d1.mu.Unlock()
}

// ---- clean orderings ----

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

// eThenF orders E.mu before F.mu through a callee's transitive lockset.
func eThenF(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lockF(f)
}

// alsoEThenF uses the same order directly, so the edge stays acyclic.
func alsoEThenF(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// disjoint never nests, so it contributes no edges at all.
func disjoint(a *A, b *B) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
