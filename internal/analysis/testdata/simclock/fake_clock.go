package simfix

import "time"

// *_clock.go files implement the clock abstraction and may touch the wall
// clock; nothing here may be flagged.
func wallNow() time.Time { return time.Now() }
