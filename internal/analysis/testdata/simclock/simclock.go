// Package simfix is a golden-file fixture for the simclock check.
package simfix

import "time"

// Duration arithmetic is fine; only wall-clock access is banned.
const tick = 10 * time.Millisecond

func bad() time.Time {
	time.Sleep(tick)  // want "direct time.Sleep"
	return time.Now() // want "direct time.Now"
}

// alsoBad takes a function-value reference, not a call — still banned, or
// `sleep := time.Sleep` would dodge the check.
func alsoBad() func(time.Duration) {
	return time.Sleep // want "direct time.Sleep"
}

func fine(d time.Duration) time.Duration {
	return d.Round(time.Millisecond)
}
