// Package supfix is a fixture for //jbsvet:ignore handling, exercised
// through the simclock check. Lines with a `// want` survive suppression;
// the rest are silenced by well-formed directives.
package supfix

import "time"

func suppressedTrailing() {
	time.Sleep(time.Millisecond) //jbsvet:ignore simclock calibrated wall-clock wait in a fixture
}

func suppressedAbove() time.Time {
	//jbsvet:ignore simclock documented wall-clock read
	return time.Now()
}

func notSuppressed() time.Time {
	return time.Now() // want "direct time.Now"
}

func wrongCheck() time.Time {
	//jbsvet:ignore errcheck a directive for another check must not silence simclock
	return time.Now() // want "direct time.Now"
}

func missingReason() {
	//jbsvet:ignore simclock
	time.Sleep(time.Millisecond) // want "direct time.Sleep"
}
