// Package testgoroutine is a jbsvet fixture for the testgoroutine check.
package testgoroutine

// Work is trivial exported surface so the base package is non-empty.
func Work() int { return 42 }
