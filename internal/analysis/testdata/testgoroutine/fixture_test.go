package testgoroutine

import (
	"sync"
	"testing"
)

func TestFatalInGoroutineLit(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if Work() != 42 {
			t.Fatal("bad answer") // want "testing.Fatal called from a goroutine"
		}
	}()
	wg.Wait()
}

func TestFatalfAndSkipInGoroutine(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		t.Fatalf("bad: %d", Work()) // want "testing.Fatalf called from a goroutine"
		t.Skip("never reached")     // want "testing.Skip called from a goroutine"
	}()
	<-done
}

func TestFailNowViaNestedLit(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		retry := func() {
			t.FailNow() // want "testing.FailNow called from a goroutine"
		}
		retry()
	}()
	<-done
}

// checker is a helper whose method is launched as a goroutine; the call
// resolves to this declaration and its body is scanned.
type checker struct {
	t  *testing.T
	wg sync.WaitGroup
}

func (c *checker) run() {
	defer c.wg.Done()
	c.t.Fatalf("from helper method: %d", Work()) // want "testing.Fatalf called from a goroutine"
}

func helperFunc(t *testing.T, done chan struct{}) {
	defer close(done)
	t.SkipNow() // want "testing.SkipNow called from a goroutine"
}

func TestHelperLaunches(t *testing.T) {
	c := &checker{t: t}
	c.wg.Add(1)
	go c.run()
	c.wg.Wait()

	done := make(chan struct{})
	go helperFunc(t, done)
	<-done

	// A second launch of the same helper must not duplicate findings.
	done2 := make(chan struct{})
	go helperFunc(t, done2)
	<-done2
}

func TestBenchmarkStyle(t *testing.T) {
	var b *testing.B
	done := make(chan struct{})
	go func() {
		defer close(done)
		if b != nil {
			b.Skipf("b too: %d", Work()) // want "testing.Skipf called from a goroutine"
		}
	}()
	<-done
}

func tbHelper(tb testing.TB, done chan struct{}) {
	defer close(done)
	tb.Fatal("via the TB interface") // want "testing.Fatal called from a goroutine"
}

func TestTBInterface(t *testing.T) {
	done := make(chan struct{})
	go tbHelper(t, done)
	<-done
}

// Clean patterns: nothing below may be flagged.

func TestChannelReporting(t *testing.T) {
	errs := make(chan error, 1)
	go func() {
		errs <- nil // the right pattern: ship the failure back
	}()
	if err := <-errs; err != nil {
		t.Fatal(err) // test goroutine: fine
	}
}

func TestErrorIsGoroutineSafe(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		t.Errorf("goroutine-safe: %d", Work()) // Error/Errorf are allowed
		t.Log("so is Log")
	}()
	<-done
}

func TestSubtestsAreNotGoroutines(t *testing.T) {
	t.Run("sub", func(t *testing.T) {
		t.Fatalf("subtest body runs on its own test goroutine: %d", Work())
	})
}
