package testgoroutine_test

import (
	"testing"

	tg "repro/internal/analysis/testdata/testgoroutine"
)

func TestExternalPackageViolation(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		if tg.Work() != 42 {
			t.Fatal("external test packages are scanned too") // want "testing.Fatal called from a goroutine"
		}
	}()
	<-done
}

func TestExternalClean(t *testing.T) {
	results := make(chan int, 1)
	go func() { results <- tg.Work() }()
	if got := <-results; got != 42 {
		t.Fatalf("Work() = %d", got)
	}
}
