package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// TestGoroutineCheck flags testing.T/B/TB failure methods called from
// goroutines spawned inside test code. The testing package documents
// that FailNow, Fatal, Fatalf, SkipNow, Skip, and Skipf must be called
// from the goroutine running the Test function: they stop that
// goroutine with runtime.Goexit, so from any other goroutine the test
// keeps running as if nothing happened — the failure is recorded but
// teardown ordering, leak snapshots, and the test's own control flow
// are all silently corrupted. The fix is to report through a channel
// (or t.Error, which is goroutine-safe) and let the test goroutine
// decide.
//
// Like GoroutineCheck, `go x.method()` and `go fn()` resolve to
// declarations in the same unit and their bodies are scanned; a
// goroutine launching an out-of-unit function is not flagged (that is
// GoroutineCheck's territory).
//
// This is the one check that wants test files: the Runner feeds it the
// package merged with its in-package _test.go files plus the external
// _test package (Loader.LoadTests).
type TestGoroutineCheck struct{}

// Name implements Check.
func (*TestGoroutineCheck) Name() string { return "testgoroutine" }

// Doc implements Check.
func (*TestGoroutineCheck) Doc() string {
	return "testing.T Fatal/Skip/FailNow must not be called from goroutines spawned by a test"
}

// WantsTestFiles opts this check into the Runner's test-package pass.
func (*TestGoroutineCheck) WantsTestFiles() bool { return true }

// forbiddenFromGoroutine is the set the testing package documents as
// test-goroutine-only. Error/Errorf/Log/Fail are goroutine-safe and
// deliberately absent.
var forbiddenFromGoroutine = map[string]bool{
	"FailNow": true,
	"Fatal":   true,
	"Fatalf":  true,
	"SkipNow": true,
	"Skip":    true,
	"Skipf":   true,
}

// Run implements Check.
func (c *TestGoroutineCheck) Run(pkg *Package) []Finding {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	var out []Finding
	seen := make(map[ast.Node]bool) // two `go helper()` sites share one body
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				body = fun.Body
			case *ast.Ident:
				if fd := decls[pkg.Info.Uses[fun]]; fd != nil {
					body = fd.Body
				}
			case *ast.SelectorExpr:
				if fd := decls[pkg.Info.Uses[fun.Sel]]; fd != nil {
					body = fd.Body
				}
			}
			if body == nil || seen[body] {
				return true
			}
			seen[body] = true
			out = append(out, c.scanBody(pkg, body)...)
			return true
		})
	}
	return out
}

// scanBody reports every forbidden testing call under a goroutine body,
// nested function literals included (they run on the same spawned
// goroutine unless re-launched, and a re-launch is just as broken).
func (c *TestGoroutineCheck) scanBody(pkg *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "testing" ||
			!forbiddenFromGoroutine[fn.Name()] {
			return true
		}
		out = append(out, Finding{
			Pos:   position(pkg, call.Pos()),
			Check: "testgoroutine",
			Message: fmt.Sprintf(
				"testing.%s called from a goroutine spawned by the test: it stops only that goroutine (runtime.Goexit), not the test — send the failure over a channel or use Error/Errorf",
				fn.Name()),
		})
		return true
	})
	return out
}
