// Package autoscale closes the elastic loop over the multi-process JBS
// deployment: it watches the flow signals the suppliers already export
// (admission-ledger pressure, shed rate, DRR queue depth) plus the
// registry's membership view, and grows or drains the jbssupplierd
// fleet so a skewed tenant gets capacity instead of only sheds.
//
// The subsystem is three pluggable pieces wired by the Autoscaler
// control loop:
//
//   - a Collector that samples the fleet (registry ownership map for
//     membership, each supplier's /debug/jbs/flow endpoint for signals);
//   - a Policy engine (target tracking on shed rate, a step policy on
//     queue depth) whose decisions are pure functions of (now, signals)
//     — hysteresis and cooldowns live in the policies, the clock is
//     injected, and the unit tests replay scripted signal sequences;
//   - a Launcher that starts new supplier processes and retires surplus
//     ones through the existing SIGTERM -> drain -> handoff path, so
//     scale-down never loses a fetch.
//
// Scale events ride the registry's epoch/rebalance machinery: a launch
// registers and is assigned shards, a retire drains and hands its
// shards to peers — the autoscaler never touches ownership directly.
package autoscale

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Config assembles an Autoscaler.
type Config struct {
	// Collector samples the fleet each tick.
	Collector Collector
	// Policies are evaluated every tick; the highest desired fleet size
	// wins (capacity safety: scaling down requires every policy to
	// agree the fleet is oversized).
	Policies []Policy
	// Launcher starts and retires supplier instances.
	Launcher Launcher
	// Min and Max bound the fleet size the autoscaler will steer toward.
	// Min zero means 1. Max zero means Min.
	Min, Max int
	// IDPrefix names launched instances "<prefix>-<n>". Empty means
	// "auto".
	IDPrefix string
	// Interval paces the Run loop. Zero means 500ms. Tests bypass Run
	// and call Tick directly with their own clock.
	Interval time.Duration
	// DrainTimeout bounds one graceful retire. Zero means 30s.
	DrainTimeout time.Duration
	// LaunchGrace is how long a launched instance may stay invisible to
	// the registry before it stops counting toward the fleet (covers
	// the exec-to-register window without double-launching). Zero
	// means 5s.
	LaunchGrace time.Duration
	// Clock supplies the Run loop's notion of now. Nil means time.Now.
	Clock func() time.Time
	// Name labels the /debug/jbs/autoscale snapshot. Empty means
	// "autoscaler".
	Name string
	// Log, when set, receives one line per scale event and failure.
	Log func(format string, args ...any)
}

func (c *Config) applyDefaults() error {
	if c.Collector == nil {
		return errors.New("autoscale: Config.Collector must not be nil")
	}
	if c.Launcher == nil {
		return errors.New("autoscale: Config.Launcher must not be nil")
	}
	if len(c.Policies) == 0 {
		return errors.New("autoscale: Config.Policies must not be empty")
	}
	if c.Min < 0 {
		return fmt.Errorf("autoscale: Min %d must not be negative", c.Min)
	}
	if c.Min == 0 {
		c.Min = 1
	}
	if c.Max == 0 {
		c.Max = c.Min
	}
	if c.Max < c.Min {
		return fmt.Errorf("autoscale: Max %d must not be below Min %d", c.Max, c.Min)
	}
	if c.IDPrefix == "" {
		c.IDPrefix = "auto"
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.LaunchGrace <= 0 {
		c.LaunchGrace = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Name == "" {
		c.Name = "autoscaler"
	}
	return nil
}

// managedInstance is one launched supplier plus its bookkeeping.
type managedInstance struct {
	inst       Instance
	launchedAt time.Time
}

// Autoscaler runs the collect -> decide -> act loop. All mutation goes
// through Tick, which Run paces on Config.Interval; tests drive Tick
// directly with a scripted clock for deterministic decisions.
//
// Two locks split the loop from its observers: tickMu serializes whole
// collect -> decide -> act cycles (and RetireAll), while mu guards only
// the bookkeeping and is never held across blocking work — collects,
// launches, and drains run outside it, so AutoscaleState and Managed
// answer immediately even while a 30s drain is in flight.
type Autoscaler struct {
	cfg Config

	tickMu sync.Mutex // serializes Tick cycles and RetireAll

	mu      sync.Mutex         // bookkeeping only; never held across I/O
	managed []*managedInstance // launch order; retires pop the newest
	seq     int                // next instance ordinal
	prev    Sample
	prevAt  time.Time
	hasPrev bool
	lastSig Signals
	lastRsn string
	desired int
	events  []Event

	runStop  chan struct{}
	runDone  chan struct{}
	runOnce  sync.Once
	stopOnce sync.Once

	unregister func()
}

// maxEvents bounds the debug event ring.
const maxEvents = 64

// New validates the config and returns an Autoscaler. Call Run to start
// the loop (or Tick directly), and Close to stop it and release the
// debug registration. Close does not retire the fleet; for a graceful
// exit call Close first and RetireAll after — stopping the loop first
// means no tick can observe the shrinking fleet mid-drain and relaunch
// a supplier nobody would ever retire.
func New(cfg Config) (*Autoscaler, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	a := &Autoscaler{
		cfg:     cfg,
		runStop: make(chan struct{}),
		runDone: make(chan struct{}),
	}
	a.unregister = Register(a)
	return a, nil
}

func (a *Autoscaler) logf(format string, args ...any) {
	if a.cfg.Log != nil {
		a.cfg.Log(format, args...)
	}
}

// Run paces Tick on the configured interval until Close. It is the
// production loop; tests call Tick directly instead.
func (a *Autoscaler) Run() {
	a.runOnce.Do(func() {
		go a.runLoop()
	})
}

func (a *Autoscaler) runLoop() {
	defer close(a.runDone)
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.runStop:
			return
		case <-ticker.C:
		}
		if err := a.Tick(a.cfg.Clock()); err != nil {
			a.logf("autoscale: tick failed: %v", err)
		}
	}
}

// Close stops the Run loop (if started) and removes the debug
// registration. The managed fleet is left running; call RetireAll
// after Close for a graceful exit (Close first, so a queued tick
// cannot relaunch suppliers the retirement just drained).
func (a *Autoscaler) Close() error {
	a.stopOnce.Do(func() {
		close(a.runStop)
		a.runOnce.Do(func() { close(a.runDone) }) // Run never started
		<-a.runDone
		a.unregister()
	})
	return nil
}

// Tick executes one collect -> decide -> act cycle at the given time.
// It is safe to call concurrently with itself (serialized internally)
// but is normally called from one loop. Collection errors are counted
// and returned; the fleet is left untouched on a failed collect.
func (a *Autoscaler) Tick(now time.Time) error {
	a.tickMu.Lock()
	defer a.tickMu.Unlock()
	asEvaluations.Inc()
	// Collect before taking mu: the production collector polls every
	// supplier's debug endpoint sequentially (2s timeout each when one
	// is unreachable) and must not stall snapshot readers meanwhile.
	sample, err := a.cfg.Collector.Collect()
	if err != nil {
		asCollectFailures.Inc()
		return fmt.Errorf("autoscale: collect: %w", err)
	}

	a.mu.Lock()
	sig := a.signalsLocked(sample, now)
	a.lastSig = sig

	// Decide: the highest desired size across policies wins, clamped to
	// [Min, Max]. A hold returns the current size, so one policy alone
	// cannot shrink a fleet another policy still wants.
	desired := 0
	reason := ""
	for _, p := range a.cfg.Policies {
		d := p.Evaluate(now, sig)
		if d.Desired > desired {
			desired, reason = d.Desired, p.Name()+": "+d.Reason
		}
	}
	if desired < a.cfg.Min {
		desired, reason = a.cfg.Min, fmt.Sprintf("floor: fleet minimum %d", a.cfg.Min)
	}
	if desired > a.cfg.Max {
		desired, reason = a.cfg.Max, fmt.Sprintf("ceiling: fleet maximum %d (%s)", a.cfg.Max, reason)
	}
	a.desired = desired
	a.lastRsn = reason
	asFleet.Set(int64(sig.Live))
	asDesired.Set(int64(desired))
	asShedRate.Set(int64(sig.ShedRate * 1000))
	asQueueBytes.Set(sig.QueuedBytes)

	// Plan the act phase while holding mu — reserve launch IDs, pop
	// instances to retire — but perform it after releasing: launches
	// spawn processes and retires block on drains (up to DrainTimeout).
	// sig.Live already counts pending launches (grace window), so a
	// slow-to-register instance is not launched twice.
	var launchIDs []string
	var toRetire []*managedInstance
	switch {
	case desired > sig.Live:
		for i := sig.Live; i < desired; i++ {
			a.seq++
			launchIDs = append(launchIDs, fmt.Sprintf("%s-%d", a.cfg.IDPrefix, a.seq))
		}
	case desired < sig.Live:
		for i := desired; i < sig.Live && len(a.managed) > 0; i++ {
			m := a.managed[len(a.managed)-1]
			a.managed = a.managed[:len(a.managed)-1]
			toRetire = append(toRetire, m)
		}
		if len(toRetire) == 0 {
			a.lastRsn = reason + " (held: no managed instance to retire)"
		}
	}
	a.prev, a.prevAt, a.hasPrev = sample, now, true
	a.mu.Unlock()

	if len(launchIDs) > 0 {
		a.scaleUp(now, sig.Live, launchIDs, reason, sample.Epoch)
	}
	if len(toRetire) > 0 {
		a.scaleDown(now, sig.Live, toRetire, reason, sample.Epoch)
	}
	return nil
}

// signalsLocked digests a sample (plus the previous one) into the
// policy inputs. Shed rate is the per-second sum of capacity-shed
// deltas for suppliers present in both samples; a supplier first seen
// now contributes its full count (its counter started at zero within
// the window). Must be called with mu held.
func (a *Autoscaler) signalsLocked(s Sample, now time.Time) Signals {
	sig := Signals{Live: s.Live(), QueuedBytes: 0}
	var shedDelta int64
	prevSheds := make(map[string]int64, len(a.prev.Suppliers))
	if a.hasPrev {
		for _, p := range a.prev.Suppliers {
			prevSheds[p.ID] = p.Sheds
		}
	}
	for _, sup := range s.Suppliers {
		sig.QueuedBytes += sup.QueuedBytes
		if sup.BudgetBytes > 0 {
			if pr := float64(sup.AdmittedBytes) / float64(sup.BudgetBytes); pr > sig.Pressure {
				sig.Pressure = pr
			}
		}
		if d := sup.Sheds - prevSheds[sup.ID]; d > 0 && a.hasPrev {
			shedDelta += d
		}
	}
	if a.hasPrev {
		if dt := now.Sub(a.prevAt).Seconds(); dt > 0 {
			sig.ShedRate = float64(shedDelta) / dt
		}
	}
	// Pending launches: managed instances the registry does not list
	// yet, still inside their grace window. They occupy fleet slots so
	// one decision is not acted on twice.
	inSample := make(map[string]bool, len(s.Suppliers))
	for _, sup := range s.Suppliers {
		inSample[sup.ID] = true
	}
	for _, m := range a.managed {
		if !inSample[m.inst.ID()] && now.Sub(m.launchedAt) < a.cfg.LaunchGrace {
			sig.Live++
			sig.Pending++
		}
	}
	return sig
}

// scaleUp launches the reserved instance IDs. Called from Tick without
// mu held (Launch spawns processes); tickMu serializes it against other
// cycles.
func (a *Autoscaler) scaleUp(now time.Time, live int, ids []string, reason string, epoch uint64) {
	var launched []*managedInstance
	for _, id := range ids {
		inst, err := a.cfg.Launcher.Launch(id)
		if err != nil {
			asLaunchFailures.Inc()
			a.logf("autoscale: launch %s failed: %v", id, err)
			break
		}
		launched = append(launched, &managedInstance{inst: inst, launchedAt: now})
		a.logf("autoscale: scale up %d -> %d: launched %s (%s)", live, live+len(launched), id, reason)
	}
	if len(launched) == 0 {
		return
	}
	a.mu.Lock()
	a.managed = append(a.managed, launched...)
	a.recordEventLocked(Event{When: now, Action: "up", From: live, To: live + len(launched), Reason: reason, Epoch: epoch})
	a.mu.Unlock()
	asScaleUps.Inc()
}

// scaleDown retires the popped instances (newest first) through the
// graceful drain path. Unmanaged suppliers (ones this autoscaler did
// not launch) are never handed to it. Called from Tick without mu held
// — a drain may block up to DrainTimeout and snapshot readers must not
// wait on it; tickMu serializes it against other cycles.
func (a *Autoscaler) scaleDown(now time.Time, live int, toRetire []*managedInstance, reason string, epoch uint64) {
	retired := 0
	for _, m := range toRetire {
		ctx, cancel := context.WithTimeout(context.Background(), a.cfg.DrainTimeout)
		err := m.inst.Retire(ctx)
		cancel()
		if err != nil {
			a.retireFailed(m, err)
			continue
		}
		retired++
		a.logf("autoscale: scale down %d -> %d: retired %s (drained; %s)", live, live-retired, m.inst.ID(), reason)
	}
	if retired > 0 {
		a.mu.Lock()
		a.recordEventLocked(Event{When: now, Action: "down", From: live, To: live - retired, Reason: reason, Epoch: epoch})
		a.mu.Unlock()
		asScaleDowns.Inc()
	}
}

// retireFailed handles a graceful retirement that did not complete:
// the instance is already outside a.managed, so leaving it running
// would orphan a supplier the autoscaler can never scale down again.
// Kill is the last resort — the crash-adjacent path the merger's retry
// machinery absorbs — and is idempotent on an already-dead process.
func (a *Autoscaler) retireFailed(m *managedInstance, err error) {
	asRetireFailures.Inc()
	if kerr := m.inst.Kill(); kerr != nil {
		a.logf("autoscale: retire %s failed: %v (kill fallback also failed: %v)", m.inst.ID(), err, kerr)
		return
	}
	a.logf("autoscale: retire %s failed: %v (killed as last resort)", m.inst.ID(), err)
}

func (a *Autoscaler) recordEventLocked(e Event) {
	a.events = append(a.events, e)
	if len(a.events) > maxEvents {
		a.events = a.events[len(a.events)-maxEvents:]
	}
}

// Managed returns the IDs of the instances this autoscaler launched and
// has not retired, oldest first.
func (a *Autoscaler) Managed() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.managed))
	for _, m := range a.managed {
		ids = append(ids, m.inst.ID())
	}
	return ids
}

// RetireAll gracefully retires every managed instance, newest first —
// the SIGTERM exit path for cmd/jbsautoscalerd, called after Close has
// stopped the control loop. The first error is returned; retirement
// continues past failures, and an instance whose graceful drain fails
// is killed rather than left running as an orphan.
func (a *Autoscaler) RetireAll(ctx context.Context) error {
	a.tickMu.Lock()
	defer a.tickMu.Unlock()
	a.mu.Lock()
	toRetire := a.managed
	a.managed = nil
	a.mu.Unlock()
	var firstErr error
	for i := len(toRetire) - 1; i >= 0; i-- {
		m := toRetire[i]
		if err := m.inst.Retire(ctx); err != nil {
			a.retireFailed(m, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		a.logf("autoscale: retired %s (shutdown)", m.inst.ID())
	}
	return firstErr
}

// AutoscaleState snapshots the autoscaler for /debug/jbs/autoscale.
func (a *Autoscaler) AutoscaleState() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := State{
		Name:        a.cfg.Name,
		Min:         a.cfg.Min,
		Max:         a.cfg.Max,
		Live:        a.lastSig.Live,
		Pending:     a.lastSig.Pending,
		Desired:     a.desired,
		ShedRate:    a.lastSig.ShedRate,
		QueuedBytes: a.lastSig.QueuedBytes,
		Pressure:    a.lastSig.Pressure,
		LastReason:  a.lastRsn,
		Events:      append([]Event(nil), a.events...),
	}
	for _, m := range a.managed {
		st.Managed = append(st.Managed, m.inst.ID())
	}
	return st
}
