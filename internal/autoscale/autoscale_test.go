package autoscale

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeLauncher records launches, retirements, and kills.
type fakeLauncher struct {
	mu        sync.Mutex
	launched  []string
	retired   []string
	killed    []string
	launchErr error
	retireErr error
}

func (l *fakeLauncher) Launch(id string) (Instance, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.launchErr != nil {
		return nil, l.launchErr
	}
	l.launched = append(l.launched, id)
	return &fakeInstance{id: id, l: l}, nil
}

func (l *fakeLauncher) launchedIDs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.launched...)
}

func (l *fakeLauncher) retiredIDs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.retired...)
}

func (l *fakeLauncher) killedIDs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.killed...)
}

type fakeInstance struct {
	id string
	l  *fakeLauncher
}

func (f *fakeInstance) ID() string { return f.id }

func (f *fakeInstance) Retire(ctx context.Context) error {
	f.l.mu.Lock()
	defer f.l.mu.Unlock()
	f.l.retired = append(f.l.retired, f.id)
	return f.l.retireErr
}

func (f *fakeInstance) Kill() error {
	f.l.mu.Lock()
	defer f.l.mu.Unlock()
	f.l.killed = append(f.l.killed, f.id)
	return nil
}

// fakeCollector serves a scripted sample.
type fakeCollector struct {
	mu     sync.Mutex
	sample Sample
	err    error
}

func (c *fakeCollector) Collect() (Sample, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sample, c.err
}

func (c *fakeCollector) set(s Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sample = s
}

// fixedPolicy wants a scripted fleet size regardless of signals.
type fixedPolicy struct {
	mu      sync.Mutex
	desired int
}

func (p *fixedPolicy) Name() string { return "fixed" }

func (p *fixedPolicy) Evaluate(now time.Time, sig Signals) Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Decision{Desired: p.desired, Reason: "scripted"}
}

func (p *fixedPolicy) set(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.desired = n
}

// recordPolicy holds at the current size and keeps every Signals it saw.
type recordPolicy struct {
	mu   sync.Mutex
	sigs []Signals
}

func (p *recordPolicy) Name() string { return "record" }

func (p *recordPolicy) Evaluate(now time.Time, sig Signals) Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sigs = append(p.sigs, sig)
	return Decision{Desired: sig.Live, Reason: "hold"}
}

func (p *recordPolicy) last(t *testing.T) Signals {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.sigs) == 0 {
		t.Fatal("policy never evaluated")
	}
	return p.sigs[len(p.sigs)-1]
}

func newTestAutoscaler(t *testing.T, cfg Config) *Autoscaler {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a
}

func supplierIDs(ids ...string) Sample {
	s := Sample{Epoch: 1}
	for _, id := range ids {
		s.Suppliers = append(s.Suppliers, SupplierSample{ID: id, Addr: id + ":1"})
	}
	return s
}

func TestNewValidatesConfig(t *testing.T) {
	col := &fakeCollector{}
	l := &fakeLauncher{}
	pol := []Policy{&fixedPolicy{}}
	for name, cfg := range map[string]Config{
		"nil collector": {Launcher: l, Policies: pol},
		"nil launcher":  {Collector: col, Policies: pol},
		"no policies":   {Collector: col, Launcher: l},
		"max below min": {Collector: col, Launcher: l, Policies: pol, Min: 3, Max: 2},
		"negative min":  {Collector: col, Launcher: l, Policies: pol, Min: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

func TestTickLaunchesToFloor(t *testing.T) {
	l := &fakeLauncher{}
	a := newTestAutoscaler(t, Config{
		Collector: &fakeCollector{},
		Launcher:  l,
		Policies:  []Policy{&fixedPolicy{desired: 0}},
		Min:       2, Max: 4,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	if got := l.launchedIDs(); len(got) != 2 || got[0] != "auto-1" || got[1] != "auto-2" {
		t.Fatalf("launched = %v, want [auto-1 auto-2]", got)
	}
	st := a.AutoscaleState()
	if st.Desired != 2 || !strings.Contains(st.LastReason, "floor") {
		t.Fatalf("state desired=%d reason=%q, want floor to 2", st.Desired, st.LastReason)
	}
	if len(st.Events) != 1 || st.Events[0].Action != "up" || st.Events[0].From != 0 || st.Events[0].To != 2 {
		t.Fatalf("events = %+v, want one up 0->2", st.Events)
	}
}

func TestTickClampsToMax(t *testing.T) {
	l := &fakeLauncher{}
	a := newTestAutoscaler(t, Config{
		Collector: &fakeCollector{},
		Launcher:  l,
		Policies:  []Policy{&fixedPolicy{desired: 10}},
		Min:       1, Max: 2,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	if got := l.launchedIDs(); len(got) != 2 {
		t.Fatalf("launched %v, want 2 instances (clamped)", got)
	}
	st := a.AutoscaleState()
	if st.Desired != 2 || !strings.Contains(st.LastReason, "ceiling") {
		t.Fatalf("state desired=%d reason=%q, want ceiling at 2", st.Desired, st.LastReason)
	}
}

func TestPendingLaunchGracePreventsDoubleLaunch(t *testing.T) {
	l := &fakeLauncher{}
	col := &fakeCollector{}
	a := newTestAutoscaler(t, Config{
		Collector: col,
		Launcher:  l,
		Policies:  []Policy{&fixedPolicy{desired: 2}},
		Min:       1, Max: 4,
		LaunchGrace: 5 * time.Second,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	if got := l.launchedIDs(); len(got) != 2 {
		t.Fatalf("first tick launched %v, want 2", got)
	}
	// The registry has not seen the launches yet; inside the grace
	// window they still fill fleet slots, so the next tick must not
	// launch again.
	if err := a.Tick(at(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := l.launchedIDs(); len(got) != 2 {
		t.Fatalf("grace tick launched %v, want still 2", got)
	}
	st := a.AutoscaleState()
	if st.Live != 2 || st.Pending != 2 {
		t.Fatalf("state live=%d pending=%d, want 2 pending launches counted", st.Live, st.Pending)
	}
	// Past the grace window an instance that never registered stops
	// counting; the autoscaler replaces it.
	if err := a.Tick(at(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := l.launchedIDs(); len(got) != 4 {
		t.Fatalf("post-grace tick launched %v, want replacements (4 total)", got)
	}
	// The original launches finally register: the fleet now reads 4 (two
	// registered plus the two pending replacements) and the surplus is
	// drained, newest first.
	col.set(supplierIDs("auto-1", "auto-2"))
	if err := a.Tick(at(11 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := l.retiredIDs(); len(got) != 2 || got[0] != "auto-4" || got[1] != "auto-3" {
		t.Fatalf("retired = %v, want surplus [auto-4 auto-3]", got)
	}
	// With the replacements gone and the originals registered, the
	// fleet settles: no pending, no further churn.
	if err := a.Tick(at(12 * time.Second)); err != nil {
		t.Fatal(err)
	}
	st = a.AutoscaleState()
	if st.Live != 2 || st.Pending != 0 {
		t.Fatalf("settled state = %+v, want live 2 pending 0", st)
	}
	if got := l.launchedIDs(); len(got) != 4 {
		t.Fatalf("settled fleet launched again: %v", got)
	}
}

func TestScaleDownRetiresNewestManagedOnly(t *testing.T) {
	l := &fakeLauncher{}
	col := &fakeCollector{}
	pol := &fixedPolicy{desired: 3}
	col.set(supplierIDs("ext-1"))
	a := newTestAutoscaler(t, Config{
		Collector: col,
		Launcher:  l,
		Policies:  []Policy{pol},
		Min:       1, Max: 4,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	if got := l.launchedIDs(); len(got) != 2 {
		t.Fatalf("launched %v, want 2 alongside ext-1", got)
	}
	// Everyone registered; policy now wants 1. Only the autoscaler's own
	// instances are eligible, newest first — ext-1 is untouchable.
	col.set(supplierIDs("ext-1", "auto-1", "auto-2"))
	pol.set(1)
	if err := a.Tick(at(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got := l.retiredIDs(); len(got) != 2 || got[0] != "auto-2" || got[1] != "auto-1" {
		t.Fatalf("retired = %v, want [auto-2 auto-1] (newest first)", got)
	}
	if got := a.Managed(); len(got) != 0 {
		t.Fatalf("managed after scale-down = %v, want none", got)
	}
	st := a.AutoscaleState()
	var down *Event
	for i := range st.Events {
		if st.Events[i].Action == "down" {
			down = &st.Events[i]
		}
	}
	if down == nil || down.From != 3 || down.To != 1 {
		t.Fatalf("events = %+v, want a down 3->1", st.Events)
	}
	// Nothing left to retire: a further shrink request holds.
	col.set(supplierIDs("ext-1", "ext-2"))
	if err := a.Tick(at(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got := l.retiredIDs(); len(got) != 2 {
		t.Fatalf("unmanaged suppliers were retired: %v", got)
	}
	if st := a.AutoscaleState(); !strings.Contains(st.LastReason, "no managed instance") {
		t.Fatalf("reason = %q, want held-no-managed note", st.LastReason)
	}
}

func TestSignalsDigestsSamples(t *testing.T) {
	col := &fakeCollector{}
	pol := &recordPolicy{}
	a := newTestAutoscaler(t, Config{
		Collector: col,
		Launcher:  &fakeLauncher{},
		Policies:  []Policy{pol},
		Min:       1, Max: 4,
	})
	col.set(Sample{Epoch: 3, Suppliers: []SupplierSample{
		{ID: "a", Reachable: true, AdmittedBytes: 500, BudgetBytes: 1000, QueuedBytes: 100, Sheds: 10},
		{ID: "b", Reachable: true, AdmittedBytes: 900, BudgetBytes: 1000, QueuedBytes: 50, Sheds: 5},
	}})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	sig := pol.last(t)
	if sig.ShedRate != 0 {
		t.Fatalf("first tick shed rate = %v, want 0 (no previous sample)", sig.ShedRate)
	}
	if sig.Live != 2 || sig.QueuedBytes != 150 || sig.Pressure != 0.9 {
		t.Fatalf("signals = %+v, want live 2, queued 150, pressure 0.9", sig)
	}
	// Two seconds later supplier a shed 20 more: 10 sheds/sec fleet-wide.
	col.set(Sample{Epoch: 3, Suppliers: []SupplierSample{
		{ID: "a", Reachable: true, Sheds: 30},
		{ID: "b", Reachable: true, Sheds: 5},
	}})
	if err := a.Tick(at(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if sig := pol.last(t); sig.ShedRate != 10 {
		t.Fatalf("shed rate = %v, want 10/s", sig.ShedRate)
	}
	// A draining supplier keeps reporting but stops counting as live.
	col.set(Sample{Epoch: 4, Suppliers: []SupplierSample{
		{ID: "a", Reachable: true, Sheds: 30},
		{ID: "b", Reachable: true, Sheds: 5, Draining: true},
	}})
	if err := a.Tick(at(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if sig := pol.last(t); sig.Live != 1 {
		t.Fatalf("live with one draining = %d, want 1", sig.Live)
	}
}

func TestCollectErrorSkipsTick(t *testing.T) {
	l := &fakeLauncher{}
	a := newTestAutoscaler(t, Config{
		Collector: &fakeCollector{err: errors.New("registry down")},
		Launcher:  l,
		Policies:  []Policy{&fixedPolicy{desired: 3}},
		Min:       1, Max: 4,
	})
	if err := a.Tick(at(0)); err == nil {
		t.Fatal("tick with failing collector succeeded")
	}
	if got := l.launchedIDs(); len(got) != 0 {
		t.Fatalf("failed collect still launched %v", got)
	}
}

func TestLaunchFailureLeavesFleetUnmanaged(t *testing.T) {
	l := &fakeLauncher{launchErr: errors.New("no binary")}
	a := newTestAutoscaler(t, Config{
		Collector: &fakeCollector{},
		Launcher:  l,
		Policies:  []Policy{&fixedPolicy{desired: 2}},
		Min:       1, Max: 4,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	if got := a.Managed(); len(got) != 0 {
		t.Fatalf("managed after failed launch = %v, want none", got)
	}
	if st := a.AutoscaleState(); len(st.Events) != 0 {
		t.Fatalf("failed launch recorded an event: %+v", st.Events)
	}
}

func TestRetireAllDrainsManagedFleet(t *testing.T) {
	l := &fakeLauncher{}
	a := newTestAutoscaler(t, Config{
		Collector: &fakeCollector{},
		Launcher:  l,
		Policies:  []Policy{&fixedPolicy{desired: 3}},
		Min:       1, Max: 4,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.RetireAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := l.retiredIDs(); len(got) != 3 || got[0] != "auto-3" || got[2] != "auto-1" {
		t.Fatalf("retired = %v, want [auto-3 auto-2 auto-1]", got)
	}
	if got := a.Managed(); len(got) != 0 {
		t.Fatalf("managed after RetireAll = %v", got)
	}
}

// TestRetireFailureEscalatesToKill pins the orphan guard: an instance
// already popped from the managed fleet whose graceful drain fails
// must be killed, not left running where no later tick can reach it.
func TestRetireFailureEscalatesToKill(t *testing.T) {
	l := &fakeLauncher{retireErr: errors.New("sigterm delivery failed")}
	col := &fakeCollector{}
	pol := &fixedPolicy{desired: 2}
	a := newTestAutoscaler(t, Config{
		Collector: col,
		Launcher:  l,
		Policies:  []Policy{pol},
		Min:       1, Max: 4,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	col.set(supplierIDs("auto-1", "auto-2"))
	pol.set(1)
	if err := a.Tick(at(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got := l.killedIDs(); len(got) != 1 || got[0] != "auto-2" {
		t.Fatalf("killed = %v, want [auto-2] (failed drain escalated)", got)
	}
	if got := a.Managed(); len(got) != 1 || got[0] != "auto-1" {
		t.Fatalf("managed = %v, want [auto-1]", got)
	}
	// A failed retire is not a graceful scale-down; no event records it.
	for _, e := range a.AutoscaleState().Events {
		if e.Action == "down" {
			t.Fatalf("failed retire recorded a down event: %+v", e)
		}
	}
}

// TestRetireAllKillsOnFailure pins the same guard on the shutdown path:
// RetireAll reports the failure but still tears the instance down.
func TestRetireAllKillsOnFailure(t *testing.T) {
	l := &fakeLauncher{retireErr: errors.New("drain wedged")}
	a := newTestAutoscaler(t, Config{
		Collector: &fakeCollector{},
		Launcher:  l,
		Policies:  []Policy{&fixedPolicy{desired: 2}},
		Min:       1, Max: 4,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.RetireAll(context.Background()); err == nil {
		t.Fatal("RetireAll with failing drains returned nil")
	}
	if got := l.killedIDs(); len(got) != 2 {
		t.Fatalf("killed = %v, want both instances torn down", got)
	}
	if got := a.Managed(); len(got) != 0 {
		t.Fatalf("managed after RetireAll = %v, want none", got)
	}
}

// blockingLauncher hands out instances whose Retire parks until
// released, so a test can observe the autoscaler mid-drain.
type blockingLauncher struct {
	started chan string   // receives the instance id when a Retire begins
	release chan struct{} // closed to let parked Retires finish
}

func (l *blockingLauncher) Launch(id string) (Instance, error) {
	return &blockingInstance{id: id, l: l}, nil
}

type blockingInstance struct {
	id string
	l  *blockingLauncher
}

func (b *blockingInstance) ID() string { return b.id }

func (b *blockingInstance) Retire(ctx context.Context) error {
	b.l.started <- b.id
	<-b.l.release
	return nil
}

func (b *blockingInstance) Kill() error { return nil }

// TestSnapshotNotBlockedByInflightDrain pins the lock split: a drain
// may park for up to DrainTimeout (30s default), and the debug
// endpoint's snapshot must not hang behind it.
func TestSnapshotNotBlockedByInflightDrain(t *testing.T) {
	l := &blockingLauncher{started: make(chan string, 1), release: make(chan struct{})}
	col := &fakeCollector{}
	pol := &fixedPolicy{desired: 2}
	a := newTestAutoscaler(t, Config{
		Collector: col,
		Launcher:  l,
		Policies:  []Policy{pol},
		Min:       1, Max: 4,
	})
	if err := a.Tick(at(0)); err != nil {
		t.Fatal(err)
	}
	col.set(supplierIDs("auto-1", "auto-2"))
	pol.set(1)
	tickDone := make(chan error, 1)
	go func() { tickDone <- a.Tick(at(time.Minute)) }()
	<-l.started // the drain is now parked inside the act phase

	snapped := make(chan State, 1)
	go func() { snapped <- a.AutoscaleState() }()
	select {
	case st := <-snapped:
		if len(st.Managed) != 1 || st.Managed[0] != "auto-1" {
			t.Errorf("mid-drain managed = %v, want [auto-1] (auto-2 already popped)", st.Managed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AutoscaleState blocked behind an in-flight drain")
	}
	if got := a.Managed(); len(got) != 1 {
		t.Errorf("mid-drain Managed() = %v, want [auto-1]", got)
	}

	close(l.release)
	if err := <-tickDone; err != nil {
		t.Fatal(err)
	}
	st := a.AutoscaleState()
	var down *Event
	for i := range st.Events {
		if st.Events[i].Action == "down" {
			down = &st.Events[i]
		}
	}
	if down == nil || down.From != 2 || down.To != 1 {
		t.Fatalf("events after released drain = %+v, want a down 2->1", st.Events)
	}
}

func TestRunLoopStopsOnClose(t *testing.T) {
	a, err := New(Config{
		Collector: &fakeCollector{},
		Launcher:  &fakeLauncher{},
		Policies:  []Policy{&fixedPolicy{}},
		Interval:  time.Hour, // never fires; the test only exercises start/stop
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
