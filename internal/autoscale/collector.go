package autoscale

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/registry"
)

// SupplierSample is one supplier's signals at collection time.
type SupplierSample struct {
	ID, Addr string
	// DebugAddr is the advertised /debug/jbs address ("" if the
	// supplier does not advertise one).
	DebugAddr string
	// Draining marks a supplier mid-handoff; it holds a lease but owns
	// no shards and does not count toward the live fleet.
	Draining bool
	// Reachable reports whether the flow poll succeeded; the signal
	// fields below are zero when it is false.
	Reachable bool
	// AdmittedBytes and BudgetBytes are the admission ledger's current
	// occupancy and configured budget (zero when flow control is off).
	AdmittedBytes, BudgetBytes int64
	// QueuedBytes sums the supplier's DRR tenant queues.
	QueuedBytes int64
	// Sheds and DrainSheds are the ledger's cumulative capacity- and
	// drain-shed counters; the autoscaler differences Sheds across
	// ticks for the shed rate.
	Sheds, DrainSheds int64
}

// Sample is one collection cycle's view of the fleet.
type Sample struct {
	// Epoch is the registry's ownership epoch at collection time.
	Epoch uint64
	// Suppliers lists every registered supplier, draining included.
	Suppliers []SupplierSample
}

// Live counts the non-draining suppliers.
func (s Sample) Live() int {
	n := 0
	for _, sup := range s.Suppliers {
		if !sup.Draining {
			n++
		}
	}
	return n
}

// Collector samples the fleet. Implementations must be safe to call
// from the autoscaler loop; a returned error skips the tick.
type Collector interface {
	Collect() (Sample, error)
}

// FleetCollector is the production collector: registry ownership map
// for membership, each supplier's advertised /debug/jbs/flow endpoint
// for flow signals. A supplier without a debug address (or with an
// unreachable one) still counts toward membership — its signals read
// zero and Reachable is false, so policies act on the suppliers that do
// report rather than stalling the loop.
type FleetCollector struct {
	// Registry resolves the membership map.
	Registry *registry.Client
	// HTTP performs the flow polls. Nil means a client with a 2s
	// timeout (a collector must never block a tick on one dead
	// supplier).
	HTTP *http.Client
}

// defaultPollClient bounds a flow poll; shared across collectors.
var defaultPollClient = &http.Client{Timeout: 2 * time.Second}

func (c *FleetCollector) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultPollClient
}

// Collect implements Collector.
func (c *FleetCollector) Collect() (Sample, error) {
	if c.Registry == nil {
		return Sample{}, fmt.Errorf("autoscale: FleetCollector needs a registry client")
	}
	m, err := c.Registry.FetchMap()
	if err != nil {
		return Sample{}, err
	}
	s := Sample{Epoch: m.Epoch}
	for _, info := range m.Suppliers {
		sup := SupplierSample{
			ID:        info.ID,
			Addr:      info.Addr,
			DebugAddr: info.DebugAddr,
			Draining:  info.Draining,
		}
		if info.DebugAddr != "" {
			if st, err := c.pollFlow(info.DebugAddr, info.Addr); err == nil {
				sup.Reachable = true
				if st.Ledger != nil {
					sup.AdmittedBytes = st.Ledger.Used
					sup.BudgetBytes = st.Ledger.Budget
					sup.Sheds = st.Ledger.Sheds
					sup.DrainSheds = st.Ledger.DrainSheds
				}
				for _, t := range st.Tenants {
					sup.QueuedBytes += t.QueuedBytes
				}
			}
		}
		s.Suppliers = append(s.Suppliers, sup)
	}
	return s, nil
}

// pollFlow fetches /debug/jbs/flow from one supplier's debug address
// and returns the flow state belonging to the supplier serving
// fetchAddr. A debug endpoint lists every flow participant in its
// process (tests run several suppliers in one), so states are matched
// by the fetch address embedded in their name.
func (c *FleetCollector) pollFlow(debugAddr, fetchAddr string) (flow.State, error) {
	resp, err := c.httpClient().Get("http://" + debugAddr + "/debug/jbs/flow")
	if err != nil {
		return flow.State{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return flow.State{}, fmt.Errorf("autoscale: poll %s: status %s", debugAddr, resp.Status)
	}
	var states []flow.State
	if err := json.NewDecoder(resp.Body).Decode(&states); err != nil {
		return flow.State{}, fmt.Errorf("autoscale: poll %s: %w", debugAddr, err)
	}
	var fallback *flow.State
	for i := range states {
		st := &states[i]
		if !strings.HasPrefix(st.Name, "supplier ") {
			continue
		}
		if strings.HasSuffix(st.Name, " "+fetchAddr) {
			return *st, nil
		}
		if fallback == nil {
			fallback = st
		}
	}
	if fallback != nil {
		// One supplier per process is the deployment norm; its name may
		// carry a rewritten address (0.0.0.0 binds).
		return *fallback, nil
	}
	return flow.State{}, fmt.Errorf("autoscale: poll %s: no supplier flow state", debugAddr)
}
