package autoscale

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/registry"
)

// serveFlow runs an httptest server answering /debug/jbs/flow with the
// given states and returns its host:port (the DebugAddr shape suppliers
// advertise).
func serveFlow(t *testing.T, states []flow.State) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/jbs/flow" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(states); err != nil {
			t.Errorf("encode flow states: %v", err)
		}
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestFleetCollectorSamplesFleet(t *testing.T) {
	s, err := registry.NewServer(registry.ServerConfig{Addr: "127.0.0.1:0", Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := registry.NewClient(s.Addr())
	defer c.Close()

	// sup-full advertises a debug endpoint whose flow snapshot carries a
	// merger state (must be skipped) plus the matching supplier state.
	fullDebug := serveFlow(t, []flow.State{
		{Name: "merger 127.0.0.1:9"},
		{Name: "supplier 127.0.0.1:7001", Ledger: &flow.LedgerState{
			Budget: 1000, Used: 400, Sheds: 7, DrainSheds: 2,
		}, Tenants: []flow.TenantState{
			{Tenant: "light", QueuedBytes: 30},
			{Tenant: "heavy", QueuedBytes: 12},
		}},
	})
	// sup-fb's state name carries a rewritten bind address; the
	// collector falls back to the only supplier state in the process.
	fbDebug := serveFlow(t, []flow.State{
		{Name: "supplier 0.0.0.0:9999", Ledger: &flow.LedgerState{Sheds: 3}},
	})
	for _, reg := range []registry.SupplierInfo{
		{ID: "sup-full", Addr: "127.0.0.1:7001", DebugAddr: fullDebug},
		{ID: "sup-fb", Addr: "127.0.0.1:7002", DebugAddr: fbDebug},
		{ID: "sup-silent", Addr: "127.0.0.1:7003"},
		{ID: "sup-dead", Addr: "127.0.0.1:7004", DebugAddr: "127.0.0.1:1"},
	} {
		if err := c.RegisterSupplier(reg); err != nil {
			t.Fatal(err)
		}
	}

	httpClient := &http.Client{Timeout: 2 * time.Second}
	t.Cleanup(httpClient.CloseIdleConnections)
	col := &FleetCollector{Registry: c, HTTP: httpClient}
	sample, err := col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if sample.Epoch == 0 {
		t.Fatal("sample carries no registry epoch")
	}
	if len(sample.Suppliers) != 4 || sample.Live() != 4 {
		t.Fatalf("sample = %+v, want 4 live suppliers", sample.Suppliers)
	}
	byID := make(map[string]SupplierSample, len(sample.Suppliers))
	for _, sup := range sample.Suppliers {
		byID[sup.ID] = sup
	}

	full := byID["sup-full"]
	if !full.Reachable {
		t.Fatalf("sup-full unreachable: %+v", full)
	}
	if full.AdmittedBytes != 400 || full.BudgetBytes != 1000 || full.Sheds != 7 || full.DrainSheds != 2 {
		t.Fatalf("sup-full ledger signals = %+v", full)
	}
	if full.QueuedBytes != 42 {
		t.Fatalf("sup-full queued = %d, want 42 (tenant sum)", full.QueuedBytes)
	}

	if fb := byID["sup-fb"]; !fb.Reachable || fb.Sheds != 3 {
		t.Fatalf("sup-fb fallback match = %+v, want reachable with 3 sheds", fb)
	}

	// No debug address and a dead one both degrade to membership-only.
	for _, id := range []string{"sup-silent", "sup-dead"} {
		if sup := byID[id]; sup.Reachable || sup.Sheds != 0 || sup.QueuedBytes != 0 {
			t.Fatalf("%s = %+v, want unreachable with zero signals", id, sup)
		}
	}
}

func TestSampleLiveExcludesDraining(t *testing.T) {
	s := Sample{Suppliers: []SupplierSample{
		{ID: "a"},
		{ID: "b", Draining: true},
		{ID: "c"},
	}}
	if got := s.Live(); got != 2 {
		t.Fatalf("Live() = %d, want 2", got)
	}
}
