package autoscale

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"repro/internal/daemon"
)

// Instance is one supplier the autoscaler launched and may later
// retire.
type Instance interface {
	// ID is the registry identity the instance was launched under.
	ID() string
	// Retire shuts the instance down gracefully (drain -> handoff ->
	// exit) and returns once it is gone; ctx bounds the wait. An error
	// means the instance did not exit cleanly.
	Retire(ctx context.Context) error
	// Kill tears the instance down immediately (the crash-adjacent
	// path; the merger's retry machinery absorbs the loss).
	Kill() error
}

// Launcher starts supplier instances. Implementations are
// deployment-shaped: ExecLauncher spawns local jbssupplierd processes,
// InProcessLauncher embeds daemons in the calling process (tests,
// chaos), and a future remote launcher can place instances on other
// machines behind the same interface.
type Launcher interface {
	Launch(id string) (Instance, error)
}

// ExecLauncher launches local jbssupplierd processes. Retire sends
// SIGTERM and waits — the daemon's own signal handler runs the
// drain/handoff sequence, so a retire and an operator rolling the
// process by hand are the same code path.
type ExecLauncher struct {
	// Binary is the jbssupplierd executable path.
	Binary string
	// RegistryAddr and MOFDir configure every launched supplier.
	RegistryAddr, MOFDir string
	// AdmitBytes enables flow control on launched suppliers (0: off).
	AdmitBytes int64
	// Heartbeat paces the launched supplier's lease renewal (0: the
	// daemon default).
	Heartbeat time.Duration
	// ExtraArgs are appended verbatim to every launch.
	ExtraArgs []string
	// Log, when set, receives one line per process event.
	Log func(format string, args ...any)
}

// Launch implements Launcher.
func (l *ExecLauncher) Launch(id string) (Instance, error) {
	if l.Binary == "" {
		return nil, errors.New("autoscale: ExecLauncher needs a binary path")
	}
	args := []string{
		"-registry", l.RegistryAddr,
		"-addr", "127.0.0.1:0",
		"-id", id,
		"-mof-dir", l.MOFDir,
		// Ephemeral debug listener, advertised through the registry:
		// this is what the collector polls for flow signals.
		"-debug", "127.0.0.1:0",
		"-quiet",
	}
	if l.AdmitBytes > 0 {
		args = append(args, "-admit-bytes", fmt.Sprint(l.AdmitBytes))
	}
	if l.Heartbeat > 0 {
		args = append(args, "-heartbeat", l.Heartbeat.String())
	}
	args = append(args, l.ExtraArgs...)
	cmd := exec.Command(l.Binary, args...)
	cmd.Stdout = os.Stderr // lifecycle lines; the parent's stdout stays structured
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("autoscale: launch %s: %w", id, err)
	}
	inst := &execInstance{id: id, cmd: cmd, done: make(chan struct{})}
	inst.wg.Add(1)
	go func() {
		defer inst.wg.Done()
		inst.waitErr = cmd.Wait()
		close(inst.done)
	}()
	if l.Log != nil {
		l.Log("autoscale: launched %s (pid %d)", id, cmd.Process.Pid)
	}
	return inst, nil
}

// execInstance is one spawned jbssupplierd process.
type execInstance struct {
	id      string
	cmd     *exec.Cmd
	done    chan struct{}
	waitErr error
	wg      sync.WaitGroup
}

// ID implements Instance.
func (p *execInstance) ID() string { return p.id }

// Retire implements Instance: SIGTERM, then wait for the daemon's
// drain/handoff to finish and the process to exit 0.
func (p *execInstance) Retire(ctx context.Context) error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("autoscale: SIGTERM %s: %w", p.id, err)
	}
	select {
	case <-p.done:
	case <-ctx.Done():
		_ = p.Kill()
		return fmt.Errorf("autoscale: retire %s: drain did not finish: %w", p.id, ctx.Err())
	}
	if p.waitErr != nil {
		return fmt.Errorf("autoscale: retire %s: daemon exited uncleanly: %w", p.id, p.waitErr)
	}
	return nil
}

// Kill implements Instance.
func (p *execInstance) Kill() error {
	err := p.cmd.Process.Kill()
	p.wg.Wait()
	if err != nil && !errors.Is(err, os.ErrProcessDone) {
		return err
	}
	return nil
}

// InProcessLauncher runs supplier daemons inside the calling process
// via daemon.StartSupplier — the seam the unit and chaos tests scale
// through (no binaries to build, leakcheck sees every goroutine).
type InProcessLauncher struct {
	// Template is copied for every launch; ID is overwritten with the
	// launch id.
	Template daemon.SupplierConfig
}

// Launch implements Launcher.
func (l *InProcessLauncher) Launch(id string) (Instance, error) {
	cfg := l.Template
	cfg.ID = id
	d, err := daemon.StartSupplier(cfg)
	if err != nil {
		return nil, err
	}
	return &inprocInstance{d: d}, nil
}

// inprocInstance is one in-process supplier daemon.
type inprocInstance struct{ d *daemon.Supplier }

// ID implements Instance.
func (p *inprocInstance) ID() string { return p.d.ID() }

// Retire implements Instance: the same drain -> close sequence the
// SIGTERM handler runs in a real daemon process.
func (p *inprocInstance) Retire(ctx context.Context) error {
	if err := p.d.Drain(ctx); err != nil {
		_ = p.d.Close()
		return err
	}
	return p.d.Close()
}

// Kill implements Instance.
func (p *inprocInstance) Kill() error { return p.d.Close() }
