package autoscale

import "repro/internal/metrics"

// Registry handles for the autoscaler. All control-plane: the loop
// ticks at human timescales, never on the fetch hot path.
var (
	asFleet = metrics.Default().Gauge("jbs_autoscale_fleet", "suppliers",
		"live (non-draining) suppliers observed at the last tick, pending launches included")
	asDesired = metrics.Default().Gauge("jbs_autoscale_desired", "suppliers",
		"fleet size the policy engine wants, clamped to [min, max]")
	asShedRate = metrics.Default().Gauge("jbs_autoscale_shed_rate_milli", "sheds/s x1000",
		"fleet-wide capacity-shed rate observed between the last two ticks, in millisheds/sec")
	asQueueBytes = metrics.Default().Gauge("jbs_autoscale_queue_bytes", "bytes",
		"fleet-wide admission queue depth (sum of supplier DRR tenant queues) at the last tick")
	asEvaluations = metrics.Default().Counter("jbs_autoscale_evaluations_total", "ticks",
		"autoscaler ticks executed (collect + policy evaluation)")
	asScaleUps = metrics.Default().Counter("jbs_autoscale_scale_ups_total", "events",
		"scale-up events (one event may launch several suppliers)")
	asScaleDowns = metrics.Default().Counter("jbs_autoscale_scale_downs_total", "events",
		"scale-down events (every retired supplier drained gracefully)")
	asLaunchFailures = metrics.Default().Counter("jbs_autoscale_launch_failures_total", "errors",
		"supplier launches that failed to start")
	asRetireFailures = metrics.Default().Counter("jbs_autoscale_retire_failures_total", "errors",
		"supplier retirements that did not drain to a clean exit")
	asCollectFailures = metrics.Default().Counter("jbs_autoscale_collect_failures_total", "errors",
		"ticks skipped because the fleet sample could not be collected")
)
