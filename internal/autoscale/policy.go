package autoscale

import (
	"fmt"
	"time"
)

// Signals is the per-tick digest of fleet state the policies consume.
type Signals struct {
	// Live is the fleet size the decision steers: non-draining
	// registered suppliers plus pending launches still inside their
	// grace window.
	Live int
	// Pending is how many of Live are launched-but-not-yet-registered.
	Pending int
	// ShedRate is the fleet-wide capacity-shed rate (sheds/sec) over
	// the last collection interval.
	ShedRate float64
	// QueuedBytes is the fleet-wide admission queue depth: bytes
	// sitting in supplier DRR tenant queues right now.
	QueuedBytes int64
	// Pressure is the worst ledger occupancy across the fleet
	// (admitted bytes / budget), zero when flow control is off.
	Pressure float64
}

// Decision is one policy's verdict for the tick.
type Decision struct {
	// Desired is the fleet size this policy wants; returning the
	// current size is a hold.
	Desired int
	// Reason is a one-line human explanation for logs and debug state.
	Reason string
}

// Policy turns (now, signals) into a desired fleet size. Policies own
// their hysteresis and cooldown state; they must be deterministic given
// the sequence of Evaluate calls (the clock is always passed in, never
// read), so tests can replay scripted signal timelines.
type Policy interface {
	Name() string
	Evaluate(now time.Time, sig Signals) Decision
}

// cooldown gates scale decisions by direction. Zero values disable the
// corresponding gate.
type cooldown struct {
	up, down         time.Duration
	lastUp, lastDown time.Time
}

func (c *cooldown) upReady(now time.Time) bool {
	return c.lastUp.IsZero() || now.Sub(c.lastUp) >= c.up
}

func (c *cooldown) downReady(now time.Time) bool {
	return c.lastDown.IsZero() || now.Sub(c.lastDown) >= c.down
}

// TargetTrackingConfig tunes a TargetTracking policy.
type TargetTrackingConfig struct {
	// TargetShedRate is the per-supplier shed rate (sheds/sec) the
	// fleet should be sized to stay at. Must be positive.
	TargetShedRate float64
	// DownFraction scales the shrink threshold: the fleet is eligible
	// to lose a supplier once its per-supplier shed rate stays under
	// TargetShedRate*DownFraction for QuietFor. Zero means 0.1.
	DownFraction float64
	// QuietFor is how long the shed rate must stay under the shrink
	// threshold before a scale-down (hysteresis). Zero means 2s.
	QuietFor time.Duration
	// UpCooldown and DownCooldown are the minimum gaps between
	// consecutive scale-ups and scale-downs. Zero means 1s and 2s.
	UpCooldown, DownCooldown time.Duration
}

func (c *TargetTrackingConfig) applyDefaults() error {
	if c.TargetShedRate <= 0 {
		return fmt.Errorf("autoscale: TargetShedRate %v must be positive", c.TargetShedRate)
	}
	if c.DownFraction < 0 || c.DownFraction >= 1 {
		return fmt.Errorf("autoscale: DownFraction %v must be in [0, 1)", c.DownFraction)
	}
	if c.DownFraction == 0 {
		c.DownFraction = 0.1
	}
	if c.QuietFor <= 0 {
		c.QuietFor = 2 * time.Second
	}
	if c.UpCooldown <= 0 {
		c.UpCooldown = time.Second
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 2 * time.Second
	}
	return nil
}

// TargetTracking sizes the fleet so the per-supplier shed rate tracks a
// target: observing rate r across n suppliers, the fleet that would
// bring the per-supplier rate back to target is ceil(r / target) — the
// same shape as cloud target-tracking autoscaling on a utilization
// metric. Scale-down is hysteretic: the rate must stay below a fraction
// of the target for a quiet window, then the fleet shrinks one supplier
// per DownCooldown.
type TargetTracking struct {
	cfg        TargetTrackingConfig
	cd         cooldown
	quietSince time.Time
}

// NewTargetTracking validates cfg and returns the policy.
func NewTargetTracking(cfg TargetTrackingConfig) (*TargetTracking, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &TargetTracking{
		cfg: cfg,
		cd:  cooldown{up: cfg.UpCooldown, down: cfg.DownCooldown},
	}, nil
}

// Name implements Policy.
func (p *TargetTracking) Name() string { return "shed-target" }

// Evaluate implements Policy.
func (p *TargetTracking) Evaluate(now time.Time, sig Signals) Decision {
	live := sig.Live
	if live < 1 {
		live = 1
	}
	perSupplier := sig.ShedRate / float64(live)
	switch {
	case perSupplier > p.cfg.TargetShedRate:
		p.quietSince = time.Time{}
		if !p.cd.upReady(now) {
			return Decision{Desired: sig.Live,
				Reason: fmt.Sprintf("hold: shed rate %.1f/s over target, up-cooldown active", sig.ShedRate)}
		}
		want := ceilDiv(sig.ShedRate, p.cfg.TargetShedRate)
		if want <= sig.Live {
			want = sig.Live + 1
		}
		p.cd.lastUp = now
		return Decision{Desired: want,
			Reason: fmt.Sprintf("shed rate %.1f/s = %.1f/supplier, target %.1f", sig.ShedRate, perSupplier, p.cfg.TargetShedRate)}
	case perSupplier <= p.cfg.TargetShedRate*p.cfg.DownFraction:
		if p.quietSince.IsZero() {
			p.quietSince = now
		}
		if now.Sub(p.quietSince) >= p.cfg.QuietFor && p.cd.downReady(now) && sig.Live > 1 {
			p.cd.lastDown = now
			return Decision{Desired: sig.Live - 1,
				Reason: fmt.Sprintf("shed rate %.1f/s quiet for %v", sig.ShedRate, p.cfg.QuietFor)}
		}
		return Decision{Desired: sig.Live, Reason: "hold: shed rate quiet, waiting out hysteresis"}
	default:
		// Between the shrink and grow thresholds: the hysteresis band.
		p.quietSince = time.Time{}
		return Decision{Desired: sig.Live, Reason: "hold: shed rate inside target band"}
	}
}

// ceilDiv returns ceil(a/b) as an int for positive b.
func ceilDiv(a, b float64) int {
	n := int(a / b)
	if float64(n)*b < a {
		n++
	}
	return n
}

// QueueStepConfig tunes a QueueStep policy.
type QueueStepConfig struct {
	// HighBytes trips a scale-up when the fleet-wide queued bytes reach
	// it. Must be positive.
	HighBytes int64
	// LowBytes arms a scale-down when queued bytes stay at or under it.
	// Must be below HighBytes. Zero means HighBytes/8.
	LowBytes int64
	// Step is how many suppliers one trip adds. Zero means 1.
	Step int
	// QuietFor is how long the queue must stay under LowBytes before a
	// scale-down. Zero means 2s.
	QuietFor time.Duration
	// UpCooldown and DownCooldown gate consecutive moves. Zero means 1s
	// and 2s.
	UpCooldown, DownCooldown time.Duration
}

func (c *QueueStepConfig) applyDefaults() error {
	if c.HighBytes <= 0 {
		return fmt.Errorf("autoscale: HighBytes %d must be positive", c.HighBytes)
	}
	if c.LowBytes < 0 || (c.LowBytes != 0 && c.LowBytes >= c.HighBytes) {
		return fmt.Errorf("autoscale: LowBytes %d must be in [0, HighBytes)", c.LowBytes)
	}
	if c.LowBytes == 0 {
		c.LowBytes = c.HighBytes / 8
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.QuietFor <= 0 {
		c.QuietFor = 2 * time.Second
	}
	if c.UpCooldown <= 0 {
		c.UpCooldown = time.Second
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 2 * time.Second
	}
	return nil
}

// QueueStep is a step policy on admission queue depth: queued bytes at
// or above the high-water mark add Step suppliers; a queue that stays
// at or under the low-water mark for the quiet window sheds one. The
// gap between the marks is the hysteresis band where the policy holds.
type QueueStep struct {
	cfg        QueueStepConfig
	cd         cooldown
	quietSince time.Time
}

// NewQueueStep validates cfg and returns the policy.
func NewQueueStep(cfg QueueStepConfig) (*QueueStep, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &QueueStep{
		cfg: cfg,
		cd:  cooldown{up: cfg.UpCooldown, down: cfg.DownCooldown},
	}, nil
}

// Name implements Policy.
func (p *QueueStep) Name() string { return "queue-step" }

// Evaluate implements Policy.
func (p *QueueStep) Evaluate(now time.Time, sig Signals) Decision {
	switch {
	case sig.QueuedBytes >= p.cfg.HighBytes:
		p.quietSince = time.Time{}
		if !p.cd.upReady(now) {
			return Decision{Desired: sig.Live,
				Reason: fmt.Sprintf("hold: queue %d B over high water, up-cooldown active", sig.QueuedBytes)}
		}
		p.cd.lastUp = now
		return Decision{Desired: sig.Live + p.cfg.Step,
			Reason: fmt.Sprintf("queue %d B >= high water %d B", sig.QueuedBytes, p.cfg.HighBytes)}
	case sig.QueuedBytes <= p.cfg.LowBytes:
		if p.quietSince.IsZero() {
			p.quietSince = now
		}
		if now.Sub(p.quietSince) >= p.cfg.QuietFor && p.cd.downReady(now) && sig.Live > 1 {
			p.cd.lastDown = now
			return Decision{Desired: sig.Live - 1,
				Reason: fmt.Sprintf("queue %d B under low water for %v", sig.QueuedBytes, p.cfg.QuietFor)}
		}
		return Decision{Desired: sig.Live, Reason: "hold: queue drained, waiting out hysteresis"}
	default:
		p.quietSince = time.Time{}
		return Decision{Desired: sig.Live, Reason: "hold: queue inside hysteresis band"}
	}
}
