package autoscale

import (
	"testing"
	"time"
)

// base is an arbitrary fixed epoch for scripted clocks; policies only
// ever difference times, so the origin is irrelevant.
var base = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return base.Add(d) }

func newShedPolicy(t *testing.T, cfg TargetTrackingConfig) *TargetTracking {
	t.Helper()
	p, err := NewTargetTracking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTargetTrackingScalesProportionally(t *testing.T) {
	p := newShedPolicy(t, TargetTrackingConfig{TargetShedRate: 10})
	// 1 supplier shedding 95/s against a target of 10/supplier: the
	// fleet that brings the per-supplier rate back to target is 10.
	d := p.Evaluate(at(0), Signals{Live: 1, ShedRate: 95})
	if d.Desired != 10 {
		t.Fatalf("desired = %d (%s), want 10", d.Desired, d.Reason)
	}
}

func TestTargetTrackingUpCooldownBlocksBurst(t *testing.T) {
	p := newShedPolicy(t, TargetTrackingConfig{TargetShedRate: 10, UpCooldown: time.Second})
	if d := p.Evaluate(at(0), Signals{Live: 1, ShedRate: 50}); d.Desired != 5 {
		t.Fatalf("first eval desired = %d, want 5", d.Desired)
	}
	// 200ms later the rate is still high; the cooldown holds the size.
	if d := p.Evaluate(at(200*time.Millisecond), Signals{Live: 2, ShedRate: 60}); d.Desired != 2 {
		t.Fatalf("cooldown eval desired = %d, want hold at 2", d.Desired)
	}
	// Past the cooldown it may grow again.
	if d := p.Evaluate(at(1100*time.Millisecond), Signals{Live: 2, ShedRate: 60}); d.Desired != 6 {
		t.Fatalf("post-cooldown desired = %d, want 6", d.Desired)
	}
}

func TestTargetTrackingQuietWindowThenStepDown(t *testing.T) {
	p := newShedPolicy(t, TargetTrackingConfig{
		TargetShedRate: 10, QuietFor: 2 * time.Second, DownCooldown: time.Second,
	})
	// Quiet fleet of 3: no immediate shrink (hysteresis).
	if d := p.Evaluate(at(0), Signals{Live: 3, ShedRate: 0}); d.Desired != 3 {
		t.Fatalf("t=0 desired = %d, want hold at 3", d.Desired)
	}
	if d := p.Evaluate(at(time.Second), Signals{Live: 3, ShedRate: 0}); d.Desired != 3 {
		t.Fatalf("t=1s desired = %d, want hold at 3", d.Desired)
	}
	// Quiet for the full window: one supplier goes.
	if d := p.Evaluate(at(2*time.Second), Signals{Live: 3, ShedRate: 0}); d.Desired != 2 {
		t.Fatalf("t=2s desired = %d, want 2", d.Desired)
	}
	// Down cooldown: the next shrink must wait even though still quiet.
	if d := p.Evaluate(at(2500*time.Millisecond), Signals{Live: 2, ShedRate: 0}); d.Desired != 2 {
		t.Fatalf("t=2.5s desired = %d, want hold at 2", d.Desired)
	}
	if d := p.Evaluate(at(3100*time.Millisecond), Signals{Live: 2, ShedRate: 0}); d.Desired != 1 {
		t.Fatalf("t=3.1s desired = %d, want 1", d.Desired)
	}
	// Never below one.
	if d := p.Evaluate(at(10*time.Second), Signals{Live: 1, ShedRate: 0}); d.Desired != 1 {
		t.Fatalf("t=10s desired = %d, want floor 1", d.Desired)
	}
}

func TestTargetTrackingBandResetsQuiet(t *testing.T) {
	p := newShedPolicy(t, TargetTrackingConfig{
		TargetShedRate: 10, DownFraction: 0.1, QuietFor: 2 * time.Second,
	})
	if d := p.Evaluate(at(0), Signals{Live: 2, ShedRate: 0}); d.Desired != 2 {
		t.Fatalf("t=0: %+v", d)
	}
	// A blip into the hysteresis band (0.5/supplier < rate < target)
	// resets the quiet window.
	if d := p.Evaluate(at(time.Second), Signals{Live: 2, ShedRate: 8}); d.Desired != 2 {
		t.Fatalf("band eval: %+v", d)
	}
	// 2s after the original quiet start but only 1s after the blip: no
	// shrink yet.
	if d := p.Evaluate(at(2*time.Second), Signals{Live: 2, ShedRate: 0}); d.Desired != 2 {
		t.Fatalf("post-blip eval should hold: %+v", d)
	}
	if d := p.Evaluate(at(4*time.Second), Signals{Live: 2, ShedRate: 0}); d.Desired != 1 {
		t.Fatalf("quiet re-elapsed: %+v, want desired 1", d)
	}
}

func TestTargetTrackingDeterministic(t *testing.T) {
	script := []struct {
		at  time.Duration
		sig Signals
	}{
		{0, Signals{Live: 1, ShedRate: 0}},
		{500 * time.Millisecond, Signals{Live: 1, ShedRate: 42}},
		{time.Second, Signals{Live: 3, ShedRate: 40}},
		{3 * time.Second, Signals{Live: 5, ShedRate: 0}},
		{6 * time.Second, Signals{Live: 5, ShedRate: 0}},
	}
	run := func() []int {
		p := newShedPolicy(t, TargetTrackingConfig{TargetShedRate: 10})
		var out []int
		for _, s := range script {
			out = append(out, p.Evaluate(at(s.at), s.sig).Desired)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at step %d: %v vs %v", i, a, b)
		}
	}
}

func newQueuePolicy(t *testing.T, cfg QueueStepConfig) *QueueStep {
	t.Helper()
	p, err := NewQueueStep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQueueStepUpAndDown(t *testing.T) {
	p := newQueuePolicy(t, QueueStepConfig{
		HighBytes: 1 << 20, LowBytes: 1 << 17, Step: 2,
		QuietFor: time.Second, UpCooldown: time.Second, DownCooldown: time.Second,
	})
	// Deep queue: step up by 2.
	if d := p.Evaluate(at(0), Signals{Live: 1, QueuedBytes: 2 << 20}); d.Desired != 3 {
		t.Fatalf("high-water eval desired = %d, want 3", d.Desired)
	}
	// Still deep, inside up-cooldown: hold.
	if d := p.Evaluate(at(500*time.Millisecond), Signals{Live: 3, QueuedBytes: 2 << 20}); d.Desired != 3 {
		t.Fatalf("cooldown eval desired = %d, want 3", d.Desired)
	}
	// Band between the marks: hold, and the quiet window stays unarmed.
	if d := p.Evaluate(at(2*time.Second), Signals{Live: 3, QueuedBytes: 1 << 18}); d.Desired != 3 {
		t.Fatalf("band eval desired = %d, want 3", d.Desired)
	}
	// Drained queue, quiet window runs, then one goes.
	if d := p.Evaluate(at(3*time.Second), Signals{Live: 3, QueuedBytes: 0}); d.Desired != 3 {
		t.Fatalf("quiet arming eval desired = %d, want 3", d.Desired)
	}
	if d := p.Evaluate(at(4*time.Second), Signals{Live: 3, QueuedBytes: 0}); d.Desired != 2 {
		t.Fatalf("quiet elapsed eval desired = %d, want 2", d.Desired)
	}
}

func TestQueueStepConfigValidation(t *testing.T) {
	if _, err := NewQueueStep(QueueStepConfig{}); err == nil {
		t.Fatal("zero HighBytes accepted")
	}
	if _, err := NewQueueStep(QueueStepConfig{HighBytes: 100, LowBytes: 100}); err == nil {
		t.Fatal("LowBytes >= HighBytes accepted")
	}
	if _, err := NewTargetTracking(TargetTrackingConfig{}); err == nil {
		t.Fatal("zero TargetShedRate accepted")
	}
	if _, err := NewTargetTracking(TargetTrackingConfig{TargetShedRate: 1, DownFraction: 1.5}); err == nil {
		t.Fatal("DownFraction >= 1 accepted")
	}
}
