package autoscale

import (
	"sync"
	"time"
)

// Event is one scale action for the debug event ring.
type Event struct {
	// When is the tick time of the action.
	When time.Time `json:"when"`
	// Action is "up" or "down".
	Action string `json:"action"`
	// From and To are the fleet sizes before and after the action
	// (counting only what this action actually launched or retired).
	From int `json:"from"`
	To   int `json:"to"`
	// Reason is the winning policy's explanation.
	Reason string `json:"reason"`
	// Epoch is the registry ownership epoch observed at the tick; the
	// resulting handoff bumps it.
	Epoch uint64 `json:"epoch"`
}

// State is one autoscaler's snapshot for /debug/jbs/autoscale.
type State struct {
	// Name identifies the autoscaler.
	Name string `json:"name"`
	// Min and Max are the configured fleet bounds.
	Min int `json:"min"`
	Max int `json:"max"`
	// Live, Pending and Desired describe the last tick: observed fleet
	// (pending launches included), the pending subset, and the policy
	// target.
	Live    int `json:"live"`
	Pending int `json:"pending,omitempty"`
	Desired int `json:"desired"`
	// ShedRate, QueuedBytes and Pressure are the last tick's signals.
	ShedRate    float64 `json:"shed_rate"`
	QueuedBytes int64   `json:"queued_bytes"`
	Pressure    float64 `json:"pressure"`
	// LastReason is the winning policy explanation of the last tick.
	LastReason string `json:"last_reason,omitempty"`
	// Managed lists the instance IDs this autoscaler launched and still
	// owns, oldest first.
	Managed []string `json:"managed,omitempty"`
	// Events is the recent scale-event ring, oldest first.
	Events []Event `json:"events,omitempty"`
}

// Source is an autoscaler that can snapshot its state for the debug
// endpoint.
type Source interface {
	AutoscaleState() State
}

// registration wraps a Source so unregistration can compare by token
// pointer — Source dynamic types need not be comparable.
type registration struct{ src Source }

// sources is the process-wide registry behind Snapshot.
var (
	sourcesMu sync.Mutex
	sources   []*registration
)

// Register adds an autoscaler to the process-wide debug registry and
// returns a function that removes it (call it on Close).
func Register(s Source) (unregister func()) {
	r := &registration{src: s}
	sourcesMu.Lock()
	sources = append(sources, r)
	sourcesMu.Unlock()
	return func() {
		sourcesMu.Lock()
		defer sourcesMu.Unlock()
		for i, v := range sources {
			if v == r {
				sources = append(sources[:i], sources[i+1:]...)
				return
			}
		}
	}
}

// Snapshot collects the State of every registered autoscaler, in
// registration order.
func Snapshot() []State {
	sourcesMu.Lock()
	regs := make([]*registration, len(sources))
	copy(regs, sources)
	sourcesMu.Unlock()
	out := make([]State, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.src.AutoscaleState())
	}
	return out
}
