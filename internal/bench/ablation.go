package bench

import (
	"repro/internal/cluster"
)

// ablationGB is the ablation operating point: 256GB is disk-bound, where
// the supplier's disk-side mechanisms matter most.
const ablationGB = 256

// Ablation isolates the contribution of each JBS design choice called out
// in DESIGN.md, at the disk-bound Terasort operating point on IPoIB.
func Ablation() *Report {
	rep := &Report{
		ID:     "ablation",
		Title:  "JBS design-choice ablations, 256GB Terasort on IPoIB",
		Header: []string{"Configuration", "Execution time (s)", "Delta vs JBS default"},
	}
	base := simulate(teraspec(ablationGB), cluster.JBSOnIPoIB)
	add := func(name string, t float64) {
		rep.AddRow(name, secs(t), pct(gain(base.ExecutionTime, t)*-1))
	}
	rep.AddRow("JBS default (batched prefetch, DataCache, levitated merge)",
		secs(base.ExecutionTime), "-")

	// (1) Pipelined prefetching without request grouping: every disk read
	// is an interleaved singleton instead of a near-sequential batch.
	nogroup := teraspec(ablationGB)
	nogroup.PrefetchBatch = 1
	add("no request grouping (prefetch batch = 1)", simulate(nogroup, cluster.JBSOnIPoIB).ExecutionTime)

	// (2) A starved DataCache: prefetching cannot run ahead of
	// transmission, so the pipeline loses its overlap.
	nocache := teraspec(ablationGB)
	nocache.DataCacheBytes = 8 << 20
	add("starved DataCache (8MB)", simulate(nocache, cluster.JBSOnIPoIB).ExecutionTime)

	// (3) Tiny transport buffers: per-request overheads dominate.
	smallbuf := teraspec(ablationGB)
	smallbuf.BufferSize = 8 << 10
	add("8KB transport buffers", simulate(smallbuf, cluster.JBSOnIPoIB).ExecutionTime)

	// (4) Stock Hadoop with the reduce-side spill disabled (unbounded
	// shuffle memory): isolates the network-levitated merge benefit from
	// the JVM-bypass benefit.
	nospill := teraspec(ablationGB)
	nospill.ShuffleMemPerReducer = 1 << 60
	h := simulate(teraspec(ablationGB), cluster.HadoopOnIPoIB)
	hNoSpill := simulate(nospill, cluster.HadoopOnIPoIB)
	rep.AddRow("Hadoop default (spill merge)", secs(h.ExecutionTime),
		pct(-gain(base.ExecutionTime, h.ExecutionTime)))
	rep.AddRow("Hadoop without reduce-side spills", secs(hNoSpill.ExecutionTime),
		pct(-gain(base.ExecutionTime, hNoSpill.ExecutionTime)))

	rep.AddNote("Spill avoidance contributes %s of Hadoop's gap; the rest is the JVM-bypass data path",
		pct(gain(h.ExecutionTime, hNoSpill.ExecutionTime)/gain(h.ExecutionTime, base.ExecutionTime)))
	rep.AddNote("Supplier-side ablations (grouping, DataCache) barely move the makespan here: " +
		"JBS's pipelined shuffle completes within the map-phase window, so its disk " +
		"mechanisms have slack — the critical path is spill avoidance plus the reduce tail")
	return rep
}
