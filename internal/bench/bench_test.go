package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	wantIDs := []string{
		"table1", "fig2a", "fig2b", "fig2c", "fig7a", "fig7b", "fig8",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig10a", "fig10b", "fig10c",
		"fig11", "fig12a", "fig12b", "ablation",
	}
	if len(exps) != len(wantIDs) {
		t.Fatalf("registered %d experiments, want %d", len(exps), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("FIG7A")
	if err != nil || e.ID != "fig7a" {
		t.Fatalf("ByID case-insensitive lookup failed: %v %v", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id found")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.AddNote("note %d", 7)
	s := r.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "333", "-- note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered report missing %q:\n%s", want, s)
		}
	}
}

func TestTableIReport(t *testing.T) {
	rep := TableI()
	if len(rep.Rows) != 8 {
		t.Fatalf("Table I rows = %d, want 8", len(rep.Rows))
	}
	found := false
	for _, row := range rep.Rows {
		if row[0] == "JBS on RDMA" && row[1] == "RDMA" && row[2] == "InfiniBand" {
			found = true
		}
	}
	if !found {
		t.Fatal("JBS on RDMA row missing or wrong")
	}
}

func TestFig2Reports(t *testing.T) {
	a := Fig2a()
	if len(a.Rows) != 5 {
		t.Fatalf("fig2a rows = %d", len(a.Rows))
	}
	b := Fig2b()
	if len(b.Rows) != 9 {
		t.Fatalf("fig2b rows = %d", len(b.Rows))
	}
	c := Fig2c()
	if len(c.Rows) != 10 {
		t.Fatalf("fig2c rows = %d", len(c.Rows))
	}
	for _, rep := range []*Report{a, b, c} {
		if len(rep.Notes) == 0 {
			t.Errorf("%s has no headline note", rep.ID)
		}
	}
}

// parseCell reads a numeric cell.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig7aShape(t *testing.T) {
	rep := Fig7a()
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 input sizes", len(rep.Rows))
	}
	// Columns: size, HadoopIPoIB, HadoopSDP, JBSIPoIB. Times grow with
	// input and JBS wins from 32GB upward.
	var prevH float64
	for i, row := range rep.Rows {
		h := parseCell(t, row[1])
		j := parseCell(t, row[3])
		if h < prevH {
			t.Errorf("row %d: Hadoop time %f not growing", i, h)
		}
		prevH = h
		if i >= 1 && j >= h {
			t.Errorf("row %d (%sGB): JBS (%f) not faster than Hadoop (%f)", i, row[0], j, h)
		}
	}
	if len(rep.Notes) == 0 {
		t.Fatal("no average-improvement notes")
	}
}

func TestFig11Shape(t *testing.T) {
	rep := Fig11()
	if len(rep.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 buffer sizes", len(rep.Rows))
	}
	first := parseCell(t, rep.Rows[0][1]) // IPoIB at 8KB
	knee := parseCell(t, rep.Rows[4][1])  // IPoIB at 128KB
	if knee >= first {
		t.Fatalf("no improvement 8KB (%f) -> 128KB (%f)", first, knee)
	}
}

func TestAblationReport(t *testing.T) {
	rep := Ablation()
	if len(rep.Rows) < 6 {
		t.Fatalf("ablation rows = %d", len(rep.Rows))
	}
	base := parseCell(t, rep.Rows[0][1])
	// Supplier-side ablations must never help (small deltas are expected:
	// the pipelined shuffle has slack inside the map-phase window).
	for _, row := range rep.Rows[1:4] {
		if v := parseCell(t, row[1]); v < base*0.99 {
			t.Errorf("ablated config %q (%f) meaningfully faster than full JBS (%f)", row[0], v, base)
		}
	}
	// 8KB buffers must hurt clearly (the Fig. 11 effect).
	if v := parseCell(t, rep.Rows[3][1]); v < base*1.05 {
		t.Errorf("8KB-buffer ablation (%f) should be clearly slower than %f", v, base)
	}
	// Disabling Hadoop's spills closes part — not all — of the gap.
	h := parseCell(t, rep.Rows[4][1])
	hNoSpill := parseCell(t, rep.Rows[5][1])
	if !(base < hNoSpill && hNoSpill < h) {
		t.Errorf("spill decomposition broken: jbs=%f < hadoop-nospill=%f < hadoop=%f expected",
			base, hNoSpill, h)
	}
}

func TestFunctionalComparison(t *testing.T) {
	cfg := DefaultFunctionalConfig()
	cfg.Lines = 400 // keep the test quick
	rep, err := Functional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 providers", len(rep.Rows))
	}
	// Column 4 is spill events: baseline spills (tiny budget), JBS never.
	if rep.Rows[0][3] == "0" {
		t.Error("hadoop-http reported zero spills despite tiny budget")
	}
	for _, row := range rep.Rows[1:] {
		if row[3] != "0" || row[4] != "0" {
			t.Errorf("%s spilled: %v", row[0], row)
		}
	}
	// All providers shuffled the same payload volume.
	if rep.Rows[0][2] != rep.Rows[1][2] || rep.Rows[1][2] != rep.Rows[2][2] {
		t.Errorf("shuffled bytes differ across providers: %v %v %v",
			rep.Rows[0][2], rep.Rows[1][2], rep.Rows[2][2])
	}
}

func TestFunctionalWordCount(t *testing.T) {
	cfg := FunctionalConfig{Benchmark: "WordCount", Lines: 300, Nodes: 2, Reducers: 2, Seed: 7}
	providers, err := FunctionalProviders()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFunctional(cfg, providers["jbs-tcp"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.OutputRecords == 0 {
		t.Fatal("no output records")
	}
	if res.Counters.SpilledBytes != 0 {
		t.Fatal("JBS spilled")
	}
}

func TestRunFunctionalUnknownBenchmark(t *testing.T) {
	providers, _ := FunctionalProviders()
	_, err := RunFunctional(FunctionalConfig{Benchmark: "nope", Lines: 1, Nodes: 1, Reducers: 1},
		providers["jbs-tcp"])
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// benchmarkFunctional runs one real-engine job per iteration under the
// named provider, reporting allocations so shuffle-path regressions show
// up as allocs/op.
func benchmarkFunctional(b *testing.B, providerName string) {
	b.Helper()
	cfg := DefaultFunctionalConfig()
	cfg.Lines = 500
	providers, err := FunctionalProviders()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunFunctional(cfg, providers[providerName])
		if err != nil {
			b.Fatal(err)
		}
		if res.Counters.ShuffledBytes == 0 {
			b.Fatal("no shuffle traffic")
		}
	}
}

func BenchmarkFunctionalJBSTCP(b *testing.B)  { benchmarkFunctional(b, "jbs-tcp") }
func BenchmarkFunctionalJBSRDMA(b *testing.B) { benchmarkFunctional(b, "jbs-rdma") }

func TestHelperFormatting(t *testing.T) {
	if secs(1.25) != "1.2" && secs(1.25) != "1.3" {
		t.Errorf("secs = %q", secs(1.25))
	}
	if ms(0.001) != "1.00" {
		t.Errorf("ms = %q", ms(0.001))
	}
	if pct(0.5) != "50.0%" {
		t.Errorf("pct = %q", pct(0.5))
	}
	if g := gain(100, 80); g < 0.199 || g > 0.201 {
		t.Errorf("gain = %f", g)
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Errorf("mean = %f", mean([]float64{1, 2, 3}))
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{ID: "x", Header: []string{"a", "b"}}
	r.AddRow("1", "two, quoted \"cell\"")
	got := r.CSV()
	want := "a,b\n1,\"two, quoted \"\"cell\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
