package bench

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flow"
	"repro/internal/mof"
	"repro/internal/registry"
	"repro/internal/transport"
)

// ElasticConfig sizes the elastic-fleet scenario: a registry plus
// jbsautoscalerd are spawned as real processes, the autoscaler launches
// its own jbssupplierd fleet, and two in-process tenants (a paced light
// job and a wide-window heavy job) drive the fleet 1 -> MaxFleet -> 1
// while every fetched byte is verified against the fixture.
type ElasticConfig struct {
	// Tasks x Parts segments of SegBytes each form the fixture grid the
	// light tenant fetches and byte-verifies.
	Tasks    int
	Parts    int
	SegBytes int
	// HeavyTasks x Parts segments of SegBytes*Skew each form the heavy
	// tenant's grid. Skewed segments comparable to the admission budget
	// are what saturate the ledger: one resident heavy segment plus any
	// concurrent request overflows the limit and sheds — the scale-up
	// signal (same mechanism the overload scenario measures).
	HeavyTasks int
	Skew       int
	// Seed pins the fixture contents.
	Seed uint64
	// BaselineRounds is how many grid passes the light tenant makes
	// before the overload starts (the fleet=1 latency reference).
	BaselineRounds int
	// SettleRounds is how many grid passes the light tenant makes after
	// the fleet reaches MaxFleet (the scaled-out latency sample).
	SettleRounds int
	// MaxFleet caps the autoscaler (-max); the scenario requires the
	// seeded overload to reach it.
	MaxFleet int
	// AdmitBytes is each supplier's admission budget — small enough that
	// the heavy tenant sheds continuously, which is the scale-up signal.
	AdmitBytes int64
	// TargetShedRate is the autoscaler's per-supplier shed-rate target.
	TargetShedRate float64
	// HeavyWindow is the heavy tenant's AIMD window ceiling.
	HeavyWindow int
	// LeaseTTL is the registry lease TTL for the fleet.
	LeaseTTL time.Duration
	// Timeout bounds the whole scenario (build included).
	Timeout time.Duration
	// Log, when set, receives per-event progress lines.
	Log func(format string, args ...any)
}

// DefaultElasticConfig returns the laptop-scale scenario.
func DefaultElasticConfig() ElasticConfig {
	return ElasticConfig{
		Tasks:          6,
		Parts:          4,
		SegBytes:       32 << 10,
		HeavyTasks:     4,
		Skew:           10,
		Seed:           777,
		BaselineRounds: 4,
		SettleRounds:   6,
		MaxFleet:       3,
		// Sized so one resident skewed segment nearly fills the budget:
		// the heavy tenant's window then sheds continuously, the signal
		// the target-tracking policy scales on.
		AdmitBytes:     128 << 10,
		TargetShedRate: 20,
		HeavyWindow:    16,
		LeaseTTL:       750 * time.Millisecond,
		Timeout:        5 * time.Minute,
	}
}

// ShortElasticConfig returns the CI smoke: a smaller grid, fewer
// measurement passes, same 1 -> 3 -> 1 fleet path.
func ShortElasticConfig() ElasticConfig {
	cfg := DefaultElasticConfig()
	cfg.Tasks = 3
	cfg.Parts = 3
	cfg.SegBytes = 16 << 10
	cfg.BaselineRounds = 2
	cfg.SettleRounds = 3
	return cfg
}

// elasticSample is one light-tenant fetch latency tagged with the live
// fleet size observed when it completed.
type elasticSample struct {
	fleet int
	dur   time.Duration
}

// fleetWatch polls the registry membership in the background so the
// sampler can tag latencies with the fleet size and the scenario can
// wait on transitions without blocking the tenants.
type fleetWatch struct {
	c    *registry.Client
	cur  atomic.Int32
	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

func newFleetWatch(regAddr string) *fleetWatch {
	w := &fleetWatch{
		c:    registry.NewClient(regAddr),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(w.done)
		ticker := time.NewTicker(30 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
			}
			if live, err := liveSupplierCount(w.c); err == nil {
				w.cur.Store(int32(live))
			}
		}
	}()
	return w
}

func (w *fleetWatch) live() int { return int(w.cur.Load()) }

// waitFor blocks until the live fleet reaches want.
func (w *fleetWatch) waitFor(want int, deadline time.Time) error {
	for w.live() != want {
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet never reached %d live suppliers (at %d)", want, w.live())
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}

func (w *fleetWatch) close() {
	close(w.stop)
	w.wg.Wait()
	w.c.Close()
}

// newElasticMerger builds a registry-resolving merger for one tenant.
func newElasticMerger(regAddr string, window int, fc *flow.Config) (*core.NetMerger, func(), error) {
	rc := registry.NewClient(regAddr)
	resolver := registry.NewResolver(rc, 20*time.Millisecond)
	m, err := core.NewNetMerger(core.MergerConfig{
		Transport:     transport.NewTCP(),
		WindowPerNode: window,
		MaxRetries:    16,
		Flow:          fc,
		Resolver: func(spec core.FetchSpec) (string, error) {
			return resolver.Resolve(spec.MapTask)
		},
	})
	if err != nil {
		rc.Close()
		return nil, nil, err
	}
	return m, func() { m.Close(); rc.Close() }, nil
}

// loadGridReference reads every fixture segment from disk — the
// byte-identity reference for the light tenant.
func loadGridReference(dir string, tasks, parts int) (map[string][]byte, error) {
	ref := make(map[string][]byte, tasks*parts)
	for ti := 0; ti < tasks; ti++ {
		task := fmt.Sprintf("m-%05d", ti)
		dataPath := filepath.Join(dir, task+".data")
		ix, err := mof.ReadIndex(filepath.Join(dir, task+".index"))
		if err != nil {
			return nil, err
		}
		for p := 0; p < parts; p++ {
			e, err := ix.Entry(p)
			if err != nil {
				return nil, err
			}
			seg, err := mof.ReadSegmentBytes(dataPath, e)
			if err != nil {
				return nil, err
			}
			ref[fmt.Sprintf("%s/%d", task, p)] = seg
		}
	}
	return ref, nil
}

// fetchAutoscaleCounters scrapes the named counters from an autoscaler
// debug endpoint's Prometheus text exposition.
func fetchAutoscaleCounters(debugAddr string, names ...string) (map[string]int64, error) {
	resp, err := http.Get("http://" + debugAddr + "/debug/jbs/metrics")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := make(map[string]int64, len(names))
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 || !want[fields[0]] {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable metric line %q: %w", sc.Text(), err)
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}

// Elastic runs the elastic-fleet scenario: real jbsregistryd and
// jbsautoscalerd processes, a supplier fleet the autoscaler owns
// end-to-end, and a seeded overload that must scale the fleet
// 1 -> MaxFleet and back to 1 with zero fetch errors, every segment
// byte-verified, and every retirement a graceful drain. It is the
// acceptance run behind `make elastic-smoke`.
func Elastic(cfg ElasticConfig) (*Report, error) {
	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	logf := cfg.Log

	work, err := os.MkdirTemp("", "jbs-elastic-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(work)

	buildStart := time.Now()
	bins, err := buildDaemons(work, "jbsregistryd", "jbssupplierd", "jbsautoscalerd")
	if err != nil {
		return nil, err
	}
	buildDur := time.Since(buildStart)

	fixture := filepath.Join(work, "mofs")
	if err := os.Mkdir(fixture, 0o755); err != nil {
		return nil, err
	}
	if err := daemon.WriteFixture(fixture, cfg.Tasks, cfg.Parts, cfg.SegBytes, cfg.Seed); err != nil {
		return nil, fmt.Errorf("write fixture: %w", err)
	}
	// The heavy tenant's skewed grid lives beside the light fixture in
	// the same MOF dir; every launched supplier can serve both.
	heavyTasks := make([]string, cfg.HeavyTasks)
	for i := range heavyTasks {
		task := fmt.Sprintf("h-%05d", i)
		heavyTasks[i] = task
		if err := writeSizedMOF(filepath.Join(fixture, task+".data"),
			filepath.Join(fixture, task+".index"), cfg.Parts, cfg.SegBytes*cfg.Skew); err != nil {
			return nil, fmt.Errorf("write heavy fixture: %w", err)
		}
	}
	reference, err := loadGridReference(fixture, cfg.Tasks, cfg.Parts)
	if err != nil {
		return nil, err
	}

	reg, regAddr, err := startRegistry(logf, bins["jbsregistryd"], cfg.LeaseTTL)
	if err != nil {
		return nil, err
	}
	defer func() { reg.kill(); reg.wait() }()
	if logf != nil {
		logf("elastic: registry at %s", regAddr)
	}

	scaler, err := startProc(logf, "jbsautoscalerd", bins["jbsautoscalerd"],
		"-registry", regAddr,
		"-supplier-bin", bins["jbssupplierd"],
		"-mof-dir", fixture,
		"-min", "1",
		"-max", fmt.Sprint(cfg.MaxFleet),
		"-interval", "100ms",
		"-admit-bytes", fmt.Sprint(cfg.AdmitBytes),
		"-heartbeat", "100ms",
		"-target-shed-rate", fmt.Sprint(cfg.TargetShedRate),
		"-quiet-for", "1s",
		"-up-cooldown", "300ms",
		"-down-cooldown", "500ms",
		"-launch-grace", "10s",
		"-debug", "127.0.0.1:0",
		"-quiet")
	if err != nil {
		return nil, err
	}
	defer func() { scaler.kill(); scaler.wait() }()
	line, err := scaler.expectLine("debug at http://")
	if err != nil {
		return nil, err
	}
	scalerDebug := strings.TrimPrefix(line[strings.Index(line, "http://"):], "http://")
	scalerDebug = strings.TrimSuffix(scalerDebug, "/debug/jbs")
	if _, err := scaler.expectLine("steering fleet"); err != nil {
		return nil, err
	}

	watch := newFleetWatch(regAddr)
	defer watch.close()
	if err := watch.waitFor(1, deadline); err != nil {
		return nil, fmt.Errorf("autoscaler never launched the floor supplier: %w", err)
	}
	if logf != nil {
		logf("elastic: floor supplier live after %v", time.Since(start).Round(time.Millisecond))
	}

	lightM, closeLight, err := newElasticMerger(regAddr, 4, &flow.Config{WindowStart: 2, WindowMax: 4})
	if err != nil {
		return nil, err
	}
	defer closeLight()
	heavyM, closeHeavy, err := newElasticMerger(regAddr, cfg.HeavyWindow, &flow.Config{WindowStart: 4, WindowMax: cfg.HeavyWindow})
	if err != nil {
		return nil, err
	}
	defer closeHeavy()

	specs := make([]core.FetchSpec, 0, cfg.Tasks*cfg.Parts)
	for ti := 0; ti < cfg.Tasks; ti++ {
		for p := 0; p < cfg.Parts; p++ {
			specs = append(specs, core.FetchSpec{MapTask: fmt.Sprintf("m-%05d", ti), Partition: p})
		}
	}
	heavySpecs := make([]core.FetchSpec, 0, cfg.HeavyTasks*cfg.Parts)
	for _, task := range heavyTasks {
		for p := 0; p < cfg.Parts; p++ {
			heavySpecs = append(heavySpecs, core.FetchSpec{MapTask: task, Partition: p})
		}
	}
	verify := func(spec core.FetchSpec, data []byte) error {
		want := reference[fmt.Sprintf("%s/%d", spec.MapTask, spec.Partition)]
		if !bytes.Equal(data, want) {
			return fmt.Errorf("segment %s/%d: got %d bytes, want %d (corrupt)",
				spec.MapTask, spec.Partition, len(data), len(want))
		}
		return nil
	}
	// lightPass fetches the grid one segment at a time, verifying bytes
	// and tagging each latency with the fleet size that served it.
	var samples []elasticSample
	lightPass := func() error {
		for _, spec := range specs {
			t0 := time.Now()
			if err := lightM.Fetch([]core.FetchSpec{spec}, verify); err != nil {
				return fmt.Errorf("light fetch %s/%d: %w", spec.MapTask, spec.Partition, err)
			}
			samples = append(samples, elasticSample{fleet: watch.live(), dur: time.Since(t0)})
		}
		return nil
	}

	// Phase 1: quiet baseline on the floor fleet.
	baseFrom := len(samples)
	for i := 0; i < cfg.BaselineRounds; i++ {
		if err := lightPass(); err != nil {
			return nil, err
		}
	}
	baseline := samples[baseFrom:len(samples):len(samples)]
	if logf != nil {
		logf("elastic: baseline done (%d samples, fleet=%d)", len(baseline), watch.live())
	}

	// Phase 2: seeded overload. The heavy tenant hammers the fleet with
	// a wide window against a small admission budget; the shed rate is
	// the autoscaler's scale-up signal.
	heavyStop := make(chan struct{})
	heavyErr := make(chan error, 1)
	var heavyWG sync.WaitGroup
	heavyWG.Add(1)
	go func() {
		defer heavyWG.Done()
		for {
			select {
			case <-heavyStop:
				return
			default:
			}
			if err := heavyM.Fetch(heavySpecs, func(core.FetchSpec, []byte) error { return nil }); err != nil {
				select {
				case <-heavyStop: // teardown races are expected
				default:
					heavyErr <- fmt.Errorf("heavy fetch failed mid-run: %w", err)
				}
				return
			}
		}
	}()
	stopHeavy := func() {
		select {
		case <-heavyStop:
		default:
			close(heavyStop)
		}
		heavyWG.Wait()
	}
	defer stopHeavy()

	overloadStart := time.Now()
	overloadFrom := len(samples)
	// Keep the light tenant measuring while the fleet grows.
	for pass := 0; watch.live() < cfg.MaxFleet; pass++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fleet never reached %d under overload (at %d after %v)",
				cfg.MaxFleet, watch.live(), time.Since(overloadStart).Round(time.Millisecond))
		}
		select {
		case err := <-heavyErr:
			return nil, err
		default:
		}
		if err := lightPass(); err != nil {
			return nil, err
		}
		if logf != nil && pass%10 == 0 {
			logf("elastic: overload pass %d, fleet=%d", pass, watch.live())
		}
	}
	scaleUpDur := time.Since(overloadStart)
	if logf != nil {
		logf("elastic: fleet reached %d after %v of overload", cfg.MaxFleet, scaleUpDur.Round(time.Millisecond))
	}
	// Phase 3: measure the scaled-out fleet.
	for i := 0; i < cfg.SettleRounds; i++ {
		select {
		case err := <-heavyErr:
			return nil, err
		default:
		}
		if err := lightPass(); err != nil {
			return nil, err
		}
	}
	overload := samples[overloadFrom:len(samples):len(samples)]
	stopHeavy()
	select {
	case err := <-heavyErr:
		return nil, err
	default:
	}

	// Phase 4: the overload is gone; the autoscaler must drain back to
	// the floor, every retirement through the graceful handoff path.
	settleStart := time.Now()
	if err := watch.waitFor(1, deadline); err != nil {
		return nil, fmt.Errorf("fleet never drained back to the floor: %w", err)
	}
	scaleDownDur := time.Since(settleStart)
	if logf != nil {
		logf("elastic: fleet back to 1 after %v of quiet", scaleDownDur.Round(time.Millisecond))
	}
	// One more verified pass proves the surviving supplier serves the
	// full grid — nothing was lost across two graceful drains.
	finalFrom := len(samples)
	if err := lightPass(); err != nil {
		return nil, fmt.Errorf("post-drain verification: %w", err)
	}
	_ = samples[finalFrom:]

	if st := lightM.Stats(); st.Errors != 0 {
		return nil, fmt.Errorf("light merger surfaced %d errors", st.Errors)
	}
	lightStats := lightM.Stats()
	heavyStats := heavyM.Stats()
	if heavyStats.Errors != 0 {
		return nil, fmt.Errorf("heavy merger surfaced %d errors", heavyStats.Errors)
	}

	// The autoscaler's own account, scraped before it exits: at least
	// one scale-up and one scale-down, zero launch or retire failures
	// (a retire failure is a supplier that did not drain to exit 0).
	counters, err := fetchAutoscaleCounters(scalerDebug,
		"jbs_autoscale_scale_ups_total",
		"jbs_autoscale_scale_downs_total",
		"jbs_autoscale_launch_failures_total",
		"jbs_autoscale_retire_failures_total")
	if err != nil {
		return nil, fmt.Errorf("scrape autoscaler: %w", err)
	}
	if counters["jbs_autoscale_scale_ups_total"] == 0 || counters["jbs_autoscale_scale_downs_total"] == 0 {
		return nil, fmt.Errorf("autoscaler recorded no full scale cycle: %v", counters)
	}
	if counters["jbs_autoscale_launch_failures_total"] != 0 || counters["jbs_autoscale_retire_failures_total"] != 0 {
		return nil, fmt.Errorf("autoscaler recorded launch/retire failures: %v", counters)
	}

	// Graceful teardown: SIGTERM retires the managed fleet (drained, not
	// killed) and both daemons must exit 0.
	if err := scaler.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return nil, fmt.Errorf("SIGTERM jbsautoscalerd: %w", err)
	}
	if _, err := scaler.expectLine("fleet retired, exiting"); err != nil {
		return nil, err
	}
	if err := scaler.wait(); err != nil {
		return nil, fmt.Errorf("jbsautoscalerd did not exit cleanly: %w", err)
	}
	if err := reg.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return nil, fmt.Errorf("SIGTERM jbsregistryd: %w", err)
	}
	if err := reg.wait(); err != nil {
		return nil, fmt.Errorf("jbsregistryd did not shut down cleanly: %w", err)
	}

	// Split the overload samples by the fleet that served them.
	var before, after []time.Duration
	for _, s := range overload {
		if s.fleet < cfg.MaxFleet {
			before = append(before, s.dur)
		} else {
			after = append(after, s.dur)
		}
	}
	baseDur := make([]time.Duration, len(baseline))
	for i, s := range baseline {
		baseDur[i] = s.dur
	}

	rep := &Report{
		ID:     "elastic",
		Title:  fmt.Sprintf("Elastic fleet: autoscaler scales 1 -> %d under seeded overload and drains back", cfg.MaxFleet),
		Header: []string{"phase", "result"},
	}
	rep.AddRow("build daemons", buildDur.Round(time.Millisecond).String())
	rep.AddRow("fixture", fmt.Sprintf("%dx%d segments x %d B (seed %d)", cfg.Tasks, cfg.Parts, cfg.SegBytes, cfg.Seed))
	rep.AddRow("light baseline (fleet=1)", fmt.Sprintf("p50 %.3f ms, p99 %.3f ms (%d samples)",
		percentile(baseDur, 0.50).Seconds()*1e3, percentile(baseDur, 0.99).Seconds()*1e3, len(baseDur)))
	if len(before) > 0 {
		rep.AddRow("light under overload, pre-scale", fmt.Sprintf("p99 %.3f ms (%d samples)",
			percentile(before, 0.99).Seconds()*1e3, len(before)))
	}
	rep.AddRow(fmt.Sprintf("light under overload, fleet=%d", cfg.MaxFleet), fmt.Sprintf("p99 %.3f ms (%d samples)",
		percentile(after, 0.99).Seconds()*1e3, len(after)))
	rep.AddRow("scale-up", fmt.Sprintf("1 -> %d in %v (%d scale-up events)",
		cfg.MaxFleet, scaleUpDur.Round(time.Millisecond), counters["jbs_autoscale_scale_ups_total"]))
	rep.AddRow("scale-down", fmt.Sprintf("%d -> 1 in %v after quiet (%d events, 0 retire failures)",
		cfg.MaxFleet, scaleDownDur.Round(time.Millisecond), counters["jbs_autoscale_scale_downs_total"]))
	rep.AddRow("tenant health", fmt.Sprintf("0 fetch errors; light: %d retries %d sheds %d rerouted; heavy: %d retries %d sheds %d rerouted",
		lightStats.Retries, lightStats.Sheds, lightStats.Rerouted,
		heavyStats.Retries, heavyStats.Sheds, heavyStats.Rerouted))
	rep.AddNote("every light fetch byte-verified across the full 1 -> %d -> 1 fleet path; all daemons exited 0", cfg.MaxFleet)
	return rep, nil
}
