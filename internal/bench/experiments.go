package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// gb converts gigabytes to bytes.
func gb(n int64) int64 { return n << 30 }

// teraspec builds the default Terasort spec for an input size.
func teraspec(inputGB int64) cluster.JobSpec {
	return cluster.DefaultSpec(cluster.TerasortWorkload(), gb(inputGB))
}

func simulate(spec cluster.JobSpec, tc cluster.TestCase) cluster.RunResult {
	r, err := cluster.Simulate(spec, tc)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err)) // specs are internally built
	}
	return r
}

// TableI regenerates the test-case description table.
func TableI() *Report {
	rep := &Report{
		ID:     "table1",
		Title:  "Test Case Description",
		Header: []string{"Test Cases", "Transport Protocol", "Network"},
	}
	for _, tc := range cluster.TableI() {
		rep.AddRow(tc.Name(), tc.TransportName(), tc.Network())
	}
	return rep
}

// Fig2a regenerates the disk I/O motivation experiment: average MOF read
// time versus concurrent HttpServlets for the three access methods.
func Fig2a() *Report {
	rep := &Report{
		ID:     "fig2a",
		Title:  "Average MOF read time (ms) vs concurrent HttpServlets, 128MB segments",
		Header: []string{"Servlets", "Java (stream read)", "Native C (read)", "Native C (mmap)"},
	}
	const seg = 128 << 20
	var ratios []float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		j := cluster.MOFReadBench(n, seg, cluster.JavaStreamRead)
		r := cluster.MOFReadBench(n, seg, cluster.NativeRead)
		m := cluster.MOFReadBench(n, seg, cluster.NativeMmap)
		ratios = append(ratios, j/r)
		rep.AddRow(fmt.Sprintf("%d", n), ms(j), ms(r), ms(m))
	}
	rep.AddNote("Java stream reads average %.1fx slower than native C read (paper: 3.1x)", mean(ratios))
	return rep
}

// Fig2b regenerates the single-stream shuffle motivation experiment.
func Fig2b() *Report {
	rep := &Report{
		ID:     "fig2b",
		Title:  "Segment shuffle time (ms), one HttpServlet to one MOFCopier",
		Header: []string{"Segment (MB)", "Java (1GigE)", "Native C (1GigE)", "Java (InfiniBand)", "Native C (InfiniBand)"},
	}
	var ibRatios []float64
	for _, mbSize := range []int64{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		size := mbSize << 20
		jg := cluster.SegmentShuffleBench(size, simnet.TCP1GigE, simcpu.JavaJVM)
		ng := cluster.SegmentShuffleBench(size, simnet.TCP1GigE, simcpu.NativeC)
		ji := cluster.SegmentShuffleBench(size, simnet.IPoIB, simcpu.JavaJVM)
		ni := cluster.SegmentShuffleBench(size, simnet.IPoIB, simcpu.NativeC)
		ibRatios = append(ibRatios, ji/ni)
		rep.AddRow(fmt.Sprintf("%d", mbSize), ms(jg), ms(ng), ms(ji), ms(ni))
	}
	rep.AddNote("On InfiniBand, Java shuffling averages %.1fx slower than native C (paper: up to 3.4x); hidden on 1GigE", mean(ibRatios))
	return rep
}

// Fig2c regenerates the converging shuffle motivation experiment.
func Fig2c() *Report {
	rep := &Report{
		ID:     "fig2c",
		Title:  "Segments shuffle time (ms), N nodes to one ReduceTask, 256MB per node",
		Header: []string{"Nodes", "Java (1GigE)", "Native C (1GigE)", "Java (InfiniBand)", "Native C (InfiniBand)"},
	}
	const seg = 256 << 20
	var ibRatios []float64
	for n := 2; n <= 20; n += 2 {
		jg := cluster.ConvergingShuffleBench(n, seg, simnet.TCP1GigE, simcpu.JavaJVM)
		ng := cluster.ConvergingShuffleBench(n, seg, simnet.TCP1GigE, simcpu.NativeC)
		ji := cluster.ConvergingShuffleBench(n, seg, simnet.IPoIB, simcpu.JavaJVM)
		ni := cluster.ConvergingShuffleBench(n, seg, simnet.IPoIB, simcpu.NativeC)
		ibRatios = append(ibRatios, ji/ni)
		rep.AddRow(fmt.Sprintf("%d", n), ms(jg), ms(ng), ms(ji), ms(ni))
	}
	rep.AddNote("On InfiniBand, JVM imposes %.1fx overhead for N-to-1 shuffling (paper: above 2.5x)", mean(ibRatios))
	return rep
}

// inputSweep runs the Fig. 7/8 style input-size sweeps.
func inputSweep(id, title string, cases []cluster.TestCase) *Report {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: append([]string{"Input (GB)"}, caseNames(cases)...),
	}
	sizes := []int64{16, 32, 64, 128, 256}
	results := make(map[string][]float64)
	for _, sz := range sizes {
		row := []string{fmt.Sprintf("%d", sz)}
		for _, tc := range cases {
			r := simulate(teraspec(sz), tc)
			row = append(row, secs(r.ExecutionTime))
			results[tc.Name()] = append(results[tc.Name()], r.ExecutionTime)
		}
		rep.AddRow(row...)
	}
	// Average pairwise improvements of later cases vs the first.
	base := results[cases[0].Name()]
	for _, tc := range cases[1:] {
		var gains []float64
		for i, t := range results[tc.Name()] {
			gains = append(gains, gain(base[i], t))
		}
		rep.AddNote("%s vs %s: average reduction %s", tc.Name(), cases[0].Name(), pct(mean(gains)))
	}
	return rep
}

func caseNames(cases []cluster.TestCase) []string {
	var out []string
	for _, tc := range cases {
		out = append(out, tc.Name())
	}
	return out
}

// Fig7a regenerates the InfiniBand-environment Terasort sweep.
func Fig7a() *Report {
	return inputSweep("fig7a", "Terasort execution time (s), InfiniBand environment",
		[]cluster.TestCase{cluster.HadoopOnIPoIB, cluster.HadoopOnSDP, cluster.JBSOnIPoIB})
}

// Fig7b regenerates the Ethernet-environment Terasort sweep.
func Fig7b() *Report {
	return inputSweep("fig7b", "Terasort execution time (s), Ethernet environment",
		[]cluster.TestCase{cluster.HadoopOn1GigE, cluster.HadoopOn10GigE, cluster.JBSOn1GigE, cluster.JBSOn10GigE})
}

// Fig8 regenerates the JBS protocol comparison.
func Fig8() *Report {
	return inputSweep("fig8", "Terasort execution time (s), JBS across protocols",
		[]cluster.TestCase{cluster.JBSOn10GigE, cluster.JBSOnIPoIB, cluster.JBSOnRoCE, cluster.JBSOnRDMA})
}

// scalingSweep runs the Fig. 9 node-count sweeps.
func scalingSweep(id, title string, cases []cluster.TestCase, weak bool) *Report {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: append([]string{"Slave nodes"}, caseNames(cases)...),
	}
	results := make(map[string][]float64)
	for n := 12; n <= 22; n += 2 {
		var input int64
		if weak {
			input = int64(n) * cluster.ReduceSlotsPerNode * gb(6) // 6GB per ReduceTask
		} else {
			input = gb(256)
		}
		spec := cluster.DefaultSpec(cluster.TerasortWorkload(), input)
		spec.Nodes = n
		row := []string{fmt.Sprintf("%d", n)}
		for _, tc := range cases {
			r := simulate(spec, tc)
			row = append(row, secs(r.ExecutionTime))
			results[tc.Name()] = append(results[tc.Name()], r.ExecutionTime)
		}
		rep.AddRow(row...)
	}
	base := results[cases[0].Name()]
	for _, tc := range cases[1:] {
		var gains []float64
		for i, t := range results[tc.Name()] {
			gains = append(gains, gain(base[i], t))
		}
		rep.AddNote("%s vs %s: average reduction %s", tc.Name(), cases[0].Name(), pct(mean(gains)))
	}
	return rep
}

// Fig9a regenerates InfiniBand strong scaling (fixed 256GB input).
func Fig9a() *Report {
	return scalingSweep("fig9a", "Strong scaling, 256GB Terasort, InfiniBand",
		[]cluster.TestCase{cluster.HadoopOnIPoIB, cluster.JBSOnIPoIB, cluster.JBSOnRDMA}, false)
}

// Fig9b regenerates InfiniBand weak scaling (6GB per ReduceTask).
func Fig9b() *Report {
	return scalingSweep("fig9b", "Weak scaling, 6GB per ReduceTask, InfiniBand",
		[]cluster.TestCase{cluster.HadoopOnIPoIB, cluster.JBSOnIPoIB, cluster.JBSOnRDMA}, true)
}

// Fig9c regenerates Ethernet strong scaling.
func Fig9c() *Report {
	return scalingSweep("fig9c", "Strong scaling, 256GB Terasort, Ethernet",
		[]cluster.TestCase{cluster.HadoopOn10GigE, cluster.JBSOn10GigE, cluster.JBSOnRoCE}, false)
}

// Fig9d regenerates Ethernet weak scaling.
func Fig9d() *Report {
	return scalingSweep("fig9d", "Weak scaling, 6GB per ReduceTask, Ethernet",
		[]cluster.TestCase{cluster.HadoopOn10GigE, cluster.JBSOn10GigE, cluster.JBSOnRoCE}, true)
}

// cpuTraceReport runs the Fig. 10 sar-style traces at 128GB.
func cpuTraceReport(id, title string, cases []cluster.TestCase) *Report {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: append([]string{"Time (s)"}, caseNames(cases)...),
	}
	var traces [][]float64
	var avgs []float64
	maxLen := 0
	for _, tc := range cases {
		r := simulate(teraspec(128), tc)
		traces = append(traces, r.CPUTrace)
		avgs = append(avgs, r.AvgCPUUtil)
		if len(r.CPUTrace) > maxLen {
			maxLen = len(r.CPUTrace)
		}
	}
	// The paper plots the first 600 seconds at 5-second samples; print
	// every 25s to keep the table readable.
	limit := maxLen
	if limit > 120 {
		limit = 120
	}
	for b := 0; b < limit; b += 5 {
		row := []string{fmt.Sprintf("%.0f", float64(b)*5)}
		for _, tr := range traces {
			if b < len(tr) {
				row = append(row, pct(tr[b]))
			} else {
				row = append(row, "-")
			}
		}
		rep.AddRow(row...)
	}
	for i, tc := range cases {
		rep.AddNote("%s: average CPU utilization %s", tc.Name(), pct(avgs[i]))
	}
	for i := 1; i < len(cases); i++ {
		rep.AddNote("%s vs %s: CPU reduction %s", cases[i].Name(), cases[0].Name(),
			pct(gain(avgs[0], avgs[i])))
	}
	return rep
}

// Fig10a regenerates the IPoIB CPU-utilization comparison.
func Fig10a() *Report {
	return cpuTraceReport("fig10a", "CPU utilization, 128GB Terasort (InfiniBand, TCP/IP protocol)",
		[]cluster.TestCase{cluster.HadoopOnIPoIB, cluster.JBSOnIPoIB})
}

// Fig10b regenerates the RDMA-protocol CPU comparison.
func Fig10b() *Report {
	return cpuTraceReport("fig10b", "CPU utilization, 128GB Terasort (InfiniBand, RDMA protocol)",
		[]cluster.TestCase{cluster.HadoopOnSDP, cluster.JBSOnRDMA})
}

// Fig10c regenerates the Ethernet CPU comparison.
func Fig10c() *Report {
	return cpuTraceReport("fig10c", "CPU utilization, 128GB Terasort (Ethernet)",
		[]cluster.TestCase{cluster.HadoopOn10GigE, cluster.JBSOn10GigE, cluster.JBSOnRoCE})
}

// Fig11 regenerates the transport buffer size sweep.
func Fig11() *Report {
	rep := &Report{
		ID:     "fig11",
		Title:  "Terasort execution time (s) vs JBS transport buffer size, 128GB input",
		Header: []string{"Buffer (KB)", "JBS on IPoIB", "JBS on RDMA", "JBS on RoCE"},
	}
	cases := []cluster.TestCase{cluster.JBSOnIPoIB, cluster.JBSOnRDMA, cluster.JBSOnRoCE}
	results := make(map[string]map[int]float64)
	for _, tc := range cases {
		results[tc.Name()] = make(map[int]float64)
	}
	kbs := []int{8, 16, 32, 64, 128, 256, 512}
	for _, kb := range kbs {
		row := []string{fmt.Sprintf("%d", kb)}
		for _, tc := range cases {
			spec := teraspec(128)
			spec.BufferSize = kb << 10
			r := simulate(spec, tc)
			row = append(row, secs(r.ExecutionTime))
			results[tc.Name()][kb] = r.ExecutionTime
		}
		rep.AddRow(row...)
	}
	ip := results[cluster.JBSOnIPoIB.Name()]
	rd := results[cluster.JBSOnRDMA.Name()]
	rep.AddNote("IPoIB 8KB -> 128KB: reduction %s (paper: up to 70.3%%)", pct(gain(ip[8], ip[128])))
	rep.AddNote("RDMA 8KB -> 256KB: improvement %s (paper: 53%%)", pct(gain(rd[8], rd[256])))
	rep.AddNote("IPoIB 512KB vs 256KB: %+.1fs (paper: slight degradation)", ip[512]-ip[256])
	return rep
}

// tarazuReport runs the Fig. 12 benchmark suites at 30GB inputs.
func tarazuReport(id, title string, cases []cluster.TestCase) *Report {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: append([]string{"Benchmark"}, caseNames(cases)...),
	}
	type best struct {
		name string
		gain float64
	}
	var heavyGains []float64
	var top best
	for _, w := range cluster.TarazuWorkloads() {
		spec := cluster.DefaultSpec(w, gb(30))
		row := []string{w.Name}
		var times []float64
		for _, tc := range cases {
			r := simulate(spec, tc)
			row = append(row, secs(r.ExecutionTime))
			times = append(times, r.ExecutionTime)
		}
		rep.AddRow(row...)
		g := gain(times[0], times[len(times)-1])
		if w.ShuffleRatio > 0.5 {
			heavyGains = append(heavyGains, g)
			if g > top.gain {
				top = best{w.Name, g}
			}
		}
	}
	rep.AddNote("Shuffle-heavy benchmarks: %s average reduction %s vs %s",
		cases[len(cases)-1].Name(), pct(mean(heavyGains)), cases[0].Name())
	rep.AddNote("Best case: %s at %s (paper: AdjacencyList, 66.3%%)", top.name, pct(top.gain))
	rep.AddNote("WordCount and Grep shuffle little data and see no benefit")
	return rep
}

// Fig12a regenerates the InfiniBand Tarazu suite.
func Fig12a() *Report {
	return tarazuReport("fig12a", "Tarazu benchmark execution time (s), InfiniBand, 30GB inputs",
		[]cluster.TestCase{cluster.HadoopOnIPoIB, cluster.JBSOnIPoIB, cluster.JBSOnRDMA})
}

// Fig12b regenerates the Ethernet Tarazu suite.
func Fig12b() *Report {
	return tarazuReport("fig12b", "Tarazu benchmark execution time (s), Ethernet, 30GB inputs",
		[]cluster.TestCase{cluster.HadoopOn10GigE, cluster.JBSOn10GigE, cluster.JBSOnRoCE})
}
