package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/shuffle"
	"repro/internal/workload"
)

// FunctionalConfig sizes a real-engine comparison run.
type FunctionalConfig struct {
	// Benchmark is a workload name ("Terasort", "WordCount", ...).
	Benchmark string
	// Lines is the number of generated input records.
	Lines int
	// Nodes is the in-process node count.
	Nodes int
	// Reducers is the ReduceTask count.
	Reducers int
	// Seed makes the input reproducible.
	Seed int64
	// CompressMOF enables map-output compression for the run.
	CompressMOF bool
	// SortMemory caps the map-side sort buffer (0 = unbounded).
	SortMemory int64
	// Writer pins the map-side writer strategy (empty = adaptive).
	Writer mapred.WriterStrategy
}

// DefaultFunctionalConfig returns a laptop-scale configuration.
func DefaultFunctionalConfig() FunctionalConfig {
	return FunctionalConfig{Benchmark: "Terasort", Lines: 2000, Nodes: 3, Reducers: 4, Seed: 42}
}

// FunctionalResult is one provider's outcome on the real engine.
type FunctionalResult struct {
	Provider string
	Elapsed  time.Duration
	Counters mapred.Counters
	Output   string // concatenated part files (for cross-provider checks)
	// Phases is what the run contributed to the process-wide shuffle
	// metrics, folded into the segment-fetch phases. All zeros for the
	// hadoop-http baseline, which bypasses the JBS data path.
	Phases *PhaseBreakdown
}

// RunFunctional executes one benchmark on the real (non-simulated) engine
// under one shuffle provider, on real files and real sockets.
func RunFunctional(cfg FunctionalConfig, provider mapred.ShuffleProvider) (*FunctionalResult, error) {
	bm, err := workload.ByName(cfg.Benchmark)
	if err != nil {
		return nil, err
	}
	root, err := os.MkdirTemp("", "jbsbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	var nodes []string
	for i := 0; i < cfg.Nodes; i++ {
		nodes = append(nodes, fmt.Sprintf("node%02d", i))
	}
	blockSize := int64(64 * workload.LineWidth)
	if bm.Name == "Terasort" {
		blockSize = 64 * workload.TeraRecordLen
	}
	fs, err := dfs.NewCluster(dfs.Config{BlockSize: blockSize, Replication: 1}, nodes, root+"/dfs")
	if err != nil {
		return nil, err
	}
	if err := bm.Generate(fs, "/input", nodes[0], cfg.Lines, cfg.Seed); err != nil {
		return nil, err
	}
	eng, err := mapred.NewCluster(mapred.Config{Nodes: nodes, WorkDir: root + "/work"}, fs, provider)
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	job := bm.Job("/input", "/output", cfg.Reducers)
	job.CompressMOF = cfg.CompressMOF
	job.SortMemory = cfg.SortMemory
	job.Writer = cfg.Writer
	before := metrics.Default().Snapshot()
	start := time.Now()
	res, err := eng.Run(job)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	phases := PhasesFromDiff(metrics.Diff(before, metrics.Default().Snapshot()))

	var output []byte
	for _, p := range res.OutputFiles {
		r, err := fs.Open(p, "")
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 32<<10)
		for {
			n, rerr := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				break
			}
		}
		r.Close()
		output = append(output, buf...)
	}
	return &FunctionalResult{
		Provider: provider.Name(),
		Elapsed:  elapsed,
		Counters: res.Counters,
		Output:   string(output),
		Phases:   phases,
	}, nil
}

// FunctionalProviders returns the three shuffle implementations under
// comparison on the real engine.
func FunctionalProviders() (map[string]mapred.ShuffleProvider, error) {
	// A deliberately small shuffle budget so the baseline's spill path is
	// exercised even at laptop scale.
	http := shuffle.NewHTTPProvider(shuffle.HTTPConfig{ShuffleMemory: 4 << 10})
	jbsTCP, err := shuffle.NewJBSProvider(shuffle.JBSConfig{Transport: "tcp"})
	if err != nil {
		return nil, err
	}
	jbsRDMA, err := shuffle.NewJBSProvider(shuffle.JBSConfig{Transport: "rdma"})
	if err != nil {
		return nil, err
	}
	return map[string]mapred.ShuffleProvider{
		"hadoop-http": http,
		"jbs-tcp":     jbsTCP,
		"jbs-rdma":    jbsRDMA,
	}, nil
}

// Functional runs the real-engine comparison across all providers and
// renders a report. All providers must produce identical output.
func Functional(cfg FunctionalConfig) (*Report, error) {
	providers, err := FunctionalProviders()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "functional",
		Title:  fmt.Sprintf("Real-engine %s, %d records, %d nodes (real sockets, real files)", cfg.Benchmark, cfg.Lines, cfg.Nodes),
		Header: []string{"Shuffle", "Wall time", "Shuffled bytes", "Spill events", "Spilled bytes"},
	}
	var firstOutput string
	for _, name := range []string{"hadoop-http", "jbs-tcp", "jbs-rdma"} {
		res, err := RunFunctional(cfg, providers[name])
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		if firstOutput == "" {
			firstOutput = res.Output
		} else if res.Output != firstOutput {
			return nil, fmt.Errorf("bench: %s output differs from baseline", name)
		}
		rep.AddRow(name, res.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Counters.ShuffledBytes),
			fmt.Sprintf("%d", res.Counters.SpillEvents),
			fmt.Sprintf("%d", res.Counters.SpilledBytes))
		if !res.Phases.Zero() {
			rep.AddNote("%s phases: %s", name, res.Phases.Summary())
		}
	}
	rep.AddNote("All providers produced byte-identical job output")
	rep.AddNote("JBS providers show zero spill events (network-levitated merge)")
	return rep, nil
}
