package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/flow"
	"repro/internal/transport"
)

// HedgeTailConfig sizes the speculative-fetch tail-latency experiment:
// a replicated two-supplier topology where the primary suffers seeded
// slowness, measured with the hedging controller off and on.
type HedgeTailConfig struct {
	// Tasks x Parts segments of SegBytes each, fetched Rounds times by
	// Workers concurrent fetchers — every fetch individually timed.
	Tasks, Parts, SegBytes int
	Rounds                 int
	Workers                int
	// Seed drives every faultnet decision.
	Seed uint64
	// Stall profile: every DelayEvery-th frame on the primary's
	// connection is held Delay before delivery — a rare, long pause on a
	// node that otherwise looks healthy, the signature tail-latency
	// fault hedging exists for.
	DelayEvery int
	Delay      time.Duration
	// Blackout profile: the primary is unreachable (dials refused,
	// in-flight operations failed) during [BlackoutFrom, BlackoutTo)
	// of the run. Recovery here comes from the replica-rotation retry
	// path; the armed hedge must stay out of the way.
	BlackoutFrom, BlackoutTo time.Duration
	// FetchTimeout bounds the no-hedge runs: it is the only thing that
	// can unstick a fetch when there is no replica to race.
	FetchTimeout time.Duration
	// Threshold is the hedge baseline — how long a fetch may outlive its
	// send before a duplicate races a replica.
	Threshold time.Duration
}

// DefaultHedgeTailConfig returns the laptop-scale scenario recorded in
// EXPERIMENTS.md ("Hedged fetching under seeded stalls").
func DefaultHedgeTailConfig() HedgeTailConfig {
	return HedgeTailConfig{
		Tasks:        6,
		Parts:        4,
		SegBytes:     32 << 10,
		Rounds:       25,
		Workers:      3,
		Seed:         42,
		DelayEvery:   500,
		Delay:        400 * time.Millisecond,
		BlackoutFrom: 50 * time.Millisecond,
		BlackoutTo:   300 * time.Millisecond,
		FetchTimeout: 1500 * time.Millisecond,
		Threshold:    20 * time.Millisecond,
	}
}

// HedgeTail measures fetch latency quantiles across four runs — the
// stall and blackout fault profiles, each with hedging off (the plain
// single-path merger) and on (replica set + hedging controller). The
// headline is the p99.9 cut hedging buys under stalls and the duplicate
// bytes it pays for it.
func HedgeTail(cfg HedgeTailConfig) (*Report, error) {
	dir, err := os.MkdirTemp("", "jbs-hedge-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	lookup, specs, err := buildHedgeFixture(dir, cfg)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "hedge",
		Title:  "hedged fetching: tail latency and duplicate-byte cost under seeded primary faults",
		Header: []string{"profile", "hedging", "p50", "p99", "p99.9", "hedges", "wins", "dup bytes", "dup %"},
	}

	type profile struct {
		name   string
		faults func(primary string, s *faultnet.Schedule)
	}
	profiles := []profile{
		{"stall", func(primary string, s *faultnet.Schedule) {
			s.DelayFrame(cfg.Delay, cfg.DelayEvery).Node(primary)
		}},
		{"blackout", func(primary string, s *faultnet.Schedule) {
			s.Blackout(primary, cfg.BlackoutFrom, cfg.BlackoutTo)
		}},
	}

	var headline [2]hedgeRunResult // stall off/on, for the notes
	for _, pr := range profiles {
		for _, hedged := range []bool{false, true} {
			res, err := runHedgeTail(cfg, lookup, specs, pr.faults, hedged)
			if err != nil {
				return nil, fmt.Errorf("hedge %s (hedging %v): %w", pr.name, hedged, err)
			}
			if pr.name == "stall" {
				if hedged {
					headline[1] = res
				} else {
					headline[0] = res
				}
			}
			mode := "off"
			if hedged {
				mode = "on"
			}
			rep.AddRow(pr.name, mode,
				fmtDur(res.p50), fmtDur(res.p99), fmtDur(res.p999),
				fmt.Sprintf("%d", res.hedges), fmt.Sprintf("%d", res.wins),
				fmt.Sprintf("%d", res.dupBytes),
				fmt.Sprintf("%.1f%%", 100*float64(res.dupBytes)/float64(res.delivered)))
		}
	}

	if headline[1].p999 > 0 {
		rep.AddNote("stall profile: hedging cuts fetch p99.9 %.1fx (%v -> %v) for %.1f%% duplicate bytes",
			float64(headline[0].p999)/float64(headline[1].p999),
			headline[0].p999.Round(time.Millisecond), headline[1].p999.Round(time.Millisecond),
			100*float64(headline[1].dupBytes)/float64(headline[1].delivered))
	}
	rep.AddNote("blackout recovery is the replica-rotation retry path: dial failures never live long enough to trip the hedge threshold")
	return rep, nil
}

// hedgeRunResult is one sub-run's measured outcome.
type hedgeRunResult struct {
	p50, p99, p999 time.Duration
	hedges, wins   int64
	dupBytes       int64
	delivered      int64
}

// runHedgeTail executes one fault-profile sub-run: two suppliers over
// the shared fixture, a merger dialing the primary through the seeded
// schedule, every fetch timed individually. With hedged set, the merger
// knows the replica set and arms the hedging controller; without it,
// the merger is the plain single-path pipeline this PR started from.
func runHedgeTail(cfg HedgeTailConfig, lookup core.LookupFunc, specs []core.FetchSpec,
	faults func(string, *faultnet.Schedule), hedged bool) (hedgeRunResult, error) {

	tcp := transport.NewTCP()
	var suppliers []*core.MOFSupplier
	defer func() {
		for _, s := range suppliers {
			s.Close()
		}
	}()
	addrs := make([]string, 2)
	for i := range addrs {
		s, err := core.NewMOFSupplier(core.SupplierConfig{
			Transport:      tcp,
			Addr:           "127.0.0.1:0",
			BufferSize:     4 << 10, // several frames per segment: mid-stream faults have a stream
			DataCacheBytes: 64 << 20,
		}, lookup)
		if err != nil {
			return hedgeRunResult{}, err
		}
		suppliers = append(suppliers, s)
		addrs[i] = s.Addr()
	}
	runSpecs := make([]core.FetchSpec, len(specs))
	copy(runSpecs, specs)
	for i := range runSpecs {
		runSpecs[i].Addr = addrs[0]
	}

	sched := faultnet.NewSchedule(cfg.Seed)
	faults(addrs[0], sched)
	mc := core.MergerConfig{
		Transport:    faultnet.Wrap(tcp, sched),
		MaxRetries:   12,
		FetchTimeout: cfg.FetchTimeout,
	}
	if hedged {
		replicaSet := append([]string(nil), addrs...)
		mc.Replicas = func(core.FetchSpec) []string { return replicaSet }
		mc.Hedge = &flow.HedgeConfig{Baseline: cfg.Threshold, ScanInterval: time.Millisecond}
	}
	m, err := core.NewNetMerger(mc)
	if err != nil {
		return hedgeRunResult{}, err
	}
	defer m.Close()

	// One timed Fetch per spec per round, from a small worker pool.
	var samples []time.Duration
	var delivered int64
	var mu sync.Mutex
	var firstErr error
	in := make(chan core.FetchSpec)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range in {
				start := time.Now()
				var n int
				err := m.Fetch([]core.FetchSpec{spec}, func(_ core.FetchSpec, b []byte) error {
					n = len(b)
					return nil
				})
				d := time.Since(start)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				samples = append(samples, d)
				delivered += int64(n)
				mu.Unlock()
			}
		}()
	}
	for r := 0; r < cfg.Rounds; r++ {
		for _, s := range runSpecs {
			in <- s
		}
	}
	close(in)
	wg.Wait()
	if firstErr != nil {
		return hedgeRunResult{}, firstErr
	}

	// Let decided races finish their loser bookkeeping before reading the
	// hedge counters (results outrun the cancel by a scheduler beat).
	deadline := time.Now().Add(2 * time.Second)
	var st core.MergerStats
	for {
		st = m.Stats()
		if st.Hedges == st.HedgeWins+st.HedgeLosses+st.HedgeSheds+st.HedgeFails+st.HedgeErrors ||
			time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return hedgeRunResult{
		p50:       quantileDur(samples, 0.50),
		p99:       quantileDur(samples, 0.99),
		p999:      quantileDur(samples, 0.999),
		hedges:    st.Hedges,
		wins:      st.HedgeWins,
		dupBytes:  st.HedgeDupBytes,
		delivered: delivered,
	}, nil
}

// buildHedgeFixture writes the Tasks x Parts MOF grid once; both
// suppliers serve it, which is the replicated-MOF layout.
func buildHedgeFixture(dir string, cfg HedgeTailConfig) (core.LookupFunc, []core.FetchSpec, error) {
	paths := map[string][2]string{}
	var specs []core.FetchSpec
	for i := 0; i < cfg.Tasks; i++ {
		task := fmt.Sprintf("m-%03d", i)
		data := filepath.Join(dir, task+".data")
		index := filepath.Join(dir, task+".index")
		if err := writeSizedMOF(data, index, cfg.Parts, cfg.SegBytes); err != nil {
			return nil, nil, err
		}
		paths[task] = [2]string{data, index}
		for p := 0; p < cfg.Parts; p++ {
			specs = append(specs, core.FetchSpec{MapTask: task, Partition: p})
		}
	}
	lookup := func(task string) (string, string, error) {
		p, ok := paths[task]
		if !ok {
			return "", "", fmt.Errorf("no MOF %s", task)
		}
		return p[0], p[1], nil
	}
	return lookup, specs, nil
}

// quantileDur returns the q-quantile of sorted samples (nearest-rank).
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
