package bench

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/registry"
)

// MultiprocConfig sizes the multi-process shuffle scenario: the three
// daemon binaries are built from this checkout, a registry plus two
// supplier processes are spawned for real, and a jbsmergerd job fetches
// a verified fixture grid across a mid-job SIGKILL of one supplier.
type MultiprocConfig struct {
	// Tasks x Parts segments of SegBytes each form the fixture grid
	// every round fetches and byte-verifies.
	Tasks    int
	Parts    int
	SegBytes int
	// Rounds is how many passes the merger job makes over the grid.
	// Multi-round jobs are what give the kill and restart a window.
	Rounds int
	// KillAfterRound SIGKILLs supplier A once that many rounds have
	// completed; RestartAfterRound restarts it under the same identity.
	KillAfterRound    int
	RestartAfterRound int
	// Seed pins the fixture contents.
	Seed uint64
	// LeaseTTL is the registry lease; the SIGKILLed supplier's shards
	// move within about one TTL.
	LeaseTTL time.Duration
	// Timeout bounds the whole scenario (build included).
	Timeout time.Duration
	// Log, when set, receives per-event progress lines.
	Log func(format string, args ...any)
}

// DefaultMultiprocConfig returns the laptop-scale scenario.
func DefaultMultiprocConfig() MultiprocConfig {
	return MultiprocConfig{
		Tasks:             6,
		Parts:             4,
		SegBytes:          32 << 10,
		Rounds:            10,
		KillAfterRound:    1,
		RestartAfterRound: 5,
		Seed:              4242,
		LeaseTTL:          750 * time.Millisecond,
		Timeout:           5 * time.Minute,
	}
}

// ShortMultiprocConfig returns the CI smoke: a small grid, fewer
// rounds, same kill-and-restart schedule.
func ShortMultiprocConfig() MultiprocConfig {
	cfg := DefaultMultiprocConfig()
	cfg.Tasks = 3
	cfg.Parts = 3
	cfg.SegBytes = 8 << 10
	cfg.Rounds = 6
	cfg.RestartAfterRound = 3
	return cfg
}

// mpProc is one spawned daemon with its output captured for the error
// path. Stdout is consumed line by line through lines; stderr is
// appended to the same transcript.
type mpProc struct {
	name  string
	cmd   *exec.Cmd
	lines *bufio.Scanner
	done  chan struct{}
}

func (p *mpProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}

// wait reaps the process. Safe to call more than once via done.
func (p *mpProc) wait() error {
	select {
	case <-p.done:
		return nil
	default:
	}
	close(p.done)
	return p.cmd.Wait()
}

func startProc(logf func(string, ...any), name, bin string, args ...string) (*mpProc, error) {
	p := &mpProc{name: name, cmd: exec.Command(bin, args...), done: make(chan struct{})}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	p.cmd.Stderr = os.Stderr
	p.lines = bufio.NewScanner(stdout)
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	if logf != nil {
		logf("multiproc: started %s (pid %d)", name, p.cmd.Process.Pid)
	}
	return p, nil
}

// expectLine reads stdout lines until one contains want, returning it.
func (p *mpProc) expectLine(want string) (string, error) {
	for p.lines.Scan() {
		if strings.Contains(p.lines.Text(), want) {
			return p.lines.Text(), nil
		}
	}
	return "", fmt.Errorf("%s exited before printing %q", p.name, want)
}

// buildDaemons compiles the named daemon binaries into dir and returns
// their paths keyed by command name.
func buildDaemons(dir string, names ...string) (map[string]string, error) {
	bins := map[string]string{}
	for _, name := range names {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("go build ./cmd/%s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	return bins, nil
}

// startRegistry spawns jbsregistryd on an ephemeral port and returns
// the process plus the address parsed from its startup line.
func startRegistry(logf func(string, ...any), bin string, leaseTTL time.Duration) (*mpProc, string, error) {
	reg, err := startProc(logf, "jbsregistryd", bin,
		"-addr", "127.0.0.1:0",
		"-lease-ttl", leaseTTL.String(),
		"-sweep", "50ms",
		"-quiet")
	if err != nil {
		return nil, "", err
	}
	line, err := reg.expectLine("serving")
	if err != nil {
		reg.kill()
		reg.wait()
		return nil, "", err
	}
	addr := ""
	fields := strings.Fields(line) // ... shards at <addr> (lease TTL ...)
	for i, f := range fields {
		if f == "at" && i+1 < len(fields) {
			addr = fields[i+1]
		}
	}
	if addr == "" {
		reg.kill()
		reg.wait()
		return nil, "", fmt.Errorf("no registry address in startup line %q", line)
	}
	return reg, addr, nil
}

// liveSupplierCount returns how many non-draining suppliers hold live
// registrations.
func liveSupplierCount(c *registry.Client) (int, error) {
	m, err := c.FetchMap()
	if err != nil {
		return 0, err
	}
	live := 0
	for _, s := range m.Suppliers {
		if !s.Draining {
			live++
		}
	}
	return live, nil
}

// waitLiveSuppliers polls the registry until want non-draining
// suppliers hold live registrations.
func waitLiveSuppliers(regAddr string, want int, deadline time.Time) error {
	c := registry.NewClient(regAddr)
	defer c.Close()
	for {
		if live, err := liveSupplierCount(c); err == nil && live == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("registry never reached %d live suppliers", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Multiproc runs the multi-process shuffle scenario: it builds the real
// jbsregistryd/jbssupplierd/jbsmergerd binaries, spawns a registry and
// two supplier OS processes, runs a byte-verified multi-round merger
// job against them, SIGKILLs one supplier mid-job, restarts it under
// the same identity later in the job, and requires the merger to exit 0
// with every segment verified. It is the process-level acceptance run
// behind `make multiproc-smoke`.
func Multiproc(cfg MultiprocConfig) (*Report, error) {
	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	logf := cfg.Log

	work, err := os.MkdirTemp("", "jbs-multiproc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(work)

	buildStart := time.Now()
	bins, err := buildDaemons(work, "jbsregistryd", "jbssupplierd", "jbsmergerd")
	if err != nil {
		return nil, err
	}
	buildDur := time.Since(buildStart)

	fixture := filepath.Join(work, "mofs")
	if err := os.Mkdir(fixture, 0o755); err != nil {
		return nil, err
	}
	if err := daemon.WriteFixture(fixture, cfg.Tasks, cfg.Parts, cfg.SegBytes, cfg.Seed); err != nil {
		return nil, fmt.Errorf("write fixture: %w", err)
	}

	// Registry first: its ephemeral port comes from its startup line.
	reg, regAddr, err := startRegistry(logf, bins["jbsregistryd"], cfg.LeaseTTL)
	if err != nil {
		return nil, err
	}
	defer func() { reg.kill(); reg.wait() }()
	if logf != nil {
		logf("multiproc: registry at %s", regAddr)
	}

	supplierArgs := func(id string) []string {
		return []string{
			"-registry", regAddr,
			"-addr", "127.0.0.1:0",
			"-id", id,
			"-mof-dir", fixture,
			"-heartbeat", "100ms",
			"-quiet",
		}
	}
	supA, err := startProc(logf, "jbssupplierd/mp-a", bins["jbssupplierd"], supplierArgs("mp-a")...)
	if err != nil {
		return nil, err
	}
	defer func() { supA.kill(); supA.wait() }()
	supB, err := startProc(logf, "jbssupplierd/mp-b", bins["jbssupplierd"], supplierArgs("mp-b")...)
	if err != nil {
		return nil, err
	}
	defer func() { supB.kill(); supB.wait() }()
	if err := waitLiveSuppliers(regAddr, 2, deadline); err != nil {
		return nil, err
	}

	jobStart := time.Now()
	merger, err := startProc(logf, "jbsmergerd", bins["jbsmergerd"],
		"-registry", regAddr,
		"-tasks", fmt.Sprint(cfg.Tasks),
		"-parts", fmt.Sprint(cfg.Parts),
		"-rounds", fmt.Sprint(cfg.Rounds),
		"-verify", fixture,
		"-resolver-ttl", "20ms",
		"-retries", "16")
	if err != nil {
		return nil, err
	}
	defer func() { merger.kill(); merger.wait() }()

	// Drive the job by its own progress lines: SIGKILL supplier A after
	// KillAfterRound rounds, restart it (same identity — crash
	// recovery) after RestartAfterRound rounds.
	var (
		roundsSeen int
		killedAt   = -1
		restartAt  = -1
		doneLine   string
	)
	for merger.lines.Scan() {
		text := merger.lines.Text()
		if logf != nil {
			logf("multiproc: %s", text)
		}
		if strings.Contains(text, "done:") {
			doneLine = text
		}
		if !strings.Contains(text, "round ") || !strings.Contains(text, " ok") {
			continue
		}
		roundsSeen++
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("multiproc scenario exceeded %v", cfg.Timeout)
		}
		if roundsSeen == cfg.KillAfterRound && killedAt < 0 {
			if err := supA.cmd.Process.Signal(syscall.SIGKILL); err != nil {
				return nil, fmt.Errorf("SIGKILL mp-a: %w", err)
			}
			supA.wait()
			killedAt = roundsSeen
			if logf != nil {
				logf("multiproc: SIGKILLed mp-a after round %d", roundsSeen)
			}
		}
		if roundsSeen == cfg.RestartAfterRound && killedAt >= 0 && restartAt < 0 {
			supA, err = startProc(logf, "jbssupplierd/mp-a", bins["jbssupplierd"], supplierArgs("mp-a")...)
			if err != nil {
				return nil, fmt.Errorf("restart mp-a: %w", err)
			}
			restartAt = roundsSeen
		}
	}
	if err := merger.wait(); err != nil {
		return nil, fmt.Errorf("jbsmergerd failed across supplier kill: %w", err)
	}
	jobDur := time.Since(jobStart)
	if killedAt < 0 {
		return nil, fmt.Errorf("job finished before the kill fired (only %d rounds seen)", roundsSeen)
	}
	var segments, bytesFetched, retries, sheds, rerouted int64
	if _, err := fmt.Sscanf(doneLine, "jbsmergerd: done: %d segments, %d bytes, %d retries, %d sheds, %d rerouted",
		&segments, &bytesFetched, &retries, &sheds, &rerouted); err != nil {
		return nil, fmt.Errorf("unparseable merger summary %q: %w", doneLine, err)
	}
	wantSegments := int64(cfg.Tasks * cfg.Parts * cfg.Rounds)
	if segments != wantSegments {
		return nil, fmt.Errorf("merger verified %d segments, want %d", segments, wantSegments)
	}

	// Graceful teardown: every surviving supplier must drain to exit 0.
	// The restarted mp-a must be back in the membership first — that is
	// the crash-recovery half of the assertion.
	survivors := []*mpProc{supB}
	if restartAt >= 0 {
		if err := waitLiveSuppliers(regAddr, 2, deadline); err != nil {
			return nil, fmt.Errorf("restarted mp-a never re-registered: %w", err)
		}
		survivors = append(survivors, supA)
	}
	for _, p := range survivors {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return nil, fmt.Errorf("SIGTERM %s: %w", p.name, err)
		}
		if err := p.wait(); err != nil {
			return nil, fmt.Errorf("%s did not drain cleanly: %w", p.name, err)
		}
	}
	if err := reg.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return nil, fmt.Errorf("SIGTERM jbsregistryd: %w", err)
	}
	if err := reg.wait(); err != nil {
		return nil, fmt.Errorf("jbsregistryd did not shut down cleanly: %w", err)
	}

	mbps := float64(bytesFetched) / 1e6 / jobDur.Seconds()
	rep := &Report{
		ID:     "multiproc",
		Title:  "multi-process shuffle: registry + 2 supplier daemons, SIGKILL + restart mid-job",
		Header: []string{"phase", "result"},
	}
	rep.AddRow("build daemons", buildDur.Round(time.Millisecond).String())
	rep.AddRow("fixture", fmt.Sprintf("%dx%d segments x %d B (seed %d)", cfg.Tasks, cfg.Parts, cfg.SegBytes, cfg.Seed))
	rep.AddRow("job", fmt.Sprintf("%d rounds, %d segments verified, %d bytes", cfg.Rounds, segments, bytesFetched))
	rep.AddRow("supplier kill", fmt.Sprintf("SIGKILL mp-a after round %d", killedAt))
	if restartAt >= 0 {
		rep.AddRow("supplier restart", fmt.Sprintf("same identity after round %d", restartAt))
	}
	rep.AddRow("recovery cost", fmt.Sprintf("%d retries, %d sheds, %d rerouted", retries, sheds, rerouted))
	rep.AddRow("job wall time", jobDur.Round(time.Millisecond).String())
	rep.AddNote("sustained %.1f MB/s across the kill; every segment byte-verified, all daemons exited 0", mbps)
	return rep, nil
}
