package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/mof"
	"repro/internal/transport"
)

// OverloadConfig sizes the multi-tenant overload scenario: a light job
// sharing one MOFSupplier with a heavy job whose partitions are Skew
// times larger.
type OverloadConfig struct {
	// LightTasks x LightParts segments of LightSegBytes each form the
	// latency-sensitive job.
	LightTasks    int
	LightParts    int
	LightSegBytes int
	// HeavyTasks x HeavyParts segments of LightSegBytes*Skew each form
	// the background bulk job.
	HeavyTasks int
	HeavyParts int
	Skew       int
	// Rounds is how many measurement passes the light job makes over its
	// segment list (each pass fetches every segment once, one at a time).
	Rounds int
	// AdmitBytes is the supplier's admission budget in the flow-enabled
	// scenario.
	AdmitBytes int64
}

// DefaultOverloadConfig returns the laptop-scale scenario: 512 KB of
// light traffic contending with 20 MB of 10x-skewed bulk traffic.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		LightTasks:    4,
		LightParts:    4,
		LightSegBytes: 16 << 10,
		HeavyTasks:    8,
		HeavyParts:    8,
		Skew:          10,
		Rounds:        60,
		// Just below one skewed segment (160 KB + record framing): the
		// ledger's oversized-alone rule then serializes the bulk job to
		// one resident segment while light requests (16 KB) still fit in
		// the queue allowance beside it.
		AdmitBytes: 128 << 10,
	}
}

// Overload measures the light job's segment-fetch latency in three runs:
// alone, sharing the supplier with the heavy job under the paper's
// unmanaged pipeline, and sharing it with internal/flow enabled
// (admission ledger + AIMD windows + weighted deficit round-robin). It
// reports p50/p99 per run; the headline is the contended p99 relative to
// the solo baseline.
func Overload(cfg OverloadConfig) (*Report, error) {
	dir, err := os.MkdirTemp("", "jbs-overload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rig, err := newOverloadRig(dir, cfg)
	if err != nil {
		return nil, err
	}

	solo, err := rig.run(cfg, scenarioSolo)
	if err != nil {
		return nil, err
	}
	unmanaged, err := rig.run(cfg, scenarioUnmanaged)
	if err != nil {
		return nil, err
	}
	managed, err := rig.run(cfg, scenarioFlow)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "overload",
		Title:  "Multi-tenant overload: light-job fetch latency vs a 10x-skewed bulk job",
		Header: []string{"Scenario", "Light p50 (ms)", "Light p99 (ms)", "p99 vs solo", "Supplier sheds"},
	}
	base := solo.p99
	row := func(name string, r *overloadRun) {
		rep.AddRow(name,
			fmt.Sprintf("%.3f", r.p50.Seconds()*1e3),
			fmt.Sprintf("%.3f", r.p99.Seconds()*1e3),
			fmt.Sprintf("%.2fx", float64(r.p99)/float64(base)),
			fmt.Sprintf("%d", r.sheds))
	}
	row("light solo", solo)
	row("contended, flow disabled", unmanaged)
	row("contended, flow enabled", managed)
	rep.AddNote("flow control holds the light job's contended p99 to %.2fx its solo p99 (unmanaged: %.2fx)",
		float64(managed.p99)/float64(base), float64(unmanaged.p99)/float64(base))
	if managed.sheds > 0 {
		rep.AddNote("admission shed %d requests; every shed was retried and delivered (0 fetch errors)", managed.sheds)
	}
	return rep, nil
}

type overloadScenario int

const (
	scenarioSolo overloadScenario = iota
	scenarioUnmanaged
	scenarioFlow
)

type overloadRun struct {
	p50, p99 time.Duration
	sheds    int64
}

// overloadRig holds the on-disk MOFs (built once) and the fetch specs of
// both jobs. Each run stands up a fresh supplier and mergers so windows,
// caches, and the ledger start cold.
type overloadRig struct {
	lookup     func(string) (string, string, error)
	lightTasks []string
	heavyTasks []string
}

func newOverloadRig(dir string, cfg OverloadConfig) (*overloadRig, error) {
	r := &overloadRig{}
	paths := map[string][2]string{}
	build := func(prefix string, tasks, parts, segBytes int) ([]string, error) {
		var names []string
		for i := 0; i < tasks; i++ {
			task := fmt.Sprintf("%s-%05d", prefix, i)
			data := filepath.Join(dir, task+".data")
			index := filepath.Join(dir, task+".index")
			if err := writeSizedMOF(data, index, parts, segBytes); err != nil {
				return nil, err
			}
			paths[task] = [2]string{data, index}
			names = append(names, task)
		}
		return names, nil
	}
	var err error
	if r.lightTasks, err = build("light", cfg.LightTasks, cfg.LightParts, cfg.LightSegBytes); err != nil {
		return nil, err
	}
	if r.heavyTasks, err = build("heavy", cfg.HeavyTasks, cfg.HeavyParts, cfg.LightSegBytes*cfg.Skew); err != nil {
		return nil, err
	}
	r.lookup = func(task string) (string, string, error) {
		p, ok := paths[task]
		if !ok {
			return "", "", fmt.Errorf("bench: no MOF for task %s", task)
		}
		return p[0], p[1], nil
	}
	return r, nil
}

// writeSizedMOF writes one MOF whose every partition holds ~segBytes of
// records (1 KB values, distinct keys).
func writeSizedMOF(data, index string, parts, segBytes int) error {
	w, err := mof.NewWriter(data, index, parts)
	if err != nil {
		return err
	}
	value := make([]byte, 1024)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for p := 0; p < parts; p++ {
		if err := w.BeginSegment(p); err != nil {
			return err
		}
		for written := 0; written < segBytes; written += len(value) {
			key := fmt.Sprintf("p%03d-k%08d", p, written)
			if err := w.Append([]byte(key), value); err != nil {
				return err
			}
		}
	}
	return w.Close()
}

func specsFor(addr string, tasks []string, parts int) []core.FetchSpec {
	var specs []core.FetchSpec
	for _, task := range tasks {
		for p := 0; p < parts; p++ {
			specs = append(specs, core.FetchSpec{Addr: addr, MapTask: task, Partition: p})
		}
	}
	return specs
}

// run executes one scenario and returns the light job's latency profile.
func (r *overloadRig) run(cfg OverloadConfig, sc overloadScenario) (*overloadRun, error) {
	tr := transport.NewTCP()
	scfg := core.SupplierConfig{
		Transport: tr,
		Addr:      "127.0.0.1:0",
		// Size the cache for the combined working set so the comparison
		// isolates scheduling and queueing, not cache thrash.
		DataCacheBytes: 64 << 20,
		// Enough transmit workers that a free one is usually available;
		// the contended resource is the admission budget and the wire.
		XmitWorkers: 4,
	}
	var mflow *flow.Config
	if sc == scenarioFlow {
		scfg.Flow = &flow.Config{
			AdmitBytes: cfg.AdmitBytes,
			// Long enough that a shed bulk request backs off for many
			// service times (its churn stays off the light job's tail),
			// short enough that the bulk job never idles the supplier.
			RetryAfter: 4 * time.Millisecond,
			// The latency-sensitive tenant gets the larger share; the
			// bulk job is throughput-bound and barely notices.
			Weights: map[string]int64{"light": 4, "heavy": 1},
		}
		// Finer-grained staging interleaves the two tenants more tightly
		// in the transmit queue.
		scfg.PrefetchBatch = 2
		scfg.Tenant = func(task string) string {
			if strings.HasPrefix(task, "heavy") {
				return "heavy"
			}
			return "light"
		}
		// A tight AIMD ceiling keeps the bulk job pipelined one request
		// deep past the serialized resident segment: the second request
		// sheds (exercising shed->backoff->retry continuously) without
		// flooding the supplier with probe bursts.
		mflow = &flow.Config{WindowStart: 2, WindowMax: 2}
	}
	s, err := core.NewMOFSupplier(scfg, r.lookup)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	newMerger := func(window int) (*core.NetMerger, error) {
		return core.NewNetMerger(core.MergerConfig{
			Transport:     tr,
			WindowPerNode: window,
			Flow:          mflow,
		})
	}
	lightM, err := newMerger(4)
	if err != nil {
		return nil, err
	}
	defer lightM.Close()

	// The heavy job hammers the supplier in the background with a wide
	// window until the light job's measurement finishes.
	stop := make(chan struct{})
	heavyDone := make(chan struct{})
	if sc != scenarioSolo {
		heavyM, err := newMerger(16)
		if err != nil {
			return nil, err
		}
		defer heavyM.Close()
		heavySpecs := specsFor(s.Addr(), r.heavyTasks, cfg.HeavyParts)
		// Warm the bulk working set synchronously so the measurement sees
		// steady-state background load, not the heavy job's cold disk pass.
		if err := heavyM.Fetch(heavySpecs, func(core.FetchSpec, []byte) error { return nil }); err != nil {
			return nil, fmt.Errorf("heavy warm pass: %w", err)
		}
		go func() {
			defer close(heavyDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors after stop are expected (merger torn down);
				// during the run the fetch must stay clean.
				if err := heavyM.Fetch(heavySpecs, func(core.FetchSpec, []byte) error { return nil }); err != nil {
					select {
					case <-stop:
						return
					default:
						panic(fmt.Sprintf("bench: heavy fetch failed mid-run: %v", err))
					}
				}
			}
		}()
		// Let the bulk job saturate the pipeline before measuring.
		time.Sleep(50 * time.Millisecond)
	} else {
		close(heavyDone)
	}

	lightSpecs := specsFor(s.Addr(), r.lightTasks, cfg.LightParts)
	var samples []time.Duration
	for round := 0; round < cfg.Rounds; round++ {
		for _, spec := range lightSpecs {
			t0 := time.Now()
			err := lightM.Fetch([]core.FetchSpec{spec}, func(core.FetchSpec, []byte) error { return nil })
			if err != nil {
				close(stop)
				<-heavyDone
				return nil, fmt.Errorf("light fetch %s/%d: %w", spec.MapTask, spec.Partition, err)
			}
			samples = append(samples, time.Since(t0))
		}
	}
	close(stop)
	<-heavyDone

	if st := lightM.Stats(); st.Errors != 0 {
		return nil, fmt.Errorf("light merger surfaced %d errors", st.Errors)
	}
	run := &overloadRun{p50: percentile(samples, 0.50), p99: percentile(samples, 0.99)}
	if ls := s.FlowState().Ledger; ls != nil {
		run.sheds = ls.Sheds
	}
	return run, nil
}

// percentile returns the p-th percentile (0 < p <= 1) of the samples.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
