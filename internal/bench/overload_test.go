package bench

import (
	"testing"
	"time"
)

// TestOverloadSmoke runs a shrunken overload scenario end to end on real
// sockets and files and checks the report's shape and invariants. The
// full-size latency comparison (p99 ratios) is jbsbench's job — timing
// assertions do not belong in unit tests.
func TestOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and disk I/O")
	}
	cfg := OverloadConfig{
		LightTasks:    2,
		LightParts:    2,
		LightSegBytes: 8 << 10,
		HeavyTasks:    2,
		HeavyParts:    2,
		Skew:          10,
		Rounds:        3,
		AdmitBytes:    64 << 10, // below one 80 KB skewed segment
	}
	rep, err := Overload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "overload" {
		t.Errorf("report ID = %q", rep.ID)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("report has %d rows, want 3 scenarios", len(rep.Rows))
	}
	// The flow-enabled scenario must actually shed (the smoke target's
	// "shed injection"), and every run must deliver without errors —
	// Overload fails otherwise.
	if rep.Rows[2][4] == "0" {
		t.Errorf("flow-enabled scenario recorded no sheds: %v", rep.Rows[2])
	}
	if rep.Rows[0][4] != "0" || rep.Rows[1][4] != "0" {
		t.Errorf("flow-disabled scenarios recorded sheds: %v", rep.Rows[:2])
	}
}

func TestPercentile(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i))
	}
	if got := percentile(samples, 0.50); got != 50 {
		t.Errorf("p50 = %d, want 50", got)
	}
	if got := percentile(samples, 0.99); got != 99 {
		t.Errorf("p99 = %d, want 99", got)
	}
	if got := percentile(samples, 1.0); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
}
