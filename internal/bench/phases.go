package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
)

// PhaseBreakdown condenses one run's registry delta into the four phases
// of the JBS segment fetch path: transport (time on the wire), disk
// (segment reads the suppliers paid), cache (DataCache / FileCache
// effectiveness), and merge (fetch round trips as seen by the NetMerger).
// It is computed from metrics.Diff of registry snapshots taken around the
// run, so concurrent runs in one process would smear each other — the
// bench harness runs providers one at a time.
type PhaseBreakdown struct {
	// Transport, summed across backends (a run uses one of tcp/rdma).
	SentBytes, RecvBytes   int64
	SentFrames, RecvFrames int64
	SendTime, RecvTime     time.Duration

	// Disk.
	DiskReads int64
	DiskBytes int64
	DiskTime  time.Duration

	// Cache.
	DataHits, DataMisses int64
	FileHits, FileMisses int64

	// Merge.
	Fetches      int64
	FetchedBytes int64
	FetchTime    time.Duration
	FetchP50     time.Duration
	FetchP99     time.Duration
}

// PhasesFromDiff folds a registry diff into a PhaseBreakdown, summing
// labeled series (e.g. the per-backend transport metrics) by base name.
func PhasesFromDiff(diff []metrics.Snapshot) *PhaseBreakdown {
	p := &PhaseBreakdown{}
	for _, s := range diff {
		name := s.Name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		switch name {
		case "jbs_transport_sent_bytes_total":
			p.SentBytes += s.Value
		case "jbs_transport_sent_frames_total":
			p.SentFrames += s.Value
		case "jbs_transport_recv_bytes_total":
			p.RecvBytes += s.Value
		case "jbs_transport_recv_frames_total":
			p.RecvFrames += s.Value
		case "jbs_transport_send_ns":
			p.SendTime += time.Duration(s.Sum)
		case "jbs_transport_recv_ns":
			p.RecvTime += time.Duration(s.Sum)
		case "jbs_segment_read_ns":
			p.DiskReads += s.Count
			p.DiskTime += time.Duration(s.Sum)
		case "jbs_segment_read_bytes_total":
			p.DiskBytes += s.Value
		case "jbs_datacache_hits_total":
			p.DataHits += s.Value
		case "jbs_datacache_misses_total":
			p.DataMisses += s.Value
		case "jbs_filecache_hits_total":
			p.FileHits += s.Value
		case "jbs_filecache_misses_total":
			p.FileMisses += s.Value
		case "jbs_merger_fetches_total":
			p.Fetches += s.Value
		case "jbs_merger_bytes_total":
			p.FetchedBytes += s.Value
		case "jbs_merger_rtt_ns":
			p.FetchTime += time.Duration(s.Sum)
			p.FetchP50 = time.Duration(s.Quantile(0.50))
			p.FetchP99 = time.Duration(s.Quantile(0.99))
		}
	}
	return p
}

// Zero reports whether the run left no trace in the JBS data path —
// true for the hadoop-http baseline, which bypasses it entirely.
func (p *PhaseBreakdown) Zero() bool {
	return p.Fetches == 0 && p.SentFrames == 0 && p.DiskReads == 0
}

// Format renders the breakdown as one indented line per phase.
func (p *PhaseBreakdown) Format(indent string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%stransport  tx %s in %d frames (%s on wire), rx %s in %d frames (%s)\n",
		indent, fmtBytes(p.SentBytes), p.SentFrames, round(p.SendTime),
		fmtBytes(p.RecvBytes), p.RecvFrames, round(p.RecvTime))
	fmt.Fprintf(&sb, "%sdisk       %d segment reads, %s, %s\n",
		indent, p.DiskReads, fmtBytes(p.DiskBytes), round(p.DiskTime))
	fmt.Fprintf(&sb, "%scache      datacache %d/%d hits, filecache %d/%d hits\n",
		indent, p.DataHits, p.DataHits+p.DataMisses, p.FileHits, p.FileHits+p.FileMisses)
	fmt.Fprintf(&sb, "%smerge      %d fetches, %s reassembled, rtt %s total (p50 %s, p99 %s)\n",
		indent, p.Fetches, fmtBytes(p.FetchedBytes), round(p.FetchTime),
		round(p.FetchP50), round(p.FetchP99))
	return sb.String()
}

// Summary renders the breakdown as a single report-note line.
func (p *PhaseBreakdown) Summary() string {
	return fmt.Sprintf("transport tx %s rx %s | disk %d reads %s | cache dc %d/%d fc %d/%d | merge rtt %s (p50 %s)",
		round(p.SendTime), round(p.RecvTime),
		p.DiskReads, round(p.DiskTime),
		p.DataHits, p.DataHits+p.DataMisses, p.FileHits, p.FileHits+p.FileMisses,
		round(p.FetchTime), round(p.FetchP50))
}

// round trims durations to display precision.
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
