// Package bench regenerates every table and figure of the paper's
// evaluation (Section V) from the cluster simulator and micro-models, and
// provides functional counterparts that exercise the real engine. Each
// experiment prints the same rows/series the paper plots.
package bench

import (
	"fmt"
	"strings"
)

// Report is one experiment's regenerated table.
type Report struct {
	// ID is the experiment identifier ("table1", "fig7a", ...).
	ID string
	// Title describes the experiment as captioned in the paper.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes carry derived headline numbers (average improvements etc.).
	Notes []string
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a derived-result note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "-- %s\n", n)
	}
	return sb.String()
}

// CSV renders the report's rows as comma-separated values (RFC-4180
// quoting for cells containing commas or quotes), ready for plotting.
func (r *Report) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Experiment pairs an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Report
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Test Case Description", TableI},
		{"fig2a", "Disk I/O: Java stream vs native read vs mmap", Fig2a},
		{"fig2b", "One HttpServlet to one MOFCopier shuffle time", Fig2b},
		{"fig2c", "N nodes to one ReduceTask shuffle time", Fig2c},
		{"fig7a", "Benefits of JVM-Bypass (InfiniBand environment)", Fig7a},
		{"fig7b", "Benefits of JVM-Bypass (Ethernet environment)", Fig7b},
		{"fig8", "Benefits of RDMA", Fig8},
		{"fig9a", "Strong scaling (InfiniBand)", Fig9a},
		{"fig9b", "Weak scaling (InfiniBand)", Fig9b},
		{"fig9c", "Strong scaling (Ethernet)", Fig9c},
		{"fig9d", "Weak scaling (Ethernet)", Fig9d},
		{"fig10a", "CPU utilization (InfiniBand, TCP/IP protocol)", Fig10a},
		{"fig10b", "CPU utilization (InfiniBand, RDMA protocol)", Fig10b},
		{"fig10c", "CPU utilization (Ethernet)", Fig10c},
		{"fig11", "Impact of JBS transport buffer size", Fig11},
		{"fig12a", "Tarazu benchmarks (InfiniBand)", Fig12a},
		{"fig12b", "Tarazu benchmarks (Ethernet)", Fig12b},
		{"ablation", "JBS design-choice ablations", Ablation},
	}
}

// ByID finds an experiment by identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

func secs(v float64) string { return fmt.Sprintf("%.1f", v) }

func ms(v float64) string { return fmt.Sprintf("%.2f", v*1e3) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// gain returns the relative reduction of b versus a.
func gain(a, b float64) float64 { return 1 - b/a }

// mean averages a slice.
func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
