package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/mapred"
)

// WriterMatrixConfig sizes the map-side writer crossover measurement: the
// same record stream runs through every writer strategy on a grid of
// (partition count × record size) cells, with and without a combiner, and
// each cell reports seal throughput — records in, servable MOF out.
type WriterMatrixConfig struct {
	// Partitions are the reducer counts to sweep.
	Partitions []int
	// RecordBytes are the record sizes (key + value) to sweep.
	RecordBytes []int
	// TotalBytes is the data volume per cell.
	TotalBytes int64
	// Rounds runs each (cell, strategy) this many times, keeping the best
	// (benchmarks-by-minimum suppresses scheduler noise).
	Rounds int
	// Combine adds a second pass over the grid with a combiner set, where
	// the bypass writer is ineligible by rule.
	Combine bool
	// Seed makes the record stream reproducible.
	Seed int64
}

// DefaultWriterMatrixConfig is the full measurement grid behind the
// selector's defaults (EXPERIMENTS.md, "Writer crossover matrix").
func DefaultWriterMatrixConfig() WriterMatrixConfig {
	return WriterMatrixConfig{
		Partitions:  []int{4, 16, 64, 256},
		RecordBytes: []int{64, 512, 2048, 4096},
		TotalBytes:  8 << 20,
		Rounds:      3,
		Combine:     true,
		Seed:        42,
	}
}

// ShortWriterMatrixConfig is the CI smoke grid: each strategy's decisive
// home cell at 4 partitions — bypass at 64 B records without a combiner,
// sort-merge at 64 B with one, sort-spill at 4 KiB — with small volumes.
func ShortWriterMatrixConfig() WriterMatrixConfig {
	return WriterMatrixConfig{
		Partitions:  []int{4},
		RecordBytes: []int{64, 4096},
		TotalBytes:  2 << 20,
		Rounds:      2,
		Combine:     true,
		Seed:        42,
	}
}

// WriterCell is one measured grid cell.
type WriterCell struct {
	// Partitions and RecordBytes locate the cell.
	Partitions  int
	RecordBytes int
	// Combine marks the combiner pass (bypass ineligible).
	Combine bool
	// MBps is the best-of-rounds seal throughput per strategy; absent
	// means ineligible.
	MBps map[mapred.WriterStrategy]float64
	// Winner is the fastest measured strategy.
	Winner mapred.WriterStrategy
	// Selected is what SelectWriter picks for this job shape.
	Selected mapred.WriterStrategy
}

// matrixStrategies is the measurement order (also the report columns).
var matrixStrategies = []mapred.WriterStrategy{
	mapred.WriterSortSpill, mapred.WriterBypass, mapred.WriterSortMerge,
}

// matrixRecord is one pre-generated record with its partition resolved,
// so the timed loop measures the writer and nothing else.
type matrixRecord struct {
	key, val []byte
	part     int
}

// genRecords builds the cell's record stream: seeded, unsorted, with
// moderate key duplication (so combining and stable ordering both have
// work to do).
func genRecords(cfg WriterMatrixConfig, partitions, recordBytes int) []matrixRecord {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.TotalBytes) / recordBytes
	if n < 1 {
		n = 1
	}
	distinct := n/8 + 1
	recs := make([]matrixRecord, n)
	for i := range recs {
		key := []byte(fmt.Sprintf("key-%08d", rng.Intn(distinct)))
		valLen := recordBytes - len(key)
		if valLen < 1 {
			valLen = 1
		}
		val := make([]byte, valLen)
		rng.Read(val)
		recs[i] = matrixRecord{key: key, val: val, part: mapred.HashPartitioner(key, partitions)}
	}
	return recs
}

// firstValue is the matrix's combiner: cheap and reduction-heavy, so the
// combine pass measures the writers' combining machinery rather than a
// user function.
func firstValue(key []byte, values [][]byte, emit mapred.Emit) error {
	emit(key, values[0])
	return nil
}

// runCellStrategy measures one (cell, strategy) pair: full Add+Seal into
// a scratch MOF, best of cfg.Rounds, returned as MB/s.
func runCellStrategy(cfg WriterMatrixConfig, s mapred.WriterStrategy, recs []matrixRecord, partitions int, combine bool) (float64, error) {
	var combineFn mapred.ReduceFunc
	if combine {
		combineFn = firstValue
	}
	best := time.Duration(0)
	for round := 0; round < cfg.Rounds; round++ {
		dir, err := os.MkdirTemp("", "writermatrix")
		if err != nil {
			return 0, err
		}
		w, err := mapred.NewShuffleWriter(s, mapred.WriterConfig{
			Partitions: partitions,
			Dir:        dir,
			TaskID:     "m-0",
			Combine:    combineFn,
		})
		if err != nil {
			os.RemoveAll(dir)
			return 0, err
		}
		final := mapred.MOFPaths{
			Data:  filepath.Join(dir, "final.data"),
			Index: filepath.Join(dir, "final.index"),
		}
		start := time.Now()
		for i := range recs {
			if err := w.Add(recs[i].part, recs[i].key, recs[i].val); err != nil {
				w.Abort()
				os.RemoveAll(dir)
				return 0, err
			}
		}
		if err := w.Seal(final); err != nil {
			w.Abort()
			os.RemoveAll(dir)
			return 0, err
		}
		elapsed := time.Since(start)
		if err := os.RemoveAll(dir); err != nil {
			return 0, err
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return float64(cfg.TotalBytes) / (1 << 20) / best.Seconds(), nil
}

// WriterMatrix measures the crossover grid and reports it, marking each
// cell's measured winner against the selector's choice for that shape.
func WriterMatrix(cfg WriterMatrixConfig) (*Report, []WriterCell, error) {
	rep := &Report{
		ID:    "writer-matrix",
		Title: fmt.Sprintf("Map-side writer crossover: seal MB/s per strategy, %d MiB per cell, best of %d", cfg.TotalBytes>>20, cfg.Rounds),
		Header: []string{"Partitions", "RecBytes", "Combine",
			string(mapred.WriterSortSpill), string(mapred.WriterBypass), string(mapred.WriterSortMerge),
			"Winner", "Selected"},
	}
	combinePasses := []bool{false}
	if cfg.Combine {
		combinePasses = append(combinePasses, true)
	}
	var cells []WriterCell
	for _, combine := range combinePasses {
		for _, p := range cfg.Partitions {
			for _, rb := range cfg.RecordBytes {
				recs := genRecords(cfg, p, rb)
				cell := WriterCell{
					Partitions:  p,
					RecordBytes: rb,
					Combine:     combine,
					MBps:        make(map[mapred.WriterStrategy]float64, len(matrixStrategies)),
				}
				for _, s := range matrixStrategies {
					if combine && s == mapred.WriterBypass {
						continue // ineligible by rule, not by measurement
					}
					mbps, err := runCellStrategy(cfg, s, recs, p, combine)
					if err != nil {
						return nil, nil, fmt.Errorf("bench: writer matrix %s p=%d rb=%d: %w", s, p, rb, err)
					}
					cell.MBps[s] = mbps
					if cell.Winner == "" || mbps > cell.MBps[cell.Winner] {
						cell.Winner = s
					}
				}
				job := &mapred.Job{NumReducers: p, ExpectedRecordBytes: int64(rb)}
				if combine {
					job.Combine = firstValue
				}
				cell.Selected = SelectFor(job)
				cells = append(cells, cell)

				fmtMBps := func(s mapred.WriterStrategy) string {
					v, ok := cell.MBps[s]
					if !ok {
						return "-"
					}
					return fmt.Sprintf("%.0f", v)
				}
				rep.AddRow(
					fmt.Sprintf("%d", p), fmt.Sprintf("%d", rb), fmt.Sprintf("%v", combine),
					fmtMBps(mapred.WriterSortSpill), fmtMBps(mapred.WriterBypass), fmtMBps(mapred.WriterSortMerge),
					string(cell.Winner), string(cell.Selected))
			}
		}
	}
	matched := 0
	for _, c := range cells {
		if c.Winner == c.Selected {
			matched++
		}
	}
	rep.AddNote("Selector matched the measured winner on %d of %d cells", matched, len(cells))
	return rep, cells, nil
}

// SelectFor exposes the selector's choice for a synthetic job shape (the
// matrix and its smoke assertions use it; cmd/jbsbench prints it).
func SelectFor(job *mapred.Job) mapred.WriterStrategy {
	return mapred.SelectWriter(job).Strategy
}

// WriterMatrixSmoke is the CI assertion over a measured grid: every
// strategy must have at least one cell where the selector chose it AND
// the measurement crowned it — the encoded thresholds still match this
// machine's reality.
func WriterMatrixSmoke(cells []WriterCell) error {
	confirmed := make(map[mapred.WriterStrategy]bool, len(matrixStrategies))
	for _, c := range cells {
		if c.Selected == c.Winner {
			confirmed[c.Selected] = true
		}
	}
	for _, s := range matrixStrategies {
		if !confirmed[s] {
			return fmt.Errorf("bench: writer-matrix smoke: no cell where the selector picked %q and it measured fastest", s)
		}
	}
	return nil
}
