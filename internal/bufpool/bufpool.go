// Package bufpool provides the size-classed, leak-accounted buffer pool
// behind JBS's allocation-free data path. Segment bytes flow from the
// MOFSupplier's disk reads through the transport into the NetMerger in
// leased buffers: a Lease is acquired from a Pool, may be shared by
// concurrent readers via Retain, and returns its buffer to the pool when
// the last holder calls Release. The pool keeps gets/puts/outstanding
// counters so tests can prove no lease leaked (see LeakCheck).
//
// The paper's Fig. 11 buffer-size analysis presumes transport buffers are
// a managed, reused resource; this package is that resource for every
// backend, with sync.Pool recycling per power-of-two size class.
package bufpool

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minClassBits is the smallest size class, 1 KB: request frames and
	// chunk headers land here.
	minClassBits = 10
	// maxClassBits is the largest pooled class, 16 MB: a shuffle segment at
	// the paper's scale. Larger leases are allocated directly and returned
	// to the garbage collector on release.
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1
)

// Stats is a snapshot of a Pool's counters.
type Stats struct {
	// Gets counts leases handed out (including adopted and oversize ones).
	Gets int64
	// Puts counts leases fully released.
	Puts int64
	// Misses counts Gets that had to allocate because the class was empty.
	Misses int64
	// Oversize counts Gets beyond the largest class (direct allocations).
	Oversize int64
	// Outstanding is Gets - Puts: leases currently held somewhere.
	Outstanding int64
}

// Pool is a size-classed buffer pool. The zero value is not usable; use
// New. Pools are safe for concurrent use.
type Pool struct {
	// classes[i] recycles *Lease values whose buffer is 1<<(i+minClassBits)
	// bytes; recycling the Lease together with its buffer keeps the steady
	// state free of both buffer and header allocations.
	classes [numClasses]sync.Pool

	gets     atomic.Int64
	puts     atomic.Int64
	misses   atomic.Int64
	oversize atomic.Int64

	// classGets/classPuts split the lease accounting per size class so a
	// leak's size class is visible (index numClasses covers adopted and
	// oversize leases, whose class is -1).
	classGets [numClasses + 1]atomic.Int64
	classPuts [numClasses + 1]atomic.Int64
}

// classIndex maps a Lease.class to its accounting slot.
func classIndex(class int) int {
	if class < 0 {
		return numClasses
	}
	return class
}

// ClassStat is one size class's lease accounting.
type ClassStat struct {
	// Size is the class's buffer size in bytes, or -1 for the
	// adopted/oversize bucket.
	Size int
	// Gets and Puts count leases handed out of / returned to this class.
	Gets, Puts int64
}

// Outstanding is Gets - Puts: this class's leases currently held.
func (s ClassStat) Outstanding() int64 { return s.Gets - s.Puts }

// Label names the class for metrics and debug output ("64KiB",
// "oversize").
func (s ClassStat) Label() string {
	if s.Size < 0 {
		return "oversize"
	}
	if s.Size >= 1<<20 {
		return fmt.Sprintf("%dMiB", s.Size>>20)
	}
	return fmt.Sprintf("%dKiB", s.Size>>10)
}

// ClassStats snapshots the per-size-class lease accounting; the last
// entry is the adopted/oversize bucket.
func (p *Pool) ClassStats() []ClassStat {
	out := make([]ClassStat, numClasses+1)
	for i := 0; i <= numClasses; i++ {
		size := -1
		if i < numClasses {
			size = 1 << (i + minClassBits)
		}
		out[i] = ClassStat{Size: size, Gets: p.classGets[i].Load(), Puts: p.classPuts[i].Load()}
	}
	return out
}

// New creates an empty pool.
func New() *Pool { return &Pool{} }

// defaultPool serves the transports and any caller that does not inject
// its own pool.
var defaultPool = New()

// Default returns the process-wide shared pool.
func Default() *Pool { return defaultPool }

// classFor returns the smallest class index whose buffers hold n bytes, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// Get leases a buffer whose Bytes() is exactly n long (backed by the
// enclosing size class). The lease starts with one reference; the caller
// owns it and must Release it exactly once, or hand ownership on.
func (p *Pool) Get(n int) *Lease {
	p.gets.Add(1)
	c := classFor(n)
	p.classGets[classIndex(c)].Add(1)
	if c < 0 {
		p.oversize.Add(1)
		l := &Lease{pool: p, full: make([]byte, n), n: n, class: -1}
		l.refs.Store(1)
		return l
	}
	if v := p.classes[c].Get(); v != nil {
		l := v.(*Lease)
		l.n = n
		l.refs.Store(1)
		return l
	}
	p.misses.Add(1)
	l := &Lease{pool: p, full: make([]byte, 1<<(c+minClassBits)), n: n, class: c}
	l.refs.Store(1)
	return l
}

// Adopt wraps a caller-owned slice in a lease so non-pooled producers (a
// transport backend without a pooled receive path) fit the lease/release
// discipline. The buffer is not recycled into a class on release — it came
// from outside — but the lease still participates in leak accounting.
func (p *Pool) Adopt(buf []byte) *Lease {
	p.gets.Add(1)
	p.classGets[numClasses].Add(1)
	l := &Lease{pool: p, full: buf, n: len(buf), class: -1}
	l.refs.Store(1)
	return l
}

// Grow returns a lease with capacity for at least capacity bytes carrying
// l's current bytes and length. When l already fits it is returned
// unchanged; otherwise a larger lease is acquired, l's bytes are copied,
// and l is released. The caller must treat the returned lease as the new
// owner handle.
func (p *Pool) Grow(l *Lease, capacity int) *Lease {
	if capacity <= len(l.full) {
		return l
	}
	nl := p.Get(capacity)
	copy(nl.full, l.Bytes())
	nl.n = l.n
	l.Release()
	return nl
}

// Stats snapshots the counters.
func (p *Pool) Stats() Stats {
	gets, puts := p.gets.Load(), p.puts.Load()
	return Stats{
		Gets:        gets,
		Puts:        puts,
		Misses:      p.misses.Load(),
		Oversize:    p.oversize.Load(),
		Outstanding: gets - puts,
	}
}

// Outstanding returns the number of leases not yet fully released.
func (p *Pool) Outstanding() int64 { return p.gets.Load() - p.puts.Load() }

// LeakCheck returns an error when leases are outstanding. Tests call it
// after draining the code under test: a lease acquired without a matching
// final Release fails the check.
func (p *Pool) LeakCheck() error {
	if n := p.Outstanding(); n != 0 {
		return fmt.Errorf("bufpool: %d leases outstanding (gets=%d puts=%d)",
			n, p.gets.Load(), p.puts.Load())
	}
	return nil
}

// Lease is one leased buffer. It starts with a single reference held by
// the Get/Adopt caller; Retain adds readers, Release drops one, and the
// final Release returns the buffer to its size class. After the final
// Release the lease and its bytes must not be touched — the buffer is
// immediately reusable by another Get.
type Lease struct {
	pool  *Pool
	full  []byte // class-sized backing array
	n     int    // logical length: Bytes() is full[:n]
	class int    // size class, or -1 for adopted/oversize buffers
	refs  atomic.Int32
}

// Bytes returns the leased buffer's logical contents.
func (l *Lease) Bytes() []byte { return l.full[:l.n] }

// Len returns the logical length.
func (l *Lease) Len() int { return l.n }

// Cap returns the backing capacity (the size class).
func (l *Lease) Cap() int { return len(l.full) }

// SetLen resizes the logical length within the backing capacity; it panics
// beyond Cap. Use Pool.Grow to enlarge the backing buffer.
func (l *Lease) SetLen(n int) {
	if n < 0 || n > len(l.full) {
		panic(fmt.Sprintf("bufpool: SetLen(%d) outside capacity %d", n, len(l.full)))
	}
	l.n = n
}

// Retain adds a reference for another concurrent holder (a second reader
// of a cached segment). Each Retain obligates one more Release.
func (l *Lease) Retain() {
	if l.refs.Add(1) <= 1 {
		panic("bufpool: Retain of a released lease")
	}
}

// Release drops one reference. The last Release returns the buffer to its
// size class; releasing more times than retained panics — it means two
// holders both believed they owned the final reference.
func (l *Lease) Release() {
	r := l.refs.Add(-1)
	if r > 0 {
		return
	}
	if r < 0 {
		panic("bufpool: Release without matching Get/Retain")
	}
	p := l.pool
	p.puts.Add(1)
	p.classPuts[classIndex(l.class)].Add(1)
	if l.class >= 0 {
		p.classes[l.class].Put(l)
	}
}
