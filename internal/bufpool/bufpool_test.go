package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {1 << 10, 0},
		{1<<10 + 1, 1}, {1 << 11, 1},
		{100 << 10, 7}, // 128 KB class holds the default transport buffer
		{1 << 24, numClasses - 1},
		{1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetReleaseRecycles(t *testing.T) {
	p := New()
	l := p.Get(1000)
	if len(l.Bytes()) != 1000 || l.Cap() != 1<<10 {
		t.Fatalf("lease len=%d cap=%d", len(l.Bytes()), l.Cap())
	}
	// The class-sized buffer must come back on a subsequent Get. One
	// cycle is not guaranteed: sync.Pool deliberately drops a fraction
	// of Puts under the race detector, so allow a few attempts — any
	// recycle proves the size-class wiring.
	recycled := false
	attempts := 0
	for ; attempts < 32 && !recycled; attempts++ {
		buf := &l.Bytes()[0]
		l.Release()
		l = p.Get(512)
		recycled = &l.Bytes()[0] == buf
	}
	if !recycled {
		t.Error("released buffer never recycled")
	}
	l.Release()
	st := p.Stats()
	if st.Gets != int64(1+attempts) || st.Puts != st.Gets || st.Misses < 1 || st.Outstanding != 0 {
		t.Errorf("stats = %+v after %d attempts", st, attempts)
	}
}

func TestLeakCheckFailsOnHeldLease(t *testing.T) {
	p := New()
	l := p.Get(64)
	if err := p.LeakCheck(); err == nil {
		t.Fatal("LeakCheck passed with an outstanding lease")
	}
	l.Release()
	if err := p.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck after release: %v", err)
	}
}

func TestRetainSharesOneBuffer(t *testing.T) {
	p := New()
	l := p.Get(8)
	copy(l.Bytes(), "segment!")
	l.Retain() // second reader
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if string(l.Bytes()) != "segment!" {
				t.Error("reader observed wrong bytes")
			}
			l.Release()
		}()
	}
	wg.Wait()
	if err := p.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAfterFinalPanics(t *testing.T) {
	p := New()
	l := p.Get(1 << 25) // oversize: not recycled, safe to double-release
	l.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	l.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	p := New()
	l := p.Get(1 << 25)
	l.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain after final Release did not panic")
		}
	}()
	l.Retain()
}

func TestOversizeLease(t *testing.T) {
	p := New()
	l := p.Get(1<<24 + 1)
	if len(l.Bytes()) != 1<<24+1 {
		t.Fatalf("oversize len = %d", len(l.Bytes()))
	}
	l.Release()
	if st := p.Stats(); st.Oversize != 1 || st.Outstanding != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdopt(t *testing.T) {
	p := New()
	buf := []byte("adopted")
	l := p.Adopt(buf)
	if &l.Bytes()[0] != &buf[0] {
		t.Fatal("Adopt copied")
	}
	l.Release()
	if err := p.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	// An adopted buffer must not enter a size class.
	l2 := p.Get(len(buf))
	if l2.Cap() == len(buf) {
		t.Error("adopted buffer recycled into a class")
	}
	l2.Release()
}

func TestGrow(t *testing.T) {
	p := New()
	l := p.Get(4)
	copy(l.Bytes(), "abcd")
	same := p.Grow(l, 4)
	if same != l {
		t.Fatal("Grow reallocated within capacity")
	}
	grown := p.Grow(l, 1<<12)
	if grown == l || grown.Cap() < 1<<12 {
		t.Fatalf("Grow kept capacity %d", grown.Cap())
	}
	if string(grown.Bytes()) != "abcd" {
		t.Fatalf("Grow lost contents: %q", grown.Bytes())
	}
	grown.Release()
	if err := p.LeakCheck(); err != nil {
		t.Fatal(err) // Grow must have released the old lease
	}
}

func TestSetLen(t *testing.T) {
	p := New()
	l := p.Get(10)
	l.SetLen(0)
	if len(l.Bytes()) != 0 {
		t.Fatal("SetLen(0) ignored")
	}
	l.SetLen(l.Cap())
	defer l.Release()
	defer func() {
		if recover() == nil {
			t.Error("SetLen beyond Cap did not panic")
		}
	}()
	l.SetLen(l.Cap() + 1)
}

func TestConcurrentGetRelease(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l := p.Get((seed+1)*1024 + i)
				l.Bytes()[0] = byte(i)
				l.Release()
			}
		}(g)
	}
	wg.Wait()
	if err := p.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
