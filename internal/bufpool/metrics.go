package bufpool

import (
	"fmt"

	"repro/internal/metrics"
)

// The default pool self-registers with the default metrics registry:
// lease flow counters, the leak gauge (outstanding leases — nonzero at
// idle means a Release is missing somewhere; see docs/PERF.md for the
// ownership contract), and one outstanding gauge per size class so a leak
// also names the buffer size that leaked. Callback metrics read the
// pool's existing atomics, so the hot path pays nothing extra for being
// observable.
func init() {
	p := Default()
	r := metrics.Default()
	r.CounterFunc("jbs_bufpool_gets_total", "leases",
		"leases handed out by the default pool (including adopted and oversize)",
		func() int64 { return p.gets.Load() })
	r.CounterFunc("jbs_bufpool_puts_total", "leases",
		"leases fully released back to the default pool",
		func() int64 { return p.puts.Load() })
	r.CounterFunc("jbs_bufpool_misses_total", "leases",
		"Gets that allocated because their size class was empty",
		func() int64 { return p.misses.Load() })
	r.CounterFunc("jbs_bufpool_oversize_total", "leases",
		"Gets beyond the largest size class (direct allocations)",
		func() int64 { return p.oversize.Load() })
	r.GaugeFunc("jbs_bufpool_outstanding", "leases",
		"leases currently held (gets - puts); nonzero at idle means a leak",
		func() int64 { return p.Outstanding() })
	for i := 0; i <= numClasses; i++ {
		i := i
		size := -1
		if i < numClasses {
			size = 1 << (i + minClassBits)
		}
		label := ClassStat{Size: size}.Label()
		r.GaugeFunc(fmt.Sprintf("jbs_bufpool_class_outstanding{class=%q}", label), "leases",
			"leases currently held per size class",
			func() int64 { return p.classGets[i].Load() - p.classPuts[i].Load() })
	}
}
