package chaos

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flow"
	"repro/internal/leakcheck"
	"repro/internal/mof"
	"repro/internal/registry"
	"repro/internal/transport"
)

// scriptedPolicy is a Policy whose desired fleet size the test sets
// directly — the chaos scenario controls exactly when the autoscaler
// decides to shrink, so the drain races a job mid-flight by
// construction rather than by timing luck.
type scriptedPolicy struct {
	mu      sync.Mutex
	desired int
}

func (p *scriptedPolicy) Name() string { return "scripted" }

func (p *scriptedPolicy) Evaluate(time.Time, autoscale.Signals) autoscale.Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	return autoscale.Decision{Desired: p.desired, Reason: "scripted"}
}

func (p *scriptedPolicy) set(n int) {
	p.mu.Lock()
	p.desired = n
	p.mu.Unlock()
}

// loadDaemonGrid reads every fixture segment from disk — the byte
// identity reference for the fetches that race the drain.
func loadDaemonGrid(t *testing.T, dir string, tasks, parts int) map[string][]byte {
	t.Helper()
	ref := make(map[string][]byte, tasks*parts)
	for ti := 0; ti < tasks; ti++ {
		task := fmt.Sprintf("m-%05d", ti)
		dataPath := filepath.Join(dir, task+".data")
		ix, err := mof.ReadIndex(filepath.Join(dir, task+".index"))
		if err != nil {
			t.Fatalf("read index %s: %v", task, err)
		}
		for p := 0; p < parts; p++ {
			e, err := ix.Entry(p)
			if err != nil {
				t.Fatalf("index entry %s/%d: %v", task, p, err)
			}
			seg, err := mof.ReadSegmentBytes(dataPath, e)
			if err != nil {
				t.Fatalf("read segment %s/%d: %v", task, p, err)
			}
			ref[refKey(core.FetchSpec{MapTask: task, Partition: p})] = seg
		}
	}
	return ref
}

// liveSuppliers counts the non-draining suppliers in the registry map.
func liveSuppliers(t *testing.T, c *registry.Client) int {
	t.Helper()
	m, err := c.FetchMap()
	if err != nil {
		t.Fatalf("fetch map: %v", err)
	}
	n := 0
	for _, s := range m.Suppliers {
		if !s.Draining {
			n++
		}
	}
	return n
}

// TestChaosAutoscaleDrain drives the autoscaler's scale-down path
// against a live job: two in-process supplier daemons serve a fleet of
// registry-resolved fetches while the autoscaler — told by a scripted
// policy to shrink — drains the newest supplier mid-flight. The chaos
// invariants all hold: every fetch that raced the drain delivers bytes
// identical to the on-disk fixture, every shed is retried, and after
// full teardown no goroutine survives.
func TestChaosAutoscaleDrain(t *testing.T) {
	const (
		tasks    = 3
		parts    = 2
		segBytes = 24 << 10
		passes   = 6
		workers  = 4
	)
	snap := leakcheck.Take()

	srv, err := registry.NewServer(registry.ServerConfig{
		Addr:     "127.0.0.1:0",
		Shards:   8,
		LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("start registry: %v", err)
	}
	defer srv.Close()

	dir := t.TempDir()
	if err := daemon.WriteFixture(dir, tasks, parts, segBytes, 4242); err != nil {
		t.Fatalf("write fixture: %v", err)
	}
	reference := loadDaemonGrid(t, dir, tasks, parts)

	// A tight admission budget (under two segments plus queue headroom)
	// so the racing workers shed: the drain must interleave with parked
	// retries, not just clean fetches.
	launcher := &autoscale.InProcessLauncher{
		Template: daemon.SupplierConfig{
			Addr:         "127.0.0.1:0",
			RegistryAddr: srv.Addr(),
			MOFDir:       dir,
			Flow: &flow.Config{
				AdmitBytes: 32 << 10,
				QueueBytes: 16 << 10,
				RetryAfter: 2 * time.Millisecond,
			},
			HeartbeatInterval: 50 * time.Millisecond,
		},
	}
	rc := registry.NewClient(srv.Addr())
	defer rc.Close()
	script := &scriptedPolicy{desired: 2}
	as, err := autoscale.New(autoscale.Config{
		Collector: &autoscale.FleetCollector{Registry: rc},
		Policies:  []autoscale.Policy{script},
		Launcher:  launcher,
		Min:       1,
		Max:       3,
		IDPrefix:  "chaos",
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("new autoscaler: %v", err)
	}
	defer as.Close()

	// Tick 1: the scripted policy wants two suppliers; both launch and
	// register before the job starts.
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	if err := as.Tick(base); err != nil {
		t.Fatalf("scale-up tick: %v", err)
	}
	if got := liveSuppliers(t, rc); got != 2 {
		t.Fatalf("fleet after scale-up: %d live suppliers, want 2", got)
	}

	// The tenant resolves through the registry with a short cache TTL so
	// the post-drain handoff is picked up within a retry backoff.
	mrc := registry.NewClient(srv.Addr())
	defer mrc.Close()
	resolver := registry.NewResolver(mrc, 10*time.Millisecond)
	merger, err := core.NewNetMerger(core.MergerConfig{
		Transport:     transport.NewTCP(),
		WindowPerNode: 2,
		MaxRetries:    12,
		RetryBackoff:  2 * time.Millisecond,
		Flow: &flow.Config{
			AdmitBytes: 32 << 10,
			QueueBytes: 16 << 10,
			RetryAfter: 2 * time.Millisecond,
		},
		Resolver: func(spec core.FetchSpec) (string, error) {
			return resolver.Resolve(spec.MapTask)
		},
	})
	if err != nil {
		t.Fatalf("new merger: %v", err)
	}
	defer merger.Close()

	var specs []core.FetchSpec
	for pass := 0; pass < passes; pass++ {
		for ti := 0; ti < tasks; ti++ {
			for p := 0; p < parts; p++ {
				specs = append(specs, core.FetchSpec{MapTask: fmt.Sprintf("m-%05d", ti), Partition: p})
			}
		}
	}

	// Launch the job, then immediately drain: Tick retires the newest
	// supplier through daemon.Drain while the workers are mid-grid, so
	// fetches land before, during, and after the handoff.
	in := make(chan core.FetchSpec, len(specs))
	out := make(chan outcome, len(specs))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range in {
				var data []byte
				delivered := false
				err := merger.Fetch([]core.FetchSpec{spec}, func(_ core.FetchSpec, b []byte) error {
					data, delivered = b, true
					return nil
				})
				if err == nil && !delivered {
					err = fmt.Errorf("fetch returned without delivering or failing")
				}
				out <- outcome{spec: spec, data: data, err: err}
			}
		}()
	}
	for _, s := range specs {
		in <- s
	}
	close(in)

	script.set(1)
	if err := as.Tick(base.Add(time.Second)); err != nil {
		t.Fatalf("scale-down tick: %v", err)
	}
	if got := as.Managed(); len(got) != 1 || got[0] != "chaos-1" {
		t.Fatalf("managed fleet after drain: %v, want [chaos-1]", got)
	}
	if got := liveSuppliers(t, rc); got != 1 {
		t.Fatalf("fleet after drain: %d live suppliers, want 1", got)
	}

	wg.Wait()
	close(out)
	stats := merger.Stats()

	// Invariant 1 — byte identity: every fetch that raced the drain
	// delivered exactly the on-disk fixture bytes.
	delivered := 0
	for o := range out {
		if o.err != nil {
			t.Errorf("fetch %s/%d failed across the drain: %v", o.spec.MapTask, o.spec.Partition, o.err)
			continue
		}
		delivered++
		if want := reference[refKey(o.spec)]; !bytes.Equal(o.data, want) {
			t.Errorf("fetch %s/%d delivered %d bytes not identical to fixture (%d bytes)",
				o.spec.MapTask, o.spec.Partition, len(o.data), len(want))
		}
	}
	// Invariant 3 — conservation: everything terminated exactly once and
	// no shed was stranded.
	if delivered != len(specs) {
		t.Errorf("%d of %d fetches delivered", delivered, len(specs))
	}
	if stats.Sheds != stats.ShedRetries {
		t.Errorf("%d sheds but %d shed retries — a parked fetch was stranded across the drain", stats.Sheds, stats.ShedRetries)
	}
	t.Logf("drain race: %d fetches, retries=%d sheds=%d rerouted=%d", len(specs), stats.Retries, stats.Sheds, stats.Rerouted)

	// Invariant 2 — zero goroutine leaks after full teardown (merger,
	// surviving supplier, autoscaler, registry, clients).
	if err := merger.Close(); err != nil {
		t.Errorf("merger close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Close-then-RetireAll is the documented shutdown order: the loop
	// must stop before the fleet shrinks so no tick can relaunch.
	if err := as.Close(); err != nil {
		t.Errorf("autoscaler close: %v", err)
	}
	if err := as.RetireAll(ctx); err != nil {
		t.Errorf("retire surviving fleet: %v", err)
	}
	if err := rc.Close(); err != nil {
		t.Errorf("registry client close: %v", err)
	}
	if err := mrc.Close(); err != nil {
		t.Errorf("merger registry client close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("registry close: %v", err)
	}
	if err := snap.Check(0); err != nil {
		t.Errorf("goroutine leak across autoscale drain: %v", err)
	}
}
