// Package chaos is the end-to-end fault harness: it runs full
// supplier↔merger shuffles with the merger dialing through a seeded
// internal/faultnet schedule, and asserts the three invariants that
// define "the shuffle survived":
//
//  1. Byte identity — every fetch that completes delivers bytes
//     identical to a fault-free reference run of the same MOFs.
//  2. Zero goroutine leaks — after both runs tear down, no goroutine
//     started by the scenario survives (internal/leakcheck).
//  3. Conservation — every requested segment terminates exactly once
//     (delivered or failed, never both, never neither), the merger's
//     byte counter equals the bytes actually handed to callers, every
//     shed is eventually retried, and the supplier's admission ledger
//     drains back to zero.
//
// A scenario is reproduced from its seed alone: on failure the harness
// prints the exact `go test` command (with -seed) that replays it. See
// docs/TESTING.md.
package chaos

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/flow"
	"repro/internal/leakcheck"
	"repro/internal/mof"
	"repro/internal/transport"
)

// TB is the subset of testing.TB the harness needs. Keeping the harness
// off *testing.T directly lets non-test tooling (a future chaos CLI)
// drive it too.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
	TempDir() string
}

// Scenario is one seeded chaos run: a small shuffle topology plus the
// fault schedule to inflict on it and the outcomes it must exhibit.
type Scenario struct {
	// Name labels the scenario (and its subtest).
	Name string
	// Seed drives MOF content and every faultnet decision. The harness
	// prints it on failure; -seed on the chaos test binary overrides it.
	Seed uint64
	// Tasks and Parts shape the shuffle: Tasks MOFs × Parts partitions,
	// every (task, part) pair fetched once. Zero means the defaults
	// (3 × 2).
	Tasks, Parts int
	// SegBytes is the approximate segment size; with the fixture's 4 KiB
	// transport buffers a 24 KiB default segment travels as ~7 chunks,
	// leaving room for mid-stream faults. Zero means the default.
	SegBytes int
	// MaxRetries, FetchTimeout, RetryBackoff configure the merger under
	// test (zero = core defaults).
	MaxRetries   int
	FetchTimeout time.Duration
	RetryBackoff time.Duration
	// Flow, when non-nil, enables supplier admission control and merger
	// AIMD windows, so sheds mix into the fault soup.
	Flow *flow.Config
	// Suppliers is the fleet size. Every supplier serves the same fixture
	// directory — the replicated-MOF topology speculative fetching needs —
	// and with more than one the merger learns the full replica set for
	// every spec (index 0 is the primary all fetches start on). Zero or
	// one keeps the classic single-node shuffle.
	Suppliers int
	// Hedge arms the merger's speculative-fetch controller. Requires
	// Suppliers > 1, so a hedge has a distinct replica to race.
	Hedge *flow.HedgeConfig
	// Faults installs the scenario's fault rules; addr is the supplier's
	// bound address, for Node/Blackout scoping. Nil runs fault-free.
	Faults func(addr string, sched *faultnet.Schedule)
	// FaultsAll is Faults for a fleet: it receives every supplier address
	// (primary first) so rules can be scoped per node. When set it is
	// called instead of Faults.
	FaultsAll func(addrs []string, sched *faultnet.Schedule)
	// CloseAfter, when positive, hard-closes the supplier at index
	// CloseSupplier that long into the faulted run — a mid-race drain.
	// Attempts in flight against it die and must be absorbed by the
	// hedge/retry machinery without breaking any invariant.
	CloseAfter    time.Duration
	CloseSupplier int
	// WantCorrupt asserts the merger detected at least one corrupt frame
	// (jbs_merger_corrupt_frames) — and, via byte identity, that the
	// damaged segments were transparently re-fetched.
	WantCorrupt bool
	// WantDeadline asserts the fetch deadline watchdog tripped.
	WantDeadline bool
	// WantErrors marks a scenario whose faults are unrecoverable by
	// design (e.g. every dial refused): fetch errors are expected, and
	// at least one must surface. Conservation and leak checks still
	// apply in full.
	WantErrors bool
	// WantHedges asserts the hedging controller launched at least one
	// speculative duplicate.
	WantHedges bool
	// WantRerouted asserts at least one parked fetch moved to a replica
	// on retry (the failure-path rotation, as opposed to a hedge race).
	WantRerouted bool
	// MinFaults asserts the schedule actually injected at least this
	// many faults in total, so a mis-scoped rule cannot silently turn a
	// chaos scenario into a clean run.
	MinFaults int64
}

func (sc *Scenario) applyDefaults() {
	if sc.Tasks == 0 {
		sc.Tasks = 3
	}
	if sc.Parts == 0 {
		sc.Parts = 2
	}
	if sc.SegBytes == 0 {
		sc.SegBytes = 24 << 10
	}
	if sc.MaxRetries == 0 {
		sc.MaxRetries = 6
	}
	if sc.Suppliers == 0 {
		sc.Suppliers = 1
	}
}

// fixtureBufferSize is the supplier's transport buffer: small, so every
// segment crosses the wire in several chunks and mid-stream faults have
// a stream to interrupt.
const fixtureBufferSize = 4 << 10

// outcome is one fetch's terminal state.
type outcome struct {
	spec core.FetchSpec
	data []byte
	err  error
}

// Run executes one scenario end to end. It drives all assertions
// through t; on any failure it logs the one-command reproduction line.
func Run(t TB, sc Scenario) {
	t.Helper()
	sc.applyDefaults()

	// The failure epilogue: every invariant violation points back to
	// the command that replays this exact run.
	failed := false
	fail := func(format string, args ...any) {
		failed = true
		t.Errorf(format, args...)
	}
	defer func() {
		if failed {
			t.Logf("reproduce: go test ./internal/chaos -run 'TestChaos.*/%s' -seed=%d -v", sc.Name, sc.Seed)
		}
	}()

	snap := leakcheck.Take()
	tcp := transport.NewTCP()

	// Fixture: Tasks MOFs × Parts partitions with seed-derived content,
	// served by every supplier in the fleet (a shared directory is the
	// replicated-MOF layout — each node holds a full copy).
	dir := t.TempDir()
	lookup, specs := buildFixture(t, dir, sc)
	suppliers := make([]*core.MOFSupplier, sc.Suppliers)
	addrs := make([]string, sc.Suppliers)
	for i := range suppliers {
		s, err := core.NewMOFSupplier(core.SupplierConfig{
			Transport:      tcp,
			Addr:           "127.0.0.1:0",
			BufferSize:     fixtureBufferSize,
			DataCacheBytes: 1 << 20,
			Flow:           sc.Flow,
		}, lookup)
		if err != nil {
			t.Fatalf("chaos %s: start supplier %d: %v", sc.Name, i, err)
		}
		defer s.Close() // idempotent: a mid-run CloseAfter may get there first
		suppliers[i], addrs[i] = s, s.Addr()
	}
	for i := range specs {
		specs[i].Addr = addrs[0]
	}

	// Invariant 1 baseline: the fault-free run over the plain transport.
	reference := referenceRun(t, sc, tcp, specs)

	// The faulted run: same suppliers, merger dialing through the seeded
	// fault schedule.
	sched := faultnet.NewSchedule(sc.Seed)
	switch {
	case sc.FaultsAll != nil:
		sc.FaultsAll(addrs, sched)
	case sc.Faults != nil:
		sc.Faults(addrs[0], sched)
	}
	mc := core.MergerConfig{
		Transport:     faultnet.Wrap(tcp, sched),
		WindowPerNode: 2,
		MaxRetries:    sc.MaxRetries,
		FetchTimeout:  sc.FetchTimeout,
		RetryBackoff:  sc.RetryBackoff,
		Flow:          sc.Flow,
		Hedge:         sc.Hedge,
	}
	if len(addrs) > 1 {
		replicaSet := append([]string(nil), addrs...)
		mc.Replicas = func(core.FetchSpec) []string { return replicaSet }
	}
	merger, err := core.NewNetMerger(mc)
	if err != nil {
		t.Fatalf("chaos %s: start merger: %v", sc.Name, err)
	}
	var drainWG sync.WaitGroup
	if sc.CloseAfter > 0 {
		victim := suppliers[sc.CloseSupplier]
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			time.Sleep(sc.CloseAfter)
			_ = victim.Close()
		}()
	}
	outcomes := runFetches(merger, specs, 3)
	drainWG.Wait()
	stats := merger.Stats() // before Close: teardown must not inflate counters
	if sc.Hedge != nil {
		// A fetch's result can reach its caller a beat before the loser's
		// bookkeeping lands, so let decided races settle before reading
		// the hedge counters.
		if err := awaitHedgeSettle(merger); err != nil {
			fail("chaos %s: %v", sc.Name, err)
		}
		stats = merger.Stats()
	}

	// Invariant 1 — byte identity with the fault-free run.
	var deliveredBytes int64
	var delivered, errored int
	for _, o := range outcomes {
		if o.err != nil {
			errored++
			if !sc.WantErrors {
				fail("chaos %s: fetch %s/%d failed: %v", sc.Name, o.spec.MapTask, o.spec.Partition, o.err)
			}
			continue
		}
		delivered++
		deliveredBytes += int64(len(o.data))
		want := reference[refKey(o.spec)]
		if !bytes.Equal(o.data, want) {
			fail("chaos %s: fetch %s/%d delivered %d bytes not identical to fault-free run (%d bytes)",
				sc.Name, o.spec.MapTask, o.spec.Partition, len(o.data), len(want))
		}
	}
	if sc.WantErrors && errored == 0 {
		fail("chaos %s: scenario expects fetch errors, every fetch succeeded", sc.Name)
	}

	// Invariant 3 — conservation.
	if delivered+errored != len(specs) {
		fail("chaos %s: %d delivered + %d failed != %d requested", sc.Name, delivered, errored, len(specs))
	}
	if stats.BytesFetched != deliveredBytes {
		fail("chaos %s: merger counted %d fetched bytes, callers received %d", sc.Name, stats.BytesFetched, deliveredBytes)
	}
	if stats.Sheds != stats.ShedRetries {
		fail("chaos %s: %d sheds but %d shed retries — a parked fetch was stranded", sc.Name, stats.Sheds, stats.ShedRetries)
	}
	// Hedge conservation: every speculative attempt launched terminated
	// exactly once, and no duplicate is still racing after every fetch
	// resolved. Asserted unconditionally — with hedging off every term
	// must be zero.
	if sum := stats.HedgeWins + stats.HedgeLosses + stats.HedgeSheds +
		stats.HedgeFails + stats.HedgeErrors; stats.Hedges != sum {
		fail("chaos %s: %d hedges launched but %d terminated (wins=%d losses=%d sheds=%d fails=%d errors=%d) — a speculative attempt leaked",
			sc.Name, stats.Hedges, sum, stats.HedgeWins, stats.HedgeLosses,
			stats.HedgeSheds, stats.HedgeFails, stats.HedgeErrors)
	}
	if out := merger.FlowState().HedgeOutstanding; out != 0 {
		fail("chaos %s: %d hedge budget slots still held after every fetch resolved", sc.Name, out)
	}
	if sc.Flow != nil {
		for i, s := range suppliers {
			if err := awaitLedgerDrain(s); err != nil {
				fail("chaos %s: supplier %d: %v", sc.Name, i, err)
			}
		}
	}

	// Scenario-specific expectations.
	if sc.WantCorrupt && stats.CorruptFrames == 0 {
		fail("chaos %s: expected corrupt frames to be detected, counter is zero", sc.Name)
	}
	if sc.WantDeadline && stats.DeadlineTrips == 0 {
		fail("chaos %s: expected the fetch deadline to trip, counter is zero", sc.Name)
	}
	if sc.WantHedges && stats.Hedges == 0 {
		fail("chaos %s: expected speculative duplicates to launch, hedge counter is zero", sc.Name)
	}
	if sc.WantRerouted && stats.Rerouted == 0 {
		fail("chaos %s: expected retries to rotate to a replica, reroute counter is zero", sc.Name)
	}
	if total := totalFaults(sched.Stats()); total < sc.MinFaults {
		fail("chaos %s: schedule injected %d faults, scenario requires >= %d (%+v)",
			sc.Name, total, sc.MinFaults, sched.Stats())
	}

	// Invariant 2 — zero goroutine leaks after full teardown.
	if err := merger.Close(); err != nil {
		fail("chaos %s: merger close: %v", sc.Name, err)
	}
	for i, s := range suppliers {
		if err := s.Close(); err != nil {
			fail("chaos %s: supplier %d close: %v", sc.Name, i, err)
		}
	}
	if err := snap.Check(0); err != nil {
		fail("chaos %s: %v", sc.Name, err)
	}

	if !failed {
		t.Logf("chaos %s: seed=%d specs=%d retries=%d sheds=%d corrupt=%d deadline=%d hedges=%d/%dw rerouted=%d faults=%+v",
			sc.Name, sc.Seed, len(specs), stats.Retries, stats.Sheds, stats.CorruptFrames,
			stats.DeadlineTrips, stats.Hedges, stats.HedgeWins, stats.Rerouted, sched.Stats())
	}
}

// awaitHedgeSettle waits for every launched speculative attempt to reach
// a terminal state and every hedge budget slot to come home. Fetch
// results are delivered before the race's loser is unwound, so a caller
// returning from Fetch can observe the counters a beat early.
func awaitHedgeSettle(m *core.NetMerger) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := m.Stats()
		settled := st.Hedges == st.HedgeWins+st.HedgeLosses+st.HedgeSheds+st.HedgeFails+st.HedgeErrors
		if settled && m.FlowState().HedgeOutstanding == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hedge races never settled: %d launched, %d terminated, %d budget slots held",
				st.Hedges, st.HedgeWins+st.HedgeLosses+st.HedgeSheds+st.HedgeFails+st.HedgeErrors,
				m.FlowState().HedgeOutstanding)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// buildFixture writes the scenario's MOFs with seed-derived contents and
// returns the supplier lookup plus the full spec list (Addr unset).
func buildFixture(t TB, dir string, sc Scenario) (core.LookupFunc, []core.FetchSpec) {
	t.Helper()
	rng := rand.New(rand.NewPCG(sc.Seed, 0))
	paths := make(map[string][2]string, sc.Tasks)
	var specs []core.FetchSpec
	// Records sized so each segment lands near SegBytes.
	const recBytes = 512
	recs := sc.SegBytes / recBytes
	if recs == 0 {
		recs = 1
	}
	for i := 0; i < sc.Tasks; i++ {
		task := fmt.Sprintf("m-%05d", i)
		data := filepath.Join(dir, task+".data")
		index := filepath.Join(dir, task+".index")
		w, err := mof.NewWriter(data, index, sc.Parts)
		if err != nil {
			t.Fatalf("chaos %s: mof writer: %v", sc.Name, err)
		}
		val := make([]byte, recBytes)
		for p := 0; p < sc.Parts; p++ {
			if err := w.BeginSegment(p); err != nil {
				t.Fatalf("chaos %s: begin segment: %v", sc.Name, err)
			}
			for r := 0; r < recs; r++ {
				for b := range val {
					val[b] = byte(rng.Uint64())
				}
				key := fmt.Sprintf("%s-p%d-k%04d", task, p, r)
				if err := w.Append([]byte(key), val); err != nil {
					t.Fatalf("chaos %s: append: %v", sc.Name, err)
				}
			}
			specs = append(specs, core.FetchSpec{MapTask: task, Partition: p})
		}
		if err := w.Close(); err != nil {
			t.Fatalf("chaos %s: close mof: %v", sc.Name, err)
		}
		paths[task] = [2]string{data, index}
	}
	lookup := func(task string) (string, string, error) {
		p, ok := paths[task]
		if !ok {
			return "", "", fmt.Errorf("no MOF %s", task)
		}
		return p[0], p[1], nil
	}
	return lookup, specs
}

func refKey(s core.FetchSpec) string {
	return fmt.Sprintf("%s/%d", s.MapTask, s.Partition)
}

// referenceRun fetches every spec over the plain transport and returns
// the delivered bytes per spec. Any failure here is a broken fixture,
// not an interesting chaos outcome.
func referenceRun(t TB, sc Scenario, tcp transport.Transport, specs []core.FetchSpec) map[string][]byte {
	t.Helper()
	m, err := core.NewNetMerger(core.MergerConfig{Transport: tcp, WindowPerNode: 2})
	if err != nil {
		t.Fatalf("chaos %s: reference merger: %v", sc.Name, err)
	}
	defer m.Close()
	ref := make(map[string][]byte, len(specs))
	var mu sync.Mutex
	err = m.Fetch(specs, func(spec core.FetchSpec, data []byte) error {
		mu.Lock()
		ref[refKey(spec)] = data
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("chaos %s: fault-free reference run failed: %v", sc.Name, err)
	}
	if len(ref) != len(specs) {
		t.Fatalf("chaos %s: reference run delivered %d of %d specs", sc.Name, len(ref), len(specs))
	}
	return ref
}

// runFetches issues one Fetch per spec from a small worker pool, so
// per-spec outcomes stay independent (a Fetch batch stops delivering
// after its first error) while the merger still sees concurrent load.
// Workers communicate only through channels — no testing calls off the
// test goroutine (see jbsvet's testgoroutine check).
func runFetches(m *core.NetMerger, specs []core.FetchSpec, workers int) []outcome {
	in := make(chan core.FetchSpec)
	out := make(chan outcome, len(specs))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range in {
				var data []byte
				delivered := false
				err := m.Fetch([]core.FetchSpec{spec}, func(_ core.FetchSpec, b []byte) error {
					data, delivered = b, true
					return nil
				})
				if err == nil && !delivered {
					err = fmt.Errorf("chaos: fetch returned without delivering or failing")
				}
				out <- outcome{spec: spec, data: data, err: err}
			}
		}()
	}
	for _, s := range specs {
		in <- s
	}
	close(in)
	wg.Wait()
	close(out)
	res := make([]outcome, 0, len(specs))
	for o := range out {
		res = append(res, o)
	}
	return res
}

// awaitLedgerDrain waits for the supplier's admission ledger to return
// to zero resident bytes: every admitted byte was released. The release
// happens on the transmit worker after the last chunk is sent, so it can
// trail the merger-side completion by a scheduler beat.
func awaitLedgerDrain(s *core.MOFSupplier) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.FlowState()
		if st.Ledger == nil {
			return fmt.Errorf("supplier reports no admission ledger")
		}
		if st.Ledger.Used == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("admission ledger never drained: %d bytes still admitted (conservation violation)", st.Ledger.Used)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// totalFaults sums a schedule's injected-fault counters.
func totalFaults(f faultnet.Stats) int64 {
	return f.Resets + f.Truncations + f.Corruptions + f.Delays + f.Stalls +
		f.RefusedDials + f.BlackoutDenials
}
