package chaos

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/flow"
	"repro/internal/leakcheck"
)

// TestMain doubles as the process-chaos supplier entry point: the
// process-level scenarios re-exec this test binary with JBS_CHAOS_PROC
// set, turning it into a real standalone supplier daemon the parent
// can SIGKILL and restart (see proc_test.go).
func TestMain(m *testing.M) {
	if os.Getenv("JBS_CHAOS_PROC") == "supplier" {
		procSupplierMain()
		return
	}
	leakcheck.Main(m)
}

// seedFlag replays a failing scenario: the harness prints the exact
// command on failure, e.g.
//
//	go test ./internal/chaos -run 'TestChaosScenarios/bit-flip' -seed=1234 -v
var seedFlag = flag.Uint64("seed", 0, "override every scenario's seed (for reproducing a failed chaos run)")

// scenarios is the chaos suite: each entry is one seeded fault schedule
// the shuffle must survive with byte-identical output, zero goroutine
// leaks, and conserved accounting. All run in -short mode (CI).
func scenarios() []Scenario {
	return []Scenario{
		{
			Name: "clean-baseline",
			Seed: 101,
			// No faults: the harness itself must hold its invariants on a
			// healthy fabric before the fault scenarios mean anything.
		},
		{
			Name: "reset-mid-stream",
			Seed: 202,
			Faults: func(addr string, s *faultnet.Schedule) {
				// The first connection dies after 12 KiB — mid-segment with
				// 4 KiB chunks — so in-flight fetches fail over to a fresh
				// connection without double-counting window slots.
				s.ResetAfter(12 << 10).Times(1)
			},
			MinFaults: 1,
		},
		{
			Name: "reset-storm",
			Seed: 303,
			Faults: func(addr string, s *faultnet.Schedule) {
				// Three consecutive connections die after 8 KiB each: the
				// retry budget absorbs repeated interruptions of the same
				// fetches.
				s.ResetAfter(8 << 10).Times(3)
			},
			MaxRetries: 8,
			MinFaults:  3,
		},
		{
			Name: "partial-write",
			Seed: 404,
			Faults: func(addr string, s *faultnet.Schedule) {
				// The second frame arrives truncated to half its length and
				// the stream dies: the CRC32C checksum must reject the half
				// frame rather than let it poison reassembly.
				s.TruncateFrame(2).Times(1)
			},
			WantCorrupt: true,
			MinFaults:   1,
		},
		{
			Name: "bit-flip",
			Seed: 505,
			Faults: func(addr string, s *faultnet.Schedule) {
				// One bit flips in the first connection's fourth frame. The
				// connection itself stays healthy — only the checksum can
				// catch this — and the damaged segment must be transparently
				// re-fetched (byte identity proves it).
				s.CorruptFrame(4).Times(1)
			},
			WantCorrupt: true,
			MinFaults:   1,
		},
		{
			Name: "stalled-read",
			Seed: 606,
			Faults: func(addr string, s *faultnet.Schedule) {
				// The first connection stops responding at its second frame
				// while staying open: no transport error will ever surface,
				// so only the fetch deadline watchdog can unstick it.
				s.StallFrame(2).Times(1)
			},
			FetchTimeout: 300 * time.Millisecond,
			WantDeadline: true,
			MinFaults:    1,
		},
		{
			Name: "dial-refused",
			Seed: 707,
			Faults: func(addr string, s *faultnet.Schedule) {
				// The first two dial attempts are refused outright: retry
				// backoff must probe gently instead of burning the budget in
				// a tight loop.
				s.RefuseDials().Times(2)
			},
			MinFaults: 2,
		},
		{
			Name: "blackout-window",
			Seed: 808,
			Faults: func(addr string, s *faultnet.Schedule) {
				// The supplier node is unreachable for the first 150ms of
				// the run; exponential backoff must carry fetches across the
				// window.
				s.Blackout(addr, 0, 150*time.Millisecond)
			},
			MaxRetries: 12,
			MinFaults:  1,
		},
		{
			Name: "jittery-net",
			Seed: 909,
			Faults: func(addr string, s *faultnet.Schedule) {
				// Every second frame on the first two connections is delayed
				// 3ms: reordering pressure and RTT noise, no failures.
				s.DelayFrame(3*time.Millisecond, 2).Times(2)
			},
			MinFaults: 1,
		},
		{
			Name: "shed-under-reset",
			Seed: 1010,
			Faults: func(addr string, s *faultnet.Schedule) {
				// Connection resets while the supplier is shedding under a
				// tiny admission budget: retry-after parking and failure
				// retry must not double-count each other's window slots.
				s.ResetAfter(10 << 10).Times(2)
			},
			Flow: &flow.Config{
				AdmitBytes: 16 << 10,
				QueueBytes: 8 << 10,
				RetryAfter: 3 * time.Millisecond,
			},
			MaxRetries: 8,
			MinFaults:  1,
		},
		{
			Name: "mixed-chaos",
			Seed: 1111,
			Faults: func(addr string, s *faultnet.Schedule) {
				// Everything at once, probabilistically: the closest thing
				// to a real bad day. The seed pins which connections draw
				// which faults.
				s.ResetAfter(20 << 10).Prob(0.5)
				s.CorruptFrame(5).Prob(0.5).Times(2)
				s.DelayFrame(2*time.Millisecond, 3).Prob(0.5)
				s.RefuseDials().Times(1)
			},
			MaxRetries: 10,
			MinFaults:  1,
		},
		{
			Name: "all-dials-refused",
			Seed: 1212,
			Faults: func(addr string, s *faultnet.Schedule) {
				// The node is gone and never comes back: every fetch must
				// fail cleanly — errors surfaced, accounting conserved, no
				// goroutine left behind.
				s.RefuseDials()
			},
			MaxRetries:   2,
			RetryBackoff: time.Millisecond,
			WantErrors:   true,
			MinFaults:    1,
		},
	}
}

// TestChaosScenarios runs the full chaos suite. Every scenario runs in
// -short mode; CI runs exactly this.
func TestChaosScenarios(t *testing.T) {
	for _, sc := range scenarios() {
		sc := sc
		if *seedFlag != 0 {
			sc.Seed = *seedFlag
		}
		// Scenarios run serially: each takes its own goroutine-leak
		// snapshot, and a parallel sibling's goroutines would read as
		// leaks.
		t.Run(sc.Name, func(t *testing.T) { Run(t, sc) })
	}
}

// TestChaosSeedSweep stretches mixed-chaos across extra seeds in long
// mode, hunting interleavings the fixed suite seeds miss.
func TestChaosSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep runs in long mode only")
	}
	base := scenarios()
	var mixed Scenario
	for _, sc := range base {
		if sc.Name == "mixed-chaos" {
			mixed = sc
			break
		}
	}
	for i := uint64(1); i <= 8; i++ {
		sc := mixed
		sc.Seed = mixed.Seed*1000 + i
		sc.Name = fmt.Sprintf("mixed-chaos-sweep-%d", i)
		if *seedFlag != 0 {
			sc.Seed = *seedFlag
		}
		t.Run(sc.Name, func(t *testing.T) { Run(t, sc) })
	}
}
