package chaos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/flow"
)

// hedgeScenarios is the speculative-fetch chaos suite: replicated-MOF
// topologies where the hedging controller must cut tail latency without
// breaking any harness invariant — byte identity, conservation (now
// including the hedge ledger: every duplicate launched terminates
// exactly once), and zero goroutine leaks. Same seed-replay contract as
// the main suite.
func hedgeScenarios() []Scenario {
	// One scan tick and a sub-watchdog threshold: scenarios decide races
	// by making one side slow, not by tuning quantiles — the controller's
	// quantile math has its own unit tests (internal/flow).
	armed := func(threshold time.Duration) *flow.HedgeConfig {
		return &flow.HedgeConfig{Baseline: threshold, ScanInterval: time.Millisecond}
	}
	return []Scenario{
		{
			Name:      "stalled-primary-hedge-wins",
			Seed:      2101,
			Suppliers: 2,
			FaultsAll: func(addrs []string, s *faultnet.Schedule) {
				// The primary's first connection freezes at its second frame
				// while staying open: no transport error ever surfaces, and
				// the 30s default fetch deadline is an eternity away. Only
				// the hedge threshold can rescue the run quickly — every
				// fetch must be raced to the replica and won there.
				s.StallFrame(2).Node(addrs[0]).Times(1)
			},
			Hedge:      armed(25 * time.Millisecond),
			WantHedges: true,
			MinFaults:  1,
		},
		{
			Name:      "blackout-primary-replica-fallback",
			Seed:      2202,
			Suppliers: 2,
			FaultsAll: func(addrs []string, s *faultnet.Schedule) {
				// The primary is unreachable for the first 150ms. Dials fail
				// fast, so fetches never live long enough to trip the hedge
				// threshold — recovery must come from the failure-retry path
				// rotating parked fetches onto the replica, with the armed
				// hedging controller staying out of the way.
				s.Blackout(addrs[0], 0, 150*time.Millisecond)
			},
			Hedge:        armed(25 * time.Millisecond),
			MaxRetries:   8,
			WantRerouted: true,
			MinFaults:    1,
		},
		{
			Name:      "both-replicas-corrupt-then-refetch",
			Seed:      2303,
			Suppliers: 2,
			FaultsAll: func(addrs []string, s *faultnet.Schedule) {
				// One bit flips on each node's first connection: whichever
				// copy a fetch reads, the CRC32C checksum rejects it, and the
				// retry rotation bounces between replicas until a clean
				// connection serves the segment. Byte identity proves every
				// damaged copy was re-fetched, never patched over.
				s.CorruptFrame(3).Node(addrs[0]).Times(1)
				s.CorruptFrame(3).Node(addrs[1]).Times(1)
			},
			Hedge:        armed(25 * time.Millisecond),
			MaxRetries:   8,
			WantCorrupt:  true,
			WantRerouted: true,
			MinFaults:    2,
		},
		{
			Name:      "hedge-racing-drain",
			Seed:      2404,
			Suppliers: 3,
			FaultsAll: func(addrs []string, s *faultnet.Schedule) {
				// The primary's first two connections stall, so every fetch
				// hedges toward the first backup — which is hard-closed 30ms
				// in, mid-race. Dead duplicates must terminate as fails (not
				// leak budget slots), and the originals must still converge
				// via deadline trips and rotation to the last healthy node.
				s.StallFrame(2).Node(addrs[0]).Times(2)
			},
			Hedge:         armed(20 * time.Millisecond),
			FetchTimeout:  400 * time.Millisecond,
			MaxRetries:    10,
			CloseAfter:    30 * time.Millisecond,
			CloseSupplier: 1,
			WantHedges:    true,
			MinFaults:     1,
		},
	}
}

// TestChaosHedgeScenarios runs the hedged-fetch chaos suite. All run in
// -short mode; CI runs exactly this via `make chaos-hedge`. Replay one
// with the same command the harness prints on failure:
//
//	go test ./internal/chaos -run 'TestChaos.*/stalled-primary-hedge-wins' -seed=2101 -v
func TestChaosHedgeScenarios(t *testing.T) {
	for _, sc := range hedgeScenarios() {
		sc := sc
		if *seedFlag != 0 {
			sc.Seed = *seedFlag
		}
		// Serial, like the main suite: each scenario owns its
		// goroutine-leak snapshot.
		t.Run(sc.Name, func(t *testing.T) { Run(t, sc) })
	}
}

// TestChaosHedgeSeedSweep stretches the stalled-primary race across
// extra seeds in long mode, hunting hedge/cancel interleavings the
// fixed suite seed misses.
func TestChaosHedgeSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep runs in long mode only")
	}
	base := hedgeScenarios()
	for i := uint64(1); i <= 8; i++ {
		sc := base[0]
		sc.Seed = sc.Seed*1000 + i
		sc.Name = fmt.Sprintf("stalled-primary-sweep-%d", i)
		if *seedFlag != 0 {
			sc.Seed = *seedFlag
		}
		t.Run(sc.Name, func(t *testing.T) { Run(t, sc) })
	}
}
