package chaos

// Process-level chaos: the in-process suite (chaos.go) proves the
// shuffle survives network faults; these scenarios prove it survives
// supplier *process* churn — SIGKILL mid-shuffle, restart under the
// same identity, and SIGTERM graceful drain — with byte-identical
// output. Suppliers are real OS processes (this test binary re-exec'd
// via TestMain's JBS_CHAOS_PROC gate) registered against a real
// registry server; the merger resolves every fetch through the
// ownership map, so a kill is survived by lease expiry + reroute and a
// drain by shed + handoff.

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/registry"
)

// procSupplierMain is the re-exec'd child: a standalone supplier daemon
// configured from the environment. SIGTERM drains gracefully and exits
// 0; SIGKILL is the crash case the parent's lease expiry covers.
func procSupplierMain() {
	id := os.Getenv("JBS_CHAOS_ID")
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	d, err := daemon.StartSupplier(daemon.SupplierConfig{
		ID:                id,
		RegistryAddr:      os.Getenv("JBS_CHAOS_REGISTRY"),
		MOFDir:            os.Getenv("JBS_CHAOS_MOFDIR"),
		HeartbeatInterval: 100 * time.Millisecond,
		Log:               log.New(os.Stderr, "["+id+"] ", 0).Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "proc-supplier:", err)
		os.Exit(1)
	}
	<-sigs
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "proc-supplier: drain:", err)
		d.Close()
		os.Exit(1)
	}
	if err := d.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "proc-supplier:", err)
		os.Exit(1)
	}
	fmt.Println("proc-supplier: drained, exiting")
	os.Exit(0)
}

// procSupplier is one child supplier process under test control.
type procSupplier struct {
	id  string
	cmd *exec.Cmd
	out bytes.Buffer // read only after wait()

	waitOnce sync.Once
	waitErr  error
}

func (p *procSupplier) wait() error {
	p.waitOnce.Do(func() { p.waitErr = p.cmd.Wait() })
	return p.waitErr
}

func startProcSupplier(t *testing.T, regAddr, id, dir string) *procSupplier {
	t.Helper()
	p := &procSupplier{id: id, cmd: exec.Command(os.Args[0])}
	p.cmd.Env = append(os.Environ(),
		"JBS_CHAOS_PROC=supplier",
		"JBS_CHAOS_ID="+id,
		"JBS_CHAOS_REGISTRY="+regAddr,
		"JBS_CHAOS_MOFDIR="+dir,
	)
	p.cmd.Stdout = &p.out
	p.cmd.Stderr = &p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start supplier process %s: %v", id, err)
	}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.wait()
	})
	return p
}

func newProcRegistry(t *testing.T) *registry.Server {
	t.Helper()
	reg, err := registry.NewServer(registry.ServerConfig{
		Addr:   "127.0.0.1:0",
		Shards: 8,
		// A short lease keeps the kill scenario fast: a SIGKILLed
		// supplier's shards move within ~one TTL.
		LeaseTTL:      500 * time.Millisecond,
		SweepInterval: 50 * time.Millisecond,
		Log:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	return reg
}

// waitMembers polls the registry until want suppliers hold live,
// non-draining registrations.
func waitMembers(t *testing.T, regAddr string, want int) {
	t.Helper()
	c := registry.NewClient(regAddr)
	defer c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err := c.FetchMap()
		if err == nil {
			live := 0
			for _, s := range m.Suppliers {
				if !s.Draining {
					live++
				}
			}
			if live == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry never reached %d live suppliers", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestProcSupplierKillRestartMidShuffle is the acceptance scenario: a
// multi-round shuffle across two real supplier processes, one SIGKILLed
// after the first round and later restarted under the same identity.
// Every segment of every round must arrive byte-identical to the
// on-disk reference (the same MOFs the in-process suite serves), with
// zero surfaced errors — lost fetches fail over via lease expiry and
// ownership reroute, not via the caller.
func TestProcSupplierKillRestartMidShuffle(t *testing.T) {
	const tasks, parts, rounds = 4, 3, 8
	dir := t.TempDir()
	if err := daemon.WriteFixture(dir, tasks, parts, 8192, 1313); err != nil {
		t.Fatal(err)
	}
	reg := newProcRegistry(t)
	supA := startProcSupplier(t, reg.Addr(), "proc-a", dir)
	startProcSupplier(t, reg.Addr(), "proc-b", dir)
	waitMembers(t, reg.Addr(), 2)

	var once sync.Once
	st, err := daemon.RunMergerJob(daemon.MergerJobConfig{
		RegistryAddr: reg.Addr(),
		Tasks:        tasks,
		Parts:        parts,
		Rounds:       rounds,
		VerifyDir:    dir,
		ResolverTTL:  20 * time.Millisecond,
		MaxRetries:   16,
		Progress: func(format string, args ...any) {
			t.Logf(format, args...)
			once.Do(func() {
				// Mid-shuffle crash: no drain, no deregister — the hard
				// case only lease expiry can clean up.
				if err := supA.cmd.Process.Kill(); err != nil {
					t.Errorf("kill proc-a: %v", err)
				}
				t.Log("killed proc-a (SIGKILL)")
			})
		},
	})
	if err != nil {
		t.Fatalf("shuffle across supplier kill: %v\nproc-a output:\n%s", err, supA.out.String())
	}
	if st.Segments != tasks*parts*rounds || st.Errors != 0 {
		t.Fatalf("stats = %+v, want %d segments, 0 errors", st, tasks*parts*rounds)
	}
	supA.wait() // reap the killed child

	// Restart under the same identity (crash recovery): the registry
	// must accept the re-registration and route to the new process.
	startProcSupplier(t, reg.Addr(), "proc-a", dir)
	waitMembers(t, reg.Addr(), 2)
	st2, err := daemon.RunMergerJob(daemon.MergerJobConfig{
		RegistryAddr: reg.Addr(),
		Tasks:        tasks,
		Parts:        parts,
		Rounds:       2,
		VerifyDir:    dir,
		ResolverTTL:  20 * time.Millisecond,
		MaxRetries:   16,
	})
	if err != nil {
		t.Fatalf("shuffle after restart: %v", err)
	}
	if st2.Segments != tasks*parts*2 || st2.Errors != 0 {
		t.Fatalf("post-restart stats = %+v", st2)
	}
}

// TestProcSupplierGracefulDrain sends SIGTERM to a supplier mid-shuffle
// and requires the clean exit contract end to end: the process drains
// (sheds new fetches, finishes in-flight ones, hands shards off) and
// exits 0, and the concurrently running job completes with zero errors.
func TestProcSupplierGracefulDrain(t *testing.T) {
	const tasks, parts, rounds = 4, 3, 6
	dir := t.TempDir()
	if err := daemon.WriteFixture(dir, tasks, parts, 8192, 2424); err != nil {
		t.Fatal(err)
	}
	reg := newProcRegistry(t)
	supA := startProcSupplier(t, reg.Addr(), "proc-a", dir)
	startProcSupplier(t, reg.Addr(), "proc-b", dir)
	waitMembers(t, reg.Addr(), 2)

	var once sync.Once
	st, err := daemon.RunMergerJob(daemon.MergerJobConfig{
		RegistryAddr: reg.Addr(),
		Tasks:        tasks,
		Parts:        parts,
		Rounds:       rounds,
		VerifyDir:    dir,
		ResolverTTL:  20 * time.Millisecond,
		MaxRetries:   16,
		Progress: func(format string, args ...any) {
			t.Logf(format, args...)
			once.Do(func() {
				if err := supA.cmd.Process.Signal(syscall.SIGTERM); err != nil {
					t.Errorf("SIGTERM proc-a: %v", err)
				}
				t.Log("sent SIGTERM to proc-a")
			})
		},
	})
	if err != nil {
		t.Fatalf("shuffle across graceful drain: %v\nproc-a output:\n%s", err, supA.out.String())
	}
	if st.Segments != tasks*parts*rounds || st.Errors != 0 {
		t.Fatalf("stats = %+v, want %d segments, 0 errors", st, tasks*parts*rounds)
	}
	if err := supA.wait(); err != nil {
		t.Fatalf("drained supplier exited non-zero: %v\noutput:\n%s", err, supA.out.String())
	}
	if !bytes.Contains(supA.out.Bytes(), []byte("drained, exiting")) {
		t.Fatalf("no drain confirmation in proc-a output:\n%s", supA.out.String())
	}
}
