package chaos

import (
	"fmt"
	"io"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/mapred"
	"repro/internal/merge"
	"repro/internal/transport"
)

// buildWriterFixture writes the parity scenario's MOFs through one
// map-side writer strategy. The record stream per task is derived from
// the seed alone — every strategy sees the identical emit sequence — so
// any divergence downstream is the writer's doing.
func buildWriterFixture(t *testing.T, dir string, strategy mapred.WriterStrategy, tasks, parts int, seed uint64) (core.LookupFunc, []core.FetchSpec) {
	t.Helper()
	paths := make(map[string][2]string, tasks)
	var specs []core.FetchSpec
	for i := 0; i < tasks; i++ {
		task := fmt.Sprintf("m-%05d", i)
		w, err := mapred.NewShuffleWriter(strategy, mapred.WriterConfig{
			Partitions: parts,
			SortMemory: 8 << 10, // small enough that the sort writers spill runs
			Dir:        dir,
			TaskID:     task + "-" + string(strategy),
		})
		if err != nil {
			t.Fatalf("writer %s: %v", strategy, err)
		}
		rng := rand.New(rand.NewPCG(seed, uint64(i)))
		val := make([]byte, 256)
		for r := 0; r < 120; r++ {
			// Duplicate keys (rng range < record count) with distinct
			// values: stable equal-key ordering is part of the contract.
			key := []byte(fmt.Sprintf("%s-k%04d", task, rng.Uint64()%40))
			for b := range val {
				val[b] = byte(rng.Uint64())
			}
			copy(val, fmt.Sprintf("r%04d-", r))
			p := mapred.HashPartitioner(key, parts)
			if err := w.Add(p, key, val); err != nil {
				t.Fatalf("writer %s add: %v", strategy, err)
			}
		}
		final := mapred.MOFPaths{
			Data:  filepath.Join(dir, fmt.Sprintf("%s-%s.data", task, strategy)),
			Index: filepath.Join(dir, fmt.Sprintf("%s-%s.index", task, strategy)),
		}
		if err := w.Seal(final); err != nil {
			t.Fatalf("writer %s seal: %v", strategy, err)
		}
		paths[task] = [2]string{final.Data, final.Index}
		for p := 0; p < parts; p++ {
			specs = append(specs, core.FetchSpec{MapTask: task, Partition: p})
		}
	}
	lookup := func(task string) (string, string, error) {
		p, ok := paths[task]
		if !ok {
			return "", "", fmt.Errorf("no MOF %s", task)
		}
		return p[0], p[1], nil
	}
	return lookup, specs
}

// TestWriterParityOverRealShuffle is the writer-strategy counterpart of
// the chaos baseline: the same seeded record stream goes through each
// map-side writer, each writer's MOFs are served by a real MOFSupplier
// over real sockets, fetched by a real NetMerger, and reduced through the
// real merge path. The merged output must be byte-identical across
// writers — the read path cannot tell which writer ran.
func TestWriterParityOverRealShuffle(t *testing.T) {
	const tasks, parts = 3, 2
	const seed = 99

	snap := leakcheck.Take()
	run := func(strategy mapred.WriterStrategy) (string, merge.Stats) {
		tcp := transport.NewTCP()
		lookup, specs := buildWriterFixture(t, t.TempDir(), strategy, tasks, parts, seed)
		supplier, err := core.NewMOFSupplier(core.SupplierConfig{
			Transport:      tcp,
			Addr:           "127.0.0.1:0",
			BufferSize:     fixtureBufferSize,
			DataCacheBytes: 1 << 20,
		}, lookup)
		if err != nil {
			t.Fatalf("%s: start supplier: %v", strategy, err)
		}
		defer supplier.Close()
		for i := range specs {
			specs[i].Addr = supplier.Addr()
		}
		m, err := core.NewNetMerger(core.MergerConfig{Transport: tcp, WindowPerNode: 2})
		if err != nil {
			t.Fatalf("%s: start merger: %v", strategy, err)
		}
		defer m.Close()

		mergers := make([]*merge.NetLevitatedMerger, parts)
		for p := range mergers {
			mergers[p] = merge.NewNetLevitatedMerger()
		}
		var mu sync.Mutex
		err = m.Fetch(specs, func(spec core.FetchSpec, data []byte) error {
			mu.Lock()
			defer mu.Unlock()
			seg := append([]byte(nil), data...) // fetched buffer is reused
			return mergers[spec.Partition].AddSegment(seg)
		})
		if err != nil {
			t.Fatalf("%s: fetch: %v", strategy, err)
		}

		var out strings.Builder
		var stats merge.Stats
		for p, mg := range mergers {
			it, err := mg.Finish()
			if err != nil {
				t.Fatalf("%s: finish partition %d: %v", strategy, p, err)
			}
			for {
				rec, err := it.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%s: merge partition %d: %v", strategy, p, err)
				}
				out.Write(rec.Key)
				out.WriteByte('\t')
				out.Write(rec.Value)
				out.WriteByte('\n')
			}
			if err := it.Close(); err != nil {
				t.Fatalf("%s: close iterator: %v", strategy, err)
			}
			st := mg.Stats()
			stats.Segments += st.Segments
			stats.UnsortedSegments += st.UnsortedSegments
		}
		return out.String(), stats
	}

	base, baseStats := run(mapred.WriterSortSpill)
	if base == "" {
		t.Fatal("baseline run produced no output")
	}
	if baseStats.UnsortedSegments != 0 {
		t.Fatalf("sort-spill segments arrived unsorted: %+v", baseStats)
	}
	for _, s := range []mapred.WriterStrategy{mapred.WriterBypass, mapred.WriterSortMerge} {
		out, stats := run(s)
		if out != base {
			t.Fatalf("writer %s produced different merged output (%d vs %d bytes)", s, len(out), len(base))
		}
		switch s {
		case mapred.WriterBypass:
			// The bypass writer's segments are unsorted by construction;
			// the merger must have normalized every one.
			if stats.UnsortedSegments != stats.Segments {
				t.Fatalf("bypass: %d of %d segments normalized", stats.UnsortedSegments, stats.Segments)
			}
		case mapred.WriterSortMerge:
			if stats.UnsortedSegments != 0 {
				t.Fatalf("sort-merge segments arrived unsorted: %+v", stats)
			}
		}
	}

	if err := snap.Check(0); err != nil {
		t.Fatal(err)
	}
}
