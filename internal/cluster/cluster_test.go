package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simcpu"
	"repro/internal/simnet"
)

func mustSim(t *testing.T, spec JobSpec, tc TestCase) RunResult {
	t.Helper()
	r, err := Simulate(spec, tc)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func teraSpec(gb int64) JobSpec {
	return DefaultSpec(TerasortWorkload(), gb<<30)
}

func TestTestCaseNames(t *testing.T) {
	cases := map[TestCase]string{
		HadoopOnIPoIB: "Hadoop on IPoIB",
		HadoopOnSDP:   "Hadoop on SDP",
		JBSOnRDMA:     "JBS on RDMA",
		JBSOnRoCE:     "JBS on RoCE",
		JBSOn1GigE:    "JBS on 1GigE",
	}
	for tc, want := range cases {
		if tc.Name() != want {
			t.Errorf("Name() = %q, want %q", tc.Name(), want)
		}
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 8 {
		t.Fatalf("Table I has %d rows, want 8", len(rows))
	}
	// Check a few (protocol, network) cells against the paper's table.
	type cell struct{ transport, network string }
	want := map[string]cell{
		"Hadoop on 1GigE":  {"TCP/IP", "1GigE"},
		"Hadoop on 10GigE": {"TCP/IP", "10GigE"},
		"Hadoop on IPoIB":  {"IPoIB", "InfiniBand"},
		"Hadoop on SDP":    {"SDP", "InfiniBand"},
		"JBS on 10GigE":    {"TCP/IP", "10GigE"},
		"JBS on IPoIB":     {"IPoIB", "InfiniBand"},
		"JBS on RoCE":      {"RoCE", "10GigE"},
		"JBS on RDMA":      {"RDMA", "InfiniBand"},
	}
	for _, tc := range rows {
		w, ok := want[tc.Name()]
		if !ok {
			t.Errorf("unexpected row %q", tc.Name())
			continue
		}
		if tc.TransportName() != w.transport || tc.Network() != w.network {
			t.Errorf("%s: got (%s,%s), want (%s,%s)", tc.Name(),
				tc.TransportName(), tc.Network(), w.transport, w.network)
		}
	}
}

func TestEngineRuntime(t *testing.T) {
	if Hadoop.Runtime() != simcpu.Java() {
		t.Error("Hadoop should run the Java model")
	}
	if JBS.Runtime() != simcpu.Native() {
		t.Error("JBS should run the native model")
	}
	if Hadoop.String() != "Hadoop" || JBS.String() != "JBS" {
		t.Error("engine names wrong")
	}
}

func TestSpecDerivedQuantities(t *testing.T) {
	spec := teraSpec(256)
	if got := spec.MapTasks(); got != 1024 {
		t.Errorf("256GB / 256MB blocks = %d maps, want 1024", got)
	}
	if got := spec.ReduceTasks(); got != 44 {
		t.Errorf("reducers = %d, want 44 (22 nodes x 2 slots)", got)
	}
	segs := int64(spec.MapTasks()) * int64(spec.ReduceTasks())
	if got := spec.SegmentBytes(); got != (256<<30)/segs {
		t.Errorf("segment bytes = %d", got)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := teraSpec(16)
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes accepted")
	}
	bad2 := teraSpec(16)
	bad2.BufferSize = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero buffer accepted")
	}
	if _, err := Simulate(bad, HadoopOnIPoIB); err == nil {
		t.Error("Simulate accepted invalid spec")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := mustSim(t, teraSpec(32), JBSOnRDMA)
	b := mustSim(t, teraSpec(32), JBSOnRDMA)
	if a.ExecutionTime != b.ExecutionTime || a.AvgCPUUtil != b.AvgCPUUtil {
		t.Fatalf("simulation not deterministic: %v vs %v", a.ExecutionTime, b.ExecutionTime)
	}
}

func TestPhaseOrdering(t *testing.T) {
	r := mustSim(t, teraSpec(64), HadoopOnIPoIB)
	if !(r.MapPhaseEnd > 0 && r.MapPhaseEnd <= r.ShuffleEnd && r.ShuffleEnd <= r.ExecutionTime) {
		t.Fatalf("phase ordering broken: map=%g shuffle=%g end=%g",
			r.MapPhaseEnd, r.ShuffleEnd, r.ExecutionTime)
	}
}

func TestShuffleOverlapsMapPhase(t *testing.T) {
	// Segments of early map waves transfer while later maps still run:
	// the CPU trace is nonzero well before the map phase ends, and no
	// figure-scale job serializes map and shuffle fully.
	r := mustSim(t, teraSpec(128), JBSOnIPoIB)
	if r.ShuffleEnd-r.MapPhaseEnd > 0.7*r.ExecutionTime {
		t.Fatalf("shuffle appears fully serialized after maps: map=%g shuffle=%g total=%g",
			r.MapPhaseEnd, r.ShuffleEnd, r.ExecutionTime)
	}
}

func TestJBSNeverSpills(t *testing.T) {
	for _, gb := range []int64{16, 128, 256} {
		r := mustSim(t, teraSpec(gb), JBSOnIPoIB)
		if r.SpilledBytes != 0 {
			t.Errorf("%dGB: JBS spilled %d bytes, want 0 (network-levitated merge)", gb, r.SpilledBytes)
		}
	}
}

func TestHadoopSpillsOnlyBeyondBudget(t *testing.T) {
	small := mustSim(t, teraSpec(16), HadoopOnIPoIB)
	if small.SpilledBytes != 0 {
		t.Errorf("16GB: per-reducer data fits the budget; spilled %d", small.SpilledBytes)
	}
	big := mustSim(t, teraSpec(256), HadoopOnIPoIB)
	if big.SpilledBytes == 0 {
		t.Error("256GB: Hadoop should spill reduce-side shuffle data")
	}
}

func TestJBSConsolidatesConnections(t *testing.T) {
	h := mustSim(t, teraSpec(64), HadoopOnIPoIB)
	j := mustSim(t, teraSpec(64), JBSOnIPoIB)
	if j.Connections >= h.Connections {
		t.Fatalf("JBS connections %d not below Hadoop's %d", j.Connections, h.Connections)
	}
	// One consolidated connection per node pair.
	if j.Connections != DefaultNodes*DefaultNodes {
		t.Fatalf("JBS connections = %d, want %d node pairs", j.Connections, DefaultNodes*DefaultNodes)
	}
}

func TestFig7Shape(t *testing.T) {
	// At tiny inputs task startup dominates and JBS shows no benefit; from
	// 32GB on, JBS wins and the gain grows toward the disk-bound regime.
	var prevGain float64 = -1
	for _, gb := range []int64{32, 64, 128} {
		h := mustSim(t, teraSpec(gb), HadoopOnIPoIB)
		j := mustSim(t, teraSpec(gb), JBSOnIPoIB)
		gain := 1 - j.ExecutionTime/h.ExecutionTime
		if gain <= 0.05 {
			t.Errorf("%dGB: JBS gain %.1f%% too small", gb, 100*gain)
		}
		if gain >= 0.45 {
			t.Errorf("%dGB: JBS gain %.1f%% implausibly large", gb, 100*gain)
		}
		if gain < prevGain-0.02 {
			t.Errorf("%dGB: gain %.1f%% fell below smaller input's %.1f%%", gb, 100*gain, 100*prevGain)
		}
		prevGain = gain
	}
	// 16GB: no meaningful benefit (paper: startup costs dominate).
	h := mustSim(t, teraSpec(16), HadoopOnIPoIB)
	j := mustSim(t, teraSpec(16), JBSOnIPoIB)
	if g := 1 - j.ExecutionTime/h.ExecutionTime; g > 0.08 {
		t.Errorf("16GB: JBS gain %.1f%%, want near zero", 100*g)
	}
}

func TestSDPTracksIPoIB(t *testing.T) {
	// Section V-A: "the performance of Hadoop on IPoIB is very close to
	// that of Hadoop on SDP".
	for _, gb := range []int64{32, 128} {
		ip := mustSim(t, teraSpec(gb), HadoopOnIPoIB)
		sdp := mustSim(t, teraSpec(gb), HadoopOnSDP)
		if d := math.Abs(ip.ExecutionTime-sdp.ExecutionTime) / ip.ExecutionTime; d > 0.05 {
			t.Errorf("%dGB: SDP deviates %.1f%% from IPoIB", gb, 100*d)
		}
	}
}

func TestNetworkCrossover(t *testing.T) {
	// Small (cache-resident) jobs gain a lot from fast fabrics; large
	// (disk-bound) jobs gain much less (Section V-A).
	smallGain := func() float64 {
		h1 := mustSim(t, teraSpec(32), HadoopOn1GigE)
		h10 := mustSim(t, teraSpec(32), HadoopOn10GigE)
		return 1 - h10.ExecutionTime/h1.ExecutionTime
	}()
	bigGain := func() float64 {
		h1 := mustSim(t, teraSpec(256), HadoopOn1GigE)
		h10 := mustSim(t, teraSpec(256), HadoopOn10GigE)
		return 1 - h10.ExecutionTime/h1.ExecutionTime
	}()
	if smallGain < 0.2 {
		t.Errorf("32GB 10GigE gain %.1f%%, want substantial", 100*smallGain)
	}
	if bigGain >= smallGain {
		t.Errorf("large-input network gain %.1f%% not below small-input %.1f%%",
			100*bigGain, 100*smallGain)
	}
}

func TestRDMAFastestProtocolForJBS(t *testing.T) {
	for _, gb := range []int64{16, 64, 256} {
		rdma := mustSim(t, teraSpec(gb), JBSOnRDMA)
		for _, tc := range []TestCase{JBSOnIPoIB, JBSOnRoCE, JBSOn10GigE, JBSOn1GigE} {
			other := mustSim(t, teraSpec(gb), tc)
			if rdma.ExecutionTime >= other.ExecutionTime {
				t.Errorf("%dGB: RDMA (%.1fs) not faster than %s (%.1fs)",
					gb, rdma.ExecutionTime, tc.Name(), other.ExecutionTime)
			}
		}
		// RoCE beats plain 10GigE on the same wire.
		roce := mustSim(t, teraSpec(gb), JBSOnRoCE)
		tcp10 := mustSim(t, teraSpec(gb), JBSOn10GigE)
		if roce.ExecutionTime >= tcp10.ExecutionTime {
			t.Errorf("%dGB: RoCE (%.1fs) not faster than 10GigE TCP (%.1fs)",
				gb, roce.ExecutionTime, tcp10.ExecutionTime)
		}
	}
}

func TestCPUUtilizationReduction(t *testing.T) {
	// The headline Fig. 10 results at 128GB.
	h := mustSim(t, teraSpec(128), HadoopOnIPoIB)
	j := mustSim(t, teraSpec(128), JBSOnIPoIB)
	red := 1 - j.AvgCPUUtil/h.AvgCPUUtil
	if red < 0.35 || red > 0.60 {
		t.Errorf("JBS CPU reduction = %.1f%%, want ~48.1%%", 100*red)
	}
	if h.AvgCPUUtil < 0.25 || h.AvgCPUUtil > 0.60 {
		t.Errorf("Hadoop avg CPU = %.1f%%, want in the sar-trace range", 100*h.AvgCPUUtil)
	}
	// SDP lowers CPU vs IPoIB without changing runtime (paper: 15.8%).
	sdp := mustSim(t, teraSpec(128), HadoopOnSDP)
	sdpRed := 1 - sdp.AvgCPUUtil/h.AvgCPUUtil
	if sdpRed < 0.08 || sdpRed > 0.25 {
		t.Errorf("SDP CPU reduction = %.1f%%, want ~15.8%%", 100*sdpRed)
	}
	// JBS on RDMA cuts CPU sharply vs Hadoop on SDP (paper: 44.8%).
	rdma := mustSim(t, teraSpec(128), JBSOnRDMA)
	rdmaRed := 1 - rdma.AvgCPUUtil/sdp.AvgCPUUtil
	if rdmaRed < 0.35 {
		t.Errorf("JBS-RDMA vs Hadoop-SDP CPU reduction = %.1f%%, want ~44.8%%", 100*rdmaRed)
	}
}

func TestCPUTraceShape(t *testing.T) {
	r := mustSim(t, teraSpec(64), HadoopOnIPoIB)
	if len(r.CPUTrace) == 0 {
		t.Fatal("empty CPU trace")
	}
	wantBuckets := int(r.ExecutionTime/cpuTraceBucket) + 1
	if math.Abs(float64(len(r.CPUTrace)-wantBuckets)) > 1 {
		t.Fatalf("trace buckets = %d, want ~%d", len(r.CPUTrace), wantBuckets)
	}
	var peak float64
	for _, u := range r.CPUTrace {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %g outside [0,1]", u)
		}
		if u > peak {
			peak = u
		}
	}
	if peak < 0.1 {
		t.Fatalf("peak utilization %.2f suspiciously low", peak)
	}
}

func TestBufferSweepShape(t *testing.T) {
	// Fig. 11: improvement up to ~128KB, leveling off, slight degradation
	// at 512KB for the copy-based protocol.
	times := map[int]float64{}
	for _, kb := range []int{8, 32, 128, 256, 512} {
		spec := teraSpec(128)
		spec.BufferSize = kb << 10
		times[kb] = mustSim(t, spec, JBSOnIPoIB).ExecutionTime
	}
	if !(times[8] > times[32] && times[32] > times[128]*0.999) {
		t.Errorf("no improvement with growing buffers: %v", times)
	}
	if gain := 1 - times[128]/times[8]; gain < 0.3 {
		t.Errorf("8KB->128KB gain %.1f%%, want large (paper: 70.3%%)", 100*gain)
	}
	if times[512] < times[256] {
		t.Errorf("512KB (%f) should slightly degrade vs 256KB (%f) on IPoIB", times[512], times[256])
	}
	// RDMA levels off without degradation.
	spec := teraSpec(128)
	spec.BufferSize = 256 << 10
	r256 := mustSim(t, spec, JBSOnRDMA).ExecutionTime
	spec.BufferSize = 512 << 10
	r512 := mustSim(t, spec, JBSOnRDMA).ExecutionTime
	if r512 > r256*1.02 {
		t.Errorf("RDMA degraded at 512KB: %f vs %f", r512, r256)
	}
}

func TestStrongScaling(t *testing.T) {
	// Fixed 256GB input, more nodes => shorter jobs, and JBS's advantage
	// holds at every scale (Fig. 9a).
	var prev float64 = math.MaxFloat64
	for _, n := range []int{12, 16, 22} {
		spec := teraSpec(256)
		spec.Nodes = n
		h := mustSim(t, spec, HadoopOnIPoIB)
		j := mustSim(t, spec, JBSOnRDMA)
		if h.ExecutionTime >= prev {
			t.Errorf("%d nodes: time %.1f did not improve on fewer nodes (%.1f)", n, h.ExecutionTime, prev)
		}
		prev = h.ExecutionTime
		if j.ExecutionTime >= h.ExecutionTime {
			t.Errorf("%d nodes: JBS-RDMA (%.1f) not faster than Hadoop-IPoIB (%.1f)",
				n, j.ExecutionTime, h.ExecutionTime)
		}
	}
}

func TestWeakScaling(t *testing.T) {
	// 6GB per ReduceTask (Fig. 9b): the JBS improvement ratio stays stable
	// as nodes grow.
	var gains []float64
	for _, n := range []int{12, 22} {
		input := int64(n) * 2 * 6 << 30
		spec := DefaultSpec(TerasortWorkload(), input)
		spec.Nodes = n
		h := mustSim(t, spec, HadoopOnIPoIB)
		j := mustSim(t, spec, JBSOnIPoIB)
		gains = append(gains, 1-j.ExecutionTime/h.ExecutionTime)
	}
	if math.Abs(gains[0]-gains[1]) > 0.12 {
		t.Errorf("weak-scaling gains unstable: %v", gains)
	}
	for _, g := range gains {
		if g <= 0 {
			t.Errorf("weak scaling: JBS not faster (gain %.1f%%)", 100*g)
		}
	}
}

func TestTarazuBenchmarkClasses(t *testing.T) {
	// Fig. 12: shuffle-heavy benchmarks gain from JBS; WordCount and Grep
	// gain little.
	for _, w := range TarazuWorkloads() {
		spec := DefaultSpec(w, 30<<30)
		h := mustSim(t, spec, HadoopOnIPoIB)
		j := mustSim(t, spec, JBSOnRDMA)
		gain := 1 - j.ExecutionTime/h.ExecutionTime
		heavy := w.ShuffleRatio > 0.5
		if heavy && gain < 0.10 {
			t.Errorf("%s: shuffle-heavy gain only %.1f%%", w.Name, 100*gain)
		}
		if !heavy && gain > 0.10 {
			t.Errorf("%s: shuffle-light gain %.1f%%, want small", w.Name, 100*gain)
		}
	}
}

func TestAdjacencyListGainsMost(t *testing.T) {
	// The paper's best case (66.3%) is AdjacencyList under JBS-RDMA.
	best := ""
	var bestGain float64
	for _, w := range TarazuWorkloads() {
		spec := DefaultSpec(w, 30<<30)
		h := mustSim(t, spec, HadoopOnIPoIB)
		j := mustSim(t, spec, JBSOnRDMA)
		if g := 1 - j.ExecutionTime/h.ExecutionTime; g > bestGain {
			bestGain, best = g, w.Name
		}
	}
	if best != "AdjacencyList" {
		t.Errorf("largest gain on %s, want AdjacencyList", best)
	}
}

func TestMOFReadBenchFig2a(t *testing.T) {
	seg := int64(128 << 20)
	java := MOFReadBench(4, seg, JavaStreamRead)
	native := MOFReadBench(4, seg, NativeRead)
	mmap := MOFReadBench(4, seg, NativeMmap)
	ratio := java / native
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("Java/native read ratio = %.2f, want ~3.1", ratio)
	}
	if mmap >= native {
		t.Errorf("mmap (%.3f) not faster than read (%.3f)", mmap, native)
	}
	// More concurrent servlets share two disks: average time grows.
	if MOFReadBench(16, seg, NativeRead) <= MOFReadBench(1, seg, NativeRead) {
		t.Error("read time did not grow with servlet concurrency")
	}
}

func TestSegmentShuffleBenchFig2b(t *testing.T) {
	size := int64(64 << 20)
	slow := SegmentShuffleBench(size, simnet.TCP1GigE, simcpu.JavaJVM) /
		SegmentShuffleBench(size, simnet.TCP1GigE, simcpu.NativeC)
	fast := SegmentShuffleBench(size, simnet.IPoIB, simcpu.JavaJVM) /
		SegmentShuffleBench(size, simnet.IPoIB, simcpu.NativeC)
	if slow > 1.5 {
		t.Errorf("1GigE Java penalty %.2fx should be hidden by the slow wire", slow)
	}
	if fast < 2.5 || fast > 4.5 {
		t.Errorf("InfiniBand Java penalty %.2fx, want ~3.4x", fast)
	}
}

func TestConvergingShuffleBenchFig2c(t *testing.T) {
	size := int64(256 << 20)
	javaT := ConvergingShuffleBench(16, size, simnet.IPoIB, simcpu.JavaJVM)
	nativeT := ConvergingShuffleBench(16, size, simnet.IPoIB, simcpu.NativeC)
	if r := javaT / nativeT; r < 1.8 {
		t.Errorf("16-node convergence Java/native = %.2f, want >= ~2", r)
	}
	// Hidden on 1GigE.
	jg := ConvergingShuffleBench(16, size, simnet.TCP1GigE, simcpu.JavaJVM)
	ng := ConvergingShuffleBench(16, size, simnet.TCP1GigE, simcpu.NativeC)
	if r := jg / ng; r > 1.3 {
		t.Errorf("1GigE convergence ratio %.2f should be near 1", r)
	}
	// More senders, longer completion.
	if ConvergingShuffleBench(20, size, simnet.IPoIB, simcpu.JavaJVM) <= javaT {
		t.Error("completion time did not grow with sender count")
	}
}

func TestMicroBenchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MOFReadBench(0, ...) did not panic")
		}
	}()
	MOFReadBench(0, 1<<20, NativeRead)
}

func TestDiskIOModeString(t *testing.T) {
	if JavaStreamRead.String() == "" || NativeRead.String() == "" || NativeMmap.String() == "" {
		t.Error("empty mode names")
	}
	if DiskIOMode(9).String() == "" {
		t.Error("defensive name empty")
	}
}

func TestCPUMeter(t *testing.T) {
	m := NewCPUMeter(4)
	m.Add(0, 10, 20) // 2 cores for 10s
	if got := m.Total(); got != 20 {
		t.Fatalf("Total = %g, want 20", got)
	}
	if u := m.MeanUtilization(10); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("MeanUtilization = %g, want 0.5", u)
	}
	trace := m.Trace(5, 10)
	if len(trace) != 2 || math.Abs(trace[0]-0.5) > 1e-9 || math.Abs(trace[1]-0.5) > 1e-9 {
		t.Fatalf("trace = %v", trace)
	}
	// Load clipped at the window end.
	m2 := NewCPUMeter(1)
	m2.Add(0, 20, 20)
	if u := m2.MeanUtilization(10); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("clipped utilization = %g, want 1", u)
	}
	// Zero and instantaneous loads.
	m3 := NewCPUMeter(1)
	m3.Add(5, 5, 1) // instantaneous: smeared
	if m3.Total() != 1 {
		t.Fatal("instantaneous load lost")
	}
	m3.Add(0, 1, 0) // zero work ignored
	if m3.Total() != 1 {
		t.Fatal("zero load counted")
	}
}

// Property: CPU meter trace integrates back to the total (within the
// clipping window).
func TestCPUMeterConservationProperty(t *testing.T) {
	f := func(loads []uint8) bool {
		m := NewCPUMeter(8)
		var total float64
		for i, l := range loads {
			if i >= 10 {
				break
			}
			t0 := float64(i)
			t1 := t0 + float64(l%7) + 1
			// Keep aggregate load under the 8-core capacity so the trace's
			// saturation clamp never engages.
			work := float64(l%4)*0.1 + 0.1
			m.Add(t0, t1, work)
			total += work
		}
		end := 25.0 // beyond every load
		trace := m.Trace(1, end)
		var sum float64
		for _, u := range trace {
			sum += u * 8 * 1
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
