package cluster

// CPUMeter accumulates CPU load (core-seconds spread over intervals) so a
// run can report the `sar`-style utilization traces of the paper's Fig. 10
// without making the CPU a contended simulation resource (testbed CPUs
// never saturate — utilization stays under 60%).
type CPUMeter struct {
	loads []cpuLoad
	cores float64
}

type cpuLoad struct {
	t0, t1      float64
	coreSeconds float64
}

// NewCPUMeter creates a meter for a node with the given core count.
func NewCPUMeter(cores int) *CPUMeter {
	return &CPUMeter{cores: float64(cores)}
}

// Add records coreSeconds of CPU work spread uniformly over [t0, t1].
// Instantaneous work is smeared over one millisecond, and the interval is
// stretched if needed so the implied rate never exceeds the node's core
// count (work queued behind busy cores finishes later).
func (m *CPUMeter) Add(t0, t1, coreSeconds float64) {
	if coreSeconds <= 0 {
		return
	}
	if t1 <= t0 {
		t1 = t0 + 1e-3
	}
	if minSpan := coreSeconds / m.cores; t1-t0 < minSpan {
		t1 = t0 + minSpan
	}
	m.loads = append(m.loads, cpuLoad{t0: t0, t1: t1, coreSeconds: coreSeconds})
}

// Total returns the accumulated core-seconds.
func (m *CPUMeter) Total() float64 {
	var sum float64
	for _, l := range m.loads {
		sum += l.coreSeconds
	}
	return sum
}

// Trace returns mean utilization (0..1 of all cores) per bucket covering
// [0, end).
func (m *CPUMeter) Trace(bucket, end float64) []float64 {
	if bucket <= 0 || end <= 0 {
		return nil
	}
	n := int(end / bucket)
	if float64(n)*bucket < end {
		n++
	}
	out := make([]float64, n)
	for _, l := range m.loads {
		rate := l.coreSeconds / (l.t1 - l.t0) // core-seconds per second
		for b := int(l.t0 / bucket); b < n; b++ {
			lo := float64(b) * bucket
			hi := lo + bucket
			if hi > end {
				hi = end
			}
			if l.t1 < lo {
				break
			}
			from, to := l.t0, l.t1
			if from < lo {
				from = lo
			}
			if to > hi {
				to = hi
			}
			if to > from {
				out[b] += rate * (to - from)
			}
		}
	}
	for b := range out {
		lo := float64(b) * bucket
		hi := lo + bucket
		if hi > end {
			hi = end
		}
		width := hi - lo
		if width > 0 {
			out[b] /= width * m.cores
		}
		// Concurrent loads can transiently sum past capacity; a sar trace
		// saturates at 100%.
		if out[b] > 1 {
			out[b] = 1
		}
	}
	return out
}

// MeanUtilization returns average utilization over [0, end).
func (m *CPUMeter) MeanUtilization(end float64) float64 {
	if end <= 0 {
		return 0
	}
	var sum float64
	for _, l := range m.loads {
		t1 := l.t1
		frac := 1.0
		if t1 > end {
			frac = (end - l.t0) / (t1 - l.t0)
			if frac < 0 {
				frac = 0
			}
		}
		sum += l.coreSeconds * frac
	}
	return sum / (end * m.cores)
}
