package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
)

// ExampleSimulate runs one figure-scale experiment: 64GB Terasort under
// stock Hadoop and under JBS on the simulated InfiniBand testbed.
func ExampleSimulate() {
	spec := cluster.DefaultSpec(cluster.TerasortWorkload(), 64<<30)
	hadoop, err := cluster.Simulate(spec, cluster.HadoopOnIPoIB)
	if err != nil {
		panic(err)
	}
	jbs, err := cluster.Simulate(spec, cluster.JBSOnIPoIB)
	if err != nil {
		panic(err)
	}
	fmt.Println("JBS faster:", jbs.ExecutionTime < hadoop.ExecutionTime)
	fmt.Println("JBS spills:", jbs.SpilledBytes)
	// Output:
	// JBS faster: true
	// JBS spills: 0
}

// ExampleTestCase_Name shows the Table I naming scheme.
func ExampleTestCase_Name() {
	fmt.Println(cluster.JBSOnRDMA.Name())
	fmt.Println(cluster.HadoopOnIPoIB.Name())
	fmt.Println(cluster.JBSOnRoCE.Network())
	// Output:
	// JBS on RDMA
	// Hadoop on IPoIB
	// 10GigE
}
