package cluster

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// This file reproduces the paper's motivation experiments (Fig. 2), which
// the paper itself labels "Simulation Results of Intermediate Data
// Shuffling": micro-models of disk I/O and point-to-point shuffling under
// the Java and native runtimes.

// DiskIOMode selects the Fig. 2a access method.
type DiskIOMode int

const (
	// JavaStreamRead is Hadoop's FileInputStream path.
	JavaStreamRead DiskIOMode = iota
	// NativeRead is native C read().
	NativeRead
	// NativeMmap is native C mmap(); warm mappings avoid per-read syscall
	// and buffer-copy costs.
	NativeMmap
)

// String names the mode as in the figure legend.
func (m DiskIOMode) String() string {
	switch m {
	case JavaStreamRead:
		return "Java (stream read)"
	case NativeRead:
		return "Native C (read)"
	case NativeMmap:
		return "Native C (mmap)"
	default:
		return fmt.Sprintf("disk-mode(%d)", int(m))
	}
}

// mmapFactor is the speedup of warm mmap reads over read() (no syscall
// per chunk, no kernel-to-user copy).
const mmapFactor = 0.55

// microChunk is the application buffer size used by the Fig. 2
// socket micro-benchmarks.
const microChunk = 1 << 20

// MOFReadBench reproduces Fig. 2a: the average time for each of n
// concurrent HttpServlets to read one segment of segBytes from a shared
// pair of disks.
func MOFReadBench(concurrent int, segBytes int64, mode DiskIOMode) float64 {
	if concurrent <= 0 {
		panic("cluster: need at least one servlet")
	}
	hw := testbedHardware()
	eng := sim.NewEngine()
	disk := sim.NewResource(eng, "disk", DisksPerNode)
	// A shared MOF directory working set far beyond cache: cold reads.
	ws := int64(64) << 30

	var total float64
	for i := 0; i < concurrent; i++ {
		eng.Go(func(p *sim.Proc) {
			dev := hw.cache.ReadTime(hw.disk, segBytes, ws, false)
			switch mode {
			case JavaStreamRead:
				// FileInputStream issues many small reads; the device
				// stays allocated to the slow stream for the whole
				// 3.1x-factored read (Fig. 2a).
				disk.Use(p, dev*simcpu.Java().StreamReadFactor)
			case NativeRead:
				disk.Use(p, dev)
			case NativeMmap:
				disk.Use(p, dev*mmapFactor)
			}
			total += p.Now()
		})
	}
	eng.Run()
	return total / float64(concurrent)
}

// SegmentShuffleBench reproduces Fig. 2b: the time to move one segment of
// the given size from one HttpServlet to one MOFCopier over a protocol,
// under the Java or native runtime (disk excluded — pure shuffle path).
func SegmentShuffleBench(segBytes int64, proto simnet.Protocol, rt simcpu.Runtime) float64 {
	cfg := simnet.Lookup(proto)
	model := simcpu.ForRuntime(rt)
	wire := cfg.SegmentTime(segBytes, microChunk)
	// Single stream: wire plus the runtime's stream-stack time, serialized
	// (the JVM cannot overlap its copying with the wire the way native
	// zero-copy movers do).
	return wire + model.StreamTime(segBytes)
}

// ConvergingShuffleBench reproduces Fig. 2c: n nodes each send one segment
// of segBytes concurrently to one ReduceTask node; returns the time until
// all segments arrive. The receiver's wire and its runtime's stream
// processing capacity (javaMoverStreams vs nativeMoverStreams) bound the
// aggregate.
func ConvergingShuffleBench(n int, segBytes int64, proto simnet.Protocol, rt simcpu.Runtime) float64 {
	if n <= 0 {
		panic("cluster: need at least one sender")
	}
	cfg := simnet.Lookup(proto)
	model := simcpu.ForRuntime(rt)

	eng := sim.NewEngine()
	rx := sim.NewResource(eng, "rx", 1)
	rxProc := sim.NewResource(eng, "rxproc", 1)
	var end float64
	for i := 0; i < n; i++ {
		eng.Go(func(p *sim.Proc) {
			rx.Use(p, cfg.SegmentTime(segBytes, hadoopChunk))
			rxProc.Use(p, model.StreamTime(segBytes))
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	eng.Run()
	return end
}
