package cluster

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// Tuning constants of the two shuffle implementations.
const (
	// servletPool is the HttpServer thread pool per TaskTracker.
	servletPool = 16
	// copiersPerReducer is Hadoop's parallel MOFCopier count.
	copiersPerReducer = 5
	// prefetchProcs is the MOFSupplier's disk prefetch servers per node
	// (one per drive).
	prefetchProcs = DisksPerNode
	// xmitProcs is the MOFSupplier's asynchronous transmit workers ("JBS
	// only requires 3 native C threads", Section V-D).
	xmitProcs = 3
	// hadoopChunk is the HTTP transfer chunk size (not tunable in stock
	// Hadoop; JBS's buffer size is the Fig. 11 knob).
	hadoopChunk = 64 << 10
	// mergeCPUPerMBJava / Native are the reduce-side merge costs.
	mergeCPUPerMBJava   = 0.02
	mergeCPUPerMBNative = 0.006
	// cpuTraceBucket matches the paper's 5-second sar sampling.
	cpuTraceBucket = 5.0
	// bufferContentionThreshold / Factor model the Fig. 11 degradation:
	// very large transport buffers mean fewer pool buffers and more
	// contention between communication threads on copy-based protocols.
	bufferContentionThreshold = 256 << 10
	bufferContentionFactor    = 1.2

	// interleavedDiskBW is the effective per-drive bandwidth when several
	// streams interleave on one drive (maps, servlet reads, spills): the
	// head seeks between streams every chunk, far below the 110 MB/s
	// sequential rate. The MOFSupplier's batched, offset-ordered reads
	// keep the sequential rate.
	interleavedDiskBW = 55e6
	// ioSortMB is Hadoop's map-side sort buffer; blocks larger than it
	// spill multiple sorted runs that a final pass must merge (identical
	// under both engines — JBS does not change the map side).
	ioSortMB = 100 << 20
	// mapTaskStartup / reduceTaskStartup are per-task JVM launch and
	// initialization costs (the paper: for small jobs "the costs of task
	// initialization and destruction become dominant").
	mapTaskStartup    = 1.5
	reduceTaskStartup = 2.0
	// jobSetupTime covers job submission, split computation and cleanup.
	jobSetupTime = 8.0
	// outputReplication is the DFS replication of reducer output; each
	// extra replica crosses the network and lands on a remote disk. This
	// is why fast fabrics speed up small (cache-resident) jobs so much.
	outputReplication = 3
	// jbsRoundCostSocket / RDMA is the per-transport-buffer fetch-round
	// processing cost at the MOFSupplier (request handling, buffer
	// turnaround). Small buffers mean many rounds per segment — the
	// dominant Fig. 11 effect ("reduce overheads due to less number of
	// fetch requests for each segment").
	jbsRoundCostSocket = 0.85e-3
	jbsRoundCostRDMA   = 0.60e-3
	// taskCPUFactor scales user-code CPU charges: a Hadoop task burns
	// roughly this many cores while nominally single-threaded (JIT, GC,
	// protocol threads) — calibrated against the Fig. 10 sar traces.
	taskCPUFactor = 3.0
)

// moverRate returns the bytes/second one node's shuffle mover stack can
// sustain (both directions combined) for an engine on a protocol. The JVM
// stack is capped regardless of wire; native TCP is bound by its two
// memory copies ("the overhead incurred by large amount of memory copies
// for TCP/IP transportation becomes a severe bottleneck", Section V-A);
// RDMA's zero-copy path is bound only by memory bandwidth.
func moverRate(e Engine, cfg simnet.Config) float64 {
	if e == Hadoop {
		if cfg.Protocol == simnet.SDP {
			return 520e6 // SDP trims one copy under the socket API
		}
		return 450e6
	}
	switch cfg.Copies {
	case 0:
		return 2.8e9
	case 1:
		return 900e6
	default:
		return 450e6
	}
}

// moverCPUPerByte returns shuffle-path CPU core-seconds per byte per side:
// the aggregate cost of copies, socket calls, object churn and GC. The
// Java path's cost is what Fig. 10 shows JBS eliminating.
func moverCPUPerByte(e Engine, cfg simnet.Config) float64 {
	if e == Hadoop {
		if cfg.Protocol == simnet.SDP {
			return 2.75e-7
		}
		return 3.50e-7
	}
	switch cfg.Copies {
	case 0:
		return 0.06e-7
	case 1:
		return 0.40e-7
	default:
		return 0.68e-7
	}
}

// jbsRoundCost returns the per-buffer fetch-round cost for a protocol.
func jbsRoundCost(cfg simnet.Config) float64 {
	if cfg.Copies == 0 {
		return jbsRoundCostRDMA
	}
	return jbsRoundCostSocket
}

// RunResult is the outcome of one simulated job.
type RunResult struct {
	Case TestCase
	Spec JobSpec
	// ExecutionTime is the job makespan in seconds.
	ExecutionTime float64
	// MapPhaseEnd is when the last MapTask committed.
	MapPhaseEnd float64
	// ShuffleEnd is when the last segment arrived at its reducer.
	ShuffleEnd float64
	// AvgCPUUtil is mean utilization (0..1) across nodes over the job.
	AvgCPUUtil float64
	// CPUTrace is per-5s-bucket utilization averaged across nodes.
	CPUTrace []float64
	// SpilledBytes is reduce-side shuffle data written to disk
	// (zero for JBS's network-levitated merge).
	SpilledBytes int64
	// NetBytes is total shuffled payload.
	NetBytes int64
	// Connections is the number of network connections established.
	Connections int
}

// simNode is one slave node's simulated hardware and shuffle service.
type simNode struct {
	id       int
	disk     *sim.Resource
	tx, rx   *sim.Resource
	mover    *sim.Resource // the runtime's data-mover stack (Fig. 2c cap)
	servlets *sim.Resource
	cpu      *CPUMeter

	mapGates []*sim.Gate
	mapsDone int

	// deferredCPU accumulates shuffle-path mover CPU, smeared over the
	// shuffle window at the end of the run: it is performed by many
	// background threads over the whole shuffle, not inside individual
	// transfer intervals.
	deferredCPU float64

	// JBS supplier pipeline.
	reqStore  *sim.Store[*fetchReq]
	xmitStore *sim.Store[xmitItem]
	cacheRes  *sim.Resource
}

// fetchReq is one segment request queued at a MOFSupplier.
type fetchReq struct {
	size int64
	dst  *simNode
	done *sim.Gate
}

type xmitItem struct {
	req      *fetchReq
	cacheRel func()
}

// reducerState tracks one ReduceTask's shuffle accounting.
type reducerState struct {
	node        *simNode
	fetched     int64
	spilled     int64
	fetchWG     *sim.WaitGroup
	shuffleDone float64
}

// simulation bundles shared state for one run.
type simulation struct {
	eng        *sim.Engine
	spec       JobSpec
	tc         TestCase
	netCfg     simnet.Config
	model      simcpu.Model
	hw         hardware
	nodes      []*simNode
	reds       []*reducerState
	segSize    int64
	ws         int64
	mvRate     float64
	mvCPUBytes float64

	mapPhaseEnd float64
	shuffleEnd  float64
	jobEnd      float64
	spilled     int64
	netBytes    int64
	conns       int
	pairConn    map[[2]int]bool
}

// Simulate runs one job under a test case and returns its results.
func Simulate(spec JobSpec, tc TestCase) (RunResult, error) {
	if err := spec.Validate(); err != nil {
		return RunResult{}, err
	}
	cfg := simnet.Lookup(tc.Protocol)
	s := &simulation{
		eng:        sim.NewEngine(),
		spec:       spec,
		tc:         tc,
		netCfg:     cfg,
		model:      tc.Engine.Runtime(),
		hw:         testbedHardware(),
		segSize:    spec.SegmentBytes(),
		ws:         spec.nodeWorkingSet(),
		mvRate:     moverRate(tc.Engine, cfg),
		mvCPUBytes: moverCPUPerByte(tc.Engine, cfg),
		pairConn:   make(map[[2]int]bool),
	}
	s.build()
	s.run()

	trace := s.cpuTraceAcrossNodes()
	var avg float64
	for _, n := range s.nodes {
		avg += n.cpu.MeanUtilization(s.jobEnd)
	}
	avg /= float64(len(s.nodes))

	return RunResult{
		Case:          tc,
		Spec:          spec,
		ExecutionTime: s.jobEnd,
		MapPhaseEnd:   s.mapPhaseEnd,
		ShuffleEnd:    s.shuffleEnd,
		AvgCPUUtil:    avg,
		CPUTrace:      trace,
		SpilledBytes:  s.spilled,
		NetBytes:      s.netBytes,
		Connections:   s.conns,
	}, nil
}

func (s *simulation) build() {
	cacheTokens := int(s.spec.DataCacheBytes / s.segSize)
	if cacheTokens < 1 {
		cacheTokens = 1
	}
	if cacheTokens > 4096 {
		cacheTokens = 4096
	}
	for i := 0; i < s.spec.Nodes; i++ {
		n := &simNode{
			id:       i,
			disk:     sim.NewResource(s.eng, fmt.Sprintf("disk%d", i), DisksPerNode),
			tx:       sim.NewResource(s.eng, fmt.Sprintf("tx%d", i), 1),
			rx:       sim.NewResource(s.eng, fmt.Sprintf("rx%d", i), 1),
			mover:    sim.NewResource(s.eng, fmt.Sprintf("mover%d", i), 1),
			servlets: sim.NewResource(s.eng, fmt.Sprintf("servlet%d", i), servletPool),
			cpu:      NewCPUMeter(CoresPerNode),
		}
		if s.tc.Engine == JBS {
			n.reqStore = sim.NewStore[*fetchReq](s.eng, 0)
			n.xmitStore = sim.NewStore[xmitItem](s.eng, 0)
			n.cacheRes = sim.NewResource(s.eng, fmt.Sprintf("dcache%d", i), cacheTokens)
		}
		s.nodes = append(s.nodes, n)
	}
}

// diskInterleaved returns device time for interleaved access (head seeks
// between competing streams), blended with the page cache.
func (s *simulation) diskInterleaved(size int64) float64 {
	dev := float64(size)/interleavedDiskBW + s.hw.disk.SeekTime
	return s.cacheBlend(size, dev)
}

// diskSequential returns device time for a dedicated sequential scan
// (the MOFSupplier's batched, offset-ordered reads), blended with cache.
func (s *simulation) diskSequential(size int64) float64 {
	dev := float64(size)/s.hw.disk.Bandwidth + s.hw.disk.SeekTime
	return s.cacheBlend(size, dev)
}

func (s *simulation) cacheBlend(size int64, dev float64) float64 {
	hit := s.hw.cache.HitFraction(s.ws)
	return hit*float64(size)/s.hw.cache.MemBandwidth + (1-hit)*dev
}

// wireTime returns the occupancy of a wire endpoint for one segment,
// including per-message latency and the large-buffer contention penalty on
// copy-based protocols.
func (s *simulation) wireTime(size int64, bufSize int) float64 {
	t := s.netCfg.SegmentTime(size, bufSize)
	if s.netCfg.Copies > 0 && bufSize > bufferContentionThreshold {
		excess := float64(bufSize-bufferContentionThreshold) / float64(bufSize)
		t *= 1 + bufferContentionFactor*excess
	}
	return t
}

// moverTime is the data-mover stack occupancy for one segment on one side.
func (s *simulation) moverTime(size int64) float64 {
	return float64(size) / s.mvRate
}

// moveCPU returns mover CPU core-seconds for size bytes on one side.
func (s *simulation) moveCPU(size int64) float64 {
	return float64(size) * s.mvCPUBytes
}

func (s *simulation) mergeCPUPerMB() float64 {
	if s.tc.Engine == JBS {
		return mergeCPUPerMBNative
	}
	return mergeCPUPerMBJava
}

// chargeCompute sleeps the process for elapsed seconds of single-threaded
// work and meters taskCPUFactor times that in core-seconds (JIT, GC and
// service threads ride along).
func chargeCompute(p *sim.Proc, m *CPUMeter, elapsed float64) {
	t0 := p.Now()
	p.Sleep(elapsed)
	m.Add(t0, p.Now(), elapsed*taskCPUFactor)
}

func (s *simulation) run() {
	mapsPerNode := s.distributeMaps()
	blockBytes := s.spec.InputBytes / int64(s.spec.MapTasks())
	mofBytesPerMap := int64(float64(blockBytes) * s.spec.Workload.ShuffleRatio)

	for i, n := range s.nodes {
		n.mapGates = make([]*sim.Gate, mapsPerNode[i])
		for k := range n.mapGates {
			n.mapGates[k] = sim.NewGate(s.eng)
		}
	}

	R := s.spec.ReduceTasks()
	for r := 0; r < R; r++ {
		s.reds = append(s.reds, &reducerState{
			node:    s.nodes[r%s.spec.Nodes],
			fetchWG: sim.NewWaitGroup(s.eng),
		})
		s.reds[r].fetchWG.Add(s.spec.Nodes)
	}

	// Map phase.
	slots := make([]*sim.Resource, s.spec.Nodes)
	for i := range slots {
		slots[i] = sim.NewResource(s.eng, fmt.Sprintf("mapslot%d", i), s.spec.MapSlots)
	}
	for i, count := range mapsPerNode {
		node := s.nodes[i]
		for k := 0; k < count; k++ {
			s.eng.Go(func(p *sim.Proc) {
				release := slots[node.id].Acquire(p)
				s.mapTask(p, node, blockBytes, mofBytesPerMap)
				release()
				// Commit: open the next completion gate; reducers may now
				// fetch this map's segments.
				node.mapGates[node.mapsDone].Open()
				node.mapsDone++
				if p.Now() > s.mapPhaseEnd {
					s.mapPhaseEnd = p.Now()
				}
			})
		}
	}

	// Shuffle phase: one process per (reducer, source node).
	copierSlots := make([]*sim.Resource, R)
	for r := range copierSlots {
		copierSlots[r] = sim.NewResource(s.eng, fmt.Sprintf("copiers%d", r), copiersPerReducer)
	}
	for r := 0; r < R; r++ {
		red := s.reds[r]
		cop := copierSlots[r]
		for src := 0; src < s.spec.Nodes; src++ {
			srcNode := s.nodes[src]
			segs := mapsPerNode[src]
			if s.tc.Engine == Hadoop {
				s.eng.Go(func(p *sim.Proc) {
					s.hadoopCopier(p, red, srcNode, segs, cop)
				})
			} else {
				s.eng.Go(func(p *sim.Proc) {
					s.jbsFetcher(p, red, srcNode, segs)
				})
			}
		}
	}

	// JBS supplier pipelines.
	if s.tc.Engine == JBS {
		for _, n := range s.nodes {
			node := n
			for d := 0; d < prefetchProcs; d++ {
				s.eng.Go(func(p *sim.Proc) { s.prefetchServer(p, node) })
			}
			for x := 0; x < xmitProcs; x++ {
				s.eng.Go(func(p *sim.Proc) { s.xmitWorker(p, node) })
			}
		}
	}

	// Reduce phase: one process per reducer.
	jobWG := sim.NewWaitGroup(s.eng)
	jobWG.Add(R)
	for r := 0; r < R; r++ {
		red := s.reds[r]
		s.eng.Go(func(p *sim.Proc) {
			s.reduceTask(p, red)
			jobWG.Done()
		})
	}

	// Finalizer: when every reducer is done, close the supplier stores so
	// their processes exit; account for job cleanup.
	s.eng.Go(func(p *sim.Proc) {
		jobWG.Wait(p)
		s.jobEnd = p.Now() + jobSetupTime
		for _, n := range s.nodes {
			if n.reqStore != nil {
				n.reqStore.Close()
				n.xmitStore.Close()
			}
		}
	})

	s.eng.Run()

	// Smear the accumulated mover CPU over each node's shuffle window.
	for _, n := range s.nodes {
		if n.deferredCPU > 0 {
			end := s.shuffleEnd
			if end <= 0 {
				end = s.jobEnd
			}
			n.cpu.Add(0, end, n.deferredCPU)
		}
	}
}

// mapTask models one MapTask: JVM startup, split read, user map + sort,
// map-side spill merging, MOF write (identical under both engines).
func (s *simulation) mapTask(p *sim.Proc, node *simNode, blockBytes, mofBytes int64) {
	p.Sleep(mapTaskStartup)
	// Read the input split (node-local thanks to delay scheduling).
	node.disk.Use(p, s.diskInterleaved(blockBytes))
	// User map function + sort.
	chargeCompute(p, node.cpu, s.spec.Workload.MapCPUPerMB*mb(blockBytes))
	// Map-side sort spills: blocks beyond io.sort.mb write intermediate
	// runs that a final pass re-reads and merges.
	if mofBytes > ioSortMB {
		node.disk.Use(p, s.diskInterleaved(mofBytes)) // spill runs
		node.disk.Use(p, s.diskInterleaved(mofBytes)) // merge re-read
		chargeCompute(p, node.cpu, mergeCPUPerMBJava*mb(mofBytes))
	}
	// Write the final MOF.
	node.disk.Use(p, s.diskInterleaved(mofBytes))
}

// distributeMaps spreads MapTasks across nodes round-robin (inputs are
// uniformly distributed, delay scheduling keeps them local).
func (s *simulation) distributeMaps() []int {
	counts := make([]int, s.spec.Nodes)
	for m := 0; m < s.spec.MapTasks(); m++ {
		counts[m%s.spec.Nodes]++
	}
	return counts
}

// connSetup charges connection establishment once per (client, server)
// node pair for JBS (connections are cached and consolidated); Hadoop's
// copiers pay per fetch (HTTP churn).
func (s *simulation) connSetup(p *sim.Proc, dst, src *simNode) {
	if s.tc.Engine == JBS {
		key := [2]int{dst.id, src.id}
		if !s.pairConn[key] {
			s.pairConn[key] = true
			s.conns++
			p.Sleep(s.netCfg.SetupTime)
		}
		return
	}
	s.conns++
	p.Sleep(s.netCfg.SetupTime)
}

// hadoopCopier fetches all of one source node's segments for one reducer,
// through HttpServlets that serialize disk read and network transmit
// (Fig. 4).
func (s *simulation) hadoopCopier(p *sim.Proc, red *reducerState, src *simNode, segs int, copiers *sim.Resource) {
	dst := red.node
	for i := 0; i < segs; i++ {
		src.mapGates[i].Wait(p)
		release := copiers.Acquire(p)
		s.connSetup(p, dst, src)

		// Servlet: locate via IndexCache, read via Java streams, then
		// transmit — strictly serialized, no batching across requests.
		servletRel := src.servlets.Acquire(p)
		dev := s.diskInterleaved(s.segSize)
		src.disk.Use(p, dev)
		// Java stream overhead extends the read without occupying the
		// device (Fig. 2a: 3.1x slower stream reads).
		p.Sleep(dev * (s.model.StreamReadFactor - 1))
		wt := s.wireTime(s.segSize, hadoopChunk)
		src.tx.Use(p, wt)
		src.mover.Use(p, s.moverTime(s.segSize))
		servletRel()
		src.deferredCPU += s.moveCPU(s.segSize) + s.model.RequestCPU(1)

		// Receiver: wire, then the MOFCopier's JVM stream processing.
		dst.rx.Use(p, wt)
		dst.mover.Use(p, s.moverTime(s.segSize))
		dst.deferredCPU += s.moveCPU(s.segSize)
		s.noteSegmentDone(p, red)

		// Reduce-side spill once the shuffle memory budget is exceeded.
		if red.fetched > s.spec.ShuffleMemPerReducer {
			dst.disk.Use(p, s.diskInterleaved(s.segSize))
			red.spilled += s.segSize
			s.spilled += s.segSize
		}
		release()
	}
	red.fetchWG.Done()
}

// jbsFetcher queues one source node's segments for one reducer with the
// shared NetMerger/MOFSupplier pipeline and waits for their arrival.
func (s *simulation) jbsFetcher(p *sim.Proc, red *reducerState, src *simNode, segs int) {
	s.connSetup(p, red.node, src)
	for i := 0; i < segs; i++ {
		src.mapGates[i].Wait(p)
		req := &fetchReq{size: s.segSize, dst: red.node, done: sim.NewGate(s.eng)}
		src.reqStore.Put(p, req)
		req.done.Wait(p)
		s.noteSegmentDone(p, red)
	}
	red.fetchWG.Done()
}

func (s *simulation) noteSegmentDone(p *sim.Proc, red *reducerState) {
	red.fetched += s.segSize
	s.netBytes += s.segSize
	if p.Now() > s.shuffleEnd {
		s.shuffleEnd = p.Now()
	}
	red.shuffleDone = p.Now()
}

// prefetchServer is one MOFSupplier disk prefetch process: it batches
// queued requests (grouped per MOF and offset-ordered in the real
// supplier, which makes the batch near-sequential) and stages them in the
// DataCache.
func (s *simulation) prefetchServer(p *sim.Proc, node *simNode) {
	for {
		req, ok := node.reqStore.Get(p)
		if !ok {
			return
		}
		batch := []*fetchReq{req}
		for len(batch) < s.spec.PrefetchBatch && node.reqStore.Len() > 0 {
			more, ok := node.reqStore.Get(p)
			if !ok {
				break
			}
			batch = append(batch, more)
		}
		var total int64
		for _, b := range batch {
			total += b.size
		}
		// A grouped batch reads near-sequentially (offset-ordered requests
		// within one MOF); a lone request is just another interleaved read.
		if len(batch) > 1 {
			node.disk.Use(p, s.diskSequential(total))
		} else {
			node.disk.Use(p, s.diskInterleaved(total))
		}
		node.deferredCPU += s.model.RequestCPU(len(batch))
		for _, b := range batch {
			cacheRel := node.cacheRes.Acquire(p)
			node.xmitStore.Put(p, xmitItem{req: b, cacheRel: cacheRel})
		}
	}
}

// xmitWorker transmits staged segments asynchronously — disk prefetching
// and network transmission overlap across these processes.
func (s *simulation) xmitWorker(p *sim.Proc, node *simNode) {
	for {
		item, ok := node.xmitStore.Get(p)
		if !ok {
			return
		}
		wt := s.wireTime(item.req.size, s.spec.BufferSize)
		node.tx.Use(p, wt)
		// The mover handles one fetch round per transport buffer: tiny
		// buffers multiply request-handling work (Fig. 11), and very
		// large buffers shrink the pool and add thread contention.
		rounds := simnet.MessagesFor(item.req.size, s.spec.BufferSize)
		mt := s.moverTime(item.req.size) + float64(rounds)*jbsRoundCost(s.netCfg)
		if s.netCfg.Copies > 0 && s.spec.BufferSize > bufferContentionThreshold {
			excess := float64(s.spec.BufferSize-bufferContentionThreshold) / float64(s.spec.BufferSize)
			mt *= 1 + bufferContentionFactor*excess
		}
		node.mover.Use(p, mt)
		item.cacheRel()
		node.deferredCPU += s.moveCPU(item.req.size) + s.model.RequestCPU(1)

		item.req.dst.rx.Use(p, wt)
		item.req.dst.mover.Use(p, s.moverTime(item.req.size))
		item.req.dst.deferredCPU += s.moveCPU(item.req.size)
		item.req.done.Open()
	}
}

// reduceTask runs the merge + reduce + output phase of one reducer.
func (s *simulation) reduceTask(p *sim.Proc, red *reducerState) {
	p.Sleep(reduceTaskStartup)
	shuffleStart := p.Now()
	red.fetchWG.Wait(p)
	node := red.node

	// Background mover-thread overhead over the shuffle window
	// (>8 JVM threads vs 3 native threads, Section V-D).
	threads := s.model.ShuffleThreadsPerReducer
	if red.shuffleDone > shuffleStart {
		node.cpu.Add(shuffleStart, red.shuffleDone,
			s.model.ThreadCPU(threads, red.shuffleDone-shuffleStart))
	}

	// Hadoop merge: read the spilled runs back; a second pass if the spill
	// volume exceeds what one merge pass covers.
	if red.spilled > 0 {
		node.disk.Use(p, s.diskInterleaved(red.spilled))
		if red.spilled > 10*s.spec.ShuffleMemPerReducer {
			node.disk.Use(p, s.diskInterleaved(red.spilled))
			node.disk.Use(p, s.diskInterleaved(red.spilled))
			s.spilled += red.spilled
		}
	}
	// Merge CPU (JVM for Hadoop, native for the NetMerger).
	chargeCompute(p, node.cpu, s.mergeCPUPerMB()*mb(red.fetched))
	// User reduce function (JVM in both engines).
	chargeCompute(p, node.cpu, s.spec.Workload.ReduceCPUPerMB*mb(red.fetched))

	// Write the final output: one local replica plus remote replicas that
	// cross the network (identical under both engines).
	out := int64(float64(red.fetched) / nonZero(s.spec.Workload.ShuffleRatio) * s.spec.Workload.OutputRatio)
	if out > 0 {
		node.disk.Use(p, s.diskInterleaved(out))
		remote := s.nodes[(node.id+1)%len(s.nodes)]
		for rep := 1; rep < outputReplication; rep++ {
			wt := s.wireTime(out, hadoopChunk)
			node.tx.Use(p, wt)
			remote.rx.Use(p, wt)
			remote.disk.Use(p, s.diskInterleaved(out))
		}
	}
}

func nonZero(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return x
}

func mb(bytes int64) float64 { return float64(bytes) / (1 << 20) }

// cpuTraceAcrossNodes averages per-node traces.
func (s *simulation) cpuTraceAcrossNodes() []float64 {
	var trace []float64
	for _, n := range s.nodes {
		t := n.cpu.Trace(cpuTraceBucket, s.jobEnd)
		if trace == nil {
			trace = make([]float64, len(t))
		}
		for i := range t {
			trace[i] += t[i]
		}
	}
	for i := range trace {
		trace[i] /= float64(len(s.nodes))
	}
	return trace
}
