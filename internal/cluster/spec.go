package cluster

import (
	"fmt"

	"repro/internal/simdisk"
)

// Testbed constants from Section V.
const (
	// DefaultNodes is the slave node count (plus one dedicated master).
	DefaultNodes = 22
	// CoresPerNode: four hex-core 2.67 GHz Xeons.
	CoresPerNode = 24
	// DisksPerNode: two SATA drives.
	DisksPerNode = 2
	// MapSlotsPerNode and ReduceSlotsPerNode per slave.
	MapSlotsPerNode    = 4
	ReduceSlotsPerNode = 2
	// BlockSize is the HDFS block size (256 MB).
	BlockSize = 256 << 20
)

// Workload characterizes one benchmark's resource profile. The ratios are
// what matter to JBS (Section V-F): shuffle-heavy benchmarks move
// intermediate data comparable to their input; WordCount and Grep combine
// it away.
type Workload struct {
	Name string
	// ShuffleRatio is intermediate bytes / input bytes.
	ShuffleRatio float64
	// OutputRatio is final output bytes / input bytes.
	OutputRatio float64
	// MapCPUPerMB / ReduceCPUPerMB are user-code core-seconds per MB (the
	// user map/reduce functions run in the JVM under both engines).
	MapCPUPerMB    float64
	ReduceCPUPerMB float64
}

// TerasortWorkload is the headline benchmark: intermediate data equals
// input (Section V: "whose size of intermediate data is equal to its input
// size").
func TerasortWorkload() Workload {
	return Workload{
		Name:         "Terasort",
		ShuffleRatio: 1.0,
		OutputRatio:  1.0,
		MapCPUPerMB:  0.030, ReduceCPUPerMB: 0.024,
	}
}

// TarazuWorkloads returns the six Tarazu benchmarks with calibrated
// shuffle profiles (Fig. 12: four shuffle-heavy, two shuffle-light).
func TarazuWorkloads() []Workload {
	return []Workload{
		{Name: "SelfJoin", ShuffleRatio: 1.1, OutputRatio: 0.25, MapCPUPerMB: 0.024, ReduceCPUPerMB: 0.030},
		{Name: "InvertedIndex", ShuffleRatio: 1.2, OutputRatio: 0.35, MapCPUPerMB: 0.042, ReduceCPUPerMB: 0.036},
		{Name: "SequenceCount", ShuffleRatio: 1.3, OutputRatio: 0.50, MapCPUPerMB: 0.048, ReduceCPUPerMB: 0.036},
		{Name: "AdjacencyList", ShuffleRatio: 1.5, OutputRatio: 0.30, MapCPUPerMB: 0.024, ReduceCPUPerMB: 0.030},
		{Name: "WordCount", ShuffleRatio: 0.05, OutputRatio: 0.05, MapCPUPerMB: 0.066, ReduceCPUPerMB: 0.036},
		{Name: "Grep", ShuffleRatio: 0.01, OutputRatio: 0.005, MapCPUPerMB: 0.042, ReduceCPUPerMB: 0.018},
	}
}

// JobSpec fully describes one simulated job run.
type JobSpec struct {
	Workload   Workload
	InputBytes int64
	// Nodes is the slave count.
	Nodes int
	// MapSlots / ReduceSlots per node.
	MapSlots, ReduceSlots int
	// BlockSize determines the MapTask count.
	BlockSize int64
	// BufferSize is the transport buffer size in bytes (Fig. 11 knob).
	BufferSize int
	// ShuffleMemPerReducer is the Hadoop reduce-side merge budget before
	// spilling.
	ShuffleMemPerReducer int64
	// DataCacheBytes is the JBS MOFSupplier staging memory per node.
	DataCacheBytes int64
	// PrefetchBatch is the MOFSupplier group batch size.
	PrefetchBatch int
}

// DefaultSpec returns the paper's testbed configuration for a workload and
// input size.
func DefaultSpec(w Workload, inputBytes int64) JobSpec {
	return JobSpec{
		Workload:             w,
		InputBytes:           inputBytes,
		Nodes:                DefaultNodes,
		MapSlots:             MapSlotsPerNode,
		ReduceSlots:          ReduceSlotsPerNode,
		BlockSize:            BlockSize,
		BufferSize:           128 << 10,
		ShuffleMemPerReducer: 1 << 30,
		DataCacheBytes:       512 << 20,
		PrefetchBatch:        8,
	}
}

// Validate checks the spec.
func (s JobSpec) Validate() error {
	if s.InputBytes <= 0 || s.Nodes <= 0 || s.MapSlots <= 0 || s.ReduceSlots <= 0 {
		return fmt.Errorf("cluster: spec needs positive sizes: %+v", s)
	}
	if s.BlockSize <= 0 || s.BufferSize <= 0 {
		return fmt.Errorf("cluster: spec needs positive block and buffer sizes")
	}
	if s.ShuffleMemPerReducer <= 0 || s.DataCacheBytes <= 0 || s.PrefetchBatch <= 0 {
		return fmt.Errorf("cluster: spec needs positive memory budgets")
	}
	return nil
}

// MapTasks returns the MapTask count (one per block).
func (s JobSpec) MapTasks() int {
	n := s.InputBytes / s.BlockSize
	if s.InputBytes%s.BlockSize != 0 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return int(n)
}

// ReduceTasks returns the ReduceTask count (all reduce slots filled, as in
// the paper's runs).
func (s JobSpec) ReduceTasks() int {
	return s.Nodes * s.ReduceSlots
}

// SegmentBytes returns the size of one (MapTask, ReduceTask) segment.
func (s JobSpec) SegmentBytes() int64 {
	segs := int64(s.MapTasks()) * int64(s.ReduceTasks())
	b := int64(float64(s.InputBytes) * s.Workload.ShuffleRatio / float64(segs))
	if b < 1 {
		b = 1
	}
	return b
}

// nodeWorkingSet returns the bytes of shuffle-relevant data touched per
// node, which drives the page-cache hit fraction (the paper's <=64 GB vs
// >=128 GB regimes).
func (s JobSpec) nodeWorkingSet() int64 {
	intermediate := int64(float64(s.InputBytes) * s.Workload.ShuffleRatio)
	return (s.InputBytes + intermediate) / int64(s.Nodes)
}

// hardware bundles the per-node device models.
type hardware struct {
	disk  simdisk.Disk
	cache simdisk.PageCache
}

func testbedHardware() hardware {
	return hardware{
		disk:  simdisk.SATA500(),
		cache: simdisk.DefaultPageCache(),
	}
}
