// Package cluster is the discrete-event simulator of the paper's testbed:
// 22 slave nodes (four 2.67 GHz hex-core Xeons, two SATA disks, 24 GB RAM
// each) on 1/10 GigE and InfiniBand QDR fabrics, running Terasort and the
// Tarazu benchmarks under stock Hadoop or JBS over each Table I protocol.
//
// The simulator reproduces the queueing structure that generates every
// trend in Section V: disk contention and page-cache crossover, the
// HttpServlet's serialized read-then-transmit versus the MOFSupplier's
// batched, pipelined prefetching, per-stream JVM throughput caps versus
// native movers, reduce-side spills versus the network-levitated merge,
// connection setup costs, and the transport buffer size trade-off.
package cluster

import (
	"fmt"

	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// Engine selects the shuffle implementation.
type Engine int

const (
	// Hadoop is the stock Java shuffle: HttpServlets + MOFCopiers + spill
	// merge, all inside the JVM.
	Hadoop Engine = iota
	// JBS is JVM-Bypass Shuffling: MOFSupplier + NetMerger + network-
	// levitated merge, in native code.
	JBS
)

// String names the engine.
func (e Engine) String() string {
	if e == JBS {
		return "JBS"
	}
	return "Hadoop"
}

// Runtime returns the data-mover runtime model for the engine.
func (e Engine) Runtime() simcpu.Model {
	if e == JBS {
		return simcpu.Native()
	}
	return simcpu.Java()
}

// TestCase is one row of Table I: an engine on a transport protocol.
type TestCase struct {
	Engine   Engine
	Protocol simnet.Protocol
}

// Name returns the paper's test-case name, e.g. "JBS on RDMA".
func (tc TestCase) Name() string {
	return fmt.Sprintf("%s on %s", tc.Engine, tc.Protocol)
}

// Network returns the fabric column of Table I.
func (tc TestCase) Network() string {
	switch tc.Protocol {
	case simnet.TCP1GigE:
		return "1GigE"
	case simnet.TCP10GigE, simnet.RoCE:
		return "10GigE"
	default:
		return "InfiniBand"
	}
}

// TransportName returns the protocol column of Table I.
func (tc TestCase) TransportName() string {
	switch tc.Protocol {
	case simnet.TCP1GigE, simnet.TCP10GigE:
		return "TCP/IP"
	default:
		return tc.Protocol.String()
	}
}

// Convenient named cases used throughout the evaluation.
var (
	HadoopOn1GigE  = TestCase{Hadoop, simnet.TCP1GigE}
	HadoopOn10GigE = TestCase{Hadoop, simnet.TCP10GigE}
	HadoopOnIPoIB  = TestCase{Hadoop, simnet.IPoIB}
	HadoopOnSDP    = TestCase{Hadoop, simnet.SDP}
	JBSOn1GigE     = TestCase{JBS, simnet.TCP1GigE}
	JBSOn10GigE    = TestCase{JBS, simnet.TCP10GigE}
	JBSOnIPoIB     = TestCase{JBS, simnet.IPoIB}
	JBSOnRoCE      = TestCase{JBS, simnet.RoCE}
	JBSOnRDMA      = TestCase{JBS, simnet.RDMA}
)

// TableI returns the paper's Table I in row order.
func TableI() []TestCase {
	return []TestCase{
		HadoopOn1GigE, HadoopOn10GigE, HadoopOnIPoIB, HadoopOnSDP,
		JBSOn10GigE, JBSOnIPoIB, JBSOnRoCE, JBSOnRDMA,
	}
}
