package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/mof"
	"repro/internal/transport"
)

// buildBenchMOF writes one MOF with parts segments of roughly segBytes each
// and returns its paths and total payload size.
func buildBenchMOF(b *testing.B, dir, task string, parts, segBytes int) (string, string, int64) {
	b.Helper()
	data := filepath.Join(dir, task+".data")
	index := filepath.Join(dir, task+".index")
	w, err := mof.NewWriter(data, index, parts)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte(i)
	}
	var total int64
	for p := 0; p < parts; p++ {
		if err := w.BeginSegment(p); err != nil {
			b.Fatal(err)
		}
		for written := 0; written < segBytes; {
			key := fmt.Sprintf("%s-p%d-k%08d", task, p, written)
			if err := w.Append([]byte(key), val); err != nil {
				b.Fatal(err)
			}
			n := len(key) + len(val) + 2
			written += n
			total += int64(n)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return data, index, total
}

// BenchmarkSegmentFetchPath measures the supplier→merger hot path on real
// TCP sockets: one iteration fetches every segment of the fixture once.
// allocs/op is the headline number — the pooled data path's target is
// steady-state fetches without per-frame or per-segment allocation. The
// "hot" variant serves from a warm DataCache; "cold" sizes the cache below
// the working set so every fetch takes the disk path.
// The "hot-hedged" variant runs with the hedging controller armed but
// never tripped (the threshold floor is pinned far above any real fetch):
// the scanner walks the pending set every tick and every completion feeds
// the RTT ring, so this is the steady-state cost of carrying the
// controller — it must stay inside the same ≤42 allocs/op budget as the
// plain hot path.
func BenchmarkSegmentFetchPath(b *testing.B) {
	b.Run("hot", func(b *testing.B) { benchSegmentFetchPath(b, 64<<20, false) })
	b.Run("hot-hedged", func(b *testing.B) { benchSegmentFetchPath(b, 64<<20, true) })
	b.Run("cold", func(b *testing.B) { benchSegmentFetchPath(b, 256<<10, false) })
}

func benchSegmentFetchPath(b *testing.B, cacheBytes int64, hedged bool) {
	const tasks, parts, segBytes = 4, 4, 128 << 10
	dir := b.TempDir()
	paths := map[string][2]string{}
	var total int64
	for i := 0; i < tasks; i++ {
		task := fmt.Sprintf("m-%03d", i)
		data, index, n := buildBenchMOF(b, dir, task, parts, segBytes)
		paths[task] = [2]string{data, index}
		total += n
	}
	lookup := func(task string) (string, string, error) {
		p, ok := paths[task]
		if !ok {
			return "", "", fmt.Errorf("no MOF %s", task)
		}
		return p[0], p[1], nil
	}
	tr := transport.NewTCP()
	s, err := NewMOFSupplier(SupplierConfig{
		Transport:      tr,
		Addr:           "127.0.0.1:0",
		DataCacheBytes: cacheBytes,
	}, lookup)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	mc := MergerConfig{Transport: tr}
	if hedged {
		mc.Replicas = func(FetchSpec) []string { return []string{s.Addr()} }
		// Armed, never tripped: MinDelay floors the threshold at 10s, so
		// the scanner runs but no fetch on a healthy loopback ever hedges.
		mc.Hedge = &flow.HedgeConfig{MinDelay: 10 * time.Second, Baseline: 10 * time.Second}
	}
	m, err := NewNetMerger(mc)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	var specs []FetchSpec
	for task := range paths {
		for p := 0; p < parts; p++ {
			specs = append(specs, FetchSpec{Addr: s.Addr(), MapTask: task, Partition: p})
		}
	}
	var sink int64
	deliver := func(spec FetchSpec, data []byte) error {
		sink += int64(len(data))
		return nil
	}
	// Warm the caches so the measured loop is the steady state.
	if err := m.Fetch(specs, deliver); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Fetch(specs, deliver); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("no bytes fetched")
	}
}
