package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bufpool"
	"repro/internal/mof"
	"repro/internal/rdma"
	"repro/internal/transport"
)

// leaseOf copies data into a pooled lease for DataCache tests.
func leaseOf(p *bufpool.Pool, data []byte) *bufpool.Lease {
	l := p.Get(len(data))
	copy(l.Bytes(), data)
	return l
}

func TestFetchRequestRoundTrip(t *testing.T) {
	r := fetchRequest{ID: 0xdeadbeef01, Partition: 17, MapTask: "job-0001-m-00042"}
	got, err := decodeFetchRequest(encodeFetchRequest(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("got %+v, want %+v", got, r)
	}
}

func TestFetchRequestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{msgFetchRequest},
		{msgDataChunk, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		append(encodeFetchRequest(fetchRequest{MapTask: "x"}), 'y'), // trailing junk
	}
	for i, c := range cases {
		if _, err := decodeFetchRequest(c); !errors.Is(err, ErrBadMessage) {
			t.Errorf("case %d: err = %v, want ErrBadMessage", i, err)
		}
	}
}

func TestDataChunkRoundTrip(t *testing.T) {
	for _, c := range []dataChunk{
		{ID: 1, Last: false, Payload: []byte("part one")},
		{ID: 2, Last: true, Payload: nil},
		{ID: 3, Last: true, Failed: true, Payload: []byte("disk on fire")},
	} {
		got, err := decodeDataChunk(encodeDataChunk(c))
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != c.ID || got.Last != c.Last || got.Failed != c.Failed || !bytes.Equal(got.Payload, c.Payload) {
			t.Fatalf("got %+v, want %+v", got, c)
		}
	}
}

func TestDataChunkDecodeErrors(t *testing.T) {
	if _, err := decodeDataChunk([]byte{msgDataChunk}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
	if _, err := decodeDataChunk(encodeFetchRequest(fetchRequest{MapTask: "x"})); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

// Property: protocol messages survive the wire encoding.
func TestProtocolRoundTripProperty(t *testing.T) {
	f := func(id uint64, part uint16, task string, payload []byte, last, failed bool) bool {
		if len(task) > 1000 {
			task = task[:1000]
		}
		req := fetchRequest{ID: id, Partition: uint32(part), MapTask: task}
		gotReq, err := decodeFetchRequest(encodeFetchRequest(req))
		if err != nil || gotReq != req {
			return false
		}
		ch := dataChunk{ID: id, Last: last, Failed: failed, Payload: payload}
		gotCh, err := decodeDataChunk(encodeDataChunk(ch))
		if err != nil {
			return false
		}
		return gotCh.ID == ch.ID && gotCh.Last == ch.Last && gotCh.Failed == ch.Failed &&
			bytes.Equal(gotCh.Payload, ch.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDataCachePinMissAndPut(t *testing.T) {
	pool := bufpool.New()
	c := NewDataCache(1 << 20)
	if _, ok := c.Pin("t", 0); ok {
		t.Fatal("empty cache hit")
	}
	data := []byte("segment bytes")
	c.Put("t", 0, leaseOf(pool, data))
	got, ok := c.Pin("t", 0)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("Pin after Put missed")
	}
	c.Unpin("t", 0) // the Pin
	c.Unpin("t", 0) // the Put
	if c.Used() != int64(len(data)) {
		t.Fatalf("Used = %d, want %d (unpinned entries stay cached)", c.Used(), len(data))
	}
	c.Drain()
	if err := pool.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestDataCacheEvictsUnpinnedLRU(t *testing.T) {
	pool := bufpool.New()
	c := NewDataCache(100)
	c.Put("a", 0, leaseOf(pool, make([]byte, 60)))
	c.Unpin("a", 0)
	c.Put("b", 0, leaseOf(pool, make([]byte, 30)))
	c.Unpin("b", 0)
	// 10 bytes left; inserting 50 must evict "a" (LRU: released first...
	// actually "b" released later, so "a" is least recent).
	c.Put("c", 0, leaseOf(pool, make([]byte, 50)))
	if _, ok := c.Pin("a", 0); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Pin("b", 0); !ok {
		t.Fatal("recently used entry evicted")
	}
	_, _, ev := c.Stats()
	if ev == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestDataCachePutBlocksOnPinnedData(t *testing.T) {
	pool := bufpool.New()
	c := NewDataCache(100)
	c.Put("a", 0, leaseOf(pool, make([]byte, 80))) // pinned
	done := make(chan struct{})
	go func() {
		c.Put("b", 0, leaseOf(pool, make([]byte, 50))) // must wait for space
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Put proceeded past a full pinned cache")
	default:
	}
	c.Unpin("a", 0) // now evictable
	<-done
	if _, ok := c.Pin("b", 0); !ok {
		t.Fatal("blocked Put never landed")
	}
}

func TestDataCacheOversizedSegmentAdmitted(t *testing.T) {
	pool := bufpool.New()
	c := NewDataCache(10)
	got := c.Put("huge", 0, leaseOf(pool, make([]byte, 100)))
	if len(got) != 100 {
		t.Fatal("oversized Put truncated")
	}
	c.Unpin("huge", 0)
}

func TestDataCacheUnpinWithoutPinPanics(t *testing.T) {
	c := NewDataCache(10)
	defer func() {
		if recover() == nil {
			t.Error("unbalanced Unpin did not panic")
		}
	}()
	c.Unpin("x", 0)
}

func TestDataCachePutExistingPins(t *testing.T) {
	pool := bufpool.New()
	c := NewDataCache(1000)
	c.Put("a", 0, leaseOf(pool, []byte("one")))
	got := c.Put("a", 0, leaseOf(pool, []byte("different")))
	if string(got) != "one" {
		t.Fatalf("second Put replaced entry: %q", got)
	}
	c.Unpin("a", 0)
	c.Unpin("a", 0)
	// The duplicate's lease was released on the spot; after draining the
	// resident entry, nothing is outstanding.
	c.Drain()
	if err := pool.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestDataCacheRefCountedSharing exercises the segment-buffer reference
// counting: two concurrent fetches of one cached segment observe the same
// bytes in the same buffer, the buffer returns to the pool only after both
// release (and the entry is evicted), and checksum verification still
// catches corruption of the shared buffer.
func TestDataCacheRefCountedSharing(t *testing.T) {
	pool := bufpool.New()
	c := NewDataCache(1 << 20)
	seg := bytes.Repeat([]byte("shuffle segment "), 128)
	entry := mof.IndexEntry{
		Length:    int64(len(seg)),
		RawLength: int64(len(seg)),
		Checksum:  crc32.ChecksumIEEE(seg),
	}
	c.Put("t", 0, leaseOf(pool, seg))
	c.Unpin("t", 0) // staging pin: segment now resident and unpinned

	// Two concurrent transmitters fetch the cached segment.
	views := make([][]byte, 2)
	var wg sync.WaitGroup
	for i := range views {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, ok := c.Pin("t", 0)
			if !ok {
				t.Error("resident segment missed")
				return
			}
			views[i] = d
		}()
	}
	wg.Wait()
	if !bytes.Equal(views[0], views[1]) || !bytes.Equal(views[0], seg) {
		t.Fatal("concurrent fetches observed different bytes")
	}
	if &views[0][0] != &views[1][0] {
		t.Fatal("concurrent fetches did not share one buffer")
	}
	for _, v := range views {
		if err := mof.VerifySegment(v, entry); err != nil {
			t.Fatalf("shared buffer fails verification: %v", err)
		}
	}

	// First reader releases; the second still holds the buffer. Drain
	// cannot evict a pinned entry, so the buffer must not be in the pool.
	c.Unpin("t", 0)
	c.Drain()
	if err := pool.LeakCheck(); err == nil {
		t.Fatal("buffer returned to pool while a reader still holds it")
	}
	if err := mof.VerifySegment(views[1], entry); err != nil {
		t.Fatalf("buffer corrupted while still held: %v", err)
	}

	// Checksum verification still catches corruption of the shared bytes.
	views[1][0] ^= 0xff
	if err := mof.VerifySegment(views[1], entry); !errors.Is(err, mof.ErrChecksum) {
		t.Fatalf("corruption not caught: %v", err)
	}
	views[1][0] ^= 0xff

	// Last reader releases and the entry is evicted: only now does the
	// buffer go back to the pool.
	c.Unpin("t", 0)
	c.Drain()
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("buffer not returned after last release: %v", err)
	}
}

// buildMOF writes a MOF with one segment per partition and returns the
// paths and the raw segment bytes per partition.
func buildMOF(t *testing.T, dir, task string, parts int) (mof.Index, string, string, [][]byte) {
	t.Helper()
	data := filepath.Join(dir, task+".data")
	index := filepath.Join(dir, task+".index")
	w, err := mof.NewWriter(data, index, parts)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		if err := w.BeginSegment(p); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5+p; i++ {
			key := fmt.Sprintf("%s-p%d-k%02d", task, p, i)
			if err := w.Append([]byte(key), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err := mof.ReadIndex(index)
	if err != nil {
		t.Fatal(err)
	}
	var raw [][]byte
	for p := 0; p < parts; p++ {
		e, _ := ix.Entry(p)
		seg, err := mof.ReadSegmentBytes(data, e)
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, seg)
	}
	return *ix, data, index, raw
}

// supplierFixture stands up a MOFSupplier over the given transport serving
// a set of generated MOFs.
type supplierFixture struct {
	supplier *MOFSupplier
	addr     string
	segments map[string][][]byte // task -> partition -> raw bytes
}

func newSupplierFixture(t *testing.T, tr transport.Transport, addr string, tasks, parts int) *supplierFixture {
	t.Helper()
	dir := t.TempDir()
	paths := map[string][2]string{}
	segs := map[string][][]byte{}
	for i := 0; i < tasks; i++ {
		task := fmt.Sprintf("m-%05d", i)
		_, data, index, raw := buildMOF(t, dir, task, parts)
		paths[task] = [2]string{data, index}
		segs[task] = raw
	}
	lookup := func(task string) (string, string, error) {
		p, ok := paths[task]
		if !ok {
			return "", "", fmt.Errorf("no MOF %s", task)
		}
		return p[0], p[1], nil
	}
	s, err := NewMOFSupplier(SupplierConfig{
		Transport:      tr,
		Addr:           addr,
		BufferSize:     4 << 10, // small buffers to force chunking
		DataCacheBytes: 1 << 20,
	}, lookup)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return &supplierFixture{supplier: s, addr: s.Addr(), segments: segs}
}

func transports(t *testing.T) map[string]func() (transport.Transport, string) {
	return map[string]func() (transport.Transport, string){
		"tcp": func() (transport.Transport, string) {
			return transport.NewTCP(), "127.0.0.1:0"
		},
		"rdma": func() (transport.Transport, string) {
			tr, err := transport.NewRDMA(rdma.NewFabric(), transport.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return tr, "supplier:1"
		},
	}
}

func TestSupplierAndMergerEndToEnd(t *testing.T) {
	for name, mk := range transports(t) {
		t.Run(name, func(t *testing.T) {
			tr, addr := mk()
			fx := newSupplierFixture(t, tr, addr, 4, 3)
			m, err := NewNetMerger(MergerConfig{Transport: tr})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			var specs []FetchSpec
			for task := range fx.segments {
				for p := 0; p < 3; p++ {
					specs = append(specs, FetchSpec{Addr: fx.addr, MapTask: task, Partition: p})
				}
			}
			got := map[string][]byte{}
			err = m.Fetch(specs, func(s FetchSpec, data []byte) error {
				got[fmt.Sprintf("%s/%d", s.MapTask, s.Partition)] = data
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(specs) {
				t.Fatalf("delivered %d segments, want %d", len(got), len(specs))
			}
			for task, parts := range fx.segments {
				for p, want := range parts {
					if !bytes.Equal(got[fmt.Sprintf("%s/%d", task, p)], want) {
						t.Fatalf("segment %s/%d corrupted", task, p)
					}
				}
			}
			st := m.Stats()
			if st.Requests != int64(len(specs)) || st.Errors != 0 {
				t.Fatalf("merger stats = %+v", st)
			}
			ss := fx.supplier.Stats()
			if ss.Requests != int64(len(specs)) || ss.Errors != 0 {
				t.Fatalf("supplier stats = %+v", ss)
			}
			if ss.GroupTurns == 0 || ss.DiskReads == 0 {
				t.Fatalf("prefetch pipeline idle: %+v", ss)
			}
		})
	}
}

func TestConcurrentReducersShareOneConnection(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 6, 4)
	m, err := NewNetMerger(MergerConfig{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Four "ReduceTasks" fetch their partitions concurrently through the
	// shared NetMerger.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			var specs []FetchSpec
			for task := range fx.segments {
				specs = append(specs, FetchSpec{Addr: fx.addr, MapTask: task, Partition: p})
			}
			n := 0
			err := m.Fetch(specs, func(s FetchSpec, data []byte) error {
				if !bytes.Equal(data, fx.segments[s.MapTask][p]) {
					return fmt.Errorf("corrupt segment %s/%d", s.MapTask, p)
				}
				n++
				return nil
			})
			if err != nil {
				errs <- err
				return
			}
			if n != len(specs) {
				errs <- fmt.Errorf("reducer %d got %d of %d", p, n, len(specs))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Consolidation: one remote node means one connection, regardless of
	// four concurrent reducers (the paper's key resource saving).
	if hi := m.Stats().ConnectionsHi; hi != 1 {
		t.Fatalf("peak connections = %d, want 1 (consolidated)", hi)
	}
}

func TestFetchUnknownMOFSurfacesRemoteError(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 1, 1)
	m, err := NewNetMerger(MergerConfig{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Fetch([]FetchSpec{{Addr: fx.addr, MapTask: "missing", Partition: 0}},
		func(FetchSpec, []byte) error { return nil })
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	// The connection stays healthy for subsequent fetches.
	task := "m-00000"
	err = m.Fetch([]FetchSpec{{Addr: fx.addr, MapTask: task, Partition: 0}},
		func(s FetchSpec, data []byte) error {
			if !bytes.Equal(data, fx.segments[task][0]) {
				return fmt.Errorf("corrupt")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("fetch after remote error: %v", err)
	}
}

func TestFetchBadPartitionSurfacesRemoteError(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 1, 2)
	m, _ := NewNetMerger(MergerConfig{Transport: tr})
	defer m.Close()
	err := m.Fetch([]FetchSpec{{Addr: fx.addr, MapTask: "m-00000", Partition: 99}},
		func(FetchSpec, []byte) error { return nil })
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestFetchNoListener(t *testing.T) {
	tr := transport.NewTCP()
	m, _ := NewNetMerger(MergerConfig{Transport: tr})
	defer m.Close()
	err := m.Fetch([]FetchSpec{{Addr: "127.0.0.1:1", MapTask: "x", Partition: 0}},
		func(FetchSpec, []byte) error { return nil })
	if err == nil {
		t.Fatal("fetch from dead address succeeded")
	}
}

func TestFetchEmptySpecs(t *testing.T) {
	m, _ := NewNetMerger(MergerConfig{Transport: transport.NewTCP()})
	defer m.Close()
	if err := m.Fetch(nil, func(FetchSpec, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestFetchAfterClose(t *testing.T) {
	m, _ := NewNetMerger(MergerConfig{Transport: transport.NewTCP()})
	m.Close()
	err := m.Fetch([]FetchSpec{{Addr: "x", MapTask: "t", Partition: 0}},
		func(FetchSpec, []byte) error { return nil })
	if !errors.Is(err, transport.ErrConnClosed) {
		t.Fatalf("err = %v, want ErrConnClosed", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDeliverErrorAborts(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 3, 1)
	m, _ := NewNetMerger(MergerConfig{Transport: tr})
	defer m.Close()
	var specs []FetchSpec
	for task := range fx.segments {
		specs = append(specs, FetchSpec{Addr: fx.addr, MapTask: task, Partition: 0})
	}
	boom := errors.New("deliver failed")
	err := m.Fetch(specs, func(FetchSpec, []byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want deliver error", err)
	}
}

func TestSupplierDataCacheHitsOnRepeatedFetch(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 1, 1)
	m, _ := NewNetMerger(MergerConfig{Transport: tr})
	defer m.Close()
	spec := []FetchSpec{{Addr: fx.addr, MapTask: "m-00000", Partition: 0}}
	for i := 0; i < 3; i++ {
		if err := m.Fetch(spec, func(FetchSpec, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := fx.supplier.Stats()
	if st.DiskReads != 1 {
		t.Fatalf("disk reads = %d, want 1 (DataCache hits)", st.DiskReads)
	}
	if st.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2", st.CacheHits)
	}
}

func TestSupplierConfigValidation(t *testing.T) {
	if _, err := NewMOFSupplier(SupplierConfig{}, nil); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewMOFSupplier(SupplierConfig{Transport: transport.NewTCP()}, nil); err == nil {
		t.Fatal("missing addr accepted")
	}
	if _, err := NewMOFSupplier(SupplierConfig{Transport: transport.NewTCP(), Addr: "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("missing lookup accepted")
	}
}

// TestSupplierConfigRejectsNegativesByName checks that every numeric knob
// rejects negative values with an error naming the offending field.
func TestSupplierConfigRejectsNegativesByName(t *testing.T) {
	base := func() SupplierConfig {
		return SupplierConfig{Transport: transport.NewTCP(), Addr: "127.0.0.1:0"}
	}
	cases := []struct {
		field string
		mut   func(*SupplierConfig)
	}{
		{"BufferSize", func(c *SupplierConfig) { c.BufferSize = -1 }},
		{"DataCacheBytes", func(c *SupplierConfig) { c.DataCacheBytes = -1 }},
		{"PrefetchBatch", func(c *SupplierConfig) { c.PrefetchBatch = -1 }},
		{"XmitWorkers", func(c *SupplierConfig) { c.XmitWorkers = -1 }},
		{"IndexCacheEntries", func(c *SupplierConfig) { c.IndexCacheEntries = -1 }},
		{"FileCacheEntries", func(c *SupplierConfig) { c.FileCacheEntries = -1 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		err := cfg.applyDefaults()
		if err == nil {
			t.Errorf("negative %s accepted", tc.field)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("negative %s error %q does not name the field", tc.field, err)
		}
	}
	// Zero still means default.
	cfg := base()
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.BufferSize != transport.DefaultBufferSize || cfg.FileCacheEntries != 128 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestMergerConfigValidation(t *testing.T) {
	if _, err := NewNetMerger(MergerConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := MergerConfig{Transport: transport.NewTCP()}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxConnections != 512 {
		t.Fatalf("default max connections = %d, want 512 (paper)", cfg.MaxConnections)
	}
}

// TestMergerConfigRejectsNegativesByName mirrors the supplier check: every
// numeric knob rejects negatives with a named-field error.
func TestMergerConfigRejectsNegativesByName(t *testing.T) {
	cases := []struct {
		field string
		mut   func(*MergerConfig)
	}{
		{"MaxConnections", func(c *MergerConfig) { c.MaxConnections = -1 }},
		{"WindowPerNode", func(c *MergerConfig) { c.WindowPerNode = -1 }},
		{"MaxRetries", func(c *MergerConfig) { c.MaxRetries = -1 }},
	}
	for _, tc := range cases {
		cfg := MergerConfig{Transport: transport.NewTCP()}
		tc.mut(&cfg)
		err := cfg.applyDefaults()
		if err == nil {
			t.Errorf("negative %s accepted", tc.field)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("negative %s error %q does not name the field", tc.field, err)
		}
	}
}

func TestManySegmentsManyTasksStress(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 12, 6)
	m, _ := NewNetMerger(MergerConfig{Transport: tr, WindowPerNode: 3})
	defer m.Close()
	var specs []FetchSpec
	for task := range fx.segments {
		for p := 0; p < 6; p++ {
			specs = append(specs, FetchSpec{Addr: fx.addr, MapTask: task, Partition: p})
		}
	}
	total := 0
	err := m.Fetch(specs, func(s FetchSpec, data []byte) error {
		if !bytes.Equal(data, fx.segments[s.MapTask][s.Partition]) {
			return fmt.Errorf("corrupt %s/%d", s.MapTask, s.Partition)
		}
		total++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 72 {
		t.Fatalf("fetched %d segments, want 72", total)
	}
}
