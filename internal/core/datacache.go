package core

import (
	"sync"

	"repro/internal/bufpool"
)

// DataCache is the MOFSupplier's staging memory (Section III-B): the disk
// prefetch server deposits segments here and asynchronous transmission
// drains them, decoupling disk reads from network sends. Entries being
// transmitted are pinned; finished entries linger unpinned so repeated
// fetches of a hot segment hit memory, and are evicted LRU under capacity
// pressure. Put blocks when the cache is full of pinned data — the
// backpressure that paces prefetching to transmission.
//
// Segments are held as pooled leases and reference counted: residency in
// the cache owns the lease's base reference, every Pin retains it, and the
// buffer returns to its pool only when the entry has been evicted and the
// last concurrent transmitter has unpinned. Concurrent fetches of one hot
// segment therefore share a single buffer.
type DataCache struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int64
	used     int64

	entries map[cacheKey]*dcEntry
	// lru is the sentinel of an intrusive ring of unpinned entries
	// (lru.next = most recently released); links live in dcEntry so
	// pinning and unpinning a hot segment allocates nothing.
	lru dcEntry

	hits, misses, evictions int64
}

type cacheKey struct {
	task      string
	partition int
}

type dcEntry struct {
	key   cacheKey
	lease *bufpool.Lease
	pins  int
	// prev/next link the entry into the cache's LRU ring while unpinned;
	// both are nil while pinned.
	prev, next *dcEntry
}

// NewDataCache creates a cache with the given byte capacity.
func NewDataCache(capacity int64) *DataCache {
	if capacity <= 0 {
		panic("core: data cache capacity must be positive")
	}
	c := &DataCache{
		capacity: capacity,
		entries:  make(map[cacheKey]*dcEntry),
	}
	c.lru.prev, c.lru.next = &c.lru, &c.lru
	c.cond = sync.NewCond(&c.mu)
	return c
}

// lruRemove unlinks an entry from the LRU ring. Callers hold mu.
func (c *DataCache) lruRemove(e *dcEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// lruPushFront links an entry at the most-recently-released end of the
// ring. Callers hold mu.
func (c *DataCache) lruPushFront(e *dcEntry) {
	e.prev, e.next = &c.lru, c.lru.next
	e.prev.next = e
	e.next.prev = e
}

// Pin returns the cached segment and pins it, or reports a miss. The bytes
// stay valid until the matching Unpin.
func (c *DataCache) Pin(task string, partition int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey{task, partition}]
	if !ok {
		c.misses++
		dcMisses.Inc()
		return nil, false
	}
	c.hits++
	dcHits.Inc()
	c.pin(e)
	return e.lease.Bytes(), true
}

func (c *DataCache) pin(e *dcEntry) {
	if e.next != nil {
		c.lruRemove(e)
	}
	e.lease.Retain()
	e.pins++
}

// Put inserts a prefetched segment pinned once, taking ownership of the
// lease's base reference for as long as the entry stays resident. If the
// key is already cached, the incoming lease is released and the existing
// entry pinned instead. Put blocks until the data fits; a segment larger
// than the whole cache is admitted alone.
func (c *DataCache) Put(task string, partition int, lease *bufpool.Lease) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{task, partition}
	if e, ok := c.entries[key]; ok {
		c.pin(e)
		lease.Release() // duplicate prefetch of a resident segment
		return e.lease.Bytes()
	}
	need := int64(lease.Len())
	for c.used+need > c.capacity {
		if c.evictOne() {
			continue
		}
		if c.used == 0 {
			break // oversized segment: admit alone rather than deadlock
		}
		c.cond.Wait()
	}
	e := &dcEntry{key: key, lease: lease, pins: 1}
	e.lease.Retain() // the staging pin, on top of the residency reference
	c.entries[key] = e
	c.used += need
	dcResident.Add(need)
	return lease.Bytes()
}

// evictOne removes the least recently used unpinned entry, releasing its
// residency reference; it reports whether anything was evicted.
func (c *DataCache) evictOne() bool {
	e := c.lru.prev
	if e == &c.lru {
		return false
	}
	c.lruRemove(e)
	delete(c.entries, e.key)
	c.used -= int64(e.lease.Len())
	c.evictions++
	dcEvictions.Inc()
	dcResident.Add(-int64(e.lease.Len()))
	e.lease.Release()
	return true
}

// Unpin releases one pin. Fully unpinned entries stay cached (LRU) until
// capacity pressure evicts them.
func (c *DataCache) Unpin(task string, partition int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey{task, partition}]
	if !ok || e.pins == 0 {
		panic("core: Unpin without matching Pin/Put")
	}
	e.pins--
	e.lease.Release()
	if e.pins == 0 {
		c.lruPushFront(e)
		c.cond.Broadcast()
	}
}

// Drain evicts every unpinned entry, returning their buffers to the pool.
// With no transmissions in flight this empties the cache, which is how the
// supplier's Close (and leak-checking tests) prove no segment buffer is
// still outstanding.
func (c *DataCache) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.evictOne() {
	}
	c.cond.Broadcast()
}

// Used returns the resident byte count.
func (c *DataCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns hit, miss, and eviction counts.
func (c *DataCache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
