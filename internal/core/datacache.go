package core

import (
	"container/list"
	"sync"
)

// DataCache is the MOFSupplier's staging memory (Section III-B): the disk
// prefetch server deposits segments here and asynchronous transmission
// drains them, decoupling disk reads from network sends. Entries being
// transmitted are pinned; finished entries linger unpinned so repeated
// fetches of a hot segment hit memory, and are evicted LRU under capacity
// pressure. Put blocks when the cache is full of pinned data — the
// backpressure that paces prefetching to transmission.
type DataCache struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int64
	used     int64

	entries map[cacheKey]*dcEntry
	// lru holds unpinned entries, front = most recently released.
	lru *list.List

	hits, misses, evictions int64
}

type cacheKey struct {
	task      string
	partition int
}

type dcEntry struct {
	key  cacheKey
	data []byte
	pins int
	el   *list.Element // non-nil while unpinned
}

// NewDataCache creates a cache with the given byte capacity.
func NewDataCache(capacity int64) *DataCache {
	if capacity <= 0 {
		panic("core: data cache capacity must be positive")
	}
	c := &DataCache{
		capacity: capacity,
		entries:  make(map[cacheKey]*dcEntry),
		lru:      list.New(),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Pin returns the cached segment and pins it, or reports a miss.
func (c *DataCache) Pin(task string, partition int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey{task, partition}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.pin(e)
	return e.data, true
}

func (c *DataCache) pin(e *dcEntry) {
	if e.el != nil {
		c.lru.Remove(e.el)
		e.el = nil
	}
	e.pins++
}

// Put inserts a prefetched segment pinned once. If the key is already
// cached, the existing entry is pinned instead. Put blocks until the data
// fits; a segment larger than the whole cache is admitted alone.
func (c *DataCache) Put(task string, partition int, data []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{task, partition}
	if e, ok := c.entries[key]; ok {
		c.pin(e)
		return e.data
	}
	need := int64(len(data))
	for c.used+need > c.capacity {
		if c.evictOne() {
			continue
		}
		if c.used == 0 {
			break // oversized segment: admit alone rather than deadlock
		}
		c.cond.Wait()
	}
	e := &dcEntry{key: key, data: data, pins: 1}
	c.entries[key] = e
	c.used += need
	return data
}

// evictOne removes the least recently used unpinned entry; it reports
// whether anything was evicted.
func (c *DataCache) evictOne() bool {
	back := c.lru.Back()
	if back == nil {
		return false
	}
	e := back.Value.(*dcEntry)
	c.lru.Remove(back)
	delete(c.entries, e.key)
	c.used -= int64(len(e.data))
	c.evictions++
	return true
}

// Unpin releases one pin. Fully unpinned entries stay cached (LRU) until
// capacity pressure evicts them.
func (c *DataCache) Unpin(task string, partition int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey{task, partition}]
	if !ok || e.pins == 0 {
		panic("core: Unpin without matching Pin/Put")
	}
	e.pins--
	if e.pins == 0 {
		e.el = c.lru.PushFront(e)
		c.cond.Broadcast()
	}
}

// Used returns the resident byte count.
func (c *DataCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns hit, miss, and eviction counts.
func (c *DataCache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
