package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mof"
	"repro/internal/transport"
)

// TestDrainZeroInflightReturnsImmediately covers the trivial drain: with
// nothing in the pipeline Drain completes at once, and calling it again
// (including concurrently) observes the same completed drain.
func TestDrainZeroInflightReturnsImmediately(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 1, 1)
	s := fx.supplier

	if s.Draining() {
		t.Fatal("fresh supplier reports draining")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("zero-inflight drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("supplier not draining after Drain")
	}
	// Double drain is idempotent: repeated and concurrent calls all wait
	// on the same (already complete) drain.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("repeat drain: %v", err)
			}
		}()
	}
	wg.Wait()
}

// buildBigMOF writes a one-partition MOF whose segment is large enough
// that transmitting it fills the loopback socket buffers when the client
// refuses to read.
func buildBigMOF(t *testing.T, dir, task string, segBytes int) (dataPath, indexPath string) {
	t.Helper()
	dataPath = filepath.Join(dir, task+".data")
	indexPath = filepath.Join(dir, task+".index")
	w, err := mof.NewWriter(dataPath, indexPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginSegment(0); err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 1024)
	for written := 0; written < segBytes; written += len(val) {
		if err := w.Append([]byte(fmt.Sprintf("k%08d", written)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dataPath, indexPath
}

// TestDrainWaitsForInflightThenSheds drives the full drain contract over
// a raw connection: a fetch mid-transmission holds the drain open (a
// short-deadline Drain times out), new requests arriving during the
// drain are shed with a retry-after hint, and once the client drains the
// in-flight response the supplier's Drain completes.
func TestDrainWaitsForInflightThenSheds(t *testing.T) {
	tr := transport.NewTCP()
	dir := t.TempDir()
	const segBytes = 16 << 20 // >> loopback socket buffering, so xmit blocks
	dataPath, indexPath := buildBigMOF(t, dir, "m-big", segBytes)
	lookup := func(task string) (string, string, error) {
		if task != "m-big" {
			return "", "", fmt.Errorf("no MOF %s", task)
		}
		return dataPath, indexPath, nil
	}
	s, err := NewMOFSupplier(SupplierConfig{
		Transport:      tr,
		Addr:           "127.0.0.1:0",
		BufferSize:     4 << 10,
		DataCacheBytes: 32 << 20,
	}, lookup)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := tr.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(encodeFetchRequest(fetchRequest{ID: 1, MapTask: "m-big"})); err != nil {
		t.Fatal(err)
	}
	// The unread response wedges the transmit worker against socket
	// backpressure, holding pipeline occupancy at one.
	deadline := time.Now().Add(5 * time.Second)
	for s.Inflight() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, want 1", s.Inflight())
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	err = s.Drain(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with a wedged fetch: err = %v, want deadline exceeded", err)
	}

	// A request arriving while draining is shed, not served.
	if err := conn.Send(encodeFetchRequest(fetchRequest{ID: 2, MapTask: "m-big"})); err != nil {
		t.Fatal(err)
	}

	// Unwedge: consume the in-flight response. The shed for ID 2 arrives
	// interleaved with the data chunks for ID 1.
	var (
		got     []byte
		shedID  uint64
		sawShed bool
	)
	for {
		msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(msg) > 0 && msg[0] == msgShed {
			id, retryAfter, err := decodeShed(msg)
			if err != nil {
				t.Fatal(err)
			}
			if retryAfter <= 0 {
				t.Fatalf("shed retry-after = %v, want positive", retryAfter)
			}
			shedID, sawShed = id, true
			continue
		}
		chunk, err := decodeDataChunk(msg)
		if err != nil {
			t.Fatal(err)
		}
		if chunk.Failed {
			t.Fatalf("fetch failed: %s", chunk.Payload)
		}
		got = append(got, chunk.Payload...)
		if chunk.Last {
			break
		}
	}
	if !sawShed {
		// The shed may still be queued behind the last data chunk.
		msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(msg) == 0 || msg[0] != msgShed {
			t.Fatalf("expected shed frame, got type %d", msg[0])
		}
		shedID, _, err = decodeShed(msg)
		if err != nil {
			t.Fatal(err)
		}
	}
	if shedID != 2 {
		t.Fatalf("shed id = %d, want 2", shedID)
	}

	ix, err := mof.ReadIndex(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := ix.Entry(0)
	want, err := mof.ReadSegmentBytes(dataPath, entry)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("in-flight segment corrupted during drain: got %d bytes, want %d", len(got), len(want))
	}

	// With the pipeline empty the drain now completes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("drain after unwedging: %v", err)
	}
	if n := s.Stats().DrainSheds; n != 1 {
		t.Fatalf("DrainSheds = %d, want 1", n)
	}
}

// TestDrainHandoffReroutesFetch proves the lossless-drain loop end to
// end in-process: a fetch aimed at a draining supplier is shed, parked,
// re-resolved to the peer that owns the shard now, and served by the
// peer — the merger's caller never sees an error.
func TestDrainHandoffReroutesFetch(t *testing.T) {
	tr := transport.NewTCP()
	dir := t.TempDir()
	paths := map[string][2]string{}
	segs := map[string][][]byte{}
	for i := 0; i < 2; i++ {
		task := fmt.Sprintf("m-%05d", i)
		_, data, index, raw := buildMOF(t, dir, task, 2)
		paths[task] = [2]string{data, index}
		segs[task] = raw
	}
	lookup := func(task string) (string, string, error) {
		p, ok := paths[task]
		if !ok {
			return "", "", fmt.Errorf("no MOF %s", task)
		}
		return p[0], p[1], nil
	}
	newSup := func() *MOFSupplier {
		s, err := NewMOFSupplier(SupplierConfig{Transport: tr, Addr: "127.0.0.1:0"}, lookup)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	a, b := newSup(), newSup()

	// The "registry": resolution returns the draining supplier once (the
	// stale ownership view), then the peer — exactly the window a real
	// handoff opens.
	var resolves atomic.Int64
	resolver := func(spec FetchSpec) (string, error) {
		if resolves.Add(1) <= 1 {
			return a.Addr(), nil
		}
		return b.Addr(), nil
	}
	m, err := NewNetMerger(MergerConfig{Transport: tr, Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	spec := FetchSpec{MapTask: "m-00000", Partition: 1} // Addr empty: resolver-addressed
	var got []byte
	err = m.Fetch([]FetchSpec{spec}, func(s FetchSpec, data []byte) error {
		got = append([]byte(nil), data...)
		return nil
	})
	if err != nil {
		t.Fatalf("fetch across drain handoff: %v", err)
	}
	if !bytes.Equal(got, segs["m-00000"][1]) {
		t.Fatal("handoff delivered wrong bytes")
	}
	st := m.Stats()
	if st.Sheds == 0 {
		t.Fatalf("stats = %+v: fetch was never shed by the draining supplier", st)
	}
	if st.Rerouted == 0 {
		t.Fatalf("stats = %+v: parked fetch was not rerouted to the peer", st)
	}
	if st.Errors != 0 {
		t.Fatalf("stats = %+v: drain handoff must be lossless", st)
	}
	if n := a.Stats().DrainSheds; n == 0 {
		t.Fatal("draining supplier recorded no drain sheds")
	}
	if bs := b.Stats().BytesServed; bs == 0 {
		t.Fatal("peer supplier served no bytes after handoff")
	}
}

// TestFetchEmptyAddrWithoutResolverFails pins the static-addressing
// contract: an empty Addr with no Resolver is an immediate per-spec
// error, not a hang.
func TestFetchEmptyAddrWithoutResolverFails(t *testing.T) {
	tr := transport.NewTCP()
	m, err := NewNetMerger(MergerConfig{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Fetch([]FetchSpec{{MapTask: "m-0", Partition: 0}}, func(FetchSpec, []byte) error {
		t.Fatal("deliver called for an unresolvable spec")
		return nil
	})
	if !errors.Is(err, errNoResolver) {
		t.Fatalf("err = %v, want errNoResolver", err)
	}
}
