package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/mof"
	"repro/internal/transport"
)

// flowSupplierFixture stands up a supplier with flow control: a ledger so
// small that one resident segment sheds every concurrent arrival.
func flowSupplierFixture(t *testing.T, tr transport.Transport, tasks, parts int, fc *flow.Config, tenant flow.TenantFunc) *supplierFixture {
	t.Helper()
	dir := t.TempDir()
	paths := map[string][2]string{}
	segs := map[string][][]byte{}
	for i := 0; i < tasks; i++ {
		task := fmt.Sprintf("m-%05d", i)
		_, data, index, raw := buildMOF(t, dir, task, parts)
		paths[task] = [2]string{data, index}
		segs[task] = raw
	}
	lookup := func(task string) (string, string, error) {
		p, ok := paths[task]
		if !ok {
			return "", "", fmt.Errorf("no MOF %s", task)
		}
		return p[0], p[1], nil
	}
	s, err := NewMOFSupplier(SupplierConfig{
		Transport:      tr,
		Addr:           "127.0.0.1:0",
		BufferSize:     4 << 10,
		DataCacheBytes: 1 << 20,
		Flow:           fc,
		Tenant:         tenant,
	}, lookup)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return &supplierFixture{supplier: s, addr: s.Addr(), segments: segs}
}

// TestFlowShedBackoffRetryEndToEnd drives a real supplier+merger pair into
// admission shedding and checks the loop converges: every segment arrives
// intact, no fetch surfaces an error, and the sheds actually happened.
func TestFlowShedBackoffRetryEndToEnd(t *testing.T) {
	tr := transport.NewTCP()
	// AdmitBytes 1: the oversized-alone rule serializes the pipeline to
	// one resident segment, so concurrent arrivals shed deterministically.
	fc := &flow.Config{AdmitBytes: 1, RetryAfter: 200 * time.Microsecond}
	fx := flowSupplierFixture(t, tr, 8, 4, fc, nil)

	m, err := NewNetMerger(MergerConfig{
		Transport:     tr,
		WindowPerNode: 8, // open wide so the first burst overwhelms admission
		Flow:          &flow.Config{RetryAfter: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var specs []FetchSpec
	for task := range fx.segments {
		for p := 0; p < 4; p++ {
			specs = append(specs, FetchSpec{Addr: fx.addr, MapTask: task, Partition: p})
		}
	}
	// Several rounds: re-fetching cached segments arrives even faster,
	// making shedding overwhelmingly likely across the set of rounds.
	const rounds = 3
	for round := 0; round < rounds; round++ {
		got := map[string][]byte{}
		err := m.Fetch(specs, func(s FetchSpec, data []byte) error {
			got[fmt.Sprintf("%s/%d", s.MapTask, s.Partition)] = data
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(got) != len(specs) {
			t.Fatalf("round %d: delivered %d segments, want %d", round, len(got), len(specs))
		}
		for task, parts := range fx.segments {
			for p, want := range parts {
				if !bytes.Equal(got[fmt.Sprintf("%s/%d", task, p)], want) {
					t.Fatalf("round %d: segment %s/%d corrupted", round, task, p)
				}
			}
		}
	}
	st := m.Stats()
	if st.Errors != 0 {
		t.Fatalf("merger surfaced %d errors under shedding", st.Errors)
	}
	if st.Sheds == 0 {
		t.Fatal("no sheds: the scenario did not exercise admission control")
	}
	if st.ShedRetries != st.Sheds {
		t.Errorf("sheds %d vs shed retries %d: parked fetches lost", st.Sheds, st.ShedRetries)
	}
	ls := fx.supplier.FlowState().Ledger
	if ls == nil || ls.Sheds == 0 {
		t.Fatalf("supplier ledger state %+v, want sheds recorded", ls)
	}
	if ls.Used != 0 {
		t.Errorf("ledger balance %d after drain, want 0", ls.Used)
	}
	mws := m.FlowState().Windows
	if len(mws) != 1 || mws[0].Node != fx.addr {
		t.Fatalf("merger window state = %+v, want one window for %s", mws, fx.addr)
	}
}

// TestFlowTenantsScheduledFairly runs two jobs through a flow-enabled
// supplier with 1:3 weights and checks both finish with the DRR tracking
// their queues.
func TestFlowTenantsScheduledFairly(t *testing.T) {
	tr := transport.NewTCP()
	tenant := func(task string) string {
		// Tasks m-00000..m-00003 are jobA; the rest jobB.
		if task < "m-00004" {
			return "jobA"
		}
		return "jobB"
	}
	fc := &flow.Config{Weights: map[string]int64{"jobA": 1, "jobB": 3}}
	fx := flowSupplierFixture(t, tr, 8, 4, fc, tenant)

	m, err := NewNetMerger(MergerConfig{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var specs []FetchSpec
	for task := range fx.segments {
		for p := 0; p < 4; p++ {
			specs = append(specs, FetchSpec{Addr: fx.addr, MapTask: task, Partition: p})
		}
	}
	delivered := 0
	if err := m.Fetch(specs, func(FetchSpec, []byte) error { delivered++; return nil }); err != nil {
		t.Fatal(err)
	}
	if delivered != len(specs) {
		t.Fatalf("delivered %d, want %d", delivered, len(specs))
	}
	tenants := fx.supplier.FlowState().Tenants
	seen := map[string]flow.TenantState{}
	for _, ts := range tenants {
		seen[ts.Tenant] = ts
	}
	for _, name := range []string{"jobA", "jobB"} {
		ts, ok := seen[name]
		if !ok {
			t.Fatalf("tenant %s never scheduled: %+v", name, tenants)
		}
		if ts.QueuedBytes != 0 || ts.Active {
			t.Errorf("tenant %s not drained: %+v", name, ts)
		}
	}
	if seen["jobB"].Weight != 3 || seen["jobA"].Weight != 1 {
		t.Errorf("weights lost: %+v", seen)
	}
}

// TestFlowZeroLengthSegmentsDrain fetches a MOF whose tail partitions are
// empty through a flow-enabled supplier. Empty segments charge the DRR one
// unit each (flow.Cost); if they charged zero, serving the lone non-empty
// segment could deactivate the tenant with fetches still queued, stranding
// them forever — this test would hang instead of draining.
func TestFlowZeroLengthSegmentsDrain(t *testing.T) {
	tr := transport.NewTCP()
	dir := t.TempDir()
	const parts = 6
	dataPath := filepath.Join(dir, "m-0.data")
	indexPath := filepath.Join(dir, "m-0.index")
	w, err := mof.NewWriter(dataPath, indexPath, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	// Partitions 1..5 are never begun: the writer emits empty entries.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := NewMOFSupplier(SupplierConfig{
		Transport: tr,
		Addr:      "127.0.0.1:0",
		// One request per scheduler turn, so the non-empty segment is
		// served on its own and the tenant's queue must stay non-zero on
		// the strength of the empty segments alone.
		PrefetchBatch: 1,
		Flow:          &flow.Config{},
	}, func(string) (string, string, error) { return dataPath, indexPath, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	m, err := NewNetMerger(MergerConfig{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var specs []FetchSpec
	for p := 0; p < parts; p++ {
		specs = append(specs, FetchSpec{Addr: s.Addr(), MapTask: "m-0", Partition: p})
	}
	sizes := make([]int, parts)
	done := make(chan error, 1)
	go func() {
		done <- m.Fetch(specs, func(sp FetchSpec, b []byte) error {
			sizes[sp.Partition] = len(b)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fetch hung: zero-length segments stranded in the tenant scheduler")
	}
	if sizes[0] == 0 {
		t.Error("non-empty partition delivered no bytes")
	}
	for p := 1; p < parts; p++ {
		if sizes[p] != 0 {
			t.Errorf("empty partition %d delivered %d bytes", p, sizes[p])
		}
	}
}

// TestShedFrameIgnoredForForeignFetch sends a shed frame from a node that
// does not own the named fetch. Honoring it would decrement the wrong
// group's inflight (permanent window drift) and leak the owner's slot, so
// the merger must drop the frame without moving any accounting.
func TestShedFrameIgnoredForForeignFetch(t *testing.T) {
	m, err := NewNetMerger(MergerConfig{Transport: transport.NewTCP(), Flow: &flow.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	owner, foreign := "10.0.0.1:7000", "10.0.0.2:7000"
	results := make(chan fetchResult, 1) // Close drains pending into this
	m.mu.Lock()
	for _, addr := range []string{owner, foreign} {
		g := &nodeGroup{addr: addr, inflightG: inflightGauge(addr)}
		g.win = flow.NewWindow(*m.cfg.Flow, flow.WindowGauge(addr))
		m.groups[addr] = g
		m.ring = append(m.ring, addr)
	}
	p := &pendingFetch{id: 7, spec: FetchSpec{Addr: owner, MapTask: "m-0"}, result: results}
	m.pending[7] = p
	m.groups[owner].acquire()
	m.mu.Unlock()

	frame := appendShed(nil, 7, maxRetryAfter)
	if err := m.handleFlowFrame(foreign, frame); err != nil {
		t.Fatalf("foreign shed returned error: %v", err)
	}
	m.mu.Lock()
	if _, ok := m.pending[7]; !ok {
		t.Fatal("foreign shed removed the owner's pending fetch")
	}
	if got := m.groups[owner].inflight; got != 1 {
		t.Errorf("owner inflight = %d, want 1", got)
	}
	if got := m.groups[foreign].inflight; got != 0 {
		t.Errorf("foreign inflight = %d, want 0", got)
	}
	if m.sheds != 0 {
		t.Errorf("sheds = %d after a dropped foreign shed, want 0", m.sheds)
	}
	m.mu.Unlock()

	// The same frame from the true owner sheds normally: pending moves to
	// parked and the slot is released. (The minute-long retry-after keeps
	// the unpark timer from firing before Close stops it.)
	if err := m.handleFlowFrame(owner, frame); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pending[7]; ok {
		t.Error("owner shed left the fetch pending")
	}
	if _, ok := m.parked[7]; !ok {
		t.Error("owner shed did not park the fetch")
	}
	if got := m.groups[owner].inflight; got != 0 {
		t.Errorf("owner inflight = %d after its shed, want 0", got)
	}
	if m.sheds != 1 {
		t.Errorf("sheds = %d, want 1", m.sheds)
	}
}

// TestFlowConfigRejectedByName checks invalid flow configs surface through
// the core constructors with the offending field named.
func TestFlowConfigRejectedByName(t *testing.T) {
	tr := transport.NewTCP()
	_, err := NewMOFSupplier(SupplierConfig{
		Transport: tr,
		Addr:      "127.0.0.1:0",
		Flow:      &flow.Config{AdmitBytes: -5},
	}, func(string) (string, string, error) { return "", "", nil })
	if err == nil || !strings.Contains(err.Error(), "AdmitBytes") {
		t.Errorf("supplier error %v does not name AdmitBytes", err)
	}
	_, err = NewNetMerger(MergerConfig{
		Transport: tr,
		Flow:      &flow.Config{Decrease: 1.5},
	})
	if err == nil || !strings.Contains(err.Error(), "Decrease") {
		t.Errorf("merger error %v does not name Decrease", err)
	}
	// The named-field rule also covers the merger's own knobs.
	_, err = NewNetMerger(MergerConfig{Transport: tr, WindowPerNode: -1})
	if err == nil || !strings.Contains(err.Error(), "WindowPerNode") {
		t.Errorf("merger error %v does not name WindowPerNode", err)
	}
	_, err = NewNetMerger(MergerConfig{Transport: tr, MaxConnections: -1})
	if err == nil || !strings.Contains(err.Error(), "MaxConnections") {
		t.Errorf("merger error %v does not name MaxConnections", err)
	}
}

// TestFlowDisabledIsDefault guards the control plane's opt-in nature: a
// nil Flow config keeps ledger, DRR, and windows off.
func TestFlowDisabledIsDefault(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 1, 1)
	st := fx.supplier.FlowState()
	if st.Ledger != nil || st.Tenants != nil {
		t.Errorf("flow state %+v on a flow-disabled supplier", st)
	}
	m, err := NewNetMerger(MergerConfig{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if ws := m.FlowState().Windows; ws != nil {
		t.Errorf("windows %+v on a flow-disabled merger", ws)
	}
}
