package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// FuzzFrameUnmarshal drives the fetch-request and data-chunk decoders
// with arbitrary bytes. The decoders sit directly on network input — a
// malformed or hostile frame must come back as ErrBadMessage or
// ErrCorruptFrame, never a panic, a huge allocation (the sized-chunk
// Total field is attacker-controlled), or an out-of-bounds read. Valid
// frames that decode must re-encode to the identical wire image.
func FuzzFrameUnmarshal(f *testing.F) {
	f.Add(encodeFetchRequest(fetchRequest{ID: 1, Partition: 3, MapTask: "m-00001"}))
	f.Add(encodeFetchRequest(fetchRequest{}))
	f.Add(encodeDataChunk(dataChunk{ID: 7, Last: true, Payload: []byte("tail chunk")}))
	f.Add(encodeDataChunk(dataChunk{ID: 9, Sized: true, Total: 1 << 20, Payload: bytes.Repeat([]byte("x"), 64)}))
	f.Add(encodeDataChunk(dataChunk{ID: 2, Last: true, Failed: true, Payload: []byte("remote error")}))
	f.Add([]byte{msgDataChunk})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if req, err := decodeFetchRequest(raw); err == nil {
			re := encodeFetchRequest(req)
			if !bytes.Equal(re, raw) {
				t.Fatalf("fetch request re-encode mismatch:\n in %x\nout %x", raw, re)
			}
		} else if !errors.Is(err, ErrBadMessage) && !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("fetch request decode returned unexpected error class: %v", err)
		}
		if c, err := decodeDataChunk(raw); err == nil {
			if c.Total < 0 || c.Total > maxSegmentTotal {
				t.Fatalf("decoded chunk Total %d escaped its cap", c.Total)
			}
			re := encodeDataChunk(c)
			if !bytes.Equal(re, raw) {
				t.Fatalf("data chunk re-encode mismatch:\n in %x\nout %x", raw, re)
			}
		} else if !errors.Is(err, ErrBadMessage) && !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("data chunk decode returned unexpected error class: %v", err)
		}
	})
}

// FuzzShedCreditFrame drives the flow-control frame decoders. Same
// contract: structured errors only, and decoded values must stay inside
// their documented bounds (retry-after capped at maxRetryAfter).
func FuzzShedCreditFrame(f *testing.F) {
	f.Add(appendShed(nil, 42, 2*time.Millisecond))
	f.Add(appendShed(nil, 0, 0))
	f.Add(appendShed(nil, ^uint64(0), maxRetryAfter))
	f.Add(appendCredit(nil, 1))
	f.Add(appendCredit(nil, ^uint32(0)))
	f.Add([]byte{msgShed})
	f.Add([]byte{msgCredit, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if id, retryAfter, err := decodeShed(raw); err == nil {
			if retryAfter < 0 || retryAfter > maxRetryAfter {
				t.Fatalf("shed retry-after %v escaped its cap", retryAfter)
			}
			re := appendShed(nil, id, retryAfter)
			if !bytes.Equal(re, raw) {
				t.Fatalf("shed re-encode mismatch:\n in %x\nout %x", raw, re)
			}
		} else if !errors.Is(err, ErrBadMessage) && !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("shed decode returned unexpected error class: %v", err)
		}
		if n, err := decodeCredit(raw); err == nil {
			re := appendCredit(nil, n)
			if !bytes.Equal(re, raw) {
				t.Fatalf("credit re-encode mismatch:\n in %x\nout %x", raw, re)
			}
		} else if !errors.Is(err, ErrBadMessage) && !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("credit decode returned unexpected error class: %v", err)
		}
	})
}

// FuzzHedgeProtocolFrames drives the cancel-frame decoder — the wire
// surface the hedging controller added. A CANCEL arrives on the
// supplier's request path straight off the network, interleaved with
// fetch requests, so a hostile frame must come back as ErrBadMessage or
// ErrCorruptFrame, never a panic; a frame that decodes must re-encode
// to the identical wire image; and no mutation may make one frame type
// decode as another (a cancel misread as a fetch request would withdraw
// the wrong segment).
func FuzzHedgeProtocolFrames(f *testing.F) {
	f.Add(appendCancel(nil, 42))
	f.Add(appendCancel(nil, 0))
	f.Add(appendCancel(nil, ^uint64(0)))
	f.Add([]byte{msgCancel})
	f.Add([]byte{msgCancel, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(encodeFetchRequest(fetchRequest{ID: 42, Partition: 1, MapTask: "m-00042"}))
	f.Fuzz(func(t *testing.T, raw []byte) {
		id, err := decodeCancel(raw)
		switch {
		case err == nil:
			re := appendCancel(nil, id)
			if !bytes.Equal(re, raw) {
				t.Fatalf("cancel re-encode mismatch:\n in %x\nout %x", raw, re)
			}
			// Type confusion: a valid cancel must be rejected by every
			// other decoder sharing the request path.
			if _, rerr := decodeFetchRequest(raw); rerr == nil {
				t.Fatalf("cancel frame %x also decodes as a fetch request", raw)
			}
		case errors.Is(err, ErrBadMessage), errors.Is(err, ErrCorruptFrame):
			// Structured rejection is the contract for arbitrary input.
		default:
			t.Fatalf("cancel decode returned unexpected error class: %v", err)
		}
	})
}
