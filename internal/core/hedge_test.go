package core

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/transport"
)

// hedgeTestSupplier is a hand-rolled supplier with one fixed behavior
// per instance — serve (after an optional delay), or stall forever —
// plus CANCEL-frame accounting. Hedge tests pair two of these (a
// primary and a replica) with different behaviors to decide races
// deterministically; the per-occurrence scriptedSupplier cannot, since
// a hedge attempt arrives under a fresh request id.
type hedgeTestSupplier struct {
	lis     transport.Listener
	payload []byte
	serve   bool          // false: stall (swallow requests, conn stays open)
	delay   time.Duration // serve delay; 0 serves immediately

	wg      sync.WaitGroup
	cancels atomic.Int64 // CANCEL frames received
	served  atomic.Int64 // segments fully transmitted
}

func newHedgeTestSupplier(t *testing.T, payload []byte, serve bool, delay time.Duration) *hedgeTestSupplier {
	t.Helper()
	lis, err := transport.NewTCP().Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &hedgeTestSupplier{lis: lis, payload: payload, serve: serve, delay: delay}
	s.wg.Add(1)
	go s.acceptLoop()
	t.Cleanup(func() { lis.Close(); s.wg.Wait() })
	return s
}

func (s *hedgeTestSupplier) Addr() string { return s.lis.Addr() }

func (s *hedgeTestSupplier) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *hedgeTestSupplier) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		if len(msg) > 0 && msg[0] == msgCancel {
			if _, err := decodeCancel(msg); err == nil {
				s.cancels.Add(1)
			}
			continue
		}
		req, err := decodeFetchRequest(msg)
		if err != nil {
			return
		}
		if !s.serve {
			continue // stall: the request is swallowed, the conn stays up
		}
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		chunk := encodeDataChunk(dataChunk{
			ID: req.ID, Last: true, Sized: true,
			Total: int64(len(s.payload)), Payload: s.payload,
		})
		if conn.Send(chunk) != nil {
			return
		}
		s.served.Add(1)
	}
}

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// checkHedgeConservation asserts the controller's conservation law:
// every launched speculative attempt reached exactly one terminal state.
func checkHedgeConservation(t *testing.T, st MergerStats) {
	t.Helper()
	terminal := st.HedgeWins + st.HedgeLosses + st.HedgeSheds + st.HedgeFails + st.HedgeErrors
	if st.Hedges != terminal {
		t.Errorf("hedge conservation violated: %d launched, %d terminal (stats %+v)", st.Hedges, terminal, st)
	}
}

// hedgeMerger builds a merger hedging between primary and replica with
// a cold-start Baseline threshold (no RTT samples needed to arm).
func hedgeMerger(t *testing.T, primary, replica string, mutate func(*MergerConfig)) *NetMerger {
	t.Helper()
	cfg := MergerConfig{
		Transport:    transport.NewTCP(),
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		FetchTimeout: 2 * time.Second,
		Replicas: func(FetchSpec) []string {
			return []string{primary, replica}
		},
		Hedge: &flow.HedgeConfig{
			Baseline:     15 * time.Millisecond,
			ScanInterval: time.Millisecond,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewNetMerger(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestHedgeWinsOnStalledPrimary is the controller's reason to exist: a
// primary that accepts the request and never responds is out-raced by a
// replica long before the deadline watchdog would have failed it over.
func TestHedgeWinsOnStalledPrimary(t *testing.T) {
	payload := bytes.Repeat([]byte("hedge-wins-segment-"), 64)
	primary := newHedgeTestSupplier(t, payload, false, 0)
	replica := newHedgeTestSupplier(t, payload, true, 0)
	m := hedgeMerger(t, primary.Addr(), replica.Addr(), nil)

	var got []byte
	start := time.Now()
	err := m.Fetch([]FetchSpec{{Addr: primary.Addr(), MapTask: "m-00000", Partition: 0}},
		func(_ FetchSpec, data []byte) error { got = data; return nil })
	if err != nil {
		t.Fatalf("hedged fetch failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want the %d-byte payload", len(got), len(payload))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fetch took %v: the hedge, not the watchdog, must have won", elapsed)
	}
	st := m.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("Hedges/HedgeWins = %d/%d, want 1/1 (stats %+v)", st.Hedges, st.HedgeWins, st)
	}
	if st.DeadlineTrips != 0 || st.Retries != 0 || st.Errors != 0 || st.Sheds != 0 {
		t.Fatalf("hedge win must not touch watchdog/retry/shed accounting: %+v", st)
	}
	checkHedgeConservation(t, st)
	if out := m.FlowState().HedgeOutstanding; out != 0 {
		t.Fatalf("HedgeOutstanding = %d after the race resolved, want 0", out)
	}
	// The stalled loser holds the request on the wire: it must have been
	// told to stop.
	waitFor(t, time.Second, "CANCEL at the losing primary", func() bool {
		return primary.cancels.Load() == 1
	})
}

// TestHedgeLoserLateDeliveryAccounting decides the race for the replica
// while the primary is merely slow: the primary's late delivery must
// land in the duplicate-byte ledger (not in the fetch), its tracking
// entry must retire on the terminal chunk, and the merger must remain
// fully serviceable afterwards.
func TestHedgeLoserLateDeliveryAccounting(t *testing.T) {
	payload := bytes.Repeat([]byte("late-loser-segment-"), 64)
	primary := newHedgeTestSupplier(t, payload, true, 80*time.Millisecond)
	replica := newHedgeTestSupplier(t, payload, true, 0)
	m := hedgeMerger(t, primary.Addr(), replica.Addr(), nil)

	var got []byte
	err := m.Fetch([]FetchSpec{{Addr: primary.Addr(), MapTask: "m-00000", Partition: 0}},
		func(_ FetchSpec, data []byte) error { got = data; return nil })
	if err != nil {
		t.Fatalf("hedged fetch failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want the %d-byte payload", len(got), len(payload))
	}
	st := m.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("Hedges/HedgeWins = %d/%d, want 1/1 (stats %+v)", st.Hedges, st.HedgeWins, st)
	}
	// The loser's delivery arrives ~80ms in; every payload byte of it is
	// hedging cost, booked against the duplicate ledger.
	waitFor(t, 2*time.Second, "loser's late bytes in the duplicate ledger", func() bool {
		return m.Stats().HedgeDupBytes >= int64(len(payload))
	})
	if st := m.Stats(); st.BytesFetched != int64(len(payload)) {
		t.Fatalf("BytesFetched = %d, want exactly one payload (%d); the loser's copy must not count", st.BytesFetched, len(payload))
	}
	// The terminal chunk retires the loser-tracking entry.
	waitFor(t, time.Second, "loser tracking entry retired", func() bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		return len(m.loserIDs) == 0
	})
	// Slot/ledger accounting intact: a follow-up fetch (no hedge pressure
	// on the now-sampled node) must run clean.
	err = m.Fetch([]FetchSpec{{Addr: replica.Addr(), MapTask: "m-00001", Partition: 0}},
		func(_ FetchSpec, data []byte) error { return nil })
	if err != nil {
		t.Fatalf("follow-up fetch failed (slot accounting corrupt?): %v", err)
	}
	checkHedgeConservation(t, m.Stats())
	if out := m.FlowState().HedgeOutstanding; out != 0 {
		t.Fatalf("HedgeOutstanding = %d at rest, want 0", out)
	}
}

// TestHedgeLosesWhenPrimaryDelivers runs the race the other way: the
// speculative attempt goes to a stalled replica and the original wins.
// The loser is a cancelled speculative attempt — a HedgeLoss — and the
// replica gets the CANCEL.
func TestHedgeLosesWhenPrimaryDelivers(t *testing.T) {
	payload := bytes.Repeat([]byte("primary-wins-segment-"), 64)
	primary := newHedgeTestSupplier(t, payload, true, 50*time.Millisecond)
	replica := newHedgeTestSupplier(t, payload, false, 0)
	m := hedgeMerger(t, primary.Addr(), replica.Addr(), nil)

	var got []byte
	err := m.Fetch([]FetchSpec{{Addr: primary.Addr(), MapTask: "m-00000", Partition: 0}},
		func(_ FetchSpec, data []byte) error { got = data; return nil })
	if err != nil {
		t.Fatalf("fetch failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want the %d-byte payload", len(got), len(payload))
	}
	st := m.Stats()
	if st.Hedges != 1 || st.HedgeLosses != 1 || st.HedgeWins != 0 {
		t.Fatalf("Hedges/HedgeLosses/HedgeWins = %d/%d/%d, want 1/1/0 (stats %+v)",
			st.Hedges, st.HedgeLosses, st.HedgeWins, st)
	}
	checkHedgeConservation(t, st)
	if out := m.FlowState().HedgeOutstanding; out != 0 {
		t.Fatalf("HedgeOutstanding = %d after the race resolved, want 0", out)
	}
	waitFor(t, time.Second, "CANCEL at the losing replica", func() bool {
		return replica.cancels.Load() == 1
	})
}

// TestHedgeBudgetExhaustionDenies pins the overload-degradation rule:
// with the duplicate budget exhausted, further threshold trips are
// denied (counted once per fetch) instead of amplifying load, and the
// denied fetches stay covered by the ordinary retry machinery.
func TestHedgeBudgetExhaustionDenies(t *testing.T) {
	payload := bytes.Repeat([]byte("budget-denied-segment-"), 64)
	primary := newHedgeTestSupplier(t, payload, false, 0)
	replica := newHedgeTestSupplier(t, payload, false, 0)
	m := hedgeMerger(t, primary.Addr(), replica.Addr(), func(cfg *MergerConfig) {
		cfg.Hedge.MaxOutstanding = 1
		cfg.MaxRetries = 0
	})

	specs := []FetchSpec{
		{Addr: primary.Addr(), MapTask: "m-00000", Partition: 0},
		{Addr: primary.Addr(), MapTask: "m-00001", Partition: 0},
		{Addr: primary.Addr(), MapTask: "m-00002", Partition: 0},
	}
	fetchErr := make(chan error, 1)
	go func() {
		fetchErr <- m.Fetch(specs, func(FetchSpec, []byte) error { return nil })
	}()
	// Every fetch stalls past its threshold; with one budget slot exactly
	// one hedge races (to the equally stalled replica, so the slot stays
	// held) and the others are denied — once each, not once per scan.
	waitFor(t, 2*time.Second, "one hedge and at least one denial", func() bool {
		st := m.Stats()
		return st.Hedges == 1 && st.HedgeDenials >= 1
	})
	time.Sleep(20 * time.Millisecond) // a dozen more scans must not re-count
	st := m.Stats()
	if st.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1 (budget cap breached)", st.Hedges)
	}
	if st.HedgeDenials > 2 {
		t.Fatalf("HedgeDenials = %d for 2 denied fetches: denial must count once per fetch, not per scan", st.HedgeDenials)
	}
	if out := m.FlowState().HedgeOutstanding; out != 1 {
		t.Fatalf("HedgeOutstanding = %d, want the single budgeted duplicate", out)
	}
	m.Close()
	if err := <-fetchErr; err == nil {
		t.Fatal("fetch of all-stalled suppliers succeeded after Close")
	}
	if out := m.FlowState().HedgeOutstanding; out != 0 {
		t.Fatalf("HedgeOutstanding = %d after Close, want 0 (budget leaked)", out)
	}
}

// TestWatchdogCoversUnhedgedFetch orders the two recovery mechanisms
// the other way: with the hedge threshold far beyond FetchTimeout the
// watchdog trips first, and the retry rotates to the replica —
// a stalled primary costs one attempt, not the whole budget.
func TestWatchdogCoversUnhedgedFetch(t *testing.T) {
	payload := bytes.Repeat([]byte("watchdog-first-segment-"), 64)
	primary := newHedgeTestSupplier(t, payload, false, 0)
	replica := newHedgeTestSupplier(t, payload, true, 0)
	m := hedgeMerger(t, primary.Addr(), replica.Addr(), func(cfg *MergerConfig) {
		cfg.FetchTimeout = 60 * time.Millisecond
		cfg.Hedge.Baseline = 10 * time.Second // never trips before the watchdog
	})

	var got []byte
	err := m.Fetch([]FetchSpec{{Addr: primary.Addr(), MapTask: "m-00000", Partition: 0}},
		func(_ FetchSpec, data []byte) error { got = data; return nil })
	if err != nil {
		t.Fatalf("fetch failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want the %d-byte payload", len(got), len(payload))
	}
	st := m.Stats()
	if st.Hedges != 0 {
		t.Fatalf("Hedges = %d, want 0 (threshold was beyond the watchdog)", st.Hedges)
	}
	if st.DeadlineTrips == 0 || st.Retries == 0 {
		t.Fatalf("watchdog/retry never fired: %+v", st)
	}
	if st.Rerouted == 0 {
		t.Fatalf("retry did not rotate to the replica: %+v", st)
	}
}

// TestHedgeShedGuards is the AIMD regression for hedged fetch ids: a
// shed naming one attempt of a racing pair must only ever shrink the
// shedding node's own window — never the twin's node, never after the
// race is decided — and must never enter the parked-shed conservation
// accounting (Sheds == ShedRetries) since a hedged-pair shed is
// cancelled, not parked.
func TestHedgeShedGuards(t *testing.T) {
	payload := bytes.Repeat([]byte("shed-guard-segment-"), 64)
	primary := newHedgeTestSupplier(t, payload, false, 0)
	replica := newHedgeTestSupplier(t, payload, false, 0)
	m := hedgeMerger(t, primary.Addr(), replica.Addr(), func(cfg *MergerConfig) {
		cfg.Flow = &flow.Config{} // AIMD windows on (start 4, min 1)
	})

	fetchErr := make(chan error, 1)
	go func() {
		fetchErr <- m.Fetch([]FetchSpec{{Addr: primary.Addr(), MapTask: "m-00000", Partition: 0}},
			func(FetchSpec, []byte) error { return nil })
	}()
	waitFor(t, 2*time.Second, "hedge launch", func() bool { return m.Stats().Hedges == 1 })

	var hedgeID uint64
	m.mu.Lock()
	for _, p := range m.pending {
		if p.isHedge {
			hedgeID = p.id
		}
	}
	m.mu.Unlock()
	if hedgeID == 0 {
		t.Fatal("no in-flight hedge attempt found")
	}
	windowOf := func(addr string) int {
		t.Helper()
		for _, w := range m.FlowState().Windows {
			if w.Node == addr {
				return w.Size
			}
		}
		t.Fatalf("no window for %s", addr)
		return 0
	}

	// A shed naming the hedge id from the WRONG node (the primary never
	// owned that attempt) must be dropped whole: no window moves, the
	// attempt keeps racing.
	if err := m.handleFlowFrame(primary.Addr(), appendShed(nil, hedgeID, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if got := windowOf(primary.Addr()); got != 4 {
		t.Fatalf("foreign shed shrank the primary window to %d, want untouched 4", got)
	}
	if st := m.Stats(); st.Sheds != 0 || st.HedgeSheds != 0 {
		t.Fatalf("foreign shed was counted: %+v", st)
	}

	// The replica shedding its own attempt shrinks only its own window;
	// the pair's shed is cancellation, not a park, so the Sheds ==
	// ShedRetries ledger stays untouched and the original races on.
	if err := m.handleFlowFrame(replica.Addr(), appendShed(nil, hedgeID, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if got := windowOf(replica.Addr()); got != 2 {
		t.Fatalf("replica window = %d after its own shed, want halved 2", got)
	}
	if got := windowOf(primary.Addr()); got != 4 {
		t.Fatalf("twin's shed shrank the primary window to %d, want untouched 4", got)
	}
	st := m.Stats()
	if st.Sheds != 0 || st.ShedRetries != 0 {
		t.Fatalf("hedged-pair shed entered the parked-shed ledger: %+v", st)
	}
	if st.HedgeSheds != 1 {
		t.Fatalf("HedgeSheds = %d, want 1", st.HedgeSheds)
	}
	checkHedgeConservation(t, st)
	m.mu.Lock()
	_, origPending := m.pending[hedgeID-1]
	_, hedgePending := m.pending[hedgeID]
	parked := len(m.parked)
	m.mu.Unlock()
	if hedgePending || parked != 0 {
		t.Fatalf("shed hedge attempt still pending=%v parked=%d, want cancelled outright", hedgePending, parked)
	}
	if !origPending {
		t.Fatal("original attempt vanished: the twin must race on after the hedge is shed")
	}

	// A late shed for an id whose race is fully decided (no pending
	// entry at all) is a no-op on every ledger and window.
	if err := m.handleFlowFrame(primary.Addr(), appendShed(nil, hedgeID, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if got := windowOf(primary.Addr()); got != 4 {
		t.Fatalf("late shed for a decided race shrank the primary window to %d", got)
	}
	m.Close()
	<-fetchErr
}
