package core

import (
	"fmt"

	"repro/internal/metrics"
)

// Core-layer metrics, aggregated across every supplier/merger instance in
// the process (an in-process cluster runs one per node). The per-instance
// views remain available through Stats()/CacheStats(); these registry
// handles are what /debug/jbs and the jbsbench per-phase breakdown read.
var (
	// DataCache: the staging memory between the disk prefetch server and
	// the transmit workers (Section III-B).
	dcHits = metrics.Default().Counter("jbs_datacache_hits_total", "lookups",
		"DataCache pins served from resident segments")
	dcMisses = metrics.Default().Counter("jbs_datacache_misses_total", "lookups",
		"DataCache pins that required a disk read")
	dcEvictions = metrics.Default().Counter("jbs_datacache_evictions_total", "segments",
		"segments evicted by LRU capacity pressure")
	dcResident = metrics.Default().Gauge("jbs_datacache_resident_bytes", "bytes",
		"segment bytes currently resident across all DataCaches")

	// MOFSupplier pipeline.
	supRequests = metrics.Default().Counter("jbs_supplier_requests_total", "reqs",
		"fetch requests decoded by suppliers")
	supBytes = metrics.Default().Counter("jbs_supplier_bytes_served_total", "bytes",
		"segment bytes transmitted to mergers")
	supErrors = metrics.Default().Counter("jbs_supplier_errors_total", "errors",
		"supplier-side failures (resolve, read, transmit)")
	supQueueDepth = metrics.Default().Gauge("jbs_supplier_queue_depth", "reqs",
		"resolved requests waiting for the disk prefetch server")
	supXmitDepth = metrics.Default().Gauge("jbs_supplier_xmit_depth", "reqs",
		"staged segments waiting for (or inside) a transmit worker — the prefetch pipeline's occupancy")
	supGroupTurns = metrics.Default().Counter("jbs_supplier_group_turns_total", "turns",
		"round-robin turns taken by the disk prefetch server")
	supCorruptFrames = metrics.Default().Counter("jbs_supplier_corrupt_frames_total", "frames",
		"fetch requests rejected by the CRC32C frame checksum")
	supCancels = metrics.Default().Counter("jbs_supplier_cancels_total", "reqs",
		"CANCEL frames received — a hedging merger withdrawing a fetch whose race is decided")

	// Graceful drain (operator-initiated supplier shutdown).
	supDrains = metrics.Default().Counter("jbs_supplier_drains_total", "drains",
		"graceful drains initiated on suppliers")
	supDrainState = metrics.Default().Gauge("jbs_supplier_drain_state", "suppliers",
		"suppliers currently draining (latched, pipeline not yet empty)")
	supDrainSheds = metrics.Default().Counter("jbs_supplier_drain_sheds_total", "reqs",
		"fetch requests shed because the supplier is draining")
	supDrainWait = metrics.Default().Histogram("jbs_supplier_drain_wait_ns", "ns",
		"time from drain initiation to the pipeline running empty")

	// NetMerger fetch engine.
	mrgFetches = metrics.Default().Counter("jbs_merger_fetches_total", "reqs",
		"segment fetches issued by mergers")
	mrgBytes = metrics.Default().Counter("jbs_merger_bytes_total", "bytes",
		"segment bytes fetched and reassembled")
	mrgErrors = metrics.Default().Counter("jbs_merger_errors_total", "errors",
		"fetches that surfaced an error to the reduce side")
	mrgRetries = metrics.Default().Counter("jbs_merger_retries_total", "reqs",
		"fetches re-sent on a freshly dialed connection")
	mrgRTT = metrics.Default().Histogram("jbs_merger_rtt_ns", "ns",
		"fetch round trip: request on the wire to last chunk reassembled")
	mrgSheds = metrics.Default().Counter("jbs_merger_sheds_total", "reqs",
		"shed responses received from overloaded suppliers")
	mrgShedRetries = metrics.Default().Counter("jbs_merger_shed_retries_total", "reqs",
		"parked fetches re-queued after their retry-after backoff")
	mrgCorruptFrames = metrics.Default().Counter("jbs_merger_corrupt_frames_total", "frames",
		"response frames rejected by the CRC32C checksum; the connection is torn down and the segments re-fetched")
	mrgDeadlineTrips = metrics.Default().Counter("jbs_merger_deadline_trips_total", "conns",
		"connections failed by the per-fetch deadline watchdog (stalled reads)")
	mrgRerouted = metrics.Default().Counter("jbs_merger_rerouted_total", "reqs",
		"parked fetches whose owner changed on re-resolution (drain/failover handoff)")

	// Hedging controller (speculative replica fetching).
	mrgHedges = metrics.Default().Counter("jbs_merger_hedges_total", "reqs",
		"speculative duplicate fetches launched against replica suppliers")
	mrgHedgeWins = metrics.Default().Counter("jbs_merger_hedge_wins_total", "reqs",
		"fetches whose speculative attempt delivered first")
	mrgHedgeLosses = metrics.Default().Counter("jbs_merger_hedge_losses_total", "reqs",
		"speculative attempts cancelled because the original delivered first")
	mrgHedgeSheds = metrics.Default().Counter("jbs_merger_hedge_sheds_total", "reqs",
		"hedged-pair attempts shed by their supplier and cancelled (never parked: the twin carries on)")
	mrgHedgeFails = metrics.Default().Counter("jbs_merger_hedge_fails_total", "reqs",
		"speculative attempts cancelled on a connection failure while the original still raced")
	mrgHedgeErrors = metrics.Default().Counter("jbs_merger_hedge_errors_total", "reqs",
		"speculative attempts that surfaced the fetch's error after adopting it (original already gone)")
	mrgHedgeAdoptions = metrics.Default().Counter("jbs_merger_hedge_adoptions_total", "reqs",
		"speculative attempts promoted to sole carrier after the original failed or was shed")
	mrgHedgeDenials = metrics.Default().Counter("jbs_merger_hedge_budget_denied_total", "reqs",
		"fetches past their hedge threshold left unhedged because the duplicate budget was exhausted")
	mrgHedgeNoReplica = metrics.Default().Counter("jbs_merger_hedge_no_replica_total", "reqs",
		"fetches past their hedge threshold with no distinct replica to race")
	mrgHedgeDupBytes = metrics.Default().Counter("jbs_merger_hedge_duplicate_bytes_total", "bytes",
		"payload bytes received for attempts that had already lost their race — the cost of hedging")
	mrgHedgeOutstanding = metrics.Default().Gauge("jbs_merger_hedges_outstanding", "reqs",
		"speculative duplicates currently racing (bounded by the hedge budget)")
)

// inflightGauge returns the per-remote-node in-flight gauge, registered
// on a node group's first fetch (registration is the slow path; the
// returned handle is cached on the group and updated with plain atomic
// adds).
func inflightGauge(addr string) *metrics.Gauge {
	return metrics.Default().Gauge(fmt.Sprintf("jbs_merger_inflight{node=%q}", addr), "reqs",
		"fetch requests on the wire to one remote node")
}

// tracer is the shared per-segment fetch tracer; disabled it costs one
// atomic load per mark (see metrics.Tracer).
var tracer = metrics.DefaultTracer()
