package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// MergerConfig configures a NetMerger.
type MergerConfig struct {
	// Transport is the network backend (TCP or RDMA).
	Transport transport.Transport
	// MaxConnections caps the connection cache (512 in the paper).
	MaxConnections int
	// WindowPerNode bounds in-flight requests per remote node; across
	// nodes the injector is round-robin, so no node monopolizes the wire.
	// With Flow set it is only the AIMD starting point (flow.Config
	// WindowStart defaults to it); the live limit adapts per node.
	WindowPerNode int
	// MaxRetries is how many times a fetch is re-sent (on a freshly dialed
	// connection) after a transport failure before the error surfaces.
	MaxRetries int
	// FetchTimeout bounds how long a sent fetch may sit without a response
	// before its connection is declared stalled and failed over: a peer
	// that accepts the request and then never writes would otherwise hang
	// the fetch forever, since a healthy-looking TCP connection surfaces
	// no error. Zero means the 30s default.
	FetchTimeout time.Duration
	// RetryBackoff is the base delay before a failed fetch is re-sent; it
	// doubles per attempt (capped, jittered). Without it a refused or
	// flapping node burns the whole MaxRetries budget in microseconds.
	// Zero means the 2ms default.
	RetryBackoff time.Duration
	// Flow enables credit-based flow control: per-node AIMD windows
	// replacing the fixed WindowPerNode, plus shed handling with
	// jittered retry-after backoff. Nil keeps the paper's fixed window.
	Flow *flow.Config
	// Resolver maps a fetch spec to the supplier address that currently
	// owns its MOF shard. A spec with an empty Addr is resolved once at
	// Fetch, and every parked fetch (shed or failure backoff) is
	// re-resolved on unpark — so when a registry hands a draining or
	// crashed supplier's shards to a peer, in-flight retries follow the
	// ownership move instead of hammering the dead address. Nil keeps
	// static addressing: empty-Addr specs fail, and retries stay on
	// their original node.
	Resolver func(spec FetchSpec) (string, error)
	// Replicas maps a fetch spec to the full replica set of supplier
	// addresses holding its MOF, primary first. The hedging controller
	// races duplicates against the first distinct replica, and the
	// failure-retry path rotates through the set so a dead primary does
	// not eat the whole retry budget. The callback may block on
	// registry I/O; it is only invoked off the merger lock, on cold
	// paths (hedge launch, retry unpark). Nil disables both behaviors.
	Replicas func(spec FetchSpec) []string
	// Hedge enables speculative fetching: a fetch outliving its node's
	// quantile-derived latency threshold is raced against a replica,
	// the first CRC-clean response wins, and the loser is cancelled.
	// Requires Replicas. Nil disables hedging.
	Hedge *flow.HedgeConfig
}

func (c *MergerConfig) applyDefaults() error {
	if c.Transport == nil {
		return errors.New("core: merger needs a transport")
	}
	// Every numeric knob follows one rule: zero means default, negative is
	// rejected by name.
	if c.MaxConnections < 0 {
		return fmt.Errorf("core: merger MaxConnections %d must not be negative", c.MaxConnections)
	}
	if c.WindowPerNode < 0 {
		return fmt.Errorf("core: merger WindowPerNode %d must not be negative", c.WindowPerNode)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("core: merger MaxRetries %d must not be negative", c.MaxRetries)
	}
	if c.FetchTimeout < 0 {
		return fmt.Errorf("core: merger FetchTimeout %v must not be negative", c.FetchTimeout)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("core: merger RetryBackoff %v must not be negative", c.RetryBackoff)
	}
	if c.FetchTimeout == 0 {
		c.FetchTimeout = 30 * time.Second
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.MaxConnections == 0 {
		c.MaxConnections = transport.DefaultMaxConnections
	}
	if c.WindowPerNode == 0 {
		c.WindowPerNode = 4
	}
	// Post-default guards: a non-positive effective value would wedge the
	// injector (no window slot, no connection, ever), so reject by name
	// rather than spin silently — even if a future default regresses.
	if c.MaxConnections <= 0 {
		return fmt.Errorf("core: merger MaxConnections %d must be positive", c.MaxConnections)
	}
	if c.WindowPerNode <= 0 {
		return fmt.Errorf("core: merger WindowPerNode %d must be positive", c.WindowPerNode)
	}
	if c.Flow != nil {
		// Copy before defaulting so a shared Config literal isn't mutated.
		fc := *c.Flow
		if fc.WindowStart == 0 {
			fc.WindowStart = c.WindowPerNode
		}
		if err := fc.ApplyDefaults(); err != nil {
			return err
		}
		c.Flow = &fc
	}
	if c.Hedge != nil {
		if c.Replicas == nil {
			return errors.New("core: merger Hedge requires Replicas (a hedge needs somewhere to race)")
		}
		hc := *c.Hedge
		if err := hc.ApplyDefaults(); err != nil {
			return err
		}
		c.Hedge = &hc
	}
	return nil
}

// MergerStats counts a NetMerger's work.
type MergerStats struct {
	Requests      int64
	BytesFetched  int64
	Errors        int64
	Retries       int64
	ConnectionsHi int64 // peak distinct remote nodes connected
	Sheds         int64 // shed responses received from suppliers
	ShedRetries   int64 // parked fetches re-queued after their backoff
	CorruptFrames int64 // frames rejected by the CRC32C checksum
	DeadlineTrips int64 // connections failed by the fetch deadline watchdog
	Rerouted      int64 // parked fetches whose owner changed on re-resolution

	// Hedging controller counters. Every speculative attempt launched
	// terminates as exactly one of wins, losses, sheds, fails, or
	// errors, so Hedges == HedgeWins + HedgeLosses + HedgeSheds +
	// HedgeFails + HedgeErrors once all fetches have resolved — the
	// conservation law the chaos harness asserts.
	Hedges         int64 // speculative duplicate fetches launched
	HedgeWins      int64 // fetches whose speculative attempt delivered first
	HedgeLosses    int64 // speculative attempts cancelled: the original won
	HedgeSheds     int64 // speculative attempts shed by the replica while the original raced
	HedgeFails     int64 // speculative attempts lost to a connection failure while the original raced
	HedgeErrors    int64 // speculative attempts that surfaced the fetch error after adoption
	HedgeAdoptions int64 // speculative attempts promoted to sole carrier (original failed or was shed)
	HedgeDenials   int64 // fetches past threshold left unhedged: duplicate budget exhausted
	HedgeDupBytes  int64 // payload bytes received for attempts that had already lost
}

// fetchResult is one completed fetch.
type fetchResult struct {
	spec FetchSpec
	data []byte
	err  error
}

// pendingFetch is one request in flight through the NetMerger.
type pendingFetch struct {
	id       uint64
	spec     FetchSpec
	buf      []byte
	attempts int
	result   chan<- fetchResult
	// sentAt anchors the fetch RTT histogram; it is written under m.mu
	// just before injection (so the read side, also under m.mu, races with
	// nothing) and overwritten on each retry.
	sentAt time.Time
	// backoff is the pending retry timer while the fetch is parked (after
	// a shed response or between retry attempts); Close stops it. Guarded
	// by m.mu.
	backoff *time.Timer
	// shedPark distinguishes a shed park (counted as a shed retry on
	// unpark) from a failure-backoff park (already counted as a retry
	// when parked). Guarded by m.mu.
	shedPark bool

	// Hedging state, all guarded by m.mu. twin links the two attempts
	// of a hedged pair symmetrically; nil means this attempt races
	// alone (either it was never hedged, or its twin already resolved).
	// Exactly one attempt of a pair ever sends on result: the first
	// clean finisher cancels the other under the lock, and an attempt
	// that dies while its twin lives is cancelled quietly instead of
	// retrying or surfacing an error.
	twin *pendingFetch
	// isHedge marks the speculative (duplicate) attempt of a pair.
	isHedge bool
	// hedged marks a fetch the controller already acted on (launched a
	// hedge, or found no replica), so the scanner considers each fetch
	// at most once.
	hedged bool
	// hedgeDenied dedupes the budget-denial counter per fetch.
	hedgeDenied bool
	// budgetHeld marks a speculative attempt currently charged against
	// the hedge budget; cleared exactly once via the budget helpers.
	budgetHeld bool
}

// nodeGroup holds the per-remote-node request queue, ordered by arrival
// (Section III-C), plus its in-flight window accounting.
type nodeGroup struct {
	addr      string
	queue     []*pendingFetch
	inflight  int
	inflightG *metrics.Gauge // registry mirror of inflight, labeled by node
	// win is the node pair's AIMD congestion window; nil when flow
	// control is disabled (fixed WindowPerNode). Guarded by m.mu.
	win *flow.Window
	// epoch counts connection generations for this node: it increments
	// each time the node's connection is declared dead, and every failure
	// report carries the epoch it observed. A report whose epoch no
	// longer matches is stale — a concurrent observer (read loop, send
	// path, deadline watchdog) already recycled that connection — and is
	// dropped, so one dead connection can never release in-flight slots
	// twice or tear down its freshly dialed replacement. Guarded by m.mu.
	epoch uint64
	// rtt is the node's rolling RTT window feeding the hedge threshold;
	// nil when hedging is disabled. Guarded by m.mu.
	rtt *flow.RTTRing
}

// acquire charges one request to the group's in-flight window. Together
// with release it is the only place inflight and its gauge move, so the
// two can never drift (the audit point jbsvet's gaugepair check pins).
func (g *nodeGroup) acquire() {
	g.inflight++
	g.inflightG.Add(1)
}

// release returns n in-flight slots to the group's window.
func (g *nodeGroup) release(n int) {
	g.inflight -= n
	g.inflightG.Add(int64(-n))
}

// limit returns the group's current in-flight limit: the AIMD window
// when flow control is on, the fixed configured window otherwise.
func (g *nodeGroup) limit(fixed int) int {
	if g.win != nil {
		return g.win.Limit()
	}
	return fixed
}

// NetMerger is JBS's client component (Section III-C): one per node,
// consolidating the fetch requests of every local ReduceTask. Requests are
// grouped per remote node — one connection per node pair instead of one
// per MOFCopier — ordered by arrival within a group, and injected
// round-robin across groups to balance load and absorb bursts from
// aggressive ReduceTasks.
type NetMerger struct {
	cfg   MergerConfig
	cache *transport.ConnCache

	mu      sync.Mutex
	cond    *sync.Cond
	groups  map[string]*nodeGroup
	ring    []string
	next    int
	pending map[uint64]*pendingFetch
	// parked holds fetches shed by a supplier, waiting out their
	// retry-after backoff before re-queueing. Guarded by m.mu.
	parked map[uint64]*pendingFetch
	nextID uint64
	closed bool

	readers map[string]bool // addr -> reader goroutine running

	wg        sync.WaitGroup
	watchStop chan struct{} // closed by Close; stops the deadline watchdog

	unregister func() // flow registry removal; nil when flow is off

	requests      int64
	bytes         int64
	errCount      int64
	retries       int64
	connsHigh     int64
	sheds         int64
	shedRetries   int64
	corruptFrames int64
	deadlineTrips int64
	rerouted      int64

	// Hedging controller state, guarded by m.mu. hedgeOutstanding and
	// its gauge only move inside the budget helpers, so the pair can
	// never drift. loserIDs remembers cancelled in-flight attempts
	// (id → node address) so their late chunks are counted as duplicate
	// bytes instead of vanishing from the accounting; entries die on
	// the supplier's terminal chunk or the connection's failure.
	hedgeOutstanding int
	loserIDs         map[uint64]string
	hedges           int64
	hedgeWins        int64
	hedgeLosses      int64
	hedgeSheds       int64
	hedgeFails       int64
	hedgeErrors      int64
	hedgeAdoptions   int64
	hedgeDenials     int64
	hedgeDupBytes    int64
}

// NewNetMerger creates the node's consolidated fetch engine.
func NewNetMerger(cfg MergerConfig) (*NetMerger, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	m := &NetMerger{
		cfg:       cfg,
		cache:     transport.NewConnCache(cfg.Transport, cfg.MaxConnections),
		groups:    make(map[string]*nodeGroup),
		pending:   make(map[uint64]*pendingFetch),
		parked:    make(map[uint64]*pendingFetch),
		readers:   make(map[string]bool),
		watchStop: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.Flow != nil {
		m.unregister = flow.Register(m)
	}
	if cfg.Hedge != nil {
		m.loserIDs = make(map[uint64]string)
		m.wg.Add(1)
		go m.hedgeLoop()
	}
	m.wg.Add(1)
	go m.injectLoop()
	m.wg.Add(1)
	go m.watchdog()
	return m, nil
}

// FlowState snapshots the merger's control-plane state (per-node AIMD
// windows and shed counters) for the /debug/jbs/flow endpoint.
func (m *NetMerger) FlowState() flow.State {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := flow.State{
		Name: "merger", Sheds: m.sheds, ShedRetries: m.shedRetries,
		Hedges: m.hedges, HedgeWins: m.hedgeWins,
		HedgeDupBytes: m.hedgeDupBytes, HedgeOutstanding: m.hedgeOutstanding,
	}
	for _, addr := range m.ring {
		if g := m.groups[addr]; g.win != nil {
			ws := g.win.State()
			ws.Node = addr
			st.Windows = append(st.Windows, ws)
		}
	}
	return st
}

// Stats snapshots the merger's counters.
func (m *NetMerger) Stats() MergerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MergerStats{
		Requests:      m.requests,
		BytesFetched:  m.bytes,
		Errors:        m.errCount,
		Retries:       m.retries,
		ConnectionsHi: m.connsHigh,
		Sheds:         m.sheds,
		ShedRetries:   m.shedRetries,
		CorruptFrames: m.corruptFrames,
		DeadlineTrips: m.deadlineTrips,
		Rerouted:      m.rerouted,

		Hedges:         m.hedges,
		HedgeWins:      m.hedgeWins,
		HedgeLosses:    m.hedgeLosses,
		HedgeSheds:     m.hedgeSheds,
		HedgeFails:     m.hedgeFails,
		HedgeErrors:    m.hedgeErrors,
		HedgeAdoptions: m.hedgeAdoptions,
		HedgeDenials:   m.hedgeDenials,
		HedgeDupBytes:  m.hedgeDupBytes,
	}
}

// Close shuts the merger down; outstanding fetches fail.
func (m *NetMerger) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	// A hedged pair holds two attempts for one logical fetch and one
	// buffered result slot; collect with twin dedup so exactly one
	// terminal result is sent per fetch.
	seen := make(map[*pendingFetch]bool)
	var outstanding []*pendingFetch
	collect := func(p *pendingFetch) {
		if seen[p] {
			return
		}
		seen[p] = true
		if p.twin != nil {
			seen[p.twin] = true
		}
		outstanding = append(outstanding, p)
	}
	for id, p := range m.pending {
		delete(m.pending, id)
		collect(p)
	}
	for _, g := range m.groups {
		for _, p := range g.queue {
			collect(p)
		}
		g.queue = nil
	}
	for id, p := range m.parked {
		delete(m.parked, id)
		if p.backoff != nil {
			p.backoff.Stop()
		}
		collect(p)
	}
	// Racing duplicates die with the merger; return their budget slots so
	// the process-wide outstanding gauge reads zero after shutdown.
	for p := range seen {
		m.releaseHedgeBudgetLocked(p)
	}
	for _, p := range outstanding {
		//jbsvet:ignore lockhygiene result channels are buffered for every outstanding fetch; this send cannot block
		p.result <- fetchResult{spec: p.spec, err: transport.ErrConnClosed}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	close(m.watchStop)
	if m.unregister != nil {
		m.unregister()
	}
	err := m.cache.Close()
	m.wg.Wait()
	return err
}

// groupForLocked returns (creating if needed) the node group for addr.
// Must be called with m.mu held.
func (m *NetMerger) groupForLocked(addr string) *nodeGroup {
	g, ok := m.groups[addr]
	if !ok {
		g = &nodeGroup{addr: addr, inflightG: inflightGauge(addr)}
		if m.cfg.Flow != nil {
			g.win = flow.NewWindow(*m.cfg.Flow, flow.WindowGauge(addr))
		}
		if m.cfg.Hedge != nil {
			g.rtt = new(flow.RTTRing)
		}
		m.groups[addr] = g
		m.ring = append(m.ring, addr)
		if n := int64(len(m.ring)); n > m.connsHigh {
			m.connsHigh = n
		}
	}
	return g
}

// errNoResolver reports an empty-Addr spec fetched without a Resolver.
var errNoResolver = errors.New("core: fetch spec has no address and the merger has no resolver")

// Fetch retrieves every segment in specs, invoking deliver once per
// segment in completion order. A spec with an empty Addr is resolved
// through cfg.Resolver to the supplier currently owning its shard.
// It is safe for concurrent calls from multiple ReduceTasks; all their
// requests share the consolidated connections and the round-robin
// injector.
func (m *NetMerger) Fetch(specs []FetchSpec, deliver func(FetchSpec, []byte) error) error {
	if len(specs) == 0 {
		return nil
	}
	results := make(chan fetchResult, len(specs))
	// Resolve empty addresses before taking the lock: the resolver may
	// block on registry I/O. Failures complete immediately as error
	// results (the buffered channel cannot block) so the collection loop
	// below still sees len(specs) of them.
	resolved := specs
	failed := 0
	needResolve := false
	for _, spec := range specs {
		if spec.Addr == "" {
			needResolve = true
			break
		}
	}
	if needResolve {
		// Copy-on-resolve keeps the common static-address path free of
		// the extra slice allocation (the hot-path alloc budget is exact).
		resolved = make([]FetchSpec, 0, len(specs))
		for _, spec := range specs {
			if spec.Addr == "" {
				err := errNoResolver
				if m.cfg.Resolver != nil {
					spec.Addr, err = m.cfg.Resolver(spec)
					if err != nil {
						err = fmt.Errorf("resolve: %w", err)
					} else if spec.Addr == "" {
						err = errors.New("core: resolver returned an empty address")
					}
				}
				if spec.Addr == "" {
					failed++
					mrgFetches.Inc()
					mrgErrors.Inc()
					results <- fetchResult{spec: spec, err: err}
					continue
				}
			}
			resolved = append(resolved, spec)
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return transport.ErrConnClosed
	}
	m.requests += int64(failed)
	m.errCount += int64(failed)
	for _, spec := range resolved {
		m.nextID++
		p := &pendingFetch{id: m.nextID, spec: spec, result: results}
		g := m.groupForLocked(spec.Addr)
		g.queue = append(g.queue, p) // arrival order within the group
		m.requests++
		mrgFetches.Inc()
		tracer.Mark(spec.MapTask, spec.Partition, metrics.StageEnqueued)
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	var firstErr error
	for i := 0; i < len(specs); i++ {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: fetch %s/%d from %s: %w",
					res.spec.MapTask, res.spec.Partition, res.spec.Addr, res.err)
			}
			continue
		}
		if firstErr == nil {
			if err := deliver(res.spec, res.data); err != nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// injectLoop is the request injector: it walks the node groups round-robin
// and sends the head request of any group with window room.
func (m *NetMerger) injectLoop() {
	defer m.wg.Done()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return
		}
		sent := false
		for scanned := 0; scanned < len(m.ring); scanned++ {
			if m.next >= len(m.ring) {
				m.next = 0
			}
			addr := m.ring[m.next]
			m.next++
			g := m.groups[addr]
			if len(g.queue) == 0 || g.inflight >= g.limit(m.cfg.WindowPerNode) {
				continue
			}
			p := g.queue[0]
			g.queue = g.queue[1:]
			g.acquire()
			m.pending[p.id] = p
			m.ensureReader(g)
			// Stamp before the lock drops: once pending holds p, the read
			// loop may touch it, so the stamp must happen-before that.
			p.sentAt = time.Now()
			tracer.Mark(p.spec.MapTask, p.spec.Partition, metrics.StageSent)
			// Send outside the lock: the connection may block.
			m.mu.Unlock()
			err := m.send(addr, p)
			m.mu.Lock()
			if err != nil {
				// Only unwind if p is still ours: a concurrent failConn
				// (read-loop error, deadline trip) may have already removed
				// p from pending, released its slot, and re-queued it —
				// unwinding again would release the slot twice and schedule
				// the fetch twice.
				if _, still := m.pending[p.id]; still {
					delete(m.pending, p.id)
					g.release(1)
					if m.closed {
						return
					}
					m.failOrRetryLocked(g, p, err)
				}
			}
			sent = true
			break // restart the scan after releasing the lock
		}
		if !sent {
			if m.closed {
				return
			}
			m.cond.Wait()
		}
	}
}

// send transmits one fetch request on the (cached) connection to addr. The
// request is encoded into a pooled buffer: both backends finish with the
// bytes before Send returns, so the lease is released immediately.
func (m *NetMerger) send(addr string, p *pendingFetch) error {
	conn, err := m.cache.Get(addr)
	if err != nil {
		return err
	}
	req := fetchRequest{
		ID:        p.id,
		Partition: uint32(p.spec.Partition),
		MapTask:   p.spec.MapTask,
	}
	l := bufpool.Default().Get(fetchRequestLen(req))
	err = conn.Send(appendFetchRequest(l.Bytes()[:0], req))
	l.Release()
	if err != nil {
		// Conn-identity invalidation: if a reader already failed this
		// connection and a fresh one was dialed, don't tear the fresh
		// one down for the old one's error.
		m.cache.InvalidateConn(addr, conn, err)
		return err
	}
	return nil
}

// ensureReader starts the response reader for the group's node once,
// bound to the group's current connection epoch. Must be called with
// m.mu held.
func (m *NetMerger) ensureReader(g *nodeGroup) {
	if m.readers[g.addr] {
		return
	}
	m.readers[g.addr] = true
	m.wg.Add(1)
	go m.readLoop(g.addr, g.epoch)
}

// noteCorrupt counts a frame rejected by the CRC32C checksum. Corruption
// is counted at the point of detection, before the recovery race is
// resolved: the damaged frame is a fact regardless of which observer wins
// the failover.
func (m *NetMerger) noteCorrupt(err error) {
	if !errors.Is(err, ErrCorruptFrame) {
		return
	}
	mrgCorruptFrames.Inc()
	m.mu.Lock()
	m.corruptFrames++
	m.mu.Unlock()
}

// readLoop drains response chunks from one node's connection and completes
// pending fetches. It reads the connection belonging to the given group
// epoch; any failure it reports is dropped as stale once that epoch has
// passed.
func (m *NetMerger) readLoop(addr string, epoch uint64) {
	defer m.wg.Done()
	conn, err := m.cache.Get(addr)
	if err != nil {
		// Dial failure: nothing was cached, so there is no connection to
		// invalidate — only slots to unwind and fetches to retry.
		m.failConn(addr, epoch, nil, err)
		return
	}
	for {
		l, err := transport.RecvBuf(conn)
		if err != nil {
			m.failConn(addr, epoch, conn, err)
			return
		}
		if b := l.Bytes(); len(b) > 0 && (b[0] == msgShed || b[0] == msgCredit) {
			err = m.handleFlowFrame(addr, b)
			l.Release()
			if err != nil {
				m.noteCorrupt(err)
				m.failConn(addr, epoch, conn, err)
				return
			}
			continue
		}
		chunk, err := decodeDataChunk(l.Bytes())
		if err != nil {
			l.Release()
			// A corrupt or malformed frame poisons the stream — framing
			// after it cannot be trusted — so the connection is torn down
			// and every in-flight fetch to this node re-sent on a fresh
			// one: detection at the merger, transparent re-fetch.
			m.noteCorrupt(err)
			m.failConn(addr, epoch, conn, err)
			return
		}
		m.mu.Lock()
		p, ok := m.pending[chunk.ID]
		if !ok {
			// Response for a request that already failed — or for a
			// cancelled hedge loser, whose late chunks are the price of
			// the race and land in the duplicate-byte ledger.
			if a, lost := m.loserIDs[chunk.ID]; lost && a == addr {
				m.noteDupBytesLocked(int64(len(chunk.Payload)))
				if chunk.Last || chunk.Failed {
					delete(m.loserIDs, chunk.ID)
				}
			}
			m.mu.Unlock()
			l.Release()
			continue
		}
		if chunk.Failed {
			delete(m.pending, chunk.ID)
			g := m.groups[addr]
			g.release(1)
			if p.twin != nil {
				// One attempt of a live hedged pair hit a remote error;
				// the twin still races, so the fetch neither fails nor
				// retries here.
				m.noteHedgeAttemptFailureLocked(p)
				m.cond.Broadcast()
				m.mu.Unlock()
				l.Release()
				continue
			}
			m.errCount++
			mrgErrors.Inc()
			if p.isHedge {
				m.hedgeErrors++
				mrgHedgeErrors.Inc()
			}
			m.cond.Broadcast()
			m.mu.Unlock()
			p.result <- fetchResult{spec: p.spec, err: fmt.Errorf("%w: %s", ErrRemote, chunk.Payload)}
			l.Release()
			continue
		}
		if chunk.Sized {
			tracer.Mark(p.spec.MapTask, p.spec.Partition, metrics.StageFirstChunk)
			if p.buf == nil && chunk.Total > 0 {
				// The first chunk announces the segment's size: reassemble in
				// one exact allocation instead of growing append-by-append.
				p.buf = make([]byte, 0, chunk.Total)
			}
		}
		p.buf = append(p.buf, chunk.Payload...)
		if !chunk.Last {
			m.mu.Unlock()
			l.Release()
			continue
		}
		delete(m.pending, chunk.ID)
		g := m.groups[addr]
		g.release(1)
		if g.win != nil {
			g.win.OnClean()
		}
		m.bytes += int64(len(p.buf))
		mrgBytes.Add(int64(len(p.buf)))
		rtt := time.Since(p.sentAt).Nanoseconds()
		mrgRTT.Observe(rtt)
		if g.rtt != nil {
			g.rtt.Add(rtt)
		}
		if p.isHedge {
			// The speculative attempt delivered — whether it out-raced a
			// live twin or carried the fetch alone after adoption.
			m.hedgeWins++
			mrgHedgeWins.Inc()
			m.releaseHedgeBudgetLocked(p)
		}
		var cancelAddr string
		var cancelID uint64
		if p.twin != nil {
			cancelAddr, cancelID = m.cancelLoserLocked(p.twin)
		}
		tracer.Mark(p.spec.MapTask, p.spec.Partition, metrics.StageDelivered)
		m.cond.Broadcast()
		m.mu.Unlock()
		if cancelAddr != "" {
			m.sendCancel(cancelAddr, cancelID)
		}
		p.result <- fetchResult{spec: p.spec, data: p.buf}
		l.Release()
	}
}

// handleFlowFrame processes a SHED or CREDIT control frame from addr.
// A shed parks the named fetch for its jittered retry-after backoff and
// collapses the node's AIMD window; a credit widens it. A malformed
// frame is returned as an error (the caller tears the connection down
// like any other protocol violation).
func (m *NetMerger) handleFlowFrame(addr string, b []byte) error {
	if b[0] == msgCredit {
		n, err := decodeCredit(b)
		if err != nil {
			return err
		}
		m.mu.Lock()
		if g := m.groups[addr]; g != nil && g.win != nil {
			for i := uint32(0); i < n; i++ {
				g.win.OnCredit()
			}
			m.cond.Broadcast() // the wider window may admit queued fetches
		}
		m.mu.Unlock()
		return nil
	}
	id, retryAfter, err := decodeShed(b)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pending[id]
	if !ok {
		// The fetch already failed over to another attempt — or it is a
		// cancelled hedge loser (tracked in loserIDs until its terminal
		// frame). Either way the frame must not touch any window: the
		// loser's slot was already released, and shrinking the winner
		// node's AIMD window for a race it won would be exactly the
		// foreign-shed drift the owner guard below exists to stop.
		return nil
	}
	if p.spec.Addr != addr {
		// A supplier may only shed fetches it owns. Honoring a
		// cross-node shed would decrement this node's inflight for a
		// slot it never held (permanent window drift) while leaking the
		// real owner's slot. Drop the frame; the owner's fetch runs its
		// course. Hedge attempts carry their own distinct ids with the
		// replica's address in spec.Addr, so the guard holds per
		// attempt: a replica can only shed the attempt it serves, never
		// its twin on the primary.
		return nil
	}
	delete(m.pending, id)
	g := m.groups[addr]
	g.release(1)
	if g.win != nil {
		// The shedding node is genuinely overloaded; its own window
		// collapses. The twin's node (if any) is untouched — the frame
		// says nothing about that node's health.
		g.win.OnShed()
	}
	if p.twin != nil {
		// An attempt of a live hedged pair never parks on a shed: the
		// twin already races the same bytes, so re-sending this attempt
		// later would only add load to an overloaded node. Cancel it;
		// the twin carries the fetch alone. Not counted in Sheds — the
		// shed/retry conservation law (Sheds == ShedRetries at drain)
		// only covers parked-and-retried sheds.
		if p.isHedge {
			m.hedgeSheds++
			mrgHedgeSheds.Inc()
			m.releaseHedgeBudgetLocked(p)
			m.unlinkTwinLocked(p)
		} else {
			m.hedgeAdoptions++
			mrgHedgeAdoptions.Inc()
			m.releaseHedgeBudgetLocked(p.twin)
			m.unlinkTwinLocked(p)
		}
		m.cond.Broadcast()
		return nil
	}
	m.sheds++
	mrgSheds.Inc()
	m.cond.Broadcast() // the freed slot may admit a queued fetch now
	// Park the fetch for the supplier's hint plus up to 50% jitter, so a
	// burst of sheds does not re-converge into a synchronized retry storm.
	// A shed consumes no retry budget: the request was never serviced,
	// and the AIMD collapse plus backoff bounds the re-send rate.
	m.parkLocked(p, retryAfter+rand.N(retryAfter/2+1), true)
	return nil
}

// parkLocked holds a fetch out of its queue for delay before re-queueing
// it. shed marks a supplier-shed park (counted as a shed retry on unpark)
// versus a failure-backoff park. Must be called with m.mu held.
func (m *NetMerger) parkLocked(p *pendingFetch, delay time.Duration, shed bool) {
	p.shedPark = shed
	m.parked[p.id] = p
	id := p.id
	p.backoff = time.AfterFunc(delay, func() { m.unpark(id) })
}

// unpark re-queues a parked fetch at the head of its node group after its
// backoff elapses. With a Resolver configured the fetch's owner is
// re-resolved first — a shed from a draining supplier or a failure
// backoff from a dead one lands here, and by now the registry may have
// handed the shard to a peer; following the move is what makes drain
// lossless. Runs on the backoff timer's goroutine.
func (m *NetMerger) unpark(id uint64) {
	m.mu.Lock()
	p, ok := m.parked[id]
	if !ok || m.closed {
		m.mu.Unlock()
		return // Close already failed it
	}
	addr := p.spec.Addr
	if !p.shedPark && m.cfg.Replicas != nil {
		// Failure-backoff park with a replica set available: rotate to
		// the next replica instead of re-probing the address that just
		// failed, so a dead or blacked-out primary costs one attempt,
		// not the whole retry budget. Shed parks stay put — a shed is
		// load, not death, and the retry-after hint belongs to the node
		// that issued it. Resolve outside the lock (registry I/O may
		// block); p stays in parked meanwhile — recheck below.
		spec := p.spec
		m.mu.Unlock()
		addr = nextReplica(m.cfg.Replicas(spec), spec.Addr)
		m.mu.Lock()
		p, ok = m.parked[id]
		if !ok || m.closed {
			m.mu.Unlock()
			return
		}
	} else if m.cfg.Resolver != nil {
		// Resolve outside the lock (registry I/O may block); p stays in
		// parked meanwhile, so only Close can touch it — recheck below.
		spec := p.spec
		m.mu.Unlock()
		if a, err := m.cfg.Resolver(spec); err == nil && a != "" {
			addr = a
		}
		m.mu.Lock()
		p, ok = m.parked[id]
		if !ok || m.closed {
			m.mu.Unlock()
			return
		}
	}
	delete(m.parked, id)
	p.backoff = nil
	if addr != p.spec.Addr {
		p.spec.Addr = addr
		m.rerouted++
		mrgRerouted.Inc()
	}
	g := m.groupForLocked(addr)
	g.queue = append([]*pendingFetch{p}, g.queue...)
	if p.shedPark {
		m.shedRetries++
		mrgShedRetries.Inc()
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// maxRetryBackoff caps the exponential retry delay.
const maxRetryBackoff = 500 * time.Millisecond

// failOrRetryLocked either parks a failed request for a jittered
// exponential backoff — after which it re-queues at the head of its node
// group and is re-sent on a freshly dialed connection — or, once its
// retry budget is spent, surfaces the error. Must be called with m.mu
// held.
func (m *NetMerger) failOrRetryLocked(g *nodeGroup, p *pendingFetch, err error) {
	if p.twin != nil {
		// One attempt of a live hedged pair died (connection failure,
		// deadline trip, failed send). The twin still races the same
		// bytes, so this attempt is cancelled quietly: no retry budget
		// burned, no error surfaced. If the twin dies too it inherits
		// the full retry semantics alone.
		m.noteHedgeAttemptFailureLocked(p)
		return
	}
	p.attempts++
	p.buf = nil // discard partial chunks from the dead connection
	if g != nil && p.attempts <= m.cfg.MaxRetries {
		m.retries++
		mrgRetries.Inc()
		// Exponential, capped, jittered: a refused node is probed at a
		// gentle rate instead of burning the retry budget in a tight
		// dial-fail loop, and concurrent failures fan out rather than
		// re-converging into a synchronized storm.
		delay := m.cfg.RetryBackoff << min(p.attempts-1, 8)
		if delay > maxRetryBackoff {
			delay = maxRetryBackoff
		}
		m.parkLocked(p, delay+rand.N(delay/2+1), false)
		return
	}
	m.errCount++
	mrgErrors.Inc()
	if p.isHedge {
		// An adopted speculative attempt exhausted the budget it
		// inherited: its terminal state for the hedge conservation law.
		m.hedgeErrors++
		mrgHedgeErrors.Inc()
	}
	p.result <- fetchResult{spec: p.spec, err: err}
}

// errFetchStalled is the failure the deadline watchdog assigns to a
// connection whose oldest in-flight fetch exceeded FetchTimeout.
var errFetchStalled = errors.New("core: fetch deadline exceeded (stalled connection)")

// failConn handles a dead (or stalled) connection to addr, observed under
// the given group epoch: every in-flight request to that node is re-queued
// for a fresh connection (up to its retry budget) or failed. If the
// epoch has already passed — another observer recycled the connection
// first — the report is stale and dropped, so slots are never released
// twice. conn, when non-nil, is the connection the caller observed
// failing; invalidation is conn-identity-guarded so a stale report cannot
// tear down a fresh replacement.
func (m *NetMerger) failConn(addr string, epoch uint64, conn transport.Conn, err error) {
	// Invalidate before unwinding so the retried fetches dial fresh.
	// Transient (backpressure) conditions never invalidate — a shed peer
	// is healthy (see ConnCache).
	if conn != nil {
		m.cache.InvalidateConn(addr, conn, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.groups[addr]
	if g == nil || g.epoch != epoch {
		return // stale: this connection generation was already recycled
	}
	g.epoch++
	m.readers[addr] = false
	// Cancelled losers on this connection can send no more late chunks;
	// drop their duplicate-byte tracking entries.
	for id, a := range m.loserIDs {
		if a == addr {
			delete(m.loserIDs, id)
		}
	}
	var interrupted []*pendingFetch
	for id, p := range m.pending {
		if p.spec.Addr == addr {
			delete(m.pending, id)
			interrupted = append(interrupted, p)
		}
	}
	g.release(len(interrupted))
	if g.win != nil && len(interrupted) > 0 {
		g.win.OnTimeout()
	}
	m.cond.Broadcast()
	if m.closed {
		return
	}
	for _, p := range interrupted {
		m.failOrRetryLocked(g, p, err)
	}
}

// watchdog is the per-fetch deadline enforcer: a stalled connection — the
// peer accepted requests but never responds — surfaces no transport error,
// so without it a fetch would hang forever. The watchdog periodically
// scans in-flight fetches and fails over any connection whose oldest
// fetch has been waiting longer than FetchTimeout; the interrupted
// fetches re-enter the retry path like any other connection failure.
func (m *NetMerger) watchdog() {
	defer m.wg.Done()
	period := m.cfg.FetchTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.watchStop:
			return
		case <-ticker.C:
		}
		type stalledConn struct {
			addr  string
			epoch uint64
		}
		var stalled []stalledConn
		now := time.Now()
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		seen := make(map[string]bool)
		for _, p := range m.pending {
			if now.Sub(p.sentAt) < m.cfg.FetchTimeout || seen[p.spec.Addr] {
				continue
			}
			seen[p.spec.Addr] = true
			if g := m.groups[p.spec.Addr]; g != nil {
				stalled = append(stalled, stalledConn{p.spec.Addr, g.epoch})
				// Count the trip at detection, like corrupt frames: tearing
				// the conn down below wakes its blocked reader, whose own
				// failConn may win the epoch race — the deadline violation
				// is a fact regardless of which observer runs the failover.
				m.deadlineTrips++
				mrgDeadlineTrips.Inc()
			}
		}
		m.mu.Unlock()
		for _, s := range stalled {
			// Peek, don't Get: a missing cache entry means the connection
			// is already closed (invalidation and eviction both close), so
			// there is nothing to tear down — only slots to unwind.
			conn, _ := m.cache.Peek(s.addr)
			m.failConn(s.addr, s.epoch, conn, errFetchStalled)
		}
	}
}

// --- Hedging controller (speculative replica fetching) ---
//
// A fetch that outlives its node's quantile-derived latency threshold is
// raced against a replica supplier: a duplicate request with its own id
// goes to the first distinct address in the replica set, the first
// CRC-clean response wins, and the loser is cancelled — removed from
// every queue and map, its inflight slot released exactly once, no AIMD
// signal fired (a decided race says nothing about congestion), and a
// best-effort CANCEL frame sent so the supplier stops transmitting. A
// budget caps concurrently racing duplicates; at the cap hedging
// degrades to the plain retry/watchdog path instead of amplifying an
// overload.

// hedgeCandidate is one fetch the scanner decided to hedge, captured
// under the lock so the replica resolution can happen outside it.
type hedgeCandidate struct {
	id   uint64
	spec FetchSpec
}

// hedgeLoop drives the controller: a periodic scan of in-flight fetches
// instead of a per-fetch timer, so an armed-but-never-tripped hedge
// costs the hot path nothing (no timer allocation, no extra goroutine
// per fetch) at the price of up to one ScanInterval of firing slack.
func (m *NetMerger) hedgeLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.Hedge.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.watchStop:
			return
		case <-ticker.C:
		}
		for _, c := range m.hedgeCandidates() {
			m.launchHedge(c.id, c.spec)
		}
	}
}

// hedgeCandidates scans in-flight fetches for ones past their node's
// hedge threshold with budget room, at most one hedge per fetch ever.
func (m *NetMerger) hedgeCandidates() []hedgeCandidate {
	now := time.Now()
	var cands []hedgeCandidate
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	free := m.cfg.Hedge.MaxOutstanding - m.hedgeOutstanding
	for _, p := range m.pending {
		if p.twin != nil || p.hedged {
			continue // already raced (or racing)
		}
		g := m.groups[p.spec.Addr]
		if g == nil {
			continue
		}
		thr := m.cfg.Hedge.Threshold(g.rtt)
		if thr <= 0 || now.Sub(p.sentAt) < thr {
			continue
		}
		if len(cands) >= free {
			// Budget exhausted: leave the fetch unhedged — the retry
			// backoff and deadline watchdog still cover it — and count
			// the denial once per fetch.
			if !p.hedgeDenied {
				p.hedgeDenied = true
				m.hedgeDenials++
				mrgHedgeDenials.Inc()
			}
			continue
		}
		cands = append(cands, hedgeCandidate{p.id, p.spec})
	}
	return cands
}

// launchHedge races a duplicate of fetch id against the first distinct
// replica. Replica resolution happens outside the lock (the callback
// may block on registry I/O), so the fetch is re-checked after
// re-locking: it may have completed, failed over, or been hedged by a
// shed/retry path meanwhile.
func (m *NetMerger) launchHedge(id uint64, spec FetchSpec) {
	var target string
	for _, a := range m.cfg.Replicas(spec) {
		if a != "" && a != spec.Addr {
			target = a
			break
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pending[id]
	if !ok || m.closed || p.twin != nil || p.hedged {
		return
	}
	if target == "" {
		// No distinct replica to race. Mark the fetch so the scanner
		// stops re-resolving it every tick; the watchdog remains its
		// backstop.
		p.hedged = true
		mrgHedgeNoReplica.Inc()
		return
	}
	if m.hedgeOutstanding >= m.cfg.Hedge.MaxOutstanding {
		if !p.hedgeDenied {
			p.hedgeDenied = true
			m.hedgeDenials++
			mrgHedgeDenials.Inc()
		}
		return
	}
	m.nextID++
	h := &pendingFetch{
		id:     m.nextID,
		spec:   FetchSpec{Addr: target, MapTask: spec.MapTask, Partition: spec.Partition},
		result: p.result,
		// The pair shares one retry budget: hedging trades duplicate
		// bytes for tail latency, not doubled failure tolerance.
		attempts: p.attempts,
		isHedge:  true,
		hedged:   true,
		twin:     p,
	}
	p.hedged = true
	p.twin = h
	m.acquireHedgeBudgetLocked(h)
	m.hedges++
	mrgHedges.Inc()
	g := m.groupForLocked(target)
	// Head of the replica's queue: the pair is already past its
	// threshold, so every request ahead of it would add straggler
	// latency to a fetch that is late by definition.
	g.queue = append(g.queue, nil)
	copy(g.queue[1:], g.queue)
	g.queue[0] = h
	m.cond.Broadcast()
}

// cancelLoserLocked withdraws the losing attempt of a hedged pair after
// its twin delivered. The loser may be anywhere in its lifecycle:
// in-flight (remove from pending, release its node's slot, remember its
// id so late chunks land in the duplicate-byte ledger, and tell its
// supplier to stop), queued (remove; it holds no slot yet), or — only
// possible transiently — parked. No AIMD signal fires: a decided race
// says nothing about either node's congestion. Returns the address and
// id for a best-effort CANCEL frame when the loser's request may be on
// the wire. Must be called with m.mu held.
func (m *NetMerger) cancelLoserLocked(t *pendingFetch) (cancelAddr string, cancelID uint64) {
	m.unlinkTwinLocked(t)
	if t.isHedge {
		m.hedgeLosses++
		mrgHedgeLosses.Inc()
		m.releaseHedgeBudgetLocked(t)
	}
	if _, ok := m.pending[t.id]; ok {
		delete(m.pending, t.id)
		g := m.groups[t.spec.Addr]
		g.release(1)
		m.noteDupBytesLocked(int64(len(t.buf)))
		t.buf = nil
		if m.loserIDs != nil {
			m.loserIDs[t.id] = t.spec.Addr
		}
		m.cond.Broadcast() // the freed slot may admit a queued fetch
		return t.spec.Addr, t.id
	}
	if _, ok := m.parked[t.id]; ok {
		delete(m.parked, t.id)
		if t.backoff != nil {
			t.backoff.Stop()
		}
		return "", 0
	}
	if g := m.groups[t.spec.Addr]; g != nil {
		for i, q := range g.queue {
			if q == t {
				g.queue = append(g.queue[:i], g.queue[i+1:]...)
				break
			}
		}
	}
	return "", 0
}

// noteHedgeAttemptFailureLocked records the death of one attempt of a
// live hedged pair (remote error, connection failure, deadline trip,
// shed-free failed send). The caller has already removed the attempt
// from pending and released its slot; here it is unlinked so the twin
// carries the fetch alone with full retry semantics. Must be called
// with m.mu held.
func (m *NetMerger) noteHedgeAttemptFailureLocked(p *pendingFetch) {
	if p.isHedge {
		m.hedgeFails++
		mrgHedgeFails.Inc()
		m.releaseHedgeBudgetLocked(p)
	} else {
		// The original died; the speculative attempt adopts the fetch.
		// Its budget slot frees now — an adopted attempt is the only
		// copy racing, not a duplicate.
		m.hedgeAdoptions++
		mrgHedgeAdoptions.Inc()
		m.releaseHedgeBudgetLocked(p.twin)
	}
	m.noteDupBytesLocked(int64(len(p.buf)))
	p.buf = nil
	m.unlinkTwinLocked(p)
}

// unlinkTwinLocked severs a hedged pair symmetrically. Must be called
// with m.mu held.
func (m *NetMerger) unlinkTwinLocked(p *pendingFetch) {
	if p.twin != nil {
		p.twin.twin = nil
		p.twin = nil
	}
}

// acquireHedgeBudgetLocked charges one racing duplicate to the hedge
// budget. With releaseHedgeBudgetLocked it is the only place
// hedgeOutstanding and its gauge move, so the two can never drift.
// Must be called with m.mu held.
func (m *NetMerger) acquireHedgeBudgetLocked(h *pendingFetch) {
	h.budgetHeld = true
	m.hedgeOutstanding++
	mrgHedgeOutstanding.Add(1)
}

// releaseHedgeBudgetLocked returns a speculative attempt's budget slot
// on its terminal transition (win, loss, shed, failure, adoption);
// budgetHeld makes the release idempotent. Must be called with m.mu
// held.
func (m *NetMerger) releaseHedgeBudgetLocked(h *pendingFetch) {
	if h != nil && h.budgetHeld {
		h.budgetHeld = false
		m.hedgeOutstanding--
		mrgHedgeOutstanding.Add(-1)
	}
}

// noteDupBytesLocked adds n payload bytes to the duplicate-byte ledger:
// data received for an attempt that had already lost its race. Must be
// called with m.mu held.
func (m *NetMerger) noteDupBytesLocked(n int64) {
	if n > 0 {
		m.hedgeDupBytes += n
		mrgHedgeDupBytes.Add(n)
	}
}

// sendCancel tells addr's supplier, best-effort, to stop serving fetch
// id: the race is decided and every further chunk is a wasted
// duplicate byte. Peek, don't Get — a missing cached connection means
// nothing is in flight to cancel. A send failure is ignored: the frame
// is advisory, and connection health belongs to the normal
// invalidation paths.
func (m *NetMerger) sendCancel(addr string, id uint64) {
	conn, ok := m.cache.Peek(addr)
	if !ok || conn == nil {
		return
	}
	l := bufpool.Default().Get(cancelFrameLen)
	//jbsvet:ignore errcheck best-effort advisory frame; the reader owns this connection's failure handling
	_ = conn.Send(appendCancel(l.Bytes()[:0], id))
	l.Release()
}

// nextReplica returns the replica after cur in the set (wrapping), cur
// itself when it is absent or alone, and "" only for an empty set whose
// caller keeps its current address.
func nextReplica(replicas []string, cur string) string {
	for i, a := range replicas {
		if a == cur {
			return replicas[(i+1)%len(replicas)]
		}
	}
	if len(replicas) > 0 && replicas[0] != "" {
		return replicas[0]
	}
	return cur
}
