package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// MergerConfig configures a NetMerger.
type MergerConfig struct {
	// Transport is the network backend (TCP or RDMA).
	Transport transport.Transport
	// MaxConnections caps the connection cache (512 in the paper).
	MaxConnections int
	// WindowPerNode bounds in-flight requests per remote node; across
	// nodes the injector is round-robin, so no node monopolizes the wire.
	WindowPerNode int
	// MaxRetries is how many times a fetch is re-sent (on a freshly dialed
	// connection) after a transport failure before the error surfaces.
	MaxRetries int
}

func (c *MergerConfig) applyDefaults() error {
	if c.Transport == nil {
		return errors.New("core: merger needs a transport")
	}
	// Every numeric knob follows one rule: zero means default, negative is
	// rejected by name.
	if c.MaxConnections < 0 {
		return fmt.Errorf("core: merger MaxConnections %d must not be negative", c.MaxConnections)
	}
	if c.WindowPerNode < 0 {
		return fmt.Errorf("core: merger WindowPerNode %d must not be negative", c.WindowPerNode)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("core: merger MaxRetries %d must not be negative", c.MaxRetries)
	}
	if c.MaxConnections == 0 {
		c.MaxConnections = transport.DefaultMaxConnections
	}
	if c.WindowPerNode == 0 {
		c.WindowPerNode = 4
	}
	return nil
}

// MergerStats counts a NetMerger's work.
type MergerStats struct {
	Requests      int64
	BytesFetched  int64
	Errors        int64
	Retries       int64
	ConnectionsHi int64 // peak distinct remote nodes connected
}

// fetchResult is one completed fetch.
type fetchResult struct {
	spec FetchSpec
	data []byte
	err  error
}

// pendingFetch is one request in flight through the NetMerger.
type pendingFetch struct {
	id       uint64
	spec     FetchSpec
	buf      []byte
	attempts int
	result   chan<- fetchResult
	// sentAt anchors the fetch RTT histogram; it is written under m.mu
	// just before injection (so the read side, also under m.mu, races with
	// nothing) and overwritten on each retry.
	sentAt time.Time
}

// nodeGroup holds the per-remote-node request queue, ordered by arrival
// (Section III-C), plus its in-flight window accounting.
type nodeGroup struct {
	addr      string
	queue     []*pendingFetch
	inflight  int
	inflightG *metrics.Gauge // registry mirror of inflight, labeled by node
}

// NetMerger is JBS's client component (Section III-C): one per node,
// consolidating the fetch requests of every local ReduceTask. Requests are
// grouped per remote node — one connection per node pair instead of one
// per MOFCopier — ordered by arrival within a group, and injected
// round-robin across groups to balance load and absorb bursts from
// aggressive ReduceTasks.
type NetMerger struct {
	cfg   MergerConfig
	cache *transport.ConnCache

	mu      sync.Mutex
	cond    *sync.Cond
	groups  map[string]*nodeGroup
	ring    []string
	next    int
	pending map[uint64]*pendingFetch
	nextID  uint64
	closed  bool

	readers map[string]bool // addr -> reader goroutine running

	wg sync.WaitGroup

	requests  int64
	bytes     int64
	errCount  int64
	retries   int64
	connsHigh int64
}

// NewNetMerger creates the node's consolidated fetch engine.
func NewNetMerger(cfg MergerConfig) (*NetMerger, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	m := &NetMerger{
		cfg:     cfg,
		cache:   transport.NewConnCache(cfg.Transport, cfg.MaxConnections),
		groups:  make(map[string]*nodeGroup),
		pending: make(map[uint64]*pendingFetch),
		readers: make(map[string]bool),
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(1)
	go m.injectLoop()
	return m, nil
}

// Stats snapshots the merger's counters.
func (m *NetMerger) Stats() MergerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MergerStats{
		Requests:      m.requests,
		BytesFetched:  m.bytes,
		Errors:        m.errCount,
		Retries:       m.retries,
		ConnectionsHi: m.connsHigh,
	}
}

// Close shuts the merger down; outstanding fetches fail.
func (m *NetMerger) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for id, p := range m.pending {
		delete(m.pending, id)
		//jbsvet:ignore lockhygiene result channels are buffered for every outstanding fetch; this send cannot block
		p.result <- fetchResult{spec: p.spec, err: transport.ErrConnClosed}
	}
	for _, g := range m.groups {
		for _, p := range g.queue {
			//jbsvet:ignore lockhygiene result channels are buffered for every outstanding fetch; this send cannot block
			p.result <- fetchResult{spec: p.spec, err: transport.ErrConnClosed}
		}
		g.queue = nil
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	err := m.cache.Close()
	m.wg.Wait()
	return err
}

// Fetch retrieves every segment in specs, invoking deliver once per
// segment in completion order. It is safe for concurrent calls from
// multiple ReduceTasks; all their requests share the consolidated
// connections and the round-robin injector.
func (m *NetMerger) Fetch(specs []FetchSpec, deliver func(FetchSpec, []byte) error) error {
	if len(specs) == 0 {
		return nil
	}
	results := make(chan fetchResult, len(specs))
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return transport.ErrConnClosed
	}
	for _, spec := range specs {
		m.nextID++
		p := &pendingFetch{id: m.nextID, spec: spec, result: results}
		g, ok := m.groups[spec.Addr]
		if !ok {
			g = &nodeGroup{addr: spec.Addr, inflightG: inflightGauge(spec.Addr)}
			m.groups[spec.Addr] = g
			m.ring = append(m.ring, spec.Addr)
			if n := int64(len(m.ring)); n > m.connsHigh {
				m.connsHigh = n
			}
		}
		g.queue = append(g.queue, p) // arrival order within the group
		m.requests++
		mrgFetches.Inc()
		tracer.Mark(spec.MapTask, spec.Partition, metrics.StageEnqueued)
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	var firstErr error
	for i := 0; i < len(specs); i++ {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: fetch %s/%d from %s: %w",
					res.spec.MapTask, res.spec.Partition, res.spec.Addr, res.err)
			}
			continue
		}
		if firstErr == nil {
			if err := deliver(res.spec, res.data); err != nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// injectLoop is the request injector: it walks the node groups round-robin
// and sends the head request of any group with window room.
func (m *NetMerger) injectLoop() {
	defer m.wg.Done()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return
		}
		sent := false
		for scanned := 0; scanned < len(m.ring); scanned++ {
			if m.next >= len(m.ring) {
				m.next = 0
			}
			addr := m.ring[m.next]
			m.next++
			g := m.groups[addr]
			if len(g.queue) == 0 || g.inflight >= m.cfg.WindowPerNode {
				continue
			}
			p := g.queue[0]
			g.queue = g.queue[1:]
			g.inflight++
			g.inflightG.Add(1)
			m.pending[p.id] = p
			m.ensureReader(addr)
			// Stamp before the lock drops: once pending holds p, the read
			// loop may touch it, so the stamp must happen-before that.
			p.sentAt = time.Now()
			tracer.Mark(p.spec.MapTask, p.spec.Partition, metrics.StageSent)
			// Send outside the lock: the connection may block.
			m.mu.Unlock()
			err := m.send(addr, p)
			m.mu.Lock()
			if err != nil {
				delete(m.pending, p.id)
				g.inflight--
				g.inflightG.Add(-1)
				if m.closed {
					return
				}
				m.failOrRetryLocked(g, p, err)
			}
			sent = true
			break // restart the scan after releasing the lock
		}
		if !sent {
			if m.closed {
				return
			}
			m.cond.Wait()
		}
	}
}

// send transmits one fetch request on the (cached) connection to addr. The
// request is encoded into a pooled buffer: both backends finish with the
// bytes before Send returns, so the lease is released immediately.
func (m *NetMerger) send(addr string, p *pendingFetch) error {
	conn, err := m.cache.Get(addr)
	if err != nil {
		return err
	}
	req := fetchRequest{
		ID:        p.id,
		Partition: uint32(p.spec.Partition),
		MapTask:   p.spec.MapTask,
	}
	l := bufpool.Default().Get(fetchRequestLen(req))
	err = conn.Send(appendFetchRequest(l.Bytes()[:0], req))
	l.Release()
	if err != nil {
		m.cache.Invalidate(addr)
		return err
	}
	return nil
}

// ensureReader starts the response reader for addr once. Must be called
// with m.mu held.
func (m *NetMerger) ensureReader(addr string) {
	if m.readers[addr] {
		return
	}
	m.readers[addr] = true
	m.wg.Add(1)
	go m.readLoop(addr)
}

// readLoop drains response chunks from one node's connection and completes
// pending fetches.
func (m *NetMerger) readLoop(addr string) {
	defer m.wg.Done()
	conn, err := m.cache.Get(addr)
	if err != nil {
		m.failNode(addr, err)
		return
	}
	for {
		l, err := transport.RecvBuf(conn)
		if err != nil {
			m.failNode(addr, err)
			return
		}
		chunk, err := decodeDataChunk(l.Bytes())
		if err != nil {
			l.Release()
			m.failNode(addr, err)
			return
		}
		m.mu.Lock()
		p, ok := m.pending[chunk.ID]
		if !ok {
			// Response for a request that already failed; ignore.
			m.mu.Unlock()
			l.Release()
			continue
		}
		if chunk.Failed {
			delete(m.pending, chunk.ID)
			g := m.groups[addr]
			g.inflight--
			g.inflightG.Add(-1)
			m.errCount++
			mrgErrors.Inc()
			m.cond.Broadcast()
			m.mu.Unlock()
			p.result <- fetchResult{spec: p.spec, err: fmt.Errorf("%w: %s", ErrRemote, chunk.Payload)}
			l.Release()
			continue
		}
		if chunk.Sized {
			tracer.Mark(p.spec.MapTask, p.spec.Partition, metrics.StageFirstChunk)
			if p.buf == nil && chunk.Total > 0 {
				// The first chunk announces the segment's size: reassemble in
				// one exact allocation instead of growing append-by-append.
				p.buf = make([]byte, 0, chunk.Total)
			}
		}
		p.buf = append(p.buf, chunk.Payload...)
		if !chunk.Last {
			m.mu.Unlock()
			l.Release()
			continue
		}
		delete(m.pending, chunk.ID)
		g := m.groups[addr]
		g.inflight--
		g.inflightG.Add(-1)
		m.bytes += int64(len(p.buf))
		mrgBytes.Add(int64(len(p.buf)))
		mrgRTT.Observe(time.Since(p.sentAt).Nanoseconds())
		tracer.Mark(p.spec.MapTask, p.spec.Partition, metrics.StageDelivered)
		m.cond.Broadcast()
		m.mu.Unlock()
		p.result <- fetchResult{spec: p.spec, data: p.buf}
		l.Release()
	}
}

// failOrRetryLocked either re-queues a failed request at the head of its
// node group — it will be re-sent on a freshly dialed connection — or,
// once its retry budget is spent, surfaces the error. Must be called with
// m.mu held.
func (m *NetMerger) failOrRetryLocked(g *nodeGroup, p *pendingFetch, err error) {
	p.attempts++
	p.buf = nil // discard partial chunks from the dead connection
	if g != nil && p.attempts <= m.cfg.MaxRetries {
		m.retries++
		mrgRetries.Inc()
		g.queue = append([]*pendingFetch{p}, g.queue...)
		m.cond.Broadcast()
		return
	}
	m.errCount++
	mrgErrors.Inc()
	p.result <- fetchResult{spec: p.spec, err: err}
}

// failNode handles a dead connection to addr: every in-flight request to
// that node is re-queued for a fresh connection (up to its retry budget)
// or failed.
func (m *NetMerger) failNode(addr string, err error) {
	m.cache.Invalidate(addr)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readers[addr] = false
	g := m.groups[addr]
	var interrupted []*pendingFetch
	for id, p := range m.pending {
		if p.spec.Addr == addr {
			delete(m.pending, id)
			interrupted = append(interrupted, p)
		}
	}
	if g != nil {
		g.inflight -= len(interrupted)
		g.inflightG.Add(int64(-len(interrupted)))
	}
	m.cond.Broadcast()
	if m.closed {
		return
	}
	for _, p := range interrupted {
		m.failOrRetryLocked(g, p, err)
	}
}
