// Package core implements JVM-Bypass Shuffling (JBS), the paper's
// contribution: a native data-shuffling service that replaces Hadoop's
// HttpServlets with the MOFSupplier and its MOFCopiers with the NetMerger
// (Section III), running over the portable transport layer (TCP or RDMA).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Protocol errors.
var (
	ErrBadMessage = errors.New("core: malformed JBS message")
	ErrRemote     = errors.New("core: remote fetch error")
	// ErrCorruptFrame marks a frame whose CRC32C does not match its
	// contents: the bytes were damaged between the peer's checksum and
	// ours (a flipped bit on the wire, a truncated write, a buffer
	// overwritten after send). The receiver tears the connection down and
	// the merger re-fetches the affected segments.
	ErrCorruptFrame = errors.New("core: frame checksum mismatch")
)

// castagnoli is the CRC32C polynomial table shared by every frame
// checksum. Castagnoli is hardware-accelerated on amd64/arm64, so the
// per-frame cost is a table-free instruction stream, not a bottleneck.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Message type tags.
const (
	msgFetchRequest byte = 1
	msgDataChunk    byte = 2
	// msgShed is a supplier's admission-control rejection of one fetch
	// request: the request was not queued, and the frame carries a
	// retry-after hint the merger honors with jittered backoff.
	msgShed byte = 3
	// msgCredit is a supplier's flow-control grant after its admission
	// ledger recovers from a shedding episode: each credit widens the
	// receiving merger's AIMD window toward this node by one slot.
	msgCredit byte = 4
	// msgCancel is a merger's best-effort withdrawal of one fetch
	// request: the hedging controller sends it on the losing side of a
	// speculative race so the supplier stops staging and transmitting a
	// segment nobody will use. It is advisory — a supplier that already
	// sent the data costs only duplicate bytes, never correctness.
	msgCancel byte = 5
)

// Every frame shares one layout prefix: [type:1][crc32c:4][body...].
// The checksum covers the body only (everything after the CRC field), so
// a frame is verified with one pass and no copying; the type byte is
// implicitly covered because a mistyped frame fails its length check
// before the CRC is consulted.
const frameCRCOff = 1
const frameBodyOff = 5

// Chunk flags.
const (
	flagLast  byte = 1 << 0
	flagError byte = 1 << 1
	// flagSized marks a chunk carrying the segment's total byte length
	// after the flags, letting the receiver size its reassembly buffer in
	// one allocation. The supplier sets it on the first chunk of a segment.
	flagSized byte = 1 << 2
)

// Chunk header sizes (type + crc + id + flags, optionally + total length).
const (
	chunkHeaderLen      = frameBodyOff + 8 + 1
	sizedChunkHeaderLen = chunkHeaderLen + 8
)

// maxSegmentTotal caps the segment size a sized chunk may announce. The
// receiver preallocates its reassembly buffer from this field, so an
// (already checksummed, but defense-in-depth) absurd value must fail
// decode rather than attempt a multi-exabyte allocation.
const maxSegmentTotal = int64(1) << 40

// checkFrameCRC verifies a frame's CRC32C over its body and returns
// ErrCorruptFrame (wrapped) on mismatch. Callers have already bounded
// len(buf) >= frameBodyOff.
func checkFrameCRC(buf []byte) error {
	want := binary.BigEndian.Uint32(buf[frameCRCOff:])
	if got := crc32.Update(0, castagnoli, buf[frameBodyOff:]); got != want {
		return fmt.Errorf("%w: type %d, %d bytes, crc %08x != %08x",
			ErrCorruptFrame, buf[0], len(buf), got, want)
	}
	return nil
}

// patchFrameCRC computes the CRC32C over the frame's body and writes it
// into the CRC field. frame must be the complete frame starting at its
// type byte.
func patchFrameCRC(frame []byte) {
	binary.BigEndian.PutUint32(frame[frameCRCOff:],
		crc32.Update(0, castagnoli, frame[frameBodyOff:]))
}

// FetchSpec identifies one segment to fetch: the segment of MapTask's MOF
// for the given reduce partition, served by the node at Addr.
type FetchSpec struct {
	// Addr is the MOFSupplier address on the node hosting the MOF.
	Addr string
	// MapTask is the producing map task id.
	MapTask string
	// Partition is the reduce partition.
	Partition int
}

// fetchRequest is the on-wire fetch request.
type fetchRequest struct {
	ID        uint64
	Partition uint32
	MapTask   string
}

// fetchRequestFixedLen is the fixed prefix of a fetch request:
// type + crc + id + partition + task-name length.
const fetchRequestFixedLen = frameBodyOff + 8 + 4 + 2

// fetchRequestLen returns the encoded size of a fetch request.
func fetchRequestLen(r fetchRequest) int {
	return fetchRequestFixedLen + len(r.MapTask)
}

// appendFetchRequest marshals a fetch request onto dst (which may be a
// pooled buffer) and returns the extended slice. The CRC is computed in
// place over the appended bytes, so the hot send path performs no extra
// allocation.
func appendFetchRequest(dst []byte, r fetchRequest) []byte {
	start := len(dst)
	var fixed [fetchRequestFixedLen]byte
	fixed[0] = msgFetchRequest
	binary.BigEndian.PutUint64(fixed[frameBodyOff:], r.ID)
	binary.BigEndian.PutUint32(fixed[frameBodyOff+8:], r.Partition)
	binary.BigEndian.PutUint16(fixed[frameBodyOff+12:], uint16(len(r.MapTask)))
	dst = append(dst, fixed[:]...)
	dst = append(dst, r.MapTask...)
	patchFrameCRC(dst[start:])
	return dst
}

// encodeFetchRequest marshals a fetch request.
func encodeFetchRequest(r fetchRequest) []byte {
	return appendFetchRequest(make([]byte, 0, fetchRequestLen(r)), r)
}

// decodeFetchRequest unmarshals a fetch request.
func decodeFetchRequest(buf []byte) (fetchRequest, error) {
	return decodeFetchRequestInterned(buf, nil)
}

// decodeFetchRequestInterned is decodeFetchRequest with map-task-name
// interning: a fetch stream names a handful of distinct MOFs thousands of
// times, so with a non-nil intern map the string is materialized once per
// distinct name instead of once per request.
func decodeFetchRequestInterned(buf []byte, intern map[string]string) (fetchRequest, error) {
	if len(buf) < fetchRequestFixedLen || buf[0] != msgFetchRequest {
		return fetchRequest{}, fmt.Errorf("%w: short or mistyped request (%d bytes)", ErrBadMessage, len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf[frameBodyOff+12:]))
	if len(buf) != fetchRequestFixedLen+n {
		return fetchRequest{}, fmt.Errorf("%w: task name length %d vs %d", ErrBadMessage, n, len(buf)-fetchRequestFixedLen)
	}
	if err := checkFrameCRC(buf); err != nil {
		return fetchRequest{}, err
	}
	name := buf[fetchRequestFixedLen:]
	var task string
	if intern != nil {
		var ok bool
		if task, ok = intern[string(name)]; !ok { // lookup by []byte: no alloc
			task = string(name)
			intern[task] = task
		}
	} else {
		task = string(name)
	}
	return fetchRequest{
		ID:        binary.BigEndian.Uint64(buf[frameBodyOff:]),
		Partition: binary.BigEndian.Uint32(buf[frameBodyOff+8:]),
		MapTask:   task,
	}, nil
}

// dataChunk is one on-wire response chunk. A segment travels as a sequence
// of chunks of at most the transport buffer size; the final chunk carries
// flagLast. Failures travel as a chunk with flagError whose payload is the
// error text.
type dataChunk struct {
	ID     uint64
	Last   bool
	Failed bool
	// Sized marks the first chunk of a segment; Total is then the
	// segment's full byte length across all its chunks.
	Sized   bool
	Total   int64
	Payload []byte
}

// appendChunkHeader writes a chunk header onto dst — sized (with total)
// when flagSized is set — and returns the extended slice. The CRC field
// covers the header body AND the payload that will follow on the wire,
// so the payload is passed in for checksumming even though it is not
// appended here: the supplier sends it as a separate gather vector. The
// supplier appends into a per-connection scratch array so the hot send
// path builds headers without allocating.
func appendChunkHeader(dst []byte, id uint64, flags byte, total int64, payload []byte) []byte {
	start := len(dst)
	var hdr [sizedChunkHeaderLen]byte
	hdr[0] = msgDataChunk
	binary.BigEndian.PutUint64(hdr[frameBodyOff:], id)
	hdr[frameBodyOff+8] = flags
	n := chunkHeaderLen
	if flags&flagSized != 0 {
		binary.BigEndian.PutUint64(hdr[chunkHeaderLen:], uint64(total))
		n = sizedChunkHeaderLen
	}
	dst = append(dst, hdr[:n]...)
	crc := crc32.Update(0, castagnoli, dst[start+frameBodyOff:])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(dst[start+frameCRCOff:], crc)
	return dst
}

// encodeDataChunk marshals a chunk, header and payload coalesced.
func encodeDataChunk(c dataChunk) []byte {
	var flags byte
	if c.Last {
		flags |= flagLast
	}
	if c.Failed {
		flags |= flagError
	}
	if c.Sized {
		flags |= flagSized
	}
	buf := appendChunkHeader(make([]byte, 0, sizedChunkHeaderLen+len(c.Payload)), c.ID, flags, c.Total, c.Payload)
	return append(buf, c.Payload...)
}

// Flow-control frame sizes (type + crc + fields).
const (
	shedFrameLen   = frameBodyOff + 8 + 8 // id + retry-after nanoseconds
	creditFrameLen = frameBodyOff + 4     // credit count
)

// appendShed marshals a shed frame onto dst and returns the extended
// slice. The supplier appends into per-connection scratch, so shedding
// under overload performs no allocation.
func appendShed(dst []byte, id uint64, retryAfter time.Duration) []byte {
	start := len(dst)
	var frame [shedFrameLen]byte
	frame[0] = msgShed
	binary.BigEndian.PutUint64(frame[frameBodyOff:], id)
	binary.BigEndian.PutUint64(frame[frameBodyOff+8:], uint64(retryAfter.Nanoseconds()))
	dst = append(dst, frame[:]...)
	patchFrameCRC(dst[start:])
	return dst
}

// decodeShed unmarshals a shed frame.
func decodeShed(buf []byte) (id uint64, retryAfter time.Duration, err error) {
	if len(buf) != shedFrameLen || buf[0] != msgShed {
		return 0, 0, fmt.Errorf("%w: short or mistyped shed frame (%d bytes)", ErrBadMessage, len(buf))
	}
	if err := checkFrameCRC(buf); err != nil {
		return 0, 0, err
	}
	ns := binary.BigEndian.Uint64(buf[frameBodyOff+8:])
	if ns > uint64(maxRetryAfter) {
		return 0, 0, fmt.Errorf("%w: shed retry-after %dns exceeds cap", ErrBadMessage, ns)
	}
	return binary.BigEndian.Uint64(buf[frameBodyOff:]), time.Duration(ns), nil
}

// maxRetryAfter caps the retry-after hint a merger will accept, so a
// corrupt or malicious frame cannot park a fetch for hours.
const maxRetryAfter = time.Minute

// appendCredit marshals a credit frame onto dst and returns the
// extended slice.
func appendCredit(dst []byte, credits uint32) []byte {
	start := len(dst)
	var frame [creditFrameLen]byte
	frame[0] = msgCredit
	binary.BigEndian.PutUint32(frame[frameBodyOff:], credits)
	dst = append(dst, frame[:]...)
	patchFrameCRC(dst[start:])
	return dst
}

// decodeCredit unmarshals a credit frame.
func decodeCredit(buf []byte) (uint32, error) {
	if len(buf) != creditFrameLen || buf[0] != msgCredit {
		return 0, fmt.Errorf("%w: short or mistyped credit frame (%d bytes)", ErrBadMessage, len(buf))
	}
	if err := checkFrameCRC(buf); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(buf[frameBodyOff:]), nil
}

// cancelFrameLen is the size of a cancel frame (type + crc + id).
const cancelFrameLen = frameBodyOff + 8

// appendCancel marshals a cancel frame onto dst and returns the
// extended slice. The merger appends into a pooled buffer, so
// cancelling a hedge loser performs no allocation.
func appendCancel(dst []byte, id uint64) []byte {
	start := len(dst)
	var frame [cancelFrameLen]byte
	frame[0] = msgCancel
	binary.BigEndian.PutUint64(frame[frameBodyOff:], id)
	dst = append(dst, frame[:]...)
	patchFrameCRC(dst[start:])
	return dst
}

// decodeCancel unmarshals a cancel frame.
func decodeCancel(buf []byte) (uint64, error) {
	if len(buf) != cancelFrameLen || buf[0] != msgCancel {
		return 0, fmt.Errorf("%w: short or mistyped cancel frame (%d bytes)", ErrBadMessage, len(buf))
	}
	if err := checkFrameCRC(buf); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[frameBodyOff:]), nil
}

// decodeDataChunk unmarshals a chunk. The payload aliases buf.
func decodeDataChunk(buf []byte) (dataChunk, error) {
	if len(buf) < chunkHeaderLen || buf[0] != msgDataChunk {
		return dataChunk{}, fmt.Errorf("%w: short or mistyped chunk (%d bytes)", ErrBadMessage, len(buf))
	}
	if extra := buf[frameBodyOff+8] &^ (flagLast | flagError | flagSized); extra != 0 {
		return dataChunk{}, fmt.Errorf("%w: unknown chunk flags %#02x", ErrBadMessage, extra)
	}
	c := dataChunk{
		ID:     binary.BigEndian.Uint64(buf[frameBodyOff:]),
		Last:   buf[frameBodyOff+8]&flagLast != 0,
		Failed: buf[frameBodyOff+8]&flagError != 0,
		Sized:  buf[frameBodyOff+8]&flagSized != 0,
	}
	payload := buf[chunkHeaderLen:]
	if c.Sized {
		if len(buf) < sizedChunkHeaderLen {
			return dataChunk{}, fmt.Errorf("%w: sized chunk of %d bytes", ErrBadMessage, len(buf))
		}
		c.Total = int64(binary.BigEndian.Uint64(buf[chunkHeaderLen:]))
		if c.Total < 0 || c.Total > maxSegmentTotal {
			return dataChunk{}, fmt.Errorf("%w: segment size %d out of range", ErrBadMessage, c.Total)
		}
		payload = buf[sizedChunkHeaderLen:]
	}
	if err := checkFrameCRC(buf); err != nil {
		return dataChunk{}, err
	}
	c.Payload = payload
	return c, nil
}
