// Package core implements JVM-Bypass Shuffling (JBS), the paper's
// contribution: a native data-shuffling service that replaces Hadoop's
// HttpServlets with the MOFSupplier and its MOFCopiers with the NetMerger
// (Section III), running over the portable transport layer (TCP or RDMA).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Protocol errors.
var (
	ErrBadMessage = errors.New("core: malformed JBS message")
	ErrRemote     = errors.New("core: remote fetch error")
)

// Message type tags.
const (
	msgFetchRequest byte = 1
	msgDataChunk    byte = 2
	// msgShed is a supplier's admission-control rejection of one fetch
	// request: the request was not queued, and the frame carries a
	// retry-after hint the merger honors with jittered backoff.
	msgShed byte = 3
	// msgCredit is a supplier's flow-control grant after its admission
	// ledger recovers from a shedding episode: each credit widens the
	// receiving merger's AIMD window toward this node by one slot.
	msgCredit byte = 4
)

// Chunk flags.
const (
	flagLast  byte = 1 << 0
	flagError byte = 1 << 1
	// flagSized marks a chunk carrying the segment's total byte length
	// after the flags, letting the receiver size its reassembly buffer in
	// one allocation. The supplier sets it on the first chunk of a segment.
	flagSized byte = 1 << 2
)

// Chunk header sizes (type + id + flags, optionally + total length).
const (
	chunkHeaderLen      = 1 + 8 + 1
	sizedChunkHeaderLen = chunkHeaderLen + 8
)

// FetchSpec identifies one segment to fetch: the segment of MapTask's MOF
// for the given reduce partition, served by the node at Addr.
type FetchSpec struct {
	// Addr is the MOFSupplier address on the node hosting the MOF.
	Addr string
	// MapTask is the producing map task id.
	MapTask string
	// Partition is the reduce partition.
	Partition int
}

// fetchRequest is the on-wire fetch request.
type fetchRequest struct {
	ID        uint64
	Partition uint32
	MapTask   string
}

// fetchRequestLen returns the encoded size of a fetch request.
func fetchRequestLen(r fetchRequest) int {
	return 1 + 8 + 4 + 2 + len(r.MapTask)
}

// appendFetchRequest marshals a fetch request onto dst (which may be a
// pooled buffer) and returns the extended slice.
func appendFetchRequest(dst []byte, r fetchRequest) []byte {
	var fixed [15]byte
	fixed[0] = msgFetchRequest
	binary.BigEndian.PutUint64(fixed[1:], r.ID)
	binary.BigEndian.PutUint32(fixed[9:], r.Partition)
	binary.BigEndian.PutUint16(fixed[13:], uint16(len(r.MapTask)))
	dst = append(dst, fixed[:]...)
	return append(dst, r.MapTask...)
}

// encodeFetchRequest marshals a fetch request.
func encodeFetchRequest(r fetchRequest) []byte {
	return appendFetchRequest(make([]byte, 0, fetchRequestLen(r)), r)
}

// decodeFetchRequest unmarshals a fetch request.
func decodeFetchRequest(buf []byte) (fetchRequest, error) {
	return decodeFetchRequestInterned(buf, nil)
}

// decodeFetchRequestInterned is decodeFetchRequest with map-task-name
// interning: a fetch stream names a handful of distinct MOFs thousands of
// times, so with a non-nil intern map the string is materialized once per
// distinct name instead of once per request.
func decodeFetchRequestInterned(buf []byte, intern map[string]string) (fetchRequest, error) {
	if len(buf) < 15 || buf[0] != msgFetchRequest {
		return fetchRequest{}, fmt.Errorf("%w: short or mistyped request (%d bytes)", ErrBadMessage, len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf[13:]))
	if len(buf) != 15+n {
		return fetchRequest{}, fmt.Errorf("%w: task name length %d vs %d", ErrBadMessage, n, len(buf)-15)
	}
	name := buf[15:]
	var task string
	if intern != nil {
		var ok bool
		if task, ok = intern[string(name)]; !ok { // lookup by []byte: no alloc
			task = string(name)
			intern[task] = task
		}
	} else {
		task = string(name)
	}
	return fetchRequest{
		ID:        binary.BigEndian.Uint64(buf[1:]),
		Partition: binary.BigEndian.Uint32(buf[9:]),
		MapTask:   task,
	}, nil
}

// dataChunk is one on-wire response chunk. A segment travels as a sequence
// of chunks of at most the transport buffer size; the final chunk carries
// flagLast. Failures travel as a chunk with flagError whose payload is the
// error text.
type dataChunk struct {
	ID     uint64
	Last   bool
	Failed bool
	// Sized marks the first chunk of a segment; Total is then the
	// segment's full byte length across all its chunks.
	Sized   bool
	Total   int64
	Payload []byte
}

// appendChunkHeader writes a chunk header onto dst — sized (with total)
// when flagSized is set — and returns the extended slice. The supplier
// appends into a per-connection scratch array so the hot send path builds
// headers without allocating; the payload travels as a separate vector.
func appendChunkHeader(dst []byte, id uint64, flags byte, total int64) []byte {
	var hdr [sizedChunkHeaderLen]byte
	hdr[0] = msgDataChunk
	binary.BigEndian.PutUint64(hdr[1:], id)
	hdr[9] = flags
	if flags&flagSized != 0 {
		binary.BigEndian.PutUint64(hdr[10:], uint64(total))
		return append(dst, hdr[:sizedChunkHeaderLen]...)
	}
	return append(dst, hdr[:chunkHeaderLen]...)
}

// encodeDataChunk marshals a chunk, header and payload coalesced.
func encodeDataChunk(c dataChunk) []byte {
	var flags byte
	if c.Last {
		flags |= flagLast
	}
	if c.Failed {
		flags |= flagError
	}
	if c.Sized {
		flags |= flagSized
	}
	buf := appendChunkHeader(make([]byte, 0, sizedChunkHeaderLen+len(c.Payload)), c.ID, flags, c.Total)
	return append(buf, c.Payload...)
}

// Flow-control frame sizes (type + fields).
const (
	shedFrameLen   = 1 + 8 + 8 // id + retry-after nanoseconds
	creditFrameLen = 1 + 4     // credit count
)

// appendShed marshals a shed frame onto dst and returns the extended
// slice. The supplier appends into per-connection scratch, so shedding
// under overload performs no allocation.
func appendShed(dst []byte, id uint64, retryAfter time.Duration) []byte {
	var frame [shedFrameLen]byte
	frame[0] = msgShed
	binary.BigEndian.PutUint64(frame[1:], id)
	binary.BigEndian.PutUint64(frame[9:], uint64(retryAfter.Nanoseconds()))
	return append(dst, frame[:]...)
}

// decodeShed unmarshals a shed frame.
func decodeShed(buf []byte) (id uint64, retryAfter time.Duration, err error) {
	if len(buf) != shedFrameLen || buf[0] != msgShed {
		return 0, 0, fmt.Errorf("%w: short or mistyped shed frame (%d bytes)", ErrBadMessage, len(buf))
	}
	ns := binary.BigEndian.Uint64(buf[9:])
	if ns > uint64(maxRetryAfter) {
		return 0, 0, fmt.Errorf("%w: shed retry-after %dns exceeds cap", ErrBadMessage, ns)
	}
	return binary.BigEndian.Uint64(buf[1:]), time.Duration(ns), nil
}

// maxRetryAfter caps the retry-after hint a merger will accept, so a
// corrupt or malicious frame cannot park a fetch for hours.
const maxRetryAfter = time.Minute

// appendCredit marshals a credit frame onto dst and returns the
// extended slice.
func appendCredit(dst []byte, credits uint32) []byte {
	var frame [creditFrameLen]byte
	frame[0] = msgCredit
	binary.BigEndian.PutUint32(frame[1:], credits)
	return append(dst, frame[:]...)
}

// decodeCredit unmarshals a credit frame.
func decodeCredit(buf []byte) (uint32, error) {
	if len(buf) != creditFrameLen || buf[0] != msgCredit {
		return 0, fmt.Errorf("%w: short or mistyped credit frame (%d bytes)", ErrBadMessage, len(buf))
	}
	return binary.BigEndian.Uint32(buf[1:]), nil
}

// decodeDataChunk unmarshals a chunk. The payload aliases buf.
func decodeDataChunk(buf []byte) (dataChunk, error) {
	if len(buf) < chunkHeaderLen || buf[0] != msgDataChunk {
		return dataChunk{}, fmt.Errorf("%w: short or mistyped chunk (%d bytes)", ErrBadMessage, len(buf))
	}
	c := dataChunk{
		ID:     binary.BigEndian.Uint64(buf[1:]),
		Last:   buf[9]&flagLast != 0,
		Failed: buf[9]&flagError != 0,
		Sized:  buf[9]&flagSized != 0,
	}
	payload := buf[chunkHeaderLen:]
	if c.Sized {
		if len(buf) < sizedChunkHeaderLen {
			return dataChunk{}, fmt.Errorf("%w: sized chunk of %d bytes", ErrBadMessage, len(buf))
		}
		c.Total = int64(binary.BigEndian.Uint64(buf[chunkHeaderLen:]))
		if c.Total < 0 {
			return dataChunk{}, fmt.Errorf("%w: negative segment size", ErrBadMessage)
		}
		payload = buf[sizedChunkHeaderLen:]
	}
	c.Payload = payload
	return c, nil
}
