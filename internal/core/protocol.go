// Package core implements JVM-Bypass Shuffling (JBS), the paper's
// contribution: a native data-shuffling service that replaces Hadoop's
// HttpServlets with the MOFSupplier and its MOFCopiers with the NetMerger
// (Section III), running over the portable transport layer (TCP or RDMA).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol errors.
var (
	ErrBadMessage = errors.New("core: malformed JBS message")
	ErrRemote     = errors.New("core: remote fetch error")
)

// Message type tags.
const (
	msgFetchRequest byte = 1
	msgDataChunk    byte = 2
)

// Chunk flags.
const (
	flagLast  byte = 1 << 0
	flagError byte = 1 << 1
)

// FetchSpec identifies one segment to fetch: the segment of MapTask's MOF
// for the given reduce partition, served by the node at Addr.
type FetchSpec struct {
	// Addr is the MOFSupplier address on the node hosting the MOF.
	Addr string
	// MapTask is the producing map task id.
	MapTask string
	// Partition is the reduce partition.
	Partition int
}

// fetchRequest is the on-wire fetch request.
type fetchRequest struct {
	ID        uint64
	Partition uint32
	MapTask   string
}

// encodeFetchRequest marshals a fetch request.
func encodeFetchRequest(r fetchRequest) []byte {
	buf := make([]byte, 1+8+4+2+len(r.MapTask))
	buf[0] = msgFetchRequest
	binary.BigEndian.PutUint64(buf[1:], r.ID)
	binary.BigEndian.PutUint32(buf[9:], r.Partition)
	binary.BigEndian.PutUint16(buf[13:], uint16(len(r.MapTask)))
	copy(buf[15:], r.MapTask)
	return buf
}

// decodeFetchRequest unmarshals a fetch request.
func decodeFetchRequest(buf []byte) (fetchRequest, error) {
	if len(buf) < 15 || buf[0] != msgFetchRequest {
		return fetchRequest{}, fmt.Errorf("%w: short or mistyped request (%d bytes)", ErrBadMessage, len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf[13:]))
	if len(buf) != 15+n {
		return fetchRequest{}, fmt.Errorf("%w: task name length %d vs %d", ErrBadMessage, n, len(buf)-15)
	}
	return fetchRequest{
		ID:        binary.BigEndian.Uint64(buf[1:]),
		Partition: binary.BigEndian.Uint32(buf[9:]),
		MapTask:   string(buf[15:]),
	}, nil
}

// dataChunk is one on-wire response chunk. A segment travels as a sequence
// of chunks of at most the transport buffer size; the final chunk carries
// flagLast. Failures travel as a chunk with flagError whose payload is the
// error text.
type dataChunk struct {
	ID      uint64
	Last    bool
	Failed  bool
	Payload []byte
}

// encodeDataChunk marshals a chunk.
func encodeDataChunk(c dataChunk) []byte {
	buf := make([]byte, 1+8+1+len(c.Payload))
	buf[0] = msgDataChunk
	binary.BigEndian.PutUint64(buf[1:], c.ID)
	var flags byte
	if c.Last {
		flags |= flagLast
	}
	if c.Failed {
		flags |= flagError
	}
	buf[9] = flags
	copy(buf[10:], c.Payload)
	return buf
}

// decodeDataChunk unmarshals a chunk.
func decodeDataChunk(buf []byte) (dataChunk, error) {
	if len(buf) < 10 || buf[0] != msgDataChunk {
		return dataChunk{}, fmt.Errorf("%w: short or mistyped chunk (%d bytes)", ErrBadMessage, len(buf))
	}
	return dataChunk{
		ID:      binary.BigEndian.Uint64(buf[1:]),
		Last:    buf[9]&flagLast != 0,
		Failed:  buf[9]&flagError != 0,
		Payload: buf[10:],
	}, nil
}
