package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// scriptedSupplier is a minimal hand-rolled supplier whose response to a
// fetch is scripted per request-ID occurrence: the Nth time a given
// request ID arrives (retries re-send the same ID), the Nth script action
// runs (the last action repeats). This pins down exactly which failure the
// merger sees on which attempt — something a real supplier behind a flaky
// proxy cannot guarantee.
type scriptedSupplier struct {
	lis     transport.Listener
	script  []string // per-occurrence action; last entry repeats
	payload []byte

	mu   sync.Mutex
	seen map[uint64]int
	wg   sync.WaitGroup
}

// Script actions.
const (
	actServe     = "serve"        // respond with the payload segment
	actShed      = "shed"         // admission-control rejection, 2ms retry-after
	actShedClose = "shed+close"   // shed, then kill the connection
	actClose     = "close"        // kill the connection without responding
	actRemoteErr = "remote-error" // respond with a flagError chunk
	actIgnore    = "ignore"       // swallow the request; conn stays open, silent
)

func newScriptedSupplier(t *testing.T, script []string) *scriptedSupplier {
	t.Helper()
	lis, err := transport.NewTCP().Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedSupplier{
		lis:     lis,
		script:  script,
		payload: bytes.Repeat([]byte("retry-table-segment-"), 32),
		seen:    map[uint64]int{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	t.Cleanup(func() { lis.Close(); s.wg.Wait() })
	return s
}

func (s *scriptedSupplier) Addr() string { return s.lis.Addr() }

func (s *scriptedSupplier) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *scriptedSupplier) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		req, err := decodeFetchRequest(msg)
		if err != nil {
			return
		}
		s.mu.Lock()
		n := s.seen[req.ID]
		s.seen[req.ID] = n + 1
		s.mu.Unlock()
		if n >= len(s.script) {
			n = len(s.script) - 1
		}
		switch s.script[n] {
		case actServe:
			chunk := encodeDataChunk(dataChunk{
				ID: req.ID, Last: true, Sized: true,
				Total: int64(len(s.payload)), Payload: s.payload,
			})
			if conn.Send(chunk) != nil {
				return
			}
		case actShed:
			if conn.Send(appendShed(nil, req.ID, 2*time.Millisecond)) != nil {
				return
			}
		case actShedClose:
			_ = conn.Send(appendShed(nil, req.ID, 2*time.Millisecond))
			return
		case actClose:
			return
		case actRemoteErr:
			chunk := encodeDataChunk(dataChunk{
				ID: req.ID, Last: true, Failed: true, Payload: []byte("scripted failure"),
			})
			if conn.Send(chunk) != nil {
				return
			}
		}
	}
}

// TestRetryExhaustionTable drives one fetch through scripted failure
// sequences and checks both the outcome and the exact retry accounting:
// connection failures burn the MaxRetries budget and surface once it is
// spent; sheds and remote errors never touch it (a shed is transient
// backpressure, a remote error is a definitive per-request answer that a
// retry cannot improve).
func TestRetryExhaustionTable(t *testing.T) {
	cases := []struct {
		name       string
		script     []string
		maxRetries int

		wantErr     error // nil means the fetch must succeed
		wantRetries int64
		wantSheds   int64
		wantErrors  int64
	}{
		{
			name:       "exhausted-at-zero",
			script:     []string{actClose},
			maxRetries: 0,
			wantErr:    transport.ErrConnClosed,
			wantErrors: 1,
		},
		{
			name:        "exhausted-at-two",
			script:      []string{actClose},
			maxRetries:  2,
			wantErr:     transport.ErrConnClosed,
			wantRetries: 2, // exactly the budget, then the error surfaces
			wantErrors:  1,
		},
		{
			name:        "recovers-within-budget",
			script:      []string{actClose, actClose, actServe},
			maxRetries:  3,
			wantRetries: 2,
		},
		{
			name:       "shed-consumes-no-budget",
			script:     []string{actShed, actServe},
			maxRetries: 0, // transient: must still succeed with zero retries allowed
			wantSheds:  1,
		},
		{
			name:       "shed-storm-consumes-no-budget",
			script:     []string{actShed, actShed, actShed, actServe},
			maxRetries: 0,
			wantSheds:  3,
		},
		{
			name:       "shed-then-conn-death-while-parked",
			script:     []string{actShedClose, actServe},
			maxRetries: 0, // the dead conn holds no pending fetch, so no budget burns
			wantSheds:  1,
		},
		{
			name:        "shed-then-failure-interleaved",
			script:      []string{actShed, actClose, actServe},
			maxRetries:  1, // one failure retry + one shed park, independently counted
			wantRetries: 1,
			wantSheds:   1,
		},
		{
			name:       "remote-error-is-fatal",
			script:     []string{actRemoteErr},
			maxRetries: 5, // budget present but must not be spent
			wantErr:    ErrRemote,
			wantErrors: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sup := newScriptedSupplier(t, tc.script)
			m, err := NewNetMerger(MergerConfig{
				Transport:    transport.NewTCP(),
				MaxRetries:   tc.maxRetries,
				RetryBackoff: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			var got []byte
			err = m.Fetch([]FetchSpec{{Addr: sup.Addr(), MapTask: "m-00000", Partition: 0}},
				func(_ FetchSpec, data []byte) error { got = data; return nil })

			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("fetch error = %v, want %v", err, tc.wantErr)
				}
			} else {
				if err != nil {
					t.Fatalf("fetch failed: %v", err)
				}
				if !bytes.Equal(got, sup.payload) {
					t.Fatalf("delivered %d bytes, want the %d-byte payload", len(got), len(sup.payload))
				}
			}
			st := m.Stats()
			if st.Retries != tc.wantRetries {
				t.Errorf("Retries = %d, want %d (stats %+v)", st.Retries, tc.wantRetries, st)
			}
			if st.Sheds != tc.wantSheds {
				t.Errorf("Sheds = %d, want %d (stats %+v)", st.Sheds, tc.wantSheds, st)
			}
			if st.ShedRetries != tc.wantSheds {
				t.Errorf("ShedRetries = %d, want %d: every shed must be retried (stats %+v)", st.ShedRetries, tc.wantSheds, st)
			}
			if st.Errors != tc.wantErrors {
				t.Errorf("Errors = %d, want %d (stats %+v)", st.Errors, tc.wantErrors, st)
			}
		})
	}
}

// TestStalledConnRetriesAfterDeadline covers the deadline-trip/retry
// interaction: a connection that accepts the request and then never
// responds surfaces no transport error, so the fetch deadline watchdog
// must fail it over, and the failover burns exactly one retry.
func TestStalledConnRetriesAfterDeadline(t *testing.T) {
	sup := newScriptedSupplier(t, []string{actIgnore, actServe})
	m, err := NewNetMerger(MergerConfig{
		Transport:    transport.NewTCP(),
		MaxRetries:   2,
		FetchTimeout: 150 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var got []byte
	err = m.Fetch([]FetchSpec{{Addr: sup.Addr(), MapTask: "m-00000", Partition: 0}},
		func(_ FetchSpec, data []byte) error { got = data; return nil })
	if err != nil {
		t.Fatalf("fetch through stalled conn failed: %v", err)
	}
	if !bytes.Equal(got, sup.payload) {
		t.Fatalf("delivered %d bytes, want the %d-byte payload", len(got), len(sup.payload))
	}
	st := m.Stats()
	if st.DeadlineTrips == 0 {
		t.Fatalf("watchdog never tripped: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("deadline trip did not trigger a retry: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("errors surfaced despite retry budget: %+v", st)
	}
}

// TestTransientClassification pins the error taxonomy the retry machinery
// is built on: backpressure is the only transient condition; connection
// death, stalls, and corruption are fatal to the connection (and burn
// retry budget when a fetch was in flight).
func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"backpressure", transport.ErrBackpressure, true},
		{"wrapped-backpressure", fmt.Errorf("send: %w", transport.ErrBackpressure), true},
		{"conn-closed", transport.ErrConnClosed, false},
		{"fetch-stalled", errFetchStalled, false},
		{"corrupt-frame", ErrCorruptFrame, false},
		{"remote-error", ErrRemote, false},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := transport.Transient(tc.err); got != tc.want {
				t.Fatalf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}
