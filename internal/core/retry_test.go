package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// flakyProxy forwards framed messages between the NetMerger and a real
// supplier, killing its first accepted connection after forwarding a set
// number of response frames — a deterministic mid-fetch network failure.
type flakyProxy struct {
	lis      transport.Listener
	backend  string
	tr       transport.Transport
	killures int32 // connections left to kill
	frames   int   // response frames to pass before killing
	wg       sync.WaitGroup
}

func newFlakyProxy(t *testing.T, backend string, kills int32, frames int) *flakyProxy {
	t.Helper()
	tr := transport.NewTCP()
	lis, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{lis: lis, backend: backend, tr: tr, killures: kills, frames: frames}
	go p.acceptLoop()
	t.Cleanup(func() { lis.Close(); p.wg.Wait() })
	return p
}

func (p *flakyProxy) Addr() string { return p.lis.Addr() }

func (p *flakyProxy) acceptLoop() {
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return
		}
		server, err := p.tr.Dial(p.backend)
		if err != nil {
			client.Close()
			continue
		}
		kill := atomic.AddInt32(&p.killures, -1) >= 0
		p.wg.Add(2)
		// Requests: client -> server, unconditionally.
		go func() {
			defer p.wg.Done()
			defer server.Close()
			for {
				msg, err := client.Recv()
				if err != nil {
					return
				}
				if server.Send(msg) != nil {
					return
				}
			}
		}()
		// Responses: server -> client, killed after N frames on a doomed
		// connection.
		go func() {
			defer p.wg.Done()
			defer client.Close()
			passed := 0
			for {
				msg, err := server.Recv()
				if err != nil {
					return
				}
				if kill && passed >= p.frames {
					client.Close()
					server.Close()
					return
				}
				if client.Send(msg) != nil {
					return
				}
				passed++
			}
		}()
	}
}

func TestFetchRetriesAfterConnectionFailure(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 4, 2)
	// The proxy kills its first connection after 3 response frames.
	proxy := newFlakyProxy(t, fx.addr, 1, 3)

	m, err := NewNetMerger(MergerConfig{Transport: tr, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var specs []FetchSpec
	for task := range fx.segments {
		for p := 0; p < 2; p++ {
			specs = append(specs, FetchSpec{Addr: proxy.Addr(), MapTask: task, Partition: p})
		}
	}
	got := map[string][]byte{}
	err = m.Fetch(specs, func(s FetchSpec, data []byte) error {
		got[fmt.Sprintf("%s/%d", s.MapTask, s.Partition)] = data
		return nil
	})
	if err != nil {
		t.Fatalf("fetch with retries failed: %v", err)
	}
	for task, parts := range fx.segments {
		for p, want := range parts {
			if !bytes.Equal(got[fmt.Sprintf("%s/%d", task, p)], want) {
				t.Fatalf("segment %s/%d corrupted after retry", task, p)
			}
		}
	}
	st := m.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded despite killed connection: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("errors surfaced despite retry budget: %+v", st)
	}
}

func TestFetchRetriesExhausted(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 2, 1)
	// Kill every connection immediately: retries cannot succeed.
	proxy := newFlakyProxy(t, fx.addr, 1<<30, 0)

	m, err := NewNetMerger(MergerConfig{Transport: tr, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var specs []FetchSpec
	for task := range fx.segments {
		specs = append(specs, FetchSpec{Addr: proxy.Addr(), MapTask: task, Partition: 0})
	}
	err = m.Fetch(specs, func(FetchSpec, []byte) error { return nil })
	if err == nil {
		t.Fatal("fetch succeeded through a connection-killing proxy")
	}
	if st := m.Stats(); st.Retries == 0 {
		t.Fatalf("no retries attempted: %+v", st)
	}
}

func TestZeroRetriesFailsFast(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 1, 1)
	proxy := newFlakyProxy(t, fx.addr, 1, 0)

	m, _ := NewNetMerger(MergerConfig{Transport: tr}) // MaxRetries = 0
	defer m.Close()
	err := m.Fetch([]FetchSpec{{Addr: proxy.Addr(), MapTask: "m-00000", Partition: 0}},
		func(FetchSpec, []byte) error { return nil })
	if err == nil {
		t.Fatal("zero-retry fetch succeeded through killed connection")
	}
	if st := m.Stats(); st.Retries != 0 {
		t.Fatalf("retried despite MaxRetries=0: %+v", st)
	}
}

func TestMergerConfigRejectsNegativeRetries(t *testing.T) {
	if _, err := NewNetMerger(MergerConfig{Transport: transport.NewTCP(), MaxRetries: -1}); err == nil {
		t.Fatal("negative retries accepted")
	}
}

func TestSupplierCloseFailsInFlightFetch(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 2, 1)
	m, _ := NewNetMerger(MergerConfig{Transport: tr})
	defer m.Close()

	// Prime the connection with one successful fetch.
	err := m.Fetch([]FetchSpec{{Addr: fx.addr, MapTask: "m-00000", Partition: 0}},
		func(FetchSpec, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Kill the supplier; the next fetch must error out, not hang.
	fx.supplier.Close()
	done := make(chan error, 1)
	go func() {
		done <- m.Fetch([]FetchSpec{{Addr: fx.addr, MapTask: "m-00001", Partition: 0}},
			func(FetchSpec, []byte) error { return nil })
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("fetch against closed supplier succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch against closed supplier hung")
	}
}

func TestSupplierServesAcrossManyConnections(t *testing.T) {
	tr := transport.NewTCP()
	fx := newSupplierFixture(t, tr, "127.0.0.1:0", 3, 2)
	// Several independent mergers (as if from different nodes) hit the
	// same supplier concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := NewNetMerger(MergerConfig{Transport: tr})
			if err != nil {
				errs <- err
				return
			}
			defer m.Close()
			var specs []FetchSpec
			for task := range fx.segments {
				for p := 0; p < 2; p++ {
					specs = append(specs, FetchSpec{Addr: fx.addr, MapTask: task, Partition: p})
				}
			}
			n := 0
			if err := m.Fetch(specs, func(s FetchSpec, data []byte) error {
				if !bytes.Equal(data, fx.segments[s.MapTask][s.Partition]) {
					return fmt.Errorf("corrupt segment")
				}
				n++
				return nil
			}); err != nil {
				errs <- err
				return
			}
			if n != len(specs) {
				errs <- fmt.Errorf("got %d of %d", n, len(specs))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
