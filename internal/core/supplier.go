package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/mof"
	"repro/internal/transport"
)

// LookupFunc resolves a map task id to its MOF files on local disk.
type LookupFunc func(mapTask string) (dataPath, indexPath string, err error)

// SupplierConfig configures a MOFSupplier.
type SupplierConfig struct {
	// Transport is the network backend (TCP or RDMA).
	Transport transport.Transport
	// Addr is the listen address.
	Addr string
	// BufferSize is the transport buffer size for response chunks.
	BufferSize int
	// DataCacheBytes sizes the DataCache.
	DataCacheBytes int64
	// PrefetchBatch is the number of requests served per group turn of the
	// round-robin disk prefetch server.
	PrefetchBatch int
	// XmitWorkers is the number of asynchronous transmission workers.
	XmitWorkers int
	// IndexCacheEntries sizes the IndexCache.
	IndexCacheEntries int
	// FileCacheEntries caps the open-file-handle cache over MOF data files.
	FileCacheEntries int
	// Flow enables admission control and weighted fair scheduling: fetch
	// requests are charged to a byte-budgeted ledger (over budget they
	// queue, over the hard limit they are shed with a retry-after hint)
	// and the prefetch server schedules tenants by weighted deficit
	// round-robin. Nil keeps the paper's unmanaged pipeline.
	Flow *flow.Config
	// Tenant maps a map-task id to its tenant (job) for fair scheduling;
	// nil places all traffic in one tenant. Ignored when Flow is nil.
	Tenant flow.TenantFunc
}

func (c *SupplierConfig) applyDefaults() error {
	if c.Transport == nil {
		return errors.New("core: supplier needs a transport")
	}
	if c.Addr == "" {
		return errors.New("core: supplier needs an address")
	}
	// Every numeric knob follows one rule: zero means default, negative is
	// rejected by name.
	if c.BufferSize < 0 {
		return fmt.Errorf("core: supplier BufferSize %d must not be negative", c.BufferSize)
	}
	if c.DataCacheBytes < 0 {
		return fmt.Errorf("core: supplier DataCacheBytes %d must not be negative", c.DataCacheBytes)
	}
	if c.PrefetchBatch < 0 {
		return fmt.Errorf("core: supplier PrefetchBatch %d must not be negative", c.PrefetchBatch)
	}
	if c.XmitWorkers < 0 {
		return fmt.Errorf("core: supplier XmitWorkers %d must not be negative", c.XmitWorkers)
	}
	if c.IndexCacheEntries < 0 {
		return fmt.Errorf("core: supplier IndexCacheEntries %d must not be negative", c.IndexCacheEntries)
	}
	if c.FileCacheEntries < 0 {
		return fmt.Errorf("core: supplier FileCacheEntries %d must not be negative", c.FileCacheEntries)
	}
	if c.BufferSize == 0 {
		c.BufferSize = transport.DefaultBufferSize
	}
	if c.DataCacheBytes == 0 {
		c.DataCacheBytes = 64 << 20
	}
	if c.PrefetchBatch == 0 {
		c.PrefetchBatch = 4
	}
	if c.XmitWorkers == 0 {
		c.XmitWorkers = 2
	}
	if c.IndexCacheEntries == 0 {
		c.IndexCacheEntries = 256
	}
	if c.FileCacheEntries == 0 {
		c.FileCacheEntries = 128
	}
	if c.Flow != nil {
		// Copy before defaulting so a shared Config literal isn't mutated.
		fc := *c.Flow
		if err := fc.ApplyDefaults(); err != nil {
			return err
		}
		c.Flow = &fc
	}
	return nil
}

// SupplierStats counts a MOFSupplier's work.
type SupplierStats struct {
	Requests    int64
	BytesServed int64
	DiskReads   int64
	CacheHits   int64
	GroupTurns  int64
	Errors      int64
	DrainSheds  int64 // requests rejected because the supplier is draining
	Cancels     int64 // CANCEL frames received (merger withdrew a hedged fetch)
}

// supplierReq is one resolved fetch request in flight through the pipeline.
type supplierReq struct {
	conn  *supplierConn
	id    uint64
	task  string
	part  int
	data  string // MOF data path
	entry mof.IndexEntry
	// charge is the byte charge held against the admission ledger for
	// this request's resident life; zero when flow control is off (or
	// the request was shed before admission).
	charge int64
}

// supplierReqPool recycles request records between fetches; without it
// every fetch allocates one. A record goes back to the pool at whichever
// point ends its trip through the pipeline (transmit done, stage failure,
// shutdown); records dropped in channels at shutdown are simply collected.
var supplierReqPool = sync.Pool{New: func() any { return new(supplierReq) }}

func putSupplierReq(r *supplierReq) {
	*r = supplierReq{} // drop conn/string references before pooling
	supplierReqPool.Put(r)
}

// supplierConn serializes response writes to one client connection. The
// header scratch is reused under sendMu so chunking a segment performs no
// allocation: headers come from hdr, payloads are sliced straight out of
// the cached segment, and SendVec gathers the two on the wire.
type supplierConn struct {
	conn   transport.Conn
	sendMu sync.Mutex
	hdr    [sizedChunkHeaderLen]byte // sendMu-guarded header scratch
	vecs   [][]byte                  // sendMu-guarded gather scratch

	// Fetch ids withdrawn by merger CANCEL frames, consumed at the next
	// pipeline checkpoint (stage, transmit entry, or between chunks).
	// nCancelled mirrors len(cancelled) so the per-chunk transmit check
	// costs one atomic load — not a lock — while no cancel is pending.
	cancelMu   sync.Mutex
	cancelled  map[uint64]struct{}
	nCancelled atomic.Int64
}

// maxCancelledIDs caps the per-connection cancelled-id set. A merger
// cancelling faster than its fetches terminate is misbehaving; past the
// cap the set is cleared — serving an already-decided fetch costs only
// duplicate bytes, never correctness.
const maxCancelledIDs = 1024

// markCancelled records a merger's withdrawal of fetch id. The mark
// outlives a request that already terminated (cancel raced the last
// chunk) until the cap clears it — bounded garbage, not a leak.
func (sc *supplierConn) markCancelled(id uint64) {
	sc.cancelMu.Lock()
	if sc.cancelled == nil {
		sc.cancelled = make(map[uint64]struct{})
	} else if len(sc.cancelled) >= maxCancelledIDs {
		clear(sc.cancelled)
	}
	sc.cancelled[id] = struct{}{}
	sc.nCancelled.Store(int64(len(sc.cancelled)))
	sc.cancelMu.Unlock()
}

// takeCancelled reports whether fetch id was withdrawn, consuming the
// mark on a hit.
func (sc *supplierConn) takeCancelled(id uint64) bool {
	if sc.nCancelled.Load() == 0 {
		return false
	}
	sc.cancelMu.Lock()
	_, ok := sc.cancelled[id]
	if ok {
		delete(sc.cancelled, id)
		sc.nCancelled.Store(int64(len(sc.cancelled)))
	}
	sc.cancelMu.Unlock()
	return ok
}

// isCancelled reports whether fetch id is withdrawn without consuming
// the mark — the between-chunks transmit check, where the consuming
// cleanup belongs to the caller's abort path.
func (sc *supplierConn) isCancelled(id uint64) bool {
	if sc.nCancelled.Load() == 0 {
		return false
	}
	sc.cancelMu.Lock()
	_, ok := sc.cancelled[id]
	sc.cancelMu.Unlock()
	return ok
}

// errXmitCancelled reports a transmission aborted between chunks by a
// CANCEL frame. Internal to the transmit path — the merger sees a
// truncated stream followed by the terminal cancelled ack.
var errXmitCancelled = errors.New("transmit cancelled")

func (sc *supplierConn) sendChunks(id uint64, data []byte, bufSize int) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	rest := data
	first := true
	for {
		if !first && sc.isCancelled(id) {
			// A CANCEL landed mid-stream: stop here. The merger already
			// retired this id, so a truncated stream is fine — the
			// caller's terminal ack is what closes its tracking.
			return errXmitCancelled
		}
		chunk := rest
		if len(chunk) > bufSize {
			chunk = chunk[:bufSize]
		}
		rest = rest[len(chunk):]
		var flags byte
		if len(rest) == 0 {
			flags |= flagLast
		}
		if first {
			// The first chunk announces the segment's total size so the
			// merger can allocate its reassembly buffer exactly once.
			flags |= flagSized
			first = false
		}
		hdr := appendChunkHeader(sc.hdr[:0], id, flags, int64(len(data)), chunk)
		sc.vecs = append(sc.vecs[:0], hdr, chunk)
		if err := transport.SendVec(sc.conn, sc.vecs...); err != nil {
			return err
		}
		if len(rest) == 0 {
			return nil
		}
	}
}

func (sc *supplierConn) sendError(id uint64, ferr error) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	msg := encodeDataChunk(dataChunk{ID: id, Last: true, Failed: true, Payload: []byte(ferr.Error())})
	return sc.conn.Send(msg)
}

// sendShed rejects one request with a retry-after hint. The frame is
// built in the connection's header scratch: shedding under overload —
// exactly when memory is scarce — performs no allocation.
func (sc *supplierConn) sendShed(id uint64, retryAfter time.Duration) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	return sc.conn.Send(appendShed(sc.hdr[:0], id, retryAfter))
}

// sendCredit grants flow-control credits to the connection's merger.
func (sc *supplierConn) sendCredit(credits uint32) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	return sc.conn.Send(appendCredit(sc.hdr[:0], credits))
}

// MOFSupplier is JBS's server component (Section III-B): it replaces the
// HttpServlets with a native pipeline — requests are grouped by target MOF
// and ordered by segment offset, groups are served round-robin by the disk
// prefetch server into the DataCache, and staged segments are transmitted
// by asynchronous workers. Disk reads and network sends overlap instead of
// serializing per request.
type MOFSupplier struct {
	cfg    SupplierConfig
	lookup LookupFunc

	lis    transport.Listener
	icache *mof.IndexCache
	dcache *DataCache
	fcache *mof.FileCache
	pool   *bufpool.Pool

	reqCh  chan *supplierReq
	xmitCh chan *supplierReq

	done chan struct{}
	wg   sync.WaitGroup

	connMu sync.Mutex
	conns  map[transport.Conn]*supplierConn

	// Flow control plane; all nil/zero when cfg.Flow is nil.
	ledger     *flow.Ledger
	drr        *flow.DRR
	unregister func()

	// Graceful drain: draining latches once Drain is called; inflight
	// counts requests inside the pipeline (admitted but not yet finished),
	// and the last one out closes drainCh. drainMu guards drainCh and
	// drainStart.
	draining   atomic.Bool
	inflight   atomic.Int64
	drainMu    sync.Mutex
	drainCh    chan struct{}
	drainStart time.Time

	requests    atomic.Int64
	bytesServed atomic.Int64
	diskReads   atomic.Int64
	cacheHits   atomic.Int64
	groupTurns  atomic.Int64
	errCount    atomic.Int64
	drainSheds  atomic.Int64
	cancels     atomic.Int64

	closeOnce sync.Once
}

// NewMOFSupplier starts a supplier serving the MOFs resolved by lookup.
func NewMOFSupplier(cfg SupplierConfig, lookup LookupFunc) (*MOFSupplier, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if lookup == nil {
		return nil, errors.New("core: supplier needs a lookup function")
	}
	lis, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("core: supplier listen: %w", err)
	}
	s := &MOFSupplier{
		cfg:    cfg,
		lookup: lookup,
		lis:    lis,
		icache: mof.NewIndexCache(cfg.IndexCacheEntries),
		dcache: NewDataCache(cfg.DataCacheBytes),
		fcache: mof.NewFileCache(cfg.FileCacheEntries),
		pool:   bufpool.Default(),
		reqCh:  make(chan *supplierReq, 1024),
		xmitCh: make(chan *supplierReq, 256),
		done:   make(chan struct{}),
		conns:  make(map[transport.Conn]*supplierConn),
	}
	if cfg.Flow != nil {
		s.ledger = flow.NewLedger(*cfg.Flow)
		s.drr = flow.NewDRR(cfg.Flow.Quantum, cfg.Flow.Weights)
		s.unregister = flow.Register(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.wg.Add(1)
	go s.prefetchLoop()
	for i := 0; i < cfg.XmitWorkers; i++ {
		s.wg.Add(1)
		go s.xmitLoop()
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *MOFSupplier) Addr() string { return s.lis.Addr() }

// Stats snapshots the supplier's counters.
func (s *MOFSupplier) Stats() SupplierStats {
	return SupplierStats{
		Requests:    s.requests.Load(),
		BytesServed: s.bytesServed.Load(),
		DiskReads:   s.diskReads.Load(),
		CacheHits:   s.cacheHits.Load(),
		GroupTurns:  s.groupTurns.Load(),
		Errors:      s.errCount.Load(),
		DrainSheds:  s.drainSheds.Load(),
		Cancels:     s.cancels.Load(),
	}
}

// CacheStats exposes the DataCache counters.
func (s *MOFSupplier) CacheStats() (hits, misses, evictions int64) {
	return s.dcache.Stats()
}

// FlowState snapshots the supplier's control-plane state (admission
// ledger and per-tenant queues) for the /debug/jbs/flow endpoint.
func (s *MOFSupplier) FlowState() flow.State {
	st := flow.State{Name: "supplier " + s.Addr()}
	if s.ledger != nil {
		ls := s.ledger.State()
		st.Ledger = &ls
	}
	if s.drr != nil {
		st.Tenants = s.drr.Occupancy()
	}
	return st
}

// tenantOf maps a map task to its scheduling tenant.
func (s *MOFSupplier) tenantOf(task string) string {
	if s.cfg.Tenant == nil {
		return ""
	}
	return s.cfg.Tenant(task)
}

// releaseCharge returns a request's admitted bytes to the ledger at
// whichever point ends its resident life. When the release recovers the
// ledger from a shedding episode, the supplier broadcasts one credit to
// every connected merger — the cue that capacity is back.
func (s *MOFSupplier) releaseCharge(r *supplierReq) {
	if s.ledger == nil || r.charge == 0 {
		return
	}
	if s.ledger.Release(r.charge) {
		s.grantCredits()
	}
}

// finish ends a request's trip through the pipeline at whichever point
// terminates it (transmit done, stage failure, shutdown): the admission
// charge is released, the record recycled, and the pipeline occupancy
// retired — the last occupant out completes a pending drain.
func (s *MOFSupplier) finish(r *supplierReq) {
	s.releaseCharge(r)
	putSupplierReq(r)
	s.decInflight()
}

// decInflight retires one pipeline occupant. Under a drain the last one
// out signals drain completion.
func (s *MOFSupplier) decInflight() {
	if s.inflight.Add(-1) == 0 && s.draining.Load() {
		s.drainMu.Lock()
		if s.drainCh != nil {
			s.closeDrainLocked()
		}
		s.drainMu.Unlock()
	}
}

// closeDrainLocked marks the drain complete (idempotently). The caller
// holds drainMu and has observed inflight at zero with the drain latch
// set.
func (s *MOFSupplier) closeDrainLocked() {
	select {
	case <-s.drainCh:
	default:
		close(s.drainCh)
		supDrainState.Add(-1)
		supDrainWait.Observe(time.Since(s.drainStart).Nanoseconds())
	}
}

// drainRetryAfter is the retry-after hint carried on drain sheds when
// flow control is off; with flow on the configured RetryAfter is used.
// The hint only has to outlive the registry's ownership handoff from the
// merger's point of view — shed retries consume no retry budget, so a
// too-short hint costs extra round trips, never a lost fetch.
const drainRetryAfter = 2 * time.Millisecond

// shedRetryAfter is the hint attached to shed responses.
func (s *MOFSupplier) shedRetryAfter() time.Duration {
	if s.cfg.Flow != nil {
		return s.cfg.Flow.RetryAfter
	}
	return drainRetryAfter
}

// Drain puts the supplier into graceful-shutdown mode and blocks until
// the pipeline is empty (or ctx expires). A draining supplier sheds
// every new fetch request — reusing the flow-control SHED frame, so
// mergers park the fetch, re-resolve its owner, and retry against the
// peer that took over this supplier's shards — while requests already
// admitted run to completion. Drain is idempotent: concurrent and
// repeated calls wait on the same completion. With zero inflight
// requests it returns immediately. The caller typically hands shard
// ownership to a peer (registry drain) before calling Drain, then
// Closes the supplier once Drain returns.
func (s *MOFSupplier) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if s.drainCh == nil {
		s.drainCh = make(chan struct{})
		s.drainStart = time.Now()
		s.draining.Store(true)
		if s.ledger != nil {
			s.ledger.SetDraining(true)
		}
		supDrains.Inc()
		supDrainState.Add(1)
		if s.inflight.Load() == 0 {
			s.closeDrainLocked()
		}
	}
	ch := s.drainCh
	s.drainMu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.done:
		// Close raced the drain; if the pipeline emptied first the drain
		// still counts as complete.
		select {
		case <-ch:
			return nil
		default:
		}
		return errors.New("core: supplier closed while draining")
	}
}

// Draining reports whether Drain has been called.
func (s *MOFSupplier) Draining() bool { return s.draining.Load() }

// Inflight returns the number of fetch requests currently inside the
// pipeline (admitted but not yet transmitted or failed).
func (s *MOFSupplier) Inflight() int64 { return s.inflight.Load() }

// grantCredits sends one flow-control credit to every connected client.
// The connection list is snapshotted under connMu and the sends happen
// outside it, so a slow client never stalls the supplier's lock.
func (s *MOFSupplier) grantCredits() {
	s.connMu.Lock()
	scs := make([]*supplierConn, 0, len(s.conns))
	for _, sc := range s.conns {
		scs = append(scs, sc)
	}
	s.connMu.Unlock()
	for _, sc := range scs {
		// A failed credit send is not an error: the connection is dying
		// anyway, and its connLoop will reap it.
		_ = sc.sendCredit(1)
	}
}

// Close stops the supplier and its connections, drains the DataCache back
// to the buffer pool, and closes the cached file handles.
func (s *MOFSupplier) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.lis.Close()
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		if s.unregister != nil {
			s.unregister()
		}
	})
	s.wg.Wait()
	s.dcache.Drain()
	return s.fcache.Close()
}

func (s *MOFSupplier) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		sc := &supplierConn{conn: conn}
		s.connMu.Lock()
		s.conns[conn] = sc
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.connLoop(sc)
	}
}

// connLoop reads and resolves fetch requests from one client.
func (s *MOFSupplier) connLoop(sc *supplierConn) {
	defer s.wg.Done()
	conn := sc.conn
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	intern := make(map[string]string) // task names repeat across requests
	for {
		l, err := transport.RecvBuf(conn)
		if err != nil {
			return
		}
		if b := l.Bytes(); len(b) > 0 && b[0] == msgCancel {
			// A hedging merger withdrawing a fetch whose race is decided.
			// Handled here, ahead of the request decoder (which treats
			// any non-request frame as a protocol violation).
			id, cerr := decodeCancel(b)
			l.Release()
			if cerr != nil {
				if errors.Is(cerr, ErrCorruptFrame) {
					supCorruptFrames.Inc()
				}
				s.errCount.Add(1)
				supErrors.Inc()
				return // protocol violation: drop the connection
			}
			sc.markCancelled(id)
			s.cancels.Add(1)
			supCancels.Inc()
			continue
		}
		req, err := decodeFetchRequestInterned(l.Bytes(), intern)
		l.Release() // the decoder copies (or interns) what it keeps
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				supCorruptFrames.Inc()
			}
			s.errCount.Add(1)
			supErrors.Inc()
			return // protocol violation: drop the connection
		}
		s.requests.Add(1)
		supRequests.Inc()
		resolved, rerr := s.resolve(sc, req)
		if rerr != nil {
			s.errCount.Add(1)
			supErrors.Inc()
			if serr := sc.sendError(req.ID, rerr); serr != nil {
				return
			}
			continue
		}
		// Occupancy is claimed before the drain check: Drain's store of
		// the latch and its read of inflight are both sequentially
		// consistent atomics, so either this request sees the latch (and
		// sheds) or Drain sees the occupancy (and waits for it). No
		// request can slip into the pipeline unseen by a drain.
		s.inflight.Add(1)
		if s.draining.Load() {
			s.drainSheds.Add(1)
			supDrainSheds.Inc()
			s.decInflight()
			putSupplierReq(resolved)
			if serr := sc.sendShed(req.ID, s.shedRetryAfter()); serr != nil {
				return
			}
			continue
		}
		if s.ledger != nil {
			// Admission: charge the segment's resident bytes before the
			// request enters the pipeline. A shed charges nothing — the
			// client backs off and retries; the connection stays up.
			if s.ledger.Admit(resolved.entry.Length) == flow.Shed {
				s.decInflight()
				putSupplierReq(resolved)
				if serr := sc.sendShed(req.ID, s.cfg.Flow.RetryAfter); serr != nil {
					return
				}
				continue
			}
			resolved.charge = resolved.entry.Length
		}
		select {
		case s.reqCh <- resolved:
			supQueueDepth.Add(1)
		case <-s.done:
			s.finish(resolved)
			return
		}
	}
}

// resolve locates the requested segment via the IndexCache.
func (s *MOFSupplier) resolve(sc *supplierConn, req fetchRequest) (*supplierReq, error) {
	dataPath, indexPath, err := s.lookup(req.MapTask)
	if err != nil {
		return nil, fmt.Errorf("unknown MOF %s: %w", req.MapTask, err)
	}
	ix, err := s.icache.Get(indexPath)
	if err != nil {
		return nil, fmt.Errorf("index for %s: %w", req.MapTask, err)
	}
	entry, err := ix.Entry(int(req.Partition))
	if err != nil {
		return nil, fmt.Errorf("partition %d of %s: %w", req.Partition, req.MapTask, err)
	}
	r := supplierReqPool.Get().(*supplierReq)
	*r = supplierReq{
		conn:  sc,
		id:    req.ID,
		task:  req.MapTask,
		part:  int(req.Partition),
		data:  dataPath,
		entry: entry,
	}
	return r, nil
}

// mofGroup is the per-MOF request group: requests ordered by segment
// offset so a batch reads the file near-sequentially. Served requests are
// advanced past with head (instead of re-slicing) so a drained group can
// be recycled with its backing array intact.
type mofGroup struct {
	task   string
	tenant string // scheduling tenant, fixed at group creation
	reqs   []*supplierReq
	head   int // reqs[:head] have been served
}

func (g *mofGroup) pending() int { return len(g.reqs) - g.head }

func (g *mofGroup) insert(r *supplierReq) {
	reqs := g.reqs[g.head:]
	i := g.head + sort.Search(len(reqs), func(i int) bool {
		return reqs[i].entry.Offset > r.entry.Offset
	})
	g.reqs = append(g.reqs, nil)
	copy(g.reqs[i+1:], g.reqs[i:])
	g.reqs[i] = r
}

// reset clears the group for reuse, dropping request references but
// keeping the slice capacity.
func (g *mofGroup) reset() {
	for i := range g.reqs {
		g.reqs[i] = nil
	}
	g.reqs = g.reqs[:0]
	g.head = 0
	g.task = ""
	g.tenant = ""
}

// tenantRing is one tenant's round-robin ring of MOF group keys inside
// the prefetch scheduler.
type tenantRing struct {
	keys []string
	next int
}

// prefetchLoop is the disk prefetch server: it maintains the per-MOF
// groups and serves them in batches, staging each batch in the DataCache
// and handing staged requests to the transmit workers. Without flow
// control every group lives in one ring served strictly round-robin
// (the paper's policy); with flow control groups are ringed per tenant
// and the weighted deficit round-robin scheduler picks which tenant's
// ring advances, so one heavy job cannot starve the others.
func (s *MOFSupplier) prefetchLoop() {
	defer s.wg.Done()
	groups := make(map[string]*mofGroup)  // task -> group
	rings := make(map[string]*tenantRing) // tenant -> its group ring
	var free []*mofGroup                  // drained groups, recycled
	singleRing := &tenantRing{}           // the one ring when flow is off
	if s.drr == nil {
		rings[""] = singleRing
	}

	add := func(r *supplierReq) {
		g, ok := groups[r.task]
		if !ok {
			if n := len(free); n > 0 {
				g, free = free[n-1], free[:n-1]
			} else {
				g = &mofGroup{}
			}
			g.task = r.task
			g.tenant = s.tenantOf(r.task)
			groups[r.task] = g
			tr := rings[g.tenant]
			if tr == nil {
				tr = &tenantRing{}
				rings[g.tenant] = tr
			}
			tr.keys = append(tr.keys, r.task)
		}
		g.insert(r)
		if s.drr != nil {
			s.drr.Add(g.tenant, r.entry.Length)
		}
	}

	for {
		if len(groups) == 0 {
			// Idle: block for work.
			select {
			case r, ok := <-s.reqCh:
				if !ok {
					return
				}
				supQueueDepth.Add(-1)
				add(r)
			case <-s.done:
				return
			}
			continue
		}
		// Drain newly arrived requests without blocking, so grouping sees
		// bursts together.
		for {
			select {
			case r := <-s.reqCh:
				supQueueDepth.Add(-1)
				add(r)
				continue
			default:
			}
			break
		}
		// Pick the tenant whose ring advances this turn.
		tenant := ""
		if s.drr != nil {
			tn, ok := s.drr.Next()
			if !ok {
				// Groups exist but no tenant is active in the DRR. This
				// should be unreachable (Add charges at least one unit per
				// request, so a tenant stays active while requests pend),
				// but if accounting ever drifts, block for the next
				// arrival — which re-activates its tenant — instead of
				// busy-spinning a core on the non-blocking drain above.
				select {
				case r, ok := <-s.reqCh:
					if !ok {
						return
					}
					supQueueDepth.Add(-1)
					add(r)
				case <-s.done:
					return
				}
				continue
			}
			tenant = tn
		}
		tr := rings[tenant]
		if tr == nil || len(tr.keys) == 0 {
			continue // defensive: scheduler/ring drift should not happen
		}
		// Serve one batch from the tenant's next group in ring order.
		if tr.next >= len(tr.keys) {
			tr.next = 0
		}
		key := tr.keys[tr.next]
		g := groups[key]
		batch := s.cfg.PrefetchBatch
		if batch > g.pending() {
			batch = g.pending()
		}
		taken := g.reqs[g.head : g.head+batch]
		g.head += batch
		drained := g.pending() == 0
		if drained {
			delete(groups, key)
			tr.keys = append(tr.keys[:tr.next], tr.keys[tr.next+1:]...)
			if len(tr.keys) == 0 && s.drr != nil {
				delete(rings, tenant)
			}
		} else {
			tr.next++
		}
		// Charge the DRR what Add charged on arrival: flow.Cost floors
		// zero-length segments at one unit, keeping the tenant active
		// exactly while it has pending requests.
		var batchCost int64
		for _, r := range taken {
			batchCost += flow.Cost(r.entry.Length)
		}
		s.groupTurns.Add(1)
		supGroupTurns.Inc()
		for _, r := range taken {
			s.stage(r)
		}
		if s.drr != nil {
			s.drr.Serve(tenant, batchCost)
		}
		if drained {
			// taken aliased g.reqs, so recycle only after staging.
			g.reset()
			free = append(free, g)
		}
	}
}

// errFetchCancelled is the terminal ack for a fetch withdrawn by a
// CANCEL frame. The merger's pending entry is already gone; the ack's
// only job is to retire its late-chunk (duplicate byte) tracking.
var errFetchCancelled = errors.New("cancelled by merger")

// ackCancelled retires a request withdrawn by a CANCEL frame: skip the
// remaining work, send the terminal ack, and exit through finish so
// ledger and drain conservation hold. The ack is best-effort — if the
// send fails the connection is dying and the merger's conn-failure path
// cleans its tracking instead.
func (s *MOFSupplier) ackCancelled(r *supplierReq) {
	r.conn.sendError(r.id, errFetchCancelled)
	s.finish(r)
}

// stage reads one segment (or hits the DataCache) and queues transmission.
func (s *MOFSupplier) stage(r *supplierReq) {
	if r.conn.takeCancelled(r.id) {
		// Withdrawn before the disk read — the whole point of CANCEL:
		// the loser of a hedge race costs no I/O at all.
		s.ackCancelled(r)
		return
	}
	if _, ok := s.dcache.Pin(r.task, r.part); ok {
		s.cacheHits.Add(1)
	} else {
		lease, err := mof.ReadSegmentLease(s.fcache, s.pool, r.data, r.entry)
		if err != nil {
			s.errCount.Add(1)
			supErrors.Inc()
			r.conn.sendError(r.id, err)
			s.finish(r)
			return
		}
		s.diskReads.Add(1)
		s.dcache.Put(r.task, r.part, lease) // cache owns the lease now
	}
	tracer.Mark(r.task, r.part, metrics.StageStaged)
	select {
	case s.xmitCh <- r:
		supXmitDepth.Add(1)
	case <-s.done:
		s.dcache.Unpin(r.task, r.part)
		s.finish(r)
	}
}

// xmitLoop transmits staged segments asynchronously.
func (s *MOFSupplier) xmitLoop() {
	defer s.wg.Done()
	for {
		select {
		case r := <-s.xmitCh:
			if r.conn.takeCancelled(r.id) {
				// Withdrawn while staged: drop the staging pin and ack
				// without touching the wire.
				s.dcache.Unpin(r.task, r.part)
				supXmitDepth.Add(-1)
				s.ackCancelled(r)
				continue
			}
			data, ok := s.dcache.Pin(r.task, r.part)
			if !ok {
				// The staging pin guarantees residency; a miss here is a
				// logic error surfaced to the client.
				s.errCount.Add(1)
				supErrors.Inc()
				r.conn.sendError(r.id, errors.New("segment evicted while staged"))
				supXmitDepth.Add(-1)
				s.finish(r)
				continue
			}
			tracer.Mark(r.task, r.part, metrics.StageXmit)
			err := r.conn.sendChunks(r.id, data, s.cfg.BufferSize)
			s.dcache.Unpin(r.task, r.part) // xmit pin
			s.dcache.Unpin(r.task, r.part) // staging pin
			switch {
			case err == nil:
				s.bytesServed.Add(int64(len(data)))
				supBytes.Add(int64(len(data)))
			case errors.Is(err, errXmitCancelled):
				// Aborted between chunks by a CANCEL; not an error. The
				// terminal ack closes the truncated stream for the merger.
				r.conn.takeCancelled(r.id)
				r.conn.sendError(r.id, errFetchCancelled)
			default:
				s.errCount.Add(1)
				supErrors.Inc()
			}
			supXmitDepth.Add(-1)
			s.finish(r)
		case <-s.done:
			return
		}
	}
}
