package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mof"
	"repro/internal/transport"
)

// LookupFunc resolves a map task id to its MOF files on local disk.
type LookupFunc func(mapTask string) (dataPath, indexPath string, err error)

// SupplierConfig configures a MOFSupplier.
type SupplierConfig struct {
	// Transport is the network backend (TCP or RDMA).
	Transport transport.Transport
	// Addr is the listen address.
	Addr string
	// BufferSize is the transport buffer size for response chunks.
	BufferSize int
	// DataCacheBytes sizes the DataCache.
	DataCacheBytes int64
	// PrefetchBatch is the number of requests served per group turn of the
	// round-robin disk prefetch server.
	PrefetchBatch int
	// XmitWorkers is the number of asynchronous transmission workers.
	XmitWorkers int
	// IndexCacheEntries sizes the IndexCache.
	IndexCacheEntries int
}

func (c *SupplierConfig) applyDefaults() error {
	if c.Transport == nil {
		return errors.New("core: supplier needs a transport")
	}
	if c.Addr == "" {
		return errors.New("core: supplier needs an address")
	}
	if c.BufferSize == 0 {
		c.BufferSize = transport.DefaultBufferSize
	}
	if c.BufferSize < 0 {
		return fmt.Errorf("core: buffer size %d invalid", c.BufferSize)
	}
	if c.DataCacheBytes == 0 {
		c.DataCacheBytes = 64 << 20
	}
	if c.PrefetchBatch == 0 {
		c.PrefetchBatch = 4
	}
	if c.XmitWorkers == 0 {
		c.XmitWorkers = 2
	}
	if c.IndexCacheEntries == 0 {
		c.IndexCacheEntries = 256
	}
	return nil
}

// SupplierStats counts a MOFSupplier's work.
type SupplierStats struct {
	Requests    int64
	BytesServed int64
	DiskReads   int64
	CacheHits   int64
	GroupTurns  int64
	Errors      int64
}

// supplierReq is one resolved fetch request in flight through the pipeline.
type supplierReq struct {
	conn  *supplierConn
	id    uint64
	task  string
	part  int
	data  string // MOF data path
	entry mof.IndexEntry
}

// supplierConn serializes response writes to one client connection.
type supplierConn struct {
	conn   transport.Conn
	sendMu sync.Mutex
}

func (sc *supplierConn) sendChunks(id uint64, data []byte, bufSize int) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	rest := data
	for {
		chunk := rest
		if len(chunk) > bufSize {
			chunk = chunk[:bufSize]
		}
		rest = rest[len(chunk):]
		msg := encodeDataChunk(dataChunk{ID: id, Last: len(rest) == 0, Payload: chunk})
		if err := sc.conn.Send(msg); err != nil {
			return err
		}
		if len(rest) == 0 {
			return nil
		}
	}
}

func (sc *supplierConn) sendError(id uint64, ferr error) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	msg := encodeDataChunk(dataChunk{ID: id, Last: true, Failed: true, Payload: []byte(ferr.Error())})
	return sc.conn.Send(msg)
}

// MOFSupplier is JBS's server component (Section III-B): it replaces the
// HttpServlets with a native pipeline — requests are grouped by target MOF
// and ordered by segment offset, groups are served round-robin by the disk
// prefetch server into the DataCache, and staged segments are transmitted
// by asynchronous workers. Disk reads and network sends overlap instead of
// serializing per request.
type MOFSupplier struct {
	cfg    SupplierConfig
	lookup LookupFunc

	lis    transport.Listener
	icache *mof.IndexCache
	dcache *DataCache

	reqCh  chan *supplierReq
	xmitCh chan *supplierReq

	done chan struct{}
	wg   sync.WaitGroup

	connMu sync.Mutex
	conns  map[transport.Conn]struct{}

	requests    atomic.Int64
	bytesServed atomic.Int64
	diskReads   atomic.Int64
	cacheHits   atomic.Int64
	groupTurns  atomic.Int64
	errCount    atomic.Int64

	closeOnce sync.Once
}

// NewMOFSupplier starts a supplier serving the MOFs resolved by lookup.
func NewMOFSupplier(cfg SupplierConfig, lookup LookupFunc) (*MOFSupplier, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if lookup == nil {
		return nil, errors.New("core: supplier needs a lookup function")
	}
	lis, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("core: supplier listen: %w", err)
	}
	s := &MOFSupplier{
		cfg:    cfg,
		lookup: lookup,
		lis:    lis,
		icache: mof.NewIndexCache(cfg.IndexCacheEntries),
		dcache: NewDataCache(cfg.DataCacheBytes),
		reqCh:  make(chan *supplierReq, 1024),
		xmitCh: make(chan *supplierReq, 256),
		done:   make(chan struct{}),
		conns:  make(map[transport.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.wg.Add(1)
	go s.prefetchLoop()
	for i := 0; i < cfg.XmitWorkers; i++ {
		s.wg.Add(1)
		go s.xmitLoop()
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *MOFSupplier) Addr() string { return s.lis.Addr() }

// Stats snapshots the supplier's counters.
func (s *MOFSupplier) Stats() SupplierStats {
	return SupplierStats{
		Requests:    s.requests.Load(),
		BytesServed: s.bytesServed.Load(),
		DiskReads:   s.diskReads.Load(),
		CacheHits:   s.cacheHits.Load(),
		GroupTurns:  s.groupTurns.Load(),
		Errors:      s.errCount.Load(),
	}
}

// CacheStats exposes the DataCache counters.
func (s *MOFSupplier) CacheStats() (hits, misses, evictions int64) {
	return s.dcache.Stats()
}

// Close stops the supplier and its connections.
func (s *MOFSupplier) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.lis.Close()
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *MOFSupplier) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.connLoop(conn)
	}
}

// connLoop reads and resolves fetch requests from one client.
func (s *MOFSupplier) connLoop(conn transport.Conn) {
	defer s.wg.Done()
	sc := &supplierConn{conn: conn}
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		req, err := decodeFetchRequest(msg)
		if err != nil {
			s.errCount.Add(1)
			return // protocol violation: drop the connection
		}
		s.requests.Add(1)
		resolved, rerr := s.resolve(sc, req)
		if rerr != nil {
			s.errCount.Add(1)
			if serr := sc.sendError(req.ID, rerr); serr != nil {
				return
			}
			continue
		}
		select {
		case s.reqCh <- resolved:
		case <-s.done:
			return
		}
	}
}

// resolve locates the requested segment via the IndexCache.
func (s *MOFSupplier) resolve(sc *supplierConn, req fetchRequest) (*supplierReq, error) {
	dataPath, indexPath, err := s.lookup(req.MapTask)
	if err != nil {
		return nil, fmt.Errorf("unknown MOF %s: %w", req.MapTask, err)
	}
	ix, err := s.icache.Get(indexPath)
	if err != nil {
		return nil, fmt.Errorf("index for %s: %w", req.MapTask, err)
	}
	entry, err := ix.Entry(int(req.Partition))
	if err != nil {
		return nil, fmt.Errorf("partition %d of %s: %w", req.Partition, req.MapTask, err)
	}
	return &supplierReq{
		conn:  sc,
		id:    req.ID,
		task:  req.MapTask,
		part:  int(req.Partition),
		data:  dataPath,
		entry: entry,
	}, nil
}

// mofGroup is the per-MOF request group: requests ordered by segment
// offset so a batch reads the file near-sequentially.
type mofGroup struct {
	task string
	reqs []*supplierReq
}

func (g *mofGroup) insert(r *supplierReq) {
	i := sort.Search(len(g.reqs), func(i int) bool {
		return g.reqs[i].entry.Offset > r.entry.Offset
	})
	g.reqs = append(g.reqs, nil)
	copy(g.reqs[i+1:], g.reqs[i:])
	g.reqs[i] = r
}

// prefetchLoop is the disk prefetch server: it maintains the per-MOF
// groups and serves them round-robin, staging each batch in the DataCache
// and handing staged requests to the transmit workers.
func (s *MOFSupplier) prefetchLoop() {
	defer s.wg.Done()
	groups := make(map[string]*mofGroup)
	var ring []string // round-robin order of group keys
	next := 0

	add := func(r *supplierReq) {
		g, ok := groups[r.task]
		if !ok {
			g = &mofGroup{task: r.task}
			groups[r.task] = g
			ring = append(ring, r.task)
		}
		g.insert(r)
	}

	for {
		if len(groups) == 0 {
			// Idle: block for work.
			select {
			case r, ok := <-s.reqCh:
				if !ok {
					return
				}
				add(r)
			case <-s.done:
				return
			}
			continue
		}
		// Drain newly arrived requests without blocking, so grouping sees
		// bursts together.
		for {
			select {
			case r := <-s.reqCh:
				add(r)
				continue
			default:
			}
			break
		}
		// Serve one batch from the next group in round-robin order.
		if next >= len(ring) {
			next = 0
		}
		key := ring[next]
		g := groups[key]
		batch := s.cfg.PrefetchBatch
		if batch > len(g.reqs) {
			batch = len(g.reqs)
		}
		taken := g.reqs[:batch]
		g.reqs = g.reqs[batch:]
		if len(g.reqs) == 0 {
			delete(groups, key)
			ring = append(ring[:next], ring[next+1:]...)
		} else {
			next++
		}
		s.groupTurns.Add(1)
		for _, r := range taken {
			s.stage(r)
		}
	}
}

// stage reads one segment (or hits the DataCache) and queues transmission.
func (s *MOFSupplier) stage(r *supplierReq) {
	if _, ok := s.dcache.Pin(r.task, r.part); ok {
		s.cacheHits.Add(1)
	} else {
		data, err := mof.ReadSegmentBytes(r.data, r.entry)
		if err != nil {
			s.errCount.Add(1)
			r.conn.sendError(r.id, err)
			return
		}
		s.diskReads.Add(1)
		s.dcache.Put(r.task, r.part, data)
	}
	select {
	case s.xmitCh <- r:
	case <-s.done:
		s.dcache.Unpin(r.task, r.part)
	}
}

// xmitLoop transmits staged segments asynchronously.
func (s *MOFSupplier) xmitLoop() {
	defer s.wg.Done()
	for {
		select {
		case r := <-s.xmitCh:
			data, ok := s.dcache.Pin(r.task, r.part)
			if !ok {
				// The staging pin guarantees residency; a miss here is a
				// logic error surfaced to the client.
				s.errCount.Add(1)
				r.conn.sendError(r.id, errors.New("segment evicted while staged"))
				continue
			}
			err := r.conn.sendChunks(r.id, data, s.cfg.BufferSize)
			s.dcache.Unpin(r.task, r.part) // xmit pin
			s.dcache.Unpin(r.task, r.part) // staging pin
			if err == nil {
				s.bytesServed.Add(int64(len(data)))
			} else {
				s.errCount.Add(1)
			}
		case <-s.done:
			return
		}
	}
}
