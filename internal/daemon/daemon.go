// Package daemon assembles the standalone JBS processes from the
// in-process building blocks: a supplier daemon (core.MOFSupplier +
// registry registration, heartbeats, graceful drain) and a merger job
// runner (core.NetMerger addressed through the registry's ownership
// map). The cmd/jbssupplierd and cmd/jbsmergerd mains are thin flag
// wrappers around this package, so the whole multi-process lifecycle —
// register, serve, drain, hand off, exit — is testable in-process and
// reusable by the chaos harness and the multi-process bench.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/registry"
	"repro/internal/transport"
)

// DirLookup resolves map tasks against a directory of MOFs laid out as
// <dir>/<task>.data + <dir>/<task>.index — the layout every fixture
// writer and the deployment walkthrough use. Task names are confined to
// the directory: a name with a path separator or traversal element is
// rejected before it touches the filesystem.
func DirLookup(dir string) core.LookupFunc {
	return func(task string) (string, string, error) {
		if task == "" || task == "." || task == ".." ||
			strings.ContainsAny(task, `/\`) || strings.Contains(task, "..") {
			return "", "", fmt.Errorf("daemon: invalid task name %q", task)
		}
		data := filepath.Join(dir, task+".data")
		index := filepath.Join(dir, task+".index")
		if _, err := os.Stat(index); err != nil {
			return "", "", fmt.Errorf("daemon: no MOF for %s in %s: %w", task, dir, err)
		}
		return data, index, nil
	}
}

// SupplierConfig configures a supplier daemon.
type SupplierConfig struct {
	// ID is the supplier's stable registry identity. Empty derives
	// "sup-<addr>" after the listener binds.
	ID string
	// Addr is the fetch listen address (":0" for ephemeral).
	Addr string
	// RegistryAddr is the registry server to register with.
	RegistryAddr string
	// MOFDir is the directory of MOFs this supplier serves.
	MOFDir string
	// Shards restricts the advertised shards; empty advertises all.
	Shards []int
	// BufferSize, DataCacheBytes, Flow pass through to core.SupplierConfig.
	BufferSize     int
	DataCacheBytes int64
	Flow           *flow.Config
	// HeartbeatInterval paces lease renewal. Zero means 500ms. It must
	// stay comfortably under the registry's lease TTL.
	HeartbeatInterval time.Duration
	// DebugAddr, when set, is advertised to the registry as this
	// supplier's /debug/jbs address; control-plane consumers (the
	// autoscaler's collector) poll flow signals from it. The daemon
	// does not serve the endpoint itself — cmd/jbssupplierd starts the
	// debug listener and passes its bound address through here.
	DebugAddr string
	// Log, when set, receives one line per lifecycle event.
	Log func(format string, args ...any)
}

// Supplier is a running supplier daemon: a serving MOFSupplier plus its
// registry presence.
type Supplier struct {
	cfg SupplierConfig
	sup *core.MOFSupplier
	reg *registry.Client
	id  string

	hbStop    chan struct{}
	hbDone    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// StartSupplier binds the fetch listener, registers with the registry,
// and starts heartbeating. The returned Supplier is serving when
// StartSupplier returns.
func StartSupplier(cfg SupplierConfig) (*Supplier, error) {
	if cfg.RegistryAddr == "" {
		return nil, errors.New("daemon: supplier needs a registry address")
	}
	if cfg.MOFDir == "" {
		return nil, errors.New("daemon: supplier needs a MOF directory")
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	sup, err := core.NewMOFSupplier(core.SupplierConfig{
		Transport:      transport.NewTCP(),
		Addr:           cfg.Addr,
		BufferSize:     cfg.BufferSize,
		DataCacheBytes: cfg.DataCacheBytes,
		Flow:           cfg.Flow,
	}, DirLookup(cfg.MOFDir))
	if err != nil {
		return nil, err
	}
	id := cfg.ID
	if id == "" {
		id = "sup-" + sup.Addr()
	}
	d := &Supplier{
		cfg:    cfg,
		sup:    sup,
		reg:    registry.NewClient(cfg.RegistryAddr),
		id:     id,
		hbStop: make(chan struct{}),
		hbDone: make(chan struct{}),
	}
	if err := d.reg.RegisterSupplier(d.registration()); err != nil {
		sup.Close()
		d.reg.Close()
		return nil, fmt.Errorf("daemon: register %s: %w", id, err)
	}
	d.logf("daemon: supplier %s serving %s at %s (registry %s)", id, cfg.MOFDir, sup.Addr(), cfg.RegistryAddr)
	go d.heartbeatLoop()
	return d, nil
}

func (d *Supplier) logf(format string, args ...any) {
	if d.cfg.Log != nil {
		d.cfg.Log(format, args...)
	}
}

// registration is the daemon's SupplierInfo as (re)sent to the
// registry on startup and after a lease loss.
func (d *Supplier) registration() registry.SupplierInfo {
	return registry.SupplierInfo{
		ID:        d.id,
		Addr:      d.sup.Addr(),
		Shards:    d.cfg.Shards,
		DebugAddr: d.cfg.DebugAddr,
	}
}

// ID returns the daemon's registry identity.
func (d *Supplier) ID() string { return d.id }

// Addr returns the bound fetch address.
func (d *Supplier) Addr() string { return d.sup.Addr() }

// Stats exposes the underlying supplier's counters.
func (d *Supplier) Stats() core.SupplierStats { return d.sup.Stats() }

// maxHeartbeatBackoffFactor caps the failure backoff at this multiple
// of the heartbeat interval. The cap must stay small enough that a
// recovered registry sees the daemon within a few lease TTLs.
const maxHeartbeatBackoffFactor = 8

// heartbeatBackoff returns the wait before the next heartbeat attempt
// after streak consecutive failures: exponential from the heartbeat
// interval, capped at maxHeartbeatBackoffFactor times it, with equal
// jitter (half fixed, half random via rnd in [0,1)) so a recovering
// registry is not greeted by every daemon on the same tick. Pure in
// (streak, interval, rnd) — the jitter source is injected for tests.
func heartbeatBackoff(streak int, interval time.Duration, rnd float64) time.Duration {
	limit := maxHeartbeatBackoffFactor * interval
	base := interval
	for i := 1; i < streak && base < limit; i++ {
		base *= 2
	}
	if base > limit {
		base = limit
	}
	return base/2 + time.Duration(rnd*float64(base/2))
}

// heartbeatLoop renews the lease; an unknown-lease answer (expired, or
// the registry restarted) re-registers under the same identity — unless
// the daemon is draining, in which case resurrecting the registration
// would claw shards back mid-handoff. An unreachable registry backs the
// attempts off exponentially (jittered, capped) instead of logging a
// failure at every tick for as long as the outage lasts.
func (d *Supplier) heartbeatLoop() {
	defer close(d.hbDone)
	ticker := time.NewTicker(d.cfg.HeartbeatInterval)
	defer ticker.Stop()
	var (
		failStreak int
		retryAt    time.Time
	)
	for {
		select {
		case <-d.hbStop:
			return
		case now := <-ticker.C:
			if failStreak > 0 && now.Before(retryAt) {
				continue // backing off; skip this tick without dialing
			}
		}
		err := d.reg.Heartbeat(d.id)
		if err == nil {
			if failStreak > 0 {
				d.logf("daemon: %s registry reachable again (after %d failed heartbeats)", d.id, failStreak)
				failStreak = 0
			}
			continue
		}
		if errors.Is(err, registry.ErrUnknownLease) && !d.sup.Draining() {
			if rerr := d.reg.RegisterSupplier(d.registration()); rerr == nil {
				dmnReregisters.Inc()
				d.logf("daemon: %s lease was lost; re-registered", d.id)
				failStreak = 0
				continue
			} else {
				// The registry answered the heartbeat but the re-register
				// failed (restarting, or unreachable again): fall through
				// to the failure accounting below.
				err = rerr
			}
		}
		failStreak++
		dmnHeartbeatFailures.Inc()
		backoff := heartbeatBackoff(failStreak, d.cfg.HeartbeatInterval, rand.Float64())
		retryAt = time.Now().Add(backoff)
		d.logf("daemon: %s heartbeat failed (streak %d, retry in %v): %v",
			d.id, failStreak, backoff.Round(time.Millisecond), err)
	}
}

// Drain executes the graceful-shutdown handshake: hand shard ownership
// to peers (registry drain), then shed new fetches while the local
// pipeline empties (supplier drain). The lease stays alive throughout
// so the registry keeps routing around — not at — this supplier. Call
// Close afterwards to deregister and release resources.
func (d *Supplier) Drain(ctx context.Context) error {
	d.logf("daemon: %s draining (inflight %d)", d.id, d.sup.Inflight())
	if err := d.reg.Drain(d.id); err != nil {
		// The registry may be unreachable; local drain still bounds the
		// damage (new fetches shed and retry elsewhere via lease expiry).
		d.logf("daemon: %s registry drain failed: %v", d.id, err)
	}
	if err := d.sup.Drain(ctx); err != nil {
		return err
	}
	d.logf("daemon: %s drained", d.id)
	return nil
}

// Close deregisters, stops heartbeats, and shuts the supplier down. For
// a graceful exit call Drain first; Close alone is the crash-adjacent
// fast path (in-flight fetches fail over via the merger's retry path).
func (d *Supplier) Close() error {
	d.closeOnce.Do(func() {
		close(d.hbStop)
		<-d.hbDone
		if err := d.reg.Deregister(d.id); err != nil {
			d.logf("daemon: %s deregister failed: %v", d.id, err)
		}
		if err := d.reg.Close(); err != nil && d.closeErr == nil {
			d.closeErr = err
		}
		if err := d.sup.Close(); err != nil && d.closeErr == nil {
			d.closeErr = err
		}
	})
	return d.closeErr
}
