package daemon

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
)

func newTestRegistry(t *testing.T, cfg registry.ServerConfig) *registry.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := registry.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDirLookupRejectsTraversal(t *testing.T) {
	lookup := DirLookup(t.TempDir())
	for _, task := range []string{"", ".", "..", "../etc/passwd", "a/b", `a\b`, "..secret.."} {
		if _, _, err := lookup(task); err == nil {
			t.Errorf("task %q resolved outside the MOF dir", task)
		}
	}
}

func startTestSupplier(t *testing.T, reg *registry.Server, id, dir string) *Supplier {
	t.Helper()
	d, err := StartSupplier(SupplierConfig{
		ID:                id,
		RegistryAddr:      reg.Addr(),
		MOFDir:            dir,
		HeartbeatInterval: 50 * time.Millisecond,
		Log:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestSupplierDaemonLifecycle walks the full multi-process topology
// in-process: registry, two supplier daemons over one MOF directory, a
// registry-addressed merger job; then drains one supplier mid-topology
// and re-runs the job, asserting the handoff lost nothing.
func TestSupplierDaemonLifecycle(t *testing.T) {
	const tasks, parts = 4, 3
	dir := t.TempDir()
	if err := WriteFixture(dir, tasks, parts, 4096, 42); err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t, registry.ServerConfig{Shards: 8})
	a := startTestSupplier(t, reg, "sup-a", dir)
	b := startTestSupplier(t, reg, "sup-b", dir)

	job := MergerJobConfig{
		RegistryAddr: reg.Addr(),
		Tasks:        tasks,
		Parts:        parts,
		VerifyDir:    dir,
		ResolverTTL:  20 * time.Millisecond,
		Progress:     t.Logf,
	}
	st, err := RunMergerJob(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != tasks*parts || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if a.Stats().BytesServed+b.Stats().BytesServed != st.Bytes {
		t.Fatalf("supplier bytes %d+%d != merger bytes %d",
			a.Stats().BytesServed, b.Stats().BytesServed, st.Bytes)
	}

	// Drain A: ownership moves to B, then A's pipeline runs dry.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	served := b.Stats().BytesServed
	st2, err := RunMergerJob(job)
	if err != nil {
		t.Fatalf("job after drain: %v", err)
	}
	if st2.Segments != tasks*parts || st2.Errors != 0 {
		t.Fatalf("stats after drain = %+v", st2)
	}
	if b.Stats().BytesServed-served != st2.Bytes {
		t.Fatal("post-drain job not served entirely by the surviving supplier")
	}
}

// TestDrainMidJobIsLossless overlaps the drain with a running job: a
// multi-round merger job is underway when one supplier drains; every
// in-flight and future fetch must complete, rerouted to the peer.
func TestDrainMidJobIsLossless(t *testing.T) {
	const tasks, parts, rounds = 4, 3, 12
	dir := t.TempDir()
	if err := WriteFixture(dir, tasks, parts, 8192, 7); err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t, registry.ServerConfig{Shards: 8})
	a := startTestSupplier(t, reg, "sup-a", dir)
	b := startTestSupplier(t, reg, "sup-b", dir)
	_ = b

	drained := make(chan struct{})
	var once sync.Once
	job := MergerJobConfig{
		RegistryAddr: reg.Addr(),
		Tasks:        tasks,
		Parts:        parts,
		Rounds:       rounds,
		VerifyDir:    dir,
		ResolverTTL:  10 * time.Millisecond,
		MaxRetries:   8,
		Progress: func(format string, args ...any) {
			t.Logf(format, args...)
			// Kick the drain off after the first round completes, so it
			// overlaps the remaining rounds.
			once.Do(func() {
				go func() {
					defer close(drained)
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					if err := a.Drain(ctx); err != nil {
						t.Errorf("mid-job drain: %v", err)
						return
					}
					if err := a.Close(); err != nil {
						t.Errorf("mid-job close: %v", err)
					}
				}()
			})
		},
	}
	st, err := RunMergerJob(job)
	if err != nil {
		t.Fatalf("mid-drain job: %v", err)
	}
	<-drained
	if st.Segments != tasks*parts*rounds || st.Errors != 0 {
		t.Fatalf("stats = %+v, want %d segments and no errors", st, tasks*parts*rounds)
	}
}

// TestHeartbeatBackoff pins the failure-backoff shape deterministically:
// exponential growth from the heartbeat interval, equal jitter bounded
// to [base/2, base), and a hard cap at 8x the interval.
func TestHeartbeatBackoff(t *testing.T) {
	const interval = 100 * time.Millisecond
	for streak := 1; streak <= 10; streak++ {
		base := interval << (streak - 1)
		if limit := maxHeartbeatBackoffFactor * interval; base > limit {
			base = limit
		}
		lo := heartbeatBackoff(streak, interval, 0)
		hi := heartbeatBackoff(streak, interval, 0.999999)
		if lo != base/2 {
			t.Errorf("streak %d: rnd=0 backoff = %v, want %v", streak, lo, base/2)
		}
		if hi < lo || hi >= base {
			t.Errorf("streak %d: rnd~1 backoff = %v, want in [%v, %v)", streak, hi, lo, base)
		}
	}
	// Determinism: identical inputs produce identical outputs.
	if a, b := heartbeatBackoff(3, interval, 0.5), heartbeatBackoff(3, interval, 0.5); a != b {
		t.Errorf("backoff not deterministic: %v vs %v", a, b)
	}
	// The cap holds for absurd streaks (a long registry outage).
	if got, want := heartbeatBackoff(1000, interval, 0), maxHeartbeatBackoffFactor*interval/2; got != want {
		t.Errorf("streak 1000: backoff = %v, want capped %v", got, want)
	}
}

// TestHeartbeatReregistersAfterLeaseLoss pins the daemon's recovery
// from a lease collapse (GC pause, network partition): the next
// heartbeat learns the lease is gone and re-registers the same ID.
func TestHeartbeatReregistersAfterLeaseLoss(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFixture(dir, 1, 1, 1024, 1); err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t, registry.ServerConfig{
		Shards:        4,
		LeaseTTL:      120 * time.Millisecond,
		SweepInterval: 20 * time.Millisecond,
	})
	d, err := StartSupplier(SupplierConfig{
		ID:           "sup-a",
		RegistryAddr: reg.Addr(),
		MOFDir:       dir,
		// Heartbeats far slower than the TTL: every lease is lost and
		// every heartbeat must recover it.
		HeartbeatInterval: 300 * time.Millisecond,
		Log:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	reregBefore := dmnReregisters.Load()
	c := registry.NewClient(reg.Addr())
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	lost := false
	for time.Now().Before(deadline) && !recovered {
		m, err := c.FetchMap()
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Suppliers) == 0 {
			lost = true
		} else if lost {
			recovered = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !lost || !recovered {
		t.Fatalf("lease loss/recovery not observed (lost=%v recovered=%v)", lost, recovered)
	}
	if got := dmnReregisters.Load(); got <= reregBefore {
		t.Fatalf("jbs_daemon_reregister_total did not advance (%d -> %d)", reregBefore, got)
	}
	if len(d.ID()) == 0 || !strings.HasPrefix(d.ID(), "sup-") {
		t.Fatalf("id = %q", d.ID())
	}
}
