package daemon

import (
	"fmt"
	"math/rand/v2"
	"path/filepath"

	"repro/internal/mof"
)

// WriteFixture writes a tasks×parts MOF grid into dir — tasks named
// m-00000 …, one segment per partition, ~segBytes of seed-derived
// records each. The same (tasks, parts, segBytes, seed) always produces
// byte-identical MOFs, so a merger process can verify fetched segments
// against a locally regenerated (or shared-directory) reference without
// any channel back to the supplier processes. This is the shared
// fixture for the multi-process smoke test, the process-chaos harness,
// and the deployment walkthrough (via `jbsbench mof-fixture`).
func WriteFixture(dir string, tasks, parts, segBytes int, seed uint64) error {
	if tasks <= 0 || parts <= 0 {
		return fmt.Errorf("daemon: fixture needs positive tasks (%d) and parts (%d)", tasks, parts)
	}
	rng := rand.New(rand.NewPCG(seed, 0))
	const recBytes = 512
	recs := segBytes / recBytes
	if recs == 0 {
		recs = 1
	}
	for i := 0; i < tasks; i++ {
		task := fmt.Sprintf("m-%05d", i)
		w, err := mof.NewWriter(filepath.Join(dir, task+".data"), filepath.Join(dir, task+".index"), parts)
		if err != nil {
			return err
		}
		val := make([]byte, recBytes)
		for p := 0; p < parts; p++ {
			if err := w.BeginSegment(p); err != nil {
				w.Close()
				return err
			}
			for r := 0; r < recs; r++ {
				for b := range val {
					val[b] = byte(rng.Uint64())
				}
				if err := w.Append([]byte(fmt.Sprintf("%s-p%d-k%04d", task, p, r)), val); err != nil {
					w.Close()
					return err
				}
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}
