package daemon

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/mof"
	"repro/internal/registry"
	"repro/internal/transport"
)

// MergerJobConfig configures one registry-addressed shuffle job.
type MergerJobConfig struct {
	// RegistryAddr is the registry resolving shard ownership.
	RegistryAddr string
	// Tasks and Parts describe the fixture grid: map tasks m-00000 …
	// m-<Tasks-1>, partitions 0 … Parts-1, every segment fetched once
	// per round.
	Tasks, Parts int
	// Rounds repeats the full fetch grid; multi-round jobs give
	// mid-job supplier churn a window to land in.
	Rounds int
	// VerifyDir, when set, is the MOF directory to verify every fetched
	// segment against, byte for byte (the in-process reference).
	VerifyDir string
	// OutDir, when set, receives one file per segment.
	OutDir string
	// MaxRetries, ResolverTTL, Flow pass through to the merger.
	MaxRetries  int
	ResolverTTL time.Duration
	Flow        *flow.Config
	// Hedge, when set, arms the merger's speculative-fetch controller.
	// Replica sets come from the registry (ResolveReplicas), so it only
	// pays off when the registry runs with a replica count above 1 —
	// with single placement every hedge attempt finds no distinct
	// replica and falls back to plain retry.
	Hedge *flow.HedgeConfig
	// Progress, when set, receives one line per round — the hook the
	// multi-process chaos driver keys its kill timing off.
	Progress func(format string, args ...any)
}

// JobStats summarizes a completed merger job.
type JobStats struct {
	Segments  int64 // segments delivered
	Bytes     int64 // payload bytes delivered
	Retries   int64 // merger retry count (connection failures)
	Sheds     int64 // shed responses observed (drain or overload)
	Rerouted  int64 // fetches that followed an ownership handoff
	Errors    int64 // fetches that surfaced an error
	Hedges    int64 // speculative duplicate fetches launched
	HedgeWins int64 // fetches won by the speculative attempt
	DupBytes  int64 // duplicate payload bytes — the hedging cost
}

// RunMergerJob fetches the full task×partition grid for each round,
// resolving every fetch through the registry (specs carry no address),
// optionally verifying payloads against a local MOF reference. It
// returns an error on the first lost or corrupt segment — the job is
// the acceptance check for lossless supplier churn.
func RunMergerJob(cfg MergerJobConfig) (JobStats, error) {
	var st JobStats
	if cfg.RegistryAddr == "" {
		return st, fmt.Errorf("daemon: merger job needs a registry address")
	}
	if cfg.Tasks <= 0 || cfg.Parts <= 0 {
		return st, fmt.Errorf("daemon: merger job needs positive tasks (%d) and parts (%d)", cfg.Tasks, cfg.Parts)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	rc := registry.NewClient(cfg.RegistryAddr)
	defer rc.Close()
	resolver := registry.NewResolver(rc, cfg.ResolverTTL)
	mc := core.MergerConfig{
		Transport:  transport.NewTCP(),
		MaxRetries: cfg.MaxRetries,
		Flow:       cfg.Flow,
		Hedge:      cfg.Hedge,
		Resolver: func(spec core.FetchSpec) (string, error) {
			return resolver.Resolve(spec.MapTask)
		},
	}
	if cfg.Hedge != nil {
		mc.Replicas = func(spec core.FetchSpec) []string {
			set, err := resolver.ResolveReplicas(spec.MapTask)
			if err != nil {
				return nil // no replicas known: the hedge just doesn't launch
			}
			return set
		}
	}
	m, err := core.NewNetMerger(mc)
	if err != nil {
		return st, err
	}
	defer m.Close()

	var reference map[string][]byte
	if cfg.VerifyDir != "" {
		if reference, err = loadReference(cfg.VerifyDir, cfg.Tasks, cfg.Parts); err != nil {
			return st, err
		}
	}
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return st, err
		}
	}

	specs := make([]core.FetchSpec, 0, cfg.Tasks*cfg.Parts)
	for ti := 0; ti < cfg.Tasks; ti++ {
		for p := 0; p < cfg.Parts; p++ {
			specs = append(specs, core.FetchSpec{MapTask: fmt.Sprintf("m-%05d", ti), Partition: p})
		}
	}
	for round := 0; round < cfg.Rounds; round++ {
		err := m.Fetch(specs, func(spec core.FetchSpec, data []byte) error {
			if reference != nil {
				want := reference[segKey(spec.MapTask, spec.Partition)]
				if !bytes.Equal(data, want) {
					return fmt.Errorf("daemon: segment %s/%d: got %d bytes, want %d (corrupt)",
						spec.MapTask, spec.Partition, len(data), len(want))
				}
			}
			if cfg.OutDir != "" && round == 0 {
				name := filepath.Join(cfg.OutDir, segKey(spec.MapTask, spec.Partition))
				if err := os.WriteFile(name, data, 0o644); err != nil {
					return err
				}
			}
			st.Segments++
			st.Bytes += int64(len(data))
			return nil
		})
		ms := m.Stats()
		st.Retries, st.Sheds, st.Rerouted, st.Errors = ms.Retries, ms.Sheds, ms.Rerouted, ms.Errors
		st.Hedges, st.HedgeWins, st.DupBytes = ms.Hedges, ms.HedgeWins, ms.HedgeDupBytes
		if err != nil {
			return st, fmt.Errorf("daemon: round %d: %w", round, err)
		}
		if cfg.Progress != nil {
			cfg.Progress("round %d ok (%d segments, %d bytes, %d sheds, %d rerouted)",
				round, st.Segments, st.Bytes, st.Sheds, st.Rerouted)
		}
	}
	return st, nil
}

func segKey(task string, part int) string { return fmt.Sprintf("%s.p%05d", task, part) }

// loadReference reads every segment of the fixture grid from disk.
func loadReference(dir string, tasks, parts int) (map[string][]byte, error) {
	ref := make(map[string][]byte, tasks*parts)
	for ti := 0; ti < tasks; ti++ {
		task := fmt.Sprintf("m-%05d", ti)
		dataPath := filepath.Join(dir, task+".data")
		ix, err := mof.ReadIndex(filepath.Join(dir, task+".index"))
		if err != nil {
			return nil, fmt.Errorf("daemon: verify reference: %w", err)
		}
		for p := 0; p < parts; p++ {
			e, err := ix.Entry(p)
			if err != nil {
				return nil, err
			}
			seg, err := mof.ReadSegmentBytes(dataPath, e)
			if err != nil {
				return nil, err
			}
			ref[segKey(task, p)] = seg
		}
	}
	return ref, nil
}
