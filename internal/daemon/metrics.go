package daemon

import "repro/internal/metrics"

// Registry handles for the daemon lifecycle. All of this is
// control-plane traffic (heartbeats, lease recovery); none of it is on
// the fetch hot path.
var (
	dmnReregisters = metrics.Default().Counter("jbs_daemon_reregister_total", "ops",
		"supplier lease re-registrations after the registry reported an unknown lease")
	dmnHeartbeatFailures = metrics.Default().Counter("jbs_daemon_heartbeat_failures_total", "ops",
		"heartbeat attempts that failed (registry unreachable or rejecting); attempts are paced by jittered backoff")
)
