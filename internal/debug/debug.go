// Package debug serves the opt-in /debug/jbs observability endpoints:
// the full metrics registry in Prometheus text format, the per-segment
// fetch trace dump, and the buffer pool's size-class lease accounting.
// Nothing here sits on the shuffle data path — handlers read the same
// atomics the hot path writes — so serving costs a run nothing beyond the
// HTTP traffic itself. Wired into jbsrun via the -debug flag; see
// docs/OBSERVABILITY.md.
package debug

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"repro/internal/autoscale"
	"repro/internal/bufpool"
	"repro/internal/flow"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/registry"
)

// Mux returns a mux serving the /debug/jbs endpoint tree:
//
//	/debug/jbs          index of the endpoints below
//	/debug/jbs/metrics  full registry, Prometheus text exposition format
//	/debug/jbs/traces   slowest completed fetch traces
//	                    (?n=N limit, ?enable=1 / ?enable=0, ?reset=1)
//	/debug/jbs/bufpool  buffer pool size-class lease accounting
//	/debug/jbs/flow     flow control plane: ledgers, windows, tenants
//	/debug/jbs/registry discovery registry: membership, leases, shard map
//	/debug/jbs/autoscale elastic fleet controller: signals, decisions, events
func Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/jbs", handleIndex)
	mux.HandleFunc("/debug/jbs/", handleIndex)
	mux.HandleFunc("/debug/jbs/metrics", handleMetrics)
	mux.HandleFunc("/debug/jbs/traces", handleTraces)
	mux.HandleFunc("/debug/jbs/bufpool", handleBufpool)
	mux.HandleFunc("/debug/jbs/flow", handleFlow)
	mux.HandleFunc("/debug/jbs/registry", handleRegistry)
	mux.HandleFunc("/debug/jbs/autoscale", handleAutoscale)
	return mux
}

// Serve starts an HTTP server for the /debug/jbs endpoints on addr and
// returns the bound listener (addr may use port 0). The server runs until
// the listener is closed.
func Serve(addr string) (net.Listener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Mux()}
	go func() {
		// Serve returns once the listener closes; that shutdown error is
		// the expected way down, not a condition to report.
		_ = srv.Serve(lis)
	}()
	return lis, nil
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	fmt.Fprint(w, "jbs debug endpoints:\n"+
		"  /debug/jbs/metrics  full metrics registry (Prometheus text format)\n"+
		"  /debug/jbs/traces   slowest fetch traces (?n=N, ?enable=1, ?reset=1)\n"+
		"  /debug/jbs/bufpool  buffer pool size-class lease accounting\n"+
		"  /debug/jbs/flow     flow control plane: admission ledgers, AIMD windows, tenant queues\n"+
		"  /debug/jbs/registry discovery registry: supplier membership, draining flags, shard ownership\n"+
		"  /debug/jbs/autoscale elastic fleet controller: last signals, desired size, scale events\n")
	if d, ok := mapred.LastWriterDecision(); ok {
		fmt.Fprintf(w, "last writer decision: strategy=%s partitions=%d record-bytes=%d combine=%v override=%v (%s)\n",
			d.Strategy, d.Partitions, d.RecordBytes, d.Combine, d.Override, d.Reason)
	} else {
		fmt.Fprint(w, "last writer decision: none yet (no job has started)\n")
	}
	// One-line hedging summary across every in-process merger; the full
	// jbs_merger_hedge_* family lives in /debug/jbs/metrics.
	var hedges, wins, dupBytes int64
	var outstanding int
	for _, st := range flow.Snapshot() {
		hedges += st.Hedges
		wins += st.HedgeWins
		dupBytes += st.HedgeDupBytes
		outstanding += st.HedgeOutstanding
	}
	if hedges > 0 || outstanding > 0 {
		fmt.Fprintf(w, "hedged fetches: %d launched, %d wins, %d duplicate bytes, %d racing now\n",
			hedges, wins, dupBytes, outstanding)
	}
}

func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = metrics.Default().WriteText(w)
}

func handleTraces(w http.ResponseWriter, r *http.Request) {
	t := metrics.DefaultTracer()
	q := r.URL.Query()
	switch q.Get("enable") {
	case "1":
		t.Enable()
	case "0":
		t.Disable()
	}
	if q.Get("reset") == "1" {
		t.Reset()
	}
	n := 20
	if v, err := strconv.Atoi(q.Get("n")); err == nil && v > 0 {
		n = v
	}
	fmt.Fprintf(w, "tracer enabled=%v, %d completed traces in ring\n", t.Enabled(), t.Len())
	if !t.Enabled() && t.Len() == 0 {
		fmt.Fprint(w, "tracer is off: enable with ?enable=1 (or jbsrun -trace) and re-run a shuffle\n")
		return
	}
	for i, tr := range t.Slowest(n) {
		fmt.Fprintf(w, "%3d. %s\n", i+1, tr)
	}
}

func handleBufpool(w http.ResponseWriter, r *http.Request) {
	stats := bufpool.Default().ClassStats()
	var outstanding int64
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "class", "gets", "puts", "outstanding")
	for _, st := range stats {
		if st.Gets == 0 && st.Puts == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s %12d %12d %12d\n", st.Label(), st.Gets, st.Puts, st.Outstanding())
		outstanding += st.Outstanding()
	}
	fmt.Fprintf(w, "total outstanding leases: %d (nonzero at idle means a leak; see docs/PERF.md)\n", outstanding)
}

// handleFlow dumps the control-plane state of every registered flow
// participant (suppliers: admission ledger and tenant queues; mergers:
// per-node AIMD windows and shed counters) as indented JSON.
func handleFlow(w http.ResponseWriter, r *http.Request) {
	states := flow.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if len(states) == 0 {
		fmt.Fprint(w, "[]\n")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(states)
}

// handleRegistry dumps every in-process registry server's membership and
// shard-ownership state as indented JSON — epoch, shard→supplier owner
// table, and each supplier's lease (draining flag included). Empty when
// this process hosts no registry (suppliers and mergers are clients;
// point this at jbsregistryd's -debug address).
func handleRegistry(w http.ResponseWriter, r *http.Request) {
	states := registry.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if len(states) == 0 {
		fmt.Fprint(w, "[]\n")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(states)
}

// handleAutoscale dumps every in-process autoscaler's control state as
// indented JSON — the signals it last saw (live fleet, shed rate, queue
// depth, ledger pressure), the size its policies want and why, the
// instances it manages, and the recent scale-event ring. Empty when
// this process hosts no autoscaler (point this at jbsautoscalerd's
// -debug address).
func handleAutoscale(w http.ResponseWriter, r *http.Request) {
	states := autoscale.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if len(states) == 0 {
		fmt.Fprint(w, "[]\n")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(states)
}
