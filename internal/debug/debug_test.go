package debug

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/bufpool"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/registry"
)

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return string(body)
}

func TestEndpoints(t *testing.T) {
	srv := httptest.NewServer(Mux())
	defer srv.Close()

	// The index lists every endpoint.
	index := get(t, srv, "/debug/jbs")
	for _, want := range []string{"/debug/jbs/metrics", "/debug/jbs/traces", "/debug/jbs/bufpool"} {
		if !strings.Contains(index, want) {
			t.Errorf("index missing %s:\n%s", want, index)
		}
	}
	// No job has run in this test binary, so the selector feed reports
	// its empty state rather than a stale decision.
	if !strings.Contains(index, "last writer decision: none yet") {
		t.Errorf("index missing the writer-decision line:\n%s", index)
	}

	// The metrics endpoint serves the full default registry; exercising the
	// pool guarantees at least the bufpool metrics are present.
	bufpool.Default().Get(1024).Release()
	text := get(t, srv, "/debug/jbs/metrics")
	for _, want := range []string{"# HELP jbs_bufpool_gets_total", "jbs_bufpool_outstanding"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Bufpool accounting shows the class we just cycled.
	bp := get(t, srv, "/debug/jbs/bufpool")
	if !strings.Contains(bp, "1KiB") || !strings.Contains(bp, "total outstanding leases:") {
		t.Errorf("unexpected bufpool output:\n%s", bp)
	}

	// Traces: enable over HTTP, record one complete trace, dump it.
	tr := metrics.DefaultTracer()
	defer tr.Disable()
	defer tr.Reset()
	get(t, srv, "/debug/jbs/traces?enable=1&reset=1")
	if !tr.Enabled() {
		t.Fatal("?enable=1 did not enable the tracer")
	}
	tr.Mark("m-1", 0, metrics.StageEnqueued)
	tr.Mark("m-1", 0, metrics.StageDelivered)
	dump := get(t, srv, "/debug/jbs/traces?n=5")
	if !strings.Contains(dump, "m-1/0") {
		t.Errorf("trace dump missing recorded trace:\n%s", dump)
	}
}

// fakeFlowSource is a minimal flow participant for endpoint tests.
type fakeFlowSource struct{ st flow.State }

func (f fakeFlowSource) FlowState() flow.State { return f.st }

func TestFlowEndpoint(t *testing.T) {
	srv := httptest.NewServer(Mux())
	defer srv.Close()

	// With no registered participants the endpoint serves an empty list.
	if body := get(t, srv, "/debug/jbs/flow"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty flow snapshot = %q, want []", body)
	}

	src := fakeFlowSource{st: flow.State{
		Name:    "supplier test:1",
		Ledger:  &flow.LedgerState{Budget: 100, Limit: 150, Used: 42, Shedding: true},
		Tenants: []flow.TenantState{{Tenant: "jobA", Weight: 3, QueuedBytes: 7, Active: true}},
	}}
	unregister := flow.Register(src)
	defer unregister()

	body := get(t, srv, "/debug/jbs/flow")
	var states []flow.State
	if err := json.Unmarshal([]byte(body), &states); err != nil {
		t.Fatalf("flow endpoint is not JSON: %v\n%s", err, body)
	}
	if len(states) != 1 || states[0].Name != "supplier test:1" {
		t.Fatalf("unexpected snapshot: %+v", states)
	}
	if states[0].Ledger == nil || states[0].Ledger.Used != 42 || !states[0].Ledger.Shedding {
		t.Errorf("ledger state lost in transit: %+v", states[0].Ledger)
	}
	if len(states[0].Tenants) != 1 || states[0].Tenants[0].Tenant != "jobA" {
		t.Errorf("tenant state lost in transit: %+v", states[0].Tenants)
	}

	// The index mentions the endpoint.
	if index := get(t, srv, "/debug/jbs"); !strings.Contains(index, "/debug/jbs/flow") {
		t.Errorf("index missing /debug/jbs/flow:\n%s", index)
	}
}

func TestRegistryEndpoint(t *testing.T) {
	srv := httptest.NewServer(Mux())
	defer srv.Close()

	// With no registry server in-process the endpoint serves an empty
	// list (supplier and merger processes are clients, not hosts).
	if body := get(t, srv, "/debug/jbs/registry"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty registry snapshot = %q, want []", body)
	}

	reg, err := registry.NewServer(registry.ServerConfig{Addr: "127.0.0.1:0", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	c := registry.NewClient(reg.Addr())
	defer c.Close()
	if err := c.Register("sup-debug", "127.0.0.1:7501", nil); err != nil {
		t.Fatal(err)
	}

	body := get(t, srv, "/debug/jbs/registry")
	var states []registry.State
	if err := json.Unmarshal([]byte(body), &states); err != nil {
		t.Fatalf("registry endpoint is not JSON: %v\n%s", err, body)
	}
	if len(states) != 1 || states[0].Shards != 4 {
		t.Fatalf("unexpected snapshot: %+v", states)
	}
	if len(states[0].Suppliers) != 1 || states[0].Suppliers[0].ID != "sup-debug" {
		t.Errorf("supplier registration lost in transit: %+v", states[0].Suppliers)
	}
	for shard, owner := range states[0].Owners {
		if owner != "sup-debug" {
			t.Errorf("shard %d owner = %q, want sup-debug", shard, owner)
		}
	}

	if index := get(t, srv, "/debug/jbs"); !strings.Contains(index, "/debug/jbs/registry") {
		t.Errorf("index missing /debug/jbs/registry:\n%s", index)
	}
}

type fakeAutoscaleSource struct{ st autoscale.State }

func (f fakeAutoscaleSource) AutoscaleState() autoscale.State { return f.st }

func TestAutoscaleEndpoint(t *testing.T) {
	srv := httptest.NewServer(Mux())
	defer srv.Close()

	// With no autoscaler in-process the endpoint serves an empty list.
	if body := get(t, srv, "/debug/jbs/autoscale"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty autoscale snapshot = %q, want []", body)
	}

	src := fakeAutoscaleSource{st: autoscale.State{
		Name: "autoscaler", Min: 1, Max: 4,
		Live: 3, Desired: 3, ShedRate: 12.5,
		LastReason: "shed-target: shed rate 37.5/s = 12.5/supplier, target 10.0",
		Managed:    []string{"auto-1", "auto-2"},
		Events:     []autoscale.Event{{Action: "up", From: 1, To: 3, Reason: "seeded overload"}},
	}}
	unregister := autoscale.Register(src)
	defer unregister()

	body := get(t, srv, "/debug/jbs/autoscale")
	var states []autoscale.State
	if err := json.Unmarshal([]byte(body), &states); err != nil {
		t.Fatalf("autoscale endpoint is not JSON: %v\n%s", err, body)
	}
	if len(states) != 1 || states[0].Live != 3 || states[0].ShedRate != 12.5 {
		t.Fatalf("unexpected snapshot: %+v", states)
	}
	if len(states[0].Managed) != 2 || states[0].Managed[0] != "auto-1" {
		t.Errorf("managed list lost in transit: %+v", states[0].Managed)
	}
	if len(states[0].Events) != 1 || states[0].Events[0].Action != "up" || states[0].Events[0].To != 3 {
		t.Errorf("event ring lost in transit: %+v", states[0].Events)
	}

	if index := get(t, srv, "/debug/jbs"); !strings.Contains(index, "/debug/jbs/autoscale") {
		t.Errorf("index missing /debug/jbs/autoscale:\n%s", index)
	}
}
