package debug

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/metrics"
)

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return string(body)
}

func TestEndpoints(t *testing.T) {
	srv := httptest.NewServer(Mux())
	defer srv.Close()

	// The index lists every endpoint.
	index := get(t, srv, "/debug/jbs")
	for _, want := range []string{"/debug/jbs/metrics", "/debug/jbs/traces", "/debug/jbs/bufpool"} {
		if !strings.Contains(index, want) {
			t.Errorf("index missing %s:\n%s", want, index)
		}
	}

	// The metrics endpoint serves the full default registry; exercising the
	// pool guarantees at least the bufpool metrics are present.
	bufpool.Default().Get(1024).Release()
	text := get(t, srv, "/debug/jbs/metrics")
	for _, want := range []string{"# HELP jbs_bufpool_gets_total", "jbs_bufpool_outstanding"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Bufpool accounting shows the class we just cycled.
	bp := get(t, srv, "/debug/jbs/bufpool")
	if !strings.Contains(bp, "1KiB") || !strings.Contains(bp, "total outstanding leases:") {
		t.Errorf("unexpected bufpool output:\n%s", bp)
	}

	// Traces: enable over HTTP, record one complete trace, dump it.
	tr := metrics.DefaultTracer()
	defer tr.Disable()
	defer tr.Reset()
	get(t, srv, "/debug/jbs/traces?enable=1&reset=1")
	if !tr.Enabled() {
		t.Fatal("?enable=1 did not enable the tracer")
	}
	tr.Mark("m-1", 0, metrics.StageEnqueued)
	tr.Mark("m-1", 0, metrics.StageDelivered)
	dump := get(t, srv, "/debug/jbs/traces?n=5")
	if !strings.Contains(dump, "m-1/0") {
		t.Errorf("trace dump missing recorded trace:\n%s", dump)
	}
}
