// Package dfs is a miniature Hadoop-style distributed filesystem: a
// namenode tracking files as sequences of fixed-size blocks, datanode block
// storage on local directories, write-local block placement (ReduceTasks
// "generate and store the final outputs to the disks local to themselves",
// Section II-A), and block-aligned splits for MapTask scheduling (delay
// scheduling launches up to 98% of MapTasks with local input).
//
// All nodes live in one process; the namespace is shared memory and block
// data lives under one temp directory per datanode.
package dfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the filesystem.
var (
	ErrNotFound    = errors.New("dfs: file not found")
	ErrExists      = errors.New("dfs: file already exists")
	ErrNoSuchNode  = errors.New("dfs: unknown datanode")
	ErrCorruptData = errors.New("dfs: block checksum mismatch")
	ErrClosed      = errors.New("dfs: writer closed")
)

// DefaultBlockSize is the paper's HDFS block size (256 MB). Tests and
// examples use much smaller blocks.
const DefaultBlockSize = 256 << 20

// Config configures a DFS cluster.
type Config struct {
	// BlockSize is the maximum block length in bytes.
	BlockSize int64
	// Replication is the number of replicas per block.
	Replication int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("dfs: block size %d must be positive", c.BlockSize)
	}
	if c.Replication <= 0 {
		return fmt.Errorf("dfs: replication %d must be positive", c.Replication)
	}
	return nil
}

// BlockInfo describes one stored block.
type BlockInfo struct {
	// ID is the globally unique block id.
	ID int64
	// Size is the block length in bytes.
	Size int64
	// Hosts are the datanodes holding replicas, primary first.
	Hosts []string
	// Checksum is the CRC-32 (IEEE) of the block contents.
	Checksum uint32
}

// FileInfo describes one file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks []BlockInfo
}

// Split is a block-aligned input range for a MapTask, with locality hints.
type Split struct {
	Path   string
	Offset int64
	Length int64
	// Hosts are the nodes where this split's block is local.
	Hosts []string
}

// Cluster is a DFS instance: one namenode plus per-node block stores.
type Cluster struct {
	cfg Config

	mu      sync.Mutex
	files   map[string]*FileInfo
	nodes   []string
	nodeDir map[string]string
	nextID  int64
	// rr rotates replica placement across nodes.
	rr int

	// localReads/remoteReads track block access locality; failovers counts
	// reads served by a non-preferred replica after a bad one.
	localReads, remoteReads, failovers int
}

// NewCluster creates a DFS over the given datanodes, with block storage
// under root/<node>/.
func NewCluster(cfg Config, nodes []string, root string) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, errors.New("dfs: need at least one datanode")
	}
	c := &Cluster{
		cfg:     cfg,
		files:   make(map[string]*FileInfo),
		nodes:   append([]string(nil), nodes...),
		nodeDir: make(map[string]string),
	}
	for _, n := range nodes {
		dir := filepath.Join(root, n)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("dfs: create datanode dir: %w", err)
		}
		c.nodeDir[n] = dir
	}
	return c, nil
}

// Nodes returns the datanode names.
func (c *Cluster) Nodes() []string {
	return append([]string(nil), c.nodes...)
}

// BlockSize returns the configured block size.
func (c *Cluster) BlockSize() int64 { return c.cfg.BlockSize }

// placeReplicas picks Replication hosts, preferring localNode first.
func (c *Cluster) placeReplicas(localNode string) []string {
	var hosts []string
	if localNode != "" {
		if _, ok := c.nodeDir[localNode]; ok {
			hosts = append(hosts, localNode)
		}
	}
	for len(hosts) < c.cfg.Replication && len(hosts) < len(c.nodes) {
		cand := c.nodes[c.rr%len(c.nodes)]
		c.rr++
		dup := false
		for _, h := range hosts {
			if h == cand {
				dup = true
				break
			}
		}
		if !dup {
			hosts = append(hosts, cand)
		}
	}
	return hosts
}

func (c *Cluster) blockPath(node string, id int64) string {
	return filepath.Join(c.nodeDir[node], fmt.Sprintf("blk_%d", id))
}

// Create opens a new file for writing. localNode (may be "") is the writer's
// node; its disk receives the primary replica of every block.
func (c *Cluster) Create(path, localNode string) (*FileWriter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	if localNode != "" {
		if _, ok := c.nodeDir[localNode]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchNode, localNode)
		}
	}
	// Reserve the name so concurrent creates collide deterministically.
	c.files[path] = &FileInfo{Path: path}
	return &FileWriter{c: c, path: path, local: localNode}, nil
}

// FileWriter accumulates bytes into blocks.
type FileWriter struct {
	c      *Cluster
	path   string
	local  string
	buf    []byte
	blocks []BlockInfo
	size   int64
	closed bool
	err    error
}

// Write appends data, flushing full blocks to datanodes.
func (w *FileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	w.buf = append(w.buf, p...)
	for int64(len(w.buf)) >= w.c.cfg.BlockSize {
		if err := w.flushBlock(w.buf[:w.c.cfg.BlockSize]); err != nil {
			w.err = err
			return 0, err
		}
		w.buf = w.buf[w.c.cfg.BlockSize:]
	}
	return len(p), nil
}

func (w *FileWriter) flushBlock(data []byte) error {
	w.c.mu.Lock()
	id := w.c.nextID
	w.c.nextID++
	hosts := w.c.placeReplicas(w.local)
	w.c.mu.Unlock()

	for _, h := range hosts {
		if err := os.WriteFile(w.c.blockPath(h, id), data, 0o644); err != nil {
			return fmt.Errorf("dfs: write block on %s: %w", h, err)
		}
	}
	w.blocks = append(w.blocks, BlockInfo{
		ID:       id,
		Size:     int64(len(data)),
		Hosts:    hosts,
		Checksum: crc32.ChecksumIEEE(data),
	})
	w.size += int64(len(data))
	return nil
}

// Close flushes the final partial block and commits the file metadata.
func (w *FileWriter) Close() error {
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		if err := w.flushBlock(w.buf); err != nil {
			return err
		}
		w.buf = nil
	}
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	w.c.files[w.path] = &FileInfo{Path: w.path, Size: w.size, Blocks: w.blocks}
	return nil
}

// Stat returns file metadata.
func (c *Cluster) Stat(path string) (FileInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fi, ok := c.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return *fi, nil
}

// List returns metadata for every file whose path has the given prefix,
// sorted by path.
func (c *Cluster) List(prefix string) []FileInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []FileInfo
	for p, fi := range c.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, *fi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Delete removes a file and its block replicas.
func (c *Cluster) Delete(path string) error {
	c.mu.Lock()
	fi, ok := c.files[path]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(c.files, path)
	c.mu.Unlock()
	for _, b := range fi.Blocks {
		for _, h := range b.Hosts {
			os.Remove(c.blockPath(h, b.ID))
		}
	}
	return nil
}

// Repair scans every file's blocks and restores lost or corrupt replicas
// from a surviving good copy (the namenode's re-replication duty). It
// returns the number of replicas rewritten; an error is returned only if
// some block has no good replica left.
func (c *Cluster) Repair() (restored int, err error) {
	c.mu.Lock()
	files := make([]*FileInfo, 0, len(c.files))
	for _, fi := range c.files {
		files = append(files, fi)
	}
	c.mu.Unlock()

	var firstErr error
	for _, fi := range files {
		for _, b := range fi.Blocks {
			// Find one good replica.
			var good []byte
			for _, h := range b.Hosts {
				data, rerr := os.ReadFile(c.blockPath(h, b.ID))
				if rerr == nil && crc32.ChecksumIEEE(data) == b.Checksum {
					good = data
					break
				}
			}
			if good == nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("dfs: block %d of %s unrecoverable", b.ID, fi.Path)
				}
				continue
			}
			// Rewrite every bad or missing replica.
			for _, h := range b.Hosts {
				data, rerr := os.ReadFile(c.blockPath(h, b.ID))
				if rerr == nil && crc32.ChecksumIEEE(data) == b.Checksum {
					continue
				}
				if werr := os.WriteFile(c.blockPath(h, b.ID), good, 0o644); werr != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("dfs: restore block %d on %s: %w", b.ID, h, werr)
					}
					continue
				}
				restored++
			}
		}
	}
	return restored, firstErr
}

// Splits returns block-aligned input splits with locality hints.
func (c *Cluster) Splits(path string) ([]Split, error) {
	fi, err := c.Stat(path)
	if err != nil {
		return nil, err
	}
	var out []Split
	var off int64
	for _, b := range fi.Blocks {
		out = append(out, Split{
			Path:   path,
			Offset: off,
			Length: b.Size,
			Hosts:  append([]string(nil), b.Hosts...),
		})
		off += b.Size
	}
	return out, nil
}

// readBlock fetches one block, preferring a replica on readerNode and
// verifying the checksum. A missing or corrupt replica fails over to the
// next one; only when every replica is bad does the read fail.
func (c *Cluster) readBlock(b BlockInfo, readerNode string) ([]byte, error) {
	// Candidate order: the reader-local replica first, then the rest.
	hosts := make([]string, 0, len(b.Hosts))
	for _, h := range b.Hosts {
		if h == readerNode {
			hosts = append(hosts, h)
		}
	}
	for _, h := range b.Hosts {
		if h != readerNode {
			hosts = append(hosts, h)
		}
	}
	var lastErr error
	for i, host := range hosts {
		data, err := os.ReadFile(c.blockPath(host, b.ID))
		if err != nil {
			lastErr = fmt.Errorf("dfs: read block %d on %s: %w", b.ID, host, err)
			continue
		}
		if crc32.ChecksumIEEE(data) != b.Checksum {
			lastErr = fmt.Errorf("%w: block %d on %s", ErrCorruptData, b.ID, host)
			continue
		}
		c.mu.Lock()
		if host == readerNode {
			c.localReads++
		} else {
			c.remoteReads++
		}
		if i > 0 {
			c.failovers++
		}
		c.mu.Unlock()
		return data, nil
	}
	return nil, lastErr
}

// LocalityStats reports how many block reads were node-local vs remote.
func (c *Cluster) LocalityStats() (local, remote int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.localReads, c.remoteReads
}

// Failovers reports reads that succeeded only on a fallback replica.
func (c *Cluster) Failovers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// Open returns a reader over the whole file, as read from readerNode
// (which may be "" for an external reader).
func (c *Cluster) Open(path, readerNode string) (io.ReadCloser, error) {
	fi, err := c.Stat(path)
	if err != nil {
		return nil, err
	}
	return c.OpenRange(path, readerNode, 0, fi.Size)
}

// OpenRange returns a reader over [offset, offset+length) of the file.
func (c *Cluster) OpenRange(path, readerNode string, offset, length int64) (io.ReadCloser, error) {
	fi, err := c.Stat(path)
	if err != nil {
		return nil, err
	}
	if offset < 0 || length < 0 || offset+length > fi.Size {
		return nil, fmt.Errorf("dfs: range [%d,%d) outside file %s of %d bytes", offset, offset+length, path, fi.Size)
	}
	return &rangeReader{c: c, fi: fi, node: readerNode, off: offset, rem: length}, nil
}

// rangeReader streams a byte range across block boundaries.
type rangeReader struct {
	c    *Cluster
	fi   FileInfo
	node string
	off  int64 // absolute file offset of the next byte
	rem  int64
	cur  []byte // remainder of the current block
}

func (r *rangeReader) Read(p []byte) (int, error) {
	if r.rem <= 0 {
		return 0, io.EOF
	}
	if len(r.cur) == 0 {
		if err := r.loadBlock(); err != nil {
			return 0, err
		}
	}
	n := len(p)
	if int64(n) > r.rem {
		n = int(r.rem)
	}
	if n > len(r.cur) {
		n = len(r.cur)
	}
	copy(p, r.cur[:n])
	r.cur = r.cur[n:]
	r.off += int64(n)
	r.rem -= int64(n)
	return n, nil
}

func (r *rangeReader) loadBlock() error {
	var start int64
	for _, b := range r.fi.Blocks {
		if r.off < start+b.Size {
			data, err := r.c.readBlock(b, r.node)
			if err != nil {
				return err
			}
			r.cur = data[r.off-start:]
			return nil
		}
		start += b.Size
	}
	return io.ErrUnexpectedEOF
}

func (r *rangeReader) Close() error { return nil }
