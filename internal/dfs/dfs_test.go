package dfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
	"testing/quick"
)

func newTestCluster(t *testing.T, blockSize int64, replication int, nodes ...string) *Cluster {
	t.Helper()
	if len(nodes) == 0 {
		nodes = []string{"n1", "n2", "n3"}
	}
	c, err := NewCluster(Config{BlockSize: blockSize, Replication: replication}, nodes, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func writeFile(t *testing.T, c *Cluster, path, node string, data []byte) {
	t.Helper()
	w, err := c.Create(path, node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, c *Cluster, path, node string) []byte {
	t.Helper()
	r, err := c.Open(path, node)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestCluster(t, 64, 1)
	data := bytes.Repeat([]byte("0123456789abcdef"), 20) // 320 bytes = 5 blocks
	writeFile(t, c, "/input/data", "n1", data)

	got := readAll(t, c, "/input/data", "n1")
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
	}
	fi, err := c.Stat("/input/data")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != int64(len(data)) {
		t.Fatalf("size = %d, want %d", fi.Size, len(data))
	}
	if len(fi.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(fi.Blocks))
	}
}

func TestPartialFinalBlock(t *testing.T) {
	c := newTestCluster(t, 100, 1)
	data := make([]byte, 250)
	for i := range data {
		data[i] = byte(i)
	}
	writeFile(t, c, "/f", "n1", data)
	fi, _ := c.Stat("/f")
	if len(fi.Blocks) != 3 || fi.Blocks[2].Size != 50 {
		t.Fatalf("blocks = %+v", fi.Blocks)
	}
	if !bytes.Equal(readAll(t, c, "/f", "n2"), data) {
		t.Fatal("content mismatch")
	}
}

func TestEmptyFile(t *testing.T) {
	c := newTestCluster(t, 100, 1)
	writeFile(t, c, "/empty", "n1", nil)
	fi, err := c.Stat("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 0 || len(fi.Blocks) != 0 {
		t.Fatalf("empty file metadata: %+v", fi)
	}
	if got := readAll(t, c, "/empty", "n1"); len(got) != 0 {
		t.Fatalf("read %d bytes from empty file", len(got))
	}
}

func TestLocalPlacement(t *testing.T) {
	c := newTestCluster(t, 64, 2)
	writeFile(t, c, "/f", "n2", make([]byte, 200))
	fi, _ := c.Stat("/f")
	for _, b := range fi.Blocks {
		if b.Hosts[0] != "n2" {
			t.Fatalf("primary replica on %s, want n2", b.Hosts[0])
		}
		if len(b.Hosts) != 2 {
			t.Fatalf("replicas = %d, want 2", len(b.Hosts))
		}
		if b.Hosts[1] == "n2" {
			t.Fatal("duplicate replica host")
		}
	}
}

func TestReplicationCappedByNodes(t *testing.T) {
	c := newTestCluster(t, 64, 5, "a", "b")
	writeFile(t, c, "/f", "a", make([]byte, 10))
	fi, _ := c.Stat("/f")
	if len(fi.Blocks[0].Hosts) != 2 {
		t.Fatalf("replicas = %d, want 2 (capped)", len(fi.Blocks[0].Hosts))
	}
}

func TestCreateExisting(t *testing.T) {
	c := newTestCluster(t, 64, 1)
	writeFile(t, c, "/f", "n1", []byte("x"))
	if _, err := c.Create("/f", "n1"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestCreateUnknownNode(t *testing.T) {
	c := newTestCluster(t, 64, 1)
	if _, err := c.Create("/f", "nope"); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestStatNotFound(t *testing.T) {
	c := newTestCluster(t, 64, 1)
	if _, err := c.Stat("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := c.Open("/missing", "n1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open err = %v, want ErrNotFound", err)
	}
}

func TestWriterDoubleClose(t *testing.T) {
	c := newTestCluster(t, 64, 1)
	w, _ := c.Create("/f", "n1")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: %v, want ErrClosed", err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v, want ErrClosed", err)
	}
}

func TestList(t *testing.T) {
	c := newTestCluster(t, 64, 1)
	writeFile(t, c, "/out/part-1", "n1", []byte("a"))
	writeFile(t, c, "/out/part-0", "n1", []byte("b"))
	writeFile(t, c, "/other", "n1", []byte("c"))
	got := c.List("/out/")
	if len(got) != 2 || got[0].Path != "/out/part-0" || got[1].Path != "/out/part-1" {
		t.Fatalf("List = %+v", got)
	}
}

func TestDelete(t *testing.T) {
	c := newTestCluster(t, 64, 1)
	writeFile(t, c, "/f", "n1", make([]byte, 128))
	fi, _ := c.Stat("/f")
	if err := c.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatal("file still visible after delete")
	}
	// Block files are gone from every replica host.
	for _, b := range fi.Blocks {
		for _, h := range b.Hosts {
			if _, err := os.Stat(c.blockPath(h, b.ID)); !os.IsNotExist(err) {
				t.Fatalf("block %d still on %s", b.ID, h)
			}
		}
	}
	if err := c.Delete("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
}

func TestSplitsAlignWithBlocks(t *testing.T) {
	c := newTestCluster(t, 100, 2)
	writeFile(t, c, "/f", "n1", make([]byte, 250))
	splits, err := c.Splits("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("splits = %d, want 3", len(splits))
	}
	wantOff := []int64{0, 100, 200}
	wantLen := []int64{100, 100, 50}
	for i, s := range splits {
		if s.Offset != wantOff[i] || s.Length != wantLen[i] {
			t.Fatalf("split %d = %+v", i, s)
		}
		if len(s.Hosts) != 2 || s.Hosts[0] != "n1" {
			t.Fatalf("split %d hosts = %v", i, s.Hosts)
		}
	}
}

func TestOpenRange(t *testing.T) {
	c := newTestCluster(t, 10, 1)
	data := []byte("abcdefghijklmnopqrstuvwxyz")
	writeFile(t, c, "/f", "n1", data)
	r, err := c.OpenRange("/f", "n1", 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if string(got) != "fghijklmnopqrst" {
		t.Fatalf("range read = %q", got)
	}
}

func TestOpenRangeOutOfBounds(t *testing.T) {
	c := newTestCluster(t, 10, 1)
	writeFile(t, c, "/f", "n1", []byte("0123456789"))
	if _, err := c.OpenRange("/f", "n1", 5, 10); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := c.OpenRange("/f", "n1", -1, 2); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestLocalityAccounting(t *testing.T) {
	c := newTestCluster(t, 1024, 1)
	writeFile(t, c, "/f", "n1", make([]byte, 100))
	readAll(t, c, "/f", "n1") // local
	readAll(t, c, "/f", "n2") // remote (replica only on n1)
	local, remote := c.LocalityStats()
	if local != 1 || remote != 1 {
		t.Fatalf("locality = %d/%d, want 1/1", local, remote)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	c := newTestCluster(t, 1024, 1)
	writeFile(t, c, "/f", "n1", []byte("precious bytes"))
	fi, _ := c.Stat("/f")
	b := fi.Blocks[0]
	// Corrupt the stored block on its only replica.
	p := c.blockPath(b.Hosts[0], b.ID)
	raw, _ := os.ReadFile(p)
	raw[0] ^= 0xff
	os.WriteFile(p, raw, 0o644)
	r, err := c.Open("/f", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("err = %v, want ErrCorruptData", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{BlockSize: 0, Replication: 1},
		{BlockSize: 1, Replication: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewCluster(Config{BlockSize: 1, Replication: 1}, nil, t.TempDir()); err == nil {
		t.Error("cluster with no nodes accepted")
	}
}

func TestDefaultBlockSizeIs256MB(t *testing.T) {
	if DefaultBlockSize != 256<<20 {
		t.Fatalf("DefaultBlockSize = %d, want 256 MB (paper Section V)", DefaultBlockSize)
	}
}

// Property: any content round-trips through any block size.
func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte, blockSizeSeed uint8) bool {
		blockSize := int64(blockSizeSeed%200) + 1
		dir, err := os.MkdirTemp("", "dfsprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		c, err := NewCluster(Config{BlockSize: blockSize, Replication: 1}, []string{"a", "b"}, dir)
		if err != nil {
			return false
		}
		w, err := c.Create("/p", "a")
		if err != nil {
			return false
		}
		if _, err := w.Write(data); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := c.Open("/p", "b")
		if err != nil {
			return false
		}
		got, err := io.ReadAll(r)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaFailoverOnMissingBlock(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	writeFile(t, c, "/f", "n1", []byte("replicated payload"))
	fi, _ := c.Stat("/f")
	b := fi.Blocks[0]
	if len(b.Hosts) != 2 {
		t.Fatalf("hosts = %v", b.Hosts)
	}
	// Remove the primary (reader-local) replica.
	if err := os.Remove(c.blockPath(b.Hosts[0], b.ID)); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, c, "/f", b.Hosts[0])
	if string(got) != "replicated payload" {
		t.Fatalf("failover read = %q", got)
	}
	if c.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", c.Failovers())
	}
}

func TestReplicaFailoverOnCorruptBlock(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	writeFile(t, c, "/f", "n1", []byte("precious"))
	fi, _ := c.Stat("/f")
	b := fi.Blocks[0]
	// Corrupt the local replica only.
	p := c.blockPath(b.Hosts[0], b.ID)
	raw, _ := os.ReadFile(p)
	raw[0] ^= 0xff
	os.WriteFile(p, raw, 0o644)
	got := readAll(t, c, "/f", b.Hosts[0])
	if string(got) != "precious" {
		t.Fatalf("failover read = %q", got)
	}
}

func TestAllReplicasBadFails(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	writeFile(t, c, "/f", "n1", []byte("doomed"))
	fi, _ := c.Stat("/f")
	b := fi.Blocks[0]
	for _, h := range b.Hosts {
		os.Remove(c.blockPath(h, b.ID))
	}
	r, err := c.Open("/f", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("read succeeded with every replica gone")
	}
}

func TestRepairRestoresLostReplica(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	writeFile(t, c, "/f", "n1", []byte("repair me"))
	fi, _ := c.Stat("/f")
	b := fi.Blocks[0]
	os.Remove(c.blockPath(b.Hosts[0], b.ID))
	restored, err := c.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored = %d, want 1", restored)
	}
	// The primary replica is back and readable without failover.
	before := c.Failovers()
	got := readAll(t, c, "/f", b.Hosts[0])
	if string(got) != "repair me" {
		t.Fatalf("read = %q", got)
	}
	if c.Failovers() != before {
		t.Fatal("read still needed failover after repair")
	}
}

func TestRepairRestoresCorruptReplica(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	writeFile(t, c, "/f", "n1", []byte("bitrot"))
	fi, _ := c.Stat("/f")
	b := fi.Blocks[0]
	p := c.blockPath(b.Hosts[1], b.ID)
	raw, _ := os.ReadFile(p)
	raw[0] ^= 0xff
	os.WriteFile(p, raw, 0o644)
	restored, err := c.Repair()
	if err != nil || restored != 1 {
		t.Fatalf("restored = %d, err = %v", restored, err)
	}
	data, _ := os.ReadFile(p)
	if string(data) != "bitrot" {
		t.Fatalf("replica content = %q", data)
	}
}

func TestRepairNoopOnHealthyCluster(t *testing.T) {
	c := newTestCluster(t, 64, 2)
	writeFile(t, c, "/f", "n1", make([]byte, 200))
	restored, err := c.Repair()
	if err != nil || restored != 0 {
		t.Fatalf("restored = %d, err = %v", restored, err)
	}
}

func TestRepairUnrecoverableBlock(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	writeFile(t, c, "/f", "n1", []byte("gone"))
	fi, _ := c.Stat("/f")
	b := fi.Blocks[0]
	for _, h := range b.Hosts {
		os.Remove(c.blockPath(h, b.ID))
	}
	if _, err := c.Repair(); err == nil {
		t.Fatal("unrecoverable block not reported")
	}
}
