// Package docscheck validates the repository's Markdown cross-links: every
// relative link in every *.md file must point at a file or directory that
// exists. The documentation pass (README → docs/ARCHITECTURE.md →
// docs/OBSERVABILITY.md → ...) leans on those links, and a rename that
// breaks one is invisible until a reader hits a 404 — so the check runs as
// a test and in CI.
package docscheck

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links and images: [text](target) and
// ![alt](target). Reference-style links are rare in this repo and not
// matched.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// fenceRE matches fenced code block delimiters.
var fenceRE = regexp.MustCompile("^\\s*```")

// A Problem is one broken link.
type Problem struct {
	File string // Markdown file, relative to the checked root
	Line int    // 1-based line of the link
	Link string // the link target as written
}

func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: broken link %q", p.File, p.Line, p.Link)
}

// CheckLinks walks root for Markdown files and verifies every relative
// link resolves to an existing file or directory. External links
// (scheme-prefixed), pure anchors (#...), and links inside fenced code
// blocks are ignored; a #fragment suffix on a relative link is stripped
// before the existence check. Hidden directories and testdata are skipped.
func CheckLinks(root string) ([]Problem, error) {
	var problems []Problem
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "node_modules") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".md") {
			return nil
		}
		ps, err := checkFile(root, path)
		if err != nil {
			return err
		}
		problems = append(problems, ps...)
		return nil
	})
	return problems, err
}

// checkFile validates the relative links of one Markdown file.
func checkFile(root, path string) ([]Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}
	var problems []Problem
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if fenceRE.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, Problem{File: filepath.ToSlash(rel), Line: i + 1, Link: m[1]})
			}
		}
	}
	return problems, nil
}

// skipTarget reports whether a link target is outside the checker's remit:
// external URLs, mail links, and in-page anchors.
func skipTarget(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
