package docscheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file under dir, making parent directories as needed.
func write(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "docs/GOOD.md", "target")
	write(t, dir, "README.md", strings.Join([]string{
		"[good](docs/GOOD.md)",
		"[good with fragment](docs/GOOD.md#section)",
		"[dir link](docs)",
		"[external](https://example.com/missing.md)",
		"[anchor](#local-section)",
		"![image](docs/missing.png)",
		"```",
		"[inside a code fence](docs/NOPE.md)",
		"```",
		"[broken](docs/MISSING.md)",
	}, "\n"))
	write(t, dir, "docs/NESTED.md", "[up and over](../README.md)\n[broken up](../GONE.md)\n")

	problems, err := CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range problems {
		got = append(got, p.String())
	}
	want := []string{
		`README.md:6: broken link "docs/missing.png"`,
		`README.md:10: broken link "docs/MISSING.md"`,
		`docs/NESTED.md:2: broken link "../GONE.md"`,
	}
	if len(got) != len(want) {
		t.Fatalf("problems = %v, want %v", got, want)
	}
	seen := make(map[string]bool)
	for _, g := range got {
		seen[g] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("missing expected problem %q in %v", w, got)
		}
	}
}

// TestRepoLinks is the real gate: every relative Markdown link in this
// repository must resolve.
func TestRepoLinks(t *testing.T) {
	problems, err := CheckLinks(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("%s", p)
	}
}
