// Package faultnet wraps a transport.Transport with deterministic,
// seed-driven fault injection: connection resets after a byte budget,
// truncated (partial) writes, bit-flip corruption, delayed and stalled
// reads, dial refusals, and per-node blackout windows. It exists to prove
// the shuffle's recovery paths — CRC re-fetch, mid-stream reset failover,
// the fetch deadline watchdog, retry backoff — under network failure
// rather than assuming them (the paper's evaluation never kills a
// connection mid-segment; see docs/TESTING.md).
//
// Faults are injected only on dial-side (client) connections: every fault
// on a node pair's single connection is observed by both ends anyway, and
// keeping the accept side clean means a scenario reads as "the merger's
// view of a failing fabric". A Schedule is built once per scenario from a
// seed, shared by every connection the wrapped transport creates, and all
// randomness — which connections a fault afflicts, where a bit flips —
// derives from that seed, so a failing chaos run is reproduced by its
// seed alone.
//
// Usage:
//
//	sched := faultnet.NewSchedule(seed)
//	sched.ResetAfter(64 << 10).Times(2) // first two conns die after 64 KiB
//	sched.CorruptFrame(3).Times(1)      // one conn flips a bit in its 3rd frame
//	tr := faultnet.Wrap(transport.NewTCP(cfg), sched)
package faultnet

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/transport"
)

// faultKind enumerates the injectable faults.
type faultKind int

const (
	// kindResetAfter closes the connection once its total byte count
	// (sent + received) exceeds the rule's threshold.
	kindResetAfter faultKind = iota
	// kindTruncateFrame delivers only the first half of the rule's nth
	// received frame and then closes the connection — the receive-side
	// image of a partial write.
	kindTruncateFrame
	// kindCorruptFrame flips one bit in the rule's nth received frame
	// (and every nth after it), leaving the connection up.
	kindCorruptFrame
	// kindDelayFrame sleeps before delivering every nth received frame.
	kindDelayFrame
	// kindStallFrame blocks the rule's nth receive until the connection
	// is closed — a peer that is alive but never responds.
	kindStallFrame
	// kindRefuseDial fails Dial outright.
	kindRefuseDial
	// kindBlackout fails every dial and in-flight operation for a node
	// during a time window relative to the schedule's first use.
	kindBlackout
)

// Rule is one fault in a Schedule. Rules are built by the Schedule's
// adder methods and refined by the chainable modifiers below; they must
// be fully configured before the wrapped transport dials.
type Rule struct {
	kind faultKind
	n    int64         // bytes (reset) or frame ordinal (truncate/corrupt/delay/stall)
	d    time.Duration // delay duration / blackout start
	d2   time.Duration // blackout end
	addr string        // restrict to one node; "" matches every node
	// times caps how many connections (or dials, for refusals) the rule
	// afflicts across the schedule's lifetime; 0 means every one.
	times  int64
	prob   float64 // per-conn application probability; 0 means always
	claims atomic.Int64
}

// Times caps how many connections (dial attempts, for RefuseDials) this
// rule afflicts. Returns the rule for chaining.
func (r *Rule) Times(n int) *Rule { r.times = int64(n); return r }

// Prob makes the rule apply to each new connection independently with
// probability p (seed-deterministically). Returns the rule for chaining.
func (r *Rule) Prob(p float64) *Rule { r.prob = p; return r }

// Node restricts the rule to connections dialed to addr. Returns the
// rule for chaining.
func (r *Rule) Node(addr string) *Rule { r.addr = addr; return r }

// claim consumes one of the rule's firing slots, returning false once
// the Times budget is spent.
func (r *Rule) claim() bool {
	if r.times <= 0 {
		r.claims.Add(1)
		return true
	}
	for {
		c := r.claims.Load()
		if c >= r.times {
			return false
		}
		if r.claims.CompareAndSwap(c, c+1) {
			return true
		}
	}
}

// matches reports whether the rule applies to a connection to addr,
// consulting rng for its probability gate.
func (r *Rule) matches(addr string, rng *rand.Rand) bool {
	if r.addr != "" && r.addr != addr {
		return false
	}
	// The probability draw happens for every candidate connection even
	// when prob is zero-valued ("always"), so adding or removing a Prob
	// modifier shifts no other rule's draws: scenarios stay comparable
	// across edits to one rule.
	draw := rng.Float64()
	return r.prob == 0 || draw < r.prob
}

// Stats counts the faults a schedule actually injected, for scenario
// assertions ("this run really did corrupt a frame").
type Stats struct {
	Resets          int64
	Truncations     int64
	Corruptions     int64
	Delays          int64
	Stalls          int64
	RefusedDials    int64
	BlackoutDenials int64
}

// Schedule is a seed-driven fault plan shared by every connection of a
// wrapped transport. Build it with NewSchedule, add faults with the
// adder methods, then pass it to Wrap. Adders are not safe to call
// after the transport starts dialing.
type Schedule struct {
	seed  uint64
	rules []*Rule

	mu      sync.Mutex
	connSeq uint64
	started time.Time // blackout epoch: set at first Dial/Listen

	resets          atomic.Int64
	truncations     atomic.Int64
	corruptions     atomic.Int64
	delays          atomic.Int64
	stalls          atomic.Int64
	refusedDials    atomic.Int64
	blackoutDenials atomic.Int64
}

// NewSchedule creates an empty fault schedule. Every random decision the
// schedule makes derives from seed, so two runs with equal seeds and
// equal rule sets inject the same faults at the same positions.
func NewSchedule(seed uint64) *Schedule {
	return &Schedule{seed: seed}
}

// Seed returns the schedule's seed (printed by the chaos harness for
// one-command reproduction).
func (s *Schedule) Seed() uint64 { return s.seed }

// ResetAfter adds a rule closing afflicted connections once sent+received
// bytes exceed n: the mid-segment connection reset the merger must
// recover from without double-counting window slots.
func (s *Schedule) ResetAfter(n int64) *Rule {
	return s.add(&Rule{kind: kindResetAfter, n: n})
}

// TruncateFrame adds a rule delivering only half of an afflicted
// connection's nth received frame before closing it — a partial write.
// The CRC32C frame checksum must reject the half frame.
func (s *Schedule) TruncateFrame(nth int) *Rule {
	return s.add(&Rule{kind: kindTruncateFrame, n: int64(nth)})
}

// CorruptFrame adds a rule flipping one bit in an afflicted connection's
// every nth received frame. The connection stays up: detection is the
// receiver's job (jbs_merger_corrupt_frames).
func (s *Schedule) CorruptFrame(nth int) *Rule {
	return s.add(&Rule{kind: kindCorruptFrame, n: int64(nth)})
}

// DelayFrame adds a rule sleeping d before delivering an afflicted
// connection's every nth received frame — jitter, not failure.
func (s *Schedule) DelayFrame(d time.Duration, nth int) *Rule {
	return s.add(&Rule{kind: kindDelayFrame, n: int64(nth), d: d})
}

// StallFrame adds a rule blocking an afflicted connection's nth receive
// until the connection is closed: the peer looks alive but never
// responds, which only a fetch deadline can unstick.
func (s *Schedule) StallFrame(nth int) *Rule {
	return s.add(&Rule{kind: kindStallFrame, n: int64(nth)})
}

// RefuseDials adds a rule failing dial attempts outright (connection
// refused). Almost always combined with Times(n).
func (s *Schedule) RefuseDials() *Rule {
	return s.add(&Rule{kind: kindRefuseDial})
}

// Blackout adds a rule failing every dial and in-flight operation for
// addr ("" = all nodes) during [from, to) measured from the schedule's
// first use.
func (s *Schedule) Blackout(addr string, from, to time.Duration) *Rule {
	return s.add(&Rule{kind: kindBlackout, addr: addr, d: from, d2: to})
}

func (s *Schedule) add(r *Rule) *Rule {
	s.rules = append(s.rules, r)
	return r
}

// Stats snapshots the faults injected so far.
func (s *Schedule) Stats() Stats {
	return Stats{
		Resets:          s.resets.Load(),
		Truncations:     s.truncations.Load(),
		Corruptions:     s.corruptions.Load(),
		Delays:          s.delays.Load(),
		Stalls:          s.stalls.Load(),
		RefusedDials:    s.refusedDials.Load(),
		BlackoutDenials: s.blackoutDenials.Load(),
	}
}

// startClock anchors the blackout epoch at the schedule's first use.
func (s *Schedule) startClock() {
	s.mu.Lock()
	if s.started.IsZero() {
		s.started = time.Now()
	}
	s.mu.Unlock()
}

// blackedOut reports whether addr is inside an active blackout window.
func (s *Schedule) blackedOut(addr string) bool {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started.IsZero() {
		return false
	}
	elapsed := time.Since(started)
	for _, r := range s.rules {
		if r.kind != kindBlackout {
			continue
		}
		if r.addr != "" && r.addr != addr {
			continue
		}
		if elapsed >= r.d && elapsed < r.d2 {
			return true
		}
	}
	return false
}

// nextConnRand returns a per-connection deterministic generator: seeded
// by the schedule seed and the connection's dial sequence number, so the
// nth dial of a run always draws the same fault assignment.
func (s *Schedule) nextConnRand() *rand.Rand {
	s.mu.Lock()
	s.connSeq++
	seq := s.connSeq
	s.mu.Unlock()
	return rand.New(rand.NewPCG(s.seed, seq))
}

// Transport wraps an inner transport with the schedule's faults.
type Transport struct {
	inner transport.Transport
	sched *Schedule
}

// Wrap builds a fault-injecting view of inner driven by sched.
func Wrap(inner transport.Transport, sched *Schedule) *Transport {
	return &Transport{inner: inner, sched: sched}
}

// Name implements transport.Transport.
func (t *Transport) Name() string { return "faultnet+" + t.inner.Name() }

// Listen implements transport.Transport. Accepted connections pass
// through unwrapped: faults live on the dial side (see the package
// comment).
func (t *Transport) Listen(addr string) (transport.Listener, error) {
	t.sched.startClock()
	lis, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &listener{inner: lis}, nil
}

// listener is the pass-through accept side.
type listener struct {
	inner transport.Listener
}

// Accept implements transport.Listener.
func (l *listener) Accept() (transport.Conn, error) { return l.inner.Accept() }

// Close implements transport.Listener.
func (l *listener) Close() error { return l.inner.Close() }

// Addr implements transport.Listener.
func (l *listener) Addr() string { return l.inner.Addr() }

// Dial implements transport.Transport: it applies dial-time faults
// (refusals, blackouts), then arms the schedule's connection-level
// faults on the new connection.
func (t *Transport) Dial(addr string) (transport.Conn, error) {
	s := t.sched
	s.startClock()
	if s.blackedOut(addr) {
		s.blackoutDenials.Add(1)
		return nil, fmt.Errorf("faultnet: dial %s: node blacked out (injected)", addr)
	}
	rng := s.nextConnRand()
	for _, r := range s.rules {
		if r.kind != kindRefuseDial || !r.matches(addr, rng) {
			continue
		}
		if r.claim() {
			s.refusedDials.Add(1)
			return nil, fmt.Errorf("faultnet: dial %s: connection refused (injected)", addr)
		}
	}
	conn, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{
		inner:      conn,
		sched:      s,
		addr:       addr,
		resetAfter: -1,
		truncAt:    -1,
		stallAt:    -1,
		stallCh:    make(chan struct{}),
	}
	// Arm connection-level faults. Budget slots (Times) are claimed here,
	// at dial, so "Times(2)" reads as "the first two matching
	// connections", independent of which one hits its trigger first.
	for _, r := range s.rules {
		switch r.kind {
		case kindRefuseDial, kindBlackout:
			continue
		}
		if !r.matches(addr, rng) || !r.claim() {
			continue
		}
		switch r.kind {
		case kindResetAfter:
			fc.resetAfter = r.n
		case kindTruncateFrame:
			fc.truncAt = r.n
		case kindCorruptFrame:
			fc.corruptEvery = r.n
		case kindDelayFrame:
			fc.delayEvery, fc.delayDur = r.n, r.d
		case kindStallFrame:
			fc.stallAt = r.n
		}
	}
	return fc, nil
}

// faultConn is one dial-side connection with its armed faults. Fault
// positions were fixed at dial time; the counters below advance as
// traffic flows.
type faultConn struct {
	inner transport.Conn
	sched *Schedule
	addr  string

	// Armed fault parameters; negative/zero means "not armed".
	resetAfter   int64 // close once sent+received bytes exceed this
	truncAt      int64 // halve the truncAt-th received frame, then close
	corruptEvery int64 // flip a bit in every corruptEvery-th received frame
	delayEvery   int64 // sleep before every delayEvery-th received frame
	delayDur     time.Duration
	stallAt      int64 // block the stallAt-th receive until Close

	bytes      atomic.Int64 // sent + received, for resetAfter
	recvFrames atomic.Int64

	closeOnce sync.Once
	stallCh   chan struct{} // closed by Close; releases a stalled receive
}

// errInjected wraps transport errors raised by the wrapper itself.
func (c *faultConn) errInjected(op, fault string) error {
	return fmt.Errorf("faultnet: %s %s: %s (injected): %w", op, c.addr, fault, transport.ErrConnClosed)
}

// preOp applies operation-time blackout: a node entering its window
// kills in-flight traffic, not just new dials.
func (c *faultConn) preOp(op string) error {
	if c.sched.blackedOut(c.addr) {
		c.sched.blackoutDenials.Add(1)
		c.Close()
		return c.errInjected(op, "node blacked out")
	}
	return nil
}

// checkReset closes the connection once its byte budget is spent.
func (c *faultConn) checkReset(op string, n int) error {
	if c.resetAfter < 0 {
		return nil
	}
	if c.bytes.Add(int64(n)) > c.resetAfter {
		c.sched.resets.Add(1)
		c.Close()
		return c.errInjected(op, "connection reset")
	}
	return nil
}

// Send implements transport.Conn.
func (c *faultConn) Send(msg []byte) error {
	if err := c.preOp("send"); err != nil {
		return err
	}
	if err := c.inner.Send(msg); err != nil {
		return err
	}
	return c.checkReset("send", len(msg))
}

// SendVec implements transport.VectorSender.
func (c *faultConn) SendVec(bufs [][]byte) error {
	if err := c.preOp("send"); err != nil {
		return err
	}
	if err := transport.SendVec(c.inner, bufs...); err != nil {
		return err
	}
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	return c.checkReset("send", n)
}

// RecvBuf implements transport.PooledReceiver; it is the primary receive
// path and the site of every frame-level fault.
func (c *faultConn) RecvBuf() (*bufpool.Lease, error) {
	if err := c.preOp("recv"); err != nil {
		return nil, err
	}
	l, err := transport.RecvBuf(c.inner)
	if err != nil {
		return nil, err
	}
	nth := c.recvFrames.Add(1)
	if c.delayEvery > 0 && nth%c.delayEvery == 0 {
		c.sched.delays.Add(1)
		timer := time.NewTimer(c.delayDur)
		select {
		case <-timer.C:
		case <-c.stallCh: // closed: don't hold the frame past Close
			timer.Stop()
		}
	}
	if c.stallAt > 0 && nth == c.stallAt {
		c.sched.stalls.Add(1)
		<-c.stallCh // released only by Close (e.g. the fetch deadline)
		l.Release()
		return nil, c.errInjected("recv", "stalled read")
	}
	if c.truncAt > 0 && nth == c.truncAt {
		c.sched.truncations.Add(1)
		l.SetLen(l.Len() / 2)
		// The rest of the frame "never arrived": kill the stream so the
		// next receive fails like a real torn connection. The delivered
		// half must be rejected by the frame checksum.
		c.Close()
		return l, nil
	}
	if c.corruptEvery > 0 && nth%c.corruptEvery == 0 {
		b := l.Bytes()
		if len(b) > 1 {
			c.sched.corruptions.Add(1)
			// Deterministic position from the frame ordinal; never byte 0
			// (the type tag), so the damage always lands inside the
			// checksummed region and a silent mis-dispatch cannot mask it.
			idx := 1 + int(uint64(nth)*2654435761%uint64(len(b)-1))
			b[idx] ^= 1 << (uint(nth) % 8)
		}
	}
	if err := c.checkReset("recv", l.Len()); err != nil {
		l.Release()
		return nil, err
	}
	return l, nil
}

// Recv implements transport.Conn via the pooled path, so every fault
// applies regardless of which receive API the caller uses.
func (c *faultConn) Recv() ([]byte, error) {
	l, err := c.RecvBuf()
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), l.Bytes()...)
	l.Release()
	return out, nil
}

// Close implements transport.Conn; it also releases any stalled receive.
func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.stallCh) })
	return c.inner.Close()
}

// RemoteAddr implements transport.Conn.
func (c *faultConn) RemoteAddr() string { return c.inner.RemoteAddr() }
