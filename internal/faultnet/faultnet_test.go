package faultnet

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/transport"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }

// pair dials through a fault-wrapped TCP transport to an echo-less peer:
// the accept side simply serves frames the test tells it to send and
// collects what it receives.
type pair struct {
	tr   *Transport
	lis  transport.Listener
	conn transport.Conn // dial side (fault-injecting)
	peer transport.Conn // accept side (clean)
}

func newPair(t *testing.T, sched *Schedule) *pair {
	t.Helper()
	tr := Wrap(transport.NewTCP(), sched)
	lis, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	accepted := make(chan transport.Conn, 1)
	errs := make(chan error, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			errs <- err
			return
		}
		accepted <- c
	}()
	conn, err := tr.Dial(lis.Addr())
	if err != nil {
		lis.Close()
		t.Fatalf("dial: %v", err)
	}
	var peer transport.Conn
	select {
	case peer = <-accepted:
	case err := <-errs:
		t.Fatalf("accept: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	p := &pair{tr: tr, lis: lis, conn: conn, peer: peer}
	t.Cleanup(func() {
		p.conn.Close()
		p.peer.Close()
		p.lis.Close()
	})
	return p
}

func TestPassThroughWithoutRules(t *testing.T) {
	p := newPair(t, NewSchedule(1))
	msg := []byte("hello shuffle")
	if err := p.conn.Send(msg); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := p.peer.Recv()
	if err != nil {
		t.Fatalf("peer recv: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("peer got %q, want %q", got, msg)
	}
	if err := p.peer.Send([]byte("reply")); err != nil {
		t.Fatalf("peer send: %v", err)
	}
	reply, err := p.conn.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if string(reply) != "reply" {
		t.Fatalf("got %q, want %q", reply, "reply")
	}
	if st := p.tr.sched.Stats(); st != (Stats{}) {
		t.Fatalf("clean schedule injected faults: %+v", st)
	}
}

func TestResetAfterBytes(t *testing.T) {
	sched := NewSchedule(2)
	sched.ResetAfter(16)
	p := newPair(t, sched)
	// First send fits under the budget; the next exceeds it.
	if err := p.conn.Send(make([]byte, 10)); err != nil {
		t.Fatalf("send under budget: %v", err)
	}
	err := p.conn.Send(make([]byte, 10))
	if !errors.Is(err, transport.ErrConnClosed) {
		t.Fatalf("send over budget: got %v, want ErrConnClosed", err)
	}
	if got := sched.Stats().Resets; got != 1 {
		t.Fatalf("resets = %d, want 1", got)
	}
	// The connection is genuinely dead.
	if err := p.conn.Send([]byte("x")); err == nil {
		t.Fatal("send on reset conn succeeded")
	}
}

func TestCorruptFrameFlipsOneBit(t *testing.T) {
	sched := NewSchedule(3)
	sched.CorruptFrame(2) // every 2nd received frame
	p := newPair(t, sched)
	want := []byte("abcdefghij")
	for i := 0; i < 2; i++ {
		if err := p.peer.Send(want); err != nil {
			t.Fatalf("peer send %d: %v", i, err)
		}
	}
	first, err := p.conn.Recv()
	if err != nil {
		t.Fatalf("recv 1: %v", err)
	}
	if string(first) != string(want) {
		t.Fatalf("frame 1 corrupted: %q", first)
	}
	second, err := p.conn.Recv()
	if err != nil {
		t.Fatalf("recv 2: %v", err)
	}
	diff := 0
	for i := range want {
		if second[i] != want[i] {
			diff++
			if x := second[i] ^ want[i]; x&(x-1) != 0 {
				t.Fatalf("byte %d changed by more than one bit: %02x vs %02x", i, second[i], want[i])
			}
			if i == 0 {
				t.Fatal("corruption landed on byte 0 (type tag)")
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if got := sched.Stats().Corruptions; got != 1 {
		t.Fatalf("corruptions = %d, want 1", got)
	}
}

func TestTruncateFrameHalvesAndCloses(t *testing.T) {
	sched := NewSchedule(4)
	sched.TruncateFrame(1)
	p := newPair(t, sched)
	if err := p.peer.Send(make([]byte, 64)); err != nil {
		t.Fatalf("peer send: %v", err)
	}
	got, err := p.conn.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if len(got) != 32 {
		t.Fatalf("truncated frame is %d bytes, want 32", len(got))
	}
	if _, err := p.conn.Recv(); err == nil {
		t.Fatal("recv after truncation succeeded; connection should be dead")
	}
	if got := sched.Stats().Truncations; got != 1 {
		t.Fatalf("truncations = %d, want 1", got)
	}
}

func TestStallFrameBlocksUntilClose(t *testing.T) {
	sched := NewSchedule(5)
	sched.StallFrame(1)
	p := newPair(t, sched)
	if err := p.peer.Send([]byte("stuck")); err != nil {
		t.Fatalf("peer send: %v", err)
	}
	recvErr := make(chan error, 1)
	go func() {
		_, err := p.conn.Recv()
		recvErr <- err
	}()
	select {
	case err := <-recvErr:
		t.Fatalf("stalled recv returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	p.conn.Close()
	select {
	case err := <-recvErr:
		if !errors.Is(err, transport.ErrConnClosed) {
			t.Fatalf("stalled recv: got %v, want ErrConnClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled recv never released after Close")
	}
	if got := sched.Stats().Stalls; got != 1 {
		t.Fatalf("stalls = %d, want 1", got)
	}
}

func TestDelayFrame(t *testing.T) {
	sched := NewSchedule(6)
	const delay = 30 * time.Millisecond
	sched.DelayFrame(delay, 1) // every frame
	p := newPair(t, sched)
	if err := p.peer.Send([]byte("slow")); err != nil {
		t.Fatalf("peer send: %v", err)
	}
	start := time.Now()
	if _, err := p.conn.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("delayed recv took %v, want >= %v", took, delay)
	}
	if got := sched.Stats().Delays; got != 1 {
		t.Fatalf("delays = %d, want 1", got)
	}
}

func TestRefuseDialsBudget(t *testing.T) {
	tcp := transport.NewTCP()
	lis, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer lis.Close()
	// Accept (and immediately retain) whatever gets through.
	var mu sync.Mutex
	var conns []transport.Conn
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()

	sched := NewSchedule(7)
	sched.RefuseDials().Times(2)
	tr := Wrap(tcp, sched)
	for i := 0; i < 2; i++ {
		if _, err := tr.Dial(lis.Addr()); err == nil {
			t.Fatalf("dial %d succeeded, want refusal", i)
		} else if !strings.Contains(err.Error(), "refused") {
			t.Fatalf("dial %d: %v, want injected refusal", i, err)
		}
	}
	conn, err := tr.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("dial after budget spent: %v", err)
	}
	conn.Close()
	if got := sched.Stats().RefusedDials; got != 2 {
		t.Fatalf("refused dials = %d, want 2", got)
	}
}

func TestBlackoutWindow(t *testing.T) {
	tcp := transport.NewTCP()
	lis, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	sched := NewSchedule(8)
	sched.Blackout(lis.Addr(), 0, 80*time.Millisecond)
	tr := Wrap(tcp, sched)
	if _, err := tr.Dial(lis.Addr()); err == nil {
		t.Fatal("dial during blackout succeeded")
	}
	if got := sched.Stats().BlackoutDenials; got == 0 {
		t.Fatal("blackout denial not counted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := tr.Dial(lis.Addr())
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial never recovered after blackout window: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNodeScopedRule(t *testing.T) {
	sched := NewSchedule(9)
	sched.RefuseDials().Node("10.0.0.1:1").Times(100)
	tcp := transport.NewTCP()
	lis, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	tr := Wrap(tcp, sched)
	conn, err := tr.Dial(lis.Addr()) // different node: unaffected
	if err != nil {
		t.Fatalf("dial to unscoped node: %v", err)
	}
	conn.Close()
	if got := sched.Stats().RefusedDials; got != 0 {
		t.Fatalf("refused dials = %d, want 0", got)
	}
}

func TestSeedDeterminism(t *testing.T) {
	// Two schedules with the same seed and rules must afflict the same
	// connections: with Prob(0.5), the per-conn draws are identical.
	draws := func(seed uint64) []bool {
		sched := NewSchedule(seed)
		r := sched.CorruptFrame(1).Prob(0.5)
		var out []bool
		for i := 0; i < 32; i++ {
			rng := sched.nextConnRand()
			out = append(out, r.matches("n", rng))
		}
		return out
	}
	a, b := draws(42), draws(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
	}
	c := draws(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestSendVecCountsTowardReset(t *testing.T) {
	sched := NewSchedule(10)
	sched.ResetAfter(16)
	p := newPair(t, sched)
	vs, ok := p.conn.(transport.VectorSender)
	if !ok {
		t.Fatal("faultConn does not implement VectorSender")
	}
	if err := vs.SendVec([][]byte{make([]byte, 8), make([]byte, 4)}); err != nil {
		t.Fatalf("sendvec under budget: %v", err)
	}
	err := vs.SendVec([][]byte{make([]byte, 8), make([]byte, 8)})
	if !errors.Is(err, transport.ErrConnClosed) {
		t.Fatalf("sendvec over budget: got %v, want ErrConnClosed", err)
	}
}
