package flow

import "sync/atomic"

// Decision is the admission ledger's verdict on one fetch request.
type Decision uint8

// The admission decisions.
const (
	// Accept: under the accept budget, proceed normally.
	Accept Decision = iota
	// Queue: over the accept budget but under the hard limit — the
	// request proceeds, counted as queued pressure.
	Queue
	// Shed: over the hard limit — reject now, retry after the hint.
	Shed
)

// String names a decision for logs and debug pages.
func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Queue:
		return "queue"
	case Shed:
		return "shed"
	}
	return "unknown"
}

// Ledger is the supplier's byte-budgeted admission ledger. A request
// is charged its segment length when it is admitted into the prefetch
// pipeline and released when transmission (or a failure path) ends its
// trip, so the balance bounds queued requests, DataCache residency of
// staged segments, and transmit-queue depth together. Admit and
// Release are lock-free atomics — per-request cost on the supplier's
// hot path is a compare-and-swap, with no allocation.
type Ledger struct {
	budget int64 // accept below this
	limit  int64 // shed at or above this (budget + queue allowance)

	used     atomic.Int64
	shedding atomic.Bool // latched on first shed, cleared by recovery
	// draining is the graceful-shutdown latch: while set, Admit sheds
	// every request unconditionally so the pipeline takes on no new
	// work while the already-admitted balance drains to zero. Unlike a
	// capacity shed it does not latch the shedding episode — a draining
	// supplier must never grant recovery credits, since capacity is
	// leaving, not returning.
	draining atomic.Bool

	sheds      atomic.Int64
	shedBytes  atomic.Int64
	queued     atomic.Int64
	credits    atomic.Int64
	drainSheds atomic.Int64
}

// NewLedger creates a ledger from a defaulted Config.
func NewLedger(cfg Config) *Ledger {
	return &Ledger{budget: cfg.AdmitBytes, limit: cfg.AdmitBytes + cfg.QueueBytes}
}

// Admit charges n bytes and returns the decision. A Shed charges
// nothing — the caller rejects the request and must not Release. A
// request larger than the whole limit is admitted alone (like an
// oversized DataCache segment) rather than shed forever.
func (l *Ledger) Admit(n int64) Decision {
	if l.draining.Load() {
		l.drainSheds.Add(1)
		ledDrainSheds.Inc()
		return Shed
	}
	for {
		cur := l.used.Load()
		next := cur + n
		if next > l.limit && cur > 0 {
			l.shedding.Store(true)
			l.sheds.Add(1)
			l.shedBytes.Add(n)
			ledSheds.Inc()
			ledShedBytes.Add(n)
			return Shed
		}
		if l.used.CompareAndSwap(cur, next) {
			ledUsed.Add(n)
			if next > l.budget {
				l.queued.Add(1)
				ledQueued.Inc()
				return Queue
			}
			return Accept
		}
	}
}

// Release returns n admitted bytes. It reports whether this release
// recovered the ledger from a shedding episode — the balance dropped
// back under the accept budget after at least one shed — which is the
// caller's cue to grant credits to its peers.
func (l *Ledger) Release(n int64) (recovered bool) {
	next := l.used.Add(-n)
	ledUsed.Add(-n)
	if next < l.budget && l.shedding.CompareAndSwap(true, false) {
		l.credits.Add(1)
		ledCredits.Inc()
		return true
	}
	return false
}

// Used returns the currently admitted byte balance.
func (l *Ledger) Used() int64 { return l.used.Load() }

// SetDraining flips the ledger's drain latch. While draining every
// Admit sheds, so the admitted balance can only fall; the owner watches
// Used() reach zero to know the pipeline is empty. Setting it again (in
// either direction) is idempotent.
func (l *Ledger) SetDraining(v bool) { l.draining.Store(v) }

// Draining reports whether the drain latch is set.
func (l *Ledger) Draining() bool { return l.draining.Load() }

// State snapshots the ledger for the /debug/jbs/flow endpoint.
func (l *Ledger) State() LedgerState {
	return LedgerState{
		Budget:     l.budget,
		Limit:      l.limit,
		Used:       l.used.Load(),
		Queued:     l.queued.Load(),
		Sheds:      l.sheds.Load(),
		Credits:    l.credits.Load(),
		Shedding:   l.shedding.Load(),
		Draining:   l.draining.Load(),
		DrainSheds: l.drainSheds.Load(),
	}
}
