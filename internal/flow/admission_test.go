package flow

import (
	"sync"
	"testing"
)

// ledgerCfg builds a defaulted config with the given budget split.
func ledgerCfg(t *testing.T, admit, queue int64) Config {
	t.Helper()
	cfg := Config{AdmitBytes: admit, QueueBytes: queue}
	if err := cfg.ApplyDefaults(); err != nil {
		t.Fatalf("config: %v", err)
	}
	return cfg
}

func TestLedgerDecisions(t *testing.T) {
	l := NewLedger(ledgerCfg(t, 100, 50)) // accept < 100, shed > 150

	if d := l.Admit(60); d != Accept {
		t.Fatalf("first 60 = %v, want accept", d)
	}
	if d := l.Admit(60); d != Queue {
		t.Fatalf("second 60 (total 120) = %v, want queue", d)
	}
	if d := l.Admit(60); d != Shed {
		t.Fatalf("third 60 (would be 180) = %v, want shed", d)
	}
	if got := l.Used(); got != 120 {
		t.Fatalf("Used() = %d after shed, want 120 (sheds charge nothing)", got)
	}
	st := l.State()
	if st.Sheds != 1 || st.Queued != 1 || !st.Shedding {
		t.Errorf("state = %+v, want 1 shed, 1 queued, shedding", st)
	}
}

func TestLedgerOversizedAdmittedAlone(t *testing.T) {
	l := NewLedger(ledgerCfg(t, 100, 50))
	// A request larger than the whole limit must still be served when the
	// ledger is empty — shedding it forever would deadlock that segment.
	if d := l.Admit(1000); d == Shed {
		t.Fatal("oversized request shed on an empty ledger")
	}
	// But with anything resident, it sheds like the rest.
	if d := l.Admit(1000); d != Shed {
		t.Fatalf("second oversized = %v, want shed", d)
	}
	l.Release(1000)
	if got := l.Used(); got != 0 {
		t.Fatalf("Used() = %d after release, want 0", got)
	}
}

func TestLedgerRecoveryGrantsCreditsOnce(t *testing.T) {
	l := NewLedger(ledgerCfg(t, 100, 50))
	if d := l.Admit(120); d != Queue {
		t.Fatalf("120 = %v, want queue", d)
	}
	if d := l.Admit(60); d != Shed {
		t.Fatalf("60 over limit = %v, want shed", d)
	}
	// Dropping back under budget after a shed episode recovers exactly once.
	if !l.Release(30) { // 120 -> 90 < 100
		t.Fatal("release under budget after shed did not report recovery")
	}
	if l.Release(30) {
		t.Fatal("second release reported recovery again (must latch)")
	}
	st := l.State()
	if st.Credits != 1 || st.Shedding {
		t.Errorf("state = %+v, want 1 credit and shedding cleared", st)
	}
	// A fresh shed episode re-arms recovery.
	l.Admit(200) // 60 resident + 200 > 150: shed
	if st := l.State(); !st.Shedding {
		t.Fatalf("state = %+v, want shedding after new overload", st)
	}
	if !l.Release(60) { // back to 0 < 100
		t.Fatal("recovery did not re-arm after a new shed episode")
	}
}

// TestLedgerConcurrentBalance hammers Admit/Release from many goroutines
// and checks the balance nets to zero — the CAS loop loses no updates.
// The race detector makes this a memory-model check too.
func TestLedgerConcurrentBalance(t *testing.T) {
	l := NewLedger(ledgerCfg(t, 1<<20, 1<<19))
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if l.Admit(n) != Shed {
					l.Release(n)
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	if got := l.Used(); got != 0 {
		t.Fatalf("Used() = %d after balanced admit/release, want 0", got)
	}
}
