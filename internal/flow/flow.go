// Package flow is the shuffle service's control plane: admission
// control, credit-based flow control, and multi-tenant fair scheduling
// layered over the data plane in internal/core. The paper's MOFSupplier
// and NetMerger run on fixed policies — strict round-robin over MOF
// groups, a constant per-node in-flight window — which keep a single
// job fair but collapse under multi-job traffic: one hot reducer or an
// overloaded supplier node can exhaust DataCache memory and
// transmit-queue depth for everyone. This package turns those fixed
// knobs into adaptive, observable policy:
//
//   - Ledger — a byte-budgeted admission ledger the supplier consults
//     before committing a fetch request to the prefetch pipeline. It
//     covers the request's whole resident life (queue, DataCache,
//     transmit), so it bounds DataCache residency and transmit-queue
//     depth together. Over budget it queues; over the hard limit it
//     sheds, and shed responses carry a retry-after hint.
//   - Window — a per-node-pair AIMD congestion window replacing the
//     merger's fixed WindowPerNode: additive growth on clean
//     deliveries and explicit credits, multiplicative collapse on
//     shed and timeout signals, clamped to [WindowMin, WindowMax].
//   - DRR — a weighted deficit round-robin scheduler generalizing the
//     supplier's round-robin over MOF groups to per-tenant fairness,
//     so a multi-job run cannot be starved by one heavy tenant.
//
// Everything here is allocation-free on the data path (atomics and
// plain fields mutated under the caller's existing locks); shedding,
// credit grants, and tenant registration are the cold paths. Flow
// state is observable through the metrics registry and the
// /debug/jbs/flow endpoint (internal/debug), fed by the Source
// registry in this package.
package flow

import (
	"fmt"
	"time"
)

// TenantFunc maps a map-task id to the tenant (job) it belongs to, for
// weighted fair queueing on the supplier. A nil TenantFunc places all
// traffic in one tenant. Implementations must not allocate: they run
// once per fetch request (string slicing is fine, formatting is not).
type TenantFunc func(task string) string

// Defaults for the zero-valued Config fields.
const (
	// DefaultAdmitBytes is the admission ledger's accept budget: the
	// resident bytes (queued + staged + transmitting) a supplier takes
	// on before new requests count as queued pressure. Half a default
	// DataCache keeps eviction ahead of admission.
	DefaultAdmitBytes = 32 << 20
	// DefaultRetryAfter is the base retry-after hint carried on shed
	// responses; the merger adds jitter before re-sending.
	DefaultRetryAfter = 2 * time.Millisecond
	// DefaultWindowStart is the initial AIMD window, matching the
	// paper's fixed WindowPerNode of 4.
	DefaultWindowStart = 4
	// DefaultWindowMin is the AIMD window floor: one request stays in
	// flight so progress (and fresh congestion signals) never stop.
	DefaultWindowMin = 1
	// DefaultWindowMax is the AIMD window ceiling.
	DefaultWindowMax = 64
	// DefaultIncrease is the additive-increase unit per clean delivery.
	DefaultIncrease = 1
	// DefaultQuantum is the deficit round-robin byte quantum granted
	// per tenant turn — two default transport buffers, so one turn
	// covers a couple of chunked segments.
	DefaultQuantum = 256 << 10
)

// Config tunes the flow subsystem. The zero value of every field means
// "use the default"; negative values are rejected by name, matching
// the config conventions of internal/core.
type Config struct {
	// AdmitBytes is the admission ledger's accept budget in resident
	// bytes; requests admitted beyond it are counted as queued.
	AdmitBytes int64
	// QueueBytes is the additional allowance beyond AdmitBytes before
	// the supplier sheds (0 = half of AdmitBytes). The hard limit is
	// AdmitBytes + QueueBytes.
	QueueBytes int64
	// RetryAfter is the base retry-after hint on shed responses.
	RetryAfter time.Duration
	// WindowStart is the initial per-node AIMD window.
	WindowStart int
	// WindowMin is the window floor (never below 1).
	WindowMin int
	// WindowMax is the window ceiling.
	WindowMax int
	// Increase is the additive-increase unit credited per clean
	// delivery; the window grows by roughly Increase per RTT round.
	Increase int
	// Decrease is the multiplicative-decrease factor applied on shed
	// or timeout, in (0, 1); 0 means the default 0.5.
	Decrease float64
	// Quantum is the weighted-deficit-round-robin byte quantum granted
	// per tenant turn on the supplier's prefetch scheduler.
	Quantum int64
	// Weights maps tenant names to relative scheduling weights; absent
	// tenants weigh 1. Zero or negative weights are rejected by name.
	Weights map[string]int64
}

// ApplyDefaults validates cfg and fills zero fields with defaults,
// following the core config rule: zero means default, negative (or
// otherwise unusable) is rejected by name.
func (c *Config) ApplyDefaults() error {
	if c.AdmitBytes < 0 {
		return fmt.Errorf("flow: AdmitBytes %d must not be negative", c.AdmitBytes)
	}
	if c.QueueBytes < 0 {
		return fmt.Errorf("flow: QueueBytes %d must not be negative", c.QueueBytes)
	}
	if c.RetryAfter < 0 {
		return fmt.Errorf("flow: RetryAfter %v must not be negative", c.RetryAfter)
	}
	if c.WindowStart < 0 {
		return fmt.Errorf("flow: WindowStart %d must not be negative", c.WindowStart)
	}
	if c.WindowMin < 0 {
		return fmt.Errorf("flow: WindowMin %d must not be negative", c.WindowMin)
	}
	if c.WindowMax < 0 {
		return fmt.Errorf("flow: WindowMax %d must not be negative", c.WindowMax)
	}
	if c.Increase < 0 {
		return fmt.Errorf("flow: Increase %d must not be negative", c.Increase)
	}
	if c.Decrease < 0 || c.Decrease >= 1 {
		return fmt.Errorf("flow: Decrease %g must be in [0, 1)", c.Decrease)
	}
	if c.Quantum < 0 {
		return fmt.Errorf("flow: Quantum %d must not be negative", c.Quantum)
	}
	for tenant, w := range c.Weights {
		if w <= 0 {
			return fmt.Errorf("flow: weight %d for tenant %q must be positive", w, tenant)
		}
	}
	if c.AdmitBytes == 0 {
		c.AdmitBytes = DefaultAdmitBytes
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = c.AdmitBytes / 2
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.WindowStart == 0 {
		c.WindowStart = DefaultWindowStart
	}
	if c.WindowMin == 0 {
		c.WindowMin = DefaultWindowMin
	}
	if c.WindowMax == 0 {
		c.WindowMax = DefaultWindowMax
	}
	if c.Increase == 0 {
		c.Increase = DefaultIncrease
	}
	if c.Decrease == 0 {
		c.Decrease = 0.5
	}
	if c.Quantum == 0 {
		c.Quantum = DefaultQuantum
	}
	// Belt and braces on the derived values: a zero-or-negative
	// effective window or quantum would wedge the scheduler, so reject
	// inconsistent combinations by name rather than clamp silently.
	if c.WindowMin > c.WindowMax {
		return fmt.Errorf("flow: WindowMin %d exceeds WindowMax %d", c.WindowMin, c.WindowMax)
	}
	if c.WindowStart < c.WindowMin || c.WindowStart > c.WindowMax {
		return fmt.Errorf("flow: WindowStart %d outside [WindowMin %d, WindowMax %d]",
			c.WindowStart, c.WindowMin, c.WindowMax)
	}
	return nil
}
