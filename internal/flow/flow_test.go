package flow

import (
	"strings"
	"testing"
	"time"
)

func TestApplyDefaultsFillsZeroes(t *testing.T) {
	var cfg Config
	if err := cfg.ApplyDefaults(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if cfg.AdmitBytes != DefaultAdmitBytes {
		t.Errorf("AdmitBytes = %d, want %d", cfg.AdmitBytes, DefaultAdmitBytes)
	}
	if cfg.QueueBytes != DefaultAdmitBytes/2 {
		t.Errorf("QueueBytes = %d, want %d", cfg.QueueBytes, DefaultAdmitBytes/2)
	}
	if cfg.RetryAfter != DefaultRetryAfter {
		t.Errorf("RetryAfter = %v, want %v", cfg.RetryAfter, DefaultRetryAfter)
	}
	if cfg.WindowStart != DefaultWindowStart || cfg.WindowMin != DefaultWindowMin ||
		cfg.WindowMax != DefaultWindowMax || cfg.Increase != DefaultIncrease {
		t.Errorf("window defaults = start %d min %d max %d inc %d",
			cfg.WindowStart, cfg.WindowMin, cfg.WindowMax, cfg.Increase)
	}
	if cfg.Decrease != 0.5 {
		t.Errorf("Decrease = %g, want 0.5", cfg.Decrease)
	}
	if cfg.Quantum != DefaultQuantum {
		t.Errorf("Quantum = %d, want %d", cfg.Quantum, DefaultQuantum)
	}
}

// TestApplyDefaultsRejectsByName checks every invalid field is rejected
// with an error naming the field — the config convention shared with
// internal/core.
func TestApplyDefaultsRejectsByName(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring the error must contain
	}{
		{"negative AdmitBytes", Config{AdmitBytes: -1}, "AdmitBytes"},
		{"negative QueueBytes", Config{QueueBytes: -1}, "QueueBytes"},
		{"negative RetryAfter", Config{RetryAfter: -time.Millisecond}, "RetryAfter"},
		{"negative WindowStart", Config{WindowStart: -1}, "WindowStart"},
		{"negative WindowMin", Config{WindowMin: -2}, "WindowMin"},
		{"negative WindowMax", Config{WindowMax: -3}, "WindowMax"},
		{"negative Increase", Config{Increase: -1}, "Increase"},
		{"negative Decrease", Config{Decrease: -0.5}, "Decrease"},
		{"Decrease of 1 never shrinks", Config{Decrease: 1}, "Decrease"},
		{"negative Quantum", Config{Quantum: -1}, "Quantum"},
		{"zero tenant weight", Config{Weights: map[string]int64{"j": 0}}, `tenant "j"`},
		{"negative tenant weight", Config{Weights: map[string]int64{"k": -2}}, `tenant "k"`},
		{"min above max", Config{WindowMin: 8, WindowMax: 4}, "WindowMin"},
		{"start below min", Config{WindowStart: 1, WindowMin: 2}, "WindowStart"},
		{"start above max", Config{WindowStart: 9, WindowMax: 8}, "WindowStart"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.ApplyDefaults()
			if err == nil {
				t.Fatalf("config %+v accepted, want error naming %s", c.cfg, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not name %q", err, c.want)
			}
		})
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{Accept: "accept", Queue: "queue", Shed: "shed", Decision(99): "unknown"} {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, got, want)
		}
	}
}
