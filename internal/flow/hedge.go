package flow

import (
	"fmt"
	"slices"
	"time"
)

// Defaults for the zero-valued HedgeConfig fields.
const (
	// DefaultHedgeQuantile is the RTT quantile the hedge threshold is
	// derived from: a fetch outliving the node's p95 is presumed to be
	// a straggler worth racing.
	DefaultHedgeQuantile = 0.95
	// DefaultHedgeMultiplier scales the quantile into the threshold.
	// 2× p95 keeps the duplicate rate well under 5% on a stable node
	// while still firing orders of magnitude before FetchTimeout.
	DefaultHedgeMultiplier = 2.0
	// DefaultHedgeMinDelay floors the threshold so sub-millisecond RTTs
	// on a loopback fixture cannot arm hedges for ordinary jitter.
	DefaultHedgeMinDelay = time.Millisecond
	// DefaultHedgeMinSamples is how many RTT observations a node needs
	// before its quantile is trusted; below it the Baseline (if any)
	// applies.
	DefaultHedgeMinSamples = 16
	// DefaultHedgeMaxOutstanding caps concurrently racing duplicates.
	// Past the cap hedging degrades to the plain retry/watchdog path
	// instead of amplifying an overload.
	DefaultHedgeMaxOutstanding = 4
	// DefaultHedgeScanInterval is the hedge scanner's tick. One
	// millisecond bounds the firing slack without measurable CPU cost
	// (the scan is one map walk under the merger lock).
	DefaultHedgeScanInterval = time.Millisecond
)

// rttRingSize is the fixed capacity of an RTTRing. 64 samples give a
// p95 with enough resolution (rank 61 of 64) while keeping the quantile
// computation a fixed-size copy-and-sort.
const rttRingSize = 64

// RTTRing is a fixed-capacity rolling window of RTT samples feeding the
// hedge threshold. Unlike the log2 metrics histogram it forgets — a
// node that was slow an hour ago should not hedge forever — and its
// quantile is exact over the window rather than a power-of-two bucket
// edge. Like Window it is not safe for concurrent use: the owner (the
// merger) guards it with its own lock.
type RTTRing struct {
	samples [rttRingSize]int64 // nanoseconds, ring-ordered
	scratch [rttRingSize]int64 // Quantile's sort buffer
	n       int                // filled entries, <= rttRingSize
	next    int                // next write position
}

// Add records one RTT sample in nanoseconds, evicting the oldest once
// the ring is full.
func (r *RTTRing) Add(ns int64) {
	r.samples[r.next] = ns
	r.next = (r.next + 1) % rttRingSize
	if r.n < rttRingSize {
		r.n++
	}
}

// Len returns the number of samples currently held.
func (r *RTTRing) Len() int { return r.n }

// Quantile returns the q-quantile (0 < q <= 1) of the held samples in
// nanoseconds, 0 when empty. It sorts into a preallocated scratch
// buffer, so it does not allocate; at 64 entries the sort is cheap
// enough for a per-tick scan.
func (r *RTTRing) Quantile(q float64) int64 {
	if r.n == 0 {
		return 0
	}
	s := r.scratch[:r.n]
	copy(s, r.samples[:r.n])
	slices.Sort(s)
	// Rank ⌈q·n⌉, 1-based, clamped into the window.
	rank := int(q * float64(r.n))
	if float64(rank) < q*float64(r.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > r.n {
		rank = r.n
	}
	return s[rank-1]
}

// HedgeConfig tunes the merger's speculative-fetch controller. The zero
// value of every field means "use the default"; negative values are
// rejected by name, matching Config's conventions. The zero value of
// Baseline is meaningful (hedging stays disarmed on a node until
// MinSamples RTTs are observed), so cold-start hedging is opt-in.
type HedgeConfig struct {
	// Quantile is the RTT quantile the threshold derives from (0 =
	// 0.95). Must be in (0, 1] when set.
	Quantile float64
	// Multiplier scales the quantile RTT into the hedge threshold
	// (0 = 2.0).
	Multiplier float64
	// MinDelay floors the threshold: a hedge never fires earlier than
	// this after the original send (0 = 1ms).
	MinDelay time.Duration
	// MaxDelay caps the threshold when set; zero means no cap (the
	// fetch deadline watchdog is the backstop either way).
	MaxDelay time.Duration
	// Baseline is the threshold used while a node has fewer than
	// MinSamples RTT observations. Zero keeps hedging disarmed until
	// the quantile is trustworthy; chaos scenarios and latency-critical
	// jobs set it so a node that stalls on its very first fetches is
	// still rescued.
	Baseline time.Duration
	// MinSamples is how many RTT samples a node needs before its
	// quantile-derived threshold applies (0 = 16).
	MinSamples int
	// MaxOutstanding caps concurrently outstanding hedge duplicates
	// across all nodes; at the cap new hedges are denied and the fetch
	// falls back to the plain retry/watchdog path (0 = 4).
	MaxOutstanding int
	// ScanInterval is the hedge scanner's tick (0 = 1ms).
	ScanInterval time.Duration
}

// ApplyDefaults validates cfg and fills zero fields with defaults.
func (c *HedgeConfig) ApplyDefaults() error {
	if c.Quantile < 0 || c.Quantile > 1 {
		return fmt.Errorf("flow: hedge Quantile %g must be in (0, 1]", c.Quantile)
	}
	if c.Multiplier < 0 {
		return fmt.Errorf("flow: hedge Multiplier %g must not be negative", c.Multiplier)
	}
	if c.MinDelay < 0 {
		return fmt.Errorf("flow: hedge MinDelay %v must not be negative", c.MinDelay)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("flow: hedge MaxDelay %v must not be negative", c.MaxDelay)
	}
	if c.Baseline < 0 {
		return fmt.Errorf("flow: hedge Baseline %v must not be negative", c.Baseline)
	}
	if c.MinSamples < 0 {
		return fmt.Errorf("flow: hedge MinSamples %d must not be negative", c.MinSamples)
	}
	if c.MaxOutstanding < 0 {
		return fmt.Errorf("flow: hedge MaxOutstanding %d must not be negative", c.MaxOutstanding)
	}
	if c.ScanInterval < 0 {
		return fmt.Errorf("flow: hedge ScanInterval %v must not be negative", c.ScanInterval)
	}
	if c.Quantile == 0 {
		c.Quantile = DefaultHedgeQuantile
	}
	if c.Multiplier == 0 {
		c.Multiplier = DefaultHedgeMultiplier
	}
	if c.MinDelay == 0 {
		c.MinDelay = DefaultHedgeMinDelay
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultHedgeMinSamples
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = DefaultHedgeMaxOutstanding
	}
	if c.ScanInterval == 0 {
		c.ScanInterval = DefaultHedgeScanInterval
	}
	if c.MaxDelay > 0 && c.MaxDelay < c.MinDelay {
		return fmt.Errorf("flow: hedge MaxDelay %v below MinDelay %v", c.MaxDelay, c.MinDelay)
	}
	return nil
}

// Threshold computes the hedge-arm delay for a node from its rolling
// RTT window: Multiplier × Quantile(RTT), clamped to [MinDelay,
// MaxDelay]. With fewer than MinSamples observations it returns
// Baseline — zero meaning "do not hedge this node yet". Callers hold
// the lock guarding ring.
func (c *HedgeConfig) Threshold(ring *RTTRing) time.Duration {
	if ring == nil || ring.Len() < c.MinSamples {
		return c.Baseline
	}
	thr := time.Duration(c.Multiplier * float64(ring.Quantile(c.Quantile)))
	if thr < c.MinDelay {
		thr = c.MinDelay
	}
	if c.MaxDelay > 0 && thr > c.MaxDelay {
		thr = c.MaxDelay
	}
	return thr
}
