package flow

import (
	"strings"
	"testing"
	"time"
)

func TestRTTRingQuantile(t *testing.T) {
	var r RTTRing
	if got := r.Quantile(0.95); got != 0 {
		t.Fatalf("empty ring quantile = %d, want 0", got)
	}
	for i := int64(1); i <= 64; i++ {
		r.Add(i)
	}
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
	// Rank ⌈q·n⌉ over 1..64: p50 → rank 32, p95 → rank 61, p100 → 64.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 32}, {0.95, 61}, {1.0, 64}} {
		if got := r.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestRTTRingRolls(t *testing.T) {
	var r RTTRing
	for i := int64(1); i <= 200; i++ {
		r.Add(i)
	}
	if r.Len() != rttRingSize {
		t.Fatalf("Len = %d, want %d", r.Len(), rttRingSize)
	}
	// Only the newest 64 samples (137..200) remain: the minimum must
	// have rolled past the old ones.
	if got := r.Quantile(0.0001); got < 137 {
		t.Errorf("oldest retained sample = %d, want >= 137 (ring must forget)", got)
	}
	if got := r.Quantile(1); got != 200 {
		t.Errorf("max = %d, want 200", got)
	}
}

func TestHedgeConfigDefaults(t *testing.T) {
	var c HedgeConfig
	if err := c.ApplyDefaults(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if c.Quantile != DefaultHedgeQuantile || c.Multiplier != DefaultHedgeMultiplier ||
		c.MinDelay != DefaultHedgeMinDelay || c.MinSamples != DefaultHedgeMinSamples ||
		c.MaxOutstanding != DefaultHedgeMaxOutstanding || c.ScanInterval != DefaultHedgeScanInterval {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.Baseline != 0 || c.MaxDelay != 0 {
		t.Fatalf("Baseline/MaxDelay should stay zero (meaningful zeros): %+v", c)
	}
}

func TestHedgeConfigRejectsByName(t *testing.T) {
	cases := []struct {
		name string
		cfg  HedgeConfig
		want string
	}{
		{"quantile", HedgeConfig{Quantile: 1.5}, "Quantile"},
		{"multiplier", HedgeConfig{Multiplier: -1}, "Multiplier"},
		{"mindelay", HedgeConfig{MinDelay: -time.Millisecond}, "MinDelay"},
		{"maxdelay", HedgeConfig{MaxDelay: -time.Millisecond}, "MaxDelay"},
		{"baseline", HedgeConfig{Baseline: -time.Millisecond}, "Baseline"},
		{"minsamples", HedgeConfig{MinSamples: -1}, "MinSamples"},
		{"maxoutstanding", HedgeConfig{MaxOutstanding: -1}, "MaxOutstanding"},
		{"scaninterval", HedgeConfig{ScanInterval: -time.Second}, "ScanInterval"},
		{"inverted-clamp", HedgeConfig{MinDelay: 10 * time.Millisecond, MaxDelay: time.Millisecond}, "MaxDelay"},
	}
	for _, tc := range cases {
		err := tc.cfg.ApplyDefaults()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

func TestHedgeThreshold(t *testing.T) {
	cfg := HedgeConfig{
		Quantile:   1.0,
		Multiplier: 2.0,
		MinDelay:   time.Millisecond,
		MaxDelay:   100 * time.Millisecond,
		MinSamples: 4,
		Baseline:   7 * time.Millisecond,
	}
	if err := cfg.ApplyDefaults(); err != nil {
		t.Fatal(err)
	}
	var ring RTTRing
	// Below MinSamples: the Baseline applies.
	ring.Add(int64(time.Millisecond))
	if got := cfg.Threshold(&ring); got != 7*time.Millisecond {
		t.Fatalf("cold threshold = %v, want Baseline 7ms", got)
	}
	// Exact: 4 samples with max 10ms → 2 × 10ms = 20ms.
	for _, ms := range []int64{2, 5, 10} {
		ring.Add(ms * int64(time.Millisecond))
	}
	if got := cfg.Threshold(&ring); got != 20*time.Millisecond {
		t.Fatalf("threshold = %v, want 20ms (2 × max RTT)", got)
	}
	// Floor: microsecond RTTs clamp up to MinDelay.
	var fast RTTRing
	for i := 0; i < 8; i++ {
		fast.Add(int64(10 * time.Microsecond))
	}
	if got := cfg.Threshold(&fast); got != time.Millisecond {
		t.Fatalf("floored threshold = %v, want MinDelay 1ms", got)
	}
	// Ceiling: second-long RTTs clamp down to MaxDelay.
	var slow RTTRing
	for i := 0; i < 8; i++ {
		slow.Add(int64(time.Second))
	}
	if got := cfg.Threshold(&slow); got != 100*time.Millisecond {
		t.Fatalf("capped threshold = %v, want MaxDelay 100ms", got)
	}
	// Zero Baseline with too few samples: disarmed.
	cfg.Baseline = 0
	var cold RTTRing
	if got := cfg.Threshold(&cold); got != 0 {
		t.Fatalf("cold threshold without Baseline = %v, want 0 (disarmed)", got)
	}
}
