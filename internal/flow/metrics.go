package flow

import (
	"fmt"

	"repro/internal/metrics"
)

// Registry handles for the flow subsystem. Resolved once at package
// init; the hot-path types (Ledger, Window) touch only pre-resolved
// handles, never the registry map.
var (
	ledSheds = metrics.Default().Counter("jbs_flow_sheds_total", "reqs",
		"fetch requests shed by the admission ledger")
	ledShedBytes = metrics.Default().Counter("jbs_flow_shed_bytes_total", "bytes",
		"bytes of fetch requests shed by the admission ledger")
	ledQueued = metrics.Default().Counter("jbs_flow_admit_queued_total", "reqs",
		"fetch requests admitted over budget (queued pressure)")
	ledCredits = metrics.Default().Counter("jbs_flow_credits_total", "grants",
		"credit grants broadcast after ledger recovery")
	ledUsed = metrics.Default().Gauge("jbs_flow_admitted_bytes", "bytes",
		"bytes currently admitted by the ledger (queued + staged + transmitting)")
	ledDrainSheds = metrics.Default().Counter("jbs_flow_drain_sheds_total", "reqs",
		"fetch requests shed by a draining ledger (graceful shutdown, not capacity)")
)

// tenantQueueGauge resolves the per-tenant queue-occupancy gauge. Called
// once per tenant (on first sight), never on the per-request path.
func tenantQueueGauge(tenant string) *metrics.Gauge {
	return metrics.Default().Gauge(
		fmt.Sprintf("jbs_flow_tenant_queue_bytes{tenant=%q}", tenant), "bytes",
		"bytes queued for one tenant in the supplier's DRR scheduler")
}

// WindowGauge resolves the per-node AIMD window-size gauge for the
// merger. Called once per node group, at group creation.
func WindowGauge(node string) *metrics.Gauge {
	return metrics.Default().Gauge(
		fmt.Sprintf("jbs_flow_window{node=%q}", node), "reqs",
		"current AIMD in-flight window toward one supplier node")
}
