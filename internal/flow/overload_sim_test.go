package flow

import (
	"math/rand/v2"
	"testing"

	"repro/internal/sim"
)

// TestOverloadConvergesSim proves the shed→backoff→retry loop converges
// on a deterministic discrete-event model of the full control loop: two
// merger clients drive AIMD windows against one supplier whose admission
// ledger is far too small for the offered load. Every run is identical
// (seeded jitter, sim clocks). The invariants: every segment is
// delivered exactly once (nothing lost, nothing duplicated), shedding
// actually happened (the scenario really overloads), and the ledger
// balance returns to zero.
func TestOverloadConvergesSim(t *testing.T) {
	const (
		segSize     = 100 << 10 // bytes per segment
		segsPerJob  = 40
		jobs        = 2
		serviceTime = 0.010 // seconds to stage+transmit one segment
		retryAfter  = 0.004 // supplier's shed hint, seconds
	)
	cfg := Config{
		// Room for ~4 resident segments, ~2 more queued: with two
		// clients opening 4-wide windows the supplier must shed.
		AdmitBytes:  4 * segSize,
		QueueBytes:  2 * segSize,
		WindowStart: 4,
		WindowMax:   16,
	}
	if err := cfg.ApplyDefaults(); err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine()
	ledger := NewLedger(cfg)
	rng := rand.New(rand.NewPCG(42, 7)) // deterministic jitter

	delivered := make(map[int]int) // segment id -> delivery count
	var sheds, busy int

	type client struct {
		win      *Window
		pending  []int // segment ids not yet in flight
		inflight int
	}
	clients := make([]*client, jobs)
	for j := range clients {
		c := &client{win: NewWindow(cfg, nil)}
		for s := 0; s < segsPerJob; s++ {
			c.pending = append(c.pending, j*segsPerJob+s)
		}
		clients[j] = c
	}

	// The supplier serves admitted segments with a fixed concurrency of
	// one (busy flag + FIFO would be fancier; serialized service is the
	// worst case for convergence). Completion releases the ledger charge
	// and, on recovery, grants one credit to every client.
	var serveQueue []func()
	var serveNext func()
	serveNext = func() {
		if busy == 1 || len(serveQueue) == 0 {
			return
		}
		busy = 1
		run := serveQueue[0]
		serveQueue = serveQueue[1:]
		eng.After(serviceTime, func() {
			busy = 0
			run()
			serveNext()
		})
	}

	var pump func(c *client)
	request := func(c *client, id int) {
		c.inflight++
		switch ledger.Admit(segSize) {
		case Shed:
			sheds++
			c.win.OnShed()
			// Jittered backoff, exactly as the NetMerger computes it.
			delay := retryAfter + float64(rng.Int64N(int64(retryAfter*1e9)/2+1))/1e9
			eng.After(delay, func() {
				c.inflight--
				c.pending = append([]int{id}, c.pending...)
				pump(c)
			})
		default:
			serveQueue = append(serveQueue, func() {
				delivered[id]++
				if ledger.Release(segSize) {
					for _, cc := range clients {
						cc.win.OnCredit()
					}
				}
				c.inflight--
				c.win.OnClean()
				pump(c)
				// A credit may have widened the other client's window too.
				for _, cc := range clients {
					pump(cc)
				}
			})
			serveNext()
		}
	}
	pump = func(c *client) {
		for c.inflight < c.win.Limit() && len(c.pending) > 0 {
			id := c.pending[0]
			c.pending = c.pending[1:]
			request(c, id)
		}
	}

	for _, c := range clients {
		eng.At(0, func() { pump(c) })
	}
	eng.Run()

	total := jobs * segsPerJob
	if len(delivered) != total {
		t.Fatalf("delivered %d distinct segments, want %d (lost %d)",
			len(delivered), total, total-len(delivered))
	}
	for id, n := range delivered {
		if n != 1 {
			t.Errorf("segment %d delivered %d times, want exactly once", id, n)
		}
	}
	if sheds == 0 {
		t.Fatal("scenario produced no sheds: it does not exercise overload")
	}
	if got := ledger.Used(); got != 0 {
		t.Errorf("ledger balance %d after drain, want 0", got)
	}
	t.Logf("converged at t=%.3fs with %d sheds over %d segments", eng.Now(), sheds, total)
}
