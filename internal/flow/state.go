package flow

import "sync"

// LedgerState is a point-in-time snapshot of one admission ledger.
type LedgerState struct {
	Budget   int64 `json:"budget_bytes"`
	Limit    int64 `json:"limit_bytes"`
	Used     int64 `json:"used_bytes"`
	Queued   int64 `json:"queued_total"`
	Sheds    int64 `json:"sheds_total"`
	Credits  int64 `json:"credits_total"`
	Shedding bool  `json:"shedding"`
	// Draining reports the graceful-shutdown latch: every new request
	// is shed while the admitted balance runs down to zero.
	Draining bool `json:"draining,omitempty"`
	// DrainSheds counts requests shed by the drain latch (distinct from
	// capacity sheds: these never latch a shedding episode or grant
	// recovery credits).
	DrainSheds int64 `json:"drain_sheds_total,omitempty"`
}

// WindowState is a point-in-time snapshot of one AIMD window.
type WindowState struct {
	Node string `json:"node,omitempty"`
	Size int    `json:"size"`
	Min  int    `json:"min"`
	Max  int    `json:"max"`
}

// TenantState is a point-in-time snapshot of one tenant's DRR queue.
type TenantState struct {
	Tenant      string `json:"tenant"`
	Weight      int64  `json:"weight"`
	Deficit     int64  `json:"deficit_bytes"`
	QueuedBytes int64  `json:"queued_bytes"`
	Active      bool   `json:"active"`
}

// State is one flow participant's full control-plane snapshot: a
// supplier reports its ledger and tenant queues, a merger its per-node
// windows and shed/retry counters.
type State struct {
	// Name identifies the participant (typically its listen or target
	// address role, e.g. "supplier 127.0.0.1:9000").
	Name string `json:"name"`
	// Ledger is the admission ledger snapshot (suppliers only).
	Ledger *LedgerState `json:"ledger,omitempty"`
	// Tenants is the DRR occupancy snapshot (suppliers only).
	Tenants []TenantState `json:"tenants,omitempty"`
	// Windows is the per-node AIMD window snapshot (mergers only).
	Windows []WindowState `json:"windows,omitempty"`
	// Sheds counts shed responses received (mergers only).
	Sheds int64 `json:"sheds,omitempty"`
	// ShedRetries counts parked fetches re-queued after their
	// retry-after backoff (mergers only).
	ShedRetries int64 `json:"shed_retries,omitempty"`
	// Hedges counts speculative duplicate fetches launched by the
	// hedging controller (mergers only).
	Hedges int64 `json:"hedges,omitempty"`
	// HedgeWins counts fetches whose speculative attempt delivered
	// first (mergers only).
	HedgeWins int64 `json:"hedge_wins,omitempty"`
	// HedgeDupBytes counts payload bytes received for attempts that had
	// already lost their race — the price paid for hedging (mergers
	// only).
	HedgeDupBytes int64 `json:"hedge_dup_bytes,omitempty"`
	// HedgeOutstanding is the number of duplicate attempts currently
	// racing (mergers only).
	HedgeOutstanding int `json:"hedge_outstanding,omitempty"`
}

// Source is a flow participant that can snapshot its control-plane
// state for the /debug/jbs/flow endpoint.
type Source interface {
	FlowState() State
}

// registration wraps a Source so unregistration can compare by token
// pointer — Source dynamic types need not be comparable.
type registration struct{ src Source }

// sources is the process-wide participant registry behind Snapshot.
var (
	sourcesMu sync.Mutex
	sources   []*registration
)

// Register adds a participant to the process-wide flow registry and
// returns a function that removes it (call it on Close). The debug
// endpoint's Snapshot walks the registry.
func Register(s Source) (unregister func()) {
	r := &registration{src: s}
	sourcesMu.Lock()
	sources = append(sources, r)
	sourcesMu.Unlock()
	return func() {
		sourcesMu.Lock()
		defer sourcesMu.Unlock()
		for i, v := range sources {
			if v == r {
				sources = append(sources[:i], sources[i+1:]...)
				return
			}
		}
	}
}

// Snapshot collects the FlowState of every registered participant, in
// registration order.
func Snapshot() []State {
	sourcesMu.Lock()
	regs := make([]*registration, len(sources))
	copy(regs, sources)
	sourcesMu.Unlock()
	out := make([]State, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.src.FlowState())
	}
	return out
}
