package flow

import (
	"sort"
	"sync"

	"repro/internal/metrics"
)

// DRR is a weighted deficit round-robin scheduler over tenants,
// generalizing the supplier's strict round-robin across MOF groups to
// per-tenant fairness. Arrivals are accounted with Add, the scheduler
// picks the next tenant to serve with Next, and completed service is
// charged with Serve. Each visit tops a tenant's deficit up by
// quantum × weight; a tenant is eligible while its deficit is
// positive. Serving may overdraw the deficit (the caller always serves
// at least one batch, whatever its size, so progress never stalls on a
// huge segment); the debt is repaid from future top-ups, which is what
// keeps long-run byte shares proportional to weights.
//
// The supplier's single prefetch goroutine is the only scheduler
// client, but the /debug/jbs/flow endpoint snapshots occupancy
// concurrently, so all methods take an internal mutex. Per-request
// cost (Add) is one uncontended lock and two integer updates — no
// allocation after a tenant's first request.
type DRR struct {
	mu      sync.Mutex
	quantum int64
	weights map[string]int64
	tenants map[string]*drrTenant
	ring    []*drrTenant // active tenants, round-robin order
	next    int
	turns   int64
}

// drrTenant is one tenant's scheduling state.
type drrTenant struct {
	name    string
	weight  int64
	deficit int64
	queued  int64 // bytes accepted but not yet served
	active  bool  // member of the ring
	queuedG *metrics.Gauge
}

// NewDRR creates a scheduler with the given byte quantum and tenant
// weights (absent tenants weigh 1). The quantum must be positive;
// weights must be positive (enforced by Config.ApplyDefaults).
func NewDRR(quantum int64, weights map[string]int64) *DRR {
	if quantum <= 0 {
		panic("flow: DRR quantum must be positive")
	}
	return &DRR{
		quantum: quantum,
		weights: weights,
		tenants: make(map[string]*drrTenant),
	}
}

// tenant returns (creating on first sight) the named tenant's state.
// Callers hold d.mu.
func (d *DRR) tenant(name string) *drrTenant {
	t, ok := d.tenants[name]
	if !ok {
		w := int64(1)
		if d.weights != nil {
			if tw, ok := d.weights[name]; ok {
				w = tw
			}
		}
		t = &drrTenant{name: name, weight: w, queuedG: tenantQueueGauge(name)}
		d.tenants[name] = t
	}
	return t
}

// Cost is the scheduler charge for one request carrying bytes of
// payload: the byte count, floored at one unit. Zero-length segments
// (empty MOF partitions are valid) must not charge zero — a tenant
// whose remaining queue were all empty segments would otherwise hit
// queued == 0 and deactivate with requests still pending, and those
// fetches would never be served. Serve callers must charge the same
// Cost per completed request so queued reaches zero exactly when the
// tenant has no pending requests.
func Cost(bytes int64) int64 {
	if bytes < 1 {
		return 1
	}
	return bytes
}

// Add accounts the arrival of one request of bytes payload for tenant
// (charged at Cost(bytes)), activating it in the service ring if idle.
func (d *DRR) Add(tenant string, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tenant(tenant)
	t.queued += Cost(bytes)
	t.queuedG.Set(t.queued)
	if !t.active {
		t.active = true
		d.ring = append(d.ring, t)
	}
}

// Next picks the tenant to serve: the first active tenant, in ring
// order, whose deficit is positive after its top-up. Visiting a tenant
// tops its deficit up by quantum × weight, so even a deeply indebted
// tenant becomes eligible after finitely many rounds; with at least
// one active tenant Next always returns one. ok is false only when
// the ring is empty.
func (d *DRR) Next() (tenant string, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.ring) == 0 {
		return "", false
	}
	for {
		if d.next >= len(d.ring) {
			d.next = 0
		}
		t := d.ring[d.next]
		d.next++
		d.turns++
		t.deficit += d.quantum * t.weight
		// Cap banked credit at one full turn's worth: an idle-ish
		// tenant must not hoard unbounded deficit and later lock out
		// the ring (and the cap keeps the arithmetic overflow-proof).
		if cap := 2 * d.quantum * t.weight; t.deficit > cap {
			t.deficit = cap
		}
		if t.deficit > 0 {
			return t.name, true
		}
	}
}

// Serve charges bytes of completed service to tenant — the sum of
// Cost(request bytes) over the served batch, mirroring what Add
// charged on arrival. The deficit may go negative — the debt of a
// batch larger than the remaining deficit — and is repaid by future
// top-ups. A tenant whose queue drains leaves the ring and forfeits
// any banked deficit, the standard DRR rule that stops an idle tenant
// from bursting later.
func (d *DRR) Serve(tenant string, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tenants[tenant]
	if !ok {
		return
	}
	t.deficit -= bytes
	t.queued -= bytes
	if t.queued < 0 {
		t.queued = 0
	}
	t.queuedG.Set(t.queued)
	if t.queued == 0 && t.active {
		t.active = false
		t.deficit = 0
		for i, rt := range d.ring {
			if rt == t {
				d.ring = append(d.ring[:i], d.ring[i+1:]...)
				if d.next > i {
					d.next--
				}
				break
			}
		}
	}
}

// Occupancy snapshots every known tenant's queue state for the
// /debug/jbs/flow endpoint, sorted by tenant name.
func (d *DRR) Occupancy() []TenantState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TenantState, 0, len(d.tenants))
	for _, t := range d.tenants {
		out = append(out, TenantState{
			Tenant:      t.name,
			Weight:      t.weight,
			Deficit:     t.deficit,
			QueuedBytes: t.queued,
			Active:      t.active,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
