package flow

import "testing"

// drain runs the scheduler until every tenant's queue empties, serving
// at most batch bytes (but at least one queued batch) per turn, and
// returns the bytes served per tenant in the first `horizon` turns.
// It mirrors how the supplier's prefetch loop consumes the scheduler.
func drain(t *testing.T, d *DRR, queued map[string]int64, batch int64, horizon int) map[string]int64 {
	t.Helper()
	served := make(map[string]int64)
	remaining := make(map[string]int64, len(queued))
	for tn, b := range queued {
		remaining[tn] = b
	}
	for turn := 0; ; turn++ {
		tn, ok := d.Next()
		if !ok {
			return served
		}
		n := batch
		if n > remaining[tn] {
			n = remaining[tn]
		}
		d.Serve(tn, n)
		remaining[tn] -= n
		if turn < horizon {
			served[tn] += n
		}
		if turn > 100000 {
			t.Fatal("scheduler did not drain (livelock)")
		}
	}
}

func TestDRRWeightedShares(t *testing.T) {
	d := NewDRR(1000, map[string]int64{"heavy": 3, "light": 1})
	queued := map[string]int64{"heavy": 300000, "light": 300000}
	d.Add("heavy", queued["heavy"])
	d.Add("light", queued["light"])

	// While both tenants stay backlogged (the first 100 turns), service
	// must split close to the 3:1 weights. Batches are 3x the quantum —
	// as in the supplier, where a prefetch batch outweighs one quantum —
	// so serving drives the light tenant's deficit negative and the
	// scheduler skips it for the turns that repay the debt.
	served := drain(t, d, queued, 3000, 100)
	ratio := float64(served["heavy"]) / float64(served["light"])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("heavy:light = %d:%d (ratio %.2f), want ~3", served["heavy"], served["light"], ratio)
	}
}

func TestDRRNoStarvation(t *testing.T) {
	d := NewDRR(1000, map[string]int64{"hog": 100})
	// The hog outweighs the default-weight tenant 100:1, and its batches
	// overdraw the deficit every turn — yet the light tenant must still
	// be served within a bounded number of turns.
	d.Add("hog", 1<<30)
	d.Add("meek", 4000)
	servedMeek := false
	for turn := 0; turn < 300 && !servedMeek; turn++ {
		tn, ok := d.Next()
		if !ok {
			t.Fatal("ring empty with queued work")
		}
		d.Serve(tn, 1000)
		if tn == "meek" {
			servedMeek = true
		}
	}
	if !servedMeek {
		t.Fatal("light tenant starved by a 100x-weighted hog")
	}
}

func TestDRRHugeBatchDoesNotStall(t *testing.T) {
	d := NewDRR(1000, nil)
	// One batch 50x the quantum: served in one turn (the caller always
	// serves at least one batch), leaving a debt repaid by later top-ups.
	d.Add("big", 50000)
	d.Add("small", 1000)
	turns := 0
	for {
		tn, ok := d.Next()
		if !ok {
			break
		}
		if tn == "big" {
			d.Serve(tn, 50000)
		} else {
			d.Serve(tn, 1000)
		}
		if turns++; turns > 200 {
			t.Fatal("scheduler did not drain after an oversized batch")
		}
	}
	if turns > 100 {
		t.Errorf("took %d turns to drain two tenants", turns)
	}
}

func TestDRRDrainForfeitsDeficit(t *testing.T) {
	d := NewDRR(1000, nil)
	d.Add("a", 500)
	tn, ok := d.Next()
	if !ok || tn != "a" {
		t.Fatalf("Next() = %q, %v", tn, ok)
	}
	d.Serve("a", 500) // drains: leaves the ring, forfeits banked deficit
	if _, ok := d.Next(); ok {
		t.Fatal("drained tenant still in the ring")
	}
	// Re-activation starts from zero deficit, not banked credit.
	d.Add("a", 100)
	for _, st := range d.Occupancy() {
		if st.Tenant == "a" && st.Deficit != 0 {
			t.Errorf("re-activated tenant kept deficit %d, want 0", st.Deficit)
		}
	}
}

func TestDRRZeroLengthRequestsKeepTenantActive(t *testing.T) {
	d := NewDRR(1000, nil)
	// One real segment plus two empty MOF partitions. Cost floors the
	// empty ones at one unit each; if they charged zero, serving the
	// real segment alone would drain the tenant's byte account and
	// deactivate it with two requests still pending — fetches that
	// would then never be served.
	d.Add("a", 4096)
	d.Add("a", 0)
	d.Add("a", 0)
	d.Serve("a", Cost(4096))
	if tn, ok := d.Next(); !ok || tn != "a" {
		t.Fatalf("Next() = %q, %v after serving the non-empty segment; zero-length requests stranded", tn, ok)
	}
	d.Serve("a", Cost(0))
	if tn, ok := d.Next(); !ok || tn != "a" {
		t.Fatalf("Next() = %q, %v with one zero-length request pending", tn, ok)
	}
	d.Serve("a", Cost(0))
	if _, ok := d.Next(); ok {
		t.Fatal("tenant still active after every request was served")
	}
}

func TestCostFloorsAtOne(t *testing.T) {
	for _, tc := range []struct{ bytes, want int64 }{
		{-1, 1}, {0, 1}, {1, 1}, {4096, 4096},
	} {
		if got := Cost(tc.bytes); got != tc.want {
			t.Errorf("Cost(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestDRROccupancySorted(t *testing.T) {
	d := NewDRR(1000, map[string]int64{"b": 2})
	d.Add("c", 10)
	d.Add("a", 20)
	d.Add("b", 30)
	occ := d.Occupancy()
	if len(occ) != 3 {
		t.Fatalf("Occupancy() has %d tenants, want 3", len(occ))
	}
	for i, want := range []string{"a", "b", "c"} {
		if occ[i].Tenant != want {
			t.Errorf("occ[%d] = %q, want %q", i, occ[i].Tenant, want)
		}
	}
	if occ[1].Weight != 2 || !occ[1].Active || occ[1].QueuedBytes != 30 {
		t.Errorf("tenant b state = %+v", occ[1])
	}
}

func TestDRRPanicsOnBadQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDRR(0, nil) did not panic")
		}
	}()
	NewDRR(0, nil)
}
