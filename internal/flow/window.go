package flow

import "repro/internal/metrics"

// Window is one node-pair's AIMD congestion window, replacing the
// NetMerger's fixed WindowPerNode. The window grows additively on
// clean round trips and explicit credit grants, and shrinks
// multiplicatively on shed and timeout signals, clamped to
// [min, max].
//
// Window is NOT safe for concurrent use: the NetMerger mutates its
// per-node groups (and their windows) under one mutex, and the window
// inherits that discipline so the hot path stays free of extra
// atomics and allocations. The optional size gauge is the only piece
// observable without the owner's lock.
type Window struct {
	size int // current in-flight limit
	acc  int // additive-increase accumulator, in Increase units
	min  int
	max  int
	inc  int
	dec  float64
	// sizeG mirrors size into the metrics registry (nil = unmirrored).
	// It moves only inside Window methods, together with size — the
	// pairing discipline jbsvet's gaugepair check enforces.
	sizeG *metrics.Gauge
}

// NewWindow creates a window from a defaulted Config. gauge, when
// non-nil, mirrors the window size into the metrics registry.
func NewWindow(cfg Config, gauge *metrics.Gauge) *Window {
	w := &Window{
		min:   cfg.WindowMin,
		max:   cfg.WindowMax,
		inc:   cfg.Increase,
		dec:   cfg.Decrease,
		sizeG: gauge,
	}
	w.setSize(cfg.WindowStart)
	return w
}

// Limit returns the current in-flight limit.
func (w *Window) Limit() int { return w.size }

// setSize clamps and applies a new size, mirroring it to the gauge.
func (w *Window) setSize(n int) {
	if n < w.min {
		n = w.min
	}
	if n > w.max {
		n = w.max
	}
	w.size = n
	if w.sizeG != nil {
		w.sizeG.Set(int64(n))
	}
}

// OnClean records one clean delivery (a full segment reassembled with
// no shed or failure). Growth is additive per round trip: each
// delivery banks Increase units, and a full window's worth of units
// buys one more slot — the classic cwnd += 1/cwnd shape in integers.
func (w *Window) OnClean() {
	if w.size >= w.max {
		w.acc = 0
		return
	}
	w.acc += w.inc
	for w.acc >= w.size && w.size < w.max {
		w.acc -= w.size
		w.setSize(w.size + 1)
	}
}

// OnCredit applies one explicit credit granted by the peer (a CREDIT
// frame after its admission ledger recovered): one immediate slot,
// bypassing the per-RTT accumulator.
func (w *Window) OnCredit() {
	w.setSize(w.size + 1)
}

// OnShed records a shed response: multiplicative decrease, floor
// clamped, accumulated growth forfeited.
func (w *Window) OnShed() {
	w.acc = 0
	w.setSize(int(float64(w.size) * w.dec))
}

// OnTimeout records a dead connection or request timeout — the same
// multiplicative collapse as a shed. Kept separate so callers read as
// the signal they saw.
func (w *Window) OnTimeout() {
	w.OnShed()
}

// State snapshots the window for the /debug/jbs/flow endpoint.
// Like every other method it requires the owner's lock.
func (w *Window) State() WindowState {
	return WindowState{Size: w.size, Min: w.min, Max: w.max}
}
