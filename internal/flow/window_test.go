package flow

import "testing"

// windowCfg builds a defaulted config with the given AIMD knobs.
func windowCfg(t *testing.T, start, min, max, inc int, dec float64) Config {
	t.Helper()
	cfg := Config{WindowStart: start, WindowMin: min, WindowMax: max, Increase: inc, Decrease: dec}
	if err := cfg.ApplyDefaults(); err != nil {
		t.Fatalf("config: %v", err)
	}
	return cfg
}

// TestWindowAIMD drives the window through scripted event sequences and
// checks the resulting size: additive growth per window-of-deliveries,
// multiplicative collapse, and the floor/ceiling clamps.
func TestWindowAIMD(t *testing.T) {
	type ev byte
	const (
		clean   ev = 'c'
		shed    ev = 's'
		timeout ev = 't'
		credit  ev = '+'
	)
	cases := []struct {
		name   string
		start  int
		min    int
		max    int
		inc    int
		dec    float64
		events []ev
		want   int
	}{
		{
			name:  "no events keeps start",
			start: 4, min: 1, max: 64, inc: 1, dec: 0.5,
			events: nil, want: 4,
		},
		{
			name:  "one window of cleans grows one slot",
			start: 4, min: 1, max: 64, inc: 1, dec: 0.5,
			// 4 cleans bank 4 units: one full window buys size 5.
			events: []ev{clean, clean, clean, clean}, want: 5,
		},
		{
			name:  "partial window does not grow",
			start: 4, min: 1, max: 64, inc: 1, dec: 0.5,
			events: []ev{clean, clean, clean}, want: 4,
		},
		{
			name:  "growth is additive across rounds",
			start: 2, min: 1, max: 64, inc: 1, dec: 0.5,
			// 2 cleans -> 3, then 3 cleans -> 4.
			events: []ev{clean, clean, clean, clean, clean}, want: 4,
		},
		{
			name:  "shed halves",
			start: 8, min: 1, max: 64, inc: 1, dec: 0.5,
			events: []ev{shed}, want: 4,
		},
		{
			name:  "timeout collapses like shed",
			start: 8, min: 1, max: 64, inc: 1, dec: 0.5,
			events: []ev{timeout}, want: 4,
		},
		{
			name:  "repeated sheds clamp at floor",
			start: 8, min: 2, max: 64, inc: 1, dec: 0.5,
			events: []ev{shed, shed, shed, shed, shed}, want: 2,
		},
		{
			name:  "growth clamps at ceiling",
			start: 3, min: 1, max: 4, inc: 1, dec: 0.5,
			events: []ev{clean, clean, clean, clean, clean, clean, clean, clean, clean}, want: 4,
		},
		{
			name:  "credit grows immediately",
			start: 4, min: 1, max: 64, inc: 1, dec: 0.5,
			events: []ev{credit}, want: 5,
		},
		{
			name:  "credit clamps at ceiling",
			start: 4, min: 1, max: 4, inc: 1, dec: 0.5,
			events: []ev{credit, credit}, want: 4,
		},
		{
			name:  "shed forfeits banked growth",
			start: 4, min: 1, max: 64, inc: 1, dec: 0.5,
			// 3 banked cleans are wiped by the shed (4 -> 2); the next 2
			// cleans then buy exactly one slot back.
			events: []ev{clean, clean, clean, shed, clean, clean}, want: 3,
		},
		{
			name:  "aggressive increase unit",
			start: 4, min: 1, max: 64, inc: 4, dec: 0.5,
			// One clean banks a full window: immediate growth.
			events: []ev{clean}, want: 5,
		},
		{
			name:  "gentle decrease factor",
			start: 10, min: 1, max: 64, inc: 1, dec: 0.9,
			events: []ev{shed}, want: 9,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := NewWindow(windowCfg(t, c.start, c.min, c.max, c.inc, c.dec), nil)
			for _, e := range c.events {
				switch e {
				case clean:
					w.OnClean()
				case shed:
					w.OnShed()
				case timeout:
					w.OnTimeout()
				case credit:
					w.OnCredit()
				}
			}
			if got := w.Limit(); got != c.want {
				t.Errorf("after %q: Limit() = %d, want %d", c.events, got, c.want)
			}
			st := w.State()
			if st.Size != w.Limit() || st.Min != c.min || st.Max != c.max {
				t.Errorf("State() = %+v inconsistent with window", st)
			}
		})
	}
}

// TestWindowGaugeMirror checks the registry gauge tracks every size move.
func TestWindowGaugeMirror(t *testing.T) {
	g := WindowGauge("test-node:1")
	w := NewWindow(windowCfg(t, 4, 1, 64, 1, 0.5), g)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d after creation, want 4", g.Load())
	}
	w.OnShed()
	if g.Load() != 2 {
		t.Errorf("gauge = %d after shed, want 2", g.Load())
	}
	w.OnCredit()
	if g.Load() != 3 {
		t.Errorf("gauge = %d after credit, want 3", g.Load())
	}
}
