// Package leakcheck detects leaked goroutines at the end of a test run —
// the runtime complement to jbsvet's static `goroutines` check. The JBS
// pipeline (MOFSupplier accept/prefetch/xmit loops, NetMerger readers and
// injector, the RDMA emulation's event threads) spawns goroutines on every
// connection; a single missed shutdown path stalls `go test`, pins
// memory, and at production scale turns into a slow node. Wiring
// leakcheck.Main into a package's TestMain makes that class of bug a test
// failure.
//
// Usage, in a package's main_test.go:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Finer-grained use inside a single test:
//
//	snap := leakcheck.Take()
//	... exercise code ...
//	if err := snap.Check(0); err != nil { t.Fatal(err) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// DefaultWait is how long Check waits for straggler goroutines to exit
// before declaring them leaked. Teardown paths that close network
// connections need a few scheduler rounds to unwind.
const DefaultWait = 2 * time.Second

// Snapshot records the goroutines alive at a point in time.
type Snapshot struct {
	ids map[string]bool // goroutine ids ("goroutine 42") alive at Take
}

// Take snapshots the currently live goroutines. Goroutines alive now are
// exempt from a later Check, so packages can take one snapshot in
// TestMain and ignore everything the runtime or earlier packages started.
func Take() *Snapshot {
	s := &Snapshot{ids: make(map[string]bool)}
	for _, g := range stacks() {
		s.ids[g.id] = true
	}
	return s
}

// Check reports an error if goroutines started after the snapshot are
// still running. It polls until wait elapses (DefaultWait if wait <= 0),
// giving teardown paths time to unwind; known-benign runtime and testing
// goroutines are ignored.
func (s *Snapshot) Check(wait time.Duration) error {
	if wait <= 0 {
		wait = DefaultWait
	}
	deadline := time.Now().Add(wait)
	delay := time.Millisecond
	for {
		leaked := s.leaked()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			var b strings.Builder
			fmt.Fprintf(&b, "%d leaked goroutine(s) after %v:", len(leaked), wait)
			for _, g := range leaked {
				fmt.Fprintf(&b, "\n\n%s [%s]:\n%s", g.id, g.state, g.stack)
			}
			return fmt.Errorf("leakcheck: %s", b.String())
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// leaked returns goroutines that are neither in the snapshot nor benign.
func (s *Snapshot) leaked() []goroutine {
	var out []goroutine
	for _, g := range stacks() {
		if s.ids[g.id] || benign(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// benignMarkers appear in stacks the test harness and runtime own; those
// goroutines are not leaks of the code under test.
var benignMarkers = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests(",
	"testing.runFuzzing(",
	"runtime.goexit0",
	"runtime.gc",
	"runtime.MHeap",
	"runtime/trace.Start",
	"os/signal.signal_recv",
	"os/signal.loop",
	"repro/internal/leakcheck.",
}

func benign(g goroutine) bool {
	for _, m := range benignMarkers {
		if strings.Contains(g.stack, m) {
			return true
		}
	}
	return false
}

// goroutine is one parsed stanza of runtime.Stack output.
type goroutine struct {
	id    string // "goroutine 42"
	state string // "chan receive", "IO wait", ...
	stack string
}

// stacks captures and parses the full goroutine dump.
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		header, rest, _ := strings.Cut(stanza, "\n")
		if !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id := header
		state := ""
		if i := strings.IndexByte(header, '['); i > 0 {
			id = strings.TrimSpace(header[:i])
			state = strings.Trim(header[i:], "[]:")
		}
		out = append(out, goroutine{id: id, state: state, stack: rest})
	}
	return out
}

// Main runs a package's tests with leak detection: it snapshots before
// m.Run and fails the run if new goroutines survive teardown. Use it as
// the body of TestMain.
func Main(m *testing.M) {
	snap := Take()
	code := m.Run()
	if code == 0 {
		if err := snap.Check(0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
