package leakcheck_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// TestMain: the leak checker checks itself.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}

// leakyWorker blocks until released — a deliberate leak while release
// stays open.
func leakyWorker(release chan struct{}) {
	<-release
}

func TestDetectsDeliberateLeak(t *testing.T) {
	snap := leakcheck.Take()
	release := make(chan struct{})
	go leakyWorker(release)

	err := snap.Check(150 * time.Millisecond)
	if err == nil {
		t.Fatal("Check passed despite a deliberately leaked goroutine")
	}
	if !strings.Contains(err.Error(), "leakyWorker") {
		t.Fatalf("leak report does not name the leaked function:\n%v", err)
	}
	if !strings.Contains(err.Error(), "chan receive") {
		t.Errorf("leak report does not include the goroutine state:\n%v", err)
	}

	close(release)
	if err := snap.Check(0); err != nil {
		t.Fatalf("Check still failing after the leak was released: %v", err)
	}
}

func TestCleanRunPasses(t *testing.T) {
	snap := leakcheck.Take()
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
	if err := snap.Check(0); err != nil {
		t.Fatalf("Check failed on a clean run: %v", err)
	}
}

func TestPreexistingGoroutinesAreExempt(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	go leakyWorker(release) // started before the snapshot
	time.Sleep(10 * time.Millisecond)

	snap := leakcheck.Take()
	if err := snap.Check(100 * time.Millisecond); err != nil {
		t.Fatalf("Check flagged a goroutine that predates the snapshot: %v", err)
	}
}
