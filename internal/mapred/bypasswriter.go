package mapred

import (
	"bufio"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/mof"
)

// bypassPartBufSize is the write buffer per open partition file. The
// writer is only selected at modest partition counts, so total buffer
// memory stays bounded (64 partitions × 32 KiB = 2 MiB).
const bypassPartBufSize = 32 << 10

// bypassWriter is the hash-style map-side writer modeled on Spark's
// BypassMergeSortShuffleWriter: every record streams straight into a
// buffered per-partition file — no sorting, no buffering of the record
// set, no per-record allocations — and Seal concatenates the partition
// files into the servable MOF + index in one sequential pass
// (mof.ConcatMOF). Its segments carry records in emit order; the
// reduce-side mergers normalize them on ingest (merge.NormalizeSegment),
// which is what keeps the read path writer-agnostic.
type bypassWriter struct {
	cfg     WriterConfig
	parts   []*bypassPart // indexed by partition; nil until first record
	scratch []byte
}

// bypassPart is one partition's open stream. Stored bytes (what lands in
// the file, compressed when compression is on) flow through crc so the
// seal can hand ConcatMOF a verified length and checksum without
// re-reading the file.
type bypassPart struct {
	path    string
	f       *os.File
	bw      *bufio.Writer
	crc     *crcCountWriter // counts + checksums stored bytes
	fl      *flate.Writer   // non-nil when compressing; writes into crc
	raw     int64           // encoded bytes before compression
	records int64
}

// crcCountWriter tracks the CRC-32 and byte count of everything written
// through it.
type crcCountWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcCountWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

func newBypassWriter(cfg WriterConfig) *bypassWriter {
	return &bypassWriter{cfg: cfg, parts: make([]*bypassPart, cfg.Partitions)}
}

// Strategy names the implementation.
func (w *bypassWriter) Strategy() WriterStrategy { return WriterBypass }

// open creates the partition file lazily, so empty partitions cost
// nothing.
func (w *bypassWriter) open(p int) (*bypassPart, error) {
	path := filepath.Join(w.cfg.Dir, fmt.Sprintf("%s.part%05d", w.cfg.TaskID, p))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("mapred: bypass partition file: %w", err)
	}
	bp := &bypassPart{path: path, f: f, bw: bufio.NewWriterSize(f, bypassPartBufSize)}
	bp.crc = &crcCountWriter{w: bp.bw}
	if w.cfg.Compress {
		// Same flate level as mof.CompressSegment, so a bypass MOF's
		// compressed segments cost the read path exactly what a sort
		// writer's would.
		fl, err := flate.NewWriter(bp.crc, flate.BestSpeed)
		if err != nil {
			_ = f.Close()
			_ = os.Remove(path)
			return nil, err
		}
		bp.fl = fl
	}
	return bp, nil
}

// Add streams one record into its partition file.
func (w *bypassWriter) Add(partition int, key, value []byte) error {
	bp := w.parts[partition]
	if bp == nil {
		var err error
		bp, err = w.open(partition)
		if err != nil {
			return err
		}
		w.parts[partition] = bp
	}
	w.scratch = mof.AppendRecord(w.scratch[:0], mof.Record{Key: key, Value: value})
	var err error
	if bp.fl != nil {
		_, err = bp.fl.Write(w.scratch)
	} else {
		_, err = bp.crc.Write(w.scratch)
	}
	if err != nil {
		return fmt.Errorf("mapred: bypass write: %w", err)
	}
	bp.raw += int64(len(w.scratch))
	bp.records++
	return nil
}

// close flushes and closes the partition stream; idempotent.
func (bp *bypassPart) close() error {
	if bp.f == nil {
		return nil
	}
	var err error
	if bp.fl != nil {
		err = bp.fl.Close()
		bp.fl = nil
	}
	if ferr := bp.bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := bp.f.Close(); err == nil {
		err = cerr
	}
	bp.f = nil
	return err
}

// Seal closes every partition file and concatenates them into the final
// MOF in one sequential pass; the index entries come straight from the
// lengths, record counts, and checksums tracked while streaming.
func (w *bypassWriter) Seal(final MOFPaths) error {
	start := time.Now()
	parts := make([]mof.ConcatPart, len(w.parts))
	for p, bp := range w.parts {
		if bp == nil {
			continue // zero ConcatPart = empty partition
		}
		if err := bp.close(); err != nil {
			return fmt.Errorf("mapred: bypass close partition %d: %w", p, err)
		}
		parts[p] = mof.ConcatPart{
			Path:      bp.path,
			Length:    bp.crc.n,
			RawLength: bp.raw,
			Records:   bp.records,
			Checksum:  bp.crc.crc,
		}
	}
	if err := mof.ConcatMOF(final.Data, final.Index, parts); err != nil {
		return err
	}
	w.removeParts()
	observeWriterSeal(WriterBypass, start, final)
	return nil
}

// Abort closes and removes the partition files of a failed attempt.
func (w *bypassWriter) Abort() {
	for _, bp := range w.parts {
		if bp == nil {
			continue
		}
		_ = bp.close()
	}
	w.removeParts()
}

func (w *bypassWriter) removeParts() {
	for p, bp := range w.parts {
		if bp == nil {
			continue
		}
		_ = os.Remove(bp.path)
		w.parts[p] = nil
	}
}

// Interface check.
var _ ShuffleWriter = (*bypassWriter)(nil)
