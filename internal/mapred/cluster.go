// Package mapred is a from-scratch MapReduce engine with Hadoop's runtime
// structure (Section II-A): a JobTracker scheduling MapTasks and
// ReduceTasks onto per-node TaskTracker slots, MapTasks that read DFS
// splits and write partitioned, sorted Map Output Files to local disk, and
// ReduceTasks that shuffle, merge and reduce. The shuffle itself is a
// plugin (ShuffleProvider), which is exactly the seam JBS occupies.
package mapred

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/merge"
	"repro/internal/mof"
)

// Config sizes the compute cluster. The paper's testbed runs 4 MapTask
// slots and 2 ReduceTask slots per slave node.
type Config struct {
	// Nodes are the slave node names; they must match the DFS datanodes.
	Nodes []string
	// MapSlotsPerNode bounds concurrent MapTasks per node (default 4).
	MapSlotsPerNode int
	// ReduceSlotsPerNode bounds concurrent ReduceTasks per node (default 2).
	ReduceSlotsPerNode int
	// WorkDir is the local scratch root for MOFs and spills.
	WorkDir string
	// MaxTaskAttempts is how many times a failing task is retried before
	// the job fails (Hadoop's mapred.map.max.attempts; default 1 = no
	// retries).
	MaxTaskAttempts int
	// Speculative enables speculative execution: a MapTask still running
	// after SpeculativeDelay gets a backup attempt on another node; the
	// first attempt to commit its MOF wins, the loser is discarded.
	Speculative bool
	// SpeculativeDelay is how long a MapTask may run before a backup
	// launches (default 500ms — in-process tasks are fast).
	SpeculativeDelay time.Duration
}

func (c *Config) applyDefaults() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("mapred: need at least one node")
	}
	if c.MapSlotsPerNode == 0 {
		c.MapSlotsPerNode = 4
	}
	if c.ReduceSlotsPerNode == 0 {
		c.ReduceSlotsPerNode = 2
	}
	if c.MapSlotsPerNode < 0 || c.ReduceSlotsPerNode < 0 {
		return fmt.Errorf("mapred: slot counts must be positive")
	}
	if c.WorkDir == "" {
		return fmt.Errorf("mapred: need a work directory")
	}
	if c.MaxTaskAttempts == 0 {
		c.MaxTaskAttempts = 1
	}
	if c.MaxTaskAttempts < 0 {
		return fmt.Errorf("mapred: max task attempts must be positive")
	}
	if c.SpeculativeDelay == 0 {
		c.SpeculativeDelay = 500 * time.Millisecond
	}
	if c.SpeculativeDelay < 0 {
		return fmt.Errorf("mapred: speculative delay must be positive")
	}
	return nil
}

// Cluster is a running compute cluster bound to a DFS and one shuffle
// implementation.
type Cluster struct {
	cfg      Config
	fs       *dfs.Cluster
	provider ShuffleProvider

	registries map[string]*MOFRegistry
	addrs      map[string]string
	fetchers   map[string]Fetcher
	stops      []func() error

	jobSeq int
	mu     sync.Mutex
}

// NewCluster starts the shuffle servers and fetchers on every node.
func NewCluster(cfg Config, fs *dfs.Cluster, provider ShuffleProvider) (*Cluster, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:        cfg,
		fs:         fs,
		provider:   provider,
		registries: make(map[string]*MOFRegistry),
		addrs:      make(map[string]string),
		fetchers:   make(map[string]Fetcher),
	}
	for _, node := range cfg.Nodes {
		reg := NewMOFRegistry()
		c.registries[node] = reg
		addr, stop, err := provider.StartNode(node, reg)
		if err != nil {
			_ = c.Close() // already failing; the start error is the one to report
			return nil, fmt.Errorf("mapred: start shuffle server on %s: %w", node, err)
		}
		c.addrs[node] = addr
		c.stops = append(c.stops, stop)
	}
	addrOf := func(node string) (string, error) {
		a, ok := c.addrs[node]
		if !ok {
			return "", fmt.Errorf("mapred: no shuffle server for node %s", node)
		}
		return a, nil
	}
	for _, node := range cfg.Nodes {
		f, err := provider.NewFetcher(node, addrOf)
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("mapred: start fetcher on %s: %w", node, err)
		}
		c.fetchers[node] = f
	}
	return c, nil
}

// Close stops fetchers and shuffle servers.
func (c *Cluster) Close() error {
	var first error
	for _, f := range c.fetchers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, stop := range c.stops {
		if err := stop(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShuffleName returns the active shuffle provider's name.
func (c *Cluster) ShuffleName() string { return c.provider.Name() }

// mapEvent announces one committed MapTask to a ReduceTask's shuffle (or a
// map-phase failure). Reducers fetch segments incrementally as these
// arrive, overlapping the shuffle with the map phase exactly as Hadoop's
// MOFCopiers do (paper Fig. 1).
type mapEvent struct {
	task string
	host string
	err  error
}

// Run executes one job to completion. The map and reduce phases run
// concurrently: ReduceTasks start immediately and shuffle each MapTask's
// segments as soon as that map commits.
func (c *Cluster) Run(job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.jobSeq++
	jobID := fmt.Sprintf("job-%04d-%s", c.jobSeq, job.Name)
	c.mu.Unlock()

	job.decision = SelectWriter(job)
	recordWriterDecision(job.decision)

	cs := &counterSet{}

	splits, err := c.fs.Splits(job.Input)
	if err != nil {
		return nil, fmt.Errorf("mapred: %s: %w", jobID, err)
	}
	assignments := c.scheduleMaps(jobID, splits)

	// One completion feed per reducer, buffered so map commits never
	// block: at most one event per map plus one failure marker.
	feeds := make([]chan mapEvent, job.NumReducers)
	for i := range feeds {
		feeds[i] = make(chan mapEvent, len(assignments)+1)
	}

	// The map phase runs concurrently with the reduce phase; the WaitGroup
	// makes the join explicit, so the goroutine provably cannot outlive Run
	// (mapErr is written before Done and read only after Wait).
	var mapWG sync.WaitGroup
	var mapErr error
	mapWG.Add(1)
	go func() {
		defer mapWG.Done()
		mapErr = c.runMapPhase(assignments, job, cs, feeds)
	}()
	outputs, reduceErr := c.runReducePhase(jobID, job, len(assignments), feeds, cs)
	mapWG.Wait()

	if mapErr != nil {
		return nil, fmt.Errorf("mapred: %s map phase: %w", jobID, mapErr)
	}
	if reduceErr != nil {
		return nil, fmt.Errorf("mapred: %s reduce phase: %w", jobID, reduceErr)
	}
	return &Result{
		Job:         job.Name,
		Shuffle:     c.provider.Name(),
		OutputFiles: outputs,
		Counters:    cs.snapshot(),
	}, nil
}

// mapAssignment pairs a split with its chosen node.
type mapAssignment struct {
	taskID string
	split  dfs.Split
	node   string
	local  bool
}

// scheduleMaps assigns splits to nodes, preferring split-local nodes with
// spare assignments (the delay-scheduling effect: most MapTasks read local
// input).
func (c *Cluster) scheduleMaps(jobID string, splits []dfs.Split) []mapAssignment {
	load := make(map[string]int, len(c.cfg.Nodes))
	valid := make(map[string]bool, len(c.cfg.Nodes))
	for _, n := range c.cfg.Nodes {
		valid[n] = true
	}
	var out []mapAssignment
	rr := 0
	for i, sp := range splits {
		node := ""
		local := false
		// Prefer the least-loaded valid local host.
		for _, h := range sp.Hosts {
			if valid[h] && (node == "" || load[h] < load[node]) {
				node = h
				local = true
			}
		}
		if node == "" {
			node = c.cfg.Nodes[rr%len(c.cfg.Nodes)]
			rr++
		}
		load[node]++
		out = append(out, mapAssignment{
			taskID: fmt.Sprintf("%s-m-%05d", jobID, i),
			split:  sp,
			node:   node,
			local:  local,
		})
	}
	return out
}

// runMapPhase executes all MapTasks (with optional speculative backups),
// broadcasting every winning commit to the reducer feeds. On failure the
// feeds receive a failure marker so waiting reducers abort.
func (c *Cluster) runMapPhase(assignments []mapAssignment, job *Job, cs *counterSet, feeds []chan mapEvent) error {
	slots := make(map[string]chan struct{}, len(c.cfg.Nodes))
	for _, n := range c.cfg.Nodes {
		slots[n] = make(chan struct{}, c.cfg.MapSlotsPerNode)
	}

	var wg sync.WaitGroup
	var fe firstErr
	var commitHost sync.Map // taskID -> winning node
	announce := func(task, node string) {
		for _, feed := range feeds {
			feed <- mapEvent{task: task, host: node}
		}
	}
	for _, a := range assignments {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.superviseMapTask(a, job, cs, slots, &fe, &commitHost, announce, &wg)
		}()
	}
	wg.Wait()
	if err := fe.get(); err != nil {
		for _, feed := range feeds {
			feed <- mapEvent{err: err}
		}
		return err
	}
	return nil
}

// superviseMapTask runs a task's primary attempt and, under speculative
// execution, a backup attempt on the next node if the primary runs past
// the delay. The job fails only if every attempt fails.
func (c *Cluster) superviseMapTask(a mapAssignment, job *Job, cs *counterSet,
	slots map[string]chan struct{}, fe *firstErr, commitHost *sync.Map,
	announce func(task, node string), wg *sync.WaitGroup) {

	done := make(chan error, 2)
	runAttempt := func(node string, attempt int) {
		slots[node] <- struct{}{}
		defer func() { <-slots[node] }()
		done <- c.withRetry(fmt.Sprintf("map task %s attempt %d", a.taskID, attempt), cs, nil, func() error {
			return c.runMapTask(a, node, attempt, job, cs, commitHost, announce)
		})
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		runAttempt(a.node, 0)
	}()

	if !c.cfg.Speculative || len(c.cfg.Nodes) < 2 {
		if err := <-done; err != nil {
			fe.set(fmt.Errorf("task %s on %s: %w", a.taskID, a.node, err))
		}
		return
	}

	timer := time.NewTimer(c.cfg.SpeculativeDelay)
	defer timer.Stop()
	select {
	case err := <-done:
		if err != nil {
			fe.set(fmt.Errorf("task %s on %s: %w", a.taskID, a.node, err))
		}
		return
	case <-timer.C:
	}

	// The primary is a straggler: launch a backup on the next node.
	cs.speculativeLaunches.Add(1)
	backupNode := c.nextNode(a.node)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runAttempt(backupNode, 1)
	}()

	err1 := <-done
	if err1 == nil {
		// One attempt committed; the other will discard itself. Drain it
		// so the channel's sender never blocks (capacity 2 covers this,
		// but the job must not finish before both attempts settle — the
		// WaitGroup holds for them).
		return
	}
	if err2 := <-done; err2 != nil {
		fe.set(fmt.Errorf("task %s (both attempts failed): %w", a.taskID, err2))
	}
}

// nextNode picks the speculative backup node.
func (c *Cluster) nextNode(node string) string {
	for i, n := range c.cfg.Nodes {
		if n == node {
			return c.cfg.Nodes[(i+1)%len(c.cfg.Nodes)]
		}
	}
	return c.cfg.Nodes[0]
}

// runMapTask executes one map attempt on the given node: read the split,
// feed the map function's output through the job's selected ShuffleWriter
// strategy, seal the attempt's MOF, and try to commit it.
// A losing attempt (another attempt committed first) discards its files
// and reports success.
func (c *Cluster) runMapTask(a mapAssignment, node string, attempt int, job *Job, cs *counterSet, commitHost *sync.Map, announce func(task, node string)) error {
	r, err := c.fs.OpenRange(a.split.Path, node, a.split.Offset, a.split.Length)
	if err != nil {
		return err
	}
	defer r.Close()

	dir := filepath.Join(c.cfg.WorkDir, node, "mof")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	attemptID := fmt.Sprintf("%s-a%d", a.taskID, attempt)
	w, err := NewShuffleWriter(job.writerStrategy(), WriterConfig{
		Partitions: job.NumReducers,
		SortMemory: job.SortMemory,
		Dir:        dir,
		TaskID:     attemptID,
		Combine:    job.Combine,
		Compress:   job.CompressMOF,
		cs:         cs,
	})
	if err != nil {
		return err
	}
	sealed := false
	defer func() {
		if !sealed {
			w.Abort()
		}
	}()

	var emitErr error
	emit := func(k, v []byte) {
		p := job.Partitioner(k, job.NumReducers)
		if err := w.Add(p, k, v); err != nil && emitErr == nil {
			emitErr = err
		}
		cs.mapOutputRecords.Add(1)
		cs.mapOutputBytes.Add(int64(len(k) + len(v)))
	}
	reader := job.InputFormat(r)
	for {
		k, v, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		cs.mapInputRecords.Add(1)
		if err := job.Map(k, v, emit); err != nil {
			return err
		}
		if emitErr != nil {
			return emitErr
		}
	}

	paths := MOFPaths{
		Data:  filepath.Join(dir, attemptID+".data"),
		Index: filepath.Join(dir, attemptID+".index"),
	}
	if err := w.Seal(paths); err != nil {
		return err
	}
	sealed = true

	// Commit: the first attempt to claim the task (across all nodes) wins;
	// the loser withdraws its files.
	if _, lost := commitHost.LoadOrStore(a.taskID, node); lost {
		os.Remove(paths.Data)
		os.Remove(paths.Index)
		return nil
	}
	c.registries[node].Register(a.taskID, paths)
	announce(a.taskID, node)
	cs.mapTasks.Add(1)
	if attempt > 0 {
		cs.speculativeWins.Add(1)
	}
	local := false
	for _, h := range a.split.Hosts {
		if h == node {
			local = true
			break
		}
	}
	if local {
		cs.localMapTasks.Add(1)
	} else {
		cs.remoteMapTasks.Add(1)
	}
	return nil
}

// withRetry runs fn up to MaxTaskAttempts times, invoking cleanup before
// every re-attempt (Hadoop's per-task attempt machinery, collapsed to the
// in-process case: a retried attempt truncates and rewrites its own
// files).
func (c *Cluster) withRetry(kind string, cs *counterSet, cleanup func(), fn func() error) error {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxTaskAttempts; attempt++ {
		if attempt > 1 {
			cs.taskRetries.Add(1)
			if cleanup != nil {
				cleanup()
			}
		}
		if err := fn(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("%s failed after %d attempts: %w", kind, c.cfg.MaxTaskAttempts, lastErr)
}

// combinePartition applies the combiner to one sorted partition buffer,
// returning the (usually much smaller) combined records in key order.
func combinePartition(combine ReduceFunc, recs []mof.Record, cs *counterSet) ([]mof.Record, error) {
	var out []mof.Record
	emit := func(k, v []byte) {
		out = append(out, mof.Record{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
	}
	i := 0
	for i < len(recs) {
		j := i + 1
		for j < len(recs) && bytes.Equal(recs[j].Key, recs[i].Key) {
			j++
		}
		values := make([][]byte, 0, j-i)
		for _, r := range recs[i:j] {
			values = append(values, r.Value)
		}
		cs.addCombineInputs(int64(j - i))
		if err := combine(recs[i].Key, values, emit); err != nil {
			return nil, err
		}
		i = j
	}
	cs.addCombineOutputs(int64(len(out)))
	merge.SortRecords(out) // combiner output order is the emitter's choice
	return out, nil
}

// eventCursor replays a reducer's completion feed across task-attempt
// retries: recorded events are replayed, then new ones read from the feed.
type eventCursor struct {
	feed chan mapEvent
	seen []mapEvent
}

// at returns the i-th event, reading from the feed as needed.
func (ec *eventCursor) at(i int) mapEvent {
	for i >= len(ec.seen) {
		ec.seen = append(ec.seen, <-ec.feed)
	}
	return ec.seen[i]
}

// fetchBatchSize is how many newly committed maps a reducer's shuffle
// requests in one Fetch call.
const fetchBatchSize = 8

// runReducePhase launches every ReduceTask immediately; each shuffles
// incrementally from its completion feed and returns its output file.
func (c *Cluster) runReducePhase(jobID string, job *Job, numMaps int, feeds []chan mapEvent, cs *counterSet) ([]string, error) {
	slots := make(map[string]chan struct{}, len(c.cfg.Nodes))
	for _, n := range c.cfg.Nodes {
		slots[n] = make(chan struct{}, c.cfg.ReduceSlotsPerNode)
	}

	outputs := make([]string, job.NumReducers)
	var wg sync.WaitGroup
	var fe firstErr
	for rID := 0; rID < job.NumReducers; rID++ {
		rID := rID
		node := c.cfg.Nodes[rID%len(c.cfg.Nodes)]
		cursor := &eventCursor{feed: feeds[rID]}
		wg.Add(1)
		go func() {
			defer wg.Done()
			slots[node] <- struct{}{}
			defer func() { <-slots[node] }()
			outPath := fmt.Sprintf("%s/part-r-%05d", job.Output, rID)
			cleanup := func() { c.fs.Delete(outPath) }
			var out string
			err := c.withRetry(fmt.Sprintf("reduce task %d", rID), cs, cleanup, func() error {
				var rerr error
				out, rerr = c.runReduceTask(jobID, job, rID, node, numMaps, cursor, cs)
				return rerr
			})
			if err != nil {
				fe.set(fmt.Errorf("reducer %d on %s: %w", rID, node, err))
				return
			}
			outputs[rID] = out
		}()
	}
	wg.Wait()
	if err := fe.get(); err != nil {
		return nil, err
	}
	return outputs, nil
}

func (c *Cluster) runReduceTask(jobID string, job *Job, rID int, node string, numMaps int, cursor *eventCursor, cs *counterSet) (string, error) {
	reduceID := fmt.Sprintf("%s-r-%05d", jobID, rID)

	spillDir := filepath.Join(c.cfg.WorkDir, node, "spill", reduceID)
	merger, err := c.provider.NewMerger(spillDir)
	if err != nil {
		return "", err
	}
	fetcher := c.fetchers[node]
	deliver := func(id SegmentID, data []byte) error {
		cs.shuffledSegments.Add(1)
		cs.shuffledBytes.Add(int64(len(data)))
		// Empty segments (padded index entries) are stored as zero bytes
		// whether or not the MOF is compressed.
		if job.CompressMOF && len(data) > 0 {
			raw, derr := mof.DecompressSegment(data)
			if derr != nil {
				return derr
			}
			data = raw
		}
		return merger.AddSegment(data)
	}

	// Incremental shuffle: fetch each batch of newly committed map outputs
	// while the remaining MapTasks are still running.
	var batch []SegmentID
	for i := 0; i < numMaps; i++ {
		ev := cursor.at(i)
		if ev.err != nil {
			return "", fmt.Errorf("shuffle aborted: %w", ev.err)
		}
		batch = append(batch, SegmentID{Host: ev.host, MapTask: ev.task, Partition: rID})
		if len(batch) >= fetchBatchSize || i == numMaps-1 {
			if err := fetcher.Fetch(reduceID, batch, deliver); err != nil {
				return "", fmt.Errorf("shuffle: %w", err)
			}
			batch = nil
		}
	}
	it, err := merger.Finish()
	if err != nil {
		return "", err
	}
	defer it.Close()

	outPath := fmt.Sprintf("%s/part-r-%05d", job.Output, rID)
	w, err := c.fs.Create(outPath, node)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriterSize(w, 256<<10)
	outEmit := func(k, v []byte) {
		bw.Write(k)
		bw.WriteByte('\t')
		bw.Write(v)
		bw.WriteByte('\n')
		cs.outputRecords.Add(1)
		cs.outputBytes.Add(int64(len(k) + len(v) + 2))
	}

	if job.Reduce == nil {
		// Identity reduce: emit every record in order.
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return "", err
			}
			outEmit(rec.Key, rec.Value)
		}
	} else {
		err = merge.GroupByKey(it, func(key []byte, values [][]byte) error {
			cs.reduceGroups.Add(1)
			return job.Reduce(key, values, outEmit)
		})
		if err != nil {
			return "", err
		}
	}
	if err := bw.Flush(); err != nil {
		return "", err
	}
	if err := w.Close(); err != nil {
		return "", err
	}

	st := merger.Stats()
	cs.spillEvents.Add(int64(st.Spills))
	cs.spilledBytes.Add(st.SpilledBytes)
	cs.mergePasses.Add(int64(st.MergePasses))
	cs.reduceTasks.Add(1)
	if err := os.RemoveAll(spillDir); err != nil {
		return "", fmt.Errorf("remove spill dir for %s: %w", reduceID, err)
	}
	return outPath, nil
}
