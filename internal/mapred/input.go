package mapred

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// RecordReader iterates the key/value records of one input split.
type RecordReader interface {
	// Next returns the next record, or io.EOF after the last.
	Next() (key, value []byte, err error)
}

// InputFormat builds a RecordReader over one split's byte stream.
type InputFormat func(r io.Reader) RecordReader

// LineInput yields one record per newline-terminated line: key is the
// decimal line number within the split, value is the line without the
// terminator (Hadoop's TextInputFormat, with line numbers standing in for
// byte offsets).
func LineInput(r io.Reader) RecordReader {
	return &lineReader{s: bufio.NewScanner(r)}
}

type lineReader struct {
	s    *bufio.Scanner
	line int64
}

func (lr *lineReader) Next() ([]byte, []byte, error) {
	if !lr.s.Scan() {
		if err := lr.s.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, io.EOF
	}
	key := strconv.AppendInt(nil, lr.line, 10)
	lr.line++
	val := append([]byte(nil), lr.s.Bytes()...)
	return key, val, nil
}

// KVLineInput yields one record per line of the form "key<TAB>value"
// (Hadoop's KeyValueTextInputFormat). Lines without a tab become a record
// with an empty value.
func KVLineInput(r io.Reader) RecordReader {
	return &kvLineReader{s: bufio.NewScanner(r)}
}

type kvLineReader struct {
	s *bufio.Scanner
}

func (kr *kvLineReader) Next() ([]byte, []byte, error) {
	if !kr.s.Scan() {
		if err := kr.s.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, io.EOF
	}
	line := kr.s.Bytes()
	if i := bytes.IndexByte(line, '\t'); i >= 0 {
		return append([]byte(nil), line[:i]...), append([]byte(nil), line[i+1:]...), nil
	}
	return append([]byte(nil), line...), nil, nil
}

// WholeSplitInput yields the entire split as a single record (empty key),
// for jobs that need cross-record state within a split, like validators.
func WholeSplitInput(r io.Reader) RecordReader {
	return &wholeSplitReader{r: r}
}

type wholeSplitReader struct {
	r    io.Reader
	done bool
}

func (wr *wholeSplitReader) Next() ([]byte, []byte, error) {
	if wr.done {
		return nil, nil, io.EOF
	}
	wr.done = true
	data, err := io.ReadAll(wr.r)
	if err != nil {
		return nil, nil, err
	}
	return nil, data, nil
}

// FixedWidthInput yields fixed-length records of recordLen bytes whose
// first keyLen bytes are the key — the Terasort record layout (100-byte
// records, 10-byte keys).
func FixedWidthInput(keyLen, recordLen int) InputFormat {
	return func(r io.Reader) RecordReader {
		return &fixedReader{r: bufio.NewReaderSize(r, 256<<10), keyLen: keyLen, recLen: recordLen}
	}
}

type fixedReader struct {
	r      *bufio.Reader
	keyLen int
	recLen int
}

func (fr *fixedReader) Next() ([]byte, []byte, error) {
	buf := make([]byte, fr.recLen)
	n, err := io.ReadFull(fr.r, buf)
	if err == io.EOF {
		return nil, nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return nil, nil, fmt.Errorf("mapred: truncated fixed-width record: %d of %d bytes", n, fr.recLen)
	}
	if err != nil {
		return nil, nil, err
	}
	return buf[:fr.keyLen], buf[fr.keyLen:], nil
}
