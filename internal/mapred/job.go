package mapred

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Emit receives one intermediate or output record.
type Emit func(key, value []byte)

// MapFunc transforms one input record into intermediate records.
type MapFunc func(key, value []byte, emit Emit) error

// ReduceFunc folds all values of one key into output records.
type ReduceFunc func(key []byte, values [][]byte, emit Emit) error

// Partitioner assigns a key to one of numReduce partitions.
type Partitioner func(key []byte, numReduce int) int

// HashPartitioner is the default FNV-1a partitioner.
func HashPartitioner(key []byte, numReduce int) int {
	h := fnv.New32a()
	_, _ = h.Write(key) // fnv.Write never fails
	return int(h.Sum32() % uint32(numReduce))
}

// Job describes one MapReduce job.
type Job struct {
	// Name labels the job in logs and output paths.
	Name string
	// Input is the DFS path of the input file.
	Input string
	// Output is the DFS directory for part files.
	Output string
	// NumReducers is the number of ReduceTasks.
	NumReducers int
	// Map is the user map function.
	Map MapFunc
	// Reduce is the user reduce function. If nil, intermediate records are
	// written out directly (identity reduce).
	Reduce ReduceFunc
	// Combine, if non-nil, runs on each MapTask's sorted partition buffers
	// before the MOF is written, shrinking intermediate data (this is why
	// WordCount and Grep shuffle little data in the paper's Fig. 12).
	Combine ReduceFunc
	// SortMemory is the map-side sort buffer budget in bytes (Hadoop's
	// io.sort.mb): map outputs beyond it spill sorted runs to local disk,
	// merged into the final MOF at task end. Zero means unbounded.
	SortMemory int64
	// Writer pins the map-side shuffle writer strategy. The default,
	// WriterAuto, lets SelectWriter choose from the job shape (reducer
	// count, ExpectedRecordBytes, combiner presence).
	Writer WriterStrategy
	// ExpectedRecordBytes hints the average intermediate record size
	// (key + value) to the writer selector. Zero means unknown.
	ExpectedRecordBytes int64
	// CompressMOF enables per-segment flate compression of map outputs
	// (Hadoop's mapred.compress.map.output), shrinking local disk traffic
	// and shuffle volume; reducers inflate fetched segments before
	// merging.
	CompressMOF bool
	// InputFormat defaults to LineInput.
	InputFormat InputFormat
	// Partitioner defaults to HashPartitioner.
	Partitioner Partitioner

	// decision is the writer selection Run made for this job; map tasks
	// read it instead of re-deriving the choice per attempt.
	decision WriterDecision
}

// writerStrategy resolves the concrete writer for a map attempt: the
// selection Run stored, the explicit override, or the classic sort
// buffer when the job runs outside Cluster.Run.
func (j *Job) writerStrategy() WriterStrategy {
	if j.decision.Strategy != WriterAuto {
		return j.decision.Strategy
	}
	if j.Writer != WriterAuto {
		return j.Writer
	}
	return WriterSortSpill
}

// Validate checks the job and fills defaults.
func (j *Job) Validate() error {
	if j.Name == "" {
		return errors.New("mapred: job needs a name")
	}
	if j.Input == "" || j.Output == "" {
		return fmt.Errorf("mapred: job %s needs input and output paths", j.Name)
	}
	if j.NumReducers <= 0 {
		return fmt.Errorf("mapred: job %s needs at least one reducer", j.Name)
	}
	if j.Map == nil {
		return fmt.Errorf("mapred: job %s needs a map function", j.Name)
	}
	if !j.Writer.valid() {
		return fmt.Errorf("mapred: job %s: unknown writer strategy %q", j.Name, string(j.Writer))
	}
	if j.Writer == WriterBypass && j.Combine != nil {
		return fmt.Errorf("mapred: job %s: the bypass writer cannot run a combiner", j.Name)
	}
	if j.ExpectedRecordBytes < 0 {
		return fmt.Errorf("mapred: job %s: negative expected record size", j.Name)
	}
	if j.InputFormat == nil {
		j.InputFormat = LineInput
	}
	if j.Partitioner == nil {
		j.Partitioner = HashPartitioner
	}
	return nil
}

// Counters aggregates job statistics, mirroring Hadoop's counter groups.
type Counters struct {
	MapTasks            int64
	ReduceTasks         int64
	MapInputRecords     int64
	MapOutputRecords    int64
	MapOutputBytes      int64
	CombineInputs       int64
	CombineOutputs      int64
	MapSpills           int64
	MapSpilledBytes     int64
	TaskRetries         int64
	SpeculativeLaunches int64
	SpeculativeWins     int64
	ShuffledSegments    int64
	ShuffledBytes       int64
	SpillEvents         int64
	SpilledBytes        int64
	MergePasses         int64
	ReduceGroups        int64
	OutputRecords       int64
	OutputBytes         int64
	LocalMapTasks       int64
	RemoteMapTasks      int64
}

// counterSet is the engine's internal atomic counter bank.
type counterSet struct {
	mapTasks            atomic.Int64
	reduceTasks         atomic.Int64
	mapInputRecords     atomic.Int64
	mapOutputRecords    atomic.Int64
	mapOutputBytes      atomic.Int64
	combineInputs       atomic.Int64
	combineOutputs      atomic.Int64
	mapSpills           atomic.Int64
	mapSpilledBytes     atomic.Int64
	taskRetries         atomic.Int64
	speculativeLaunches atomic.Int64
	speculativeWins     atomic.Int64
	shuffledSegments    atomic.Int64
	shuffledBytes       atomic.Int64
	spillEvents         atomic.Int64
	spilledBytes        atomic.Int64
	mergePasses         atomic.Int64
	reduceGroups        atomic.Int64
	outputRecords       atomic.Int64
	outputBytes         atomic.Int64
	localMapTasks       atomic.Int64
	remoteMapTasks      atomic.Int64
}

func (cs *counterSet) snapshot() Counters {
	return Counters{
		MapTasks:            cs.mapTasks.Load(),
		ReduceTasks:         cs.reduceTasks.Load(),
		MapInputRecords:     cs.mapInputRecords.Load(),
		MapOutputRecords:    cs.mapOutputRecords.Load(),
		MapOutputBytes:      cs.mapOutputBytes.Load(),
		CombineInputs:       cs.combineInputs.Load(),
		CombineOutputs:      cs.combineOutputs.Load(),
		MapSpills:           cs.mapSpills.Load(),
		MapSpilledBytes:     cs.mapSpilledBytes.Load(),
		TaskRetries:         cs.taskRetries.Load(),
		SpeculativeLaunches: cs.speculativeLaunches.Load(),
		SpeculativeWins:     cs.speculativeWins.Load(),
		ShuffledSegments:    cs.shuffledSegments.Load(),
		ShuffledBytes:       cs.shuffledBytes.Load(),
		SpillEvents:         cs.spillEvents.Load(),
		SpilledBytes:        cs.spilledBytes.Load(),
		MergePasses:         cs.mergePasses.Load(),
		ReduceGroups:        cs.reduceGroups.Load(),
		OutputRecords:       cs.outputRecords.Load(),
		OutputBytes:         cs.outputBytes.Load(),
		LocalMapTasks:       cs.localMapTasks.Load(),
		RemoteMapTasks:      cs.remoteMapTasks.Load(),
	}
}

// Result is the outcome of a completed job.
type Result struct {
	// Job is the job name.
	Job string
	// Shuffle is the shuffle provider used.
	Shuffle string
	// OutputFiles are the DFS part-file paths, one per reducer.
	OutputFiles []string
	// Counters are the aggregated statistics.
	Counters Counters
}

// firstErr captures the first error from concurrent tasks.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) set(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		f.err = err
	}
}

func (f *firstErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
