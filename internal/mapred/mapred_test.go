package mapred

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/merge"
	"repro/internal/mof"
)

// localProvider is a minimal in-process shuffle used to test the engine in
// isolation: fetchers read segments straight from the producing node's MOF
// registry.
type localProvider struct {
	registries map[string]*MOFRegistry
}

func newLocalProvider() *localProvider {
	return &localProvider{registries: make(map[string]*MOFRegistry)}
}

func (p *localProvider) Name() string { return "local" }

func (p *localProvider) StartNode(node string, reg *MOFRegistry) (string, func() error, error) {
	p.registries[node] = reg
	return "local://" + node, func() error { return nil }, nil
}

func (p *localProvider) NewFetcher(node string, addrOf func(string) (string, error)) (Fetcher, error) {
	return &localFetcher{p: p}, nil
}

func (p *localProvider) NewMerger(spillDir string) (merge.Merger, error) {
	return merge.NewNetLevitatedMerger(), nil
}

type localFetcher struct {
	p *localProvider
}

func (f *localFetcher) Fetch(reduceTask string, segs []SegmentID, deliver func(SegmentID, []byte) error) error {
	for _, s := range segs {
		reg := f.p.registries[s.Host]
		paths, ok := reg.Lookup(s.MapTask)
		if !ok {
			return fmt.Errorf("no MOF for %s on %s", s.MapTask, s.Host)
		}
		ix, err := mof.ReadIndex(paths.Index)
		if err != nil {
			return err
		}
		e, err := ix.Entry(s.Partition)
		if err != nil {
			return err
		}
		data, err := mof.ReadSegmentBytes(paths.Data, e)
		if err != nil {
			return err
		}
		if err := deliver(s, data); err != nil {
			return err
		}
	}
	return nil
}

func (f *localFetcher) Close() error { return nil }

// testCluster builds a DFS + compute cluster over n nodes with small
// blocks.
func testCluster(t *testing.T, n int, blockSize int64) (*dfs.Cluster, *Cluster) {
	t.Helper()
	var nodes []string
	for i := 0; i < n; i++ {
		nodes = append(nodes, fmt.Sprintf("node%02d", i))
	}
	fs, err := dfs.NewCluster(dfs.Config{BlockSize: blockSize, Replication: 1}, nodes, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Nodes:   nodes,
		WorkDir: t.TempDir(),
	}, fs, newLocalProvider())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return fs, c
}

func putFile(t *testing.T, fs *dfs.Cluster, path string, content string) {
	t.Helper()
	w, err := fs.Create(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func catOutputs(t *testing.T, fs *dfs.Cluster, res *Result) string {
	t.Helper()
	var sb strings.Builder
	for _, p := range res.OutputFiles {
		r, err := fs.Open(p, "")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(data)
	}
	return sb.String()
}

// wordCountJob is the canonical test job.
func wordCountJob(input, output string, reducers int) *Job {
	return &Job{
		Name:        "wordcount",
		Input:       input,
		Output:      output,
		NumReducers: reducers,
		Map: func(_, value []byte, emit Emit) error {
			for _, w := range strings.Fields(string(value)) {
				emit([]byte(w), []byte("1"))
			}
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
	}
}

func parseCounts(t *testing.T, out string) map[string]int {
	t.Helper()
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			t.Fatalf("bad output line %q", line)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		counts[parts[0]] = n
	}
	return counts
}

func TestWordCountEndToEnd(t *testing.T) {
	fs, c := testCluster(t, 3, 64)
	putFile(t, fs, "/in", "the quick brown fox\nthe lazy dog\nthe fox\n")
	res, err := c.Run(wordCountJob("/in", "/out", 2))
	if err != nil {
		t.Fatal(err)
	}
	counts := parseCounts(t, catOutputs(t, fs, res))
	want := map[string]int{"the": 3, "quick": 1, "brown": 1, "fox": 2, "lazy": 1, "dog": 1}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for k, v := range want {
		if counts[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, counts[k], v)
		}
	}
	if res.Counters.ReduceTasks != 2 {
		t.Fatalf("reduce tasks = %d, want 2", res.Counters.ReduceTasks)
	}
	if res.Counters.MapTasks == 0 || res.Counters.MapInputRecords != 3 {
		t.Fatalf("map counters = %+v", res.Counters)
	}
}

func TestMultiBlockInputSpawnsMultipleMaps(t *testing.T) {
	fs, c := testCluster(t, 3, 32)
	// 4 lines of ~24 bytes each across several 32-byte blocks.
	putFile(t, fs, "/in", strings.Repeat("alpha beta gamma delta\n", 4))
	res, err := c.Run(wordCountJob("/in", "/out", 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapTasks < 2 {
		t.Fatalf("map tasks = %d, want several", res.Counters.MapTasks)
	}
	// Shuffle moved MapTasks x reducers segments.
	if res.Counters.ShuffledSegments != res.Counters.MapTasks*2 {
		t.Fatalf("segments = %d, want maps*reducers = %d", res.Counters.ShuffledSegments, res.Counters.MapTasks*2)
	}
}

func TestLineSplittingAcrossBlocksIsWhole(t *testing.T) {
	// Lines deliberately straddle block boundaries; the LineInput format
	// operates per split, so block-aligned splits chop lines. This test
	// documents the engine contract: inputs written line-aligned per block
	// survive exactly. (Workload generators align records to blocks.)
	fs, c := testCluster(t, 2, 1024)
	putFile(t, fs, "/in", "a b c\nd e f\n")
	res, err := c.Run(wordCountJob("/in", "/out", 1))
	if err != nil {
		t.Fatal(err)
	}
	counts := parseCounts(t, catOutputs(t, fs, res))
	if len(counts) != 6 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestIdentityReduceSortsGlobally(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	putFile(t, fs, "/in", "banana\napple\ncherry\n")
	job := &Job{
		Name:        "sort",
		Input:       "/in",
		Output:      "/out",
		NumReducers: 1,
		Map: func(_, value []byte, emit Emit) error {
			emit(value, nil)
			return nil
		},
		// Reduce nil: identity.
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := catOutputs(t, fs, res)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var keys []string
	for _, l := range lines {
		keys = append(keys, strings.SplitN(l, "\t", 2)[0])
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("identity reduce output not sorted: %v", keys)
	}
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestPartitioningIsDisjointAndComplete(t *testing.T) {
	fs, c := testCluster(t, 3, 64)
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "w%02d\n", i)
	}
	putFile(t, fs, "/in", sb.String())
	res, err := c.Run(wordCountJob("/in", "/out", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputFiles) != 4 {
		t.Fatalf("output files = %d, want 4", len(res.OutputFiles))
	}
	seen := map[string]int{}
	for _, p := range res.OutputFiles {
		r, _ := fs.Open(p, "")
		data, _ := io.ReadAll(r)
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			seen[strings.SplitN(line, "\t", 2)[0]]++
		}
	}
	if len(seen) != 50 {
		t.Fatalf("distinct keys = %d, want 50", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %s appeared in %d partitions", k, n)
		}
	}
}

func TestHashPartitionerInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		p := HashPartitioner(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
	}
}

func TestJobValidate(t *testing.T) {
	good := wordCountJob("/i", "/o", 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.InputFormat == nil || good.Partitioner == nil {
		t.Fatal("defaults not filled")
	}
	bad := []*Job{
		{},
		{Name: "x"},
		{Name: "x", Input: "/i", Output: "/o"},
		{Name: "x", Input: "/i", Output: "/o", NumReducers: 1},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("job %d validated", i)
		}
	}
}

func TestMapErrorPropagates(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	putFile(t, fs, "/in", "x\n")
	job := wordCountJob("/in", "/out", 1)
	job.Map = func(_, _ []byte, _ Emit) error { return fmt.Errorf("map exploded") }
	if _, err := c.Run(job); err == nil || !strings.Contains(err.Error(), "map exploded") {
		t.Fatalf("err = %v, want map failure", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	putFile(t, fs, "/in", "x\n")
	job := wordCountJob("/in", "/out", 1)
	job.Reduce = func(_ []byte, _ [][]byte, _ Emit) error { return fmt.Errorf("reduce exploded") }
	if _, err := c.Run(job); err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Fatalf("err = %v, want reduce failure", err)
	}
}

func TestMissingInputFails(t *testing.T) {
	_, c := testCluster(t, 2, 1024)
	if _, err := c.Run(wordCountJob("/missing", "/out", 1)); err == nil {
		t.Fatal("job over missing input succeeded")
	}
}

func TestMapLocality(t *testing.T) {
	fs, c := testCluster(t, 3, 64)
	// Write from node00: all primary replicas land there, so all maps
	// should be local to node00.
	w, _ := fs.Create("/in", "node00")
	w.Write([]byte(strings.Repeat("word \n", 40)))
	w.Close()
	res, err := c.Run(wordCountJob("/in", "/out", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.RemoteMapTasks != 0 {
		t.Fatalf("remote maps = %d, want 0 (all input local)", res.Counters.RemoteMapTasks)
	}
	if res.Counters.LocalMapTasks != res.Counters.MapTasks {
		t.Fatalf("local = %d of %d", res.Counters.LocalMapTasks, res.Counters.MapTasks)
	}
}

func TestTwoJobsOnOneCluster(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	putFile(t, fs, "/in1", "a a b\n")
	putFile(t, fs, "/in2", "c c c\n")
	r1, err := c.Run(wordCountJob("/in1", "/out1", 1))
	if err != nil {
		t.Fatal(err)
	}
	job2 := wordCountJob("/in2", "/out2", 1)
	job2.Name = "wordcount2"
	r2, err := c.Run(job2)
	if err != nil {
		t.Fatal(err)
	}
	if parseCounts(t, catOutputs(t, fs, r1))["a"] != 2 {
		t.Fatal("job1 output wrong")
	}
	if parseCounts(t, catOutputs(t, fs, r2))["c"] != 3 {
		t.Fatal("job2 output wrong")
	}
}

func TestFixedWidthInput(t *testing.T) {
	fs, c := testCluster(t, 2, 1000)
	// 10 records of 10 bytes: 2-byte key, 8-byte payload.
	var sb strings.Builder
	for i := 9; i >= 0; i-- {
		fmt.Fprintf(&sb, "%d|payload%d", i, i)
	}
	putFile(t, fs, "/in", sb.String())
	job := &Job{
		Name:        "fixed",
		Input:       "/in",
		Output:      "/out",
		NumReducers: 1,
		InputFormat: FixedWidthInput(2, 10),
		Map: func(k, v []byte, emit Emit) error {
			emit(k, v)
			return nil
		},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapInputRecords != 10 {
		t.Fatalf("input records = %d, want 10", res.Counters.MapInputRecords)
	}
	out := strings.Split(strings.TrimSpace(catOutputs(t, fs, res)), "\n")
	if len(out) != 10 {
		t.Fatalf("output lines = %d", len(out))
	}
	// Identity reduce sorted by key: first key should be "0|".
	if !strings.HasPrefix(out[0], "0|") {
		t.Fatalf("first line = %q", out[0])
	}
}

func TestRecordReaders(t *testing.T) {
	t.Run("line", func(t *testing.T) {
		rr := LineInput(strings.NewReader("one\ntwo\n"))
		k, v, err := rr.Next()
		if err != nil || string(k) != "0" || string(v) != "one" {
			t.Fatalf("first = %q/%q/%v", k, v, err)
		}
		k, v, err = rr.Next()
		if err != nil || string(k) != "1" || string(v) != "two" {
			t.Fatalf("second = %q/%q/%v", k, v, err)
		}
		if _, _, err := rr.Next(); err != io.EOF {
			t.Fatalf("err = %v, want EOF", err)
		}
	})
	t.Run("kvline", func(t *testing.T) {
		rr := KVLineInput(strings.NewReader("k1\tv1\nplain\n"))
		k, v, err := rr.Next()
		if err != nil || string(k) != "k1" || string(v) != "v1" {
			t.Fatalf("first = %q/%q/%v", k, v, err)
		}
		k, v, err = rr.Next()
		if err != nil || string(k) != "plain" || len(v) != 0 {
			t.Fatalf("second = %q/%q/%v", k, v, err)
		}
	})
	t.Run("fixed-truncated", func(t *testing.T) {
		rr := FixedWidthInput(2, 8)(strings.NewReader("short"))
		if _, _, err := rr.Next(); err == nil || err == io.EOF {
			t.Fatalf("err = %v, want truncation error", err)
		}
	})
}

func TestMOFRegistry(t *testing.T) {
	r := NewMOFRegistry()
	if _, ok := r.Lookup("t1"); ok {
		t.Fatal("empty registry found a task")
	}
	r.Register("t2", MOFPaths{Data: "d2", Index: "i2"})
	r.Register("t1", MOFPaths{Data: "d1", Index: "i1"})
	p, ok := r.Lookup("t1")
	if !ok || p.Data != "d1" {
		t.Fatalf("lookup = %+v, %v", p, ok)
	}
	tasks := r.Tasks()
	if len(tasks) != 2 || tasks[0] != "t1" || tasks[1] != "t2" {
		t.Fatalf("tasks = %v, want sorted", tasks)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Nodes: []string{"a"}, WorkDir: "/tmp/x"}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.MapSlotsPerNode != 4 || cfg.ReduceSlotsPerNode != 2 {
		t.Fatalf("defaults = %d/%d, want 4/2 (paper testbed)", cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
	}
	if err := (&Config{WorkDir: "x"}).applyDefaults(); err == nil {
		t.Fatal("no nodes accepted")
	}
	if err := (&Config{Nodes: []string{"a"}}).applyDefaults(); err == nil {
		t.Fatal("no workdir accepted")
	}
}

func TestLargeDeterministicJob(t *testing.T) {
	fs, c := testCluster(t, 4, 2048)
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "word%03d word%03d common\n", i%50, (i*7)%50)
	}
	putFile(t, fs, "/in", sb.String())

	run := func(out string) string {
		job := wordCountJob("/in", out, 3)
		res, err := c.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return catOutputs(t, fs, res)
	}
	a, b := run("/out-a"), run("/out-b")
	if a != b {
		t.Fatal("two runs of the same job differ")
	}
	counts := parseCounts(t, a)
	if counts["common"] != 500 {
		t.Fatalf("common = %d, want 500", counts["common"])
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	fs, c := testCluster(t, 2, 4096)
	putFile(t, fs, "/in", strings.Repeat("dup dup dup other\n", 100))

	run := func(withCombiner bool, out string) *Result {
		job := wordCountJob("/in", out, 2)
		if withCombiner {
			job.Combine = func(key []byte, values [][]byte, emit Emit) error {
				sum := 0
				for _, v := range values {
					n, err := strconv.Atoi(string(v))
					if err != nil {
						return err
					}
					sum += n
				}
				emit(key, []byte(strconv.Itoa(sum)))
				return nil
			}
			// The reducer must now sum counts, not count values.
			job.Reduce = func(key []byte, values [][]byte, emit Emit) error {
				sum := 0
				for _, v := range values {
					n, err := strconv.Atoi(string(v))
					if err != nil {
						return err
					}
					sum += n
				}
				emit(key, []byte(strconv.Itoa(sum)))
				return nil
			}
		}
		res, err := c.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(false, "/out-plain")
	combined := run(true, "/out-combined")

	if combined.Counters.ShuffledBytes >= plain.Counters.ShuffledBytes {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d",
			combined.Counters.ShuffledBytes, plain.Counters.ShuffledBytes)
	}
	if combined.Counters.CombineInputs == 0 || combined.Counters.CombineOutputs == 0 {
		t.Fatalf("combine counters empty: %+v", combined.Counters)
	}
	// Both agree on the answer.
	a := parseCounts(t, catOutputs(t, fs, plain))
	b := parseCounts(t, catOutputs(t, fs, combined))
	if a["dup"] != 300 || b["dup"] != 300 || a["other"] != b["other"] {
		t.Fatalf("combiner changed results: %v vs %v", a, b)
	}
}

func TestMapSideSpills(t *testing.T) {
	fs, c := testCluster(t, 2, 8192)
	putFile(t, fs, "/in", strings.Repeat("w1 w2 w3 w4 w5 w6 w7 w8\n", 200))

	run := func(sortMem int64, out string) *Result {
		job := wordCountJob("/in", out, 2)
		job.Writer = WriterSortSpill // this test is about the sort buffer's spill path
		job.SortMemory = sortMem
		res, err := c.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noSpill := run(0, "/out-nospill")
	spilled := run(256, "/out-spilled") // tiny sort buffer forces many runs

	if noSpill.Counters.MapSpills != 0 {
		t.Fatalf("unbounded sort buffer spilled: %+v", noSpill.Counters)
	}
	if spilled.Counters.MapSpills == 0 || spilled.Counters.MapSpilledBytes == 0 {
		t.Fatalf("tiny sort buffer did not spill: %+v", spilled.Counters)
	}
	// The job answer is identical either way.
	if catOutputs(t, fs, noSpill) != catOutputs(t, fs, spilled) {
		t.Fatal("map-side spilling changed job output")
	}
}

func TestMapSideSpillsWithCombiner(t *testing.T) {
	fs, c := testCluster(t, 2, 8192)
	putFile(t, fs, "/in", strings.Repeat("dup dup dup dup\n", 100))
	sum := func(key []byte, values [][]byte, emit Emit) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
		return nil
	}
	job := wordCountJob("/in", "/out", 1)
	job.SortMemory = 128
	job.Combine = sum
	job.Reduce = sum
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapSpills == 0 {
		t.Fatal("expected spills")
	}
	counts := parseCounts(t, catOutputs(t, fs, res))
	if counts["dup"] != 400 {
		t.Fatalf("dup = %d, want 400 (combiner ran per spill)", counts["dup"])
	}
}

func TestFlakyMapTaskRetries(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	c.cfg.MaxTaskAttempts = 3
	putFile(t, fs, "/in", "a b c\n")

	var failures atomic.Int64
	job := wordCountJob("/in", "/out", 1)
	innerMap := job.Map
	job.Map = func(k, v []byte, emit Emit) error {
		if failures.Add(1) <= 2 {
			return fmt.Errorf("transient map failure %d", failures.Load())
		}
		return innerMap(k, v, emit)
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TaskRetries != 2 {
		t.Fatalf("retries = %d, want 2", res.Counters.TaskRetries)
	}
	counts := parseCounts(t, catOutputs(t, fs, res))
	if len(counts) != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFlakyReduceTaskRetries(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	c.cfg.MaxTaskAttempts = 2
	putFile(t, fs, "/in", "x y\n")

	var failed atomic.Bool
	job := wordCountJob("/in", "/out", 1)
	innerReduce := job.Reduce
	job.Reduce = func(k []byte, vs [][]byte, emit Emit) error {
		if failed.CompareAndSwap(false, true) {
			return fmt.Errorf("transient reduce failure")
		}
		return innerReduce(k, vs, emit)
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TaskRetries != 1 {
		t.Fatalf("retries = %d, want 1", res.Counters.TaskRetries)
	}
	// The retried reducer's output file was recreated cleanly.
	counts := parseCounts(t, catOutputs(t, fs, res))
	if counts["x"] != 1 || counts["y"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPermanentFailureExhaustsAttempts(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	c.cfg.MaxTaskAttempts = 3
	putFile(t, fs, "/in", "x\n")
	job := wordCountJob("/in", "/out", 1)
	job.Map = func(_, _ []byte, _ Emit) error { return fmt.Errorf("permanent") }
	_, err := c.Run(job)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
}

func TestSpeculativeExecutionRescuesStraggler(t *testing.T) {
	fs, c := testCluster(t, 3, 1024)
	c.cfg.Speculative = true
	c.cfg.SpeculativeDelay = 50 * time.Millisecond
	putFile(t, fs, "/in", "straggle me\n")

	// The primary attempt stalls long past the speculative delay; the
	// backup (a fresh attempt of the same task) runs immediately.
	var calls atomic.Int64
	job := wordCountJob("/in", "/out", 1)
	innerMap := job.Map
	job.Map = func(k, v []byte, emit Emit) error {
		if calls.Add(1) == 1 {
			time.Sleep(400 * time.Millisecond) // straggler
		}
		return innerMap(k, v, emit)
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SpeculativeLaunches == 0 {
		t.Fatalf("no speculative attempt launched: %+v", res.Counters)
	}
	if res.Counters.SpeculativeWins == 0 {
		t.Fatalf("backup did not win against a 400ms straggler: %+v", res.Counters)
	}
	counts := parseCounts(t, catOutputs(t, fs, res))
	if counts["straggle"] != 1 || counts["me"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Exactly one attempt committed.
	if res.Counters.MapTasks != 1 {
		t.Fatalf("map tasks = %d, want 1 (single winner)", res.Counters.MapTasks)
	}
}

func TestSpeculativeBackupRescuesFailedPrimary(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	c.cfg.Speculative = true
	c.cfg.SpeculativeDelay = 30 * time.Millisecond
	putFile(t, fs, "/in", "w\n")

	// The primary attempt hangs briefly then fails; the backup succeeds.
	var calls atomic.Int64
	job := wordCountJob("/in", "/out", 1)
	innerMap := job.Map
	job.Map = func(k, v []byte, emit Emit) error {
		if calls.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond)
			return fmt.Errorf("primary attempt dies")
		}
		return innerMap(k, v, emit)
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapTasks != 1 {
		t.Fatalf("map tasks = %d", res.Counters.MapTasks)
	}
	if parseCounts(t, catOutputs(t, fs, res))["w"] != 1 {
		t.Fatal("wrong output")
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	fs, c := testCluster(t, 2, 1024)
	putFile(t, fs, "/in", "x\n")
	res, err := c.Run(wordCountJob("/in", "/out", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SpeculativeLaunches != 0 {
		t.Fatal("speculation ran without being enabled")
	}
}

func TestMOFRegistryRegisterOnce(t *testing.T) {
	r := NewMOFRegistry()
	if !r.RegisterOnce("t", MOFPaths{Data: "first"}) {
		t.Fatal("first RegisterOnce lost")
	}
	if r.RegisterOnce("t", MOFPaths{Data: "second"}) {
		t.Fatal("second RegisterOnce won")
	}
	p, _ := r.Lookup("t")
	if p.Data != "first" {
		t.Fatalf("registry holds %q, want first", p.Data)
	}
}

func TestCompressedShuffleSameAnswerFewerBytes(t *testing.T) {
	fs, c := testCluster(t, 2, 4096)
	// Highly repetitive input compresses well.
	putFile(t, fs, "/in", strings.Repeat("lorem ipsum dolor sit amet lorem ipsum\n", 150))

	run := func(compress bool, out string) *Result {
		job := wordCountJob("/in", out, 2)
		job.Combine = nil // keep plenty of duplicate intermediate records
		job.Reduce = func(key []byte, values [][]byte, emit Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		}
		job.CompressMOF = compress
		res, err := c.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false, "/out-plain")
	packed := run(true, "/out-packed")

	if packed.Counters.ShuffledBytes >= plain.Counters.ShuffledBytes {
		t.Fatalf("compression did not shrink shuffle: %d vs %d",
			packed.Counters.ShuffledBytes, plain.Counters.ShuffledBytes)
	}
	if catOutputs(t, fs, plain) != catOutputs(t, fs, packed) {
		t.Fatal("compression changed job output")
	}
}

func TestCompressedShuffleWithMapSpills(t *testing.T) {
	fs, c := testCluster(t, 2, 4096)
	putFile(t, fs, "/in", strings.Repeat("aa bb cc dd ee ff\n", 120))
	job := wordCountJob("/in", "/out", 2)
	job.Writer = WriterSortSpill // exercise the sort buffer's compressed run merge
	job.CompressMOF = true
	job.SortMemory = 512 // force multi-run map-side merges of compressed runs
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapSpills == 0 {
		t.Fatal("expected map-side spills")
	}
	counts := parseCounts(t, catOutputs(t, fs, res))
	if counts["aa"] != 120 {
		t.Fatalf("aa = %d, want 120", counts["aa"])
	}
}
