package mapred

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/merge"
	"repro/internal/mof"
)

// sortSpillWriter is the map side's sort buffer (Hadoop's io.sort.mb):
// map outputs accumulate per partition; when the buffer exceeds its limit
// the contents are sorted and spilled as one partitioned run file, and at
// task end all runs are merged into the final MOF. JBS does not change
// this path — both shuffle implementations consume the same MOFs. It is
// also the combining writer: the combiner runs over every sorted run
// before it is written.
type sortSpillWriter struct {
	parts  [][]mof.Record
	bytes  int64
	limit  int64 // 0 = unbounded (single final write)
	dir    string
	taskID string

	combine  ReduceFunc
	compress bool
	cs       *counterSet

	runs []MOFPaths
}

func newSortSpillWriter(cfg WriterConfig) *sortSpillWriter {
	return &sortSpillWriter{
		parts:    make([][]mof.Record, cfg.Partitions),
		limit:    cfg.SortMemory,
		dir:      cfg.Dir,
		taskID:   cfg.TaskID,
		combine:  cfg.Combine,
		compress: cfg.Compress,
		cs:       cfg.cs,
	}
}

// Strategy names the implementation.
func (b *sortSpillWriter) Strategy() WriterStrategy { return WriterSortSpill }

// Add buffers one intermediate record, spilling when over the limit.
func (b *sortSpillWriter) Add(partition int, key, value []byte) error {
	b.parts[partition] = append(b.parts[partition], mof.Record{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
	b.bytes += int64(len(key) + len(value))
	if b.limit > 0 && b.bytes > b.limit {
		return b.spill()
	}
	return nil
}

// writeRun sorts (and combines) the buffered partitions and writes them as
// one partitioned MOF-format file pair.
func (b *sortSpillWriter) writeRun(paths MOFPaths) error {
	w, err := mof.NewWriter(paths.Data, paths.Index, len(b.parts), writerOptions(b.compress)...)
	if err != nil {
		return err
	}
	for p, recs := range b.parts {
		if len(recs) == 0 {
			continue
		}
		merge.SortRecords(recs)
		if b.combine != nil {
			recs, err = combinePartition(b.combine, recs, b.cs)
			if err != nil {
				return err
			}
		}
		if err := w.BeginSegment(p); err != nil {
			return err
		}
		for _, rec := range recs {
			if err := w.Append(rec.Key, rec.Value); err != nil {
				return err
			}
		}
	}
	return w.Close()
}

// spill writes the current buffer as a numbered run and resets it.
func (b *sortSpillWriter) spill() error {
	if b.bytes == 0 {
		return nil
	}
	paths := MOFPaths{
		Data:  filepath.Join(b.dir, fmt.Sprintf("%s.spill%d.data", b.taskID, len(b.runs))),
		Index: filepath.Join(b.dir, fmt.Sprintf("%s.spill%d.index", b.taskID, len(b.runs))),
	}
	if err := b.writeRun(paths); err != nil {
		return err
	}
	b.cs.addMapSpill(b.bytes)
	observeWriterSpill(WriterSortSpill)
	b.runs = append(b.runs, paths)
	b.parts = make([][]mof.Record, len(b.parts))
	b.bytes = 0
	return nil
}

// Seal produces the task's final MOF. Without spills this is a direct
// sorted write; with spills, every run's segments are merged per partition
// (Hadoop's final map-side merge pass).
func (b *sortSpillWriter) Seal(final MOFPaths) error {
	start := time.Now()
	if len(b.runs) == 0 {
		if err := b.writeRun(final); err != nil {
			return err
		}
		observeWriterSeal(WriterSortSpill, start, final)
		return nil
	}
	// Spill the in-memory remainder so everything is in runs.
	if err := b.spill(); err != nil {
		return err
	}
	defer removeRuns(b.runs)
	if err := mergeRuns(b.runs, len(b.parts), final, b.compress); err != nil {
		return err
	}
	observeWriterSeal(WriterSortSpill, start, final)
	return nil
}

// Abort discards the spill runs of a failed attempt.
func (b *sortSpillWriter) Abort() {
	removeRuns(b.runs)
	b.runs = nil
}

func closeSources(sources []merge.Source) {
	for _, s := range sources {
		_ = s.Close() // read-side sources; close errors carry no data
	}
}

// segmentSource adapts a mof.SegmentReader to merge.Source.
type segmentSource struct {
	sr *mof.SegmentReader
}

func (s segmentSource) Next() (mof.Record, error) {
	rec, err := s.sr.Next()
	if err == io.EOF {
		return mof.Record{}, io.EOF
	}
	return rec, err
}

func (s segmentSource) Close() error { return s.sr.Close() }

// Interface check.
var _ ShuffleWriter = (*sortSpillWriter)(nil)
