package mapred

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/merge"
	"repro/internal/mof"
)

// mapOutputBuffer is the map side's sort buffer (Hadoop's io.sort.mb): map
// outputs accumulate per partition; when the buffer exceeds its limit the
// contents are sorted and spilled as one partitioned run file, and at task
// end all runs are merged into the final MOF. JBS does not change this
// path — both shuffle implementations consume the same MOFs.
type mapOutputBuffer struct {
	parts  [][]mof.Record
	bytes  int64
	limit  int64 // 0 = unbounded (single final write)
	dir    string
	taskID string

	combine  ReduceFunc
	compress bool
	cs       *counterSet

	runs []MOFPaths
}

func newMapOutputBuffer(numReducers int, limit int64, dir, taskID string, combine ReduceFunc, compress bool, cs *counterSet) *mapOutputBuffer {
	return &mapOutputBuffer{
		parts:    make([][]mof.Record, numReducers),
		limit:    limit,
		dir:      dir,
		taskID:   taskID,
		combine:  combine,
		compress: compress,
		cs:       cs,
	}
}

// writerOptions returns the MOF writer options for this buffer.
func (b *mapOutputBuffer) writerOptions() []mof.WriterOption {
	if b.compress {
		return []mof.WriterOption{mof.WithCompression()}
	}
	return nil
}

// add buffers one intermediate record, spilling when over the limit.
func (b *mapOutputBuffer) add(partition int, key, value []byte) error {
	b.parts[partition] = append(b.parts[partition], mof.Record{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
	b.bytes += int64(len(key) + len(value))
	if b.limit > 0 && b.bytes > b.limit {
		return b.spill()
	}
	return nil
}

// writeRun sorts (and combines) the buffered partitions and writes them as
// one partitioned MOF-format file pair.
func (b *mapOutputBuffer) writeRun(paths MOFPaths) error {
	w, err := mof.NewWriter(paths.Data, paths.Index, len(b.parts), b.writerOptions()...)
	if err != nil {
		return err
	}
	for p, recs := range b.parts {
		if len(recs) == 0 {
			continue
		}
		merge.SortRecords(recs)
		if b.combine != nil {
			recs, err = combinePartition(b.combine, recs, b.cs)
			if err != nil {
				return err
			}
		}
		if err := w.BeginSegment(p); err != nil {
			return err
		}
		for _, rec := range recs {
			if err := w.Append(rec.Key, rec.Value); err != nil {
				return err
			}
		}
	}
	return w.Close()
}

// spill writes the current buffer as a numbered run and resets it.
func (b *mapOutputBuffer) spill() error {
	if b.bytes == 0 {
		return nil
	}
	paths := MOFPaths{
		Data:  filepath.Join(b.dir, fmt.Sprintf("%s.spill%d.data", b.taskID, len(b.runs))),
		Index: filepath.Join(b.dir, fmt.Sprintf("%s.spill%d.index", b.taskID, len(b.runs))),
	}
	if err := b.writeRun(paths); err != nil {
		return err
	}
	b.cs.mapSpills.Add(1)
	b.cs.mapSpilledBytes.Add(b.bytes)
	b.runs = append(b.runs, paths)
	b.parts = make([][]mof.Record, len(b.parts))
	b.bytes = 0
	return nil
}

// finalize produces the task's final MOF. Without spills this is a direct
// sorted write; with spills, every run's segments are merged per partition
// (Hadoop's final map-side merge pass).
func (b *mapOutputBuffer) finalize(final MOFPaths) error {
	if len(b.runs) == 0 {
		return b.writeRun(final)
	}
	// Spill the in-memory remainder so everything is in runs.
	if err := b.spill(); err != nil {
		return err
	}
	defer func() {
		for _, r := range b.runs {
			os.Remove(r.Data)
			os.Remove(r.Index)
		}
	}()

	indexes := make([]*mof.Index, len(b.runs))
	for i, r := range b.runs {
		ix, err := mof.ReadIndex(r.Index)
		if err != nil {
			return err
		}
		indexes[i] = ix
	}
	w, err := mof.NewWriter(final.Data, final.Index, len(b.parts), b.writerOptions()...)
	if err != nil {
		return err
	}
	for p := range b.parts {
		var sources []merge.Source
		empty := true
		for i, r := range b.runs {
			entry, err := indexes[i].Entry(p)
			if err != nil {
				closeSources(sources)
				return err
			}
			if entry.Length == 0 {
				continue
			}
			sr, err := mof.OpenSegment(r.Data, entry)
			if err != nil {
				closeSources(sources)
				return err
			}
			sources = append(sources, segmentSource{sr})
			empty = false
		}
		if empty {
			continue
		}
		if err := w.BeginSegment(p); err != nil {
			closeSources(sources)
			return err
		}
		err := merge.Merge(sources, func(r mof.Record) error {
			return w.Append(r.Key, r.Value)
		})
		if err != nil {
			return err
		}
	}
	return w.Close()
}

func closeSources(sources []merge.Source) {
	for _, s := range sources {
		s.Close()
	}
}

// segmentSource adapts a mof.SegmentReader to merge.Source.
type segmentSource struct {
	sr *mof.SegmentReader
}

func (s segmentSource) Next() (mof.Record, error) {
	rec, err := s.sr.Next()
	if err == io.EOF {
		return mof.Record{}, io.EOF
	}
	return rec, err
}

func (s segmentSource) Close() error { return s.sr.Close() }
