package mapred

import (
	"sort"
	"sync"

	"repro/internal/merge"
)

// MOFPaths locates one map task's output: the MOF data file and its index
// file on the node's local disk.
type MOFPaths struct {
	Data  string
	Index string
}

// MOFRegistry is the per-node table of completed map outputs the shuffle
// server consults. TaskTrackers register MOFs as MapTasks commit.
type MOFRegistry struct {
	mu     sync.RWMutex
	byTask map[string]MOFPaths
}

// NewMOFRegistry returns an empty registry.
func NewMOFRegistry() *MOFRegistry {
	return &MOFRegistry{byTask: make(map[string]MOFPaths)}
}

// Register records a completed map task's output files.
func (r *MOFRegistry) Register(task string, p MOFPaths) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byTask[task] = p
}

// RegisterOnce commits a task's output only if no attempt committed first,
// reporting whether this attempt won — the commit protocol behind
// speculative execution.
func (r *MOFRegistry) RegisterOnce(task string, p MOFPaths) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byTask[task]; ok {
		return false
	}
	r.byTask[task] = p
	return true
}

// Lookup returns the MOF paths for a task.
func (r *MOFRegistry) Lookup(task string) (MOFPaths, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byTask[task]
	return p, ok
}

// Tasks returns the registered task ids, sorted.
func (r *MOFRegistry) Tasks() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byTask))
	for t := range r.byTask {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// SegmentID names one shuffle unit: the segment of one map task's MOF
// destined for one reduce partition, hosted on one node.
type SegmentID struct {
	// Host is the node holding the MOF.
	Host string
	// MapTask is the producing map task id.
	MapTask string
	// Partition is the reduce partition.
	Partition int
}

// Fetcher is the per-node client side of a shuffle implementation: stock
// Hadoop's MOFCopier threads, or JBS's NetMerger. One Fetcher serves every
// ReduceTask on its node; Fetch must be safe for concurrent calls (the JBS
// NetMerger consolidates them; the baseline runs them independently).
type Fetcher interface {
	// Fetch retrieves all segments, invoking deliver once per segment with
	// its raw bytes. deliver calls may come from the calling goroutine or
	// an internal one, but never concurrently for one Fetch call.
	Fetch(reduceTask string, segs []SegmentID, deliver func(SegmentID, []byte) error) error
	// Close releases the fetcher's connections.
	Close() error
}

// ShuffleProvider plugs a complete shuffle implementation into the engine,
// mirroring the Hadoop pluggable-shuffle hook the paper uses (MAPREDUCE-
// 4049): a per-node server component and a per-node fetch component, plus
// the reduce-side merger choice that goes with them.
type ShuffleProvider interface {
	// Name identifies the implementation in reports.
	Name() string
	// StartNode starts the node's shuffle server (HttpServlets or
	// MOFSupplier) over its MOF registry, returning the address remote
	// fetchers use.
	StartNode(node string, reg *MOFRegistry) (addr string, stop func() error, err error)
	// NewFetcher creates the node's fetch engine. addrOf resolves a node
	// name to its shuffle server address.
	NewFetcher(node string, addrOf func(node string) (string, error)) (Fetcher, error)
	// NewMerger creates the reduce-side merger paired with this shuffle
	// (spill-based for stock Hadoop, network-levitated for JBS). spillDir
	// is a reducer-private scratch directory.
	NewMerger(spillDir string) (merge.Merger, error)
}
