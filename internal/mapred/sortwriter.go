package mapred

import (
	"bytes"
	"fmt"
	"path/filepath"
	"slices"
	"time"

	"repro/internal/mof"
)

// sortEntry locates one record inside the arena. 24 bytes per record
// regardless of partition count.
type sortEntry struct {
	off  uint64
	part uint32
	klen uint32
	vlen uint32
}

// sortMergeWriter is the high-partition-count sort writer. Where
// sortSpillWriter keeps one record slice per partition (two allocations
// per record, one reflection-based sort per partition), this writer
// appends every key/value into one shared byte arena and keeps a compact
// entry per record; a single stable sort over (partition, key) orders the
// entire buffer, and a sequential walk writes it out partition by
// partition. Run spills and the final multi-way run merge reuse the same
// partitioned-MOF machinery as the spill writer.
type sortMergeWriter struct {
	cfg     WriterConfig
	arena   []byte
	entries []sortEntry
	bytes   int64
	runs    []MOFPaths
}

func newSortMergeWriter(cfg WriterConfig) *sortMergeWriter {
	return &sortMergeWriter{cfg: cfg}
}

// Strategy names the implementation.
func (w *sortMergeWriter) Strategy() WriterStrategy { return WriterSortMerge }

func (w *sortMergeWriter) key(e sortEntry) []byte {
	return w.arena[e.off : e.off+uint64(e.klen)]
}

func (w *sortMergeWriter) val(e sortEntry) []byte {
	return w.arena[e.off+uint64(e.klen) : e.off+uint64(e.klen)+uint64(e.vlen)]
}

// Add copies one record into the arena, spilling a sorted run when the
// buffer exceeds its budget.
func (w *sortMergeWriter) Add(partition int, key, value []byte) error {
	e := sortEntry{
		off:  uint64(len(w.arena)),
		part: uint32(partition),
		klen: uint32(len(key)),
		vlen: uint32(len(value)),
	}
	w.arena = append(w.arena, key...)
	w.arena = append(w.arena, value...)
	w.entries = append(w.entries, e)
	w.bytes += int64(len(key) + len(value))
	if w.cfg.SortMemory > 0 && w.bytes > w.cfg.SortMemory {
		return w.spill()
	}
	return nil
}

// sortEntries orders the buffer by (partition, key). The sort must be
// stable: records with equal keys keep emit order, matching what the
// other writers (and the reduce-side normalization) produce.
func (w *sortMergeWriter) sortEntries() {
	slices.SortStableFunc(w.entries, func(a, b sortEntry) int {
		if a.part != b.part {
			if a.part < b.part {
				return -1
			}
			return 1
		}
		return bytes.Compare(w.key(a), w.key(b))
	})
}

// writeRun sorts the buffer and writes it as one partitioned MOF pair,
// running the combiner per partition when set.
func (w *sortMergeWriter) writeRun(paths MOFPaths) error {
	w.sortEntries()
	mw, err := mof.NewWriter(paths.Data, paths.Index, w.cfg.Partitions, writerOptions(w.cfg.Compress)...)
	if err != nil {
		return err
	}
	i := 0
	for i < len(w.entries) {
		p := w.entries[i].part
		j := i
		for j < len(w.entries) && w.entries[j].part == p {
			j++
		}
		if err := mw.BeginSegment(int(p)); err != nil {
			return err
		}
		if w.cfg.Combine != nil {
			recs := make([]mof.Record, 0, j-i)
			for _, e := range w.entries[i:j] {
				recs = append(recs, mof.Record{Key: w.key(e), Value: w.val(e)})
			}
			recs, err = combinePartition(w.cfg.Combine, recs, w.cfg.cs)
			if err != nil {
				return err
			}
			for _, r := range recs {
				if err := mw.Append(r.Key, r.Value); err != nil {
					return err
				}
			}
		} else {
			for _, e := range w.entries[i:j] {
				if err := mw.Append(w.key(e), w.val(e)); err != nil {
					return err
				}
			}
		}
		i = j
	}
	return mw.Close()
}

// spill writes the arena as a numbered run and resets it, keeping the
// allocated capacity for the next fill.
func (w *sortMergeWriter) spill() error {
	if w.bytes == 0 {
		return nil
	}
	paths := MOFPaths{
		Data:  filepath.Join(w.cfg.Dir, fmt.Sprintf("%s.spill%d.data", w.cfg.TaskID, len(w.runs))),
		Index: filepath.Join(w.cfg.Dir, fmt.Sprintf("%s.spill%d.index", w.cfg.TaskID, len(w.runs))),
	}
	if err := w.writeRun(paths); err != nil {
		return err
	}
	w.cfg.cs.addMapSpill(w.bytes)
	observeWriterSpill(WriterSortMerge)
	w.runs = append(w.runs, paths)
	w.arena = w.arena[:0]
	w.entries = w.entries[:0]
	w.bytes = 0
	return nil
}

// Seal writes the final MOF: a direct sorted write when nothing spilled,
// otherwise the shared per-partition run merge.
func (w *sortMergeWriter) Seal(final MOFPaths) error {
	start := time.Now()
	if len(w.runs) == 0 {
		if err := w.writeRun(final); err != nil {
			return err
		}
		observeWriterSeal(WriterSortMerge, start, final)
		return nil
	}
	if err := w.spill(); err != nil {
		return err
	}
	defer removeRuns(w.runs)
	if err := mergeRuns(w.runs, w.cfg.Partitions, final, w.cfg.Compress); err != nil {
		return err
	}
	observeWriterSeal(WriterSortMerge, start, final)
	return nil
}

// Abort discards the spill runs of a failed attempt.
func (w *sortMergeWriter) Abort() {
	removeRuns(w.runs)
	w.runs = nil
}

// Interface check.
var _ ShuffleWriter = (*sortMergeWriter)(nil)
